(* Known-answer tests (FIPS 197, FIPS 180-4, RFC 4231, RFC 5869, RFC 7748,
   RFC 8032) plus property-based tests for the algebraic invariants. *)

open Apna_crypto

let hex = Apna_util.Hex.decode_exn
let hex_of = Apna_util.Hex.encode
let check_hex name expected actual = Alcotest.(check string) name expected (hex_of actual)

(* ------------------------------------------------------------------ *)
(* Bigint *)

let big_of_int = Bigint.of_int

let arb_bigint =
  (* Random naturals up to ~416 bits, biased toward interesting small ones. *)
  QCheck2.Gen.(
    let* n_bytes = int_range 0 52 in
    let* s = string_size ~gen:char (return n_bytes) in
    return (Bigint.of_bytes_be s))

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let bigint_tests =
  [
    Alcotest.test_case "of_int/to_int roundtrip" `Quick (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check (option int))
              (string_of_int n) (Some n)
              (Bigint.to_int_opt (big_of_int n)))
          [ 0; 1; 19; 65536; 1 lsl 40; max_int / 4 ]);
    Alcotest.test_case "of_decimal" `Quick (fun () ->
        let n = Bigint.of_decimal "340282366920938463463374607431768211456" in
        (* 2^128 *)
        Alcotest.(check bool)
          "2^128" true
          (Bigint.equal n (Bigint.shift_left Bigint.one 128)));
    Alcotest.test_case "sub underflow" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Bigint.sub: underflow")
          (fun () -> ignore (Bigint.sub Bigint.one (big_of_int 2))));
    Alcotest.test_case "divmod by zero" `Quick (fun () ->
        Alcotest.check_raises "raises" Division_by_zero (fun () ->
            ignore (Bigint.divmod Bigint.one Bigint.zero)));
    qtest "add commutative" QCheck2.Gen.(pair arb_bigint arb_bigint)
      (fun (a, b) -> Bigint.equal (Bigint.add a b) (Bigint.add b a));
    qtest "add/sub inverse" QCheck2.Gen.(pair arb_bigint arb_bigint)
      (fun (a, b) -> Bigint.equal (Bigint.sub (Bigint.add a b) b) a);
    qtest "mul distributes" QCheck2.Gen.(triple arb_bigint arb_bigint arb_bigint)
      (fun (a, b, c) ->
        Bigint.equal
          (Bigint.mul a (Bigint.add b c))
          (Bigint.add (Bigint.mul a b) (Bigint.mul a c)));
    qtest "divmod identity" QCheck2.Gen.(pair arb_bigint arb_bigint)
      (fun (a, b) ->
        if Bigint.is_zero b then true
        else begin
          let q, r = Bigint.divmod a b in
          Bigint.compare r b < 0
          && Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        end);
    qtest "shift roundtrip" QCheck2.Gen.(pair arb_bigint (int_range 0 100))
      (fun (a, k) ->
        Bigint.equal (Bigint.shift_right (Bigint.shift_left a k) k) a);
    qtest "bytes roundtrip" arb_bigint (fun a ->
        let w = max 1 ((Bigint.num_bits a + 7) / 8) in
        Bigint.equal a (Bigint.of_bytes_le (Bigint.to_bytes_le a w))
        && Bigint.equal a (Bigint.of_bytes_be (Bigint.to_bytes_be a w)));
    qtest "num_bits vs compare" arb_bigint (fun a ->
        let nb = Bigint.num_bits a in
        if Bigint.is_zero a then nb = 0
        else
          Bigint.compare a (Bigint.shift_left Bigint.one nb) < 0
          && Bigint.compare a (Bigint.shift_left Bigint.one (nb - 1)) >= 0);
  ]

(* ------------------------------------------------------------------ *)
(* SHA-2 *)

let sha2_tests =
  [
    Alcotest.test_case "sha256 empty" `Quick (fun () ->
        check_hex "digest"
          "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
          (Sha256.digest ""));
    Alcotest.test_case "sha256 abc" `Quick (fun () ->
        check_hex "digest"
          "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
          (Sha256.digest "abc"));
    Alcotest.test_case "sha256 two blocks" `Quick (fun () ->
        check_hex "digest"
          "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
          (Sha256.digest
             "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
    Alcotest.test_case "sha256 million a" `Slow (fun () ->
        check_hex "digest"
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
          (Sha256.digest (String.make 1_000_000 'a')));
    Alcotest.test_case "sha256 incremental equals one-shot" `Quick (fun () ->
        let msg = String.init 1000 (fun i -> Char.chr (i land 0xff)) in
        let c = Sha256.init () in
        let rec feed i =
          if i < String.length msg then begin
            let n = min 17 (String.length msg - i) in
            Sha256.feed c (String.sub msg i n);
            feed (i + n)
          end
        in
        feed 0;
        Alcotest.(check string) "same" (hex_of (Sha256.digest msg))
          (hex_of (Sha256.finalize c)));
    Alcotest.test_case "sha512 empty" `Quick (fun () ->
        check_hex "digest"
          "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
          (Sha512.digest ""));
    Alcotest.test_case "sha512 abc" `Quick (fun () ->
        check_hex "digest"
          "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
          (Sha512.digest "abc"));
    Alcotest.test_case "sha512 two blocks" `Quick (fun () ->
        check_hex "digest"
          "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
          (Sha512.digest
             "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"));
    qtest "sha256 incremental = one-shot" ~count:100
      QCheck2.Gen.(string_size (int_range 0 300))
      (fun msg ->
        let c = Sha256.init () in
        String.iter (fun ch -> Sha256.feed c (String.make 1 ch)) msg;
        Sha256.finalize c = Sha256.digest msg);
    qtest "sha512 digest_list = digest of concat" ~count:100
      QCheck2.Gen.(list_size (int_range 0 8) (string_size (int_range 0 64)))
      (fun parts -> Sha512.digest_list parts = Sha512.digest (String.concat "" parts));
  ]

(* ------------------------------------------------------------------ *)
(* HMAC / HKDF / DRBG *)

let kdf_tests =
  [
    Alcotest.test_case "hmac-sha256 rfc4231 case 1" `Quick (fun () ->
        check_hex "tag"
          "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
          (Hmac.Sha256.mac ~key:(String.make 20 '\x0b') "Hi There"));
    Alcotest.test_case "hmac-sha256 rfc4231 case 2" `Quick (fun () ->
        check_hex "tag"
          "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
          (Hmac.Sha256.mac ~key:"Jefe" "what do ya want for nothing?"));
    Alcotest.test_case "hmac-sha512 rfc4231 case 1" `Quick (fun () ->
        check_hex "tag"
          "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cdedaa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
          (Hmac.Sha512.mac ~key:(String.make 20 '\x0b') "Hi There"));
    Alcotest.test_case "hmac key longer than block" `Quick (fun () ->
        (* RFC 4231 case 6: 131-byte key. *)
        check_hex "tag"
          "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
          (Hmac.Sha256.mac
             ~key:(String.make 131 '\xaa')
             "Test Using Larger Than Block-Size Key - Hash Key First"));
    Alcotest.test_case "hmac verify accepts truncated" `Quick (fun () ->
        let key = "k" and msg = "m" in
        let tag = String.sub (Hmac.Sha256.mac ~key msg) 0 16 in
        Alcotest.(check bool) "ok" true (Hmac.Sha256.verify ~key ~tag msg));
    Alcotest.test_case "hmac verify rejects short tags" `Quick (fun () ->
        let key = "k" and msg = "m" in
        let tag = String.sub (Hmac.Sha256.mac ~key msg) 0 4 in
        Alcotest.(check bool) "rejected" false (Hmac.Sha256.verify ~key ~tag msg));
    Alcotest.test_case "hkdf rfc5869 case 1" `Quick (fun () ->
        let okm =
          Hkdf.derive
            ~salt:(hex "000102030405060708090a0b0c")
            ~info:(hex "f0f1f2f3f4f5f6f7f8f9") ~len:42
            (String.make 22 '\x0b')
        in
        check_hex "okm"
          "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
          okm);
    qtest "hmac tamper detection" ~count:100
      QCheck2.Gen.(triple (string_size (int_range 1 32)) (string_size (int_range 0 64)) (int_range 0 1000))
      (fun (key, msg, salt) ->
        let tag = Hmac.Sha256.mac ~key msg in
        let msg' = msg ^ string_of_int salt in
        not (Hmac.Sha256.verify ~key ~tag msg'));
    Alcotest.test_case "drbg deterministic" `Quick (fun () ->
        let a = Drbg.create ~seed:"seed" and b = Drbg.create ~seed:"seed" in
        Alcotest.(check string) "same stream" (Drbg.generate a 64) (Drbg.generate b 64));
    Alcotest.test_case "drbg seed sensitivity" `Quick (fun () ->
        let a = Drbg.create ~seed:"seed1" and b = Drbg.create ~seed:"seed2" in
        Alcotest.(check bool) "different" false (Drbg.generate a 32 = Drbg.generate b 32));
    Alcotest.test_case "drbg split independence" `Quick (fun () ->
        let root = Drbg.create ~seed:"root" in
        let a = Drbg.split root "a" and b = Drbg.split root "b" in
        Alcotest.(check bool) "different" false (Drbg.generate a 32 = Drbg.generate b 32));
    qtest "drbg uniform in range" ~count:200 QCheck2.Gen.(int_range 1 10_000)
      (fun n ->
        let rng = Drbg.create ~seed:(string_of_int n) in
        let v = Drbg.uniform rng n in
        0 <= v && v < n);
  ]

(* ------------------------------------------------------------------ *)
(* AES *)

let aes_tests =
  [
    Alcotest.test_case "fips-197 aes-128" `Quick (fun () ->
        let key = Aes.expand (hex "000102030405060708090a0b0c0d0e0f") in
        check_hex "ct" "69c4e0d86a7b0430d8cdb78070b4c55a"
          (Aes.encrypt_block key (hex "00112233445566778899aabbccddeeff")));
    Alcotest.test_case "fips-197 aes-256" `Quick (fun () ->
        let key =
          Aes.expand (hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
        in
        check_hex "ct" "8ea2b7ca516745bfeafc49904b496089"
          (Aes.encrypt_block key (hex "00112233445566778899aabbccddeeff")));
    Alcotest.test_case "sp800-38a ctr-aes128 block 1" `Quick (fun () ->
        let key = Aes.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
        check_hex "ct" "874d6191b620e3261bef6864990db6ce"
          (Aes.Ctr.crypt ~key ~nonce:(hex "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
             (hex "6bc1bee22e409f96e93d7e117393172a")));
    Alcotest.test_case "bad key size rejected" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Aes.expand: 10-byte key")
          (fun () -> ignore (Aes.expand "0123456789")));
    qtest "decrypt inverts encrypt (128)" ~count:200
      QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
      (fun (k, block) ->
        let key = Aes.expand k in
        Aes.decrypt_block key (Aes.encrypt_block key block) = block);
    qtest "decrypt inverts encrypt (256)" ~count:100
      QCheck2.Gen.(pair (string_size (return 32)) (string_size (return 16)))
      (fun (k, block) ->
        let key = Aes.expand k in
        Aes.decrypt_block key (Aes.encrypt_block key block) = block);
    qtest "ctr roundtrip any length" ~count:200
      QCheck2.Gen.(triple (string_size (return 16)) (string_size (return 16))
                     (string_size (int_range 0 200)))
      (fun (k, nonce, data) ->
        let key = Aes.expand k in
        Aes.Ctr.crypt ~key ~nonce (Aes.Ctr.crypt ~key ~nonce data) = data);
    Alcotest.test_case "ctr counter wraps across blocks" `Quick (fun () ->
        let key = Aes.expand (String.make 16 'k') in
        let nonce = String.make 12 '\000' ^ "\xff\xff\xff\xff" in
        (* Keystream must not repeat when the 4 counter bytes wrap. *)
        let ks = Aes.Ctr.keystream ~key ~nonce 48 in
        Alcotest.(check bool) "blocks differ" true
          (String.sub ks 0 16 <> String.sub ks 16 16
          && String.sub ks 16 16 <> String.sub ks 32 16));
    Alcotest.test_case "cbc-mac rejects empty and ragged input" `Quick (fun () ->
        let key = Aes.expand (String.make 16 'k') in
        List.iter
          (fun data ->
            match Aes.Cbc_mac.mac ~key data with
            | _ -> Alcotest.fail "expected Invalid_argument"
            | exception Invalid_argument _ -> ())
          [ ""; "0123456789abcde"; String.make 17 'x' ]);
    qtest "cbc-mac distinct on distinct blocks" ~count:100
      QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
      (fun (a, b) ->
        let key = Aes.expand (String.make 16 'k') in
        a = b || Aes.Cbc_mac.mac ~key a <> Aes.Cbc_mac.mac ~key b);
  ]

(* ------------------------------------------------------------------ *)
(* AES-GCM (NIST SP 800-38D / the GCM spec's test cases) *)

let gcm_tests =
  let zero_key = Aes.expand (String.make 16 '\000') in
  let zero_iv = String.make 12 '\000' in
  [
    Alcotest.test_case "gcm spec test case 1 (empty)" `Quick (fun () ->
        let ct, tag = Gcm.encrypt ~key:zero_key ~iv:zero_iv "" in
        Alcotest.(check string) "ciphertext" "" ct;
        check_hex "tag" "58e2fccefa7e3061367f1d57a4e7455a" tag);
    Alcotest.test_case "gcm spec test case 2 (one zero block)" `Quick (fun () ->
        let ct, tag = Gcm.encrypt ~key:zero_key ~iv:zero_iv (String.make 16 '\000') in
        check_hex "ciphertext" "0388dace60b6a392f328c2b971b2fe78" ct;
        (* Tag = E_K(J0) xor GHASH: the two spec intermediates below pin
           both halves; their xor ends ...bddf. *)
        check_hex "tag" "ab6e47d42cec13bdf53a67b21257bddf" tag);
    Alcotest.test_case "gcm spec intermediates (H and GHASH)" `Quick (fun () ->
        let h = Aes.encrypt_block zero_key (String.make 16 '\000') in
        check_hex "H = E_K(0)" "66e94bd4ef8a2c3b884cfa59ca342b2e" h;
        let c = hex "0388dace60b6a392f328c2b971b2fe78" in
        let lens = hex "00000000000000000000000000000080" in
        check_hex "GHASH(H, C || len)" "f38cbb1ad69223dcc3457ae5b6b0f885"
          (Gcm.ghash ~h (c ^ lens)));
    Alcotest.test_case "ghash of zero input is zero" `Quick (fun () ->
        let h = Aes.encrypt_block zero_key (String.make 16 '\000') in
        check_hex "ghash" (String.make 32 '0') (Gcm.ghash ~h (String.make 16 '\000')));
    Alcotest.test_case "ghash multiplicative identity" `Quick (fun () ->
        (* In GCM's reflected representation the field's 1 is 0x80 0^15. *)
        let one = "\x80" ^ String.make 15 '\000' in
        let c = hex "0388dace60b6a392f328c2b971b2fe78" in
        check_hex "C * 1 = C" "0388dace60b6a392f328c2b971b2fe78"
          (Gcm.ghash ~h:one c));
    qtest "gcm roundtrip with aad" ~count:150
      QCheck2.Gen.(
        triple (string_size (return 16)) (string_size (int_range 0 200))
          (string_size (int_range 0 40)))
      (fun (k, plaintext, aad) ->
        let key = Aes.expand k in
        let iv = String.make 12 'i' in
        let ct, tag = Gcm.encrypt ~key ~iv ~aad plaintext in
        Gcm.decrypt ~key ~iv ~aad ~tag ct = Ok plaintext);
    qtest "gcm tamper rejected" ~count:100
      QCheck2.Gen.(pair (string_size (int_range 1 100)) (int_range 0 1_000_000))
      (fun (plaintext, r) ->
        let key = Aes.expand (String.make 16 'k') in
        let iv = String.make 12 'i' in
        let ct, tag = Gcm.encrypt ~key ~iv plaintext in
        let pos = r mod String.length ct in
        let b = Bytes.of_string ct in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
        Result.is_error
          (Gcm.decrypt ~key ~iv ~tag (Bytes.unsafe_to_string b)));
    Alcotest.test_case "gcm wrong aad rejected" `Quick (fun () ->
        let key = Aes.expand (String.make 16 'k') in
        let iv = String.make 12 'i' in
        let ct, tag = Gcm.encrypt ~key ~iv ~aad:"header" "payload" in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Gcm.decrypt ~key ~iv ~aad:"other" ~tag ct)));
    qtest "aead gcm scheme roundtrip" ~count:100
      QCheck2.Gen.(pair (string_size (int_range 0 200)) (string_size (int_range 0 32)))
      (fun (plaintext, aad) ->
        let key = Aead.of_secret ~scheme:Aead.Gcm (String.make 32 'G') in
        let nonce = String.make 16 'N' in
        Aead.open_ ~key ~nonce ~aad (Aead.seal ~key ~nonce ~aad plaintext)
        = Ok plaintext);
    Alcotest.test_case "aead schemes are incompatible by design" `Quick
      (fun () ->
        let ikm = String.make 32 'S' in
        let etm = Aead.of_secret ikm in
        let gcm = Aead.of_secret ~scheme:Aead.Gcm ikm in
        let nonce = String.make 16 'N' in
        Alcotest.(check bool) "gcm cannot open etm" true
          (Result.is_error (Aead.open_ ~key:gcm ~nonce (Aead.seal ~key:etm ~nonce "x")));
        Alcotest.(check bool) "etm cannot open gcm" true
          (Result.is_error (Aead.open_ ~key:etm ~nonce (Aead.seal ~key:gcm ~nonce "x"))));
  ]

(* ------------------------------------------------------------------ *)
(* X25519 *)

let x25519_tests =
  [
    Alcotest.test_case "rfc7748 vector 1" `Quick (fun () ->
        check_hex "out"
          "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
          (X25519.scalar_mult
             ~scalar:(hex "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
             ~point:(hex "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")));
    Alcotest.test_case "rfc7748 alice public" `Quick (fun () ->
        check_hex "pub"
          "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
          (X25519.public_of_secret
             (hex "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")));
    Alcotest.test_case "rfc7748 bob public" `Quick (fun () ->
        check_hex "pub"
          "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
          (X25519.public_of_secret
             (hex "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb")));
    Alcotest.test_case "rfc7748 shared secret" `Quick (fun () ->
        let alice = hex "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a" in
        let bob_pub = hex "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f" in
        match X25519.shared_secret ~secret:alice ~peer:bob_pub with
        | Ok s ->
            check_hex "shared"
              "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742" s
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "zero point rejected" `Quick (fun () ->
        match X25519.shared_secret ~secret:(String.make 32 'x') ~peer:(String.make 32 '\000') with
        | Ok _ -> Alcotest.fail "low-order point accepted"
        | Error _ -> ());
    qtest "dh agreement" ~count:10 QCheck2.Gen.(pair (string_size (return 32)) (string_size (return 32)))
      (fun (sa, sb) ->
        let pa = X25519.public_of_secret sa and pb = X25519.public_of_secret sb in
        X25519.scalar_mult ~scalar:sa ~point:pb = X25519.scalar_mult ~scalar:sb ~point:pa);
  ]

(* ------------------------------------------------------------------ *)
(* Field arithmetic mod 2^255 - 19 *)

let arb_fe =
  QCheck2.Gen.(
    let* s = string_size ~gen:char (return 32) in
    return (Fe25519.of_bytes s))

let fe_tests =
  [
    qtest "mul commutes" ~count:100 QCheck2.Gen.(pair arb_fe arb_fe)
      (fun (a, b) -> Fe25519.equal (Fe25519.mul a b) (Fe25519.mul b a));
    qtest "mul associates" ~count:100 QCheck2.Gen.(triple arb_fe arb_fe arb_fe)
      (fun (a, b, c) ->
        Fe25519.equal
          (Fe25519.mul a (Fe25519.mul b c))
          (Fe25519.mul (Fe25519.mul a b) c));
    qtest "distributivity" ~count:100 QCheck2.Gen.(triple arb_fe arb_fe arb_fe)
      (fun (a, b, c) ->
        Fe25519.equal
          (Fe25519.mul a (Fe25519.add b c))
          (Fe25519.add (Fe25519.mul a b) (Fe25519.mul a c)));
    qtest "sq equals mul self" ~count:100 arb_fe (fun a ->
        Fe25519.equal (Fe25519.sq a) (Fe25519.mul a a));
    qtest "add/sub inverse" ~count:100 QCheck2.Gen.(pair arb_fe arb_fe)
      (fun (a, b) -> Fe25519.equal (Fe25519.sub (Fe25519.add a b) b) a);
    qtest "neg is additive inverse" ~count:100 arb_fe (fun a ->
        Fe25519.is_zero (Fe25519.add a (Fe25519.neg a)));
    qtest "addition-chain inversion matches generic" ~count:50 arb_fe (fun a ->
        Fe25519.is_zero a
        || Fe25519.equal (Fe25519.invert a) (Fe25519.generic_invert a));
    qtest "invert is multiplicative inverse" ~count:50 arb_fe (fun a ->
        Fe25519.is_zero a
        || Fe25519.equal (Fe25519.mul a (Fe25519.invert a)) (Fe25519.one ()));
    qtest "sqrt squares back" ~count:50 arb_fe (fun a ->
        (* a^2 is always a square; its root must square to a^2. *)
        let a2 = Fe25519.sq a in
        match Fe25519.sqrt a2 with
        | Some r -> Fe25519.equal (Fe25519.sq r) a2
        | None -> false);
    qtest "bytes roundtrip" ~count:100 arb_fe (fun a ->
        Fe25519.equal a (Fe25519.of_bytes (Fe25519.to_bytes a)));
    Alcotest.test_case "canonical encoding reduces mod p" `Quick (fun () ->
        (* p itself encodes as zero. *)
        let p_bytes =
          Apna_util.Hex.decode_exn
            "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f"
        in
        Alcotest.(check bool) "p = 0" true (Fe25519.is_zero (Fe25519.of_bytes p_bytes)));
  ]

(* ------------------------------------------------------------------ *)
(* Ed25519 *)

let ed25519_tests =
  [
    Alcotest.test_case "rfc8032 test 1 (empty message)" `Quick (fun () ->
        let kp = Ed25519.keypair_of_seed
            (hex "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
        in
        check_hex "pub" "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
          (Ed25519.public_key kp);
        check_hex "sig"
          "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
          (Ed25519.sign kp ""));
    Alcotest.test_case "rfc8032 test 2 (one byte)" `Quick (fun () ->
        let kp = Ed25519.keypair_of_seed
            (hex "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb")
        in
        check_hex "pub" "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
          (Ed25519.public_key kp);
        check_hex "sig"
          "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
          (Ed25519.sign kp (hex "72")));
    Alcotest.test_case "rfc8032 test 3 (two bytes)" `Quick (fun () ->
        let kp = Ed25519.keypair_of_seed
            (hex "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7")
        in
        check_hex "pub" "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
          (Ed25519.public_key kp);
        check_hex "sig"
          "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
          (Ed25519.sign kp (hex "af82")));
    Alcotest.test_case "verify accepts own signatures" `Quick (fun () ->
        let kp = Ed25519.keypair_of_seed (String.make 32 's') in
        let msg = "attributable packet" in
        Alcotest.(check bool) "ok" true
          (Ed25519.verify ~pub:(Ed25519.public_key kp) ~msg
             ~signature:(Ed25519.sign kp msg)));
    Alcotest.test_case "verify rejects tampered message" `Quick (fun () ->
        let kp = Ed25519.keypair_of_seed (String.make 32 's') in
        let signature = Ed25519.sign kp "original" in
        Alcotest.(check bool) "rejected" false
          (Ed25519.verify ~pub:(Ed25519.public_key kp) ~msg:"tampered" ~signature));
    Alcotest.test_case "verify rejects wrong key" `Quick (fun () ->
        let kp = Ed25519.keypair_of_seed (String.make 32 's') in
        let kp' = Ed25519.keypair_of_seed (String.make 32 't') in
        let signature = Ed25519.sign kp "msg" in
        Alcotest.(check bool) "rejected" false
          (Ed25519.verify ~pub:(Ed25519.public_key kp') ~msg:"msg" ~signature));
    Alcotest.test_case "verify rejects malformed inputs" `Quick (fun () ->
        let kp = Ed25519.keypair_of_seed (String.make 32 's') in
        Alcotest.(check bool) "short sig" false
          (Ed25519.verify ~pub:(Ed25519.public_key kp) ~msg:"m" ~signature:"short");
        Alcotest.(check bool) "bad pub" false
          (Ed25519.verify ~pub:(String.make 32 '\255') ~msg:"m"
             ~signature:(Ed25519.sign kp "m")));
    qtest "sign/verify roundtrip" ~count:5
      QCheck2.Gen.(pair (string_size (return 32)) (string_size (int_range 0 100)))
      (fun (seed, msg) ->
        let kp = Ed25519.keypair_of_seed seed in
        Ed25519.verify ~pub:(Ed25519.public_key kp) ~msg ~signature:(Ed25519.sign kp msg));
    qtest "bit flip anywhere in signature rejected" ~count:5
      QCheck2.Gen.(pair (string_size (return 32)) (int_range 0 511))
      (fun (seed, bit) ->
        let kp = Ed25519.keypair_of_seed seed in
        let msg = "flip test" in
        let s = Bytes.of_string (Ed25519.sign kp msg) in
        Bytes.set s (bit / 8)
          (Char.chr (Char.code (Bytes.get s (bit / 8)) lxor (1 lsl (bit mod 8))));
        not
          (Ed25519.verify ~pub:(Ed25519.public_key kp) ~msg
             ~signature:(Bytes.unsafe_to_string s)));
  ]

(* ------------------------------------------------------------------ *)
(* AEAD *)

let aead_tests =
  let key = Aead.of_secret (String.make 32 'K') in
  let nonce = String.make 16 'N' in
  [
    qtest "seal/open roundtrip" ~count:200
      QCheck2.Gen.(pair (string_size (int_range 0 300)) (string_size (int_range 0 32)))
      (fun (plaintext, aad) ->
        match Aead.open_ ~key ~nonce ~aad (Aead.seal ~key ~nonce ~aad plaintext) with
        | Ok p -> p = plaintext
        | Error _ -> false);
    qtest "ciphertext tamper rejected" ~count:100
      QCheck2.Gen.(pair (string_size (int_range 1 100)) (int_range 0 1_000_000))
      (fun (plaintext, r) ->
        let sealed = Aead.seal ~key ~nonce plaintext in
        let pos = r mod String.length sealed in
        let b = Bytes.of_string sealed in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
        Result.is_error (Aead.open_ ~key ~nonce (Bytes.unsafe_to_string b)));
    Alcotest.test_case "wrong aad rejected" `Quick (fun () ->
        let sealed = Aead.seal ~key ~nonce ~aad:"header" "payload" in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Aead.open_ ~key ~nonce ~aad:"other" sealed)));
    Alcotest.test_case "wrong nonce rejected" `Quick (fun () ->
        let sealed = Aead.seal ~key ~nonce "payload" in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Aead.open_ ~key ~nonce:(String.make 16 'M') sealed)));
    Alcotest.test_case "wrong key rejected" `Quick (fun () ->
        let sealed = Aead.seal ~key ~nonce "payload" in
        let key' = Aead.of_secret (String.make 32 'L') in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Aead.open_ ~key:key' ~nonce sealed)));
    Alcotest.test_case "truncated input rejected" `Quick (fun () ->
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Aead.open_ ~key ~nonce "tiny")));
  ]

(* ------------------------------------------------------------------ *)
(* Hex / Ct utility coverage lives here too: they are crypto-adjacent. *)

let util_tests =
  [
    qtest "hex roundtrip" ~count:200 QCheck2.Gen.(string_size (int_range 0 64))
      (fun s -> Apna_util.Hex.decode (Apna_util.Hex.encode s) = Ok s);
    Alcotest.test_case "hex rejects odd length" `Quick (fun () ->
        Alcotest.(check bool) "error" true (Result.is_error (Apna_util.Hex.decode "abc")));
    Alcotest.test_case "hex rejects non-hex" `Quick (fun () ->
        Alcotest.(check bool) "error" true (Result.is_error (Apna_util.Hex.decode "zz")));
    qtest "ct equal agrees with (=)" ~count:300
      QCheck2.Gen.(pair (string_size (int_range 0 32)) (string_size (int_range 0 32)))
      (fun (a, b) -> Apna_util.Ct.equal a b = (a = b));
    qtest "ct xor involutive" ~count:200 QCheck2.Gen.(pair (string_size (return 24)) (string_size (return 24)))
      (fun (a, b) -> Apna_util.Ct.xor (Apna_util.Ct.xor a b) b = a);
  ]

(* ------------------------------------------------------------------ *)
(* Allocation-free variants (the burst fast path): each _into / prepared
   entry point must agree byte-for-byte with its allocating original. *)

let into_tests =
  let gen_msg = QCheck2.Gen.(string_size (int_range 0 300)) in
  let gen_key = QCheck2.Gen.(string_size (int_range 1 80)) in
  [
    qtest "sha256 feed_bytes/finalize_into == digest"
      QCheck2.Gen.(pair gen_msg (int_range 0 8))
      (fun (msg, pad) ->
        let c = Sha256.init () in
        let src = Bytes.of_string (String.make pad '!' ^ msg) in
        Sha256.feed_bytes c src ~off:pad ~len:(String.length msg);
        let out = Bytes.make (Sha256.digest_size + pad) '\xff' in
        Sha256.finalize_into c out ~off:pad;
        Bytes.sub_string out pad Sha256.digest_size = Sha256.digest msg);
    qtest "sha256 reset reuses a context" QCheck2.Gen.(pair gen_msg gen_msg)
      (fun (a, b) ->
        let c = Sha256.init () in
        Sha256.feed c a;
        let first = Sha256.finalize c in
        Sha256.reset c;
        Sha256.feed c b;
        first = Sha256.digest a && Sha256.finalize c = Sha256.digest b);
    qtest "hmac mac_into == mac" QCheck2.Gen.(pair gen_key gen_msg)
      (fun (key, msg) ->
        let p = Hmac.Sha256.prepare ~key in
        let out = Bytes.make 32 '\x00' in
        let src = Bytes.of_string msg in
        Hmac.Sha256.mac_into p ~src ~off:0 ~len:(Bytes.length src) ~out ~out_off:0;
        let again = Bytes.make 32 '\x00' in
        Hmac.Sha256.mac_into p ~src ~off:0 ~len:(Bytes.length src) ~out:again ~out_off:0;
        (* The prepared key is reusable: a second MAC must not be polluted
           by the first one's context state. *)
        Bytes.to_string out = Hmac.Sha256.mac ~key msg
        && Bytes.to_string again = Bytes.to_string out);
    qtest "hmac mac_list_prepared == mac_list"
      QCheck2.Gen.(pair gen_key (list_size (int_range 0 6) gen_msg))
      (fun (key, parts) ->
        let p = Hmac.Sha256.prepare ~key in
        Hmac.Sha256.mac_list_prepared p parts = Hmac.Sha256.mac_list ~key parts);
    qtest "aes encrypt_block_into == encrypt_block (incl. in place)"
      QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
      (fun (key, block) ->
        let k = Aes.expand key in
        let expected = Aes.encrypt_block k block in
        let dst = Bytes.make 16 '\x00' in
        Aes.encrypt_block_into k ~src:(Bytes.of_string block) ~src_off:0 ~dst ~dst_off:0;
        let in_place = Bytes.of_string block in
        Aes.encrypt_block_into k ~src:in_place ~src_off:0 ~dst:in_place ~dst_off:0;
        Bytes.to_string dst = expected && Bytes.to_string in_place = expected);
    qtest "cbc_mac mac_into == mac"
      QCheck2.Gen.(pair (string_size (return 16)) (int_range 1 4))
      (fun (key, blocks) ->
        let k = Aes.expand key in
        let msg = String.concat "" (List.init blocks (fun i -> String.make 16 (Char.chr (0x20 + i)))) in
        let out = Bytes.make 16 '\x00' in
        Aes.Cbc_mac.mac_into ~key:k ~src:(Bytes.of_string msg) ~off:0
          ~len:(String.length msg) ~out ~out_off:0;
        Bytes.to_string out = Aes.Cbc_mac.mac ~key:k msg);
  ]

let () =
  Alcotest.run "apna_crypto"
    [
      ("util", util_tests);
      ("bigint", bigint_tests);
      ("sha2", sha2_tests);
      ("kdf", kdf_tests);
      ("aes", aes_tests);
      ("gcm", gcm_tests);
      ("x25519", x25519_tests);
      ("fe25519", fe_tests);
      ("ed25519", ed25519_tests);
      ("aead", aead_tests);
      ("into", into_tests);
    ]
