(* Tests for the observability subsystem: metrics registry, JSON codec and
   trace-span ring buffer. Everything here uses private registries/sinks so
   the default instances other suites may touch stay untouched. *)

open Apna_obs

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics_tests =
  [
    Alcotest.test_case "counters record only while enabled" `Quick (fun () ->
        let r = Metrics.create () in
        let c = Metrics.Counter.register r "t_total" in
        Metrics.Counter.incr c;
        Alcotest.(check int) "disabled: dropped" 0 (Metrics.Counter.value c);
        Metrics.set_enabled r true;
        Metrics.Counter.incr c;
        Metrics.Counter.incr ~by:5 c;
        Alcotest.(check int) "enabled: counted" 6 (Metrics.Counter.value c);
        Metrics.set_enabled r false;
        Metrics.Counter.incr c;
        Alcotest.(check int) "re-disabled: dropped" 6 (Metrics.Counter.value c));
    Alcotest.test_case "gauges set and add" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let g = Metrics.Gauge.register r "t_depth" in
        Metrics.Gauge.set g 3.0;
        Metrics.Gauge.add g 1.5;
        Alcotest.(check (float 1e-9)) "value" 4.5 (Metrics.Gauge.value g));
    Alcotest.test_case "same (name, labels) shares the series" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let a =
          Metrics.Counter.register r ~labels:[ ("x", "1"); ("y", "2") ] "t_total"
        in
        (* Label order must not matter. *)
        let b =
          Metrics.Counter.register r ~labels:[ ("y", "2"); ("x", "1") ] "t_total"
        in
        Metrics.Counter.incr a;
        Metrics.Counter.incr b;
        Alcotest.(check int) "shared" 2 (Metrics.Counter.value a));
    Alcotest.test_case "different labels are distinct series" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let a = Metrics.Counter.register r ~labels:[ ("x", "1") ] "t_total" in
        let b = Metrics.Counter.register r ~labels:[ ("x", "2") ] "t_total" in
        Metrics.Counter.incr a;
        Alcotest.(check int) "a" 1 (Metrics.Counter.value a);
        Alcotest.(check int) "b" 0 (Metrics.Counter.value b));
    Alcotest.test_case "histogram summarizes samples" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let h = Metrics.Histogram.register r ~lo:0.0 ~hi:100.0 "t_ns" in
        for i = 1 to 100 do
          Metrics.Histogram.observe h (float_of_int i)
        done;
        Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
        Alcotest.(check (float 1e-6)) "mean" 50.5 (Metrics.Histogram.mean h);
        let p50 = Metrics.Histogram.percentile h 0.5 in
        Alcotest.(check bool) "p50 near 50" true (abs_float (p50 -. 50.0) < 2.0));
    Alcotest.test_case "render_text carries HELP, TYPE and labels" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let c =
          Metrics.Counter.register r ~help:"What it counts"
            ~labels:[ ("aid", "64500") ]
            "apna_t_total"
        in
        Metrics.Counter.incr c;
        let text = Metrics.render_text r in
        let has needle =
          let nl = String.length needle and tl = String.length text in
          let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "help" true (has "# HELP apna_t_total What it counts");
        Alcotest.(check bool) "type" true (has "# TYPE apna_t_total counter");
        Alcotest.(check bool) "series" true (has "apna_t_total{aid=\"64500\"} 1"));
    Alcotest.test_case "to_json round-trips through the parser" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        Metrics.Counter.incr
          (Metrics.Counter.register r ~labels:[ ("k", "v") ] "t_total");
        Metrics.Gauge.set (Metrics.Gauge.register r "t_depth") 2.5;
        let h = Metrics.Histogram.register r ~lo:0.0 ~hi:10.0 "t_ns" in
        Metrics.Histogram.observe h 3.0;
        let text = Json.to_string ~pretty:true (Metrics.to_json r) in
        match Json.parse text with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok doc ->
            let counters = Option.get (Json.member "counters" doc) in
            (match Json.member "t_total{k=\"v\"}" counters with
            | Some (Json.Int 1) -> ()
            | _ -> Alcotest.fail "counter value lost");
            let hists = Option.get (Json.member "histograms" doc) in
            let hj = Option.get (Json.member "t_ns" hists) in
            Alcotest.(check (float 1e-9))
              "hist count" 1.0
              (Option.get (Json.number (Option.get (Json.member "count" hj)))));
    Alcotest.test_case "empty-histogram JSON renders nan as null" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        ignore (Metrics.Histogram.register r ~lo:0.0 ~hi:1.0 "t_ns");
        match Json.parse (Json.to_string (Metrics.to_json r)) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok _ -> ());
    Alcotest.test_case "summary_line mentions series and events" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        Metrics.Counter.incr ~by:7 (Metrics.Counter.register r "t_total");
        let line = Metrics.summary_line r in
        Alcotest.(check bool) "non-empty" true (String.length line > 0));
  ]

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let json_tests =
  [
    Alcotest.test_case "renders atoms" `Quick (fun () ->
        Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
        Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
        Alcotest.(check string) "int" "-42" (Json.to_string (Json.Int (-42)));
        Alcotest.(check string) "nan is null" "null"
          (Json.to_string (Json.Float nan));
        Alcotest.(check string) "inf is null" "null"
          (Json.to_string (Json.Float infinity));
        Alcotest.(check string) "escapes" "\"a\\\"b\\n\""
          (Json.to_string (Json.Str "a\"b\n")));
    Alcotest.test_case "parses documents" `Quick (fun () ->
        match Json.parse " {\"a\": [1, 2.5, \"x\", null, true], \"b\": {}} " with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok doc -> begin
            match Json.member "a" doc with
            | Some (Json.List [ Json.Int 1; Json.Float f; Json.Str "x"; Json.Null; Json.Bool true ]) ->
                Alcotest.(check (float 1e-9)) "2.5" 2.5 f
            | _ -> Alcotest.fail "wrong shape"
          end);
    Alcotest.test_case "parses escapes and unicode" `Quick (fun () ->
        match Json.parse {|"é\t\\"|} with
        | Ok (Json.Str s) -> Alcotest.(check string) "utf8" "\xc3\xa9\t\\" s
        | Ok _ -> Alcotest.fail "not a string"
        | Error e -> Alcotest.failf "parse: %s" e);
    Alcotest.test_case "rejects malformed documents" `Quick (fun () ->
        List.iter
          (fun input ->
            match Json.parse input with
            | Ok _ -> Alcotest.failf "accepted %S" input
            | Error _ -> ())
          [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated"; "nan" ]);
    qtest "int round trip" QCheck2.Gen.int (fun i ->
        Json.parse (Json.to_string (Json.Int i)) = Ok (Json.Int i));
    qtest "string round trip" QCheck2.Gen.string (fun s ->
        Json.parse (Json.to_string (Json.Str s)) = Ok (Json.Str s));
    qtest "finite float round trip" ~count:500
      QCheck2.Gen.(float_range (-1e15) 1e15)
      (fun f ->
        match Json.parse (Json.to_string (Json.Float f)) with
        | Ok (Json.Float g) -> g = f
        | Ok (Json.Int n) -> float_of_int n = f
        | _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Spans *)

let span_tests =
  [
    Alcotest.test_case "records a packet's path in order" `Quick (fun () ->
        let s = Span.create_sink ~enabled:true () in
        let t = ref 0.0 in
        Span.set_clock s (fun () -> !t);
        let key = Span.key_of_string "mac-bytes" in
        List.iter
          (fun stage ->
            let sp = Span.start s ~key ~stage in
            t := !t +. 1.0;
            Span.finish s sp)
          [ "host.encrypt"; "br.egress"; "br.ingress"; "as.deliver" ];
        (* An unrelated packet interleaved in the ring. *)
        Span.record s ~key:(Span.key_of_string "other") ~stage:"br.egress"
          ~t0:0.0 ~t1:0.1;
        let path = Span.by_key s key in
        Alcotest.(check (list string))
          "stages in finish order"
          [ "host.encrypt"; "br.egress"; "br.ingress"; "as.deliver" ]
          (List.map (fun (r : Span.record) -> r.stage) path);
        List.iter
          (fun (r : Span.record) ->
            Alcotest.(check (float 1e-9)) "duration" 1.0 (r.t1 -. r.t0))
          path);
    Alcotest.test_case "disabled sink stores nothing, reads no clock" `Quick
      (fun () ->
        let s = Span.create_sink () in
        Span.set_clock s (fun () -> Alcotest.fail "clock read while disabled");
        let sp = Span.start s ~key:1L ~stage:"x" in
        Span.finish s sp;
        Span.record s ~key:1L ~stage:"x" ~t0:0.0 ~t1:1.0;
        Alcotest.(check int) "empty" 0 (Span.recorded s);
        Alcotest.(check bool) "start is none" true (sp == Span.none));
    Alcotest.test_case "ring keeps only the newest spans" `Quick (fun () ->
        let s = Span.create_sink ~capacity:4 ~enabled:true () in
        for i = 1 to 10 do
          Span.record s ~key:(Int64.of_int i) ~stage:"st" ~t0:0.0 ~t1:1.0
        done;
        Alcotest.(check int) "all recorded" 10 (Span.recorded s);
        let kept = Span.to_list s in
        Alcotest.(check int) "capacity retained" 4 (List.length kept);
        Alcotest.(check (list int))
          "newest, oldest first" [ 7; 8; 9; 10 ]
          (List.map (fun (r : Span.record) -> Int64.to_int r.key) kept));
    Alcotest.test_case "stage_summary aggregates by stage" `Quick (fun () ->
        let s = Span.create_sink ~enabled:true () in
        Span.record s ~key:1L ~stage:"b" ~t0:0.0 ~t1:2.0;
        Span.record s ~key:2L ~stage:"b" ~t0:0.0 ~t1:4.0;
        Span.record s ~key:3L ~stage:"a" ~t0:0.0 ~t1:1.0;
        match Span.stage_summary s with
        | [ ("a", 1, m_a); ("b", 2, m_b) ] ->
            Alcotest.(check (float 1e-9)) "a mean" 1.0 m_a;
            Alcotest.(check (float 1e-9)) "b mean" 3.0 m_b
        | other -> Alcotest.failf "unexpected summary (%d stages)" (List.length other));
    Alcotest.test_case "clear resets retention, not identity" `Quick (fun () ->
        let s = Span.create_sink ~enabled:true () in
        Span.record s ~key:1L ~stage:"x" ~t0:0.0 ~t1:1.0;
        Span.clear s;
        Alcotest.(check int) "nothing retained" 0 (List.length (Span.to_list s)));
    Alcotest.test_case "key_of_string is deterministic and spreads" `Quick
      (fun () ->
        Alcotest.(check bool) "equal inputs" true
          (Span.key_of_string "abc" = Span.key_of_string "abc");
        Alcotest.(check bool) "distinct inputs" false
          (Span.key_of_string "abc" = Span.key_of_string "abd");
        (* FNV-1a of the empty string is the offset basis. *)
        Alcotest.(check int64) "offset basis" 0xcbf29ce484222325L
          (Span.key_of_string ""));
  ]

let () =
  Alcotest.run "apna_obs"
    [ ("metrics", metrics_tests); ("json", json_tests); ("spans", span_tests) ]
