(* Tests for the observability subsystem: metrics registry, JSON codec and
   trace-span ring buffer. Everything here uses private registries/sinks so
   the default instances other suites may touch stay untouched. *)

open Apna_obs

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics_tests =
  [
    Alcotest.test_case "counters record only while enabled" `Quick (fun () ->
        let r = Metrics.create () in
        let c = Metrics.Counter.register r "t_total" in
        Metrics.Counter.incr c;
        Alcotest.(check int) "disabled: dropped" 0 (Metrics.Counter.value c);
        Metrics.set_enabled r true;
        Metrics.Counter.incr c;
        Metrics.Counter.incr ~by:5 c;
        Alcotest.(check int) "enabled: counted" 6 (Metrics.Counter.value c);
        Metrics.set_enabled r false;
        Metrics.Counter.incr c;
        Alcotest.(check int) "re-disabled: dropped" 6 (Metrics.Counter.value c));
    Alcotest.test_case "gauges set and add" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let g = Metrics.Gauge.register r "t_depth" in
        Metrics.Gauge.set g 3.0;
        Metrics.Gauge.add g 1.5;
        Alcotest.(check (float 1e-9)) "value" 4.5 (Metrics.Gauge.value g));
    Alcotest.test_case "same (name, labels) shares the series" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let a =
          Metrics.Counter.register r ~labels:[ ("x", "1"); ("y", "2") ] "t_total"
        in
        (* Label order must not matter. *)
        let b =
          Metrics.Counter.register r ~labels:[ ("y", "2"); ("x", "1") ] "t_total"
        in
        Metrics.Counter.incr a;
        Metrics.Counter.incr b;
        Alcotest.(check int) "shared" 2 (Metrics.Counter.value a));
    Alcotest.test_case "different labels are distinct series" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let a = Metrics.Counter.register r ~labels:[ ("x", "1") ] "t_total" in
        let b = Metrics.Counter.register r ~labels:[ ("x", "2") ] "t_total" in
        Metrics.Counter.incr a;
        Alcotest.(check int) "a" 1 (Metrics.Counter.value a);
        Alcotest.(check int) "b" 0 (Metrics.Counter.value b));
    Alcotest.test_case "histogram summarizes samples" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let h = Metrics.Histogram.register r ~lo:0.0 ~hi:100.0 "t_ns" in
        for i = 1 to 100 do
          Metrics.Histogram.observe h (float_of_int i)
        done;
        Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
        Alcotest.(check (float 1e-6)) "mean" 50.5 (Metrics.Histogram.mean h);
        let p50 = Metrics.Histogram.percentile h 0.5 in
        Alcotest.(check bool) "p50 near 50" true (abs_float (p50 -. 50.0) < 2.0));
    Alcotest.test_case "render_text carries HELP, TYPE and labels" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let c =
          Metrics.Counter.register r ~help:"What it counts"
            ~labels:[ ("aid", "64500") ]
            "apna_t_total"
        in
        Metrics.Counter.incr c;
        let text = Metrics.render_text r in
        let has needle =
          let nl = String.length needle and tl = String.length text in
          let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "help" true (has "# HELP apna_t_total What it counts");
        Alcotest.(check bool) "type" true (has "# TYPE apna_t_total counter");
        Alcotest.(check bool) "series" true (has "apna_t_total{aid=\"64500\"} 1"));
    Alcotest.test_case "to_json round-trips through the parser" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        Metrics.Counter.incr
          (Metrics.Counter.register r ~labels:[ ("k", "v") ] "t_total");
        Metrics.Gauge.set (Metrics.Gauge.register r "t_depth") 2.5;
        let h = Metrics.Histogram.register r ~lo:0.0 ~hi:10.0 "t_ns" in
        Metrics.Histogram.observe h 3.0;
        let text = Json.to_string ~pretty:true (Metrics.to_json r) in
        match Json.parse text with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok doc ->
            let counters = Option.get (Json.member "counters" doc) in
            (match Json.member "t_total{k=\"v\"}" counters with
            | Some (Json.Int 1) -> ()
            | _ -> Alcotest.fail "counter value lost");
            let hists = Option.get (Json.member "histograms" doc) in
            let hj = Option.get (Json.member "t_ns" hists) in
            Alcotest.(check (float 1e-9))
              "hist count" 1.0
              (Option.get (Json.number (Option.get (Json.member "count" hj)))));
    Alcotest.test_case "empty-histogram JSON renders nan as null" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        ignore (Metrics.Histogram.register r ~lo:0.0 ~hi:1.0 "t_ns");
        match Json.parse (Json.to_string (Metrics.to_json r)) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok _ -> ());
    Alcotest.test_case "summary_line mentions series and events" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        Metrics.Counter.incr ~by:7 (Metrics.Counter.register r "t_total");
        let line = Metrics.summary_line r in
        Alcotest.(check bool) "non-empty" true (String.length line > 0));
    Alcotest.test_case "summary_line is pinned for a fixed registry" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        Metrics.Counter.incr ~by:3 (Metrics.Counter.register r "b_total");
        Metrics.Counter.incr ~by:4 (Metrics.Counter.register r "a_total");
        Metrics.Gauge.set (Metrics.Gauge.register r "t_depth") 1.0;
        let h = Metrics.Histogram.register r ~lo:0.0 ~hi:1.0 "t_ns" in
        Metrics.Histogram.observe h 0.25;
        Metrics.Histogram.observe h 0.75;
        Alcotest.(check string)
          "deterministic output"
          "2 counters (7 events), 1 gauges, 1 histograms (2 samples)"
          (Metrics.summary_line r);
        (* Computed over [ordered], so a second call is identical. *)
        Alcotest.(check string)
          "stable across calls" (Metrics.summary_line r)
          (Metrics.summary_line r));
    Alcotest.test_case "duplicate label names are rejected" `Quick (fun () ->
        let r = Metrics.create () in
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Metrics: duplicate label name \"a\"") (fun () ->
            ignore
              (Metrics.Counter.register r
                 ~labels:[ ("a", "1"); ("a", "2") ]
                 "t_total")));
    Alcotest.test_case "empty label names are rejected" `Quick (fun () ->
        let r = Metrics.create () in
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Metrics: empty label name") (fun () ->
            ignore (Metrics.Gauge.register r ~labels:[ ("", "1") ] "t_depth")));
  ]

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let json_tests =
  [
    Alcotest.test_case "renders atoms" `Quick (fun () ->
        Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
        Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
        Alcotest.(check string) "int" "-42" (Json.to_string (Json.Int (-42)));
        Alcotest.(check string) "nan is null" "null"
          (Json.to_string (Json.Float nan));
        Alcotest.(check string) "inf is null" "null"
          (Json.to_string (Json.Float infinity));
        Alcotest.(check string) "escapes" "\"a\\\"b\\n\""
          (Json.to_string (Json.Str "a\"b\n")));
    Alcotest.test_case "parses documents" `Quick (fun () ->
        match Json.parse " {\"a\": [1, 2.5, \"x\", null, true], \"b\": {}} " with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok doc -> begin
            match Json.member "a" doc with
            | Some (Json.List [ Json.Int 1; Json.Float f; Json.Str "x"; Json.Null; Json.Bool true ]) ->
                Alcotest.(check (float 1e-9)) "2.5" 2.5 f
            | _ -> Alcotest.fail "wrong shape"
          end);
    Alcotest.test_case "parses escapes and unicode" `Quick (fun () ->
        match Json.parse {|"é\t\\"|} with
        | Ok (Json.Str s) -> Alcotest.(check string) "utf8" "\xc3\xa9\t\\" s
        | Ok _ -> Alcotest.fail "not a string"
        | Error e -> Alcotest.failf "parse: %s" e);
    Alcotest.test_case "rejects malformed documents" `Quick (fun () ->
        List.iter
          (fun input ->
            match Json.parse input with
            | Ok _ -> Alcotest.failf "accepted %S" input
            | Error _ -> ())
          [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated"; "nan" ]);
    qtest "int round trip" QCheck2.Gen.int (fun i ->
        Json.parse (Json.to_string (Json.Int i)) = Ok (Json.Int i));
    qtest "string round trip" QCheck2.Gen.string (fun s ->
        Json.parse (Json.to_string (Json.Str s)) = Ok (Json.Str s));
    qtest "finite float round trip" ~count:500
      QCheck2.Gen.(float_range (-1e15) 1e15)
      (fun f ->
        match Json.parse (Json.to_string (Json.Float f)) with
        | Ok (Json.Float g) -> g = f
        | Ok (Json.Int n) -> float_of_int n = f
        | _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Spans *)

let span_tests =
  [
    Alcotest.test_case "records a packet's path in order" `Quick (fun () ->
        let s = Span.create_sink ~enabled:true () in
        let t = ref 0.0 in
        Span.set_clock s (fun () -> !t);
        let key = Span.key_of_string "mac-bytes" in
        List.iter
          (fun stage ->
            let sp = Span.start s ~key ~stage in
            t := !t +. 1.0;
            Span.finish s sp)
          [ "host.encrypt"; "br.egress"; "br.ingress"; "as.deliver" ];
        (* An unrelated packet interleaved in the ring. *)
        Span.record s ~key:(Span.key_of_string "other") ~stage:"br.egress"
          ~t0:0.0 ~t1:0.1;
        let path = Span.by_key s key in
        Alcotest.(check (list string))
          "stages in finish order"
          [ "host.encrypt"; "br.egress"; "br.ingress"; "as.deliver" ]
          (List.map (fun (r : Span.record) -> r.stage) path);
        List.iter
          (fun (r : Span.record) ->
            Alcotest.(check (float 1e-9)) "duration" 1.0 (r.t1 -. r.t0))
          path);
    Alcotest.test_case "disabled sink stores nothing, reads no clock" `Quick
      (fun () ->
        let s = Span.create_sink () in
        Span.set_clock s (fun () -> Alcotest.fail "clock read while disabled");
        let sp = Span.start s ~key:1L ~stage:"x" in
        Span.finish s sp;
        Span.record s ~key:1L ~stage:"x" ~t0:0.0 ~t1:1.0;
        Alcotest.(check int) "empty" 0 (Span.recorded s);
        Alcotest.(check bool) "start is none" true (sp == Span.none));
    Alcotest.test_case "ring keeps only the newest spans" `Quick (fun () ->
        let s = Span.create_sink ~capacity:4 ~enabled:true () in
        for i = 1 to 10 do
          Span.record s ~key:(Int64.of_int i) ~stage:"st" ~t0:0.0 ~t1:1.0
        done;
        Alcotest.(check int) "all recorded" 10 (Span.recorded s);
        let kept = Span.to_list s in
        Alcotest.(check int) "capacity retained" 4 (List.length kept);
        Alcotest.(check (list int))
          "newest, oldest first" [ 7; 8; 9; 10 ]
          (List.map (fun (r : Span.record) -> Int64.to_int r.key) kept));
    Alcotest.test_case "stage_summary aggregates by stage" `Quick (fun () ->
        let s = Span.create_sink ~enabled:true () in
        Span.record s ~key:1L ~stage:"b" ~t0:0.0 ~t1:2.0;
        Span.record s ~key:2L ~stage:"b" ~t0:0.0 ~t1:4.0;
        Span.record s ~key:3L ~stage:"a" ~t0:0.0 ~t1:1.0;
        match Span.stage_summary s with
        | [ ("a", 1, m_a); ("b", 2, m_b) ] ->
            Alcotest.(check (float 1e-9)) "a mean" 1.0 m_a;
            Alcotest.(check (float 1e-9)) "b mean" 3.0 m_b
        | other -> Alcotest.failf "unexpected summary (%d stages)" (List.length other));
    Alcotest.test_case "clear resets retention, not identity" `Quick (fun () ->
        let s = Span.create_sink ~enabled:true () in
        Span.record s ~key:1L ~stage:"x" ~t0:0.0 ~t1:1.0;
        Span.clear s;
        Alcotest.(check int) "nothing retained" 0 (List.length (Span.to_list s)));
    Alcotest.test_case "key_of_string is deterministic and spreads" `Quick
      (fun () ->
        Alcotest.(check bool) "equal inputs" true
          (Span.key_of_string "abc" = Span.key_of_string "abc");
        Alcotest.(check bool) "distinct inputs" false
          (Span.key_of_string "abc" = Span.key_of_string "abd");
        (* FNV-1a of the empty string is the offset basis. *)
        Alcotest.(check int64) "offset basis" 0xcbf29ce484222325L
          (Span.key_of_string ""));
    Alcotest.test_case "evicted and capacity expose wraparound" `Quick
      (fun () ->
        let s = Span.create_sink ~capacity:4 ~enabled:true () in
        Alcotest.(check int) "capacity" 4 (Span.capacity s);
        Alcotest.(check int) "nothing evicted yet" 0 (Span.evicted s);
        for i = 1 to 10 do
          Span.record s ~key:(Int64.of_int i) ~stage:"st" ~t0:0.0 ~t1:1.0
        done;
        Alcotest.(check int) "evicted = written - capacity" 6 (Span.evicted s);
        Span.clear s;
        Alcotest.(check int) "clear resets eviction" 0 (Span.evicted s));
    qtest "ring retains min(written, capacity) spans in seq order" ~count:300
      QCheck2.Gen.(
        pair (int_range 1 16) (list_size (int_range 0 64) (int_range 0 5)))
      (fun (capacity, ops) ->
        let s = Span.create_sink ~capacity ~enabled:true () in
        List.iteri
          (fun i k ->
            Span.record s ~key:(Int64.of_int k)
              ~stage:(string_of_int (k mod 3))
              ~t0:(float_of_int i)
              ~t1:(float_of_int i +. 1.0))
          ops;
        let written = List.length ops in
        let retained = Span.to_list s in
        let seqs = List.map (fun (r : Span.record) -> r.seq) retained in
        (* Exactly the newest min(written, capacity) records, oldest
           first: seqs are the final contiguous window. *)
        let expect_n = min written capacity in
        List.length retained = expect_n
        && seqs = List.init expect_n (fun i -> written - expect_n + i)
        && Span.evicted s = max 0 (written - capacity));
    Alcotest.test_case "by_key stays causally ordered across a wrap" `Quick
      (fun () ->
        let s = Span.create_sink ~capacity:4 ~enabled:true () in
        let key = Span.key_of_string "the-packet" in
        let filler = Span.key_of_string "noise" in
        Span.record s ~key ~stage:"s1" ~t0:0.0 ~t1:0.1;
        Span.record s ~key:filler ~stage:"f" ~t0:0.2 ~t1:0.3;
        Span.record s ~key:filler ~stage:"f" ~t0:0.4 ~t1:0.5;
        Span.record s ~key ~stage:"s2" ~t0:0.6 ~t1:0.7;
        Span.record s ~key:filler ~stage:"f" ~t0:0.8 ~t1:0.9;
        Span.record s ~key:filler ~stage:"f" ~t0:1.0 ~t1:1.1;
        (* The ring has wrapped: s1 is gone, s2 retained. *)
        Span.record s ~key ~stage:"s3" ~t0:1.2 ~t1:1.3;
        Alcotest.(check int) "three spans evicted" 3 (Span.evicted s);
        Alcotest.(check (list string))
          "hops in causal order, truncated from the front" [ "s2"; "s3" ]
          (List.map (fun (r : Span.record) -> r.stage) (Span.by_key s key)));
  ]

(* ------------------------------------------------------------------ *)
(* Flight-recorder events and journeys *)

let ev sink ~key ?(at = 0.0) kind =
  Event.set_clock sink (fun () -> at);
  Event.record sink ~key kind

let event_tests =
  [
    Alcotest.test_case "disabled sink records nothing, reads no clock" `Quick
      (fun () ->
        let s = Event.create_sink () in
        Event.set_clock s (fun () -> Alcotest.fail "clock read while disabled");
        Event.record s ~key:1L (Event.Host_send { aid = 100; host = "h" });
        Alcotest.(check int) "empty" 0 (Event.recorded s));
    Alcotest.test_case "ring keeps the newest events, evicted exposed" `Quick
      (fun () ->
        let s = Event.create_sink ~capacity:3 ~enabled:true () in
        for i = 1 to 5 do
          ev s ~key:(Int64.of_int i) (Event.Deliver { aid = 1; hid = i })
        done;
        Alcotest.(check int) "recorded" 5 (Event.recorded s);
        Alcotest.(check int) "capacity" 3 (Event.capacity s);
        Alcotest.(check int) "evicted" 2 (Event.evicted s);
        Alcotest.(check (list int))
          "newest retained, oldest first" [ 3; 4; 5 ]
          (List.map
             (fun (r : Event.record) -> Int64.to_int r.key)
             (Event.to_list s)));
    Alcotest.test_case "keys match the span hash" `Quick (fun () ->
        Alcotest.(check int64) "same FNV-64"
          (Span.key_of_string "mac")
          (Event.key_of_string "mac"));
    Alcotest.test_case "delivered journey renders a waterfall" `Quick
      (fun () ->
        let s = Event.create_sink ~enabled:true () in
        let key = Event.key_of_string "mac" in
        ev s ~key ~at:0.0 (Event.Host_send { aid = 100; host = "alice" });
        ev s ~key ~at:0.1
          (Event.Br_egress { aid = 100; outcome = Event.Egress_ok });
        ev s ~key ~at:0.2
          (Event.Link_transit { src = 100; dst = 200; fate = Event.Delivered });
        ev s ~key ~at:0.3
          (Event.Br_ingress { aid = 200; outcome = Event.Ingress_deliver });
        ev s ~key ~at:0.4 (Event.Deliver { aid = 200; hid = 7 });
        match Journey.assemble s with
        | [ j ] ->
            Alcotest.(check bool) "delivered" true (j.Journey.outcome = Journey.Delivered);
            let text = Journey.render j in
            List.iter
              (fun needle ->
                let nl = String.length needle and tl = String.length text in
                let rec go i =
                  i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
                in
                Alcotest.(check bool) needle true (go 0))
              [ "host.send"; "br.egress"; "link.transit"; "br.ingress";
                "deliver"; "alice"; "delivered" ]
        | js -> Alcotest.failf "expected one journey, got %d" (List.length js));
    Alcotest.test_case "drop at a border router classifies with reason" `Quick
      (fun () ->
        let s = Event.create_sink ~enabled:true () in
        let key = 9L in
        ev s ~key ~at:0.0 (Event.Host_send { aid = 100; host = "h" });
        ev s ~key ~at:0.1
          (Event.Br_egress { aid = 100; outcome = Event.Egress_drop "bad-mac" });
        match Journey.assemble s with
        | [ j ] -> (
            match j.Journey.outcome with
            | Journey.Dropped_at { stage = "br.egress"; reason = "bad-mac" } ->
                Alcotest.(check string)
                  "last good hop" "host.send @ AS100" (Journey.last_good_hop j)
            | o -> Alcotest.failf "wrong outcome: %s" (Journey.outcome_label o))
        | _ -> Alcotest.fail "expected one journey");
    Alcotest.test_case "loss on a link classifies as lost" `Quick (fun () ->
        let s = Event.create_sink ~enabled:true () in
        let key = 5L in
        ev s ~key ~at:0.0 (Event.Host_send { aid = 100; host = "h" });
        ev s ~key ~at:0.1
          (Event.Br_egress { aid = 100; outcome = Event.Egress_ok });
        ev s ~key ~at:0.2
          (Event.Link_transit { src = 100; dst = 200; fate = Event.Lost });
        match Journey.assemble s with
        | [ j ] -> (
            match j.Journey.outcome with
            | Journey.Lost_on_link { src = 100; dst = 200; fate = Event.Lost } ->
                ()
            | o -> Alcotest.failf "wrong outcome: %s" (Journey.outcome_label o))
        | _ -> Alcotest.fail "expected one journey");
    Alcotest.test_case "a delivered duplicate outranks a lost copy" `Quick
      (fun () ->
        (* Duplication: one copy lost, one delivered — the packet made it. *)
        let s = Event.create_sink ~enabled:true () in
        let key = 6L in
        ev s ~key ~at:0.0
          (Event.Link_transit { src = 1; dst = 2; fate = Event.Duplicated });
        ev s ~key ~at:0.1
          (Event.Link_transit { src = 1; dst = 2; fate = Event.Lost });
        ev s ~key ~at:0.2 (Event.Deliver { aid = 2; hid = 1 });
        match Journey.assemble s with
        | [ j ] ->
            Alcotest.(check bool) "delivered" true
              (j.Journey.outcome = Journey.Delivered)
        | _ -> Alcotest.fail "expected one journey");
    Alcotest.test_case "no terminal event means in-flight" `Quick (fun () ->
        let s = Event.create_sink ~enabled:true () in
        ev s ~key:1L ~at:0.0 (Event.Host_send { aid = 1; host = "h" });
        match Journey.assemble s with
        | [ j ] ->
            Alcotest.(check string)
              "label" "in-flight"
              (Journey.outcome_label j.Journey.outcome)
        | _ -> Alcotest.fail "expected one journey");
    Alcotest.test_case "drop_report groups by last good hop and reason" `Quick
      (fun () ->
        let s = Event.create_sink ~enabled:true () in
        let lost_after_egress key =
          ev s ~key ~at:0.0 (Event.Host_send { aid = 100; host = "h" });
          ev s ~key ~at:0.1
            (Event.Br_egress { aid = 100; outcome = Event.Egress_ok });
          ev s ~key ~at:0.2
            (Event.Link_transit { src = 100; dst = 200; fate = Event.Lost })
        in
        lost_after_egress 1L;
        lost_after_egress 2L;
        ev s ~key:3L ~at:0.3
          (Event.Br_ingress { aid = 200; outcome = Event.Ingress_drop "revoked" });
        match Journey.drop_report (Journey.assemble s) with
        | [ (("br.egress @ AS100", "lost"), 2); (("(origin)", "revoked"), 1) ] ->
            ()
        | report ->
            Alcotest.failf "unexpected report: %s"
              (String.concat "; "
                 (List.map
                    (fun ((hop, reason), n) ->
                      Printf.sprintf "(%s, %s) x%d" hop reason n)
                    report)));
    Alcotest.test_case "summary counts outcomes" `Quick (fun () ->
        let s = Event.create_sink ~enabled:true () in
        ev s ~key:1L (Event.Deliver { aid = 1; hid = 1 });
        ev s ~key:2L (Event.Deliver { aid = 1; hid = 2 });
        ev s ~key:3L (Event.Host_send { aid = 1; host = "h" });
        Alcotest.(check (list (pair string int)))
          "sorted by count"
          [ ("delivered", 2); ("in-flight", 1) ]
          (Journey.summary (Journey.assemble s)));
  ]

(* ------------------------------------------------------------------ *)
(* Chrome trace export *)

let chrome_tests =
  [
    Alcotest.test_case "export is valid trace-event JSON" `Quick (fun () ->
        let spans = Span.create_sink ~enabled:true () in
        Span.record spans ~key:1L ~stage:"br.egress" ~t0:0.001 ~t1:0.002;
        let events = Event.create_sink ~enabled:true () in
        ev events ~key:1L ~at:0.001
          (Event.Br_egress { aid = 100; outcome = Event.Egress_ok });
        ev events ~key:1L ~at:0.003 (Event.Deliver { aid = 200; hid = 1 });
        let text = Chrome_trace.to_string ~spans ~events () in
        match Json.parse text with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok (Json.List entries) ->
            Alcotest.(check int) "one span + two events" 3 (List.length entries);
            List.iter
              (fun entry ->
                (match Json.member "name" entry with
                | Some (Json.Str _) -> ()
                | _ -> Alcotest.fail "name missing");
                (match Json.member "ph" entry with
                | Some (Json.Str ("X" | "i")) -> ()
                | _ -> Alcotest.fail "ph missing");
                match Json.number (Option.get (Json.member "ts" entry)) with
                | Some ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
                | None -> Alcotest.fail "ts not a number")
              entries
        | Ok _ -> Alcotest.fail "not a JSON array");
    Alcotest.test_case "entries are sorted by timestamp, pid is the AS" `Quick
      (fun () ->
        let events = Event.create_sink ~enabled:true () in
        ev events ~key:1L ~at:0.5 (Event.Deliver { aid = 300; hid = 1 });
        ev events ~key:1L ~at:0.1
          (Event.Host_send { aid = 100; host = "h" });
        match Chrome_trace.to_json ~events () with
        | Json.List [ first; second ] ->
            let ts e = Option.get (Json.number (Option.get (Json.member "ts" e))) in
            Alcotest.(check bool) "sorted" true (ts first <= ts second);
            (match Json.member "pid" first with
            | Some (Json.Int 100) -> ()
            | _ -> Alcotest.fail "pid is not the AS number");
            (* ts is microseconds. *)
            Alcotest.(check (float 1e-6)) "us conversion" 100000.0 (ts first)
        | _ -> Alcotest.fail "expected two entries");
    Alcotest.test_case "span entries carry a duration" `Quick (fun () ->
        let spans = Span.create_sink ~enabled:true () in
        Span.record spans ~key:1L ~stage:"st" ~t0:1.0 ~t1:1.5;
        match Chrome_trace.to_json ~spans () with
        | Json.List [ entry ] -> (
            match Json.number (Option.get (Json.member "dur" entry)) with
            | Some dur -> Alcotest.(check (float 1e-3)) "dur us" 500000.0 dur
            | None -> Alcotest.fail "dur not a number")
        | _ -> Alcotest.fail "expected one entry");
  ]

(* ------------------------------------------------------------------ *)
(* Label escaping and histogram clamp accounting *)

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let hostile_tests =
  [
    Alcotest.test_case "escape_label_value covers the exposition set" `Quick
      (fun () ->
        Alcotest.(check string)
          "quote/backslash/newline/cr/tab" "a\\\"b\\\\c\\nd\\re\\tf"
          (Metrics.escape_label_value "a\"b\\c\nd\re\tf");
        Alcotest.(check string)
          "clean values pass through" "plain-value_64500"
          (Metrics.escape_label_value "plain-value_64500"));
    Alcotest.test_case "hostile label values cannot break the scrape text"
      `Quick (fun () ->
        (* A drop reason echoed off the wire: quote to close the label,
           newline to inject a fake series line. *)
        let r = Metrics.create ~enabled:true () in
        let evil = "x\"} 999\ninjected_total 1\tend\\" in
        Metrics.Counter.incr
          (Metrics.Counter.register r ~labels:[ ("reason", evil) ] "t_total");
        let text = Metrics.render_text r in
        (* The series renders on ONE line, fully escaped. *)
        let lines = String.split_on_char '\n' text in
        let series_lines =
          List.filter (fun l -> contains l "t_total{") lines
        in
        Alcotest.(check int) "one series line" 1 (List.length series_lines);
        Alcotest.(check bool)
          "escaped quote" true
          (contains (List.hd series_lines) "x\\\"} 999\\ninjected_total");
        (* No line BEGINS with the injected name — the payload never
           becomes a series of its own. *)
        let starts_with p l =
          String.length l >= String.length p
          && String.sub l 0 (String.length p) = p
        in
        Alcotest.(check bool)
          "no injected series" false
          (List.exists (starts_with "injected_total") lines));
    Alcotest.test_case "hostile label values survive the JSON codec" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let evil = "a\"b\\c\nd" in
        Metrics.Counter.incr
          (Metrics.Counter.register r ~labels:[ ("k", evil) ] "t_total");
        match Json.parse (Json.to_string (Metrics.to_json r)) with
        | Error e -> Alcotest.failf "corrupted JSON: %s" e
        | Ok doc ->
            let counters = Option.get (Json.member "counters" doc) in
            let key =
              Printf.sprintf "t_total{k=\"%s\"}"
                (Metrics.escape_label_value evil)
            in
            (match Json.member key counters with
            | Some (Json.Int 1) -> ()
            | _ -> Alcotest.failf "series %S lost" key));
    Alcotest.test_case "label_suffix escapes values in place" `Quick
      (fun () ->
        Alcotest.(check string) "no labels" "" (Metrics.label_suffix []);
        Alcotest.(check string)
          "escaped" "{a=\"x\\\"y\",b=\"2\"}"
          (Metrics.label_suffix [ ("a", "x\"y"); ("b", "2") ]));
    Alcotest.test_case "histogram counts clamped samples per edge" `Quick
      (fun () ->
        let h = Accum.Hist.create ~lo:0.0 ~hi:10.0 () in
        List.iter (Accum.Hist.add h) [ -5.0; 15.0; 20.0; 5.0 ];
        Alcotest.(check int) "count includes clamped" 4 (Accum.Hist.count h);
        Alcotest.(check int) "below lo" 1 (Accum.Hist.clamped_lo h);
        Alcotest.(check int) "above hi" 2 (Accum.Hist.clamped_hi h);
        Alcotest.(check int) "total" 3 (Accum.Hist.clamped h);
        (* In-range samples clamp nothing. *)
        let h2 = Accum.Hist.create ~lo:0.0 ~hi:10.0 () in
        List.iter (Accum.Hist.add h2) [ 0.0; 10.0; 5.0 ];
        Alcotest.(check int) "edges are in range" 0 (Accum.Hist.clamped h2));
    Alcotest.test_case "scrape text surfaces clamped counts" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let h = Metrics.Histogram.register r ~lo:0.0 ~hi:10.0 "t_ns" in
        Metrics.Histogram.observe h 5.0;
        Alcotest.(check bool)
          "no clamp lines while clean" false
          (contains (Metrics.render_text r) "t_ns_clamped");
        Metrics.Histogram.observe h 99.0;
        Metrics.Histogram.observe h (-1.0);
        let text = Metrics.render_text r in
        Alcotest.(check bool)
          "hi edge" true
          (contains text "t_ns_clamped{edge=\"hi\"} 1");
        Alcotest.(check bool)
          "lo edge" true
          (contains text "t_ns_clamped{edge=\"lo\"} 1"));
    Alcotest.test_case "sampling snapshot carries clamp counts" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let h = Metrics.Histogram.register r ~lo:0.0 ~hi:10.0 "t_ns" in
        Metrics.Histogram.observe h 99.0;
        match Metrics.samples r with
        | [ { svalue = Metrics.Sample_hist hs; _ } ] ->
            Alcotest.(check int) "hi" 1 hs.Metrics.hclamped_hi;
            Alcotest.(check int) "lo" 0 hs.Metrics.hclamped_lo
        | _ -> Alcotest.fail "expected one histogram sample");
  ]

(* ------------------------------------------------------------------ *)
(* Timeseries sampler *)

let timeseries_tests =
  [
    Alcotest.test_case "tick snapshots counters, gauges and histograms"
      `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let c = Metrics.Counter.register r ~labels:[ ("aid", "1") ] "t_total" in
        let g = Metrics.Gauge.register r "t_depth" in
        let h = Metrics.Histogram.register r ~lo:0.0 ~hi:100.0 "t_ns" in
        let ts = Timeseries.create ~capacity:8 r in
        Timeseries.set_enabled ts true;
        for i = 1 to 4 do
          Metrics.Counter.incr ~by:2 c;
          Metrics.Gauge.set g (float_of_int i);
          Metrics.Histogram.observe h (float_of_int (10 * i));
          Timeseries.tick ts ~now:(float_of_int i)
        done;
        Alcotest.(check int) "ticks" 4 (Timeseries.ticks ts);
        let s = Option.get (Timeseries.find ts "t_total{aid=\"1\"}") in
        Alcotest.(check bool) "counter kind" true
          (Timeseries.kind s = Timeseries.Kcounter);
        Alcotest.(check (float 1e-9)) "cumulative last" 8.0
          (Timeseries.last_value s);
        Alcotest.(check (float 1e-9)) "per-tick delta" 2.0
          (Timeseries.last_delta s);
        Alcotest.(check (float 1e-9)) "windowed rate" 2.0
          (Timeseries.rate s ~window:10.0);
        let gs = Option.get (Timeseries.find ts "t_depth") in
        Alcotest.(check (float 1e-9)) "gauge history" 4.0
          (Timeseries.last_value gs);
        (* Histograms contribute :p50/:p99 gauges and a :count counter. *)
        Alcotest.(check bool) "p50 sub-series" true
          (Timeseries.find ts "t_ns:p50" <> None);
        let hc = Option.get (Timeseries.find ts "t_ns:count") in
        Alcotest.(check bool) "count is a counter" true
          (Timeseries.kind hc = Timeseries.Kcounter);
        Alcotest.(check (float 1e-9)) "observation throughput" 1.0
          (Timeseries.rate hc ~window:10.0));
    Alcotest.test_case "disabled sampler records nothing" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        Metrics.Counter.incr (Metrics.Counter.register r "t_total");
        let ts = Timeseries.create r in
        Timeseries.tick ts ~now:1.0;
        Timeseries.record ts ~name:"d" ~now:1.0 2.0;
        Alcotest.(check int) "no ticks" 0 (Timeseries.ticks ts);
        Alcotest.(check (list string)) "no series" [] (Timeseries.names ts));
    Alcotest.test_case "counter reset clamps the rate to zero" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create ~capacity:8 r in
        Timeseries.set_enabled ts true;
        Timeseries.record ts ~kind:Timeseries.Kcounter ~name:"c" ~now:1.0 100.0;
        Timeseries.record ts ~kind:Timeseries.Kcounter ~name:"c" ~now:2.0 5.0;
        let s = Option.get (Timeseries.find ts "c") in
        Alcotest.(check (float 1e-9)) "clamped" 0.0
          (Timeseries.rate s ~window:10.0));
    Alcotest.test_case "to_json round-trips through the parser" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        Metrics.Counter.incr (Metrics.Counter.register r "t_total");
        let ts = Timeseries.create ~capacity:4 r in
        Timeseries.set_enabled ts true;
        Timeseries.tick ts ~now:0.25;
        Timeseries.record ts ~name:"derived:x" ~now:0.25 nan;
        match Json.parse (Json.to_string (Timeseries.to_json ts)) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok doc ->
            let series = Option.get (Json.member "series" doc) in
            (match Json.member "t_total" series with
            | Some _ -> ()
            | None -> Alcotest.fail "series lost"));
    qtest "ring keeps the newest min(ticks, capacity) points" ~count:300
      QCheck2.Gen.(pair (int_range 2 8) (int_range 0 40))
      (fun (capacity, n) ->
        let r = Metrics.create ~enabled:true () in
        let c = Metrics.Counter.register r "t_total" in
        let ts = Timeseries.create ~capacity r in
        Timeseries.set_enabled ts true;
        for i = 0 to n - 1 do
          Metrics.Counter.incr c;
          Timeseries.tick ts ~now:(float_of_int i)
        done;
        if n = 0 then Timeseries.names ts = []
        else
          let s = Option.get (Timeseries.find ts "t_total") in
          let expect_n = min n capacity in
          let pts = Timeseries.points s in
          (* Exactly the newest window, oldest first, cumulative values
             intact across the wrap. *)
          Timeseries.written s = n
          && Timeseries.length s = expect_n
          && pts
             = List.init expect_n (fun i ->
                   let tick = n - expect_n + i in
                   (float_of_int tick, float_of_int (tick + 1)))
          && (expect_n < 2
             || Timeseries.rate s ~window:(float_of_int (n + 1)) = 1.0));
  ]

(* ------------------------------------------------------------------ *)
(* Alert engine: hysteresis state machine *)

let mk_rule ?(name = "r") ?(for_ = 1.0) ?(pred = Alert.Above 10.0) () =
  {
    Alert.name;
    metric = "sig";
    where = [];
    pred;
    for_;
    severity = Alert.Crit;
    summary = "test rule";
  }

let feed ts now v = Timeseries.record ts ~name:"sig" ~now v

let state_at a =
  match Alert.instances a with
  | [ i ] -> Alert.state_label (Alert.state i)
  | [] -> "no-instance"
  | _ -> "many-instances"

let alert_tests =
  [
    Alcotest.test_case "pending holds for_, then fires, then resolves" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let a = Alert.create ~rules:[ mk_rule () ] ts in
        let step now v =
          feed ts now v;
          Alert.eval a ~now;
          state_at a
        in
        Alcotest.(check string) "below: inactive" "inactive" (step 0.0 5.0);
        Alcotest.(check string) "above: pending" "pending" (step 0.5 20.0);
        Alcotest.(check string) "held 0.5 < 1.0: pending" "pending"
          (step 1.0 20.0);
        Alcotest.(check string) "held 1.0: firing" "firing" (step 1.5 20.0);
        Alcotest.(check bool) "has_fired" true (Alert.has_fired a "r");
        Alcotest.(check string) "clear: resolved" "resolved" (step 2.0 5.0);
        Alcotest.(check string) "stays resolved" "resolved" (step 2.5 5.0);
        Alcotest.(check string) "re-trip: pending again" "pending"
          (step 3.0 20.0));
    Alcotest.test_case "boundary oscillation never fires (no flapping)"
      `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let a = Alert.create ~rules:[ mk_rule ~for_:1.0 () ] ts in
        (* The signal crosses the threshold every 0.5 s — each excursion is
           shorter than for_, so the instance bounces inactive <-> pending
           and must never reach firing. *)
        for i = 0 to 40 do
          let now = 0.5 *. float_of_int i in
          feed ts now (if i mod 2 = 0 then 10.5 else 9.5);
          Alert.eval a ~now;
          match state_at a with
          | "inactive" | "pending" -> ()
          | s -> Alcotest.failf "flapped to %s at t=%.1f" s now
        done;
        Alcotest.(check bool) "never fired" false (Alert.has_fired a "r");
        Alcotest.(check (list string)) "no fired rules" []
          (Alert.fired_rules a));
    Alcotest.test_case "pending that clears goes straight back to inactive"
      `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let a = Alert.create ~rules:[ mk_rule () ] ts in
        feed ts 0.0 20.0;
        Alert.eval a ~now:0.0;
        Alcotest.(check string) "pending" "pending" (state_at a);
        feed ts 0.5 5.0;
        Alert.eval a ~now:0.5;
        (* Never fired, so nothing to resolve. *)
        Alcotest.(check string) "inactive" "inactive" (state_at a));
    Alcotest.test_case "for_ = 0 fires on the first true evaluation" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let a = Alert.create ~rules:[ mk_rule ~for_:0.0 () ] ts in
        feed ts 0.0 20.0;
        Alert.eval a ~now:0.0;
        Alcotest.(check string) "firing immediately" "firing" (state_at a));
    Alcotest.test_case "nan never satisfies a predicate" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let a =
          Alert.create
            ~rules:[ mk_rule ~for_:0.0 ~pred:(Alert.Below 10.0) () ]
            ts
        in
        feed ts 0.0 nan;
        Alert.eval a ~now:0.0;
        Alcotest.(check string) "inactive on nan" "inactive" (state_at a));
    Alcotest.test_case "rate predicate needs two points, then fires" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let pred = Alert.Rate_above { window = 4.0; per_s = 5.0 } in
        let a = Alert.create ~rules:[ mk_rule ~for_:0.0 ~pred () ] ts in
        Timeseries.record ts ~kind:Timeseries.Kcounter ~name:"sig" ~now:0.0
          0.0;
        Alert.eval a ~now:0.0;
        Alcotest.(check string) "one point: inactive" "inactive" (state_at a);
        Timeseries.record ts ~kind:Timeseries.Kcounter ~name:"sig" ~now:1.0
          10.0;
        Alert.eval a ~now:1.0;
        Alcotest.(check string) "10/s > 5/s: firing" "firing" (state_at a));
    Alcotest.test_case "where narrows instances to matching series" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let rule =
          { (mk_rule ~for_:0.0 ()) with Alert.where = [ ("aid", "1") ] }
        in
        let a = Alert.create ~rules:[ rule ] ts in
        Timeseries.record ts ~name:"sig" ~labels:[ ("aid", "1") ] ~now:0.0
          20.0;
        Timeseries.record ts ~name:"sig" ~labels:[ ("aid", "2") ] ~now:0.0
          20.0;
        Alert.eval a ~now:0.0;
        Alcotest.(check int) "one instance" 1
          (List.length (Alert.instances a)));
    Alcotest.test_case "transitions emit metrics and scrape lines" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let a = Alert.create ~rules:[ mk_rule ~for_:0.0 () ] ts in
        Alert.attach_scrape a r;
        feed ts 0.0 20.0;
        Alert.eval a ~now:0.0;
        let text = Metrics.render_text r in
        Alcotest.(check bool) "firing gauge" true
          (contains text "apna_alert_firing 1");
        Alcotest.(check bool) "alert state line rides the scrape" true
          (contains text "apna_alert{rule=\"r\",series=\"sig\"");
        match Json.parse (Json.to_string (Alert.to_json a)) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "alert JSON: %s" e);
    Alcotest.test_case "default rulepack covers the attack signatures"
      `Quick (fun () ->
        let names =
          List.map (fun r -> r.Alert.name) (Alert.default_rules ())
        in
        List.iter
          (fun n ->
            Alcotest.(check bool) n true (List.mem n names))
          [
            "replay-flood"; "link-loss"; "revocation-storm"; "shutoff-stall";
            "broker-budget-drain"; "breaker-open"; "cache-collapse";
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Health rollup *)

let health_tests =
  [
    Alcotest.test_case "firing crit alert marks its scope critical" `Quick
      (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let rule =
          { (mk_rule ~for_:0.0 ()) with Alert.where = [ ("aid", "7") ] }
        in
        let a = Alert.create ~rules:[ rule ] ts in
        Timeseries.record ts ~name:"sig" ~labels:[ ("aid", "7") ] ~now:0.0
          20.0;
        Alert.eval a ~now:0.0;
        let reports = Health.rollup a ts in
        let as7 =
          List.find (fun r -> r.Health.scope = "AS7") reports
        in
        Alcotest.(check bool) "critical" true
          (as7.Health.status = Health.Critical);
        Alcotest.(check bool) "global row present" true
          (List.exists (fun r -> r.Health.scope = "global") reports);
        Alcotest.(check bool) "worst is critical" true
          (Health.worst reports = Health.Critical);
        Alcotest.(check bool) "render mentions the scope" true
          (contains (Health.render reports) "AS7"));
    Alcotest.test_case "quiet series roll up ok" `Quick (fun () ->
        let r = Metrics.create ~enabled:true () in
        let ts = Timeseries.create r in
        Timeseries.set_enabled ts true;
        let a = Alert.create ~rules:[ mk_rule () ] ts in
        Timeseries.record ts ~name:"sig" ~now:0.0 1.0;
        Alert.eval a ~now:0.0;
        let reports = Health.rollup a ts in
        Alcotest.(check bool) "all ok" true
          (List.for_all (fun r -> r.Health.status = Health.Ok) reports));
  ]

let () =
  Alcotest.run "apna_obs"
    [
      ("metrics", metrics_tests);
      ("hostile labels & clamps", hostile_tests);
      ("json", json_tests);
      ("spans", span_tests);
      ("events", event_tests);
      ("timeseries", timeseries_tests);
      ("alerts", alert_tests);
      ("health", health_tests);
      ("chrome", chrome_tests);
    ]
