(* Wire formats, topology/routing and the baseline router. *)

open Apna_net

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let aid = Addr.aid_of_int
let hid = Addr.hid_of_int

let addr_tests =
  [
    qtest "aid bytes roundtrip" QCheck2.Gen.(int_range 0 0xffffffff) (fun n ->
        Addr.aid_of_bytes (Addr.aid_to_bytes (aid n)) = Ok (aid n));
    qtest "hid bytes roundtrip" QCheck2.Gen.(int_range 0 0xffffffff) (fun n ->
        Addr.hid_of_bytes (Addr.hid_to_bytes (hid n)) = Ok (hid n));
    Alcotest.test_case "out-of-range rejected" `Quick (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "Addr.aid_of_int: not a u32")
          (fun () -> ignore (aid (-1)));
        Alcotest.check_raises "too big" (Invalid_argument "Addr.hid_of_int: not a u32")
          (fun () -> ignore (hid 0x1_0000_0000)));
    Alcotest.test_case "short bytes rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true (Result.is_error (Addr.aid_of_bytes "abc")));
    Alcotest.test_case "hid renders dotted quad" `Quick (fun () ->
        Alcotest.(check string) "render" "10.0.0.1"
          (Format.asprintf "%a" Addr.pp_hid (hid 0x0a000001)));
  ]

let gen_ephid = QCheck2.Gen.(string_size ~gen:char (return 16))

let gen_header =
  QCheck2.Gen.(
    let* src_aid = int_range 0 0xffffffff in
    let* dst_aid = int_range 0 0xffffffff in
    let* src_ephid = gen_ephid in
    let* dst_ephid = gen_ephid in
    let* mac = string_size ~gen:char (return 8) in
    return
      (Apna_header.make ~src_aid:(aid src_aid) ~src_ephid ~dst_aid:(aid dst_aid)
         ~dst_ephid ~mac ()))

let header_tests =
  [
    Alcotest.test_case "size is 48 bytes (Fig. 7)" `Quick (fun () ->
        Alcotest.(check int) "size" 48 Apna_header.size);
    qtest "roundtrip" gen_header (fun h ->
        Apna_header.of_bytes (Apna_header.to_bytes h) = Ok h);
    qtest "truncation rejected" gen_header (fun h ->
        let b = Apna_header.to_bytes h in
        Result.is_error (Apna_header.of_bytes (String.sub b 0 47)));
    qtest "trailing bytes rejected" gen_header (fun h ->
        Result.is_error (Apna_header.of_bytes (Apna_header.to_bytes h ^ "x")));
    Alcotest.test_case "bad field sizes rejected" `Quick (fun () ->
        match
          Apna_header.make ~src_aid:(aid 1) ~src_ephid:"short" ~dst_aid:(aid 2)
            ~dst_ephid:(String.make 16 'e') ()
        with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    qtest "reverse swaps endpoints and clears mac" gen_header (fun h ->
        let r = Apna_header.reverse h in
        r.src_aid = h.dst_aid && r.dst_aid = h.src_aid
        && r.src_ephid = h.dst_ephid && r.dst_ephid = h.src_ephid
        && r.mac = String.make 8 '\000');
    qtest "bytes_for_mac zeroes only the mac" gen_header (fun h ->
        let a = Apna_header.bytes_for_mac h in
        let b = Apna_header.to_bytes { h with mac = String.make 8 '\000' } in
        a = b);
  ]

let packet_tests =
  [
    qtest "packet roundtrip"
      QCheck2.Gen.(pair gen_header (string_size (int_range 0 100)))
      (fun (header, payload) ->
        let pkt = Packet.make ~header ~proto:Packet.Data ~payload in
        Packet.of_bytes (Packet.to_bytes pkt) = Ok pkt);
    Alcotest.test_case "unknown protocol rejected" `Quick (fun () ->
        let h =
          Apna_header.make ~src_aid:(aid 1) ~src_ephid:(String.make 16 'a')
            ~dst_aid:(aid 2) ~dst_ephid:(String.make 16 'b') ()
        in
        let bytes = Apna_header.to_bytes h ^ "\x09payload" in
        Alcotest.(check bool) "error" true (Result.is_error (Packet.of_bytes bytes)));
    Alcotest.test_case "wire size accounts header and shim" `Quick (fun () ->
        let h =
          Apna_header.make ~src_aid:(aid 1) ~src_ephid:(String.make 16 'a')
            ~dst_aid:(aid 2) ~dst_ephid:(String.make 16 'b') ()
        in
        let pkt = Packet.make ~header:h ~proto:Packet.Icmp ~payload:"12345" in
        Alcotest.(check int) "size" (48 + 1 + 5) (Packet.wire_size pkt));
    qtest "write_for_mac assembles bytes_for_mac in place"
      QCheck2.Gen.(pair gen_header (string_size (int_range 0 100)))
      (fun (header, payload) ->
        let pkt = Packet.make ~header ~proto:Packet.Data ~payload in
        (* Dirty buffer: stale bytes must not leak into the MAC input. *)
        let buf = Bytes.make (Packet.wire_size pkt + 7) '\xff' in
        let len = Packet.write_for_mac pkt buf in
        len = Packet.wire_size pkt
        && Bytes.sub_string buf 0 len = Packet.bytes_for_mac pkt);
  ]

let ipv4_tests =
  [
    qtest "roundtrip"
      QCheck2.Gen.(
        let* ttl = int_range 1 255 in
        let* protocol = int_range 0 255 in
        let* src = int_range 0 0xffffffff in
        let* dst = int_range 0 0xffffffff in
        let* len = int_range 0 1000 in
        return (ttl, protocol, src, dst, len))
      (fun (ttl, protocol, src, dst, payload_len) ->
        let h =
          Ipv4_header.make ~ttl ~protocol ~src:(hid src) ~dst:(hid dst)
            ~payload_len ()
        in
        (* of_bytes parses a full datagram buffer: the header must be
           accompanied by the payload bytes its length field claims. *)
        let wire = Ipv4_header.to_bytes h ^ String.make payload_len 'p' in
        Ipv4_header.of_bytes wire = Ok h);
    Alcotest.test_case "total_len over-claim rejected" `Quick (fun () ->
        (* A header that claims more payload than the buffer holds must be
           refused, not silently parsed with phantom bytes. *)
        let h =
          Ipv4_header.make ~protocol:6 ~src:(hid 1) ~dst:(hid 2)
            ~payload_len:32 ()
        in
        let wire = Ipv4_header.to_bytes h ^ String.make 10 'p' in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Ipv4_header.of_bytes wire)));
    Alcotest.test_case "trailing link padding tolerated" `Quick (fun () ->
        (* Bytes beyond total_len are padding: the parse succeeds and
           payload_len still reflects only the claimed payload. *)
        let h =
          Ipv4_header.make ~protocol:6 ~src:(hid 1) ~dst:(hid 2)
            ~payload_len:8 ()
        in
        let wire = Ipv4_header.to_bytes h ^ String.make 8 'p' ^ "PADPAD" in
        match Ipv4_header.of_bytes wire with
        | Error e -> Alcotest.fail e
        | Ok parsed ->
            Alcotest.(check int) "payload_len" 8 parsed.Ipv4_header.payload_len);
    Alcotest.test_case "checksum corruption detected" `Quick (fun () ->
        let h =
          Ipv4_header.make ~protocol:6 ~src:(hid 1) ~dst:(hid 2) ~payload_len:10 ()
        in
        let b = Bytes.of_string (Ipv4_header.to_bytes h) in
        Bytes.set b 8 (Char.chr (Char.code (Bytes.get b 8) lxor 0x40));
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Ipv4_header.of_bytes (Bytes.unsafe_to_string b))));
    Alcotest.test_case "rfc1071 checksum check" `Quick (fun () ->
        (* Textbook example: checksum of the example header equals 0 when
           verified over the full header. *)
        let h = Ipv4_header.make ~protocol:17 ~src:(hid 0xc0a80001) ~dst:(hid 0xc0a800c7) ~payload_len:0 () in
        Alcotest.(check int) "verifies to zero" 0
          (Ipv4_header.checksum (Ipv4_header.to_bytes h)));
    Alcotest.test_case "oversize payload rejected" `Quick (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Ipv4_header.make: payload length") (fun () ->
            ignore
              (Ipv4_header.make ~protocol:6 ~src:(hid 1) ~dst:(hid 2)
                 ~payload_len:70_000 ())));
    (* RFC 1624 eqn 3: patching the checksum for a 16-bit field change must
       agree with recomputing RFC 1071 over the rewritten header — for any
       header and any field position, including the old16 = new16 and
       all-ones corner cases the end-around carry gets wrong if folded
       naively. *)
    qtest "rfc1624 incremental == full recompute"
      QCheck2.Gen.(
        let* ttl = int_range 1 255 in
        let* protocol = int_range 0 255 in
        let* src = int_range 0 0xffffffff in
        let* dst = int_range 0 0xffffffff in
        let* len = int_range 0 1000 in
        let* field = int_range 0 9 in
        let* new16 = int_range 0 0xffff in
        return (ttl, protocol, src, dst, len, field, new16))
      (fun (ttl, protocol, src, dst, payload_len, field, new16) ->
        let h =
          Ipv4_header.make ~ttl ~protocol ~src:(hid src) ~dst:(hid dst)
            ~payload_len ()
        in
        let b = Bytes.of_string (Ipv4_header.to_bytes h) in
        let off = 2 * field in
        let get16 at = (Char.code (Bytes.get b at) lsl 8) lor Char.code (Bytes.get b (at + 1)) in
        let old_cksum = get16 10 in
        let old16 = get16 off in
        if off = 10 then true (* rewriting the checksum field itself is out of scope *)
        else begin
          Bytes.set b off (Char.chr (new16 lsr 8));
          Bytes.set b (off + 1) (Char.chr (new16 land 0xff));
          let patched = Ipv4_header.checksum_update ~cksum:old_cksum ~old16 ~new16 in
          Bytes.set b 10 (Char.chr (patched lsr 8));
          Bytes.set b 11 (Char.chr (patched land 0xff));
          (* RFC 1071 invariant: a header with a correct checksum sums to 0. *)
          Ipv4_header.checksum (Bytes.unsafe_to_string b) = 0
        end);
    qtest "decrement_ttl == rebuild" QCheck2.Gen.(pair (int_range 1 255) (int_range 0 255))
      (fun (ttl, protocol) ->
        let h = Ipv4_header.make ~ttl ~protocol ~src:(hid 0x0a000001) ~dst:(hid 0x0a0000fe) ~payload_len:32 () in
        let b = Bytes.of_string (Ipv4_header.to_bytes h) in
        Ipv4_header.decrement_ttl b;
        let rebuilt = Ipv4_header.make ~ttl:(ttl - 1) ~protocol ~src:(hid 0x0a000001) ~dst:(hid 0x0a0000fe) ~payload_len:32 () in
        Bytes.to_string b = Ipv4_header.to_bytes rebuilt);
    qtest "rewrite_addrs_inplace == rebuild"
      QCheck2.Gen.(
        let* src = int_range 0 0xffffffff in
        let* dst = int_range 0 0xffffffff in
        let* src' = int_range 0 0xffffffff in
        let* dst' = int_range 0 0xffffffff in
        return (src, dst, src', dst'))
      (fun (src, dst, src', dst') ->
        let h = Ipv4_header.make ~protocol:47 ~src:(hid src) ~dst:(hid dst) ~payload_len:64 () in
        let b = Bytes.of_string (Ipv4_header.to_bytes h) in
        Ipv4_header.rewrite_addrs_inplace b ~src:(hid src') ~dst:(hid dst');
        let rebuilt = Ipv4_header.make ~protocol:47 ~src:(hid src') ~dst:(hid dst') ~payload_len:64 () in
        Bytes.to_string b = Ipv4_header.to_bytes rebuilt);
    Alcotest.test_case "decrement_ttl refuses ttl 0" `Quick (fun () ->
        let h = Ipv4_header.make ~ttl:1 ~protocol:6 ~src:(hid 1) ~dst:(hid 2) ~payload_len:0 () in
        let b = Bytes.of_string (Ipv4_header.to_bytes h) in
        Ipv4_header.decrement_ttl b;
        Alcotest.check_raises "raises"
          (Invalid_argument "Ipv4_header.decrement_ttl: ttl 0") (fun () ->
            Ipv4_header.decrement_ttl b));
  ]

let gre_tests =
  [
    qtest "roundtrip"
      QCheck2.Gen.(pair (int_range 0 0xffff) (string_size (int_range 0 200)))
      (fun (protocol, payload) ->
        Gre.decapsulate (Gre.encapsulate ~protocol payload) = Ok (protocol, payload));
    Alcotest.test_case "nonzero flags rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Gre.decapsulate "\x80\x00\x08\x00payload")));
    Alcotest.test_case "apna protocol number" `Quick (fun () ->
        Alcotest.(check int) "0x0A9A" 0x0A9A Gre.protocol_apna);
  ]

let topology_tests =
  [
    Alcotest.test_case "next hop on a line" `Quick (fun () ->
        let t = Topology.create () in
        Topology.connect t (aid 1) (aid 2) (Link.make ());
        Topology.connect t (aid 2) (aid 3) (Link.make ());
        Alcotest.(check (option int)) "1->3 via 2" (Some 2)
          (Option.map Addr.aid_to_int (Topology.next_hop t ~src:(aid 1) ~dst:(aid 3)));
        Alcotest.(check (option int)) "3->1 via 2" (Some 2)
          (Option.map Addr.aid_to_int (Topology.next_hop t ~src:(aid 3) ~dst:(aid 1))));
    Alcotest.test_case "shortest path preferred" `Quick (fun () ->
        let t = Topology.create () in
        (* Square with diagonal: 1-2-3, 1-4-3 and 1-3 direct. *)
        List.iter
          (fun (a, b) -> Topology.connect t (aid a) (aid b) (Link.make ()))
          [ (1, 2); (2, 3); (1, 4); (4, 3); (1, 3) ];
        Alcotest.(check (option (list int))) "direct" (Some [ 1; 3 ])
          (Option.map (List.map Addr.aid_to_int) (Topology.path t ~src:(aid 1) ~dst:(aid 3))));
    Alcotest.test_case "unreachable destinations" `Quick (fun () ->
        let t = Topology.create () in
        Topology.connect t (aid 1) (aid 2) (Link.make ());
        Topology.add_as t (aid 9);
        Alcotest.(check bool) "no hop" true
          (Topology.next_hop t ~src:(aid 1) ~dst:(aid 9) = None);
        Alcotest.(check bool) "no path" true
          (Topology.path t ~src:(aid 1) ~dst:(aid 9) = None));
    Alcotest.test_case "routes recomputed after mutation" `Quick (fun () ->
        let t = Topology.create () in
        Topology.connect t (aid 1) (aid 2) (Link.make ());
        Alcotest.(check bool) "unreachable" true
          (Topology.next_hop t ~src:(aid 1) ~dst:(aid 3) = None);
        Topology.connect t (aid 2) (aid 3) (Link.make ());
        Alcotest.(check (option int)) "now via 2" (Some 2)
          (Option.map Addr.aid_to_int (Topology.next_hop t ~src:(aid 1) ~dst:(aid 3))));
    Alcotest.test_case "self link rejected" `Quick (fun () ->
        let t = Topology.create () in
        Alcotest.check_raises "raises" (Invalid_argument "Topology.connect: self-link")
          (fun () -> Topology.connect t (aid 1) (aid 1) (Link.make ())));
    Alcotest.test_case "path delay accumulates links" `Quick (fun () ->
        let t = Topology.create () in
        let link = Link.make ~capacity_gbps:1.0 ~propagation_ms:10.0 () in
        Topology.connect t (aid 1) (aid 2) link;
        Topology.connect t (aid 2) (aid 3) link;
        match Topology.path_delay t ~src:(aid 1) ~dst:(aid 3) ~bytes:125 with
        | Some d ->
            (* 2 x (10 ms + 1000 bits / 1 Gbps) = 20 ms + 2 us *)
            Alcotest.(check (float 1e-9)) "delay" 0.020002 d
        | None -> Alcotest.fail "no path");
    qtest "random graphs: next_hop leads to destination" ~count:50
      QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 1 15) (int_range 1 15)))
      (fun edges ->
        let t = Topology.create () in
        List.iter
          (fun (a, b) ->
            if a <> b then Topology.connect t (aid a) (aid b) (Link.make ()))
          edges;
        (* For every connected pair, walking next_hop terminates at dst. *)
        List.for_all
          (fun (a, _) ->
            List.for_all
              (fun (_, b) ->
                if a = b then true
                else
                  match Topology.path t ~src:(aid a) ~dst:(aid b) with
                  | None -> true
                  | Some p -> List.rev p |> List.hd |> Addr.aid_to_int = b)
              edges)
          edges);
  ]

let lpm_tests =
  let open Apna_baseline in
  [
    Alcotest.test_case "longest prefix wins" `Quick (fun () ->
        let t = Lpm.create () in
        Lpm.add t ~prefix:0x0a000000 ~len:8 "ten-slash-8";
        Lpm.add t ~prefix:0x0a010000 ~len:16 "ten-one-slash-16";
        Alcotest.(check (option string)) "specific" (Some "ten-one-slash-16")
          (Lpm.lookup t 0x0a010101);
        Alcotest.(check (option string)) "general" (Some "ten-slash-8")
          (Lpm.lookup t 0x0a020202);
        Alcotest.(check (option string)) "none" None (Lpm.lookup t 0x0b000000));
    Alcotest.test_case "default route" `Quick (fun () ->
        let t = Lpm.create () in
        Lpm.add t ~prefix:0 ~len:0 "default";
        Alcotest.(check (option string)) "matches all" (Some "default")
          (Lpm.lookup t 0xdeadbeef));
    Alcotest.test_case "remove" `Quick (fun () ->
        let t = Lpm.create () in
        Lpm.add t ~prefix:0x0a000000 ~len:8 "r";
        Lpm.remove t ~prefix:0x0a000000 ~len:8;
        Alcotest.(check (option string)) "gone" None (Lpm.lookup t 0x0a000001);
        Alcotest.(check int) "size" 0 (Lpm.size t));
    qtest "agrees with naive scan" ~count:100
      QCheck2.Gen.(
        pair
          (list_size (int_range 0 30) (pair (int_range 0 0xffffffff) (int_range 0 32)))
          (int_range 0 0xffffffff))
      (fun (routes, addr) ->
        let t = Lpm.create () in
        let canon =
          List.map
            (fun (p, len) ->
              let p = if len = 0 then 0 else p land lnot ((1 lsl (32 - len)) - 1) in
              (p, len))
            routes
        in
        List.iter (fun (p, len) -> Lpm.add t ~prefix:p ~len (p, len)) canon;
        let matches (p, len) =
          len = 0 || (addr lxor p) lsr (32 - len) = 0
        in
        let best =
          List.fold_left
            (fun acc r ->
              if matches r then
                match acc with
                | Some (_, blen) when blen >= snd r -> acc
                | _ -> Some r
              else acc)
            None canon
        in
        (* Compare prefix lengths (several routes may share a prefix). *)
        Option.map snd (Lpm.lookup t addr) = Option.map snd best);
  ]

let router_tests =
  let open Apna_baseline in
  let make_packet ?(ttl = 64) ~dst () =
    Ipv4_header.to_bytes
      (Ipv4_header.make ~ttl ~protocol:17 ~src:(hid 0x0a000001) ~dst:(hid dst)
         ~payload_len:4 ())
    ^ "data"
  in
  [
    Alcotest.test_case "forwards with ttl decrement" `Quick (fun () ->
        let r = Ipv4_router.create () in
        Ipv4_router.add_route r ~prefix:0x08000000 ~len:8 ~next_hop:7;
        match Ipv4_router.forward r (make_packet ~dst:0x08080808 ()) with
        | Ipv4_router.Forwarded { next_hop; packet } ->
            Alcotest.(check int) "hop" 7 next_hop;
            (match Ipv4_header.of_bytes packet with
            | Ok h -> Alcotest.(check int) "ttl" 63 h.ttl
            | Error e -> Alcotest.fail e)
        | Ipv4_router.Dropped e -> Alcotest.fail e);
    Alcotest.test_case "ttl exceeded dropped" `Quick (fun () ->
        let r = Ipv4_router.create () in
        Ipv4_router.add_route r ~prefix:0 ~len:0 ~next_hop:1;
        match Ipv4_router.forward r (make_packet ~ttl:1 ~dst:0x08080808 ()) with
        | Ipv4_router.Dropped "ttl exceeded" -> ()
        | _ -> Alcotest.fail "expected ttl drop");
    Alcotest.test_case "no route dropped" `Quick (fun () ->
        let r = Ipv4_router.create () in
        match Ipv4_router.forward r (make_packet ~dst:0x08080808 ()) with
        | Ipv4_router.Dropped "no route" -> ()
        | _ -> Alcotest.fail "expected no-route drop");
    Alcotest.test_case "synthetic table populates" `Quick (fun () ->
        let r = Ipv4_router.create () in
        Ipv4_router.synthetic_table r ~seed:3L ~routes:1000;
        Alcotest.(check bool) "mostly there" true (Ipv4_router.route_count r > 900));
  ]

let apip_tests =
  let open Apna_baseline in
  [
    Alcotest.test_case "brief then verify" `Quick (fun () ->
        let d = Apip_sketch.create () in
        Apip_sketch.brief d ~sender:1 ~packet:"pkt-a";
        Alcotest.(check bool) "vouched" true (Apip_sketch.verify d ~packet:"pkt-a");
        Alcotest.(check bool) "unknown" false (Apip_sketch.verify d ~packet:"pkt-b"));
    Alcotest.test_case "whitelist tracking" `Quick (fun () ->
        let d = Apip_sketch.create () in
        Apip_sketch.whitelist d ~flow:42;
        Alcotest.(check bool) "listed" true (Apip_sketch.is_whitelisted d ~flow:42);
        Alcotest.(check bool) "not listed" false (Apip_sketch.is_whitelisted d ~flow:43));
    Alcotest.test_case "storage grows with briefs" `Quick (fun () ->
        let d = Apip_sketch.create () in
        for i = 1 to 100 do
          Apip_sketch.brief d ~sender:1 ~packet:(string_of_int i)
        done;
        Alcotest.(check int) "count" 100 (Apip_sketch.briefs_stored d);
        Alcotest.(check int) "bytes" 2000 (Apip_sketch.brief_bytes d));
  ]

let () =
  Alcotest.run "apna_net"
    [
      ("addr", addr_tests);
      ("header", header_tests);
      ("packet", packet_tests);
      ("ipv4", ipv4_tests);
      ("gre", gre_tests);
      ("topology", topology_tests);
      ("lpm", lpm_tests);
      ("ipv4_router", router_tests);
      ("apip", apip_tests);
    ]
