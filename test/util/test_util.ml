(* Byte reader/writer codecs and the small utility modules. *)

open Apna_util

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rw_tests =
  [
    qtest "u8/u16/u32/u64 roundtrip"
      QCheck2.Gen.(
        let* a = int_range 0 255 in
        let* b = int_range 0 0xffff in
        let* c = int_range 0 0xffffffff in
        let* d = int_range 0 max_int in
        return (a, b, c, d))
      (fun (a, b, c, d) ->
        let w = Rw.Writer.create () in
        Rw.Writer.u8 w a;
        Rw.Writer.u16 w b;
        Rw.Writer.u32_of_int w c;
        Rw.Writer.u64 w (Int64.of_int d);
        let r = Rw.Reader.of_string (Rw.Writer.contents w) in
        let open Rw in
        (let* a' = Reader.u8 r in
         let* b' = Reader.u16 r in
         let* c' = Reader.u32_to_int r in
         let* d' = Reader.u64 r in
         let* () = Reader.expect_end r in
         Ok (a' = a && b' = b && c' = c && d' = Int64.of_int d))
        = Ok true);
    qtest "bytes roundtrip with remaining bookkeeping"
      QCheck2.Gen.(pair (string_size (int_range 0 64)) (string_size (int_range 0 64)))
      (fun (x, y) ->
        let w = Rw.Writer.create () in
        Rw.Writer.u16 w (String.length x);
        Rw.Writer.bytes w x;
        Rw.Writer.bytes w y;
        let r = Rw.Reader.of_string (Rw.Writer.contents w) in
        let open Rw in
        (let* n = Reader.u16 r in
         let* x' = Reader.bytes r n in
         Ok (x' = x && Reader.rest r = y))
        = Ok true);
    Alcotest.test_case "short reads are errors, not exceptions" `Quick (fun () ->
        let r = Rw.Reader.of_string "ab" in
        Alcotest.(check bool) "u32 fails" true (Result.is_error (Rw.Reader.u32 r));
        (* The failed read consumed nothing usable; u16 still works. *)
        Alcotest.(check bool) "u16 ok" true (Rw.Reader.u16 r = Ok 0x6162));
    Alcotest.test_case "expect_end rejects trailing bytes" `Quick (fun () ->
        let r = Rw.Reader.of_string "x" in
        Alcotest.(check bool) "error" true (Result.is_error (Rw.Reader.expect_end r));
        ignore (Rw.Reader.u8 r);
        Alcotest.(check bool) "ok after consuming" true
          (Rw.Reader.expect_end r = Ok ()));
    Alcotest.test_case "big-endian layout on the wire" `Quick (fun () ->
        let w = Rw.Writer.create () in
        Rw.Writer.u16 w 0x0102;
        Rw.Writer.u32_of_int w 0x03040506;
        Alcotest.(check string) "network byte order" "\x01\x02\x03\x04\x05\x06"
          (Rw.Writer.contents w));
    Alcotest.test_case "writer length tracks content" `Quick (fun () ->
        let w = Rw.Writer.create () in
        Rw.Writer.u64 w 1L;
        Rw.Writer.bytes w "abc";
        Alcotest.(check int) "length" 11 (Rw.Writer.length w));
  ]

let misc_tests =
  [
    Alcotest.test_case "ct xor length mismatch rejected" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Ct.xor: length")
          (fun () -> ignore (Ct.xor "ab" "abc")));
    Alcotest.test_case "zeroize wipes the buffer" `Quick (fun () ->
        let b = Bytes.of_string "secret" in
        Ct.zeroize b;
        Alcotest.(check string) "zeroed" (String.make 6 '\000')
          (Bytes.to_string b));
    qtest "hex encode length doubles" QCheck2.Gen.(string_size (int_range 0 64))
      (fun s -> String.length (Hex.encode s) = 2 * String.length s);
    Alcotest.test_case "hex decode accepts uppercase" `Quick (fun () ->
        Alcotest.(check bool) "ok" true (Hex.decode "DEADBEEF" = Ok "\xde\xad\xbe\xef"));
    Alcotest.test_case "hex pp prints lowercase" `Quick (fun () ->
        Alcotest.(check string) "pp" "00ff"
          (Format.asprintf "%a" Hex.pp "\x00\xff"));
  ]

(* The shared LRU functor behind Cert_cache and the border router's
   validated-EphID cache. *)
module Lru = Apna_util.Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let lru_tests =
  [
    Alcotest.test_case "evicts least-recently-used at capacity" `Quick (fun () ->
        let c = Lru.create ~capacity:3 in
        List.iter (fun k -> Lru.set c k k) [ "a"; "b"; "c" ];
        Lru.set c "d" "d";
        Alcotest.(check (option string)) "a evicted" None (Lru.find c "a");
        Alcotest.(check (option string)) "b kept" (Some "b") (Lru.find c "b");
        Alcotest.(check int) "size" 3 (Lru.size c);
        Alcotest.(check int) "evictions" 1 (Lru.evictions c));
    Alcotest.test_case "find refreshes recency, peek does not" `Quick (fun () ->
        let c = Lru.create ~capacity:2 in
        Lru.set c "a" "a";
        Lru.set c "b" "b";
        ignore (Lru.find c "a");
        (* "b" is now LRU and goes first. *)
        Lru.set c "x" "x";
        Alcotest.(check (option string)) "a survives" (Some "a") (Lru.peek c "a");
        Alcotest.(check (option string)) "b evicted" None (Lru.peek c "b");
        (* peek left "a" least-recent? No: find promoted it, then set pushed
           x; peeking must not promote, so after another insert "a" goes. *)
        ignore (Lru.peek c "a");
        Lru.set c "y" "y";
        Alcotest.(check (option string)) "x survives" (Some "x") (Lru.peek c "x");
        Alcotest.(check (option string)) "a evicted after peek" None
          (Lru.peek c "a"));
    Alcotest.test_case "set on an existing key refreshes value and recency"
      `Quick (fun () ->
        let c = Lru.create ~capacity:2 in
        Lru.set c "a" "1";
        Lru.set c "b" "2";
        Lru.set c "a" "3";
        Lru.set c "x" "4";
        Alcotest.(check (option string)) "updated" (Some "3") (Lru.peek c "a");
        Alcotest.(check (option string)) "b evicted" None (Lru.peek c "b"));
    Alcotest.test_case "remove and clear are not evictions" `Quick (fun () ->
        let c = Lru.create ~capacity:4 in
        List.iter (fun k -> Lru.set c k k) [ "a"; "b"; "c" ];
        Lru.remove c "b";
        Lru.remove c "missing";
        Alcotest.(check int) "size" 2 (Lru.size c);
        Lru.clear c;
        Alcotest.(check int) "empty" 0 (Lru.size c);
        Alcotest.(check int) "no evictions" 0 (Lru.evictions c);
        (* The list is consistent after clear: inserts still work. *)
        Lru.set c "z" "z";
        Alcotest.(check (option string)) "reusable" (Some "z") (Lru.find c "z"));
    Alcotest.test_case "capacity one behaves" `Quick (fun () ->
        let c = Lru.create ~capacity:1 in
        Lru.set c "a" "a";
        Lru.set c "b" "b";
        Alcotest.(check (option string)) "only b" (Some "b") (Lru.find c "b");
        Alcotest.(check (option string)) "a gone" None (Lru.find c "a");
        Alcotest.check_raises "capacity 0 rejected"
          (Invalid_argument "Lru.create: capacity") (fun () ->
            ignore (Lru.create ~capacity:0)));
    Alcotest.test_case "fold runs most-recent first" `Quick (fun () ->
        let c = Lru.create ~capacity:4 in
        List.iter (fun k -> Lru.set c k k) [ "a"; "b"; "c" ];
        ignore (Lru.find c "a");
        Alcotest.(check (list string)) "order" [ "a"; "c"; "b" ]
          (List.rev (Lru.fold (fun k _ acc -> k :: acc) c [])));
    qtest "agrees with a naive model under random ops" ~count:200
      QCheck2.Gen.(
        list_size (int_range 0 120)
          (pair (int_range 0 2) (int_range 0 9)))
      (fun ops ->
        (* Model: association list, most-recent first, capacity 4. *)
        let capacity = 4 in
        let c = Lru.create ~capacity in
        let model = ref [] in
        let model_touch k =
          if List.mem_assoc k !model then begin
            let v = List.assoc k !model in
            model := (k, v) :: List.remove_assoc k !model
          end
        in
        List.iter
          (fun (op, ki) ->
            let k = string_of_int ki in
            match op with
            | 0 ->
                Lru.set c k ki;
                model := (k, ki) :: List.remove_assoc k !model;
                if List.length !model > capacity then
                  model := List.filteri (fun i _ -> i < capacity) !model
            | 1 ->
                let got = Lru.find c k in
                model_touch k;
                assert (got = List.assoc_opt k !model)
            | _ ->
                Lru.remove c k;
                model := List.remove_assoc k !model)
          ops;
        Lru.size c = List.length !model
        && List.for_all (fun (k, v) -> Lru.peek c k = Some v) !model);
  ]

let () =
  Alcotest.run "apna_util"
    [ ("rw", rw_tests); ("misc", misc_tests); ("lru", lru_tests) ]
