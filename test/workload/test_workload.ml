(* The synthetic trace must reproduce the aggregates the paper reports for
   its 24-hour capture (§V-A3) and the flow-duration statistics it cites
   (§VIII-G1). *)

open Apna_workload

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let flow_model_tests =
  [
    Alcotest.test_case "45% of flows are dragonflies (< 2 s)" `Quick (fun () ->
        let rng = Apna_sim.Rng.create 1L in
        let f =
          Flow_model.fraction_below Flow_model.default rng ~threshold:2.0
            ~samples:50_000
        in
        Alcotest.(check bool) "within 2pp of 0.45" true (abs_float (f -. 0.45) < 0.02));
    Alcotest.test_case "98% of flows last under 15 minutes" `Quick (fun () ->
        (* The statistic the paper uses to justify 15-minute EphIDs. *)
        let rng = Apna_sim.Rng.create 2L in
        let f =
          Flow_model.fraction_below Flow_model.default rng ~threshold:900.0
            ~samples:50_000
        in
        Alcotest.(check bool) "within 1pp of 0.98" true (abs_float (f -. 0.98) < 0.01));
    qtest "durations are positive" QCheck2.Gen.(int_range 0 10_000) (fun s ->
        let rng = Apna_sim.Rng.create (Int64.of_int s) in
        Flow_model.sample_duration Flow_model.default rng > 0.0);
    Alcotest.test_case "tortoise tail exists" `Quick (fun () ->
        let rng = Apna_sim.Rng.create 3L in
        let long = ref 0 in
        for _ = 1 to 20_000 do
          if Flow_model.sample_duration Flow_model.default rng > 3600.0 then incr long
        done;
        Alcotest.(check bool) "some hour-long flows" true (!long > 10));
  ]

let trace_tests =
  [
    Alcotest.test_case "paper aggregates" `Quick (fun () ->
        let cfg = Trace.paper_config in
        Alcotest.(check int) "hosts" 1_266_598 cfg.hosts;
        Alcotest.(check (float 0.1)) "peak" 3_888.0 cfg.peak_rate);
    Alcotest.test_case "rate peaks at the configured hour" `Quick (fun () ->
        let cfg = Trace.paper_config in
        let at_peak = Trace.rate_at cfg cfg.peak_at_s in
        let off_peak = Trace.rate_at cfg (cfg.peak_at_s +. 43_200.0) in
        Alcotest.(check (float 1.0)) "peak value" cfg.peak_rate at_peak;
        Alcotest.(check (float 1.0)) "trough value"
          (cfg.trough_ratio *. cfg.peak_rate) off_peak);
    Alcotest.test_case "measured peak matches configured peak" `Quick (fun () ->
        let rng = Apna_sim.Rng.create 7L in
        let measured = Trace.peak_rate_measured rng Trace.paper_config ~bucket_s:1.0 in
        (* Poisson noise on ~3,900 arrivals/s is about +/-2 sigma = 125. *)
        Alcotest.(check bool) "close" true
          (abs_float (measured -. 3_888.0) < 300.0));
    Alcotest.test_case "flows fall inside the window and are sorted" `Quick
      (fun () ->
        let rng = Apna_sim.Rng.create 9L in
        let window = (1000.0, 1010.0) in
        let last = ref neg_infinity in
        let ok = ref true in
        Trace.iter ~window rng Trace.paper_config (fun f ->
            if f.start < 1000.0 || f.start >= 1010.0 then ok := false;
            if f.start < !last then ok := false;
            last := f.start;
            if f.host < 0 || f.host >= Trace.paper_config.hosts then ok := false);
        Alcotest.(check bool) "in window, ordered, hosts valid" true !ok);
    Alcotest.test_case "window count scales with rate" `Quick (fun () ->
        let cfg = Trace.paper_config in
        let rng1 = Apna_sim.Rng.create 11L and rng2 = Apna_sim.Rng.create 11L in
        let at_peak =
          Trace.count ~window:(cfg.peak_at_s, cfg.peak_at_s +. 30.0) rng1 cfg
        in
        let off_peak_t = cfg.peak_at_s +. 43_200.0 -. 30.0 in
        let off_peak = Trace.count ~window:(off_peak_t, off_peak_t +. 30.0) rng2 cfg in
        Alcotest.(check bool) "peak busier" true
          (float_of_int at_peak > 2.0 *. float_of_int off_peak));
  ]

let packet_mix_tests =
  [
    Alcotest.test_case "paper sweep sizes" `Quick (fun () ->
        Alcotest.(check (list int)) "sizes" [ 128; 256; 512; 1024; 1518 ]
          Packet_mix.paper_sizes);
    qtest "fixed mix is constant" QCheck2.Gen.(int_range 64 1518) (fun n ->
        let rng = Apna_sim.Rng.create 1L in
        Packet_mix.sample (Packet_mix.Fixed n) rng = n);
    Alcotest.test_case "imix mean matches weights" `Quick (fun () ->
        let rng = Apna_sim.Rng.create 2L in
        let n = 100_000 in
        let sum = ref 0 in
        for _ = 1 to n do
          sum := !sum + Packet_mix.sample Packet_mix.Imix rng
        done;
        let mean = float_of_int !sum /. float_of_int n in
        Alcotest.(check bool) "near analytic mean" true
          (abs_float (mean -. Packet_mix.mean_size Packet_mix.Imix) < 5.0));
    Alcotest.test_case "imix draws only the three sizes" `Quick (fun () ->
        let rng = Apna_sim.Rng.create 3L in
        for _ = 1 to 1000 do
          let s = Packet_mix.sample Packet_mix.Imix rng in
          Alcotest.(check bool) "valid size" true (List.mem s [ 64; 570; 1518 ])
        done);
  ]

let campaign_trace =
  {
    Trace.paper_config with
    Trace.hosts = 5_000;
    peak_rate = 50.0;
    duration_s = 600.0;
    peak_at_s = 300.0;
  }

let campaign_tests =
  [
    qtest "same seed yields a byte-identical schedule" ~count:30
      QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 50))
      (fun (seed_n, per_mille) ->
        let seed = Printf.sprintf "campaign-%d" seed_n in
        let cfg =
          Campaign.default ~trace:campaign_trace
            ~fraction:(float_of_int per_mille /. 1000.0)
        in
        let a = Campaign.schedule_to_string (Campaign.generate ~seed cfg) in
        let b = Campaign.schedule_to_string (Campaign.generate ~seed cfg) in
        String.equal a b);
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let cfg = Campaign.default ~trace:campaign_trace ~fraction:0.01 in
        let a =
          Campaign.schedule_to_string (Campaign.generate ~seed:"alpha" cfg)
        in
        let b =
          Campaign.schedule_to_string (Campaign.generate ~seed:"beta" cfg)
        in
        Alcotest.(check bool) "schedules differ" false (String.equal a b));
    Alcotest.test_case "schedule shape: sorted, in-window, bot count" `Quick
      (fun () ->
        let cfg = Campaign.default ~trace:campaign_trace ~fraction:0.02 in
        let events = Campaign.generate ~seed:"shape" cfg in
        let bots = Hashtbl.create 64 in
        let last = ref neg_infinity in
        List.iter
          (fun (e : Campaign.event) ->
            Alcotest.(check bool) "sorted" true (e.at >= !last);
            last := e.at;
            Alcotest.(check bool) "in window" true
              (e.at >= 0.0 && e.at < campaign_trace.Trace.duration_s);
            Alcotest.(check bool) "host in population" true
              (e.host >= 0 && e.host < campaign_trace.Trace.hosts);
            Alcotest.(check bool) "positive volume" true (e.volume >= 1);
            Hashtbl.replace bots e.host ())
          events;
        Alcotest.(check int) "exactly the malicious population"
          (Campaign.malicious_count cfg)
          (Hashtbl.length bots));
    Alcotest.test_case "activations ramp with the diurnal curve" `Quick
      (fun () ->
        (* Thinning against rate_at: the busy half of the window must hold
           clearly more activations than the trough half. *)
        let cfg =
          { (Campaign.default ~trace:campaign_trace ~fraction:0.2) with
            Campaign.events_per_host = 4.0 }
        in
        let events = Campaign.generate ~seed:"diurnal" cfg in
        let peak = campaign_trace.Trace.peak_at_s in
        let half = campaign_trace.Trace.duration_s /. 4.0 in
        let near, far =
          List.fold_left
            (fun (n, f) (e : Campaign.event) ->
              if Float.abs (e.at -. peak) <= half then (n + 1, f) else (n, f + 1))
            (0, 0) events
        in
        Alcotest.(check bool) "busy half dominates" true (near > far));
    Alcotest.test_case "every behavior appears in a large campaign" `Quick
      (fun () ->
        let cfg = Campaign.default ~trace:campaign_trace ~fraction:0.1 in
        let events = Campaign.generate ~seed:"coverage" cfg in
        let labels = List.map fst (Campaign.count_by_behavior events) in
        List.iter
          (fun l ->
            Alcotest.(check bool) (l ^ " present") true (List.mem l labels))
          [
            "unwanted-traffic";
            "replay-flood";
            "ephid-bruteforce";
            "shutoff-spam-forged";
            "shutoff-spam-duplicate";
            "shutoff-spam-expired";
          ]);
  ]

let () =
  Alcotest.run "apna_workload"
    [
      ("flow_model", flow_model_tests);
      ("trace", trace_tests);
      ("packet_mix", packet_mix_tests);
      ("campaign", campaign_tests);
    ]
