(* The hardened accountability agent under adversarial load: admission
   control (rate limit, duplicate-evidence dedup, evidence freshness),
   bounded-queue shedding priority, and batched revocation announcements.
   The campaign *generator* itself is covered in test/workload. *)

open Apna
open Apna_crypto

let qtest ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rng = Drbg.create ~seed:"campaign-tests"
let now0 = 1_750_000_000
let aid = Apna_net.Addr.aid_of_int
let hid = Apna_net.Addr.hid_of_int
let as_keys = Keys.make_as rng ~aid:(aid 64500)
let other_as_keys = Keys.make_as rng ~aid:(aid 64501)

let check_err what expected = function
  | Error e when Error.equal e expected -> ()
  | Error e -> Alcotest.failf "%s: wrong error %s" what (Error.to_string e)
  | Ok _ -> Alcotest.failf "%s: unexpectedly succeeded" what

(* One attacker host registered in AS 64500; the AA under test is that
   AS's. The victim lives in AS 64501 and holds a valid cert. *)
let aa_fixture ?limits ?(max_revocations_per_host = 100) () =
  let host_info = Host_info.create () in
  let h = hid 0x0a000001 in
  let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
  Host_info.register host_info h kha;
  let revoked = Revocation.create () in
  let trust = Trust.create () in
  Trust.register_as trust (aid 64500) ~pub:(Ed25519.public_key as_keys.signing);
  Trust.register_as trust (aid 64501)
    ~pub:(Ed25519.public_key other_as_keys.signing);
  let agent =
    Accountability.create ~keys:as_keys ~host_info ~revoked ~trust
      ~max_revocations_per_host ?limits ()
  in
  (agent, revoked, host_info, h, kha)

let make_victim () =
  let keys = Keys.make_ephid_keys rng in
  let ephid =
    Ephid.issue_random other_as_keys rng ~hid:(hid 7) ~expiry:(now0 + 900)
  in
  let cert =
    Cert.issue other_as_keys ~ephid ~expiry:(now0 + 900)
      ~kx_pub:keys.kx_public
      ~sig_pub:(Ed25519.public_key keys.sig_keypair)
      ~aa_ephid:ephid
  in
  (cert, keys)

(* Evidence: a packet the attacker host really sent to the victim (sealed
   under the attacker's kHA). Distinct payloads make distinct digests. *)
let evidence ~h ~kha ~(victim_cert : Cert.t) ?(expiry = now0 + 900) ~payload ()
    =
  let attacker_ephid = Ephid.issue_random as_keys rng ~hid:h ~expiry in
  let header =
    Apna_net.Apna_header.make ~src_aid:(aid 64500)
      ~src_ephid:(Ephid.to_bytes attacker_ephid)
      ~dst_aid:(aid 64501)
      ~dst_ephid:(Ephid.to_bytes victim_cert.ephid)
      ()
  in
  let pkt =
    Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload
  in
  Pkt_auth.seal ~auth_key:(kha : Keys.host_as).auth pkt

let request ~h ~kha ~victim ?expiry ~payload () =
  let victim_cert, victim_keys = victim in
  let pkt = evidence ~h ~kha ~victim_cert ?expiry ~payload () in
  Shutoff.make_request ~packet:pkt ~dst_cert:victim_cert ~dst_keys:victim_keys

let admission_tests =
  [
    Alcotest.test_case "token bucket refuses past the burst" `Quick (fun () ->
        let limits =
          { Accountability.default_limits with rate_burst = 4; rate_per_s = 1.0 }
        in
        let agent, revoked, _, h, kha = aa_fixture ~limits () in
        let victim = make_victim () in
        for i = 1 to 4 do
          match
            Accountability.handle_shutoff agent ~now:now0
              (request ~h ~kha ~victim ~payload:(Printf.sprintf "flow-%d" i) ())
          with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "request %d: %s" i (Error.to_string e)
        done;
        check_err "fifth request" (Error.Rejected "shutoff rate limit")
          (Accountability.handle_shutoff agent ~now:now0
             (request ~h ~kha ~victim ~payload:"flow-5" ()));
        Alcotest.(check int) "four revocations" 4 (Revocation.size revoked);
        (* Tokens refill with time: a second later the victim may report
           one more flow. *)
        Alcotest.(check bool) "refill admits again" true
          (Result.is_ok
             (Accountability.handle_shutoff agent ~now:(now0 + 2)
                (request ~h ~kha ~victim ~payload:"flow-6" ()))));
    Alcotest.test_case "duplicate evidence cannot double-revoke" `Quick
      (fun () ->
        let agent, revoked, _, h, kha = aa_fixture () in
        let victim = make_victim () in
        let req = request ~h ~kha ~victim ~payload:"once" () in
        (match Accountability.handle_shutoff agent ~now:now0 req with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "first: %s" (Error.to_string e));
        let gen = Revocation.generation revoked in
        check_err "replayed evidence" (Error.Rejected "duplicate evidence")
          (Accountability.handle_shutoff agent ~now:now0 req);
        Alcotest.(check int) "still one revocation" 1 (Revocation.size revoked);
        Alcotest.(check int) "quota counted once" 1
          (Accountability.revocations_of agent h);
        Alcotest.(check int) "no cache invalidation" gen
          (Revocation.generation revoked));
    Alcotest.test_case "expired-evidence replay is refused (regression)"
      `Quick (fun () ->
        (* The unwanted packet was real, but its source EphID's validity
           window has passed: the border router already drops that EphID,
           so granting would only burn quota and caches. *)
        let agent, revoked, _, h, kha = aa_fixture () in
        let victim = make_victim () in
        let req =
          request ~h ~kha ~victim ~expiry:(now0 + 900) ~payload:"stale" ()
        in
        let later = now0 + 901 in
        check_err "expired evidence" (Error.Expired "evidence")
          (Accountability.handle_shutoff agent ~now:later req);
        Alcotest.(check int) "nothing revoked" 0 (Revocation.size revoked);
        Alcotest.(check int) "no generation bump" 0
          (Revocation.generation revoked);
        Alcotest.(check (list (pair string int))) "typed refusal counted"
          [ ("expired", 1) ]
          (Accountability.refusal_reasons agent));
    Alcotest.test_case "implausible EphID expiry is refused" `Quick (fun () ->
        let agent, revoked, _, h, kha = aa_fixture () in
        let victim = make_victim () in
        let horizon = Accountability.(default_limits.max_expiry_horizon_s) in
        let req =
          request ~h ~kha ~victim
            ~expiry:(now0 + horizon + 86_400)
            ~payload:"forged-window" ()
        in
        check_err "beyond horizon"
          (Error.Rejected "evidence EphID beyond validity horizon")
          (Accountability.handle_shutoff agent ~now:now0 req);
        Alcotest.(check int) "nothing revoked" 0 (Revocation.size revoked));
  ]

let queue_tests =
  [
    Alcotest.test_case "load-shedding drops spam before legit evidence"
      `Quick (fun () ->
        (* Spammer burns its bucket below half: its later requests ride the
           low-priority queue. A legitimate victim arriving at a full queue
           evicts the oldest spam entry instead of being dropped. *)
        let limits =
          {
            Accountability.default_limits with
            rate_burst = 4;
            queue_cap = 4;
            drain_budget = 16;
          }
        in
        let agent, revoked, _, h, kha = aa_fixture ~limits () in
        let spammer_cert, _spammer_keys = make_victim () in
        let rogue = Keys.make_ephid_keys rng in
        for i = 1 to 4 do
          (* Structurally valid, wrong signing key: passes admission, dies
             at drain-time verification. *)
          let pkt =
            evidence ~h ~kha ~victim_cert:spammer_cert
              ~payload:(Printf.sprintf "spam-%d" i) ()
          in
          let bytes = Apna_net.Packet.to_bytes pkt in
          let forged =
            Msgs.Shutoff_request
              {
                packet = bytes;
                signature = Ed25519.sign rogue.sig_keypair bytes;
                cert = Cert.to_bytes spammer_cert;
              }
          in
          match Accountability.enqueue agent ~now:now0 ~at:0.0 forged with
          | Accountability.Queued -> ()
          | _ -> Alcotest.failf "spam %d should queue" i
        done;
        Alcotest.(check int) "queue full" 4 (Accountability.queue_depth agent);
        let victim = make_victim () in
        (match
           Accountability.enqueue agent ~now:now0 ~at:0.5
             (request ~h ~kha ~victim ~payload:"legit" ())
         with
        | Accountability.Queued -> ()
        | _ -> Alcotest.fail "legit evidence should evict spam, not shed");
        Alcotest.(check int) "still at cap" 4 (Accountability.queue_depth agent);
        Alcotest.(check int) "one spam entry shed" 1
          (Accountability.shed_count agent);
        let grants = Accountability.drain agent ~now:now0 ~at:1.0 in
        Alcotest.(check int) "only the legit request granted" 1
          (List.length grants);
        Alcotest.(check int) "its revocation landed" 1 (Revocation.size revoked);
        Alcotest.(check int) "queue drained" 0 (Accountability.queue_depth agent);
        Alcotest.(check int) "one propagation sample" 1
          (List.length (Accountability.propagation_samples agent)));
    Alcotest.test_case "a drain flushes grants as one revocation batch"
      `Quick (fun () ->
        let agent, revoked, _, h, kha = aa_fixture () in
        let victim = make_victim () in
        let gen0 = Revocation.generation revoked in
        for i = 1 to 5 do
          match
            Accountability.enqueue agent ~now:now0 ~at:(float_of_int i)
              (request ~h ~kha ~victim ~payload:(Printf.sprintf "b-%d" i) ())
          with
          | Accountability.Queued -> ()
          | _ -> Alcotest.failf "request %d should queue" i
        done;
        let grants = Accountability.drain agent ~now:now0 ~at:6.0 in
        Alcotest.(check int) "all granted" 5 (List.length grants);
        Alcotest.(check int) "all revoked" 5 (Revocation.size revoked);
        Alcotest.(check int) "one generation bump for the whole storm"
          (gen0 + 1)
          (Revocation.generation revoked);
        Alcotest.(check int) "quota counted each grant" 5
          (Accountability.revocations_of agent h));
    Alcotest.test_case "duplicate admitted before its twin's grant is caught"
      `Quick (fun () ->
        (* The same digest enqueued twice back-to-back: the dedup set only
           learns the digest at grant time, so the second copy must die at
           the drain-time re-check, not double-count the host's quota. *)
        let agent, revoked, _, h, kha = aa_fixture () in
        let victim = make_victim () in
        let req = request ~h ~kha ~victim ~payload:"twin" () in
        (match Accountability.enqueue agent ~now:now0 ~at:0.0 req with
        | Accountability.Queued -> ()
        | _ -> Alcotest.fail "first copy should queue");
        (match Accountability.enqueue agent ~now:now0 ~at:0.1 req with
        | Accountability.Queued -> ()
        | _ -> Alcotest.fail "second copy passes admission (not yet granted)");
        let grants = Accountability.drain agent ~now:now0 ~at:1.0 in
        Alcotest.(check int) "one grant" 1 (List.length grants);
        Alcotest.(check int) "one revocation" 1 (Revocation.size revoked);
        Alcotest.(check int) "quota counted once" 1
          (Accountability.revocations_of agent h));
    qtest "shed and refused requests never mutate revocation state"
      QCheck2.Gen.(int_range 0 1000)
      (fun n ->
        let limits =
          {
            Accountability.default_limits with
            rate_burst = 4;
            queue_cap = 3;
          }
        in
        let agent, revoked, host_info, h, kha = aa_fixture ~limits () in
        let cert, _keys = make_victim () in
        let rogue = Keys.make_ephid_keys rng in
        let gen0 = Revocation.generation revoked in
        let size0 = Revocation.size revoked in
        let requests = 4 + (n mod 9) in
        for i = 0 to requests - 1 do
          let expiry =
            (* Mix expired evidence in with forged-signature spam. *)
            if (n + i) mod 3 = 0 then now0 - 10 else now0 + 900
          in
          let pkt =
            evidence ~h ~kha ~victim_cert:cert
              ~payload:(Printf.sprintf "q-%d-%d" n i) ~expiry ()
          in
          let bytes = Apna_net.Packet.to_bytes pkt in
          let forged =
            Msgs.Shutoff_request
              {
                packet = bytes;
                signature = Ed25519.sign rogue.sig_keypair bytes;
                cert = Cert.to_bytes cert;
              }
          in
          ignore (Accountability.enqueue agent ~now:now0 ~at:0.0 forged)
        done;
        let grants = Accountability.drain agent ~now:now0 ~at:1.0 in
        grants = []
        && Revocation.generation revoked = gen0
        && Revocation.size revoked = size0
        && Host_info.mem_valid host_info h
        && Accountability.granted_count agent = 0);
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "campaign"
    [
      ("aa admission", admission_tests);
      ("aa queue", queue_tests);
    ]
