(* Flight-recorder acceptance (Issue 4): a cross-AS data packet under the
   E13 topology yields a journey whose hop sequence is exactly
   host → egress → link → ingress → … → deliver, a packet killed by
   injected loss yields the same prefix ending in a tagged loss event,
   and the Chrome-trace export of a live run parses as trace-event JSON. *)

open Apna
open Apna_net
module Event = Apna_obs.Event
module Journey = Apna_obs.Journey
module Span = Apna_obs.Span
module Json = Apna_obs.Json
module Chrome_trace = Apna_obs.Chrome_trace

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

(* The e2e line topology — alice@AS100, transit AS200, bob@AS300 — with an
   optional fault model on the first inter-AS link only, so the control
   plane (all intra-AS) bootstraps cleanly even under total loss. *)
let make_world ?first_hop_faults () =
  let net = Network.create ~seed:"flight" () in
  let _ = Network.add_as net 100 () in
  let _ = Network.add_as net 200 () in
  let _ = Network.add_as net 300 () in
  let first_link =
    match first_hop_faults with
    | Some faults -> Link.make ~faults ()
    | None -> Link.make ()
  in
  Network.connect_as net 100 200 ~link:first_link ();
  Network.connect_as net 200 300 ();
  let alice =
    Network.add_host net ~as_number:100 ~name:"alice" ~credential:"alice-tok" ()
  in
  let bob =
    Network.add_host net ~as_number:300 ~name:"bob" ~credential:"bob-tok" ()
  in
  ok_or_fail "alice bootstrap" (Host.bootstrap alice);
  ok_or_fail "bob bootstrap" (Host.bootstrap bob);
  let ep = ref None in
  Host.request_ephid bob (fun e -> ep := Some e);
  Network.run net;
  let ep =
    match !ep with
    | Some e -> e
    | None -> Alcotest.fail "bob got no EphID"
  in
  (net, alice, ep)

(* Record only the scenario under test: the world above is built with the
   recorder off, so bootstrap and EphID traffic leave no events behind. *)
let with_recorder f =
  Event.clear Event.default;
  Span.clear Span.default;
  Event.set_enabled Event.default true;
  Span.set_enabled Span.default true;
  Fun.protect
    ~finally:(fun () ->
      Event.set_enabled Event.default false;
      Span.set_enabled Span.default false;
      Event.clear Event.default;
      Span.clear Span.default)
    f

let stages (j : Journey.t) =
  List.map (fun (r : Event.record) -> Event.stage_label r.kind) j.events

(* The packet under test is the only cross-AS one recorded: any control
   traffic the data plane triggers stays inside one AS and never produces
   a [Link_transit] event. *)
let cross_as_journey journeys =
  match
    List.filter
      (fun (j : Journey.t) ->
        List.exists
          (fun (r : Event.record) ->
            match r.kind with Event.Link_transit _ -> true | _ -> false)
          j.events)
      journeys
  with
  | [ j ] -> j
  | js -> Alcotest.failf "expected one cross-AS journey, got %d" (List.length js)

let flight_tests =
  [
    Alcotest.test_case "fault-free cross-AS packet records every hop" `Quick
      (fun () ->
        let net, alice, ep = make_world () in
        with_recorder (fun () ->
            Host.connect alice ~remote:ep.cert ~data0:"probe" (fun _ -> ());
            Network.run net;
            let journeys = Journey.assemble Event.default in
            let j = cross_as_journey journeys in
            Alcotest.(check (list string))
              "hop sequence"
              [
                "host.send"; "br.egress"; "link.transit"; "br.ingress";
                "link.transit"; "br.ingress"; "deliver";
              ]
              (stages j);
            (match List.map (fun (r : Event.record) -> r.kind) j.events with
            | [
             Event.Host_send { aid = 100; host = "alice" };
             Event.Br_egress { aid = 100; outcome = Event.Egress_ok };
             Event.Link_transit { src = 100; dst = 200; fate = Event.Delivered };
             Event.Br_ingress { aid = 200; outcome = Event.Ingress_forward 300 };
             Event.Link_transit { src = 200; dst = 300; fate = Event.Delivered };
             Event.Br_ingress { aid = 300; outcome = Event.Ingress_deliver };
             Event.Deliver { aid = 300; _ };
            ] ->
                ()
            | ks ->
                Alcotest.failf "unexpected hop details: %s"
                  (String.concat " -> " (List.map Event.describe ks)));
            (match j.outcome with
            | Journey.Delivered -> ()
            | o -> Alcotest.failf "outcome: %s" (Journey.outcome_label o));
            (* Causal order is also temporal order. *)
            ignore
              (List.fold_left
                 (fun prev (r : Event.record) ->
                   if r.time < prev then
                     Alcotest.failf "time went backwards at %s"
                       (Event.stage_label r.kind);
                   r.time)
                 0.0 j.events)));
    Alcotest.test_case "loss on the first link tags the journey" `Quick
      (fun () ->
        let net, alice, ep =
          make_world ~first_hop_faults:(Link.make_faults ~loss:1.0 ()) ()
        in
        with_recorder (fun () ->
            Host.connect alice ~remote:ep.cert ~data0:"probe" (fun _ -> ());
            Network.run net;
            let j = cross_as_journey (Journey.assemble Event.default) in
            Alcotest.(check (list string))
              "prefix ends at the lossy link"
              [ "host.send"; "br.egress"; "link.transit" ]
              (stages j);
            match j.outcome with
            | Journey.Lost_on_link { src = 100; dst = 200; fate = Event.Lost }
              ->
                ()
            | o -> Alcotest.failf "outcome: %s" (Journey.outcome_label o)));
    Alcotest.test_case "chrome-trace export of a live run parses" `Quick
      (fun () ->
        let net, alice, ep = make_world () in
        with_recorder (fun () ->
            Host.connect alice ~remote:ep.cert ~data0:"probe" (fun _ -> ());
            Network.run net;
            let text =
              Chrome_trace.to_string ~spans:Span.default ~events:Event.default
                ()
            in
            match Json.parse text with
            | Error e -> Alcotest.failf "trace does not parse: %s" e
            | Ok (Json.List entries) ->
                if entries = [] then Alcotest.fail "trace is empty";
                List.iter
                  (fun entry ->
                    (match Json.member "name" entry with
                    | Some (Json.Str _) -> ()
                    | _ -> Alcotest.fail "entry without string name");
                    (match Json.member "ph" entry with
                    | Some (Json.Str ("X" | "i")) -> ()
                    | _ -> Alcotest.fail "entry without X/i phase");
                    match Option.bind (Json.member "ts" entry) Json.number with
                    | Some ts when ts >= 0.0 -> ()
                    | _ -> Alcotest.fail "entry without numeric ts")
                  entries
            | Ok _ -> Alcotest.fail "trace is not a JSON array"));
  ]

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Error);
  Alcotest.run "flight" [ ("journeys", flight_tests) ]
