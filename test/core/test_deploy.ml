(* Deployment-path tests: NAT-mode access points (§VII-B), IPv4 gateways
   (§VII-D) and DNS/receive-only end-to-end flows (§VII-A). *)

open Apna

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let aid = Apna_net.Addr.aid_of_int
let hid = Apna_net.Addr.hid_of_int

let make_world ?(seed = "deploy") () =
  let net = Network.create ~seed () in
  let _ = Network.add_as net 100 () in
  let _ = Network.add_as net 300 ~dns_zone:"example.net" () in
  Network.connect_as net 100 300 ();
  net

let bootstrapped net ~as_number ~name =
  let host = Network.add_host net ~as_number ~name ~credential:(name ^ "-tok") () in
  ok_or_fail (name ^ " bootstrap") (Host.bootstrap host);
  host

let fresh_endpoint net host =
  let ep = ref None in
  Host.request_ephid host (fun e -> ep := Some e);
  Network.run net;
  Option.get !ep

(* ------------------------------------------------------------------ *)
(* §VII-A: receive-only EphIDs and the client-server handshake *)

let dns_e2e_tests =
  [
    Alcotest.test_case "publish, resolve, connect, reply" `Quick (fun () ->
        let net = make_world () in
        let server = bootstrapped net ~as_number:300 ~name:"server" in
        let client = bootstrapped net ~as_number:100 ~name:"client" in
        Host.on_data server (fun ~session ~data ->
            ignore (Host.send server session ("resp:" ^ data)));
        let published = ref false in
        Host.publish server ~name:"svc.example.net" (fun () -> published := true);
        Network.run net;
        Alcotest.(check bool) "published" true !published;
        let dns_cert =
          Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 300)))
        in
        let got = ref None in
        Host.dns_lookup client ~name:"svc.example.net" ~dns:dns_cert (fun r ->
            got := r);
        Network.run net;
        let record = Option.get !got in
        Alcotest.(check bool) "receive-only" true record.receive_only;
        Host.connect client ~remote:record.cert ~data0:"hello"
          ~expect_accept:record.receive_only (fun _ -> ());
        Network.run net;
        Alcotest.(check (list string)) "reply" [ "resp:hello" ]
          (List.map snd (Host.received client)));
    Alcotest.test_case "server answers from a serving EphID, not the published one"
      `Quick (fun () ->
        let net = make_world () in
        let server = bootstrapped net ~as_number:300 ~name:"server" in
        let client = bootstrapped net ~as_number:100 ~name:"client" in
        Host.publish server ~name:"svc.example.net" (fun () -> ());
        Network.run net;
        let dns_cert =
          Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 300)))
        in
        let record = ref None in
        Host.dns_lookup client ~name:"svc.example.net" ~dns:dns_cert (fun r ->
            record := r);
        Network.run net;
        let record = Option.get !record in
        let session = ref None in
        Host.connect client ~remote:record.cert ~data0:"x"
          ~expect_accept:true (fun s -> session := Some s);
        Network.run net;
        let s = Option.get !session in
        Alcotest.(check bool) "established after accept" true (Session.established s);
        Alcotest.(check bool) "rekeyed off the receive-only EphID" false
          (Ephid.equal (Session.remote_cert s).ephid record.cert.ephid));
    Alcotest.test_case "post-accept data flows both ways (0.5-RTT queue)" `Quick
      (fun () ->
        let net = make_world () in
        let server = bootstrapped net ~as_number:300 ~name:"server" in
        let client = bootstrapped net ~as_number:100 ~name:"client" in
        Host.on_data server (fun ~session ~data ->
            ignore (Host.send server session (String.uppercase_ascii data)));
        Host.publish server ~name:"svc.example.net" (fun () -> ());
        Network.run net;
        let dns_cert =
          Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 300)))
        in
        let record = ref None in
        Host.dns_lookup client ~name:"svc.example.net" ~dns:dns_cert (fun r ->
            record := r);
        Network.run net;
        let record = Option.get !record in
        (* No 0-RTT data: the request is queued until Accept (§VII-C). *)
        Host.connect client ~remote:record.cert ~data0:"" ~expect_accept:true
          (fun session -> ignore (Host.send client session "queued request"));
        Network.run net;
        Alcotest.(check (list string)) "served" [ "QUEUED REQUEST" ]
          (List.map snd (Host.received client)));
    Alcotest.test_case "shutoff against a receive-only EphID is refused" `Quick
      (fun () ->
        (* Receive-only EphIDs never source packets, so no one can present
           evidence against them (§VII-A): a fabricated request fails. *)
        let net = make_world () in
        let server = bootstrapped net ~as_number:300 ~name:"server" in
        let attacker = bootstrapped net ~as_number:100 ~name:"attacker" in
        Host.publish server ~name:"svc.example.net" (fun () -> ());
        Network.run net;
        let dns_cert =
          Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 300)))
        in
        let record = ref None in
        Host.dns_lookup attacker ~name:"svc.example.net" ~dns:dns_cert (fun r ->
            record := r);
        Network.run net;
        let record = Option.get !record in
        let attacker_ep = fresh_endpoint net attacker in
        (* Fabricate "evidence": a packet claiming the receive-only EphID
           as source, self-addressed to the attacker. *)
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 300)
            ~src_ephid:(Ephid.to_bytes record.cert.ephid)
            ~dst_aid:(aid 100)
            ~dst_ephid:(Ephid.to_bytes attacker_ep.cert.ephid)
            ()
        in
        let fake =
          Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload:"fake"
        in
        let req =
          Shutoff.make_request ~packet:fake ~dst_cert:attacker_ep.cert
            ~dst_keys:attacker_ep.keys
        in
        let server_as = Network.node_exn net 300 in
        (match
           Accountability.handle_shutoff (As_node.accountability server_as)
             ~now:(Network.now_unix net) req
         with
        | Error Error.Bad_mac -> ()
        | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "fabricated shutoff accepted");
        Alcotest.(check int) "nothing revoked" 0
          (Revocation.size (As_node.revoked server_as)));
  ]

(* ------------------------------------------------------------------ *)
(* §VII-B: NAT-mode access point *)

let ap_world () =
  let net = make_world ~seed:"ap" () in
  let ap =
    Access_point.create ~name:"ap"
      ~rng:(Apna_crypto.Drbg.split (Network.rng net) "ap")
      ~virtual_as:64512
  in
  Access_point.attach ap (Network.node_exn net 100) ~credential:"ap-tok";
  ok_or_fail "ap bootstrap" (Access_point.bootstrap ap);
  let internal name =
    let h =
      Host.create ~name ~rng:(Apna_crypto.Drbg.split (Network.rng net) name) ()
    in
    Access_point.attach_internal ap h ~credential:(name ^ "-tok");
    ok_or_fail (name ^ " bootstrap") (Host.bootstrap h);
    h
  in
  (net, ap, internal)

let ap_tests =
  [
    Alcotest.test_case "internal host speaks to the world unchanged" `Quick
      (fun () ->
        let net, _ap, internal = ap_world () in
        let laptop = internal "laptop" in
        let server = bootstrapped net ~as_number:300 ~name:"server" in
        Host.on_data server (fun ~session ~data ->
            ignore (Host.send server session ("pong:" ^ data)));
        let server_ep = fresh_endpoint net server in
        Host.connect laptop ~remote:server_ep.cert ~data0:"ping" (fun _ -> ());
        Network.run net;
        Alcotest.(check (list string)) "round trip" [ "pong:ping" ]
          (List.map snd (Host.received laptop)));
    Alcotest.test_case "AS sees the AP's HID, never the device" `Quick (fun () ->
        let net, ap, internal = ap_world () in
        let laptop = internal "laptop" in
        let server = bootstrapped net ~as_number:300 ~name:"server" in
        let server_ep = fresh_endpoint net server in
        let session = ref None in
        Host.connect laptop ~remote:server_ep.cert ~data0:"x" (fun s ->
            session := Some s);
        Network.run net;
        let s = Option.get !session in
        let laptop_ephid = (Session.local_cert s).ephid in
        (* The issuing AS decrypts the EphID to... the AP's identity. *)
        let node = Network.node_exn net 100 in
        let info =
          ok_or_fail "parse" (Ephid.parse (As_node.keys node) laptop_ephid)
        in
        let ap_hid =
          Option.get
            (Registry.hid_of_credential (As_node.registry node)
               ~credential:"ap-tok")
        in
        Alcotest.(check bool) "maps to the AP" true
          (Apna_net.Addr.hid_equal info.hid ap_hid);
        (* Only the AP can name the device. *)
        Alcotest.(check (option string)) "AP pins the device" (Some "laptop")
          (Access_point.identify ap laptop_ephid));
    Alcotest.test_case "two devices, isolated identities" `Quick (fun () ->
        let net, ap, internal = ap_world () in
        let l1 = internal "laptop1" and l2 = internal "laptop2" in
        let server = bootstrapped net ~as_number:300 ~name:"server" in
        let server_ep = fresh_endpoint net server in
        let s1 = ref None and s2 = ref None in
        Host.connect l1 ~remote:server_ep.cert ~data0:"1" (fun s -> s1 := Some s);
        Host.connect l2 ~remote:server_ep.cert ~data0:"2" (fun s -> s2 := Some s);
        Network.run net;
        let e1 = (Session.local_cert (Option.get !s1)).ephid in
        let e2 = (Session.local_cert (Option.get !s2)).ephid in
        Alcotest.(check bool) "distinct EphIDs" false (Ephid.equal e1 e2);
        Alcotest.(check (option string)) "e1" (Some "laptop1") (Access_point.identify ap e1);
        Alcotest.(check (option string)) "e2" (Some "laptop2") (Access_point.identify ap e2);
        Alcotest.(check int) "bindings" 2 (Access_point.ephid_count ap));
    Alcotest.test_case "unknown source EphID dropped by the AP router" `Quick
      (fun () ->
        let net, _ap, internal = ap_world () in
        let laptop = internal "laptop" in
        let server = bootstrapped net ~as_number:300 ~name:"server" in
        let server_ep = fresh_endpoint net server in
        (* Inject a packet with a made-up source EphID through the
           laptop's attachment (i.e. the AP's router). *)
        let att = Option.get (Host.attachment laptop) in
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 64512)
            ~src_ephid:(String.make 16 'Z') ~dst_aid:(aid 300)
            ~dst_ephid:(Ephid.to_bytes server_ep.cert.ephid)
            ()
        in
        att.submit
          (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload:"x");
        Network.run net;
        Alcotest.(check bool) "nothing delivered" true (Host.received server = []));
  ]

(* ------------------------------------------------------------------ *)
(* §VII-D: IPv4 gateways *)

let ip a b c d = hid ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)

let make_ipv4 ~src ~dst payload =
  Apna_net.Ipv4_header.to_bytes
    (Apna_net.Ipv4_header.make ~protocol:17 ~src ~dst
       ~payload_len:(String.length payload) ())
  ^ payload

let payload_of bytes =
  String.sub bytes Apna_net.Ipv4_header.size
    (String.length bytes - Apna_net.Ipv4_header.size)

let gateway_world () =
  let net = make_world ~seed:"gw" () in
  let gw_c =
    Gateway.create ~name:"gw-client"
      ~rng:(Apna_crypto.Drbg.split (Network.rng net) "gwc")
  in
  let gw_s =
    Gateway.create ~name:"gw-server"
      ~rng:(Apna_crypto.Drbg.split (Network.rng net) "gws")
  in
  As_node.add_host (Network.node_exn net 100) (Gateway.host gw_c) ~credential:"gwc" ();
  As_node.add_host (Network.node_exn net 300) (Gateway.host gw_s) ~credential:"gws" ();
  ok_or_fail "gwc" (Host.bootstrap (Gateway.host gw_c));
  ok_or_fail "gws" (Host.bootstrap (Gateway.host gw_s));
  let dns_cert =
    Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 300)))
  in
  (net, gw_c, gw_s, dns_cert)

let gateway_tests =
  [
    Alcotest.test_case "legacy request/response across APNA" `Quick (fun () ->
        let net, gw_c, gw_s, dns_cert = gateway_world () in
        let client_ip = ip 203 0 113 7 and server_ip = ip 198 51 100 80 in
        (* The legacy server echoes. *)
        Gateway.on_ipv4_output gw_s (fun bytes ->
            match Apna_net.Ipv4_header.of_bytes bytes with
            | Ok h ->
                Gateway.ipv4_input gw_s
                  (make_ipv4 ~src:h.dst ~dst:h.src ("echo:" ^ payload_of bytes))
            | Error _ -> ());
        Gateway.expose gw_s ~name:"legacy.example.net" ~server_ip ~dns:dns_cert
          (fun () -> ());
        Network.run net;
        Gateway.resolve gw_c ~name:"legacy.example.net" ~dns:dns_cert (fun () ->
            Gateway.ipv4_input gw_c (make_ipv4 ~src:client_ip ~dst:server_ip "req"));
        Network.run net;
        (match Gateway.ipv4_output_log gw_c with
        | [ out ] ->
            let h = Result.get_ok (Apna_net.Ipv4_header.of_bytes out) in
            Alcotest.(check bool) "src is server" true
              (Apna_net.Addr.hid_equal h.src server_ip);
            Alcotest.(check bool) "dst is client" true
              (Apna_net.Addr.hid_equal h.dst client_ip);
            Alcotest.(check string) "payload" "echo:req" (payload_of out)
        | l -> Alcotest.failf "expected 1 output, got %d" (List.length l)));
    Alcotest.test_case "virtual endpoints separate remote clients" `Quick
      (fun () ->
        let net, gw_c, gw_s, dns_cert = gateway_world () in
        let server_ip = ip 198 51 100 80 in
        Gateway.on_ipv4_output gw_s (fun _ -> ());
        Gateway.expose gw_s ~name:"legacy.example.net" ~server_ip ~dns:dns_cert
          (fun () -> ());
        Network.run net;
        Gateway.resolve gw_c ~name:"legacy.example.net" ~dns:dns_cert (fun () ->
            (* Two distinct legacy clients behind the same gateway. *)
            Gateway.ipv4_input gw_c (make_ipv4 ~src:(ip 203 0 113 7) ~dst:server_ip "a");
            Gateway.ipv4_input gw_c (make_ipv4 ~src:(ip 203 0 113 8) ~dst:server_ip "b"));
        Network.run net;
        Alcotest.(check int) "two flows" 2 (Gateway.active_flows gw_c);
        Alcotest.(check int) "two virtual endpoints" 2
          (Gateway.virtual_endpoints gw_s);
        (* The legacy server sees two distinct source addresses. *)
        let srcs =
          List.filter_map
            (fun bytes ->
              match Apna_net.Ipv4_header.of_bytes bytes with
              | Ok h -> Some (Apna_net.Addr.hid_to_int h.src)
              | Error _ -> None)
            (Gateway.ipv4_output_log gw_s)
          |> List.sort_uniq compare
        in
        Alcotest.(check int) "distinct sources" 2 (List.length srcs));
    Alcotest.test_case "packets to unmapped destinations are dropped" `Quick
      (fun () ->
        let net, gw_c, _, _ = gateway_world () in
        Gateway.ipv4_input gw_c
          (make_ipv4 ~src:(ip 203 0 113 7) ~dst:(ip 9 9 9 9) "nowhere");
        Network.run net;
        Alcotest.(check int) "no flows" 0 (Gateway.active_flows gw_c));
    Alcotest.test_case "same flow reuses one session" `Quick (fun () ->
        let net, gw_c, gw_s, dns_cert = gateway_world () in
        let client_ip = ip 203 0 113 7 and server_ip = ip 198 51 100 80 in
        Gateway.on_ipv4_output gw_s (fun _ -> ());
        Gateway.expose gw_s ~name:"legacy.example.net" ~server_ip ~dns:dns_cert
          (fun () -> ());
        Network.run net;
        Gateway.resolve gw_c ~name:"legacy.example.net" ~dns:dns_cert (fun () ->
            for i = 1 to 5 do
              Gateway.ipv4_input gw_c
                (make_ipv4 ~src:client_ip ~dst:server_ip (string_of_int i))
            done);
        Network.run net;
        Alcotest.(check int) "one flow" 1 (Gateway.active_flows gw_c);
        Alcotest.(check int) "one virtual endpoint" 1 (Gateway.virtual_endpoints gw_s);
        Alcotest.(check int) "all five delivered" 5
          (List.length (Gateway.ipv4_output_log gw_s)));
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "apna_deploy"
    [
      ("dns_receive_only", dns_e2e_tests);
      ("access_point", ap_tests);
      ("gateway", gateway_tests);
    ]
