(* Unit tests for the core protocol modules: EphIDs, certificates, control
   messages, sessions, the four AS services, and their failure paths. *)

open Apna
open Apna_crypto

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rng = Drbg.create ~seed:"protocol-tests"
let now0 = 1_750_000_000
let aid = Apna_net.Addr.aid_of_int
let hid = Apna_net.Addr.hid_of_int
let as_keys = Keys.make_as rng ~aid:(aid 64500)
let other_as_keys = Keys.make_as rng ~aid:(aid 64501)

let check_err what expected = function
  | Error e when Error.equal e expected -> ()
  | Error e -> Alcotest.failf "%s: wrong error %s" what (Error.to_string e)
  | Ok _ -> Alcotest.failf "%s: unexpectedly succeeded" what

(* ------------------------------------------------------------------ *)
(* EphID construction (Fig. 6) *)

let ephid_tests =
  [
    Alcotest.test_case "issue/parse roundtrip" `Quick (fun () ->
        let e = Ephid.issue as_keys ~hid:(hid 0x0a0000ff) ~expiry:(now0 + 900)
            ~iv:"\x01\x02\x03\x04"
        in
        match Ephid.parse as_keys e with
        | Ok info ->
            Alcotest.(check int) "hid" 0x0a0000ff (Apna_net.Addr.hid_to_int info.hid);
            Alcotest.(check int) "expiry" (now0 + 900) info.expiry
        | Error err -> Alcotest.fail (Error.to_string err));
    Alcotest.test_case "sixteen bytes exactly" `Quick (fun () ->
        let e = Ephid.issue as_keys ~hid:(hid 1) ~expiry:now0 ~iv:"aaaa" in
        Alcotest.(check int) "size" 16 (String.length (Ephid.to_bytes e)));
    Alcotest.test_case "foreign AS cannot parse" `Quick (fun () ->
        let e = Ephid.issue as_keys ~hid:(hid 1) ~expiry:now0 ~iv:"aaaa" in
        check_err "foreign parse" (Error.Malformed "ephid: tag verification failed")
          (Ephid.parse other_as_keys e));
    qtest "tampering any bit is detected" QCheck2.Gen.(int_range 0 127)
      (fun bit ->
        let e = Ephid.issue as_keys ~hid:(hid 42) ~expiry:now0 ~iv:"\x09\x08\x07\x06" in
        let b = Bytes.of_string (Ephid.to_bytes e) in
        Bytes.set b (bit / 8)
          (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
        match Ephid.of_bytes (Bytes.unsafe_to_string b) with
        | Error _ -> true
        | Ok forged -> Result.is_error (Ephid.parse as_keys forged));
    qtest "different IVs yield unlinkable tokens" QCheck2.Gen.(int_range 0 1000)
      (fun n ->
        let iv1 = Printf.sprintf "%04d" n and iv2 = Printf.sprintf "%04d" (n + 1) in
        let e1 = Ephid.issue as_keys ~hid:(hid 7) ~expiry:now0 ~iv:iv1 in
        let e2 = Ephid.issue as_keys ~hid:(hid 7) ~expiry:now0 ~iv:iv2 in
        not (Ephid.equal e1 e2));
    Alcotest.test_case "expiry check" `Quick (fun () ->
        let e = Ephid.issue as_keys ~hid:(hid 1) ~expiry:(now0 + 10) ~iv:"aaaa" in
        match Ephid.parse as_keys e with
        | Ok info ->
            Alcotest.(check bool) "fresh" false (Ephid.expired info ~now:now0);
            Alcotest.(check bool) "stale" true (Ephid.expired info ~now:(now0 + 11))
        | Error err -> Alcotest.fail (Error.to_string err));
    Alcotest.test_case "of_bytes validates length" `Quick (fun () ->
        Alcotest.(check bool) "short" true (Result.is_error (Ephid.of_bytes "short"));
        Alcotest.(check bool) "ok" true
          (Result.is_ok (Ephid.of_bytes (String.make 16 'x'))));
    qtest "parse_bytes is total on arbitrary wire bytes" ~count:500
      (* Bias toward the 16-byte boundary where String.sub used to be able
         to raise; a wrong length or a bad tag must both come back as
         Error (Malformed _), never as an exception. *)
      QCheck2.Gen.(
        oneof
          [
            string_size (int_range 0 48);
            string_size (return 15);
            string_size (return 16);
            string_size (return 17);
          ])
      (fun s ->
        match Ephid.parse_bytes as_keys s with
        | Ok (e, _) ->
            String.length s = 16 && String.equal (Ephid.to_bytes e) s
        | Error (Error.Malformed _) -> true
        | Error _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Certificates *)

let make_cert ?(keys = as_keys) ?(expiry = now0 + 900) () =
  let ek = Keys.make_ephid_keys rng in
  let ephid = Ephid.issue_random keys rng ~hid:(hid 5) ~expiry in
  let aa = Ephid.issue_random keys rng ~hid:(hid 3) ~expiry in
  ( Cert.issue keys ~ephid ~expiry ~kx_pub:ek.kx_public
      ~sig_pub:(Ed25519.public_key ek.sig_keypair) ~aa_ephid:aa,
    ek )

let cert_tests =
  [
    Alcotest.test_case "wire size is fixed" `Quick (fun () ->
        let cert, _ = make_cert () in
        Alcotest.(check int) "168 bytes" Cert.size
          (String.length (Cert.to_bytes cert)));
    Alcotest.test_case "roundtrip" `Quick (fun () ->
        let cert, _ = make_cert () in
        Alcotest.(check bool) "equal" true
          (match Cert.of_bytes (Cert.to_bytes cert) with
          | Ok c -> Cert.equal c cert
          | Error _ -> false));
    Alcotest.test_case "verifies under issuing key" `Quick (fun () ->
        let cert, _ = make_cert () in
        Alcotest.(check bool) "ok" true
          (Result.is_ok
             (Cert.verify ~as_pub:(Ed25519.public_key as_keys.signing) ~now:now0 cert)));
    Alcotest.test_case "expired certificate rejected" `Quick (fun () ->
        let cert, _ = make_cert ~expiry:(now0 - 1) () in
        check_err "expired" (Error.Expired "certificate")
          (Cert.verify ~as_pub:(Ed25519.public_key as_keys.signing) ~now:now0 cert));
    Alcotest.test_case "wrong AS key rejected" `Quick (fun () ->
        let cert, _ = make_cert () in
        check_err "wrong key" (Error.Bad_signature "certificate")
          (Cert.verify ~as_pub:(Ed25519.public_key other_as_keys.signing) ~now:now0 cert));
    qtest "any field tamper invalidates" QCheck2.Gen.(int_range 0 (8 * (Cert.size - 64) - 1))
      (fun bit ->
        let cert, _ = make_cert () in
        let b = Bytes.of_string (Cert.to_bytes cert) in
        Bytes.set b (bit / 8)
          (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
        match Cert.of_bytes (Bytes.unsafe_to_string b) with
        | Error _ -> true
        | Ok tampered ->
            Result.is_error
              (Cert.verify ~as_pub:(Ed25519.public_key as_keys.signing) ~now:now0
                 tampered));
    Alcotest.test_case "trust store resolves issuer" `Quick (fun () ->
        let trust = Trust.create () in
        Trust.register_as trust (aid 64500)
          ~pub:(Ed25519.public_key as_keys.signing);
        let cert, _ = make_cert () in
        Alcotest.(check bool) "ok" true (Result.is_ok (Trust.verify_cert trust ~now:now0 cert));
        let foreign, _ = make_cert ~keys:other_as_keys () in
        Alcotest.(check bool) "unknown issuer" true
          (Result.is_error (Trust.verify_cert trust ~now:now0 foreign)));
  ]

(* ------------------------------------------------------------------ *)
(* Control messages *)

let msgs_tests =
  let gen_bytes n = QCheck2.Gen.(string_size (int_range 0 n)) in
  [
    qtest "ephid request/reply roundtrip"
      QCheck2.Gen.(pair (string_size (return 16)) (gen_bytes 200))
      (fun (nonce, sealed) ->
        let corr = 42L in
        let req = Msgs.Ephid_request { corr; nonce; sealed } in
        let rep = Msgs.Ephid_reply { corr; nonce; sealed } in
        Msgs.of_bytes (Msgs.to_bytes req) = Ok req
        && Msgs.of_bytes (Msgs.to_bytes rep) = Ok rep);
    qtest "shutoff request roundtrip"
      QCheck2.Gen.(triple (gen_bytes 100) (gen_bytes 64) (gen_bytes 168))
      (fun (packet, signature, cert) ->
        let m = Msgs.Shutoff_request { packet; signature; cert } in
        Msgs.of_bytes (Msgs.to_bytes m) = Ok m);
    qtest "dns messages roundtrip"
      QCheck2.Gen.(triple (gen_bytes 168) (string_size (return 16)) (gen_bytes 100))
      (fun (client_cert, nonce, sealed) ->
        let corr = 7L in
        let q = Msgs.Dns_query { corr; client_cert; nonce; sealed } in
        let r = Msgs.Dns_register { corr; client_cert; nonce; sealed } in
        Msgs.of_bytes (Msgs.to_bytes q) = Ok q
        && Msgs.of_bytes (Msgs.to_bytes r) = Ok r);
    Alcotest.test_case "unknown tag rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true (Result.is_error (Msgs.of_bytes "\x2a")));
    Alcotest.test_case "empty input rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true (Result.is_error (Msgs.of_bytes "")));
    qtest "request body roundtrip" QCheck2.Gen.(int_range 0 2) (fun lt ->
        let lifetime = Result.get_ok (Lifetime.of_int lt) in
        let body =
          Msgs.Request_body.
            { kx_pub = String.make 32 'x'; sig_pub = String.make 32 'y'; lifetime }
        in
        Msgs.Request_body.of_bytes (Msgs.Request_body.to_bytes body) = Ok body);
  ]

(* ------------------------------------------------------------------ *)
(* Replay window *)

let replay_tests =
  [
    Alcotest.test_case "monotone sequence accepted" `Quick (fun () ->
        let w = Replay_window.create () in
        for i = 0 to 1000 do
          Alcotest.(check bool) "fresh" true
            (Replay_window.check_and_update w (Int64.of_int i))
        done);
    Alcotest.test_case "duplicate rejected" `Quick (fun () ->
        let w = Replay_window.create () in
        ignore (Replay_window.check_and_update w 5L);
        Alcotest.(check bool) "dup" false (Replay_window.check_and_update w 5L));
    Alcotest.test_case "reordering within window accepted" `Quick (fun () ->
        let w = Replay_window.create ~size:8 () in
        Alcotest.(check bool) "10" true (Replay_window.check_and_update w 10L);
        Alcotest.(check bool) "7 late" true (Replay_window.check_and_update w 7L);
        Alcotest.(check bool) "7 again" false (Replay_window.check_and_update w 7L));
    Alcotest.test_case "too-old rejected" `Quick (fun () ->
        (* Window of size 8 with highest = 100 covers 93..100. *)
        let w = Replay_window.create ~size:8 () in
        ignore (Replay_window.check_and_update w 100L);
        Alcotest.(check bool) "93 in window" true
          (Replay_window.check_and_update w 93L);
        Alcotest.(check bool) "92 too old" false
          (Replay_window.check_and_update w 92L));
    Alcotest.test_case "negative rejected" `Quick (fun () ->
        let w = Replay_window.create () in
        Alcotest.(check bool) "neg" false (Replay_window.check_and_update w (-1L)));
    qtest "no duplicate ever accepted" ~count:100
      QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 50))
      (fun seqs ->
        let w = Replay_window.create ~size:16 () in
        let accepted = Hashtbl.create 16 in
        List.for_all
          (fun s ->
            let fresh = Replay_window.check_and_update w (Int64.of_int s) in
            if fresh then begin
              let dup = Hashtbl.mem accepted s in
              Hashtbl.replace accepted s ();
              not dup
            end
            else true)
          seqs);
    qtest "window never goes backwards" ~count:100
      QCheck2.Gen.(list_size (int_range 1 100) (int_range 0 1000))
      (fun seqs ->
        let w = Replay_window.create () in
        List.iter (fun s -> ignore (Replay_window.check_and_update w (Int64.of_int s))) seqs;
        let expected = List.fold_left max (-1) seqs in
        Replay_window.highest w = Int64.of_int expected);
  ]

(* ------------------------------------------------------------------ *)
(* Sessions *)

let session_pair () =
  let ek_a = Keys.make_ephid_keys rng and ek_b = Keys.make_ephid_keys rng in
  let cert_of keys =
    let ephid = Ephid.issue_random as_keys rng ~hid:(hid 9) ~expiry:(now0 + 900) in
    let aa = Ephid.issue_random as_keys rng ~hid:(hid 3) ~expiry:(now0 + 900) in
    Cert.issue as_keys ~ephid ~expiry:(now0 + 900)
      ~kx_pub:(keys : Keys.ephid_keys).kx_public
      ~sig_pub:(Ed25519.public_key keys.sig_keypair)
      ~aa_ephid:aa
  in
  let cert_a = cert_of ek_a and cert_b = cert_of ek_b in
  let sa =
    Result.get_ok
      (Session.create ~conn_id:77L ~initiator:true ~local_cert:cert_a
         ~local_keys:ek_a ~remote_cert:cert_b ())
  in
  let sb =
    Result.get_ok
      (Session.create ~conn_id:77L ~initiator:false ~local_cert:cert_b
         ~local_keys:ek_b ~remote_cert:cert_a ())
  in
  (sa, sb)

let session_tests =
  [
    Alcotest.test_case "both sides derive the same key" `Quick (fun () ->
        let sa, sb = session_pair () in
        let seq, sealed = Session.seal sa "payload" in
        Alcotest.(check string) "opens" "payload"
          (Result.get_ok (Session.open_sealed sb ~seq ~sealed)));
    Alcotest.test_case "directions do not collide" `Quick (fun () ->
        let sa, sb = session_pair () in
        (* Same seq in both directions: distinct nonces, both open. *)
        let seq_a, sealed_a = Session.seal sa "from a" in
        let seq_b, sealed_b = Session.seal sb "from b" in
        Alcotest.(check string) "a->b" "from a"
          (Result.get_ok (Session.open_sealed sb ~seq:seq_a ~sealed:sealed_a));
        Alcotest.(check string) "b->a" "from b"
          (Result.get_ok (Session.open_sealed sa ~seq:seq_b ~sealed:sealed_b));
        Alcotest.(check bool) "ciphertexts differ" true (sealed_a <> sealed_b));
    Alcotest.test_case "replayed frame rejected" `Quick (fun () ->
        let sa, sb = session_pair () in
        let seq, sealed = Session.seal sa "once" in
        ignore (Session.open_sealed sb ~seq ~sealed);
        check_err "replay" (Error.Rejected "replayed or stale sequence number")
          (Session.open_sealed sb ~seq ~sealed));
    Alcotest.test_case "tampered frame rejected before replay state" `Quick
      (fun () ->
        let sa, sb = session_pair () in
        let seq, sealed = Session.seal sa "x" in
        let b = Bytes.of_string sealed in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
        Alcotest.(check bool) "rejected" true
          (Result.is_error
             (Session.open_sealed sb ~seq ~sealed:(Bytes.unsafe_to_string b)));
        (* The genuine frame must still be accepted: authentication runs
           before the window is updated. *)
        Alcotest.(check string) "genuine ok" "x"
          (Result.get_ok (Session.open_sealed sb ~seq ~sealed)));
    Alcotest.test_case "sessions with distinct conn ids are isolated" `Quick
      (fun () ->
        let sa, _ = session_pair () in
        let _, sb' = session_pair () in
        let seq, sealed = Session.seal sa "leak?" in
        Alcotest.(check bool) "cannot open" true
          (Result.is_error (Session.open_sealed sb' ~seq ~sealed)));
    qtest "frame codec roundtrip"
      QCheck2.Gen.(
        let* kind = int_range 0 5 in
        let* conn_id = int_range 0 max_int in
        let* seq = int_range 0 max_int in
        let* sealed = string_size (int_range 0 100) in
        return (kind, Int64.of_int conn_id, Int64.of_int seq, sealed))
      (fun (kind, conn_id, seq, sealed) ->
        let cert, _ = make_cert () in
        let f =
          match kind with
          | 0 -> Session.Frame.Init { conn_id; cert; seq; sealed }
          | 1 -> Session.Frame.Accept { conn_id; cert; seq; sealed }
          | 2 -> Session.Frame.Data { conn_id; seq; sealed }
          | 3 -> Session.Frame.Fin { conn_id; seq; sealed }
          | 4 -> Session.Frame.Rekey { conn_id; cert; seq; sealed }
          | _ -> Session.Frame.Rekey_ack { conn_id; seq; sealed }
        in
        match Session.Frame.of_bytes (Session.Frame.to_bytes f) with
        | Ok f' -> f' = f
        | Error _ -> false);
    qtest "frame decoder is total on arbitrary bytes" ~count:200
      QCheck2.Gen.(string_size (int_range 0 300))
      (fun bytes ->
        (* Never raises: arbitrary input decodes or errors cleanly. *)
        match Session.Frame.of_bytes bytes with Ok _ | Error _ -> true);
    qtest "icmp decoder is total on arbitrary bytes" ~count:200
      QCheck2.Gen.(string_size (int_range 0 300))
      (fun bytes -> match Icmp.of_bytes bytes with Ok _ | Error _ -> true);
    Alcotest.test_case "rekey switches certificate and resets state" `Quick
      (fun () ->
        let sa, sb = session_pair () in
        ignore (Session.seal sa "advance");
        (* Server picks a serving certificate: new keys. *)
        let ek_s = Keys.make_ephid_keys rng in
        let serving =
          let ephid = Ephid.issue_random as_keys rng ~hid:(hid 9) ~expiry:(now0 + 900) in
          let aa = Ephid.issue_random as_keys rng ~hid:(hid 3) ~expiry:(now0 + 900) in
          Cert.issue as_keys ~ephid ~expiry:(now0 + 900) ~kx_pub:ek_s.kx_public
            ~sig_pub:(Ed25519.public_key ek_s.sig_keypair) ~aa_ephid:aa
        in
        Alcotest.(check bool) "rekey ok" true
          (Result.is_ok (Session.rekey sa ~remote_cert:serving));
        Alcotest.(check bool) "established" true (Session.established sa);
        Alcotest.(check bool) "remote updated" true
          (Cert.equal (Session.remote_cert sa) serving);
        ignore sb);
  ]

(* ------------------------------------------------------------------ *)
(* Registry (RS) *)

let registry_fixture () =
  let host_info = Host_info.create () in
  let rs = Registry.create ~keys:as_keys ~host_info ~rng () in
  let ms_cert, _ = make_cert () in
  let aa = Ephid.issue_random as_keys rng ~hid:(hid 3) ~expiry:(now0 + 900) in
  Registry.set_service_certs rs ~ms_cert ~dns_cert:None ~aa_ephid:aa;
  (rs, host_info)

let registry_tests =
  [
    Alcotest.test_case "unenrolled credential fails" `Quick (fun () ->
        let rs, _ = registry_fixture () in
        let _, pub = X25519.generate rng in
        check_err "auth" Error.Auth_failed
          (Registry.bootstrap rs ~now:now0 ~credential:"nobody" ~host_dh_pub:pub));
    Alcotest.test_case "bootstrap registers host_info and signs id_info" `Quick
      (fun () ->
        let rs, host_info = registry_fixture () in
        Registry.enroll rs ~credential:"alice";
        let secret, pub = X25519.generate rng in
        match Registry.bootstrap rs ~now:now0 ~credential:"alice" ~host_dh_pub:pub with
        | Error e -> Alcotest.fail (Error.to_string e)
        | Ok (reply, hid) ->
            Alcotest.(check bool) "registered" true (Host_info.mem_valid host_info hid);
            (* The host derives the same kHA from its side of the DH. *)
            let shared = Result.get_ok (X25519.shared_secret ~secret ~peer:reply.as_dh_pub) in
            let host_kha = Keys.derive_host_as ~shared_secret:shared in
            let entry = Result.get_ok (Host_info.find host_info hid) in
            Alcotest.(check string) "same auth key" entry.kha.auth host_kha.auth;
            (* id_info signature verifies under the AS key. *)
            Alcotest.(check bool) "id_info" true
              (Ed25519.verify
                 ~pub:(Ed25519.public_key as_keys.signing)
                 ~msg:(Registry.id_info_bytes ~ctrl_ephid:reply.ctrl_ephid
                         ~ctrl_expiry:reply.ctrl_expiry)
                 ~signature:reply.id_info_signature);
            (* The control EphID decodes to the assigned HID. *)
            let info = Result.get_ok (Ephid.parse as_keys reply.ctrl_ephid) in
            Alcotest.(check bool) "ctrl hid" true (Apna_net.Addr.hid_equal info.hid hid));
    Alcotest.test_case "re-bootstrap revokes the old identity" `Quick (fun () ->
        let rs, host_info = registry_fixture () in
        Registry.enroll rs ~credential:"alice";
        let _, pub = X25519.generate rng in
        let _, hid1 =
          Result.get_ok (Registry.bootstrap rs ~now:now0 ~credential:"alice" ~host_dh_pub:pub)
        in
        let _, hid2 =
          Result.get_ok (Registry.bootstrap rs ~now:now0 ~credential:"alice" ~host_dh_pub:pub)
        in
        Alcotest.(check bool) "new hid" false (Apna_net.Addr.hid_equal hid1 hid2);
        Alcotest.(check bool) "old revoked" false (Host_info.mem_valid host_info hid1);
        Alcotest.(check bool) "new valid" true (Host_info.mem_valid host_info hid2));
    Alcotest.test_case "distinct subscribers get distinct hids" `Quick (fun () ->
        let rs, _ = registry_fixture () in
        Registry.enroll rs ~credential:"a";
        Registry.enroll rs ~credential:"b";
        let _, pub = X25519.generate rng in
        let _, h1 = Result.get_ok (Registry.bootstrap rs ~now:now0 ~credential:"a" ~host_dh_pub:pub) in
        let _, h2 = Result.get_ok (Registry.bootstrap rs ~now:now0 ~credential:"b" ~host_dh_pub:pub) in
        Alcotest.(check bool) "distinct" false (Apna_net.Addr.hid_equal h1 h2);
        Alcotest.(check int) "customers" 2 (Registry.customer_count rs));
  ]

(* ------------------------------------------------------------------ *)
(* Management (MS) *)

let ms_fixture () =
  let host_info = Host_info.create () in
  let h = hid 0x0a000001 in
  let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
  Host_info.register host_info h kha;
  let aa = Ephid.issue_random as_keys rng ~hid:(hid 3) ~expiry:(now0 + 86_400) in
  let ms = Management.create ~keys:as_keys ~host_info ~rng ~aa_ephid:aa () in
  let ctrl = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 86_400) in
  (ms, host_info, h, kha, ctrl)

let management_tests =
  [
    Alcotest.test_case "issues a verifiable certificate" `Quick (fun () ->
        let ms, _, _, kha, ctrl = ms_fixture () in
        let keys = Keys.make_ephid_keys rng in
        let req = Management.Client.make_request ~rng ~corr:1L ~kha ~keys ~lifetime:Lifetime.Short in
        match Management.handle_request ms ~now:now0 ~src_ephid:(Ephid.to_bytes ctrl) req with
        | Error e -> Alcotest.fail (Error.to_string e)
        | Ok reply ->
            let cert = Result.get_ok (Management.Client.read_reply ~kha reply) in
            Alcotest.(check bool) "signed" true
              (Result.is_ok
                 (Cert.verify ~as_pub:(Ed25519.public_key as_keys.signing) ~now:now0 cert));
            Alcotest.(check string) "host's kx key" keys.kx_public cert.kx_pub;
            Alcotest.(check int) "short lifetime" (now0 + 60) cert.expiry;
            Alcotest.(check int) "issued count" 1 (Management.issued_count ms));
    Alcotest.test_case "expired control EphID rejected" `Quick (fun () ->
        let ms, _, h, kha, _ = ms_fixture () in
        let stale = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 - 1) in
        let keys = Keys.make_ephid_keys rng in
        let req = Management.Client.make_request ~rng ~corr:1L ~kha ~keys ~lifetime:Lifetime.Medium in
        check_err "expired" (Error.Expired "control EphID")
          (Management.handle_request ms ~now:now0 ~src_ephid:(Ephid.to_bytes stale) req));
    Alcotest.test_case "revoked HID rejected" `Quick (fun () ->
        let ms, host_info, h, kha, ctrl = ms_fixture () in
        Host_info.revoke_hid host_info h;
        let keys = Keys.make_ephid_keys rng in
        let req = Management.Client.make_request ~rng ~corr:1L ~kha ~keys ~lifetime:Lifetime.Medium in
        check_err "revoked" (Error.Revoked "HID")
          (Management.handle_request ms ~now:now0 ~src_ephid:(Ephid.to_bytes ctrl) req));
    Alcotest.test_case "request sealed under wrong key rejected" `Quick (fun () ->
        let ms, _, _, _, ctrl = ms_fixture () in
        let wrong_kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
        let keys = Keys.make_ephid_keys rng in
        let req =
          Management.Client.make_request ~rng ~corr:1L ~kha:wrong_kha ~keys
            ~lifetime:Lifetime.Medium
        in
        Alcotest.(check bool) "crypto error" true
          (match Management.handle_request ms ~now:now0 ~src_ephid:(Ephid.to_bytes ctrl) req with
          | Error (Error.Crypto _) -> true
          | _ -> false));
    Alcotest.test_case "forged source EphID rejected" `Quick (fun () ->
        let ms, _, _, kha, _ = ms_fixture () in
        let keys = Keys.make_ephid_keys rng in
        let req = Management.Client.make_request ~rng ~corr:1L ~kha ~keys ~lifetime:Lifetime.Medium in
        Alcotest.(check bool) "malformed" true
          (match Management.handle_request ms ~now:now0 ~src_ephid:(String.make 16 'z') req with
          | Error (Error.Malformed _) -> true
          | _ -> false));
    Alcotest.test_case "lifetime classes map to policy" `Quick (fun () ->
        let ms, _, h, _, _ = ms_fixture () in
        let keys = Keys.make_ephid_keys rng in
        List.iter
          (fun (lt, expected) ->
            let cert =
              Result.get_ok
                (Management.issue_direct ms ~now:now0 ~hid:h ~kx_pub:keys.kx_public
                   ~sig_pub:(Ed25519.public_key keys.sig_keypair) ~lifetime:lt)
            in
            Alcotest.(check int) "expiry" (now0 + expected) cert.expiry)
          [ (Lifetime.Short, 60); (Lifetime.Medium, 900); (Lifetime.Long, 86_400) ]);
  ]

(* ------------------------------------------------------------------ *)
(* Border router pipelines (Fig. 4) *)

let br_fixture () =
  let topology = Apna_net.Topology.create () in
  Apna_net.Topology.connect topology (aid 64500) (aid 64501) (Apna_net.Link.make ());
  Apna_net.Topology.connect topology (aid 64501) (aid 64502) (Apna_net.Link.make ());
  let host_info = Host_info.create () in
  let h = hid 0x0a000001 in
  let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
  Host_info.register host_info h kha;
  let revoked = Revocation.create () in
  let br = Border_router.create ~keys:as_keys ~host_info ~revoked ~topology () in
  (br, host_info, revoked, h, kha)

let packet_for ?(src_aid = aid 64500) ?(dst_aid = aid 64501) ~src_ephid
    ?(dst_ephid = String.make 16 'd') ?kha () =
  let header =
    Apna_net.Apna_header.make ~src_aid ~src_ephid:(Ephid.to_bytes src_ephid)
      ~dst_aid ~dst_ephid ()
  in
  let pkt = Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload:"data" in
  match kha with
  | Some (k : Keys.host_as) -> Pkt_auth.seal ~auth_key:k.auth pkt
  | None -> pkt

let border_router_tests =
  [
    Alcotest.test_case "valid egress accepted" `Quick (fun () ->
        let br, _, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        let pkt = packet_for ~src_ephid:e ~kha () in
        match Border_router.egress_check br ~now:now0 pkt with
        | Ok sender -> Alcotest.(check bool) "attributed" true (Apna_net.Addr.hid_equal sender h)
        | Error err -> Alcotest.fail (Error.to_string err));
    Alcotest.test_case "missing MAC dropped" `Quick (fun () ->
        let br, _, _, h, _ = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        check_err "no mac" Error.Bad_mac
          (Border_router.egress_check br ~now:now0 (packet_for ~src_ephid:e ())));
    Alcotest.test_case "expired EphID dropped" `Quick (fun () ->
        let br, _, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 - 1) in
        check_err "expired" (Error.Expired "EphID")
          (Border_router.egress_check br ~now:now0 (packet_for ~src_ephid:e ~kha ())));
    Alcotest.test_case "revoked EphID dropped" `Quick (fun () ->
        let br, _, revoked, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        Revocation.revoke revoked e ~expiry:(now0 + 900);
        check_err "revoked" (Error.Revoked "EphID")
          (Border_router.egress_check br ~now:now0 (packet_for ~src_ephid:e ~kha ())));
    Alcotest.test_case "revoked HID dropped" `Quick (fun () ->
        let br, host_info, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        Host_info.revoke_hid host_info h;
        check_err "hid" (Error.Revoked "HID")
          (Border_router.egress_check br ~now:now0 (packet_for ~src_ephid:e ~kha ())));
    Alcotest.test_case "foreign source AID dropped at egress" `Quick (fun () ->
        let br, _, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        Alcotest.(check bool) "malformed" true
          (match
             Border_router.egress_check br ~now:now0
               (packet_for ~src_aid:(aid 64502) ~src_ephid:e ~kha ())
           with
          | Error (Error.Malformed _) -> true
          | _ -> false));
    Alcotest.test_case "ingress delivers to local host" `Quick (fun () ->
        let br, _, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        let pkt =
          packet_for ~src_aid:(aid 64502) ~dst_aid:(aid 64500)
            ~src_ephid:(Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900))
            ~dst_ephid:(Ephid.to_bytes e) ~kha ()
        in
        match Border_router.ingress_check br ~now:now0 pkt with
        | Ok (Border_router.Deliver d) ->
            Alcotest.(check bool) "hid" true (Apna_net.Addr.hid_equal d h)
        | Ok (Border_router.Forward _) -> Alcotest.fail "unexpected forward"
        | Error err -> Alcotest.fail (Error.to_string err));
    Alcotest.test_case "transit forwards toward destination" `Quick (fun () ->
        (* A router at the transit AS 64501. *)
        let topology = Apna_net.Topology.create () in
        Apna_net.Topology.connect topology (aid 64500) (aid 64501) (Apna_net.Link.make ());
        Apna_net.Topology.connect topology (aid 64501) (aid 64502) (Apna_net.Link.make ());
        let transit_keys = Keys.make_as rng ~aid:(aid 64501) in
        let br =
          Border_router.create ~keys:transit_keys ~host_info:(Host_info.create ())
            ~revoked:(Revocation.create ()) ~topology ()
        in
        let e = Ephid.issue_random as_keys rng ~hid:(hid 1) ~expiry:(now0 + 900) in
        let pkt = packet_for ~dst_aid:(aid 64502) ~src_ephid:e () in
        match Border_router.ingress_check br ~now:now0 pkt with
        | Ok (Border_router.Forward next) ->
            Alcotest.(check int) "next" 64502 (Apna_net.Addr.aid_to_int next)
        | Ok (Border_router.Deliver _) -> Alcotest.fail "unexpected deliver"
        | Error err -> Alcotest.fail (Error.to_string err));
    Alcotest.test_case "counters track outcomes" `Quick (fun () ->
        let br, _, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        ignore (Border_router.egress_check br ~now:now0 (packet_for ~src_ephid:e ~kha ()));
        ignore (Border_router.egress_check br ~now:now0 (packet_for ~src_ephid:e ()));
        let c = Border_router.counters br in
        Alcotest.(check int) "ok" 1 c.egress_ok;
        Alcotest.(check int) "dropped" 1 c.dropped);
  ]

(* ------------------------------------------------------------------ *)
(* Validated-EphID fast-path cache: a hit must never outlive expiry,
   revocation, HID revocation, or a host re-key. *)

let ephid_cache_tests =
  [
    Alcotest.test_case "repeat packets of a flow hit the cache" `Quick
      (fun () ->
        let br, _, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        let pkt = packet_for ~src_ephid:e ~kha () in
        Alcotest.(check bool) "first ok" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        Alcotest.(check bool) "second ok" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        let s = Border_router.ephid_cache_stats br in
        Alcotest.(check int) "one miss" 1 s.misses;
        Alcotest.(check int) "one hit" 1 s.hits;
        Alcotest.(check int) "cached" 1 (Border_router.ephid_cache_size br));
    Alcotest.test_case "cached EphID is rejected after expiry" `Quick (fun () ->
        let br, _, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 10) in
        let pkt = packet_for ~src_ephid:e ~kha () in
        Alcotest.(check bool) "valid while fresh" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        check_err "expired on hit" (Error.Expired "EphID")
          (Border_router.egress_check br ~now:(now0 + 11) pkt);
        let s = Border_router.ephid_cache_stats br in
        Alcotest.(check int) "invalidated" 1 s.invalidations;
        Alcotest.(check int) "entry dropped" 0 (Border_router.ephid_cache_size br));
    Alcotest.test_case "cached EphID is rejected after Revocation.revoke"
      `Quick (fun () ->
        let br, _, revoked, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        let pkt = packet_for ~src_ephid:e ~kha () in
        Alcotest.(check bool) "cached as valid" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        Revocation.revoke revoked e ~expiry:(now0 + 900);
        check_err "revoked despite cache" (Error.Revoked "EphID")
          (Border_router.egress_check br ~now:now0 pkt);
        Alcotest.(check int) "generation invalidation" 1
          (Border_router.ephid_cache_stats br).invalidations);
    Alcotest.test_case "cached EphID is rejected after Host_info.revoke_hid"
      `Quick (fun () ->
        let br, host_info, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        let pkt = packet_for ~src_ephid:e ~kha () in
        Alcotest.(check bool) "cached as valid" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        Host_info.revoke_hid host_info h;
        check_err "HID revoked despite cache" (Error.Revoked "HID")
          (Border_router.egress_check br ~now:now0 pkt));
    Alcotest.test_case "re-registering a HID drops the cached auth key" `Quick
      (fun () ->
        let br, host_info, _, h, kha = br_fixture () in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        let pkt = packet_for ~src_ephid:e ~kha () in
        Alcotest.(check bool) "cached as valid" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        (* The host re-bootstraps: new kHA. Packets sealed under the old
           auth key must fail the MAC even though the EphID is cached. *)
        Host_info.register host_info h
          (Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32));
        check_err "old MAC rejected" Error.Bad_mac
          (Border_router.egress_check br ~now:now0 pkt));
    Alcotest.test_case "revocation-list GC of another entry keeps validity"
      `Quick (fun () ->
        (* gc bumps the generation only when it removes entries; either way
           a still-valid cached EphID must revalidate successfully. *)
        let br, _, revoked, h, kha = br_fixture () in
        let victim = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 5) in
        Revocation.revoke revoked victim ~expiry:(now0 + 5);
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        let pkt = packet_for ~src_ephid:e ~kha () in
        Alcotest.(check bool) "cached as valid" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        Alcotest.(check int) "gc removed the victim" 1
          (Revocation.gc revoked ~now:(now0 + 6));
        Alcotest.(check bool) "still valid after gc" true
          (Result.is_ok (Border_router.egress_check br ~now:(now0 + 6) pkt)));
    Alcotest.test_case "disabled cache still enforces the pipeline" `Quick
      (fun () ->
        let topology = Apna_net.Topology.create () in
        Apna_net.Topology.connect topology (aid 64500) (aid 64501)
          (Apna_net.Link.make ());
        let host_info = Host_info.create () in
        let h = hid 0x0a000001 in
        let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
        Host_info.register host_info h kha;
        let revoked = Revocation.create () in
        let br =
          Border_router.create ~keys:as_keys ~host_info ~revoked ~topology
            ~ephid_cache:0 ()
        in
        let e = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        let pkt = packet_for ~src_ephid:e ~kha () in
        Alcotest.(check bool) "ok" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        Alcotest.(check bool) "ok again" true
          (Result.is_ok (Border_router.egress_check br ~now:now0 pkt));
        let s = Border_router.ephid_cache_stats br in
        Alcotest.(check int) "no hits" 0 s.hits;
        Alcotest.(check int) "no misses" 0 s.misses;
        Alcotest.(check int) "nothing cached" 0 (Border_router.ephid_cache_size br);
        Revocation.revoke revoked e ~expiry:(now0 + 900);
        check_err "revoked" (Error.Revoked "EphID")
          (Border_router.egress_check br ~now:now0 pkt));
  ]

(* ------------------------------------------------------------------ *)
(* Accountability (AA) quota escalation and revoke command *)

let accountability_tests =
  [
    Alcotest.test_case "revoke command MAC verifies" `Quick (fun () ->
        let e = Ephid.issue_random as_keys rng ~hid:(hid 1) ~expiry:(now0 + 60) in
        let cmd = Accountability.Command.make ~keys:as_keys ~ephid:e ~expiry:(now0 + 60) in
        Alcotest.(check bool) "ok" true (Accountability.Command.verify ~keys:as_keys cmd);
        Alcotest.(check bool) "foreign rejected" false
          (Accountability.Command.verify ~keys:other_as_keys cmd));
    Alcotest.test_case "quota escalation revokes the HID" `Quick (fun () ->
        (* Build a full fixture where the victim holds valid material. *)
        let host_info = Host_info.create () in
        let h = hid 0x0a000001 in
        let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
        Host_info.register host_info h kha;
        let revoked = Revocation.create () in
        let trust = Trust.create () in
        Trust.register_as trust (aid 64500) ~pub:(Ed25519.public_key as_keys.signing);
        Trust.register_as trust (aid 64501) ~pub:(Ed25519.public_key other_as_keys.signing);
        let agent =
          Accountability.create ~keys:as_keys ~host_info ~revoked ~trust
            ~max_revocations_per_host:3 ()
        in
        (* The victim (in the other AS) with its own EphID cert. *)
        let victim_keys = Keys.make_ephid_keys rng in
        let victim_ephid = Ephid.issue_random other_as_keys rng ~hid:(hid 7) ~expiry:(now0 + 900) in
        let victim_aa = Ephid.issue_random other_as_keys rng ~hid:(hid 3) ~expiry:(now0 + 900) in
        let victim_cert =
          Cert.issue other_as_keys ~ephid:victim_ephid ~expiry:(now0 + 900)
            ~kx_pub:victim_keys.kx_public
            ~sig_pub:(Ed25519.public_key victim_keys.sig_keypair)
            ~aa_ephid:victim_aa
        in
        for i = 1 to 3 do
          let attacker_ephid = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
          let pkt =
            packet_for ~dst_aid:(aid 64501) ~src_ephid:attacker_ephid
              ~dst_ephid:(Ephid.to_bytes victim_ephid) ~kha ()
          in
          let req = Shutoff.make_request ~packet:pkt ~dst_cert:victim_cert ~dst_keys:victim_keys in
          (match Accountability.handle_shutoff agent ~now:now0 req with
          | Ok (revoked_hid, _) ->
              Alcotest.(check bool) "names the host" true
                (Apna_net.Addr.hid_equal revoked_hid h)
          | Error e -> Alcotest.failf "shutoff %d: %s" i (Error.to_string e));
          Alcotest.(check int) "revocations" i (Accountability.revocations_of agent h)
        done;
        Alcotest.(check int) "list size" 3 (Revocation.size revoked);
        Alcotest.(check bool) "HID revoked after quota" false
          (Host_info.mem_valid host_info h));
    Alcotest.test_case "evidence with bad MAC refused" `Quick (fun () ->
        let host_info = Host_info.create () in
        let h = hid 0x0a000001 in
        let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
        Host_info.register host_info h kha;
        let revoked = Revocation.create () in
        let trust = Trust.create () in
        Trust.register_as trust (aid 64501) ~pub:(Ed25519.public_key other_as_keys.signing);
        let agent = Accountability.create ~keys:as_keys ~host_info ~revoked ~trust () in
        let victim_keys = Keys.make_ephid_keys rng in
        let victim_ephid = Ephid.issue_random other_as_keys rng ~hid:(hid 7) ~expiry:(now0 + 900) in
        let victim_cert =
          Cert.issue other_as_keys ~ephid:victim_ephid ~expiry:(now0 + 900)
            ~kx_pub:victim_keys.kx_public
            ~sig_pub:(Ed25519.public_key victim_keys.sig_keypair)
            ~aa_ephid:victim_ephid
        in
        let attacker_ephid = Ephid.issue_random as_keys rng ~hid:h ~expiry:(now0 + 900) in
        (* A rogue packet the source never sent: no valid host MAC. *)
        let pkt =
          packet_for ~dst_aid:(aid 64501) ~src_ephid:attacker_ephid
            ~dst_ephid:(Ephid.to_bytes victim_ephid) ()
        in
        let req = Shutoff.make_request ~packet:pkt ~dst_cert:victim_cert ~dst_keys:victim_keys in
        check_err "bad mac" Error.Bad_mac (Accountability.handle_shutoff agent ~now:now0 req);
        Alcotest.(check int) "nothing revoked" 0 (Revocation.size revoked));
  ]

(* ------------------------------------------------------------------ *)
(* Revocation list *)

let revocation_tests =
  [
    Alcotest.test_case "gc drops only expired entries" `Quick (fun () ->
        let r = Revocation.create () in
        let e1 = Ephid.issue_random as_keys rng ~hid:(hid 1) ~expiry:(now0 + 10) in
        let e2 = Ephid.issue_random as_keys rng ~hid:(hid 2) ~expiry:(now0 + 1000) in
        Revocation.revoke r e1 ~expiry:(now0 + 10);
        Revocation.revoke r e2 ~expiry:(now0 + 1000);
        Alcotest.(check int) "removed" 1 (Revocation.gc r ~now:(now0 + 11));
        Alcotest.(check bool) "e1 gone" false (Revocation.is_revoked r e1);
        Alcotest.(check bool) "e2 stays" true (Revocation.is_revoked r e2);
        Alcotest.(check int) "size" 1 (Revocation.size r));
    Alcotest.test_case "idempotent revoke" `Quick (fun () ->
        let r = Revocation.create () in
        let e = Ephid.issue_random as_keys rng ~hid:(hid 1) ~expiry:(now0 + 10) in
        Revocation.revoke r e ~expiry:(now0 + 10);
        Revocation.revoke r e ~expiry:(now0 + 10);
        Alcotest.(check int) "one entry" 1 (Revocation.size r));
  ]

(* ------------------------------------------------------------------ *)
(* DNS service *)

let dns_fixture () =
  let trust = Trust.create () in
  Trust.register_as trust (aid 64500) ~pub:(Ed25519.public_key as_keys.signing);
  let zone_key = Ed25519.generate rng in
  Trust.register_zone trust "example.net" ~pub:(Ed25519.public_key zone_key);
  let dns_cert, dns_keys = make_cert () in
  let dns =
    Dns_service.create ~rng:(Drbg.split rng "dns") ~trust ~zone:"example.net"
      ~zone_key ~cert:dns_cert ~keys:dns_keys ()
  in
  (dns, trust, zone_key)

let dns_tests =
  [
    Alcotest.test_case "register then query end to end" `Quick (fun () ->
        let dns, trust, _ = dns_fixture () in
        let service_cert, _ = make_cert () in
        Alcotest.(check bool) "registered" true
          (Result.is_ok
             (Dns_service.register dns ~now:now0 ~name:"svc.example.net"
                ~cert:service_cert ~receive_only:true ()));
        (* Client side. *)
        let client_cert, client_keys = make_cert () in
        let query =
          Result.get_ok
            (Dns_service.Client.make_query ~rng ~corr:1L ~client_cert ~client_keys
               ~dns_cert:(Dns_service.cert dns) ~name:"svc.example.net")
        in
        let reply = Result.get_ok (Dns_service.handle dns ~now:now0 query) in
        let record =
          Result.get_ok
            (Dns_service.Client.read_reply ~client_keys ~client_cert
               ~dns_cert:(Dns_service.cert dns) reply)
        in
        match record with
        | Some r ->
            Alcotest.(check string) "name" "svc.example.net" r.name;
            Alcotest.(check bool) "receive-only" true r.receive_only;
            let zone_pub = Result.get_ok (Trust.zone_pub trust "example.net") in
            Alcotest.(check bool) "zone sig" true
              (Result.is_ok (Dns_service.Record.verify ~zone_pub ~now:now0 r))
        | None -> Alcotest.fail "NXDOMAIN");
    Alcotest.test_case "unknown name yields NXDOMAIN" `Quick (fun () ->
        let dns, _, _ = dns_fixture () in
        let client_cert, client_keys = make_cert () in
        let query =
          Result.get_ok
            (Dns_service.Client.make_query ~rng ~corr:1L ~client_cert ~client_keys
               ~dns_cert:(Dns_service.cert dns) ~name:"nope.example.net")
        in
        let reply = Result.get_ok (Dns_service.handle dns ~now:now0 query) in
        Alcotest.(check bool) "none" true
          (Result.get_ok
             (Dns_service.Client.read_reply ~client_keys ~client_cert
                ~dns_cert:(Dns_service.cert dns) reply)
          = None));
    Alcotest.test_case "record with forged zone signature rejected" `Quick
      (fun () ->
        let dns, _, _ = dns_fixture () in
        let service_cert, _ = make_cert () in
        ignore
          (Dns_service.register dns ~now:now0 ~name:"svc" ~cert:service_cert
             ~receive_only:false ());
        let record = Option.get (Dns_service.lookup dns "svc") in
        let rogue = Ed25519.generate rng in
        Alcotest.(check bool) "forged" true
          (Result.is_error
             (Dns_service.Record.verify ~zone_pub:(Ed25519.public_key rogue)
                ~now:now0 record)));
    Alcotest.test_case "registration with expired cert refused" `Quick (fun () ->
        let dns, _, _ = dns_fixture () in
        let stale_cert, _ = make_cert ~expiry:(now0 - 1) () in
        Alcotest.(check bool) "refused" true
          (Result.is_error
             (Dns_service.register dns ~now:now0 ~name:"stale" ~cert:stale_cert
                ~receive_only:false ())));
    Alcotest.test_case "query from unverifiable client refused" `Quick (fun () ->
        let dns, _, _ = dns_fixture () in
        (* A certificate from an AS the trust store does not know. *)
        let rogue_keys = Keys.make_as rng ~aid:(aid 65000) in
        let client_cert, client_keys = make_cert ~keys:rogue_keys () in
        let query =
          Result.get_ok
            (Dns_service.Client.make_query ~rng ~corr:1L ~client_cert ~client_keys
               ~dns_cert:(Dns_service.cert dns) ~name:"svc")
        in
        Alcotest.(check bool) "refused" true
          (Result.is_error (Dns_service.handle dns ~now:now0 query)));
    qtest "record codec roundtrip" QCheck2.Gen.(pair (string_size (int_range 0 40)) bool)
      (fun (name, receive_only) ->
        let cert, _ = make_cert () in
        let record =
          Dns_service.Record.
            { name; cert; ipv4 = Some (hid 0x01020304); receive_only;
              zone = "z"; signature = String.make 64 's' }
        in
        Dns_service.Record.of_bytes (Dns_service.Record.to_bytes record) = Ok record);
  ]

(* ------------------------------------------------------------------ *)
(* ICMP codec *)

let icmp_tests =
  [
    qtest "echo roundtrip" QCheck2.Gen.(pair (int_range 0 0xffff) (string_size (int_range 0 64)))
      (fun (ident, data) ->
        Icmp.of_bytes (Icmp.to_bytes (Icmp.Echo_request { ident; data }))
        = Ok (Icmp.Echo_request { ident; data })
        && Icmp.of_bytes (Icmp.to_bytes (Icmp.Echo_reply { ident; data }))
           = Ok (Icmp.Echo_reply { ident; data }));
    Alcotest.test_case "unreachable roundtrip" `Quick (fun () ->
        List.iter
          (fun reason ->
            let m = Icmp.Unreachable { reason; quoted = "quoted-bytes" } in
            Alcotest.(check bool) "roundtrip" true (Icmp.of_bytes (Icmp.to_bytes m) = Ok m))
          [ Icmp.No_route; Icmp.Ephid_expired; Icmp.Ephid_revoked; Icmp.Host_unknown ]);
    Alcotest.test_case "garbage rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true (Result.is_error (Icmp.of_bytes "\x07xx")));
  ]

(* ------------------------------------------------------------------ *)
(* Packet authentication *)

let pkt_auth_tests =
  [
    qtest "seal then verify" QCheck2.Gen.(string_size (int_range 0 200)) (fun payload ->
        let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 1) ~src_ephid:(String.make 16 's')
            ~dst_aid:(aid 2) ~dst_ephid:(String.make 16 'd') ()
        in
        let pkt = Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload in
        Pkt_auth.verify ~auth_key:kha.auth (Pkt_auth.seal ~auth_key:kha.auth pkt));
    qtest "payload tamper detected" QCheck2.Gen.(string_size (int_range 1 100)) (fun payload ->
        let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 1) ~src_ephid:(String.make 16 's')
            ~dst_aid:(aid 2) ~dst_ephid:(String.make 16 'd') ()
        in
        let pkt =
          Pkt_auth.seal ~auth_key:kha.auth
            (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload)
        in
        let tampered = { pkt with payload = payload ^ "!" } in
        not (Pkt_auth.verify ~auth_key:kha.auth tampered));
    Alcotest.test_case "wrong key fails" `Quick (fun () ->
        let kha1 = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
        let kha2 = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 1) ~src_ephid:(String.make 16 's')
            ~dst_aid:(aid 2) ~dst_ephid:(String.make 16 'd') ()
        in
        let pkt =
          Pkt_auth.seal ~auth_key:kha1.auth
            (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload:"x")
        in
        Alcotest.(check bool) "fails" false (Pkt_auth.verify ~auth_key:kha2.auth pkt));
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "apna_protocol"
    [
      ("ephid", ephid_tests);
      ("cert", cert_tests);
      ("msgs", msgs_tests);
      ("replay_window", replay_tests);
      ("session", session_tests);
      ("registry", registry_tests);
      ("management", management_tests);
      ("border_router", border_router_tests);
      ("ephid_cache", ephid_cache_tests);
      ("accountability", accountability_tests);
      ("revocation", revocation_tests);
      ("dns", dns_tests);
      ("icmp", icmp_tests);
      ("pkt_auth", pkt_auth_tests);
    ]
