(* End-to-end tests for the engine-driven telemetry pipeline: the sampler
   ticks on simulated time, derived indicators compute from live registry
   deltas, the alert engine detects a replay flood as it happens, and the
   health rollup + dashboard + export surfaces agree with the run. Runs in
   its own process, so enabling the default registry is safe. *)

open Apna
module T = Apna_obs.Timeseries
module Alert = Apna_obs.Alert
module Health = Apna_obs.Health
module Json = Apna_obs.Json

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

(* A two-host net whose inter-AS links duplicate aggressively once the
   session is up: duplicated data frames hit the receive-side replay
   window, which is exactly the signature the replay-flood rule watches. *)
let replay_flood_net () =
  let module Link = Apna_net.Link in
  let net = Network.create ~seed:"telemetry-test" () in
  let _ = Network.add_as net 64500 () in
  let _ = Network.add_as net 64501 () in
  Network.connect_as net 64500 64501 ();
  let alice =
    Network.add_host net ~as_number:64500 ~name:"alice" ~credential:"a" ()
  in
  let bob =
    Network.add_host net ~as_number:64501 ~name:"bob" ~credential:"b" ()
  in
  List.iter
    (fun h ->
      match Host.bootstrap h with
      | Ok () -> ()
      | Error e -> failwith (Error.to_string e))
    [ alice; bob ];
  let ep = ref None in
  Host.request_ephid bob ~lifetime:Lifetime.Long ~receive_only:true (fun e ->
      ep := Some e);
  Network.run net;
  let session = ref None in
  Host.connect alice ~remote:(Option.get !ep).cert ~expect_accept:true
    (fun s -> session := Some s);
  Network.run net;
  (* Swap in a heavily-duplicating link for the flood itself. *)
  Network.connect_as net 64500 64501
    ~link:
      (Link.make ~faults:(Link.make_faults ~duplicate:0.5 ()) ())
    ();
  (net, alice, Option.get !session)

let flood net alice session ~msgs ~span_s =
  let eng = Network.engine net in
  for i = 0 to msgs - 1 do
    Apna_sim.Engine.schedule_in eng
      ~delay:(span_s *. float_of_int i /. float_of_int msgs)
      (fun () -> ignore (Host.send alice session (Printf.sprintf "m%04d" i)))
  done;
  Network.run net

let telemetry_tests =
  [
    Alcotest.test_case "sampler ticks on the engine and stops at quiescence"
      `Quick (fun () ->
        let net, alice, session = replay_flood_net () in
        let tel = Telemetry.attach ~interval:0.25 net in
        flood net alice session ~msgs:100 ~span_s:2.0;
        let ticks = T.ticks (Telemetry.timeseries tel) in
        Alcotest.(check bool) "ticked through the flood" true (ticks >= 6);
        (* Quiescent: no pending events, so the tick disarmed itself. *)
        Alcotest.(check int) "engine drained" 0
          (Apna_sim.Engine.pending (Network.engine net));
        Network.run net;
        Alcotest.(check int) "no ticks while idle" ticks
          (T.ticks (Telemetry.timeseries tel));
        (* kick + more traffic resumes sampling. *)
        Telemetry.kick tel;
        flood net alice session ~msgs:50 ~span_s:1.0;
        Alcotest.(check bool) "resumed after kick" true
          (T.ticks (Telemetry.timeseries tel) > ticks));
    Alcotest.test_case "replay flood trips the replay-flood rule live" `Quick
      (fun () ->
        let net, alice, session = replay_flood_net () in
        let tel = Telemetry.attach ~interval:0.25 net in
        flood net alice session ~msgs:400 ~span_s:3.0;
        let alerts = Telemetry.alerts tel in
        Alcotest.(check bool) "replay-flood fired" true
          (Alert.has_fired alerts "replay-flood");
        (* The raw signal is there too: the per-host replay counter moved
           and the derived rate series saw it. *)
        let ts = Telemetry.timeseries tel in
        let s =
          Option.get (T.find ts Apna_obs.Derive.replay_reject_rate)
        in
        Alcotest.(check bool) "derived rate exceeded threshold" true
          (List.exists (fun (_, v) -> v > 20.0) (T.points s)));
    Alcotest.test_case "per-AS gauges and derived series appear in the ring"
      `Quick (fun () ->
        let net, alice, session = replay_flood_net () in
        let tel = Telemetry.attach ~interval:0.25 net in
        flood net alice session ~msgs:100 ~span_s:2.0;
        let ts = Telemetry.timeseries tel in
        let names = T.names ts in
        List.iter
          (fun n ->
            Alcotest.(check bool) n true
              (List.exists (fun id -> contains id n) names))
          [
            "apna_revocation_list_size";
            "derived:ephid_cache_hit_ratio";
            "apna_host_replay_rejected_total";
          ]);
    Alcotest.test_case "health, dashboard and export agree with the alerts"
      `Quick (fun () ->
        let net, alice, session = replay_flood_net () in
        let tel = Telemetry.attach ~interval:0.25 net in
        flood net alice session ~msgs:400 ~span_s:3.0;
        let reports = Telemetry.health tel in
        Alcotest.(check bool) "global scope degraded or worse" true
          (List.exists
             (fun r ->
               r.Health.scope = "global" && r.Health.status <> Health.Ok)
             reports);
        let dash = Telemetry.dashboard tel in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains dash needle))
          [ "HEALTH"; "ALERTS"; "INDICATORS"; "replay-flood" ];
        (* telemetry.json: parses back and carries all three sections. *)
        match Json.parse (Json.to_string (Telemetry.export tel)) with
        | Error e -> Alcotest.failf "export does not parse: %s" e
        | Ok doc ->
            List.iter
              (fun k ->
                Alcotest.(check bool) k true (Json.member k doc <> None))
              [ "timeseries"; "alerts"; "health" ]);
    Alcotest.test_case "stop disarms permanently" `Quick (fun () ->
        let net, alice, session = replay_flood_net () in
        let tel = Telemetry.attach ~interval:0.25 net in
        flood net alice session ~msgs:50 ~span_s:1.0;
        Telemetry.stop tel;
        let ticks = T.ticks (Telemetry.timeseries tel) in
        Telemetry.kick tel;
        flood net alice session ~msgs:50 ~span_s:1.0;
        Alcotest.(check int) "no further ticks" ticks
          (T.ticks (Telemetry.timeseries tel)));
  ]

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Error);
  Alcotest.run "telemetry" [ ("telemetry", telemetry_tests) ]
