(* Session-survivability acceptance (Issue 5): live sessions outlive the
   EphIDs that started them. Proactive renewal-margin migration keeps a
   long exchange alive across multiple Short-lifetime expiry boundaries
   under the E13 fault mix; ICMP Ephid_revoked feedback drives reactive
   recovery; a blackholed management service opens the issuance circuit
   breaker and sends degrade per the brownout policy instead of
   blackholing; and the bounded-state regressions (stale prefetched
   EphIDs, unreachable-notification ring) stay bounded. *)

open Apna
open Apna_net
module M = Apna_obs.Metrics

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let m_migrations =
  M.Counter.register M.default "apna_host_session_migrations_total"

(* ------------------------------------------------------------------ *)
(* Breaker unit tests: the state machine in isolation. *)

let breaker_tests =
  [
    Alcotest.test_case "opens after threshold consecutive failures" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:3 ~cooldown_s:10.0 () in
        Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
        Breaker.failure b ~now:0.0;
        Breaker.failure b ~now:0.1;
        Alcotest.(check bool) "still closed at 2" true
          (Breaker.state b = Breaker.Closed);
        (* A success resets the consecutive count. *)
        Breaker.success b;
        Breaker.failure b ~now:0.2;
        Breaker.failure b ~now:0.3;
        Alcotest.(check bool) "reset by success" true
          (Breaker.state b = Breaker.Closed);
        Breaker.failure b ~now:0.4;
        Alcotest.(check bool) "open at 3" true (Breaker.state b = Breaker.Open);
        Alcotest.(check int) "one open transition" 1 (Breaker.opens b));
    Alcotest.test_case "half-open probe closes or reopens" `Quick (fun () ->
        let b = Breaker.create ~threshold:1 ~cooldown_s:5.0 () in
        Breaker.failure b ~now:0.0;
        Alcotest.(check bool) "open" true (Breaker.state b = Breaker.Open);
        Alcotest.(check bool) "fail fast inside cooldown" false
          (Breaker.acquire b ~now:3.0);
        Alcotest.(check bool) "probe admitted after cooldown" true
          (Breaker.acquire b ~now:6.0);
        Alcotest.(check bool) "half-open" true
          (Breaker.state b = Breaker.Half_open);
        Alcotest.(check bool) "second caller blocked during probe" false
          (Breaker.acquire b ~now:6.1);
        (* Probe fails: back to Open, cooldown restarts. *)
        Breaker.failure b ~now:6.5;
        Alcotest.(check bool) "reopened" true (Breaker.state b = Breaker.Open);
        Alcotest.(check int) "two opens" 2 (Breaker.opens b);
        Alcotest.(check bool) "new probe after new cooldown" true
          (Breaker.acquire b ~now:12.0);
        Breaker.success b;
        Alcotest.(check bool) "closed again" true
          (Breaker.state b = Breaker.Closed);
        Alcotest.(check bool) "admits freely when closed" true
          (Breaker.acquire b ~now:12.1));
    Alcotest.test_case "transition observer fires on changes only" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:2 ~cooldown_s:1.0 () in
        let seen = ref [] in
        Breaker.on_transition b (fun s -> seen := Breaker.state_label s :: !seen);
        Breaker.failure b ~now:0.0;
        Breaker.failure b ~now:0.1;
        Breaker.failure b ~now:0.2;
        ignore (Breaker.acquire b ~now:2.0);
        Breaker.success b;
        Alcotest.(check (list string)) "open, half-open, closed"
          [ "open"; "half-open"; "closed" ]
          (List.rev !seen));
  ]

(* ------------------------------------------------------------------ *)
(* The acceptance topology: AS100 (alice) — AS200 — AS300 (bob), with the
   chaos suite's rough fault mix on both inter-AS links when asked. *)

let make_world ?(seed = "survival") ?link_faults () =
  let net = Network.create ~seed () in
  let _ = Network.add_as net 100 () in
  let _ = Network.add_as net 200 () in
  let _ = Network.add_as net 300 () in
  let link () =
    match link_faults with
    | Some faults -> Link.make ~faults ()
    | None -> Link.make ()
  in
  Network.connect_as net 100 200 ~link:(link ()) ();
  Network.connect_as net 200 300 ~link:(link ()) ();
  let alice =
    Network.add_host net ~as_number:100 ~name:"alice" ~credential:"alice-tok" ()
  in
  let bob =
    Network.add_host net ~as_number:300 ~name:"bob" ~credential:"bob-tok" ()
  in
  ok_or_fail "alice bootstrap" (Host.bootstrap alice);
  ok_or_fail "bob bootstrap" (Host.bootstrap bob);
  Network.run net;
  (net, alice, bob)

let rough_faults =
  Link.make_faults ~loss:0.10 ~duplicate:0.05 ~reorder:0.2 ~jitter_ms:2.0 ()

(* A long-lived exchange: [n] unique messages, one every [period] seconds
   starting at t0, each sent [copies] times [spacing] apart (application-
   level redundancy against the injected loss). *)
let drive_exchange net alice session ~n ~copies =
  let eng = Network.engine net in
  let t0 = 10.0 and period = 2.0 and spacing = 0.6 in
  for i = 0 to n - 1 do
    let data = Printf.sprintf "m%03d" i in
    for c = 0 to copies - 1 do
      Apna_sim.Engine.schedule_in eng
        ~delay:(t0 +. (period *. float_of_int i) +. (spacing *. float_of_int c))
        (fun () -> ignore (Host.send alice session data))
    done
  done;
  Network.run net

let migration_tests =
  [
    Alcotest.test_case
      "session survives 3x the Short lifetime under the fault mix" `Quick
      (fun () ->
        M.set_enabled M.default true;
        let base = M.Counter.value m_migrations in
        let net, alice, bob = make_world ~link_faults:rough_faults () in
        (* Alice's source EphIDs are Short-lived (60 s); bob answers from a
           Long-lived endpoint so only the client side migrates. *)
        Host.set_ephid_lifetime alice Lifetime.Short;
        Host.on_data bob (fun ~session ~data ->
            ignore (Host.send bob session ("echo:" ^ data)));
        let bep = ref None in
        Host.request_ephid bob ~lifetime:Lifetime.Long ~receive_only:true
          (fun e -> bep := Some e);
        Network.run net;
        (* Receive-only remote: the Init retransmits until bob's Accept, so
           establishment itself survives the injected loss. *)
        let session = ref None in
        Host.connect alice ~remote:(Option.get !bep).Host.cert
          ~expect_accept:true (fun s -> session := Some s);
        Network.run net;
        let session = Option.get !session in
        Alcotest.(check bool) "established" true (Session.established session);
        (* 85 messages over 180 s of simulated time: three full Short
           lifetimes. Every unique message must arrive despite ~10% loss
           per hop — zero application-visible delivery failures. *)
        let n = 85 in
        drive_exchange net alice session ~n ~copies:4;
        let got = List.map snd (Host.received bob) in
        for i = 0 to n - 1 do
          let data = Printf.sprintf "m%03d" i in
          Alcotest.(check bool) (data ^ " delivered") true (List.mem data got)
        done;
        (* The session crossed at least two expiry boundaries. *)
        Alcotest.(check bool) "at least 2 migrations" true
          (Host.migrations alice >= 2);
        Alcotest.(check bool) "metric counted them" true
          (M.Counter.value m_migrations - base >= 2);
        (* The echo path survived the migrations too. *)
        Alcotest.(check bool) "echoes came back" true
          (List.exists
             (fun d -> String.length d > 5 && String.sub d 0 5 = "echo:")
             (List.map snd (Host.received alice)));
        Alcotest.(check int) "alice quiescent" 0 (Host.pending_rpc_count alice);
        Alcotest.(check int) "bob quiescent" 0 (Host.pending_rpc_count bob));
    Alcotest.test_case "revoked mid-session: ICMP-driven recovery" `Quick
      (fun () ->
        let net, alice, bob = make_world ~seed:"survival-revoke" () in
        let bep = ref None in
        Host.request_ephid bob ~lifetime:Lifetime.Long (fun e -> bep := Some e);
        Network.run net;
        let session = ref None in
        Host.connect alice ~remote:(Option.get !bep).Host.cert ~data0:"before"
          (fun s -> session := Some s);
        Network.run net;
        let session = Option.get !session in
        Alcotest.(check (list string)) "before delivered" [ "before" ]
          (List.map snd (Host.received bob));
        (* The AS revokes the EphID backing alice's session out from under
           her (administrative revocation, not a shutoff: alice is not
           notified). *)
        let dead = (Session.local_cert session).Cert.ephid in
        let node = Network.node_exn net 100 in
        Revocation.revoke (As_node.revoked node) dead
          ~expiry:(Session.local_cert session).Cert.expiry;
        (* Her next send dies at her own egress; the router's ICMP
           feedback quotes the frame, and the host migrates the session
           and retransmits the quoted frame from the fresh EphID. *)
        ignore (Host.send alice session "after");
        Network.run net;
        Alcotest.(check (list string)) "after recovered"
          [ "before"; "after" ]
          (List.map snd (Host.received bob));
        Alcotest.(check int) "one recovery" 1 (Host.recoveries alice);
        Alcotest.(check bool) "recovery migrated the session" true
          (Host.migrations alice >= 1);
        Alcotest.(check bool) "revocation ICMP recorded" true
          (List.mem Icmp.Ephid_revoked (Host.unreachables alice));
        (* The dead EphID is gone from every reuse path. *)
        Alcotest.(check bool) "dead endpoint purged" true
          (not
             (List.exists
                (fun (e : Host.endpoint) -> Ephid.equal e.cert.Cert.ephid dead)
                (Host.endpoints alice))));
    Alcotest.test_case "shutoff-revoked sessions never auto-recover" `Quick
      (fun () ->
        (* The inhibition list: a release (deliberate retirement) pins the
           EphID so ICMP feedback cannot resurrect the flows it backed —
           same mechanism that keeps a shutoff final. *)
        let net, alice, bob = make_world ~seed:"survival-inhibit" () in
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        let session = ref None in
        Host.connect alice ~remote:(Option.get !bep).Host.cert ~data0:"pre"
          (fun s -> session := Some s);
        Network.run net;
        let session = Option.get !session in
        let local = Session.local_cert session in
        let ep =
          List.find
            (fun (e : Host.endpoint) -> Ephid.equal e.cert.Cert.ephid local.ephid)
            (Host.endpoints alice)
        in
        ok_or_fail "release" (Host.release_endpoint alice ep);
        Network.run net;
        ignore (Host.send alice session "post-release");
        Network.run net;
        Alcotest.(check (list string)) "no delivery after release" [ "pre" ]
          (List.map snd (Host.received bob));
        Alcotest.(check int) "no recovery" 0 (Host.recoveries alice);
        Alcotest.(check int) "no migration" 0 (Host.migrations alice));
  ]

(* ------------------------------------------------------------------ *)
(* Issuance brownout: blackholed MS replies open the breaker; sends
   degrade (per-packet -> per-flow) instead of blackholing; the half-open
   probe re-closes it after the outage. *)

let brownout_tests =
  [
    Alcotest.test_case "breaker opens, sends degrade, breaker re-closes"
      `Quick (fun () ->
        let net = Network.create ~seed:"survival-brownout" () in
        let node = Network.add_as net 100 () in
        let carol =
          Host.create ~name:"carol"
            ~rng:(Apna_crypto.Drbg.split (Network.rng net) "host-carol")
            ~granularity:Granularity.Per_packet ()
        in
        let blackhole = ref false and eaten = ref 0 in
        As_node.add_host node carol
          ~deliver:(fun pkt ->
            if !blackhole && pkt.Packet.proto = Packet.Control then incr eaten
            else Host.deliver carol pkt)
          ~credential:"carol-tok" ();
        let dave =
          Network.add_host net ~as_number:100 ~name:"dave" ~credential:"dave-tok"
            ()
        in
        ok_or_fail "carol bootstrap" (Host.bootstrap carol);
        ok_or_fail "dave bootstrap" (Host.bootstrap dave);
        Network.run net;
        let dep = ref None in
        Host.request_ephid dave (fun e -> dep := Some e);
        Network.run net;
        let session = ref None in
        Host.connect carol ~remote:(Option.get !dep).Host.cert ~data0:"hello"
          (fun s -> session := Some s);
        Network.run net;
        let session = Option.get !session in
        Alcotest.(check bool) "warm" true
          (List.mem "hello" (List.map snd (Host.received dave)));
        (* Outage: every MS reply to carol vanishes. The per-packet sends
           keep going on prefetched stock while the refill requests time
           out; three consecutive timeouts open the breaker. *)
        blackhole := true;
        for i = 1 to 6 do
          ignore (Host.send carol session (Printf.sprintf "b%d" i))
        done;
        Network.run net;
        Alcotest.(check bool) "breaker open" true
          (Breaker.state (Host.issuance_breaker carol) = Breaker.Open);
        Alcotest.(check bool) "replies really were eaten" true (!eaten > 0);
        (* With the breaker open and the stock draining, issuance fails
           fast and sends stretch to the session's bound endpoint —
           degraded, never blackholed. *)
        for i = 1 to 4 do
          ignore (Host.send carol session (Printf.sprintf "c%d" i))
        done;
        Network.run net;
        Alcotest.(check bool) "brownout sends happened" true
          (Host.brownout_sends carol > 0);
        let got = List.map snd (Host.received dave) in
        List.iter
          (fun d ->
            Alcotest.(check bool) (d ^ " delivered during outage") true
              (List.mem d got))
          [ "b1"; "b2"; "b3"; "b4"; "b5"; "b6"; "c1"; "c2"; "c3"; "c4" ];
        (* Outage ends; once the cooldown elapses a single probe is let
           through, its reply closes the breaker, and issuance resumes. *)
        blackhole := false;
        Network.advance_time net 12.0;
        ignore (Host.send carol session "d1");
        Network.run net;
        Alcotest.(check bool) "breaker closed after probe" true
          (Breaker.state (Host.issuance_breaker carol) = Breaker.Closed);
        Alcotest.(check bool) "post-outage delivery" true
          (List.mem "d1" (List.map snd (Host.received dave)));
        Alcotest.(check bool) "exactly one open interval" true
          (Breaker.opens (Host.issuance_breaker carol) >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Bounded-state regressions. *)

let bounds_tests =
  [
    Alcotest.test_case "stale prefetched EphIDs are discarded at dequeue"
      `Quick (fun () ->
        let net = Network.create ~seed:"survival-stale" () in
        let _ = Network.add_as net 100 () in
        let alice =
          Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a"
            ~granularity:Granularity.Per_packet ()
        in
        let bob =
          Network.add_host net ~as_number:100 ~name:"bob" ~credential:"b" ()
        in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "bob" (Host.bootstrap bob);
        Network.run net;
        let bep = ref None in
        Host.request_ephid bob ~lifetime:Lifetime.Long (fun e -> bep := Some e);
        Network.run net;
        let session = ref None in
        Host.connect alice ~remote:(Option.get !bep).Host.cert ~data0:"early"
          (fun s -> session := Some s);
        Network.run net;
        let session = Option.get !session in
        (* One data send warms the per-packet prefetch stock. *)
        ignore (Host.send alice session "warm");
        Network.run net;
        (* The prefetched stock was issued with Medium (900 s) lifetimes;
           1000 s later all of it is past expiry. The old behaviour sent
           the next packet under a dead EphID (dropped at egress); now the
           stock is discarded at dequeue and a fresh EphID is fetched. *)
        Network.advance_time net 1000.0;
        ignore (Host.send alice session "late");
        Network.run net;
        Alcotest.(check bool) "stale stock discarded" true
          (Host.stale_prefetch_discards alice > 0);
        Alcotest.(check bool) "late message delivered" true
          (List.mem "late" (List.map snd (Host.received bob))));
    Alcotest.test_case "unreachable ring keeps the last 256 of 300" `Quick
      (fun () ->
        let ringo =
          Host.create ~name:"ringo"
            ~rng:(Apna_crypto.Drbg.create ~seed:"survival-ring") ()
        in
        let header =
          Apna_header.make ~src_aid:(Addr.aid_of_int 64500)
            ~src_ephid:(String.make 16 '\000')
            ~dst_aid:(Addr.aid_of_int 64501)
            ~dst_ephid:(String.make 16 '\001') ()
        in
        for i = 1 to 300 do
          let reason =
            if i <= 44 then Icmp.Host_unknown else Icmp.No_route
          in
          Host.deliver ringo
            (Packet.make ~header ~proto:Packet.Icmp
               ~payload:(Icmp.to_bytes (Icmp.Unreachable { reason; quoted = "" })))
        done;
        Alcotest.(check int) "ring bounded" 256
          (List.length (Host.unreachables ringo));
        Alcotest.(check int) "total counts everything" 300
          (Host.unreachable_total ringo);
        (* Oldest first, and the oldest 44 (the Host_unknowns) fell out. *)
        Alcotest.(check bool) "oldest evicted" true
          (List.for_all
             (fun r -> r = Icmp.No_route)
             (Host.unreachables ringo)));
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "apna_survival"
    [
      ("breaker", breaker_tests);
      ("migration", migration_tests);
      ("brownout", brownout_tests);
      ("bounds", bounds_tests);
    ]
