(* Tests for the privacy broker: budget metering, the hash-chained
   decision journal, requester authentication and authorization, wire
   encodings, the audit-index complexity guarantees, and a metered
   request travelling the data plane to the broker's service EphID. *)

open Apna
open Apna_crypto
module B = Apna_broker.Broker
module Budget = Apna_broker.Budget
module Journal = Apna_broker.Journal
module M = Apna_obs.Metrics

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rng = Drbg.create ~seed:"broker"
let now0 = 1_750_000_000
let aid = Apna_net.Addr.aid_of_int
let hid = Apna_net.Addr.hid_of_int

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let keys = Keys.make_as rng ~aid:(aid 64500)

let le_key = "le-shared-key"

let make_broker ?audit ?credential_of ?budget () =
  let b = B.create ~keys ?audit ?credential_of ?budget () in
  B.register_requester b ~id:"le" ~role:B.Law_enforcement ~key:le_key ~now:now0;
  b

let ask ?(corr = 1L) ?(id = "le") ?(key = le_key) b ~now q =
  B.handle b ~now (B.Request.sign ~key ~corr ~requester:id ~query:q)

(* ------------------------------------------------------------------ *)
(* Budget: token-bucket state machine *)

let budget_tests =
  [
    Alcotest.test_case "charge, exhaust, lazy epoch refill" `Quick (fun () ->
        let b = Budget.create ~epoch_s:60 ~capacity:50 ~refill:20 () in
        Budget.register b ~id:"le" ~now:0;
        (match Budget.charge b ~id:"le" ~now:0 ~cost:30 with
        | Budget.Charged { remaining; _ } ->
            Alcotest.(check int) "after first charge" 20 remaining
        | Budget.Exhausted _ -> Alcotest.fail "should be covered");
        (match Budget.charge b ~id:"le" ~now:10 ~cost:30 with
        | Budget.Exhausted { remaining; retry_after_s; _ } ->
            Alcotest.(check int) "balance untouched" 20 remaining;
            (* One refill epoch (at t=60) covers the shortfall. *)
            Alcotest.(check int) "retry hint" 50 retry_after_s
        | Budget.Charged _ -> Alcotest.fail "should be exhausted");
        (match Budget.charge b ~id:"le" ~now:10 ~cost:60 with
        | Budget.Exhausted { retry_after_s; _ } ->
            Alcotest.(check int) "cost above capacity never succeeds" (-1)
              retry_after_s
        | Budget.Charged _ -> Alcotest.fail "cost above capacity");
        (* After one epoch the bucket has refilled by 20. *)
        (match Budget.charge b ~id:"le" ~now:65 ~cost:30 with
        | Budget.Charged { remaining; _ } ->
            Alcotest.(check int) "refilled then charged" 10 remaining
        | Budget.Exhausted _ -> Alcotest.fail "refill should cover");
        (* Refill accumulates across elapsed epochs but clamps at
           capacity. *)
        Alcotest.(check int) "clamped at capacity" 50
          (Budget.remaining b ~id:"le" ~now:600));
    Alcotest.test_case "unknown account is always exhausted" `Quick (fun () ->
        let b = Budget.create () in
        Alcotest.(check int) "zero balance" 0 (Budget.remaining b ~id:"who" ~now:0);
        match Budget.charge b ~id:"who" ~now:0 ~cost:1 with
        | Budget.Exhausted { retry_after_s; _ } ->
            Alcotest.(check int) "never refills" (-1) retry_after_s
        | Budget.Charged _ -> Alcotest.fail "unknown account charged");
  ]

(* ------------------------------------------------------------------ *)
(* Journal: hash chain, trimming, tamper evidence *)

let journal_tests =
  [
    Alcotest.test_case "chain verifies; tampering is detected" `Quick (fun () ->
        let j = Journal.create ~owner:"t1" () in
        for i = 0 to 9 do
          ignore (Journal.append j ~now:(now0 + i) (Printf.sprintf "entry %d" i))
        done;
        Alcotest.(check int) "length" 10 (Journal.length j);
        Alcotest.(check bool) "verifies" true (Result.is_ok (Journal.verify j));
        let head_before = Journal.head j in
        Alcotest.(check bool) "tamper hits" true
          (Journal.tamper_for_test j ~seq:3 ~payload:"entry 3 (rewritten)");
        (match Journal.verify j with
        | Ok () -> Alcotest.fail "tampered journal verified"
        | Error e ->
            Alcotest.(check string) "names the entry"
              "journal entry 3: hash mismatch" e);
        (* The head commits to history: tampering did not change it. *)
        Alcotest.(check string) "head unchanged by tamper" head_before
          (Journal.head j));
    Alcotest.test_case "trimming keeps the window verifiable" `Quick (fun () ->
        let j = Journal.create ~cap:4 ~owner:"t2" () in
        for i = 0 to 9 do
          ignore (Journal.append j ~now:(now0 + i) (Printf.sprintf "e%d" i))
        done;
        Alcotest.(check int) "retained" 4 (Journal.length j);
        Alcotest.(check int) "appended" 10 (Journal.appended j);
        Alcotest.(check int) "trimmed" 6 (Journal.trimmed j);
        Alcotest.(check bool) "window verifies" true
          (Result.is_ok (Journal.verify j));
        (* Oldest retained entry is seq 6. *)
        match Journal.to_list j with
        | { Journal.seq = 6; _ } :: _ -> ()
        | { Journal.seq; _ } :: _ -> Alcotest.failf "oldest seq %d" seq
        | [] -> Alcotest.fail "empty");
  ]

(* ------------------------------------------------------------------ *)
(* Broker pipeline: authn, authz, metering, recovery *)

let some_ephid ?(h = 0x0a000001) () =
  Ephid.issue_random keys rng ~hid:(hid h) ~expiry:(now0 + 900)

let pipeline_tests =
  [
    Alcotest.test_case "unknown requester and bad MAC are refused" `Quick
      (fun () ->
        let b = make_broker () in
        (match ask b ~now:now0 ~id:"nobody" (B.Request.Deanonymize (some_ephid ())) with
        | B.Response.Refused { reason = Error.Auth_failed; _ } -> ()
        | _ -> Alcotest.fail "unknown requester not refused");
        (match
           ask b ~now:now0 ~key:"wrong-key" (B.Request.Deanonymize (some_ephid ()))
         with
        | B.Response.Refused { reason = Error.Auth_failed; _ } -> ()
        | _ -> Alcotest.fail "forged MAC not refused");
        (* Neither failure consumed budget. *)
        Alcotest.(check int) "budget intact" 100
          (Budget.remaining (B.budget b) ~id:"le" ~now:now0);
        Alcotest.(check int) "both journaled" 2 (Journal.length (B.journal b)));
    Alcotest.test_case "authorization matrix" `Quick (fun () ->
        let b = make_broker () in
        B.register_requester b ~id:"aa" ~role:B.Accountability_agent ~key:"aa-k"
          ~now:now0;
        B.register_requester b ~id:"peer" ~role:B.Peer_as ~key:"peer-k" ~now:now0;
        let refused_role ~id ~key q =
          match ask b ~now:now0 ~id ~key q with
          | B.Response.Refused { reason = Error.Rejected _; _ } -> true
          | _ -> false
        in
        (* The AA may not pull full binding histories. *)
        Alcotest.(check bool) "aa bindings refused" true
          (refused_role ~id:"aa" ~key:"aa-k" (B.Request.Bindings_of (hid 7)));
        (* A peer AS may only attribute packets. *)
        Alcotest.(check bool) "peer deanonymize refused" true
          (refused_role ~id:"peer" ~key:"peer-k"
             (B.Request.Deanonymize (some_ephid ())));
        Alcotest.(check bool) "peer bindings refused" true
          (refused_role ~id:"peer" ~key:"peer-k" (B.Request.Bindings_of (hid 7)));
        (* An unauthorized query costs nothing. *)
        Alcotest.(check int) "peer budget intact" 100
          (Budget.remaining (B.budget b) ~id:"peer" ~now:now0));
    Alcotest.test_case "deanonymize grant carries hid and credential" `Quick
      (fun () ->
        let target = hid 0x0a00002a in
        let credential_of h =
          if Apna_net.Addr.hid_equal h target then Some "mallory@isp" else None
        in
        let b = make_broker ~credential_of () in
        let e = Ephid.issue_random keys rng ~hid:target ~expiry:(now0 + 900) in
        match ask b ~now:now0 (B.Request.Deanonymize e) with
        | B.Response.Granted
            { grant = B.Response.Identity { hid = h; expiry; credential }; cost;
              remaining; _ } ->
            Alcotest.(check bool) "hid" true (Apna_net.Addr.hid_equal h target);
            Alcotest.(check int) "expiry" (now0 + 900) expiry;
            Alcotest.(check (option string)) "credential" (Some "mallory@isp")
              credential;
            Alcotest.(check int) "cost" 10 cost;
            Alcotest.(check int) "remaining" 90 remaining
        | _ -> Alcotest.fail "deanonymize refused");
    Alcotest.test_case "refusal then refill recovery" `Quick (fun () ->
        (* capacity 10 = exactly one deanonymization; the second request
           is refused with a typed error, and works again after refill. *)
        let budget = Budget.create ~epoch_s:60 ~capacity:10 ~refill:10 () in
        let b = make_broker ~budget () in
        (match ask b ~now:now0 (B.Request.Deanonymize (some_ephid ())) with
        | B.Response.Granted { remaining = 0; _ } -> ()
        | _ -> Alcotest.fail "first request should be granted");
        (match ask b ~now:(now0 + 1) (B.Request.Deanonymize (some_ephid ())) with
        | B.Response.Refused { reason = Error.Budget_exhausted _; _ } -> ()
        | _ -> Alcotest.fail "over-budget request not refused");
        (match ask b ~now:(now0 + 70) (B.Request.Deanonymize (some_ephid ())) with
        | B.Response.Granted _ -> ()
        | _ -> Alcotest.fail "refilled request refused");
        Alcotest.(check int) "grants" 2 (B.grants b);
        Alcotest.(check int) "refusals" 1 (B.refusals b);
        Alcotest.(check bool) "journal verifies" true
          (Result.is_ok (B.verify_journal b)));
    Alcotest.test_case "failed queries are still charged" `Quick (fun () ->
        (* Without a retention log only Deanonymize can be served — but a
           probing Bindings_of still spends budget. *)
        let b = make_broker () in
        (match ask b ~now:now0 (B.Request.Bindings_of (hid 9)) with
        | B.Response.Refused { reason = Error.Rejected _; remaining; _ } ->
            Alcotest.(check int) "charged" 75 remaining
        | _ -> Alcotest.fail "expected rejection");
        (* A garbled EphID (not ours) burns its cost too. *)
        let bogus = ok_or_fail "of_bytes" (
          Result.map_error (fun e -> Error.Malformed e)
            (Ephid.of_bytes (String.make Ephid.size '\xab'))) in
        match ask b ~now:now0 (B.Request.Deanonymize bogus) with
        | B.Response.Refused { reason = Error.Malformed _; remaining; _ } ->
            Alcotest.(check int) "charged again" 65 remaining
        | _ -> Alcotest.fail "expected malformed refusal");
  ]

(* ------------------------------------------------------------------ *)
(* Wire encodings: round-trips and totality *)

let gen_query =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun s -> B.Request.Deanonymize (Result.get_ok (Ephid.of_bytes s)))
          (string_size ~gen:char (return Ephid.size));
        map (fun h -> B.Request.Bindings_of (hid (h land 0x7fffffff))) nat;
        map (fun d -> B.Request.Attribute_packet d) (string_size (int_bound 64));
      ])

let gen_request =
  QCheck2.Gen.(
    map3
      (fun corr requester query ->
        B.Request.sign ~key:"k" ~corr ~requester ~query)
      int64 (string_size (int_bound 32)) gen_query)

let gen_grant =
  QCheck2.Gen.(
    let gen_ephid =
      map
        (fun s -> Result.get_ok (Ephid.of_bytes s))
        (string_size ~gen:char (return Ephid.size))
    in
    let gen_cred = opt (string_size (int_bound 32)) in
    oneof
      [
        map3
          (fun h expiry credential ->
            B.Response.Identity { hid = hid (h land 0x7fffffff); expiry; credential })
          nat nat gen_cred;
        map
          (fun bs -> B.Response.Bindings bs)
          (list_size (int_bound 20) (pair nat gen_ephid));
        map3
          (fun at (ephid, h) credential ->
            B.Response.Attribution
              { at; ephid; hid = hid (h land 0x7fffffff); credential })
          nat (pair gen_ephid nat) gen_cred;
      ])

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        map3
          (fun corr (cost, remaining) grant ->
            B.Response.Granted { corr; cost; remaining; grant })
          int64 (pair nat nat) gen_grant;
        map3
          (fun corr what remaining ->
            B.Response.Refused
              { corr; reason = Error.Budget_exhausted what; remaining })
          int64 (string_size (int_bound 32)) nat;
      ])

let wire_tests =
  [
    qtest "request round-trips" gen_request (fun req ->
        match B.Request.of_bytes (B.Request.to_bytes req) with
        | Ok req' -> req = req'
        | Error _ -> false);
    qtest "request MAC verifies after round-trip" gen_request (fun req ->
        match B.Request.of_bytes (B.Request.to_bytes req) with
        | Ok req' -> B.Request.verify ~key:"k" req'
        | Error _ -> false);
    qtest "response round-trips" gen_response (fun resp ->
        match B.Response.of_bytes (B.Response.to_bytes resp) with
        | Ok resp' -> resp = resp'
        | Error _ -> false);
    qtest "of_bytes is total on junk" ~count:500
      QCheck2.Gen.(string_size (int_bound 128))
      (fun junk ->
        (match B.Request.of_bytes junk with Ok _ | Error _ -> true)
        && (match B.Response.of_bytes junk with Ok _ | Error _ -> true));
    qtest "error codec round-trips" ~count:200
      QCheck2.Gen.(pair (int_bound 11) (string_size (int_bound 16)))
      (fun (tag, payload) ->
        match Error.of_wire tag payload with
        | Error _ -> false
        | Ok e ->
            let tag', payload' = Error.to_wire e in
            tag' = tag
            (* payload-less variants drop the payload *)
            && (payload' = payload || payload' = ""));
  ]

(* ------------------------------------------------------------------ *)
(* Audit index: queries cost the answer, not the stream (satellite perf
   regression — count-based, no timing flake) *)

let index_tests =
  [
    Alcotest.test_case "bindings_of cost is the bucket, not the stream" `Quick
      (fun () ->
        let a = Audit.create () in
        let target = hid 0x0a000001 in
        (* 2000 issuances for other subscribers, 10 for the target. *)
        for i = 1 to 2000 do
          Audit.record_issuance a ~now:(now0 + i)
            ~ephid:(some_ephid ())
            ~hid:(hid (0x0a001000 + i))
        done;
        for i = 1 to 10 do
          Audit.record_issuance a ~now:(now0 + i) ~ephid:(some_ephid ())
            ~hid:target
        done;
        Audit.record_egress a ~now:now0 ~ephid:(some_ephid ())
          ~digest:"needle";
        let b = make_broker ~audit:a () in
        (match ask b ~now:now0 (B.Request.Bindings_of target) with
        | B.Response.Granted { grant = B.Response.Bindings bs; _ } ->
            Alcotest.(check int) "answer size" 10 (List.length bs)
        | _ -> Alcotest.fail "bindings refused");
        Alcotest.(check int) "examined = answer, not stream" 10
          (Audit.last_query_cost a);
        (match ask b ~now:now0 (B.Request.Attribute_packet "needle") with
        | B.Response.Granted _ -> ()
        | _ -> Alcotest.fail "attribution refused");
        Alcotest.(check int) "digest lookup is O(1)" 1
          (Audit.last_query_cost a));
    Alcotest.test_case "gc bounds memory and the gauges track it" `Quick
      (fun () ->
        M.set_enabled M.default true;
        Fun.protect ~finally:(fun () -> M.set_enabled M.default false)
        @@ fun () ->
        let a = Audit.create ~retain_s:100 ~owner:"gc-test" () in
        for i = 0 to 499 do
          let h = hid (0x0a000001 + (i mod 50)) in
          Audit.record_issuance a ~now:(now0 + i) ~ephid:(some_ephid ()) ~hid:h;
          Audit.record_egress a ~now:(now0 + i) ~ephid:(some_ephid ())
            ~digest:(Printf.sprintf "d%d" i)
        done;
        Alcotest.(check int) "issuance before" 500 (Audit.issuance_count a);
        let g_iss =
          M.Gauge.register M.default
            ~labels:[ ("owner", "gc-test") ]
            "apna_audit_issuance_entries"
        in
        let g_egr =
          M.Gauge.register M.default
            ~labels:[ ("owner", "gc-test") ]
            "apna_audit_egress_entries"
        in
        Alcotest.(check (float 0.01)) "gauge before" 500.0 (M.Gauge.value g_iss);
        (* Advance past the window for the first 400 entries. *)
        let removed = Audit.gc a ~now:(now0 + 499 + 1) in
        Alcotest.(check int) "removed both streams" 800 removed;
        Alcotest.(check int) "issuance after" 100 (Audit.issuance_count a);
        Alcotest.(check int) "egress after" 100 (Audit.egress_count a);
        Alcotest.(check (float 0.01)) "issuance gauge tracks" 100.0
          (M.Gauge.value g_iss);
        Alcotest.(check (float 0.01)) "egress gauge tracks" 100.0
          (M.Gauge.value g_egr));
    Alcotest.test_case "journal entries gauge tracks the ring" `Quick (fun () ->
        M.set_enabled M.default true;
        Fun.protect ~finally:(fun () -> M.set_enabled M.default false)
        @@ fun () ->
        let j = Journal.create ~cap:32 ~owner:"gauge-test" () in
        for i = 0 to 99 do
          ignore (Journal.append j ~now:(now0 + i) "x")
        done;
        let g =
          M.Gauge.register M.default
            ~labels:[ ("owner", "gauge-test") ]
            "apna_broker_journal_entries"
        in
        Alcotest.(check (float 0.01)) "bounded at cap" 32.0 (M.Gauge.value g));
  ]

(* ------------------------------------------------------------------ *)
(* End to end: a metered request rides the data plane to HID 5 *)

let e2e_tests =
  [
    Alcotest.test_case "wire request to the broker service EphID" `Quick
      (fun () ->
        let net = Network.create ~seed:"broker-e2e" () in
        let isp = Network.add_as net 100 ~retention:true () in
        let _ = Network.add_as net 300 () in
        Network.connect_as net 100 300 ();
        let alice =
          Network.add_host net ~as_number:100 ~name:"alice"
            ~credential:"alice@isp" ()
        in
        let bob =
          Network.add_host net ~as_number:300 ~name:"bob" ~credential:"bob" ()
        in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "bob" (Host.bootstrap bob);
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        let broker = B.for_node isp in
        B.register_requester broker ~id:"le" ~role:B.Law_enforcement ~key:le_key
          ~now:0;
        (* Traffic to populate the retention log. *)
        let captured = ref None in
        Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
            if pkt.Apna_net.Packet.proto = Apna_net.Packet.Data then
              captured := Some pkt);
        Host.connect alice ~remote:(Option.get !bep).cert ~data0:"evidence"
          (fun _ -> ());
        Network.run net;
        let evidence = Option.get !captured in
        (* The LE principal mails its request to the ISP's broker EphID
           from bob's address, and the response rides back over the
           inter-AS link. *)
        let req =
          B.Request.sign ~key:le_key ~corr:42L ~requester:"le"
            ~query:(B.Request.Attribute_packet evidence.header.mac)
        in
        let bob_ephid = (Option.get !bep).cert.Cert.ephid in
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 300)
            ~src_ephid:(Ephid.to_bytes bob_ephid) ~dst_aid:(aid 100)
            ~dst_ephid:(Ephid.to_bytes (As_node.broker_ephid isp))
            ()
        in
        let reply = ref None in
        Network.set_tap net (fun ~from ~to_:_ pkt ->
            if
              Apna_net.Addr.aid_equal from (aid 100)
              && pkt.Apna_net.Packet.proto = Apna_net.Packet.Control
              && String.equal pkt.header.dst_ephid (Ephid.to_bytes bob_ephid)
            then reply := Some pkt);
        As_node.receive isp
          (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Control
             ~payload:(B.Request.to_bytes req));
        Network.run net;
        (match !reply with
        | None -> Alcotest.fail "no broker response on the wire"
        | Some pkt -> begin
            match B.Response.of_bytes pkt.payload with
            | Ok
                (B.Response.Granted
                   { corr = 42L;
                     grant = B.Response.Attribution { credential; _ }; _ }) ->
                Alcotest.(check (option string)) "attributed to alice"
                  (Some "alice@isp") credential
            | Ok _ -> Alcotest.fail "unexpected response"
            | Error e -> Alcotest.failf "bad response: %s" (Error.to_string e)
          end);
        Alcotest.(check bool) "journal verifies" true
          (Result.is_ok (B.verify_journal broker)));
  ]

let () =
  Alcotest.run "broker"
    [
      ("budget", budget_tests);
      ("journal", journal_tests);
      ("pipeline", pipeline_tests);
      ("wire", wire_tests);
      ("index", index_tests);
      ("e2e", e2e_tests);
    ]
