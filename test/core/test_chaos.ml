(* Chaos suite: control-plane convergence under injected link faults, and
   the wire-robustness regressions that motivated the fault model — reply
   mis-pairing, duplicate Init/Accept handling, fault determinism, and
   byte-identity of the zero-fault fast path. *)

open Apna
open Apna_net

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let qtest ?(count = 20) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* The e2e line topology — AS100 (alice) — AS200 — AS300 (bob + DNS) —
   with a fault model on every inter-AS link and, optionally, on the
   host<->BR access links. *)
let make_world ?(seed = "chaos") ?link_faults ?host_faults () =
  let net = Network.create ~seed () in
  let _ = Network.add_as net 100 () in
  let _ = Network.add_as net 200 () in
  let _ = Network.add_as net 300 ~dns_zone:"example.net" () in
  let link () =
    match link_faults with
    | Some faults -> Link.make ~faults ()
    | None -> Link.make ()
  in
  Network.connect_as net 100 200 ~link:(link ()) ();
  Network.connect_as net 200 300 ~link:(link ()) ();
  Network.set_host_faults net host_faults;
  let alice =
    Network.add_host net ~as_number:100 ~name:"alice" ~credential:"alice-tok" ()
  in
  let bob =
    Network.add_host net ~as_number:300 ~name:"bob" ~credential:"bob-tok" ()
  in
  ok_or_fail "alice bootstrap" (Host.bootstrap alice);
  ok_or_fail "bob bootstrap" (Host.bootstrap bob);
  (net, alice, bob)

(* ~10% loss plus duplication and reorder jitter: the acceptance scenario. *)
let rough_faults =
  Link.make_faults ~loss:0.10 ~duplicate:0.05 ~reorder:0.2 ~jitter_ms:2.0 ()

let convergence_tests =
  [
    Alcotest.test_case "full control plane converges under 10% loss" `Quick
      (fun () ->
        let net, alice, bob =
          make_world ~link_faults:rough_faults
            ~host_faults:(Link.make_faults ~loss:0.10 ())
            ()
        in
        Network.run net;
        Alcotest.(check bool) "alice up" true (Host.is_bootstrapped alice);
        (* Server side: receive-only EphID published in DNS. *)
        let published = ref 0 in
        Host.publish bob ~name:"svc.example.net" (fun () -> incr published);
        Network.run net;
        Alcotest.(check int) "publish completed once" 1 !published;
        (* Client side: encrypted DNS resolution. *)
        let dns_cert =
          Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 300)))
        in
        let record = ref None in
        Host.dns_lookup alice ~name:"svc.example.net" ~dns:dns_cert (fun r ->
            record := r);
        Network.run net;
        let record =
          match !record with
          | Some r -> r
          | None -> Alcotest.fail "lookup did not resolve"
        in
        (* Session establishment with a retransmitted Init. *)
        Host.connect alice ~remote:record.Dns_service.Record.cert
          ~data0:"hello" ~expect_accept:true (fun session ->
            ignore (Host.send alice session "after-accept"));
        Network.run net;
        (match Host.sessions alice with
        | [ s ] ->
            Alcotest.(check bool) "established" true (Session.established s)
        | l -> Alcotest.failf "alice has %d sessions" (List.length l));
        (* data0 delivered exactly once despite Init retransmission and
           link-level duplication; the follow-up frame also lands. *)
        Alcotest.(check (list string)) "bob's view" [ "hello"; "after-accept" ]
          (List.map snd (Host.received bob));
        (* Nothing left hanging, and the loss really exercised retries. *)
        Alcotest.(check int) "alice quiescent" 0 (Host.pending_rpc_count alice);
        Alcotest.(check int) "bob quiescent" 0 (Host.pending_rpc_count bob);
        let retries = Host.rpc_retries alice + Host.rpc_retries bob in
        Alcotest.(check bool) "some retransmissions happened" true (retries > 0);
        let stats = Network.host_fault_stats net in
        Alcotest.(check bool) "access-link losses recorded" true
          (stats.Link.lost > 0));
    Alcotest.test_case "every continuation fires exactly once under loss"
      `Quick (fun () ->
        let net, alice, _bob =
          make_world ~seed:"chaos-once"
            ~host_faults:(Link.make_faults ~loss:0.15 ())
            ()
        in
        Network.run net;
        let n = 20 in
        let fired = Array.make n 0 in
        let ok = ref 0 and timeout = ref 0 in
        for i = 0 to n - 1 do
          Host.request_ephid_r alice (fun result ->
              fired.(i) <- fired.(i) + 1;
              match result with
              | Ok _ -> incr ok
              | Error (Error.Timeout _) -> incr timeout
              | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))
        done;
        Network.run net;
        Array.iteri
          (fun i c ->
            Alcotest.(check int) (Printf.sprintf "request %d fired once" i) 1 c)
          fired;
        Alcotest.(check int) "all settled" n (!ok + !timeout);
        Alcotest.(check int) "nothing pending" 0
          (Host.pending_rpc_count alice));
    Alcotest.test_case "bounded queue tail-drops under a burst" `Quick
      (fun () ->
        (* A slow link with a one-frame queue: a burst must overflow it. *)
        let faults = Link.make_faults ~queue_frames:1 () in
        let net = Network.create ~seed:"chaos-queue" () in
        let _ = Network.add_as net 100 () in
        let _ = Network.add_as net 300 () in
        Network.connect_as net 100 300
          ~link:(Link.make ~capacity_gbps:0.000002 ~faults ())
          ();
        let alice =
          Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" ()
        in
        let bob =
          Network.add_host net ~as_number:300 ~name:"bob" ~credential:"b" ()
        in
        ok_or_fail "alice bootstrap" (Host.bootstrap alice);
        ok_or_fail "bob bootstrap" (Host.bootstrap bob);
        Network.run net;
        let ep = ref None in
        Host.request_ephid bob (fun e -> ep := Some e);
        Network.run net;
        let remote = (Option.get !ep).Host.cert in
        (* data0 rides the Init frame, which is admitted while the burst
           behind it overflows the one-frame queue. *)
        Host.connect alice ~remote ~data0:"first" (fun session ->
            for i = 1 to 10 do
              ignore (Host.send alice session (Printf.sprintf "burst-%d" i))
            done);
        Network.run net;
        let stats = Option.get (Network.link_fault_stats net 100 300) in
        Alcotest.(check bool) "tail drops recorded" true
          (stats.Link.queue_dropped > 0);
        Alcotest.(check bool) "admitted frames still delivered" true
          (List.mem "first" (List.map snd (Host.received bob))));
  ]

let mispair_tests =
  [
    Alcotest.test_case "dropped MS reply cannot mis-pair issuance replies"
      `Quick (fun () ->
        (* Two concurrent EphID requests; the reply to the first is eaten
           by the access link. With FIFO pairing the surviving reply would
           be sealed for request 1's keys but matched to request 2 —
           correlation ids keep each reply with its own request, and the
           orphaned request retransmits. *)
        let net = Network.create ~seed:"chaos-mispair" () in
        let node = Network.add_as net 100 () in
        let carol =
          Host.create ~name:"carol"
            ~rng:(Apna_crypto.Drbg.split (Network.rng net) "host-carol")
            ()
        in
        let arm = ref false and dropped = ref 0 in
        As_node.add_host node carol
          ~deliver:(fun pkt ->
            if !arm && !dropped = 0 then incr dropped
            else Host.deliver carol pkt)
          ~credential:"carol-tok" ();
        ok_or_fail "carol bootstrap" (Host.bootstrap carol);
        Network.run net;
        arm := true;
        let results = ref [] in
        Host.request_ephid_r carol (fun r -> results := ("req1", r) :: !results);
        Host.request_ephid_r carol (fun r -> results := ("req2", r) :: !results);
        Network.run net;
        Alcotest.(check int) "one reply was dropped" 1 !dropped;
        Alcotest.(check int) "both continuations fired" 2
          (List.length !results);
        List.iter
          (fun (who, r) ->
            match r with
            | Error e -> Alcotest.failf "%s: %s" who (Error.to_string e)
            | Ok ep ->
                (* The certificate must cover the key material generated
                   for *this* request — a mis-paired reply fails to open
                   or certifies a foreign key. *)
                Alcotest.(check string)
                  (who ^ " cert matches own keys")
                  ep.Host.keys.Keys.kx_public ep.Host.cert.Cert.kx_pub)
          (List.rev !results);
        Alcotest.(check bool) "the orphaned request retransmitted" true
          (Host.rpc_retries carol > 0);
        Alcotest.(check int) "quiescent" 0 (Host.pending_rpc_count carol));
  ]

(* One fixed end-to-end exchange, returning the full inter-AS byte stream
   and the injected-fault counters. *)
let run_scenario ~seed ?link_faults ?host_faults () =
  let net, alice, bob = make_world ~seed ?link_faults ?host_faults () in
  let wire = Buffer.create 4096 in
  Network.set_tap net (fun ~from ~to_ pkt ->
      Buffer.add_string wire
        (Printf.sprintf "%d>%d:" (Addr.aid_to_int from) (Addr.aid_to_int to_));
      Buffer.add_string wire (Packet.to_bytes pkt));
  Network.run net;
  let ep = ref None in
  Host.request_ephid bob (fun e -> ep := Some e);
  Network.run net;
  (match !ep with
  | Some ep ->
      Host.connect alice ~remote:ep.Host.cert ~data0:"probe"
        ~expect_accept:false (fun _ -> ())
  | None -> ());
  Network.run net;
  let stats a b = Option.get (Network.link_fault_stats net a b) in
  let summary s = (s.Link.lost, s.Link.duplicated, s.Link.reordered) in
  ( Buffer.contents wire,
    (summary (stats 100 200), summary (stats 200 300),
     summary (Network.host_fault_stats net)),
    Host.rpc_retries alice + Host.rpc_retries bob )

let determinism_tests =
  [
    qtest "same seed injects identical faults" ~count:10
      QCheck2.Gen.(int_range 0 1000)
      (fun n ->
        let seed = Printf.sprintf "chaos-det-%d" n in
        let run () =
          run_scenario ~seed ~link_faults:rough_faults
            ~host_faults:(Link.make_faults ~loss:0.10 ())
            ()
        in
        let wire1, stats1, retries1 = run () in
        let wire2, stats2, retries2 = run () in
        wire1 = wire2 && stats1 = stats2 && retries1 = retries2);
    qtest "zero-probability faults are byte-identical to no fault model"
      ~count:5
      QCheck2.Gen.(int_range 0 1000)
      (fun n ->
        let seed = Printf.sprintf "chaos-id-%d" n in
        (* No fault model at all vs. an all-zero fault record on every
           link and access hop: the wire must not differ by a single
           byte, and nothing may retransmit. *)
        let wire1, _, retries1 = run_scenario ~seed () in
        let wire2, stats2, retries2 =
          run_scenario ~seed
            ~link_faults:(Link.make_faults ())
            ~host_faults:Link.no_faults ()
        in
        let (l1, l2, l3) = stats2 in
        wire1 = wire2 && retries1 = 0 && retries2 = 0
        && l1 = (0, 0, 0) && l2 = (0, 0, 0) && l3 = (0, 0, 0));
  ]

let fault_plan_tests =
  [
    Alcotest.test_case "plan_faults extremes" `Quick (fun () ->
        let rand () = 0.5 in
        let stats = Link.fresh_fault_stats () in
        let f = Link.make_faults ~loss:1.0 () in
        Alcotest.(check (list (float 0.0))) "certain loss" []
          (Link.plan_faults f ~stats ~rand);
        Alcotest.(check int) "loss counted" 1 stats.Link.lost;
        let f = Link.make_faults ~duplicate:1.0 () in
        Alcotest.(check int) "certain duplication" 2
          (List.length (Link.plan_faults f ~stats ~rand));
        Alcotest.(check int) "dup counted" 1 stats.Link.duplicated;
        let f = Link.make_faults ~reorder:1.0 ~jitter_ms:10.0 () in
        (match Link.plan_faults f ~stats ~rand with
        | [ extra ] ->
            Alcotest.(check bool) "jitter applied" true
              (extra > 0.0 && extra <= 0.010)
        | l -> Alcotest.failf "%d copies" (List.length l));
        Alcotest.(check int) "reorder counted" 1 stats.Link.reordered);
    Alcotest.test_case "make_faults validates its ranges" `Quick (fun () ->
        List.iter
          (fun f ->
            Alcotest.check_raises "rejected"
              (Invalid_argument "Link.make_faults") (fun () -> ignore (f ())))
          [
            (fun () -> Link.make_faults ~loss:1.5 ());
            (fun () -> Link.make_faults ~duplicate:(-0.1) ());
            (fun () -> Link.make_faults ~reorder:2.0 ());
            (fun () -> Link.make_faults ~jitter_ms:(-1.0) ());
            (fun () -> Link.make_faults ~queue_frames:(-1) ());
          ]);
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "apna_chaos"
    [
      ("convergence", convergence_tests);
      ("mispairing", mispair_tests);
      ("determinism", determinism_tests);
      ("fault_model", fault_plan_tests);
    ]
