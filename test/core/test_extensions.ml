(* Tests for the paper's §VIII extension machinery: path-proof-strengthened
   shutoff (§VIII-C), in-network replay filtering (§VIII-D future work),
   host notification of revocations (§VIII-A), and APNA-as-a-Service
   (§VIII-E). *)

open Apna
open Apna_crypto

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rng = Drbg.create ~seed:"ext"
let now0 = 1_750_000_000
let aid = Apna_net.Addr.aid_of_int
let hid = Apna_net.Addr.hid_of_int

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Path proof (§VIII-C) *)

let sample_packet keys =
  let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
  let e = Ephid.issue_random keys rng ~hid:(hid 1) ~expiry:(now0 + 900) in
  let header =
    Apna_net.Apna_header.make ~src_aid:(aid 64500) ~src_ephid:(Ephid.to_bytes e)
      ~dst_aid:(aid 64503) ~dst_ephid:(String.make 16 'd') ()
  in
  Pkt_auth.seal ~auth_key:kha.auth
    (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload:"p")

let path_proof_tests =
  let src = Keys.make_as rng ~aid:(aid 64500) in
  let transit1 = Keys.make_as rng ~aid:(aid 64501) in
  let transit2 = Keys.make_as rng ~aid:(aid 64502) in
  let offpath = Keys.make_as rng ~aid:(aid 64999) in
  let path =
    [ (transit1.aid, transit1.dh_public); (transit2.aid, transit2.dh_public) ]
  in
  [
    Alcotest.test_case "pairwise keys agree in both directions" `Quick (fun () ->
        let k1 = ok_or_fail "k1" (Path_proof.pairwise_key src ~peer_dh_pub:transit1.dh_public) in
        let k2 = ok_or_fail "k2" (Path_proof.pairwise_key transit1 ~peer_dh_pub:src.dh_public) in
        Alcotest.(check string) "same" k1 k2);
    Alcotest.test_case "on-path claim verifies" `Quick (fun () ->
        let pkt = sample_packet src in
        let attestations = ok_or_fail "attest" (Path_proof.attest ~src_keys:src ~path pkt) in
        Alcotest.(check int) "one per hop" 2 (List.length attestations);
        List.iter2
          (fun attestation (claim_aid, claim_pub) ->
            ok_or_fail "claim"
              (Path_proof.verify_claim ~src_keys:src ~claimant:claim_aid
                 ~claimant_dh_pub:claim_pub ~attestation pkt))
          attestations path);
    Alcotest.test_case "off-path AS cannot claim" `Quick (fun () ->
        let pkt = sample_packet src in
        let attestations = ok_or_fail "attest" (Path_proof.attest ~src_keys:src ~path pkt) in
        let stolen = List.hd attestations in
        (* The off-path AS presents a stolen attestation as its own. *)
        Alcotest.(check bool) "rejected" true
          (Result.is_error
             (Path_proof.verify_claim ~src_keys:src ~claimant:offpath.aid
                ~claimant_dh_pub:offpath.dh_public ~attestation:stolen pkt)));
    Alcotest.test_case "attestation does not transfer between packets" `Quick
      (fun () ->
        let pkt1 = sample_packet src and pkt2 = sample_packet src in
        let attestations = ok_or_fail "attest" (Path_proof.attest ~src_keys:src ~path pkt1) in
        let a = List.hd attestations in
        Alcotest.(check bool) "rejected on other packet" true
          (Result.is_error
             (Path_proof.verify_claim ~src_keys:src ~claimant:transit1.aid
                ~claimant_dh_pub:transit1.dh_public ~attestation:a pkt2)));
    qtest "codec roundtrip" QCheck2.Gen.(int_range 0 8) (fun n ->
        let attestations =
          List.init n (fun i ->
              Path_proof.{ aid = aid (64500 + i); mac = String.make 16 (Char.chr (i + 65)) })
        in
        Path_proof.of_bytes (Path_proof.to_bytes attestations) = Ok attestations);
  ]

(* ------------------------------------------------------------------ *)
(* In-network replay filter (§VIII-D) *)

let replay_filter_tests =
  [
    Alcotest.test_case "duplicates always caught within the horizon" `Quick
      (fun () ->
        let f = Replay_filter.create ~bits_log2:16 () in
        for i = 0 to 5_000 do
          ignore (Replay_filter.check_and_insert f ~now:0.0 (string_of_int i))
        done;
        for i = 0 to 5_000 do
          Alcotest.(check bool) "replayed" true
            (Replay_filter.check_and_insert f ~now:1.0 (string_of_int i) = Replayed)
        done);
    Alcotest.test_case "detection spans one rotation" `Quick (fun () ->
        let f = Replay_filter.create ~rotate_every_s:10.0 () in
        ignore (Replay_filter.check_and_insert f ~now:0.0 "pkt");
        (* One rotation later the key sits in the previous generation. *)
        Alcotest.(check bool) "still caught" true
          (Replay_filter.check_and_insert f ~now:11.0 "pkt" = Replayed);
        (* Two rotations later it has aged out — bounded memory. *)
        let f2 = Replay_filter.create ~rotate_every_s:10.0 () in
        ignore (Replay_filter.check_and_insert f2 ~now:0.0 "pkt");
        ignore (Replay_filter.check_and_insert f2 ~now:11.0 "other1");
        ignore (Replay_filter.check_and_insert f2 ~now:22.0 "other2");
        Alcotest.(check bool) "aged out" true
          (Replay_filter.check_and_insert f2 ~now:22.1 "pkt" = Fresh));
    Alcotest.test_case "long idle gap clears both generations" `Quick (fun () ->
        (* Regression: a single swap after a >= 2-period gap used to carry
           arbitrarily old bits into [previous], producing false Replayed
           verdicts for traffic that resumed after an idle spell. *)
        let f = Replay_filter.create ~rotate_every_s:10.0 () in
        ignore (Replay_filter.check_and_insert f ~now:0.0 "pkt");
        Alcotest.(check bool) "25s-old bits are forgotten" true
          (Replay_filter.check_and_insert f ~now:25.0 "pkt" = Fresh);
        (* And the filter still detects replays normally afterwards. *)
        Alcotest.(check bool) "immediate replay caught" true
          (Replay_filter.check_and_insert f ~now:25.5 "pkt" = Replayed);
        Alcotest.(check bool) "across one rotation too" true
          (Replay_filter.check_and_insert f ~now:36.0 "pkt" = Replayed));
    Alcotest.test_case "false-positive rate is near theory" `Quick (fun () ->
        (* 2^16 bits, 4 hashes, 5k inserted: (1-e^{-4*5000/65536})^4 ~ 0.5%.
           Probing also inserts, so keep the probe count small enough that
           the load factor stays near the starting point. *)
        let f = Replay_filter.create ~bits_log2:16 ~hashes:4 () in
        for i = 0 to 4_999 do
          ignore (Replay_filter.check_and_insert f ~now:0.0 ("in-" ^ string_of_int i))
        done;
        let fp = ref 0 in
        let probes = 2_000 in
        for i = 0 to probes - 1 do
          if Replay_filter.check_and_insert f ~now:0.0 ("probe-" ^ string_of_int i) = Replayed
          then incr fp
        done;
        let rate = float_of_int !fp /. float_of_int probes in
        Alcotest.(check bool)
          (Printf.sprintf "fp rate %.4f < 3%%" rate)
          true (rate < 0.03));
    Alcotest.test_case "memory is bounded by construction" `Quick (fun () ->
        let f = Replay_filter.create ~bits_log2:20 () in
        Alcotest.(check int) "two generations of 128 KiB" (2 * 128 * 1024)
          (Replay_filter.memory_bytes f));
    qtest "fresh keys mostly pass on an empty filter" ~count:200
      QCheck2.Gen.(string_size (int_range 1 32))
      (fun key ->
        let f = Replay_filter.create ~bits_log2:16 () in
        Replay_filter.check_and_insert f ~now:0.0 key = Fresh);
  ]

(* ------------------------------------------------------------------ *)
(* Revocation notice: host identifies the misbehaving application (§VIII-A) *)

let notice_tests =
  [
    Alcotest.test_case "host learns which application was shut off" `Quick
      (fun () ->
        let net = Network.create ~seed:"notice" () in
        let _ = Network.add_as net 100 () in
        let _ = Network.add_as net 300 () in
        Network.connect_as net 100 300 ();
        let bot =
          Network.add_host net ~as_number:100 ~name:"bot" ~credential:"bot"
            ~granularity:(Granularity.Per_application "default") ()
        in
        let victim =
          Network.add_host net ~as_number:300 ~name:"victim" ~credential:"v" ()
        in
        ok_or_fail "bot" (Host.bootstrap bot);
        ok_or_fail "victim" (Host.bootstrap victim);
        let vep = ref None in
        Host.request_ephid victim (fun e -> vep := Some e);
        Network.run net;
        let vep = Option.get !vep in
        let vs = ref None in
        Host.on_data victim (fun ~session ~data:_ -> vs := Some session);
        (* The bot's "malware" app floods; its "browser" app behaves. *)
        Host.connect bot ~remote:vep.cert ~data0:"benign" ~app:"browser" (fun _ -> ());
        Network.run net;
        Host.connect bot ~remote:vep.cert ~data0:"FLOOD" ~app:"malware" (fun _ -> ());
        Network.run net;
        let session = Option.get !vs in
        let evidence = Option.get (Host.last_packet victim session) in
        ok_or_fail "shutoff" (Host.request_shutoff victim ~session ~evidence);
        Network.run net;
        (match Host.revocation_notices bot with
        | [ (_, Some "malware") ] -> ()
        | [ (_, app) ] ->
            Alcotest.failf "wrong app: %s" (Option.value ~default:"none" app)
        | l -> Alcotest.failf "expected one notice, got %d" (List.length l)));
  ]

(* ------------------------------------------------------------------ *)
(* APNA-as-a-Service (§VIII-E): a downstream AS as a connection-sharing
   device on an upstream APNA ISP. *)

let aas_tests =
  [
    Alcotest.test_case "downstream AS customers mix into the upstream set"
      `Quick (fun () ->
        let net = Network.create ~seed:"aas" () in
        let _isp = Network.add_as net 100 () in
        let _remote = Network.add_as net 300 () in
        Network.connect_as net 100 300 ();
        (* The downstream AS (no APNA deployment of its own) attaches to
           the ISP exactly like a NAT-mode device (§VIII-E: "a downstream
           AS can be viewed as a connection-sharing device"). *)
        let downstream =
          Access_point.create ~name:"downstream-as"
            ~rng:(Drbg.split (Network.rng net) "daas")
            ~virtual_as:64512
        in
        Access_point.attach downstream (Network.node_exn net 100)
          ~credential:"downstream-contract";
        ok_or_fail "downstream bootstrap" (Access_point.bootstrap downstream);
        (* Five customers of the downstream AS. *)
        let customers =
          List.init 5 (fun i ->
              let name = Printf.sprintf "cust-%d" i in
              let h = Host.create ~name ~rng:(Drbg.split (Network.rng net) name) () in
              Access_point.attach_internal downstream h ~credential:name;
              ok_or_fail name (Host.bootstrap h);
              h)
        in
        let server =
          Network.add_host net ~as_number:300 ~name:"server" ~credential:"srv" ()
        in
        ok_or_fail "server" (Host.bootstrap server);
        Host.on_data server (fun ~session ~data ->
            ignore (Host.send server session ("ok:" ^ data)));
        let sep = ref None in
        Host.request_ephid server (fun e -> sep := Some e);
        Network.run net;
        let sep = Option.get !sep in
        List.iteri
          (fun i c ->
            Host.connect c ~remote:sep.cert ~data0:(string_of_int i) (fun _ -> ()))
          customers;
        Network.run net;
        (* Every customer got service... *)
        List.iteri
          (fun i c ->
            Alcotest.(check (list string)) "served" [ Printf.sprintf "ok:%d" i ]
              (List.map snd (Host.received c)))
          customers;
        (* ...while the upstream ISP attributes all their EphIDs to the one
           downstream contract: the customers' anonymity set is the ISP's. *)
        let isp = Network.node_exn net 100 in
        let contract_hid =
          Option.get
            (Registry.hid_of_credential (As_node.registry isp)
               ~credential:"downstream-contract")
        in
        List.iter
          (fun c ->
            match Host.sessions c with
            | [ s ] ->
                let info =
                  ok_or_fail "parse"
                    (Ephid.parse (As_node.keys isp) (Session.local_cert s).ephid)
                in
                Alcotest.(check bool) "attributed to the contract" true
                  (Apna_net.Addr.hid_equal info.hid contract_hid)
            | _ -> Alcotest.fail "expected one session")
          customers;
        Alcotest.(check int) "all five relayed" 5
          (Access_point.ephid_count downstream));
  ]

(* ------------------------------------------------------------------ *)
(* GRE/IPv4 transport (§VII-D, Fig. 9) *)

let transport_tests =
  [
    Alcotest.test_case "end-to-end over IPv4/GRE encapsulation" `Quick (fun () ->
        (* Same protocol flows, but every inter-AS hop is serialized as
           IPv4 / GRE / APNA and re-parsed: the Fig. 9 wire format works as
           the real transport. *)
        let net = Network.create ~seed:"gre" ~transport:Network.Gre_ipv4 () in
        let _ = Network.add_as net 100 () in
        let _ = Network.add_as net 200 () in
        let _ = Network.add_as net 300 () in
        Network.connect_as net 100 200 ();
        Network.connect_as net 200 300 ();
        let alice = Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" () in
        let bob = Network.add_host net ~as_number:300 ~name:"bob" ~credential:"b" () in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "bob" (Host.bootstrap bob);
        Host.on_data bob (fun ~session ~data ->
            ignore (Host.send bob session ("gre:" ^ data)));
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        Host.connect alice ~remote:(Option.get !bep).cert ~data0:"tunneled"
          (fun _ -> ());
        Network.run net;
        Alcotest.(check (list string)) "round trip over GRE" [ "gre:tunneled" ]
          (List.map snd (Host.received alice)));
  ]

(* ------------------------------------------------------------------ *)
(* EphID self-release (§VIII-G2) *)

let release_tests =
  [
    Alcotest.test_case "released EphID stops working at egress" `Quick (fun () ->
        let net = Network.create ~seed:"release" () in
        let _ = Network.add_as net 100 () in
        let _ = Network.add_as net 300 () in
        Network.connect_as net 100 300 ();
        let alice = Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" () in
        let bob = Network.add_host net ~as_number:300 ~name:"bob" ~credential:"b" () in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "bob" (Host.bootstrap bob);
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        let bep = Option.get !bep in
        let session = ref None in
        Host.connect alice ~remote:bep.cert ~data0:"before" (fun s -> session := Some s);
        Network.run net;
        Alcotest.(check int) "delivered" 1 (List.length (Host.received bob));
        (* Alice retires the EphID backing the session... *)
        let alice_ep =
          List.find
            (fun (e : Host.endpoint) ->
              Ephid.equal e.cert.ephid (Session.local_cert (Option.get !session)).ephid)
            (Host.endpoints alice)
        in
        ok_or_fail "release" (Host.release_endpoint alice alice_ep);
        Network.run net;
        let node = Network.node_exn net 100 in
        Alcotest.(check int) "on the revocation list" 1
          (Revocation.size (As_node.revoked node));
        Alcotest.(check int) "MS counted it" 1
          (Management.released_count (As_node.management node));
        (* ...after which its packets die at egress. *)
        ignore (Host.send alice (Option.get !session) "after");
        Network.run net;
        Alcotest.(check int) "no more delivery" 1 (List.length (Host.received bob)));
    Alcotest.test_case "cannot release someone else's EphID" `Quick (fun () ->
        let net = Network.create ~seed:"release2" () in
        let _ = Network.add_as net 100 () in
        let alice = Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" () in
        let mallory = Network.add_host net ~as_number:100 ~name:"mallory" ~credential:"m" () in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "mallory" (Host.bootstrap mallory);
        let aep = ref None in
        Host.request_ephid alice (fun e -> aep := Some e);
        Network.run net;
        let aep = Option.get !aep in
        (* Mallory asks the MS to release Alice's EphID, with her own kHA. *)
        let node = Network.node_exn net 100 in
        let mallory_kha = Option.get (Host.kha mallory) in
        let mallory_ctrl = Option.get (Host.ctrl_ephid mallory) in
        let msg =
          Management.Client.make_release
            ~rng:(Apna_crypto.Drbg.create ~seed:"m")
            ~kha:mallory_kha ~ephid:aep.cert.ephid
        in
        (match
           Management.handle_release (As_node.management node)
             ~now:(Network.now_unix net)
             ~src_ephid:(Ephid.to_bytes mallory_ctrl) msg
         with
        | Error (Error.Rejected _) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
        | Ok () -> Alcotest.fail "foreign release accepted");
        Alcotest.(check int) "nothing revoked" 0
          (Revocation.size (As_node.revoked node)));
  ]

(* ------------------------------------------------------------------ *)
(* Path-MTU discovery (§II-C) *)

let mtu_tests =
  [
    Alcotest.test_case "oversize packet triggers frag-needed feedback" `Quick
      (fun () ->
        let net = Network.create ~seed:"mtu" () in
        let _ = Network.add_as net 100 () in
        let _ = Network.add_as net 300 () in
        Network.connect_as net 100 300
          ~link:(Apna_net.Link.make ~mtu:600 ()) ();
        let alice = Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" () in
        let bob = Network.add_host net ~as_number:300 ~name:"bob" ~credential:"b" () in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "bob" (Host.bootstrap bob);
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        let bep = Option.get !bep in
        (* The Init with 1000 bytes of 0-RTT data exceeds the 600 B MTU. *)
        Host.connect alice ~remote:bep.cert ~data0:(String.make 1000 'x')
          (fun _ -> ());
        Network.run net;
        Alcotest.(check bool) "not delivered" true (Host.received bob = []);
        (match Host.mtu_hints alice with
        | mtu :: _ ->
            Alcotest.(check bool) "hint is the usable size" true
              (mtu > 0 && mtu <= 600)
        | [] -> Alcotest.fail "no frag-needed feedback"));
    Alcotest.test_case "fitting retry is delivered" `Quick (fun () ->
        let net = Network.create ~seed:"mtu2" () in
        let _ = Network.add_as net 100 () in
        let _ = Network.add_as net 300 () in
        Network.connect_as net 100 300 ~link:(Apna_net.Link.make ~mtu:600 ()) ();
        let alice = Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" () in
        let bob = Network.add_host net ~as_number:300 ~name:"bob" ~credential:"b" () in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "bob" (Host.bootstrap bob);
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        let bep = Option.get !bep in
        Host.connect alice ~remote:bep.cert ~data0:(String.make 1000 'x')
          (fun _ -> ());
        Network.run net;
        let hint = List.hd (Host.mtu_hints alice) in
        (* The oversized Init never arrived, so re-establish within the
           advertised MTU (leaving room for header, cert and framing). *)
        Host.connect alice ~remote:bep.cert
          ~data0:(String.make (hint - 300) 'y')
          (fun _ -> ());
        Network.run net;
        Alcotest.(check int) "retry delivered" 1 (List.length (Host.received bob)));
  ]

(* ------------------------------------------------------------------ *)
(* Data retention / lawful request (§VIII-H) *)

let audit_tests =
  let module B = Apna_broker.Broker in
  (* All linkage goes through the privacy broker — Audit queries are
     broker-only (the make-check grep gate enforces it). *)
  let ask broker ~now q =
    B.handle broker ~now
      (B.Request.sign ~key:"le-key" ~corr:1L ~requester:"le" ~query:q)
  in
  let bindings broker ~now h =
    match ask broker ~now (B.Request.Bindings_of h) with
    | B.Response.Granted { grant = B.Response.Bindings bs; _ } -> bs
    | _ -> Alcotest.fail "expected a bindings grant"
  in
  [
    Alcotest.test_case "unit: bindings, attribution, retention window" `Quick
      (fun () ->
        let a = Audit.create ~retain_s:3600 () in
        let keys = Keys.make_as rng ~aid:(aid 64500) in
        let broker = B.create ~keys ~audit:a () in
        B.register_requester broker ~id:"le" ~role:B.Law_enforcement
          ~key:"le-key" ~now:now0;
        let h1 = hid 0x0a000001 and h2 = hid 0x0a000002 in
        let e1 = Ephid.issue_random keys rng ~hid:h1 ~expiry:(now0 + 900) in
        let e2 = Ephid.issue_random keys rng ~hid:h1 ~expiry:(now0 + 900) in
        let e3 = Ephid.issue_random keys rng ~hid:h2 ~expiry:(now0 + 900) in
        Audit.record_issuance a ~now:now0 ~ephid:e1 ~hid:h1;
        Audit.record_issuance a ~now:(now0 + 10) ~ephid:e2 ~hid:h1;
        Audit.record_issuance a ~now:(now0 + 20) ~ephid:e3 ~hid:h2;
        Alcotest.(check int) "h1 bindings" 2
          (List.length (bindings broker ~now:(now0 + 40) h1));
        Alcotest.(check int) "h2 bindings" 1
          (List.length (bindings broker ~now:(now0 + 40) h2));
        Audit.record_egress a ~now:(now0 + 30) ~ephid:e1 ~digest:"digest-1";
        (match ask broker ~now:(now0 + 40) (B.Request.Attribute_packet "digest-1") with
        | B.Response.Granted
            { grant = B.Response.Attribution { at; ephid; _ }; _ } ->
            Alcotest.(check int) "when" (now0 + 30) at;
            Alcotest.(check bool) "which" true (Ephid.equal ephid e1)
        | _ -> Alcotest.fail "retained digest not found");
        (match ask broker ~now:(now0 + 40) (B.Request.Attribute_packet "nope") with
        | B.Response.Refused { reason = Error.Rejected _; _ } -> ()
        | _ -> Alcotest.fail "unknown digest should be refused");
        (* Retention window: everything ages out after retain_s. *)
        let removed = Audit.gc a ~now:(now0 + 3700) in
        Alcotest.(check int) "all gone" 4 removed;
        Alcotest.(check int) "no bindings" 0
          (List.length (bindings broker ~now:(now0 + 3700) h1));
        (* Every query above — including the refusal — is journaled, and
           the chain verifies. *)
        Alcotest.(check int) "journal entries" 5
          (Apna_broker.Journal.length (B.journal broker));
        Alcotest.(check bool) "journal verifies" true
          (Result.is_ok (B.verify_journal broker)));
    Alcotest.test_case "lawful targeted request end to end" `Quick (fun () ->
        (* A retention-enabled ISP answers: "did this packet leave your
           network, and which subscriber sent it?" *)
        let net = Network.create ~seed:"lawful" () in
        let _ = Network.add_as net 100 ~retention:true () in
        let _ = Network.add_as net 300 () in
        Network.connect_as net 100 300 ();
        let alice = Network.add_host net ~as_number:100 ~name:"alice" ~credential:"alice@isp" () in
        let bob = Network.add_host net ~as_number:300 ~name:"bob" ~credential:"bob" () in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "bob" (Host.bootstrap bob);
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        (* The investigator holds one captured packet. *)
        let captured = ref None in
        Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
            if pkt.proto = Apna_net.Packet.Data then captured := Some pkt);
        Host.connect alice ~remote:(Option.get !bep).cert ~data0:"evidence"
          (fun _ -> ());
        Network.run net;
        let pkt = Option.get !captured in
        let isp = Network.node_exn net 100 in
        (* The ISP's broker is the lawful interface: the investigator is
           registered, budgeted, and every answer is journaled. *)
        let module B = Apna_broker.Broker in
        let broker = B.for_node isp in
        B.register_requester broker ~id:"le" ~role:B.Law_enforcement
          ~key:"le-key" ~now:now0;
        let ask q =
          B.handle broker ~now:now0
            (B.Request.sign ~key:"le-key" ~corr:7L ~requester:"le" ~query:q)
        in
        (* Step 1: attribute the captured packet's digest (its MAC). *)
        let logged_ephid, hid_of_sender =
          match ask (B.Request.Attribute_packet pkt.header.mac) with
          | B.Response.Granted
              { grant = B.Response.Attribution { ephid; hid; credential; _ }; _ }
            ->
              (* The grant already names the subscriber. *)
              Alcotest.(check (option string)) "subscriber" (Some "alice@isp")
                credential;
              (ephid, hid)
          | _ -> Alcotest.fail "attribution refused"
        in
        (* Step 2: the issuance log corroborates the binding. *)
        (match ask (B.Request.Bindings_of hid_of_sender) with
        | B.Response.Granted { grant = B.Response.Bindings bs; _ } ->
            Alcotest.(check bool) "issuance binding present" true
              (List.exists (fun (_, e) -> Ephid.equal e logged_ephid) bs)
        | _ -> Alcotest.fail "bindings refused");
        Alcotest.(check bool) "journal verifies" true
          (Result.is_ok (B.verify_journal broker));
        (* But retention holds no plaintext: the payload stays sealed. *)
        let contains needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
          scan 0
        in
        Alcotest.(check bool) "no plaintext retained" false
          (contains "evidence" (Apna_net.Packet.to_bytes pkt)));
    Alcotest.test_case "retention disabled records nothing" `Quick (fun () ->
        let net = Network.create ~seed:"no-retain" () in
        let node = Network.add_as net 100 () in
        Alcotest.(check bool) "no audit log" true (As_node.audit node = None));
  ]

(* ------------------------------------------------------------------ *)
(* Encrypted ICMP (§VIII-B future work) *)

let encrypted_icmp_tests =
  [
    qtest "cert cache LRU semantics" ~count:50 QCheck2.Gen.(int_range 1 20)
      (fun capacity ->
        let keys = Keys.make_as rng ~aid:(aid 64500) in
        let cache = Cert_cache.create ~capacity in
        let certs =
          List.init (capacity + 5) (fun i ->
              let ek = Keys.make_ephid_keys rng in
              let ephid =
                Ephid.issue_random keys rng ~hid:(hid (i + 1)) ~expiry:(now0 + 900)
              in
              Cert.issue keys ~ephid ~expiry:(now0 + 900) ~kx_pub:ek.kx_public
                ~sig_pub:(Apna_crypto.Ed25519.public_key ek.sig_keypair)
                ~aa_ephid:ephid)
        in
        List.iter (Cert_cache.observe cache) certs;
        Cert_cache.size cache = capacity
        && Cert_cache.evictions cache = 5
        (* the oldest five were evicted, the newest are present *)
        && Cert_cache.find cache (List.nth certs 0).ephid = None
        && Cert_cache.find cache (List.nth certs (capacity + 4)).ephid <> None);
    Alcotest.test_case "ecies seal/open roundtrip and wrong key" `Quick (fun () ->
        let ek = Keys.make_ephid_keys rng in
        let other = Keys.make_ephid_keys rng in
        let sealed =
          ok_or_fail "seal" (Ecies.seal ~rng ~peer_pub:ek.kx_public "feedback")
        in
        Alcotest.(check string) "opens" "feedback"
          (ok_or_fail "open" (Ecies.open_ ~secret:ek.kx_secret sealed));
        Alcotest.(check bool) "wrong key fails" true
          (Result.is_error (Ecies.open_ ~secret:other.kx_secret sealed));
        let sealed2 =
          ok_or_fail "seal2" (Ecies.seal ~rng ~peer_pub:ek.kx_public "feedback")
        in
        Alcotest.(check bool) "fresh ephemeral each time" true
          (sealed.eph_pub <> sealed2.eph_pub));
    Alcotest.test_case "sealed unreachable: source decrypts, observer cannot"
      `Quick (fun () ->
        let net = Network.create ~seed:"eicmp" () in
        let _ = Network.add_as net 100 () in
        let _ = Network.add_as net 300 ~icmp_encryption:true () in
        Network.connect_as net 100 300 ();
        let alice = Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" () in
        let bob = Network.add_host net ~as_number:300 ~name:"bob" ~credential:"b" () in
        ok_or_fail "alice" (Host.bootstrap alice);
        ok_or_fail "bob" (Host.bootstrap bob);
        let bep = ref None in
        Host.request_ephid bob ~lifetime:Lifetime.Short (fun e -> bep := Some e);
        Network.run net;
        let bep = Option.get !bep in
        (* A first exchange lets AS300 observe alice's certificate. *)
        let session = ref None in
        Host.connect alice ~remote:bep.cert ~data0:"warm-up" (fun s -> session := Some s);
        Network.run net;
        Alcotest.(check int) "cache primed" 1
          (Cert_cache.size (Option.get (As_node.cert_cache (Network.node_exn net 300))));
        (* Bob's EphID expires; alice's next packet draws ICMP feedback. *)
        Network.advance_time net 120.0;
        let observed_icmp = ref [] in
        Network.set_tap net (fun ~from ~to_:_ pkt ->
            if
              Apna_net.Addr.aid_equal from (aid 300)
              && pkt.proto = Apna_net.Packet.Icmp
            then observed_icmp := pkt.payload :: !observed_icmp);
        ignore (Host.send alice (Option.get !session) "too late");
        Network.run net;
        (* Alice got the decrypted reason... *)
        (match Host.unreachables alice with
        | Icmp.Ephid_expired :: _ -> ()
        | [] -> Alcotest.fail "no feedback"
        | r :: _ -> Alcotest.failf "wrong reason %s" (Icmp.reason_to_string r));
        (* ...but on the wire the message was sealed. *)
        (match !observed_icmp with
        | payload :: _ -> begin
            match Icmp.of_bytes payload with
            | Ok (Icmp.Encrypted _) -> ()
            | Ok m -> Alcotest.failf "plaintext ICMP on the wire: %s"
                        (Format.asprintf "%a" Icmp.pp m)
            | Error e -> Alcotest.fail (Error.to_string e)
          end
        | [] -> Alcotest.fail "no ICMP observed"));
    Alcotest.test_case "falls back to plaintext without a cached cert" `Quick
      (fun () ->
        let net = Network.create ~seed:"eicmp2" () in
        let _ = Network.add_as net 100 () in
        let _ = Network.add_as net 300 ~icmp_encryption:true () in
        Network.connect_as net 100 300 ();
        let alice = Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" () in
        ok_or_fail "alice" (Host.bootstrap alice);
        (* Ping a genuine AS300 EphID bound to an unregistered host: no
           certificate was ever observed for alice's ping source, so the
           feedback arrives in the clear — and still reaches her. *)
        let ghost =
          Ephid.issue_random
            (As_node.keys (Network.node_exn net 300))
            rng ~hid:(hid 0x0a00ffff)
            ~expiry:(Network.now_unix net + 900)
        in
        Host.ping alice ~dst_aid:(aid 300) ~dst_ephid:ghost (fun _ -> ());
        Network.run net;
        (match Host.unreachables alice with
        | Icmp.Host_unknown :: _ -> ()
        | [] -> Alcotest.fail "no feedback"
        | r :: _ -> Alcotest.failf "wrong reason %s" (Icmp.reason_to_string r)));
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "apna_extensions"
    [
      ("path_proof", path_proof_tests);
      ("replay_filter", replay_filter_tests);
      ("revocation_notice", notice_tests);
      ("apna_as_a_service", aas_tests);
      ("gre_transport", transport_tests);
      ("ephid_release", release_tests);
      ("path_mtu", mtu_tests);
      ("data_retention", audit_tests);
      ("encrypted_icmp", encrypted_icmp_tests);
    ]
