(* Scale-regression tests for PR 7: count-based cost sentinels proving the
   former quadratic hot spots now cost what they change, not what they
   hold (endpoint removal, audit gc, revocation gc, registry reverse
   lookup), the issue_batch ≡ sequential-grants equivalence property, the
   batch wire encodings, the heap the gc sweeps ride on, the prefetcher's
   batch RPC on the real network, and trace time compression. *)

open Apna
open Apna_crypto
module Heap = Apna_util.Heap

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rng = Drbg.create ~seed:"scale"
let now0 = 1_750_000_000
let aid = Apna_net.Addr.aid_of_int
let hid = Apna_net.Addr.hid_of_int

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let keys = Keys.make_as rng ~aid:(aid 64500)

(* ------------------------------------------------------------------ *)
(* Min-heap: the structure every O(changes) gc sweep rides on *)

let heap_tests =
  [
    qtest "pop_min drains in sorted order" ~count:50
      QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
      (fun prios ->
        let h = Heap.create ~dummy:"" () in
        List.iteri (fun i p -> Heap.push h ~prio:p (string_of_int i)) prios;
        let popped = ref [] in
        let rec drain () =
          match Heap.pop_min h with
          | Some (p, _) ->
              popped := p :: !popped;
              drain ()
          | None -> ()
        in
        drain ();
        Heap.is_empty h
        && List.rev !popped = List.sort compare prios);
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let h = Heap.create ~dummy:0 () in
        Heap.push h ~prio:5 50;
        Heap.push h ~prio:3 30;
        Alcotest.(check (option (pair int int))) "peek" (Some (3, 30))
          (Heap.peek_min h);
        Alcotest.(check int) "length" 2 (Heap.length h);
        Alcotest.(check (option (pair int int))) "pop" (Some (3, 30))
          (Heap.pop_min h);
        Alcotest.(check int) "length after pop" 1 (Heap.length h));
  ]

(* ------------------------------------------------------------------ *)
(* Cost sentinels: the three named quadratic fixes + registry lookup *)

(* Endpoint removal must not rebuild the endpoint list: the probe counts
   entries examined, and it must not grow with how many endpoints the
   host holds. *)
let endpoint_removal_cost () =
  let net = Network.create ~seed:"scale-endpoints" () in
  let _ = Network.add_as net 100 () in
  let h =
    Network.add_host net ~as_number:100 ~name:"h" ~credential:"h@scale" ()
  in
  ok_or_fail "bootstrap" (Host.bootstrap h);
  Network.run net;
  let grab () =
    let ep = ref None in
    Host.request_ephid h (fun e -> ep := Some e);
    Network.run net;
    Option.get !ep
  in
  let cost_with n =
    let eps = List.init n (fun _ -> grab ()) in
    let victim = List.nth eps (n / 2) in
    ok_or_fail "release" (Host.release_endpoint h victim);
    Network.run net;
    Host.last_endpoint_op_cost h
  in
  let small = cost_with 4 in
  let big = cost_with 32 in
  Alcotest.(check int) "removal cost independent of endpoint count" small big;
  Alcotest.(check bool) "removal is O(1)" true (big <= 2)

(* Audit.gc must probe only buckets whose oldest entry can be expired,
   never fold over the whole retention log. *)
let audit_gc_cost () =
  let a = Audit.create ~retain_s:100 () in
  (* A large population of fresh bindings... *)
  for i = 1 to 2_000 do
    Audit.record_issuance a ~now:(now0 + 500)
      ~ephid:(Ephid.issue_random keys rng ~hid:(hid i) ~expiry:(now0 + 86_400))
      ~hid:(hid i)
  done;
  (* ...and three stale ones. *)
  for i = 9_001 to 9_003 do
    Audit.record_issuance a ~now:now0
      ~ephid:(Ephid.issue_random keys rng ~hid:(hid i) ~expiry:(now0 + 86_400))
      ~hid:(hid i)
  done;
  let removed = Audit.gc a ~now:(now0 + 200) in
  Alcotest.(check int) "only the stale entries removed" 3 removed;
  Alcotest.(check bool)
    (Printf.sprintf "gc probed %d, not the 2003-entry log"
       (Audit.last_gc_cost a))
    true
    (Audit.last_gc_cost a <= 12);
  (* A clean sweep over an already-clean log costs nothing. *)
  ignore (Audit.gc a ~now:(now0 + 200));
  Alcotest.(check int) "idle sweep examines nothing" 0 (Audit.last_gc_cost a)

(* Revocation.gc: O(stale · log n), never a walk of the live list. *)
let revocation_gc_cost () =
  let r = Revocation.create () in
  for i = 1 to 2_000 do
    Revocation.revoke r
      (Ephid.issue_random keys rng ~hid:(hid i) ~expiry:(now0 + 86_400))
      ~expiry:(now0 + 86_400)
  done;
  for i = 3_001 to 3_005 do
    Revocation.revoke r
      (Ephid.issue_random keys rng ~hid:(hid i) ~expiry:(now0 + 10))
      ~expiry:(now0 + 10)
  done;
  Alcotest.(check int) "size before" 2_005 (Revocation.size r);
  let removed = Revocation.gc r ~now:(now0 + 60) in
  Alcotest.(check int) "expired entries removed" 5 removed;
  Alcotest.(check int) "size after" 2_000 (Revocation.size r);
  Alcotest.(check bool)
    (Printf.sprintf "gc examined %d candidates, not the live 2000"
       (Revocation.last_gc_cost r))
    true
    (Revocation.last_gc_cost r <= 6);
  ignore (Revocation.gc r ~now:(now0 + 60));
  Alcotest.(check int) "idle sweep examines nothing" 0
    (Revocation.last_gc_cost r)

(* Re-revoking an already-revoked EphID must not grow the expiry heap: a
   revocation storm that keeps accusing the same EphIDs would otherwise
   pile duplicate candidates the next gc has to pop one by one. *)
let revocation_rerevoke_cost () =
  let r = Revocation.create () in
  let victims =
    Array.init 50 (fun i ->
        Ephid.issue_random keys rng ~hid:(hid (i + 1)) ~expiry:(now0 + 10))
  in
  Array.iter (fun e -> Revocation.revoke r e ~expiry:(now0 + 10)) victims;
  let gen_after_first = Revocation.generation r in
  (* The storm: every victim re-accused 40 times over. *)
  for _ = 1 to 40 do
    Array.iter (fun e -> Revocation.revoke r e ~expiry:(now0 + 10)) victims
  done;
  Alcotest.(check int) "still 50 entries" 50 (Revocation.size r);
  Alcotest.(check int) "duplicate revokes bump no generation" gen_after_first
    (Revocation.generation r);
  ignore (Revocation.gc r ~now:(now0 + 60));
  Alcotest.(check bool)
    (Printf.sprintf "gc examined %d candidates for 50 entries, not 2050"
       (Revocation.last_gc_cost r))
    true
    (Revocation.last_gc_cost r <= 50);
  (* Batch form: the whole storm costs one generation bump. *)
  let gen0 = Revocation.generation r in
  let entries =
    Array.to_list (Array.map (fun e -> (e, now0 + 120)) victims)
  in
  let changed = Revocation.revoke_many r entries in
  Alcotest.(check int) "all entries changed" 50 changed;
  Alcotest.(check int) "one bump for the batch" (gen0 + 1)
    (Revocation.generation r);
  Alcotest.(check int) "batch replay is a no-op" 0
    (Revocation.revoke_many r entries)

(* The broker-facing reverse lookup answers from an index: one probe,
   regardless of how many customers the registry holds. *)
let registry_lookup_cost () =
  let hi = Host_info.create ~expected_hosts:4_096 () in
  let reg = Registry.create ~keys ~host_info:hi ~rng () in
  let admissions =
    Array.init 4_096 (fun i ->
        Registry.admit reg ~now:now0
          ~credential:(Printf.sprintf "c%d" i)
          ~shared_secret:(Drbg.generate rng 32))
  in
  let a = admissions.(2_048) in
  Alcotest.(check (option string)) "reverse lookup answers"
    (Some "c2048")
    (Registry.credential_of_hid reg a.Registry.hid);
  Alcotest.(check int) "lookup cost is one probe" 1
    (Registry.last_lookup_cost reg);
  Alcotest.(check int) "population indexed" 4_096 (Registry.customer_count reg)

let sentinel_tests =
  [
    Alcotest.test_case "endpoint removal is O(1), not O(endpoints)" `Quick
      endpoint_removal_cost;
    Alcotest.test_case "audit gc cost scales with expirable buckets" `Quick
      audit_gc_cost;
    Alcotest.test_case "revocation gc cost scales with stale entries" `Quick
      revocation_gc_cost;
    Alcotest.test_case "re-revocation storms stay flat in heap and caches"
      `Quick revocation_rerevoke_cost;
    Alcotest.test_case "registry reverse lookup is one probe" `Quick
      registry_lookup_cost;
  ]

(* ------------------------------------------------------------------ *)
(* Batched issuance: equivalence and wire encodings *)

(* Both instances under comparison must agree on everything but the
   issue path — including the AA EphID embedded in every certificate. *)
let shared_aa_ephid =
  Ephid.issue_random keys rng ~hid:(hid 3) ~expiry:(now0 + 86_400)

let fresh_ms ~seed =
  let r = Drbg.create ~seed in
  let hi = Host_info.create () in
  let h = hid 0x0a000001 in
  Host_info.register hi h (Keys.derive_host_as ~shared_secret:(String.make 32 's'));
  (Management.create ~keys ~host_info:hi ~rng:r ~aa_ephid:shared_aa_ephid (), h)

let batch_equivalence_tests =
  [
    (* The issuance DRBG is the only nondeterminism: under the same seed,
       issue_batch n must mint byte-identical EphIDs and certificates to
       n sequential grants. *)
    qtest "issue_batch n ≡ n sequential grants (same DRBG seed)" ~count:30
      QCheck2.Gen.(int_range 1 Msgs.Batch_request_body.max_batch)
      (fun n ->
        let krng = Drbg.create ~seed:(Printf.sprintf "items-%d" n) in
        let items =
          List.init n (fun _ ->
              let ek = Keys.make_ephid_keys krng in
              {
                Msgs.Batch_request_body.kx_pub = ek.kx_public;
                sig_pub = Ed25519.public_key ek.sig_keypair;
              })
        in
        let ms_b, hid_b = fresh_ms ~seed:"equiv" in
        let batch =
          match
            Management.issue_batch ms_b ~now:now0 ~hid:hid_b ~items
              ~lifetime:Lifetime.Medium
          with
          | Ok certs -> certs
          | Error e -> QCheck2.Test.fail_reportf "batch: %s" (Error.to_string e)
        in
        let ms_s, hid_s = fresh_ms ~seed:"equiv" in
        let sequential =
          List.map
            (fun (it : Msgs.Batch_request_body.item) ->
              match
                Management.issue_direct ms_s ~now:now0 ~hid:hid_s
                  ~kx_pub:it.kx_pub ~sig_pub:it.sig_pub
                  ~lifetime:Lifetime.Medium
              with
              | Ok c -> c
              | Error e ->
                  QCheck2.Test.fail_reportf "direct: %s" (Error.to_string e))
            items
        in
        List.for_all2
          (fun a b -> Cert.to_bytes a = Cert.to_bytes b)
          batch sequential);
    Alcotest.test_case "batch count bounds enforced" `Quick (fun () ->
        let ms, h = fresh_ms ~seed:"bounds" in
        (match
           Management.issue_batch ms ~now:now0 ~hid:h ~items:[]
             ~lifetime:Lifetime.Short
         with
        | Error (Error.Malformed _) -> ()
        | _ -> Alcotest.fail "empty batch must be rejected");
        let ek = Keys.make_ephid_keys rng in
        let item =
          {
            Msgs.Batch_request_body.kx_pub = ek.kx_public;
            sig_pub = Ed25519.public_key ek.sig_keypair;
          }
        in
        let too_many =
          List.init (Msgs.Batch_request_body.max_batch + 1) (fun _ -> item)
        in
        match
          Management.issue_batch ms ~now:now0 ~hid:h ~items:too_many
            ~lifetime:Lifetime.Short
        with
        | Error (Error.Malformed _) -> ()
        | _ -> Alcotest.fail "oversized batch must be rejected");
    qtest "batch request body round-trips" ~count:50
      QCheck2.Gen.(int_range 1 Msgs.Batch_request_body.max_batch)
      (fun n ->
        let krng = Drbg.create ~seed:(Printf.sprintf "wire-%d" n) in
        let body =
          {
            Msgs.Batch_request_body.items =
              List.init n (fun _ ->
                  {
                    Msgs.Batch_request_body.kx_pub = Drbg.generate krng 32;
                    sig_pub = Drbg.generate krng 32;
                  });
            lifetime = Lifetime.Medium;
          }
        in
        match
          Msgs.Batch_request_body.of_bytes
            (Msgs.Batch_request_body.to_bytes body)
        with
        | Ok b -> b = body
        | Error _ -> false);
    qtest "batch reply body round-trips" ~count:50
      QCheck2.Gen.(
        list_size (int_range 1 Msgs.Batch_request_body.max_batch)
          (string_size (int_range 0 200)))
      (fun certs ->
        match
          Msgs.Batch_reply_body.of_bytes (Msgs.Batch_reply_body.to_bytes certs)
        with
        | Ok c -> c = certs
        | Error _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* The prefetcher refills its stock over the batch RPC on the real
   network, and the grants enter the endpoint index. *)

let prefetch_uses_batch () =
  let net = Network.create ~seed:"scale-prefetch" () in
  let as_node = Network.add_as net 100 () in
  let h =
    Network.add_host net ~as_number:100 ~name:"p" ~credential:"p@scale"
      ~granularity:Granularity.Per_packet ()
  in
  ok_or_fail "bootstrap" (Host.bootstrap h);
  Network.run net;
  (* The prefetcher backs per-packet sources and refills on demand, when
     the first flow draws a fresh EphID: a loopback session forces the
     draw. *)
  let ep = ref None in
  Host.request_ephid h (fun e -> ep := Some e);
  Network.run net;
  let session = ref None in
  Host.connect h ~remote:(Option.get !ep).cert ~data0:"warm" (fun s ->
      session := Some s);
  Network.run net;
  Alcotest.(check bool) "session established" true (!session <> None);
  (* A per-packet data frame draws a fresh source EphID; the prefetcher
     then refills its whole deficit in one batched round trip. *)
  ok_or_fail "send" (Host.send h (Option.get !session) "frame-1");
  Network.run net;
  let ms = As_node.management as_node in
  Alcotest.(check bool) "prefetch refill went over the batch RPC" true
    (Management.batch_request_count ms > 0);
  (* The batch grants are real, usable stock: subsequent per-packet
     draws are served from the prefetched queue without new batches. *)
  let before = Management.batch_request_count ms in
  for i = 2 to 4 do
    ok_or_fail "send" (Host.send h (Option.get !session) (Printf.sprintf "frame-%d" i));
    Network.run net
  done;
  Alcotest.(check bool) "stock absorbed the draws (at most one refill)" true
    (Management.batch_request_count ms <= before + 1)

let batch_rpc_tests =
  [
    Alcotest.test_case "host prefetcher refills via issue_batch" `Quick
      prefetch_uses_batch;
  ]

(* ------------------------------------------------------------------ *)
(* Trace compression: same shape, shorter clock *)

let compression_tests =
  [
    Alcotest.test_case "compress keeps rates, scales time" `Quick (fun () ->
        let cfg = Apna_workload.Trace.paper_config in
        let c = Apna_workload.Trace.compress cfg ~factor:2_000.0 in
        Alcotest.(check (float 1e-6)) "window scaled"
          (cfg.duration_s /. 2_000.0) c.duration_s;
        Alcotest.(check (float 1e-6)) "peak time scaled"
          (cfg.peak_at_s /. 2_000.0) c.peak_at_s;
        Alcotest.(check (float 1e-6)) "peak rate preserved"
          (Apna_workload.Trace.rate_at cfg cfg.peak_at_s)
          (Apna_workload.Trace.rate_at c c.peak_at_s);
        (* Trough (half a period away) preserved too. *)
        Alcotest.(check (float 1e-6)) "trough rate preserved"
          (cfg.trough_ratio *. cfg.peak_rate)
          (Apna_workload.Trace.rate_at c
             (c.peak_at_s +. (c.duration_s /. 2.0)));
        Alcotest.check_raises "factor < 1 rejected"
          (Invalid_argument "Trace.compress: factor must be >= 1") (fun () ->
            ignore (Apna_workload.Trace.compress cfg ~factor:0.5)));
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "apna_scale"
    [
      ("heap", heap_tests);
      ("cost_sentinels", sentinel_tests);
      ("batch_issuance", batch_equivalence_tests);
      ("batch_rpc", batch_rpc_tests);
      ("trace_compression", compression_tests);
    ]
