(* Security-property tests mirroring the paper's §VI analysis: every attack
   the paper claims APNA prevents is exercised against this implementation. *)

open Apna
open Apna_crypto

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let aid = Apna_net.Addr.aid_of_int

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

(* Two hosts in AS100 (attacker-adjacent), one in AS300. *)
let make_world ?(seed = "sec") () =
  let net = Network.create ~seed () in
  let _ = Network.add_as net 100 () in
  let _ = Network.add_as net 200 () in
  let _ = Network.add_as net 300 ~dns_zone:"example.net" () in
  Network.connect_as net 100 200 ();
  Network.connect_as net 200 300 ();
  net

let bootstrapped net ~as_number ~name =
  let host =
    Network.add_host net ~as_number ~name ~credential:(name ^ "-token") ()
  in
  ok_or_fail (name ^ " bootstrap") (Host.bootstrap host);
  host

let fresh_endpoint net host =
  let ep = ref None in
  Host.request_ephid host (fun e -> ep := Some e);
  Network.run net;
  Option.get !ep

(* ------------------------------------------------------------------ *)
(* §VI-A: attacking source accountability *)

let accountability_tests =
  [
    Alcotest.test_case "ephid spoofing without kHA is dropped at egress" `Quick
      (fun () ->
        (* Mallory sniffs Alice's EphID on their shared segment and uses it
           as her source — but she cannot produce Alice's per-packet MAC. *)
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let _mallory = bootstrapped net ~as_number:100 ~name:"mallory" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let alice_ep = fresh_endpoint net alice in
        let bob_ep = fresh_endpoint net bob in
        let node = Network.node_exn net 100 in
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 100)
            ~src_ephid:(Ephid.to_bytes alice_ep.cert.ephid)
            ~dst_aid:(aid 300)
            ~dst_ephid:(Ephid.to_bytes bob_ep.cert.ephid)
            ()
        in
        (* Mallory's best effort: no key, so a guessed MAC. *)
        let spoofed =
          Apna_net.Packet.make
            ~header:(Apna_net.Apna_header.with_mac header (String.make 8 '\x41'))
            ~proto:Apna_net.Packet.Data ~payload:"spoofed"
        in
        let before = (Border_router.counters (As_node.border_router node)).dropped in
        As_node.submit node spoofed;
        Network.run net;
        let after = (Border_router.counters (As_node.border_router node)).dropped in
        Alcotest.(check int) "dropped at egress" (before + 1) after;
        Alcotest.(check bool) "nothing delivered" true (Host.received bob = []));
    qtest "unauthorized ephid generation fails (CCA security)" ~count:500
      QCheck2.Gen.(string_size (return 16))
      (fun forged ->
        (* Without kA', kA'' a random 16-byte token never parses: the
           4-byte tag gives a forger at best a 2^-32 chance. *)
        let net = make_world () in
        let node = Network.node_exn net 100 in
        match Ephid.of_bytes forged with
        | Error _ -> true
        | Ok e -> Result.is_error (Ephid.parse (As_node.keys node) e));
    Alcotest.test_case "identity minting: new identity revokes the old" `Quick
      (fun () ->
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bob_ep = fresh_endpoint net bob in
        let old_ep = fresh_endpoint net alice in
        (* Alice re-authenticates for a second identity: the AS revokes the
           first HID and every EphID bound to it (§VI-A). *)
        ok_or_fail "re-bootstrap" (Host.bootstrap alice);
        let node = Network.node_exn net 100 in
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 100)
            ~src_ephid:(Ephid.to_bytes old_ep.cert.ephid)
            ~dst_aid:(aid 300)
            ~dst_ephid:(Ephid.to_bytes bob_ep.cert.ephid)
            ()
        in
        let pkt =
          Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload:"old"
        in
        (* Even with the correct old MAC key the old identity is dead. *)
        let old_kha = Option.get (Host.kha alice) in
        ignore old_kha;
        let br = As_node.border_router node in
        (match Border_router.egress_check br ~now:(Network.now_unix net) pkt with
        | Error (Error.Revoked _) -> ()
        | Error e -> Alcotest.failf "wrong drop reason: %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "old identity still accepted"));
    Alcotest.test_case "every delivered packet is attributable" `Quick (fun () ->
        (* The destination AS can hand any delivered packet to the source
           AS, which recovers the sender — accountability end to end. *)
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bob_ep = fresh_endpoint net bob in
        let captured = ref [] in
        Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
            if pkt.proto = Apna_net.Packet.Data then captured := pkt :: !captured);
        Host.connect alice ~remote:bob_ep.cert ~data0:"attributable" (fun _ -> ());
        Network.run net;
        let node = Network.node_exn net 100 in
        Alcotest.(check bool) "captured" true (!captured <> []);
        List.iter
          (fun (pkt : Apna_net.Packet.t) ->
            let e = Result.get_ok (Ephid.of_bytes pkt.header.src_ephid) in
            let info = ok_or_fail "parse" (Ephid.parse (As_node.keys node) e) in
            (* The AS maps the packet to a registered customer and can
               re-verify the sender's MAC. *)
            let entry =
              ok_or_fail "host_info" (Host_info.find (As_node.host_info node) info.hid)
            in
            Alcotest.(check bool) "mac verifies" true
              (Pkt_auth.verify ~auth_key:entry.kha.auth pkt))
          !captured);
  ]

(* ------------------------------------------------------------------ *)
(* §VI-B: attacking privacy *)

let privacy_tests =
  [
    Alcotest.test_case "observer learns only the AID pair" `Quick (fun () ->
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bob_ep = fresh_endpoint net bob in
        let captured = ref [] in
        Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
            if pkt.proto = Apna_net.Packet.Data then captured := pkt :: !captured);
        Host.connect alice ~remote:bob_ep.cert ~data0:"secret-payload" (fun _ -> ());
        Network.run net;
        let eve_keys = Keys.make_as (Drbg.create ~seed:"eve") ~aid:(aid 200) in
        List.iter
          (fun (pkt : Apna_net.Packet.t) ->
            (* The source EphID is opaque to anyone but AS100. *)
            let e = Result.get_ok (Ephid.of_bytes pkt.header.src_ephid) in
            Alcotest.(check bool) "opaque" true
              (Result.is_error (Ephid.parse eve_keys e));
            (* The payload never appears in the clear. *)
            let contains_needle haystack needle =
              let nl = String.length needle and hl = String.length haystack in
              let rec scan i =
                i + nl <= hl
                && (String.sub haystack i nl = needle || scan (i + 1))
              in
              scan 0
            in
            Alcotest.(check bool) "encrypted" false
              (contains_needle (Apna_net.Packet.to_bytes pkt) "secret-payload"))
          !captured);
    Alcotest.test_case "per-session keys: one key opens exactly one session"
      `Quick (fun () ->
        (* Two sessions between the same pair use independent keys, so
           compromising one EphID's key exposes only that session
           (§IV-D, §VI-B). *)
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bob_ep = fresh_endpoint net bob in
        let sealed_frames = ref [] in
        (* Tap only the first link: the same frame crosses two links. *)
        Network.set_tap net (fun ~from ~to_:_ pkt ->
            if Apna_net.Addr.aid_equal from (aid 100)
               && pkt.proto = Apna_net.Packet.Data then
              match Session.Frame.of_bytes pkt.payload with
              | Ok (Session.Frame.Init { conn_id; seq; sealed; _ }) ->
                  sealed_frames := (conn_id, seq, sealed) :: !sealed_frames
              | _ -> ());
        let sessions = ref [] in
        Host.connect alice ~remote:bob_ep.cert ~data0:"session-one" (fun s ->
            sessions := s :: !sessions);
        Network.run net;
        Host.connect alice ~remote:bob_ep.cert ~data0:"session-two" (fun s ->
            sessions := s :: !sessions);
        Network.run net;
        match (!sessions, List.rev !sealed_frames) with
        | [ s2; s1 ], [ (c1, q1, f1); (c2, q2, f2) ] ->
            (* Each session opens its own recorded frame... *)
            Alcotest.(check bool) "own frame" true
              (Session.conn_id s1 = c1 && Session.conn_id s2 = c2);
            ignore (q1, q2);
            (* ...but cannot open the other's: independent keys. *)
            let cross =
              Session.open_sealed s1 ~seq:0L ~sealed:f2
            in
            let cross2 = Session.open_sealed s2 ~seq:0L ~sealed:f1 in
            Alcotest.(check bool) "s1 cannot open s2 traffic" true
              (Result.is_error cross);
            Alcotest.(check bool) "s2 cannot open s1 traffic" true
              (Result.is_error cross2)
        | _ -> Alcotest.fail "expected two sessions and two captured frames");
    Alcotest.test_case "forward secrecy: long-term key compromise opens nothing"
      `Quick (fun () ->
        (* Record everything, then hand the adversary every long-term
           secret APNA has: the AS master keys (kA, kA', kA'', kAS), the
           AS signing and DH keys, and the host-AS kHA keys. None of them
           decrypts recorded session traffic: the session key came from
           ephemeral X25519 keys that were never sent and are gone. *)
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bob_ep = fresh_endpoint net bob in
        let recorded = ref [] in
        Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
            if pkt.proto = Apna_net.Packet.Data then
              match Session.Frame.of_bytes pkt.payload with
              | Ok (Session.Frame.Init { conn_id; seq; sealed; _ })
              | Ok (Session.Frame.Data { conn_id; seq; sealed }) ->
                  recorded := (conn_id, seq, sealed) :: !recorded
              | _ -> ());
        Host.connect alice ~remote:bob_ep.cert ~data0:"pfs-protected" (fun _ -> ());
        Network.run net;
        Alcotest.(check bool) "recorded" true (!recorded <> []);
        (* The adversary's key material. *)
        let node = Network.node_exn net 100 in
        let as_keys = As_node.keys node in
        let alice_kha = Option.get (Host.kha alice) in
        let candidate_keys =
          [
            Aead.of_secret as_keys.master;
            Aead.of_secret as_keys.infra_mac;
            Aead.of_secret alice_kha.ctrl_raw;
            Aead.of_secret alice_kha.auth;
            Aead.of_secret as_keys.dh_secret;
            Aead.of_secret (Ed25519.seed as_keys.signing);
          ]
        in
        List.iter
          (fun (conn_id, seq, sealed) ->
            List.iter
              (fun key ->
                (* Try the session nonce construction with each key. *)
                let nonce = Bytes.make Aead.nonce_size '\000' in
                Bytes.set_int64_be nonce 0 conn_id;
                Bytes.set_int64_be nonce 8 seq;
                Alcotest.(check bool) "undecryptable" true
                  (Result.is_error
                     (Aead.open_ ~key ~nonce:(Bytes.unsafe_to_string nonce) sealed)))
              candidate_keys)
          !recorded);
    Alcotest.test_case "MitM: a non-colluding AS cannot forge the peer's cert"
      `Quick (fun () ->
        (* The transit AS builds a lookalike certificate for bob's EphID
           with keys it controls. Alice rejects it: the signature does not
           verify under AS300's key, and the transit AS cannot sign as
           AS300. *)
        let net = make_world () in
        let _alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bob_ep = fresh_endpoint net bob in
        let transit = Network.node_exn net 200 in
        let mitm_keys = Keys.make_ephid_keys (Drbg.create ~seed:"mitm") in
        (* Forgery 1: claim AID 300 — signature check fails. *)
        let forged_as_300 =
          { (Cert.issue (As_node.keys transit) ~ephid:bob_ep.cert.ephid
               ~expiry:bob_ep.cert.expiry ~kx_pub:mitm_keys.kx_public
               ~sig_pub:(Ed25519.public_key mitm_keys.sig_keypair)
               ~aa_ephid:bob_ep.cert.aa_ephid)
            with aid = aid 300 }
        in
        Alcotest.(check bool) "rejected" true
          (Result.is_error
             (Trust.verify_cert (Network.trust net) ~now:(Network.now_unix net)
                forged_as_300));
        (* Forgery 2: honestly sign as AS200 — verifies, but now names the
           wrong AS: bob's DNS record or out-of-band cert pins AID 300, so
           the substitution is visible. *)
        let forged_as_200 =
          Cert.issue (As_node.keys transit) ~ephid:bob_ep.cert.ephid
            ~expiry:bob_ep.cert.expiry ~kx_pub:mitm_keys.kx_public
            ~sig_pub:(Ed25519.public_key mitm_keys.sig_keypair)
            ~aa_ephid:bob_ep.cert.aa_ephid
        in
        Alcotest.(check bool) "aid differs from the genuine cert" false
          (Apna_net.Addr.aid_equal forged_as_200.aid bob_ep.cert.aid));
    Alcotest.test_case "sender-flow unlinkability under per-flow EphIDs" `Quick
      (fun () ->
        (* Two hosts each open flows; an observer clustering by source
           EphID cannot tell which flows share a sender: all source EphIDs
           are distinct and pairwise dissimilar. *)
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let carol = bootstrapped net ~as_number:100 ~name:"carol" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bob_ep = fresh_endpoint net bob in
        let srcs = ref [] in
        Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
            if pkt.proto = Apna_net.Packet.Data then
              srcs := pkt.header.src_ephid :: !srcs);
        for _ = 1 to 4 do
          Host.connect alice ~remote:bob_ep.cert ~data0:"a" (fun _ -> ());
          Host.connect carol ~remote:bob_ep.cert ~data0:"c" (fun _ -> ())
        done;
        Network.run net;
        let distinct = List.sort_uniq compare !srcs in
        Alcotest.(check int) "all flows distinct sources" 8 (List.length distinct);
        (* Pairwise Hamming distances of the EphID bodies look random:
           mean within 64 +/- 16 bits of 128. *)
        let hamming a b =
          let d = ref 0 in
          String.iteri
            (fun i c ->
              d := !d + (let x = Char.code c lxor Char.code b.[i] in
                         let rec pop x acc = if x = 0 then acc else pop (x lsr 1) (acc + (x land 1)) in
                         pop x 0))
            a;
          !d
        in
        let total = ref 0 and pairs = ref 0 in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if j > i then begin
                  total := !total + hamming a b;
                  incr pairs
                end)
              distinct)
          distinct;
        let mean = float_of_int !total /. float_of_int !pairs in
        Alcotest.(check bool) "looks uniform" true (mean > 48.0 && mean < 80.0));
    Alcotest.test_case "ephid request/reply encryption hides K+ binding" `Quick
      (fun () ->
        (* §IV-C: an observer of control traffic must not link the
           requested public keys to later Init frames. Our control
           payloads are AEAD-sealed; verify the public key bytes never
           appear in any control packet on the wire. *)
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bob_ep = fresh_endpoint net bob in
        let control = ref [] in
        Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
            if pkt.proto = Apna_net.Packet.Control then
              control := Apna_net.Packet.to_bytes pkt :: !control);
        let ep = ref None in
        Host.request_ephid alice (fun e -> ep := Some e);
        Network.run net;
        let ep = Option.get !ep in
        ignore bob_ep;
        let contains_needle haystack needle =
          let nl = String.length needle and hl = String.length haystack in
          let rec scan i =
            i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
          in
          scan 0
        in
        (* Intra-AS control traffic does not cross the tap in this
           topology, so also check the request bytes directly. *)
        let kha = Option.get (Host.kha alice) in
        let req =
          Management.Client.make_request ~rng:(Drbg.create ~seed:"x") ~corr:1L ~kha
            ~keys:{ kx_secret = ""; kx_public = ep.cert.kx_pub;
                    sig_keypair = Ed25519.keypair_of_seed (String.make 32 'k') }
            ~lifetime:Lifetime.Medium
        in
        Alcotest.(check bool) "pubkey not visible in request" false
          (contains_needle (Msgs.to_bytes req) ep.cert.kx_pub);
        List.iter
          (fun bytes ->
            Alcotest.(check bool) "pubkey not visible on wire" false
              (contains_needle bytes ep.cert.kx_pub))
          !control);
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "apna_security"
    [ ("accountability", accountability_tests); ("privacy", privacy_tests) ]
