(* The batched border-router fast path: burst/sequential equivalence,
   the buffer-aliasing and drop-counter regressions buffer reuse exposed,
   replay-window boundaries, and the allocation budget of the cached
   steady state. *)

open Apna
module Net = Apna_net
module M = Apna_obs.Metrics
module Span = Apna_obs.Span

let qtest ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rng = Apna_crypto.Drbg.create ~seed:"burst-test"
let now0 = 1_750_000_000
let aid_local = Net.Addr.aid_of_int 64500
let aid_peer = Net.Addr.aid_of_int 64501
let aid_nowhere = Net.Addr.aid_of_int 64777

type fx = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  topology : Net.Topology.t;
  kha : Keys.host_as;
  ephid : Ephid.t;
  expired_ephid : Ephid.t;
  revoked_ephid : Ephid.t;
  orphan_ephid : Ephid.t;  (** valid token of an unregistered HID *)
}

let make_fx () =
  let topology = Net.Topology.create () in
  Net.Topology.connect topology aid_local aid_peer (Net.Link.make ());
  let keys = Keys.make_as rng ~aid:aid_local in
  let host_info = Host_info.create () in
  let revoked = Revocation.create () in
  let hid = Net.Addr.hid_of_int 0x0a000001 in
  let kha = Keys.derive_host_as ~shared_secret:(Apna_crypto.Drbg.generate rng 32) in
  Host_info.register host_info hid kha;
  let expiry = now0 + 86_400 in
  let ephid = Ephid.issue_random keys rng ~hid ~expiry in
  let expired_ephid = Ephid.issue_random keys rng ~hid ~expiry:(now0 - 1) in
  let revoked_ephid = Ephid.issue_random keys rng ~hid ~expiry in
  Revocation.revoke revoked revoked_ephid ~expiry;
  let orphan_ephid =
    Ephid.issue_random keys rng ~hid:(Net.Addr.hid_of_int 0x0a0000fe) ~expiry
  in
  { keys; host_info; revoked; topology; kha; ephid; expired_ephid;
    revoked_ephid; orphan_ephid }

(* Two routers over the same control-plane state see the same world; only
   caches and counters are private, which is exactly what the equivalence
   property compares. *)
let router ?(cache = 8192) fx =
  Border_router.create ~keys:fx.keys ~host_info:fx.host_info
    ~revoked:fx.revoked ~topology:fx.topology ~ephid_cache:cache ()

let seal fx pkt = Pkt_auth.seal ~auth_key:fx.kha.auth pkt

let packet ?(src_aid = aid_local) ?(dst_aid = aid_peer) ~src_ephid ~dst_ephid fx
    =
  let header = Net.Apna_header.make ~src_aid ~src_ephid ~dst_aid ~dst_ephid () in
  seal fx (Net.Packet.make ~header ~proto:Net.Packet.Data ~payload:"payload")

type egress_kind = E_valid | E_bad_mac | E_foreign | E_expired | E_revoked

let egress_packet fx kind =
  let valid = Ephid.to_bytes fx.ephid in
  match kind with
  | E_valid -> packet fx ~src_ephid:valid ~dst_ephid:valid
  | E_bad_mac ->
      let good = packet fx ~src_ephid:valid ~dst_ephid:valid in
      Pkt_auth.seal ~auth_key:(String.make 32 'x') good
  | E_foreign ->
      packet fx ~src_aid:aid_peer ~src_ephid:valid ~dst_ephid:valid
  | E_expired ->
      packet fx ~src_ephid:(Ephid.to_bytes fx.expired_ephid) ~dst_ephid:valid
  | E_revoked ->
      packet fx ~src_ephid:(Ephid.to_bytes fx.revoked_ephid) ~dst_ephid:valid

type ingress_kind =
  | I_deliver
  | I_expired
  | I_revoked
  | I_unknown_host
  | I_transit
  | I_no_route

let ingress_packet fx kind =
  let valid = Ephid.to_bytes fx.ephid in
  let dst ephid = packet fx ~dst_aid:aid_local ~src_ephid:valid ~dst_ephid:ephid in
  match kind with
  | I_deliver -> dst valid
  | I_expired -> dst (Ephid.to_bytes fx.expired_ephid)
  | I_revoked -> dst (Ephid.to_bytes fx.revoked_ephid)
  | I_unknown_host -> dst (Ephid.to_bytes fx.orphan_ephid)
  | I_transit -> packet fx ~dst_aid:aid_peer ~src_ephid:valid ~dst_ephid:valid
  | I_no_route -> packet fx ~dst_aid:aid_nowhere ~src_ephid:valid ~dst_ephid:valid

(* ------------------------------------------------------------------ *)
(* Burst == sequential (the tentpole's contract) *)

let gen_egress_kinds =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (oneofl [ E_valid; E_bad_mac; E_foreign; E_expired; E_revoked ]))

let gen_ingress_kinds =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (oneofl
         [ I_deliver; I_expired; I_revoked; I_unknown_host; I_transit;
           I_no_route ]))

let same_router_state a b =
  Border_router.counters a = Border_router.counters b
  && Border_router.drop_reasons a = Border_router.drop_reasons b
  && Border_router.ephid_cache_stats a = Border_router.ephid_cache_stats b
  && Border_router.ephid_cache_size a = Border_router.ephid_cache_size b

let equivalence_tests =
  let egress_equiv ~cache name =
    qtest name gen_egress_kinds (fun kinds ->
        let fx = make_fx () in
        let seq = router ~cache fx and bat = router ~cache fx in
        let pkts = Array.of_list (List.map (egress_packet fx) kinds) in
        let n = Array.length pkts in
        let store = Border_router.Burst.create () in
        Border_router.egress_burst bat ~now:now0 pkts ~n store;
        let ok = ref true in
        Array.iteri
          (fun i pkt ->
            let one = Border_router.egress_check seq ~now:now0 pkt in
            if Border_router.Burst.egress_result store i <> one then ok := false)
          pkts;
        !ok && same_router_state seq bat)
  in
  let ingress_equiv ~cache name =
    qtest name gen_ingress_kinds (fun kinds ->
        let fx = make_fx () in
        let seq = router ~cache fx and bat = router ~cache fx in
        let pkts = Array.of_list (List.map (ingress_packet fx) kinds) in
        let n = Array.length pkts in
        let store = Border_router.Burst.create () in
        Border_router.ingress_burst bat ~now:now0 pkts ~n store;
        let ok = ref true in
        Array.iteri
          (fun i pkt ->
            let one = Border_router.ingress_check seq ~now:now0 pkt in
            if Border_router.Burst.ingress_result store i <> one then ok := false)
          pkts;
        !ok && same_router_state seq bat)
  in
  [
    (* Lists up to 40 > max_burst = 32 also exercise store growth and the
       arena-overflow fallback inside a single burst. *)
    egress_equiv ~cache:8192 "egress burst == sequential (cached)";
    egress_equiv ~cache:0 "egress burst == sequential (cache disabled)";
    ingress_equiv ~cache:8192 "ingress burst == sequential (cached)";
    ingress_equiv ~cache:0 "ingress burst == sequential (cache disabled)";
    Alcotest.test_case "burst store reuse across bursts and routers" `Quick
      (fun () ->
        let fx = make_fx () in
        let a = router fx and b = router fx in
        let pkts = Array.init 8 (fun _ -> egress_packet fx E_valid) in
        let store = Border_router.Burst.create ~capacity:2 () in
        Border_router.egress_burst a ~now:now0 pkts ~n:8 store;
        Border_router.egress_burst b ~now:now0 pkts ~n:8 store;
        for i = 0 to 7 do
          Alcotest.(check bool)
            (Printf.sprintf "packet %d accepted" i)
            true
            (Border_router.Burst.error store i = None)
        done;
        Alcotest.(check bool) "grew" true (Border_router.Burst.capacity store >= 8));
    Alcotest.test_case "n beyond array length rejected" `Quick (fun () ->
        let fx = make_fx () in
        let br = router fx in
        let pkts = Array.init 4 (fun _ -> egress_packet fx E_valid) in
        let store = Border_router.Burst.create () in
        Alcotest.check_raises "raises"
          (Invalid_argument "Border_router.egress_burst: n") (fun () ->
            Border_router.egress_burst br ~now:now0 pkts ~n:5 store));
  ]

(* ------------------------------------------------------------------ *)
(* Regression: the cache key must not alias the caller's buffer *)

let aliasing_tests =
  [
    Alcotest.test_case "cache key survives caller buffer reuse" `Quick
      (fun () ->
        let fx = make_fx () in
        let br = router fx in
        (* The RX-ring situation: the EphID the packet carries is a view
           into a buffer the caller recycles after the call returns. *)
        let buf = Bytes.of_string (Ephid.to_bytes fx.ephid) in
        let raw = Bytes.unsafe_to_string buf in
        let pkt = packet fx ~src_ephid:raw ~dst_ephid:raw in
        (match Border_router.egress_check br ~now:now0 pkt with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "first packet: %s" (Error.to_string e));
        let cs = Border_router.ephid_cache_stats br in
        Alcotest.(check int) "inserted on miss" 1 cs.misses;
        (* Caller recycles the buffer. Before keys were interned this
           rewrote the cached key in place, corrupting the hash table. *)
        Bytes.fill buf 0 (Bytes.length buf) '\x00';
        (* A later packet with the same EphID (its own storage) must hit. *)
        let fresh = Ephid.to_bytes fx.ephid in
        let pkt2 = packet fx ~src_ephid:fresh ~dst_ephid:fresh in
        (match Border_router.egress_check br ~now:now0 pkt2 with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "after reuse: %s" (Error.to_string e));
        Alcotest.(check int) "cache hit after buffer reuse" 1 cs.hits;
        (* And the clobbered bytes themselves are just an invalid token,
           not a key into someone else's entry. *)
        let zeroed = Bytes.to_string buf in
        let pkt3 = packet fx ~src_ephid:zeroed ~dst_ephid:zeroed in
        Alcotest.(check bool) "zeroed token rejected" true
          (Result.is_error (Border_router.egress_check br ~now:now0 pkt3)));
  ]

(* ------------------------------------------------------------------ *)
(* Regression: drop counters register once per reason, not once per drop *)

let drop_counter_tests =
  [
    Alcotest.test_case "registrations bounded by distinct reasons" `Quick
      (fun () ->
        let fx = make_fx () in
        let br = router fx in
        let was = M.enabled M.default in
        M.set_enabled M.default true;
        Fun.protect
          ~finally:(fun () -> M.set_enabled M.default was)
          (fun () ->
            let drops = 200 in
            for i = 0 to drops - 1 do
              let kind = if i mod 2 = 0 then E_bad_mac else E_expired in
              match Border_router.egress_check br ~now:now0 (egress_packet fx kind) with
              | Ok _ -> Alcotest.fail "drop expected"
              | Error _ -> ()
            done;
            Alcotest.(check int) "dropped" drops (Border_router.counters br).dropped;
            Alcotest.(check int) "two reasons" 2
              (List.length (Border_router.drop_reasons br));
            (* The regression: one metric registration per *drop* grew the
               registry linearly with traffic. *)
            Alcotest.(check int) "one registration per reason" 2
              (Border_router.drop_registrations br)));
    Alcotest.test_case "counts accumulate while metrics are disabled" `Quick
      (fun () ->
        let fx = make_fx () in
        let br = router fx in
        let was = M.enabled M.default in
        M.set_enabled M.default false;
        Fun.protect
          ~finally:(fun () -> M.set_enabled M.default was)
          (fun () ->
            for _ = 1 to 10 do
              ignore (Border_router.egress_check br ~now:now0 (egress_packet fx E_bad_mac))
            done;
            Alcotest.(check (list (pair string int)))
              "reasons tracked without registry traffic"
              [ ("bad-mac", 10) ]
              (Border_router.drop_reasons br);
            Alcotest.(check int) "no registrations" 0
              (Border_router.drop_registrations br)));
  ]

(* ------------------------------------------------------------------ *)
(* Replay window boundaries *)

let replay_tests =
  [
    Alcotest.test_case "window edge" `Quick (fun () ->
        let w = Replay_window.create ~size:64 () in
        Alcotest.(check bool) "first" true (Replay_window.check_and_update w 100L);
        Alcotest.(check bool) "older than window" false
          (Replay_window.check_and_update w 36L);
        Alcotest.(check bool) "oldest in window" true
          (Replay_window.check_and_update w 37L);
        Alcotest.(check bool) "duplicate high" false
          (Replay_window.check_and_update w 100L);
        Alcotest.(check bool) "duplicate low" false
          (Replay_window.check_and_update w 37L);
        Alcotest.(check int64) "highest" 100L (Replay_window.highest w));
    Alcotest.test_case "far-future jump clears the window" `Quick (fun () ->
        let w = Replay_window.create ~size:64 () in
        ignore (Replay_window.check_and_update w 0L);
        ignore (Replay_window.check_and_update w 1L);
        Alcotest.(check bool) "jump" true (Replay_window.check_and_update w 10_000L);
        (* Everything in the slid window is fresh: stale bits from the old
           position must have been cleared, not wrapped around. *)
        let all_fresh = ref true in
        for s = 9_937 to 9_999 do
          if not (Replay_window.check_and_update w (Int64.of_int s)) then
            all_fresh := false
        done;
        Alcotest.(check bool) "slid window fresh" true !all_fresh;
        Alcotest.(check bool) "pre-jump seq stale" false
          (Replay_window.check_and_update w 1L));
    qtest ~count:200 "never accepts a sequence twice"
      QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 150))
      (fun seqs ->
        let w = Replay_window.create ~size:64 () in
        let accepted = Hashtbl.create 64 in
        List.for_all
          (fun s ->
            let s64 = Int64.of_int s in
            if Replay_window.check_and_update w s64 then
              if Hashtbl.mem accepted s64 then false
              else (Hashtbl.add accepted s64 (); true)
            else true)
          seqs);
  ]

(* ------------------------------------------------------------------ *)
(* parse_fast == parse *)

let parse_fast_tests =
  let fx = make_fx () in
  let sc = Ephid.scratch () in
  [
    qtest ~count:300 "parse_fast == parse on valid and corrupted tokens"
      QCheck2.Gen.(
        let* hid_i = int_range 0 0xffffffff in
        let* expiry = int_range 0 0x3fffffff in
        let* corrupt = option (pair (int_range 0 15) (int_range 1 255)) in
        return (hid_i, expiry, corrupt))
      (fun (hid_i, expiry, corrupt) ->
        let e =
          Ephid.issue_random fx.keys rng ~hid:(Net.Addr.hid_of_int hid_i) ~expiry
        in
        let raw =
          match corrupt with
          | None -> Ephid.to_bytes e
          | Some (i, x) ->
              let b = Bytes.of_string (Ephid.to_bytes e) in
              Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor x));
              Bytes.to_string b
        in
        let slow =
          match Ephid.of_bytes raw with
          | Ok t -> Ephid.parse fx.keys t
          | Error m -> Error (Error.Malformed m)
        in
        Ephid.parse_fast fx.keys sc raw = slow);
    Alcotest.test_case "wrong size rejected" `Quick (fun () ->
        Alcotest.(check bool) "short" true
          (Result.is_error (Ephid.parse_fast fx.keys sc "short"));
        Alcotest.(check bool) "long" true
          (Result.is_error
             (Ephid.parse_fast fx.keys sc (String.make (Ephid.size + 1) 'a'))));
  ]

(* ------------------------------------------------------------------ *)
(* Allocation budget of the cached burst path *)

let alloc_tests =
  [
    Alcotest.test_case "cached egress burst allocates nothing per packet"
      `Quick (fun () ->
        let fx = make_fx () in
        let br = router fx in
        let n = Border_router.max_burst in
        let pkts = Array.init n (fun _ -> egress_packet fx E_valid) in
        let store = Border_router.Burst.create () in
        let m_was = M.enabled M.default and s_was = Span.enabled Span.default in
        M.set_enabled M.default false;
        Span.set_enabled Span.default false;
        Fun.protect
          ~finally:(fun () ->
            M.set_enabled M.default m_was;
            Span.set_enabled Span.default s_was)
          (fun () ->
            for _ = 1 to 3 do
              Border_router.egress_burst br ~now:now0 pkts ~n store
            done;
            let rounds = 50 in
            let w0 = Gc.minor_words () in
            for _ = 1 to rounds do
              Border_router.egress_burst br ~now:now0 pkts ~n store
            done;
            let per_pkt =
              (Gc.minor_words () -. w0) /. float_of_int (rounds * n)
            in
            Alcotest.(check bool)
              (Printf.sprintf "%.3f minor words/pkt <= 0.5" per_pkt)
              true (per_pkt <= 0.5);
            Alcotest.(check int) "no arena overflow" 0
              (Border_router.arena_overflows br)));
  ]

let () =
  Alcotest.run "apna_burst"
    [
      ("equivalence", equivalence_tests);
      ("aliasing", aliasing_tests);
      ("drop-counters", drop_counter_tests);
      ("replay-window", replay_tests);
      ("parse-fast", parse_fast_tests);
      ("allocs", alloc_tests);
    ]
