(* Unit and property tests for the discrete-event engine, the workload RNG
   and the statistics accumulators. *)

open Apna_sim

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let engine_tests =
  [
    Alcotest.test_case "events fire in time order" `Quick (fun () ->
        let e = Engine.create () in
        let log = ref [] in
        Engine.schedule e ~at:3.0 (fun () -> log := 3 :: !log);
        Engine.schedule e ~at:1.0 (fun () -> log := 1 :: !log);
        Engine.schedule e ~at:2.0 (fun () -> log := 2 :: !log);
        Engine.run e;
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
        Alcotest.(check (float 1e-9)) "clock" 3.0 (Engine.now e));
    Alcotest.test_case "ties resolve in scheduling order" `Quick (fun () ->
        let e = Engine.create () in
        let log = ref [] in
        for i = 1 to 10 do
          Engine.schedule e ~at:1.0 (fun () -> log := i :: !log)
        done;
        Engine.run e;
        Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
          (List.rev !log));
    Alcotest.test_case "events can schedule events" `Quick (fun () ->
        let e = Engine.create () in
        let count = ref 0 in
        let rec chain n =
          if n > 0 then
            Engine.schedule_in e ~delay:0.1 (fun () ->
                incr count;
                chain (n - 1))
        in
        chain 5;
        Engine.run e;
        Alcotest.(check int) "all ran" 5 !count;
        Alcotest.(check (float 1e-9)) "time advanced" 0.5 (Engine.now e));
    Alcotest.test_case "run ~until stops and sets clock" `Quick (fun () ->
        let e = Engine.create () in
        let ran = ref false in
        Engine.schedule e ~at:10.0 (fun () -> ran := true);
        Engine.run ~until:5.0 e;
        Alcotest.(check bool) "not yet" false !ran;
        Alcotest.(check (float 1e-9)) "clock at limit" 5.0 (Engine.now e);
        Engine.run e;
        Alcotest.(check bool) "eventually" true !ran);
    Alcotest.test_case "until on empty queue advances clock" `Quick (fun () ->
        let e = Engine.create () in
        Engine.run ~until:7.0 e;
        Alcotest.(check (float 1e-9)) "clock" 7.0 (Engine.now e));
    Alcotest.test_case "scheduling in the past rejected" `Quick (fun () ->
        let e = Engine.create () in
        Engine.schedule e ~at:2.0 ignore;
        Engine.run e;
        Alcotest.check_raises "raises"
          (Invalid_argument "Engine.schedule: time in the past") (fun () ->
            Engine.schedule e ~at:1.0 ignore));
    qtest "random schedules preserve order" ~count:50
      QCheck2.Gen.(list_size (int_range 1 200) (float_range 0.0 100.0))
      (fun times ->
        let e = Engine.create () in
        let fired = ref [] in
        List.iter
          (fun t -> Engine.schedule e ~at:t (fun () -> fired := t :: !fired))
          times;
        Engine.run e;
        let fired = List.rev !fired in
        List.sort compare times = fired);
    Alcotest.test_case "schedule at exactly now is accepted" `Quick (fun () ->
        let e = Engine.create () in
        let log = ref [] in
        Engine.schedule e ~at:2.0 (fun () ->
            (* From inside an event at t=2, t=2 is not "the past": a packet
               may trigger a same-instant follow-up. Ties still fire in
               scheduling order after the current event. *)
            Engine.schedule e ~at:(Engine.now e) (fun () -> log := "b" :: !log);
            Engine.schedule e ~at:(Engine.now e) (fun () -> log := "c" :: !log);
            log := "a" :: !log);
        Engine.run e;
        Alcotest.(check (list string)) "same-instant fifo" [ "a"; "b"; "c" ]
          (List.rev !log);
        Alcotest.(check (float 1e-9)) "clock unmoved" 2.0 (Engine.now e));
    Alcotest.test_case "pending counts queued events" `Quick (fun () ->
        let e = Engine.create () in
        Engine.schedule e ~at:1.0 ignore;
        Engine.schedule e ~at:2.0 ignore;
        Alcotest.(check int) "two" 2 (Engine.pending e);
        ignore (Engine.step e);
        Alcotest.(check int) "one" 1 (Engine.pending e));
    Alcotest.test_case "pop on empty heap raises, not underflows" `Quick
      (fun () ->
        let e = Engine.create () in
        Alcotest.check_raises "raises"
          (Invalid_argument "Engine.pop: empty heap") (fun () ->
            ignore (Engine.pop e : unit -> unit));
        (* The failed pop must not corrupt the heap: it still works. *)
        let ran = ref false in
        Engine.schedule e ~at:1.0 (fun () -> ran := true);
        Engine.run e;
        Alcotest.(check bool) "still functional" true !ran);
    Alcotest.test_case "run on empty engine is a no-op" `Quick (fun () ->
        let e = Engine.create () in
        Engine.run e;
        Alcotest.(check (float 1e-9)) "clock" 0.0 (Engine.now e);
        Alcotest.(check int) "pending" 0 (Engine.pending e));
  ]

let rng_tests =
  [
    Alcotest.test_case "deterministic from seed" `Quick (fun () ->
        let a = Rng.create 7L and b = Rng.create 7L in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same" (Rng.int64 a) (Rng.int64 b)
        done);
    Alcotest.test_case "split diverges" `Quick (fun () ->
        let a = Rng.create 7L in
        let b = Rng.split a in
        Alcotest.(check bool) "different" false (Rng.int64 a = Rng.int64 b));
    qtest "int in range" QCheck2.Gen.(int_range 1 1_000_000) (fun n ->
        let rng = Rng.create (Int64.of_int n) in
        let v = Rng.int rng n in
        0 <= v && v < n);
    qtest "float in unit interval" QCheck2.Gen.(int_range 0 1000) (fun s ->
        let rng = Rng.create (Int64.of_int s) in
        let f = Rng.float rng in
        0.0 <= f && f < 1.0);
    Alcotest.test_case "exponential has the right mean" `Quick (fun () ->
        let rng = Rng.create 11L in
        let n = 50_000 in
        let sum = ref 0.0 in
        for _ = 1 to n do
          sum := !sum +. Rng.exponential rng ~mean:3.0
        done;
        let mean = !sum /. float_of_int n in
        Alcotest.(check bool) "within 5%" true (abs_float (mean -. 3.0) < 0.15));
    Alcotest.test_case "pareto respects scale" `Quick (fun () ->
        let rng = Rng.create 13L in
        for _ = 1 to 1000 do
          Alcotest.(check bool) "\xe2\x89\xa5 xm" true
            (Rng.pareto rng ~xm:2.0 ~alpha:1.5 >= 2.0)
        done);
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let rng = Rng.create 17L in
        let a = Array.init 100 Fun.id in
        Rng.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check bool) "permutation" true (sorted = Array.init 100 Fun.id));
  ]

let stats_tests =
  [
    Alcotest.test_case "acc mean and stddev" `Quick (fun () ->
        let acc = Stats.Acc.create () in
        List.iter (Stats.Acc.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
        Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Acc.mean acc);
        Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Stats.Acc.stddev acc);
        Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Acc.min acc);
        Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Acc.max acc);
        Alcotest.(check int) "count" 8 (Stats.Acc.count acc));
    Alcotest.test_case "empty acc yields nan mean" `Quick (fun () ->
        let acc = Stats.Acc.create () in
        Alcotest.(check bool) "nan" true (Float.is_nan (Stats.Acc.mean acc)));
    Alcotest.test_case "histogram percentiles" `Quick (fun () ->
        let h = Stats.Hist.create ~buckets:1000 ~lo:0.0 ~hi:100.0 () in
        for i = 1 to 100 do
          Stats.Hist.add h (float_of_int i)
        done;
        let p50 = Stats.Hist.percentile h 0.5 in
        let p99 = Stats.Hist.percentile h 0.99 in
        Alcotest.(check bool) "p50 near 50" true (abs_float (p50 -. 50.0) < 2.0);
        Alcotest.(check bool) "p99 near 99" true (abs_float (p99 -. 99.0) < 2.0));
    Alcotest.test_case "histogram clamps out-of-range" `Quick (fun () ->
        let h = Stats.Hist.create ~buckets:10 ~lo:0.0 ~hi:10.0 () in
        Stats.Hist.add h (-5.0);
        Stats.Hist.add h 50.0;
        Alcotest.(check int) "both counted" 2 (Stats.Hist.count h));
    Alcotest.test_case "empty histogram percentile is nan" `Quick (fun () ->
        let h = Stats.Hist.create ~lo:0.0 ~hi:1.0 () in
        Alcotest.(check bool) "nan" true (Float.is_nan (Stats.Hist.percentile h 0.5)));
    Alcotest.test_case "single-sample percentiles" `Quick (fun () ->
        let h = Stats.Hist.create ~buckets:10 ~lo:0.0 ~hi:10.0 () in
        Stats.Hist.add h 4.0;
        List.iter
          (fun p ->
            let v = Stats.Hist.percentile h p in
            Alcotest.(check bool)
              (Printf.sprintf "p%.0f in sample's bucket" (p *. 100.0))
              true
              (4.0 <= v && v <= 5.0))
          [ 0.01; 0.5; 1.0 ]);
    Alcotest.test_case "clamped samples pin percentiles to the edges" `Quick
      (fun () ->
        let h = Stats.Hist.create ~buckets:10 ~lo:0.0 ~hi:10.0 () in
        Stats.Hist.add h (-100.0);
        Stats.Hist.add h 1000.0;
        let p0 = Stats.Hist.percentile h 0.01 in
        let p99 = Stats.Hist.percentile h 0.99 in
        Alcotest.(check bool) "low edge" true (0.0 <= p0 && p0 <= 1.0);
        Alcotest.(check bool) "high edge" true (9.0 <= p99 && p99 <= 10.0));
    qtest "percentiles are monotone in p" ~count:200
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 50) (float_range (-5.0) 15.0))
          (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
      (fun (samples, (p1, p2)) ->
        let h = Stats.Hist.create ~buckets:16 ~lo:0.0 ~hi:10.0 () in
        List.iter (Stats.Hist.add h) samples;
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Stats.Hist.percentile h lo <= Stats.Hist.percentile h hi);
    Alcotest.test_case "counter" `Quick (fun () ->
        let c = Stats.Counter.create () in
        Stats.Counter.incr c;
        Stats.Counter.incr ~by:5 c;
        Alcotest.(check int) "six" 6 (Stats.Counter.value c));
  ]

let () =
  Alcotest.run "apna_sim"
    [ ("engine", engine_tests); ("rng", rng_tests); ("stats", stats_tests) ]
