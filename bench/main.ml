(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§V) plus the ablations indexed in DESIGN.md.

     E1  MS-EPHID-GENERATION   §V-A3 in-text results
     E2  BR-FORWARDING         Fig. 8(a) packet-rate, Fig. 8(b) bit-rate
     E3  HEADER-OVERHEAD       Fig. 7 accounting
     E4  CONN-ESTABLISH-RTT    §VII-C latency discussion
     E5  CRYPTO-MICRO          §V-A1 primitive decomposition (Bechamel)
     E6  REVOCATION-SCALING    §VIII-G2
     E7  GRANULARITY-ABLATION  §VIII-A
     E8  REPLAY-WINDOW         §VIII-D
     E9  APIP-COMPARISON       §IX related-work contrast

   Absolute numbers are not expected to match the paper (pure OCaml vs
   AES-NI + DPDK); the shapes are. See EXPERIMENTS.md.

   Every run also emits a machine-readable BENCH_results.json next to the
   tables (schema in docs/OBSERVABILITY.md): per-frame-size throughput,
   per-stage latency percentiles, the observability-overhead check, and a
   dump of the default metrics registry.

   Run all:        dune exec bench/main.exe
   Run a subset:   dune exec bench/main.exe -- E1 E2
   Smoke run:      dune exec bench/main.exe -- --quick *)

open Apna
open Apna_crypto
module J = Apna_obs.Json
module M = Apna_obs.Metrics
module Span = Apna_obs.Span

let line fmt = Printf.printf (fmt ^^ "\n%!")

(* --quick: reduced iteration counts and only the experiments that feed the
   JSON export — the CI smoke target. *)
let quick = ref false

(* --faults: run only the E13 chaos sweep — the CI chaos-smoke target. *)
let faults_only = ref false

(* --lifetimes: run only the E14 lifetime sweep — the CI survivability
   smoke target. *)
let lifetimes_only = ref false

(* --storm: run only the E15 warrant-storm sweep — the CI broker smoke
   target. *)
let storm_only = ref false

(* --trace-scale: run only the E16 million-host trace replay; combine
   with --quick for the reduced CI smoke tier. *)
let trace_scale_only = ref false

(* --burst: run only the E17 batched fast-path comparison; combine with
   --quick for the CI smoke tier. *)
let burst_only = ref false

(* --campaign: run only the E18 adversarial-campaign sweep; combine with
   --quick for the single-tier CI smoke. *)
let campaign_only = ref false
let iters n = if !quick then max 20 (n / 20) else n

(* Sections accumulated by experiments as they run; flushed to
   BENCH_results.json at exit. *)
let json_sections : (string * J.t) list ref = ref []
let add_json name section = json_sections := (name, section) :: !json_sections

(* Set when a bench acceptance gate fails; the process then exits 1 so CI
   turns red. *)
let gate_failed = ref false

(* Telemetry timelines (sampler + alert engine) accumulated by the
   experiments that attach the sampler; flushed to telemetry.json at exit
   when non-empty (schema in docs/OBSERVABILITY.md). *)
let telemetry_sections : (string * J.t) list ref = ref []

let add_telemetry name section =
  telemetry_sections := (name, section) :: !telemetry_sections

let fired_json fired = J.List (List.map (fun r -> J.Str r) (List.sort String.compare fired))

let banner id title paper_ref =
  line "";
  line "================================================================";
  line "%s  %s" id title;
  line "    paper reference: %s" paper_ref;
  line "================================================================"

(* CPU-time per operation; iteration counts are chosen so each measurement
   runs for well above the Sys.time resolution. *)
let time_per_op ?(warmup = 3) ~iters f =
  for _ = 1 to warmup do
    f ()
  done;
  let t0 = Sys.time () in
  for _ = 1 to iters do
    f ()
  done;
  (Sys.time () -. t0) /. float_of_int iters

(* ------------------------------------------------------------------ *)
(* Shared fixtures *)

let rng = Drbg.create ~seed:"bench"
let now0 = 1_750_000_000

type br_fixture = {
  keys : Keys.as_keys;
  br : Border_router.t;
  host_kha : Keys.host_as;
  host_ephid : Ephid.t;
  host_info : Host_info.t;
  hid : Apna_net.Addr.hid;
  topology : Apna_net.Topology.t;
}

(* [ephid_cache] defaults to 0 (disabled) so the headline Fig. 8 rows keep
   measuring the full per-packet pipeline; the cache comparison below
   builds its own cached fixture. *)
let make_br_fixture ?(ephid_cache = 0) () =
  let topology = Apna_net.Topology.create () in
  let a = Apna_net.Addr.aid_of_int 64500 and b = Apna_net.Addr.aid_of_int 64501 in
  Apna_net.Topology.connect topology a b (Apna_net.Link.make ());
  let keys = Keys.make_as rng ~aid:a in
  let host_info = Host_info.create () in
  let revoked = Revocation.create () in
  let hid = Apna_net.Addr.hid_of_int 0x0a000001 in
  let host_kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
  Host_info.register host_info hid host_kha;
  let host_ephid = Ephid.issue_random keys rng ~hid ~expiry:(now0 + 86_400) in
  let br = Border_router.create ~keys ~host_info ~revoked ~topology ~ephid_cache () in
  { keys; br; host_kha; host_ephid; host_info; hid; topology }

(* A data packet whose wire size is exactly [frame] bytes, with a valid
   host MAC — what the egress pipeline sees. *)
let make_packet fx ~frame =
  let payload_len = frame - Apna_net.Apna_header.size - 1 in
  if payload_len < 0 then invalid_arg "frame too small";
  let header =
    Apna_net.Apna_header.make ~src_aid:fx.keys.aid
      ~src_ephid:(Ephid.to_bytes fx.host_ephid)
      ~dst_aid:(Apna_net.Addr.aid_of_int 64501)
      ~dst_ephid:(Ephid.to_bytes fx.host_ephid)
      ()
  in
  let pkt =
    Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data
      ~payload:(String.make payload_len 'x')
  in
  Pkt_auth.seal ~auth_key:fx.host_kha.auth pkt

(* ------------------------------------------------------------------ *)
(* E1: MS EphID generation (§V-A3) *)

let e1 () =
  banner "E1" "MS-EPHID-GENERATION" "§V-A3 (in-text table)";
  (* Workload side: reproduce the trace aggregates the paper reports. *)
  let cfg = Apna_workload.Trace.paper_config in
  let wrng = Apna_sim.Rng.create 42L in
  let peak = Apna_workload.Trace.peak_rate_measured wrng cfg ~bucket_s:1.0 in
  line "trace: %d hosts, configured peak %.0f flows/s, measured peak %.0f flows/s"
    cfg.hosts cfg.peak_rate peak;

  (* Full issuance pipeline: EphID construction + certificate signature. *)
  let keys = Keys.make_as rng ~aid:(Apna_net.Addr.aid_of_int 64500) in
  let host_info = Host_info.create () in
  let hid = Apna_net.Addr.hid_of_int 0x0a000001 in
  let kha = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32) in
  Host_info.register host_info hid kha;
  let aa_ephid = Ephid.issue_random keys rng ~hid ~expiry:(now0 + 86_400) in
  let ms = Management.create ~keys ~host_info ~rng ~aa_ephid () in
  let ephid_keys = Keys.make_ephid_keys rng in
  let sig_pub = Ed25519.public_key ephid_keys.sig_keypair in

  let requests = 20_000 in
  let t0 = Sys.time () in
  for _ = 1 to requests do
    match
      Management.issue_direct ms ~now:now0 ~hid ~kx_pub:ephid_keys.kx_public
        ~sig_pub ~lifetime:Lifetime.Medium
    with
    | Ok _ -> ()
    | Error e -> failwith (Error.to_string e)
  done;
  let elapsed = Sys.time () -. t0 in
  let per_op_us = elapsed /. float_of_int requests *. 1e6 in
  let rate = float_of_int requests /. elapsed in

  (* The wrapped path adds control-EphID validation and AEAD. *)
  let wrapped_requests = 5_000 in
  let ctrl = Ephid.issue_random keys rng ~hid ~expiry:(now0 + 86_400) in
  let request =
    Management.Client.make_request ~rng ~corr:1L ~kha ~keys:ephid_keys
      ~lifetime:Lifetime.Medium
  in
  let t0 = Sys.time () in
  for _ = 1 to wrapped_requests do
    match
      Management.handle_request ms ~now:now0 ~src_ephid:(Ephid.to_bytes ctrl)
        request
    with
    | Ok _ -> ()
    | Error e -> failwith (Error.to_string e)
  done;
  let wrapped_us = (Sys.time () -. t0) /. float_of_int wrapped_requests *. 1e6 in

  line "";
  line "%-38s %12s %14s %10s" "configuration" "us/EphID" "EphIDs/sec" "headroom";
  line "%-38s %12.1f %14.0f %9.1fx" "this repo: issue (EphID+cert)" per_op_us
    rate (rate /. cfg.peak_rate);
  line "%-38s %12.1f %14.0f %9.1fx" "this repo: full request handling"
    wrapped_us (1e6 /. wrapped_us)
    (1e6 /. wrapped_us /. cfg.peak_rate);
  (* Issuance needs no coordination between processes (paper §V-A2); the
     paper ran 4 parallel workers, so scale the same way. *)
  line "%-38s %12.1f %14.0f %9.1fx" "this repo: issue x4 processes"
    (per_op_us /. 4.0) (rate *. 4.0)
    (rate *. 4.0 /. cfg.peak_rate);
  line "%-38s %12.1f %14.0f %9.1fx" "paper (C + AES-NI, 4 cores)" 13.7 72_800.0
    (72_800.0 /. 3_888.0);
  line "";
  line "shape check: generation rate exceeds the trace's peak demand";
  line "(%0.0f/s): single-core headroom %.1fx, matched-parallelism headroom %.1fx."
    cfg.peak_rate (rate /. cfg.peak_rate) (rate *. 4.0 /. cfg.peak_rate)

(* ------------------------------------------------------------------ *)
(* E2: border router forwarding (Fig. 8) *)

(* Per-op latency samples: batches timed with the monotonic clock, so the
   distribution (not just the mean) is visible. One sample = mean ns over
   [batch] back-to-back calls. *)
let latency_samples ~samples ~batch f =
  for _ = 1 to 3 do
    f ()
  done;
  Array.init samples (fun _ ->
      let t0 = Monotonic_clock.now () in
      for _ = 1 to batch do
        f ()
      done;
      let t1 = Monotonic_clock.now () in
      Int64.to_float (Int64.sub t1 t0) /. float_of_int batch)

(* Summarize samples through an observability histogram registered as
   apna_bench_stage_ns{stage=...} — the same machinery `apnad stats`
   scrapes — and return the JSON fields. *)
let stage_summary_json name samples =
  let hi = 1.25 *. Array.fold_left Float.max 1.0 samples in
  let h =
    M.Histogram.register M.default
      ~labels:[ ("stage", name) ]
      ~help:"Per-stage single-packet latency sampled by the bench harness"
      ~buckets:512 ~lo:0.0 ~hi "apna_bench_stage_ns"
  in
  let was = M.enabled M.default in
  M.set_enabled M.default true;
  Array.iter (M.Histogram.observe h) samples;
  M.set_enabled M.default was;
  J.Obj
    [
      ("count", J.Int (M.Histogram.count h));
      ("mean_ns", J.Float (M.Histogram.mean h));
      ("p50_ns", J.Float (M.Histogram.percentile h 0.5));
      ("p90_ns", J.Float (M.Histogram.percentile h 0.9));
      ("p99_ns", J.Float (M.Histogram.percentile h 0.99));
    ]

(* The egress pipeline stages of Fig. 4, timed in isolation plus end to
   end: 1 EphID decrypt, host-info + route lookups, 1 MAC verify. *)
let pipeline_stages fx pkt =
  let raw = Ephid.to_bytes fx.host_ephid in
  [
    ( "ephid_parse",
      fun () ->
        match Ephid.of_bytes raw with
        | Ok e -> ignore (Ephid.parse fx.keys e)
        | Error _ -> () );
    ("host_lookup", fun () -> ignore (Host_info.find fx.host_info fx.hid));
    ( "mac_verify",
      fun () -> ignore (Pkt_auth.verify ~auth_key:fx.host_kha.auth pkt) );
    ( "route_lookup",
      fun () ->
        ignore
          (Apna_net.Topology.next_hop fx.topology ~src:fx.keys.aid
             ~dst:(Apna_net.Addr.aid_of_int 64501)) );
    ("egress_total", fun () -> ignore (Border_router.egress_check fx.br ~now:now0 pkt));
  ]

let e2 () =
  banner "E2" "BR-FORWARDING" "Fig. 8(a) packet-rate / Fig. 8(b) bit-rate";
  let fx = make_br_fixture () in
  (* Baseline: plain IPv4 forwarding with a 100k-route LPM table. *)
  let baseline = Apna_baseline.Ipv4_router.create () in
  Apna_baseline.Ipv4_router.synthetic_table baseline ~seed:7L ~routes:100_000;
  Apna_baseline.Ipv4_router.add_route baseline ~prefix:0 ~len:0 ~next_hop:1;
  (* The paper's testbed: 2x Xeon E5-2680 (16 cores), 6 x 2 x 10 GbE =
     120 Gbps. We model the same aggregate with per-core measured costs. *)
  let cores = 16.0 in
  let line_gbps = 120.0 in
  line "";
  line "%-7s | %11s %11s | %9s %9s %9s | %9s %9s" "size" "APNA ns/pkt"
    "IPv4 ns/pkt" "APNA Mpps" "IPv4 Mpps" "line Mpps" "APNA Gbps" "line Gbps";
  line "%s" (String.make 96 '-');
  let results =
    List.map
      (fun size ->
        let pkt = make_packet fx ~frame:size in
        let apna_ns =
          time_per_op ~iters:(iters 20_000) (fun () ->
              match Border_router.egress_check fx.br ~now:now0 pkt with
              | Ok _ -> ()
              | Error e -> failwith (Error.to_string e))
          *. 1e9
        in
        let ip_pkt =
          Apna_net.Ipv4_header.to_bytes
            (Apna_net.Ipv4_header.make ~protocol:17
               ~src:(Apna_net.Addr.hid_of_int 0x0a000001)
               ~dst:(Apna_net.Addr.hid_of_int 0x08080808)
               ~payload_len:(size - Apna_net.Ipv4_header.size)
               ())
          ^ String.make (size - Apna_net.Ipv4_header.size) 'x'
        in
        let ipv4_ns =
          time_per_op ~iters:(iters 100_000) (fun () ->
              match Apna_baseline.Ipv4_router.forward baseline ip_pkt with
              | Apna_baseline.Ipv4_router.Forwarded _ -> ()
              | Apna_baseline.Ipv4_router.Dropped e -> failwith e)
          *. 1e9
        in
        let apna_mpps = cores /. apna_ns *. 1e3 in
        let ipv4_mpps = cores /. ipv4_ns *. 1e3 in
        let line_mpps = line_gbps *. 1e9 /. (8.0 *. float_of_int size) /. 1e6 in
        let apna_deliverable = Float.min apna_mpps line_mpps in
        let apna_gbps =
          apna_deliverable *. 1e6 *. 8.0 *. float_of_int size /. 1e9
        in
        line "%5dB | %11.0f %11.0f | %9.2f %9.2f %9.2f | %9.1f %9.1f" size
          apna_ns ipv4_ns apna_mpps ipv4_mpps line_mpps apna_gbps line_gbps;
        (size, apna_ns, ipv4_ns, apna_mpps, apna_gbps))
      Apna_workload.Packet_mix.paper_sizes
  in
  line "";
  line "shape check (paper): pps falls as size grows; bit-rate rises with size";
  let _, _, _, mpps_first, gbps_first = List.hd results in
  let _, _, _, mpps_last, gbps_last = List.nth results (List.length results - 1) in
  line "  Mpps monotone decreasing: %b   Gbps increasing: %b"
    (mpps_first > mpps_last) (gbps_last > gbps_first);
  (* Substrate-scaled line rate: at what aggregate capacity would this
     implementation saturate the wire at every size, as the paper's
     hardware does at 120 Gbps? *)
  let min_gbps_capacity =
    List.fold_left
      (fun acc (size, apna_ns, _, _, _) ->
        Float.min acc (cores /. apna_ns *. 8.0 *. float_of_int size))
      infinity results
  in
  line "substrate-scaled line rate: with <= %.1f Gbps provisioned, this OCaml"
    min_gbps_capacity;
  line "router is line-rate at every packet size (the paper's Fig. 8 regime).";

  (* Per-stage latency percentiles (the paper's 1 decrypt + 2 lookups +
     1 MAC decomposition), via the observability histograms. *)
  let pkt = make_packet fx ~frame:512 in
  let samples = if !quick then 100 else 500 in
  line "";
  line "per-stage latency (512B packet, %d samples of 32-op batches):" samples;
  line "%-14s %10s %10s %10s %10s" "stage" "mean ns" "p50 ns" "p90 ns" "p99 ns";
  let stages_json =
    List.map
      (fun (name, f) ->
        let s = latency_samples ~samples ~batch:32 f in
        let j = stage_summary_json name s in
        let get k = match J.member k j with Some v -> Option.get (J.number v) | None -> nan in
        line "%-14s %10.0f %10.0f %10.0f %10.0f" name (get "mean_ns")
          (get "p50_ns") (get "p90_ns") (get "p99_ns");
        (name, j))
      (pipeline_stages fx pkt)
  in

  (* Acceptance check for the observability layer itself: with the default
     registry and span sink off (the default), the instrumented egress path
     must cost the same as before instrumentation; with both on, the delta
     is the price of full observability. *)
  let egress () =
    match Border_router.egress_check fx.br ~now:now0 pkt with
    | Ok _ -> ()
    | Error e -> failwith (Error.to_string e)
  in
  let off_ns = time_per_op ~iters:(iters 20_000) egress *. 1e9 in
  M.set_enabled M.default true;
  Span.set_enabled Span.default true;
  let on_ns = time_per_op ~iters:(iters 20_000) egress *. 1e9 in
  (* Third rung: the packet flight recorder on top of metrics + spans. *)
  Apna_obs.Event.set_enabled Apna_obs.Event.default true;
  let events_ns = time_per_op ~iters:(iters 20_000) egress *. 1e9 in
  Apna_obs.Event.set_enabled Apna_obs.Event.default false;
  Apna_obs.Event.clear Apna_obs.Event.default;
  Span.set_enabled Span.default false;
  M.set_enabled M.default false;
  line "";
  line "observability overhead on egress: disabled %.0f ns/pkt, enabled %.0f"
    off_ns on_ns;
  line "ns/pkt (metrics + spans): %+.1f%%" ((on_ns -. off_ns) /. off_ns *. 100.0);
  line "with flight-recorder events too: %.0f ns/pkt (%+.1f%% vs disabled)"
    events_ns
    ((events_ns -. off_ns) /. off_ns *. 100.0);

  (* Validated-EphID cache: steady-state cost of a flow's 2nd..Nth packet
     (cache hit skips AES-CTR decrypt + CBC-MAC verify, the revocation-list
     probe and the host_info lookup) against the full Fig. 4 pipeline on
     the cache-disabled fixture. The saving is a fixed ~per-packet amount,
     so it weighs most at small frames where the (unavoidable, size-
     proportional) packet-MAC verify is cheapest. Medians of monotonic
     batch samples keep the comparison out of timer noise. *)
  let median samples =
    let s = Array.copy samples in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let fxc = make_br_fixture ~ephid_cache:8192 () in
  let mpps ns = cores /. ns *. 1e3 in
  let cache_rows =
    List.map
      (fun frame ->
        let run fx_ pkt () =
          match Border_router.egress_check fx_.br ~now:now0 pkt with
          | Ok _ -> ()
          | Error e -> failwith (Error.to_string e)
        in
        let uncached = run fx (make_packet fx ~frame) in
        let cached = run fxc (make_packet fxc ~frame) in
        let u = median (latency_samples ~samples ~batch:32 uncached) in
        let c = median (latency_samples ~samples ~batch:32 cached) in
        (frame, u, c))
      [ 64; 512 ]
  in
  let cs = Border_router.ephid_cache_stats fxc.br in
  line "";
  line "validated-EphID cache (steady-state flow, p50 of %d batches):" samples;
  line "%-7s | %12s %12s | %10s %10s | %8s" "size" "uncached ns" "cached ns"
    "unc Mpps" "cache Mpps" "speedup";
  line "%s" (String.make 72 '-');
  List.iter
    (fun (frame, u, c) ->
      line "%5dB | %12.0f %12.0f | %10.2f %10.2f | %7.2fx" frame u c (mpps u)
        (mpps c) (u /. c))
    cache_rows;
  line "cache: %d hits, %d misses, %d invalidations, %d entries" cs.hits
    cs.misses cs.invalidations
    (Border_router.ephid_cache_size fxc.br);

  add_json "br_forwarding"
    (J.Obj
       [
         ( "frames",
           J.List
             (List.map
                (fun (size, apna_ns, ipv4_ns, apna_mpps, apna_gbps) ->
                  J.Obj
                    [
                      ("size_bytes", J.Int size);
                      ("apna_ns_per_pkt", J.Float apna_ns);
                      ("ipv4_ns_per_pkt", J.Float ipv4_ns);
                      ("apna_mpps", J.Float apna_mpps);
                      ("apna_gbps", J.Float apna_gbps);
                    ])
                results) );
         ("stages_ns", J.Obj stages_json);
         ( "obs_overhead",
           J.Obj
             [
               ("egress_ns_disabled", J.Float off_ns);
               ("egress_ns_enabled", J.Float on_ns);
               ("egress_ns_events_enabled", J.Float events_ns);
             ] );
         ( "ephid_cache",
           J.Obj
             [
               ( "frames",
                 J.List
                   (List.map
                      (fun (frame, u, c) ->
                        J.Obj
                          [
                            ("size_bytes", J.Int frame);
                            ("uncached_ns_per_pkt", J.Float u);
                            ("cached_ns_per_pkt", J.Float c);
                            ("uncached_mpps", J.Float (mpps u));
                            ("cached_mpps", J.Float (mpps c));
                            ("speedup", J.Float (u /. c));
                          ])
                      cache_rows) );
               ("hits", J.Int cs.hits);
               ("misses", J.Int cs.misses);
               ("invalidations", J.Int cs.invalidations);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* E3: header overhead (Fig. 7) *)

let e3 () =
  banner "E3" "HEADER-OVERHEAD" "Fig. 7 (header accounting)";
  line "APNA header fields: src AID 4B + src EphID 16B + dst EphID 16B";
  line "+ dst AID 4B + MAC 8B = %dB; EphID = IV 4B + ciphertext 8B + tag 4B"
    Apna_net.Apna_header.size;
  line "";
  line "%-7s | %12s %12s | %12s %12s" "frame" "APNA hdr+enc" "IPv4 hdr"
    "APNA goodput" "IPv4 goodput";
  line "%s" (String.make 64 '-');
  List.iter
    (fun size ->
      (* APNA per-packet cost: header 48 + protocol shim 1 + session frame
         (type 1 + conn 8 + seq 8) + AEAD tag 16. *)
      let apna_over = Apna_net.Apna_header.size + 1 + 17 + Aead.tag_size in
      let ipv4_over = Apna_net.Ipv4_header.size in
      let gp o = float_of_int (size - o) /. float_of_int size *. 100.0 in
      line "%5dB | %11dB %11dB | %11.1f%% %11.1f%%" size apna_over ipv4_over
        (gp apna_over) (gp ipv4_over))
    Apna_workload.Packet_mix.paper_sizes

(* ------------------------------------------------------------------ *)
(* E4: connection establishment latency (§VII-C) *)

let e4 () =
  banner "E4" "CONN-ESTABLISH-RTT" "§VII-C (latency discussion)";
  let run_case name setup =
    let net = Network.create ~seed:("e4-" ^ name) () in
    let _ = Network.add_as net 64500 ~dns_zone:"z" () in
    let _ = Network.add_as net 64502 () in
    Network.connect_as net 64500 64502 ();
    let server =
      Network.add_host net ~as_number:64500 ~name:"srv" ~credential:"s" ()
    in
    let client =
      Network.add_host net ~as_number:64502 ~name:"cli" ~credential:"c" ()
    in
    (match (Host.bootstrap server, Host.bootstrap client) with
    | Ok (), Ok () -> ()
    | _ -> failwith "bootstrap");
    setup net server client
  in
  (* Reference RTT from ping between prewarmed endpoints. *)
  let base_rtt =
    run_case "rtt" (fun net server client ->
        let sep = ref None in
        Host.request_ephid server (fun ep -> sep := Some ep);
        Network.run net;
        let sep = Option.get !sep in
        (* Warm the client's EphID pool so we time the wire, not issuance. *)
        let warmed = ref None in
        Host.request_ephid client (fun ep -> warmed := Some ep);
        Network.run net;
        let rtt = ref nan in
        Host.ping client
          ~dst_aid:(Apna_net.Addr.aid_of_int 64500)
          ~dst_ephid:sep.cert.ephid
          (fun r -> rtt := r);
        Network.run net;
        !rtt)
  in
  (* Case A: host-to-host, data on the first packet (0-RTT, §VII-C). *)
  let first_byte_0rtt =
    run_case "0rtt" (fun net server client ->
        let sep = ref None in
        Host.request_ephid server (fun ep -> sep := Some ep);
        Network.run net;
        let sep = Option.get !sep in
        let t_arrive = ref nan in
        Host.on_data server (fun ~session:_ ~data:_ ->
            t_arrive := Network.now_f net);
        let t0 = Network.now_f net in
        Host.connect client ~remote:sep.cert ~data0:"x" (fun _ -> ());
        Network.run net;
        !t_arrive -. t0)
  in
  (* Case B: client-server via a receive-only EphID, 0-RTT data. *)
  let cs_first_byte, cs_first_reply =
    run_case "cs" (fun net server client ->
        Host.publish server ~name:"svc.z" (fun () -> ());
        Network.run net;
        let dns_cert =
          Dns_service.cert
            (Option.get (As_node.dns (Network.node_exn net 64500)))
        in
        let record = ref None in
        Host.dns_lookup client ~name:"svc.z" ~dns:dns_cert (fun r -> record := r);
        Network.run net;
        let record = Option.get !record in
        let t_arrive = ref nan and t_reply = ref nan in
        Host.on_data server (fun ~session ~data:_ ->
            if Float.is_nan !t_arrive then t_arrive := Network.now_f net;
            ignore (Host.send server session "reply"));
        Host.on_data client (fun ~session:_ ~data:_ ->
            if Float.is_nan !t_reply then t_reply := Network.now_f net);
        let t0 = Network.now_f net in
        Host.connect client ~remote:record.cert ~data0:"request"
          ~expect_accept:record.receive_only (fun _ -> ());
        Network.run net;
        (!t_arrive -. t0, !t_reply -. t0))
  in
  (* Case C: client-server, no 0-RTT (privacy-conservative, 0.5 RTT more):
     data is queued until the server's Accept. *)
  let cs_no0rtt =
    run_case "cs-no0" (fun net server client ->
        Host.publish server ~name:"svc.z" (fun () -> ());
        Network.run net;
        let dns_cert =
          Dns_service.cert
            (Option.get (As_node.dns (Network.node_exn net 64500)))
        in
        let record = ref None in
        Host.dns_lookup client ~name:"svc.z" ~dns:dns_cert (fun r -> record := r);
        Network.run net;
        let record = Option.get !record in
        let t_arrive = ref nan in
        Host.on_data server (fun ~session:_ ~data:_ ->
            if Float.is_nan !t_arrive then t_arrive := Network.now_f net);
        let t0 = Network.now_f net in
        Host.connect client ~remote:record.cert ~data0:""
          ~expect_accept:record.receive_only (fun session ->
            ignore (Host.send client session "request"));
        Network.run net;
        !t_arrive -. t0)
  in
  line "";
  line "%-46s %10s %10s" "scenario" "seconds" "RTTs";
  line "%-46s %10.4f %10.2f" "reference ping RTT" base_rtt 1.0;
  let row name v = line "%-46s %10.4f %10.2f" name v (v /. base_rtt) in
  row "host-to-host, 0-RTT data (first byte at peer)" first_byte_0rtt;
  row "client-server via recv-only, 0-RTT (at server)" cs_first_byte;
  row "client-server, 0-RTT (first reply at client)" cs_first_reply;
  row "client-server, no 0-RTT (first byte at server)" cs_no0rtt;
  line "";
  line "paper: basic 1 RTT (0 with data on first packet); client-server 1.5";
  line "RTT, reducible to 0.5 (no 0-RTT data) or ~0 (0-RTT under the";
  line "recv-only key). EphID issuance round trips inside the source AS are";
  line "included in the rows above."

(* ------------------------------------------------------------------ *)
(* E5: crypto microbenchmarks (Bechamel) *)

let e5 () =
  banner "E5" "CRYPTO-MICRO" "§V-A1 (primitive decomposition)";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let fx = make_br_fixture () in
  let block = String.make 16 'b' in
  let msg1k = String.make 1024 'm' in
  let aes_key = Aes.expand (String.make 16 'k') in
  let aead_key = Aead.of_secret (String.make 32 'K') in
  let nonce = String.make 16 'n' in
  let kp = Ed25519.keypair_of_seed (String.make 32 's') in
  let signature = Ed25519.sign kp "msg" in
  let x_secret = Drbg.generate rng 32 in
  let x_peer = X25519.public_of_secret (Drbg.generate rng 32) in
  let sealed = Aead.seal ~key:aead_key ~nonce msg1k in
  let pkt = make_packet fx ~frame:512 in
  let tests =
    Test.make_grouped ~name:"crypto"
      [
        Test.make ~name:"aes128-block"
          (Staged.stage (fun () -> Aes.encrypt_block aes_key block));
        Test.make ~name:"sha256-1KiB"
          (Staged.stage (fun () -> Sha256.digest msg1k));
        Test.make ~name:"hmac-sha256-1KiB"
          (Staged.stage (fun () -> Hmac.Sha256.mac ~key:"k" msg1k));
        Test.make ~name:"ephid-issue"
          (Staged.stage (fun () ->
               Ephid.issue fx.keys
                 ~hid:(Apna_net.Addr.hid_of_int 1)
                 ~expiry:now0 ~iv:"\x00\x01\x02\x03"));
        Test.make ~name:"ephid-parse"
          (Staged.stage (fun () -> Ephid.parse fx.keys fx.host_ephid));
        Test.make ~name:"aead-seal-1KiB"
          (Staged.stage (fun () -> Aead.seal ~key:aead_key ~nonce msg1k));
        Test.make ~name:"aead-open-1KiB"
          (Staged.stage (fun () -> Aead.open_ ~key:aead_key ~nonce sealed));
        (let gcm_key = Aead.of_secret ~scheme:Aead.Gcm (String.make 32 'K') in
         Test.make ~name:"aead-gcm-seal-1KiB"
           (Staged.stage (fun () -> Aead.seal ~key:gcm_key ~nonce msg1k)));
        Test.make ~name:"pkt-mac-verify-512B"
          (Staged.stage (fun () -> Pkt_auth.verify ~auth_key:fx.host_kha.auth pkt));
        Test.make ~name:"x25519-shared"
          (Staged.stage (fun () -> X25519.scalar_mult ~scalar:x_secret ~point:x_peer));
        Test.make ~name:"ed25519-sign"
          (Staged.stage (fun () -> Ed25519.sign kp "msg"));
        Test.make ~name:"ed25519-verify"
          (Staged.stage (fun () ->
               Ed25519.verify ~pub:(Ed25519.public_key kp) ~msg:"msg" ~signature));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  line "";
  line "%-36s %14s" "primitive" "ns/op";
  line "%s" (String.make 52 '-');
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (t :: _) -> line "%-36s %14.0f" name t
         | _ -> line "%-36s %14s" name "n/a");
  line "";
  line "paper's decomposition target: EphID issue/parse are a handful of AES";
  line "operations; certificates cost one ed25519 signature; forwarding";
  line "touches only symmetric primitives."

(* ------------------------------------------------------------------ *)
(* E6: revocation list scaling (§VIII-G2) *)

let e6 () =
  banner "E6" "REVOCATION-SCALING" "§VIII-G2 (managing revoked EphIDs)";
  let keys = Keys.make_as rng ~aid:(Apna_net.Addr.aid_of_int 64500) in
  line "";
  line "%-10s | %14s %14s | %12s" "entries" "hit ns" "miss ns" "gc removes/s";
  line "%s" (String.make 58 '-');
  List.iter
    (fun n ->
      let rev = Revocation.create () in
      let samples =
        Array.init 256 (fun i ->
            Ephid.issue_random keys rng
              ~hid:(Apna_net.Addr.hid_of_int (i + 1))
              ~expiry:(now0 + 60))
      in
      for i = 1 to n do
        Revocation.revoke rev
          (Ephid.issue_random keys rng
             ~hid:(Apna_net.Addr.hid_of_int (i land 0xffffff))
             ~expiry:(now0 + 60))
          ~expiry:(now0 + 60)
      done;
      Array.iter (fun e -> Revocation.revoke rev e ~expiry:(now0 + 60)) samples;
      let i = ref 0 in
      let hit_ns =
        time_per_op ~iters:200_000 (fun () ->
            incr i;
            ignore (Revocation.is_revoked rev samples.(!i land 255)))
        *. 1e9
      in
      let miss =
        Ephid.issue_random keys rng ~hid:(Apna_net.Addr.hid_of_int 99)
          ~expiry:now0
      in
      let miss_ns =
        time_per_op ~iters:200_000 (fun () ->
            ignore (Revocation.is_revoked rev miss))
        *. 1e9
      in
      (* All entries expire at now0+60: GC at now0+61 empties the list. *)
      let t0 = Sys.time () in
      let removed = Revocation.gc rev ~now:(now0 + 61) in
      let gc_rate = float_of_int removed /. Float.max 1e-9 (Sys.time () -. t0) in
      line "%-10d | %14.0f %14.0f | %12.2e" n hit_ns miss_ns gc_rate)
    [ 1_000; 10_000; 100_000; 1_000_000 ];
  line "";
  line "shape check: O(1) lookups regardless of list size; expiry-driven GC";
  line "keeps the list bounded, as §VIII-G2 prescribes."

(* ------------------------------------------------------------------ *)
(* E7: EphID granularity ablation (§VIII-A) *)

let e7 () =
  banner "E7" "GRANULARITY-ABLATION" "§VIII-A (four granularities)";
  let flows = 12 and packets_per_flow = 4 in
  let run_granularity granularity =
    let net = Network.create ~seed:"e7" () in
    let _ = Network.add_as net 64500 () in
    let _ = Network.add_as net 64501 () in
    let _ = Network.add_as net 64502 () in
    Network.connect_as net 64500 64501 ();
    Network.connect_as net 64501 64502 ();
    let sender =
      Network.add_host net ~as_number:64500 ~name:"sender" ~credential:"s"
        ~granularity ()
    in
    let receiver =
      Network.add_host net ~as_number:64502 ~name:"recv" ~credential:"r" ()
    in
    (match (Host.bootstrap sender, Host.bootstrap receiver) with
    | Ok (), Ok () -> ()
    | _ -> failwith "bootstrap");
    let rep = ref None in
    Host.request_ephid receiver (fun ep -> rep := Some ep);
    Network.run net;
    let rep = Option.get !rep in
    (* The adversary observes all inter-AS packets (tap at the transit
       link) and records source EphIDs per connection. *)
    let observed : (int64, string list ref) Hashtbl.t = Hashtbl.create 64 in
    Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
        if pkt.proto = Apna_net.Packet.Data then begin
          match Session.Frame.of_bytes pkt.payload with
          | Ok frame ->
              let conn =
                match frame with
                | Session.Frame.Init { conn_id; _ }
                | Session.Frame.Accept { conn_id; _ }
                | Session.Frame.Data { conn_id; _ }
                | Session.Frame.Fin { conn_id; _ }
                | Session.Frame.Rekey { conn_id; _ }
                | Session.Frame.Rekey_ack { conn_id; _ } ->
                    conn_id
              in
              let l =
                match Hashtbl.find_opt observed conn with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.replace observed conn l;
                    l
              in
              l := pkt.header.src_ephid :: !l
          | Error _ -> ()
        end);
    let app_of i = Printf.sprintf "app-%d" (i mod 3) in
    for i = 1 to flows do
      Host.connect sender ~remote:rep.cert ~data0:"p0" ~app:(app_of i)
        (fun session ->
          for p = 1 to packets_per_flow - 1 do
            ignore (Host.send sender session (Printf.sprintf "p%d" p))
          done)
    done;
    Network.run net;
    let conns =
      Hashtbl.fold
        (fun c l acc -> (c, List.sort_uniq compare !l) :: acc)
        observed []
    in
    (* Inter-flow linkability: fraction of connection pairs sharing any
       source EphID (the adversary's flow-correlation success). *)
    let pairs = ref 0 and linked = ref 0 in
    List.iteri
      (fun i (_, ea) ->
        List.iteri
          (fun j (_, eb) ->
            if j > i then begin
              incr pairs;
              if List.exists (fun e -> List.mem e eb) ea then incr linked
            end)
          conns)
      conns;
    let intra =
      (* Intra-flow: can the adversary even group one flow's packets by
         source EphID? *)
      let multi = List.filter (fun (_, e) -> List.length e > 1) conns in
      float_of_int (List.length multi)
      /. float_of_int (max 1 (List.length conns))
    in
    ( Host.ephid_requests_sent sender,
      Management.issued_count (As_node.management (Network.node_exn net 64500)),
      float_of_int !linked /. float_of_int (max 1 !pairs),
      intra,
      List.length conns )
  in
  line "";
  line "%-22s | %10s %9s | %12s %14s" "granularity" "host reqs" "MS load"
    "flow-linkage" "pkt-unlinkable";
  line "%s" (String.make 78 '-');
  List.iter
    (fun (name, g) ->
      let reqs, ms_load, inter, intra, conns = run_granularity g in
      line "%-22s | %10d %9d | %11.0f%% %13.0f%%  (%d flows observed)" name
        reqs ms_load (inter *. 100.0) (intra *. 100.0) conns)
    [
      ("per-flow", Granularity.Per_flow);
      ("per-host", Granularity.Per_host);
      ("per-application", Granularity.Per_application "default");
      ("per-packet", Granularity.Per_packet);
    ];
  line "";
  line "shape check (§VIII-A): per-flow and per-packet defeat flow";
  line "correlation (0%% linkage); per-host is cheapest but fully linkable;";
  line "per-packet additionally splinters flows (packets unlinkable) at the";
  line "price of MS load."

(* ------------------------------------------------------------------ *)
(* E8: replay window (§VIII-D) *)

let e8 () =
  banner "E8" "REPLAY-WINDOW" "§VIII-D (handling replay attacks)";
  let wrng = Apna_sim.Rng.create 99L in
  let stream = 20_000 and jitter = 24 in
  line "";
  line "%-8s | %14s %16s" "window" "legit dropped" "replays accepted";
  line "%s" (String.make 44 '-');
  List.iter
    (fun size ->
      let w = Replay_window.create ~size () in
      (* Reordered delivery: each packet is delayed by a uniform jitter and
         the stream re-sorted by arrival time, which bounds displacement by
         the jitter horizon. A replayed duplicate is injected every 10
         packets. *)
      let keyed =
        Array.init stream (fun i -> (i + Apna_sim.Rng.int wrng jitter, i))
      in
      Array.sort compare keyed;
      let seqs = Array.map snd keyed in
      let legit_dropped = ref 0 and replay_accepted = ref 0 in
      Array.iteri
        (fun i s ->
          if not (Replay_window.check_and_update w (Int64.of_int s)) then
            incr legit_dropped;
          if i mod 10 = 0 then
            if Replay_window.check_and_update w (Int64.of_int s) then
              incr replay_accepted)
        seqs;
      line "%-8d | %13.2f%% %16d" size
        (float_of_int !legit_dropped /. float_of_int stream *. 100.0)
        !replay_accepted)
    [ 1; 8; 32; 64; 256 ];
  line "";
  line "shape check: duplicates are never accepted at any window size; a";
  line "window >= the reordering horizon (%d here) also never drops legit" jitter;
  line "traffic — the paper's nonce-based dedup with bounded state."

(* ------------------------------------------------------------------ *)
(* E9: APIP contrast (§IX) *)

let e9 () =
  banner "E9" "APIP-COMPARISON" "§IX (related work: APIP)";
  let n_packets = 10_000 and whitelist_after = 32 in
  let delegate = Apna_baseline.Apip_sketch.create () in
  let honest_briefs = ref 0 in
  for i = 1 to n_packets do
    (* APIP: the sender briefs until the flow is whitelisted; after that a
       malicious sender can stop (the recursive-verification gap). *)
    if i <= whitelist_after then begin
      Apna_baseline.Apip_sketch.brief delegate ~sender:1
        ~packet:(string_of_int i);
      incr honest_briefs
    end
  done;
  Apna_baseline.Apip_sketch.whitelist delegate ~flow:1;
  let apip_unattributable = n_packets - !honest_briefs in
  line "";
  line "%-44s %14s %16s" "metric (flow of 10,000 packets)" "APIP" "APNA";
  line "%-44s %14s %16s" "in-packet accountability bytes" "0"
    (Printf.sprintf "%dB/pkt" Apna_net.Apna_header.mac_size);
  line "%-44s %14s %16s" "control messages to delegate/AS"
    (Printf.sprintf "%d briefs" !honest_briefs)
    "0";
  line "%-44s %14s %16s" "delegate storage"
    (Printf.sprintf "%dB" (Apna_baseline.Apip_sketch.brief_bytes delegate))
    "0B (stateless)";
  line "%-44s %14d %16d" "packets unattributable if sender cheats"
    apip_unattributable 0;
  line "%-44s %14s %16s" "data privacy" "out of scope" "AEAD + PFS";
  line "";
  line "APNA's per-packet MAC keeps every packet attributable with no";
  line "delegate state — the gap the paper identifies in APIP (§IX)."

(* ------------------------------------------------------------------ *)
(* E10: path-proof shutoff strengthening (§VIII-C) *)

let e10 () =
  banner "E10" "PATH-PROOF" "§VIII-C (strengthening the shutoff protocol)";
  let fx = make_br_fixture () in
  let pkt = make_packet fx ~frame:512 in
  line "";
  line "%-12s | %14s %14s %14s | %16s" "path length" "cold ns/pkt"
    "cached ns/pkt" "bytes/pkt" "verify-claim ns";
  line "%s" (String.make 80 '-');
  List.iter
    (fun hops ->
      let path =
        List.init hops (fun i ->
            let k = Keys.make_as rng ~aid:(Apna_net.Addr.aid_of_int (64501 + i)) in
            (k.aid, k.dh_public))
      in
      let attest_ns =
        time_per_op ~iters:200 (fun () ->
            match Path_proof.attest ~src_keys:fx.keys ~path pkt with
            | Ok _ -> ()
            | Error e -> failwith (Error.to_string e))
        *. 1e9
      in
      (* Steady state: AS-pair keys derived once, cached by the router. *)
      let cached_keys =
        List.map
          (fun (aid, dh_pub) ->
            match Path_proof.pairwise_key fx.keys ~peer_dh_pub:dh_pub with
            | Ok k -> (aid, k)
            | Error e -> failwith (Error.to_string e))
          path
      in
      let cached_ns =
        time_per_op ~iters:10_000 (fun () ->
            ignore (Path_proof.attest_cached ~keys:cached_keys pkt))
        *. 1e9
      in
      let attestations =
        match Path_proof.attest ~src_keys:fx.keys ~path pkt with
        | Ok a -> a
        | Error e -> failwith (Error.to_string e)
      in
      let bytes = String.length (Path_proof.to_bytes attestations) in
      let claimant_aid, claimant_pub = List.hd path in
      let attestation = List.hd attestations in
      let verify_ns =
        time_per_op ~iters:5_000 (fun () ->
            match
              Path_proof.verify_claim ~src_keys:fx.keys ~claimant:claimant_aid
                ~claimant_dh_pub:claimant_pub ~attestation pkt
            with
            | Ok () -> ()
            | Error e -> failwith (Error.to_string e))
        *. 1e9
      in
      line "%-12d | %14.0f %14.0f %14d | %16.0f" hops attest_ns cached_ns bytes
        verify_ns)
    [ 1; 2; 4; 8 ];
  line "";
  line "cost grows linearly with path length (one X25519+HKDF-derived";
  line "pairwise key and one MAC per on-path AS); AS-pair keys are cacheable,";
  line "making the steady-state per-packet cost one MAC per hop."

(* ------------------------------------------------------------------ *)
(* E11: in-network replay filter (§VIII-D future work) *)

let e11 () =
  banner "E11" "REPLAY-FILTER" "§VIII-D (in-network replay detection)";
  line "";
  line "%-12s | %12s | %12s %14s" "bits/gen" "memory" "ns/packet" "fp at 100k";
  line "%s" (String.make 58 '-');
  List.iter
    (fun bits_log2 ->
      let f = Apna.Replay_filter.create ~bits_log2 ~rotate_every_s:1e9 () in
      let i = ref 0 in
      let check_ns =
        time_per_op ~iters:200_000 (fun () ->
            incr i;
            ignore
              (Apna.Replay_filter.check_and_insert f ~now:0.0
                 (string_of_int !i)))
        *. 1e9
      in
      (* FP probe on a filter loaded with 100k entries. *)
      let f2 = Apna.Replay_filter.create ~bits_log2 ~rotate_every_s:1e9 () in
      for j = 0 to 99_999 do
        ignore (Apna.Replay_filter.check_and_insert f2 ~now:0.0 ("l" ^ string_of_int j))
      done;
      let fp = ref 0 in
      let probes = 10_000 in
      for j = 0 to probes - 1 do
        if
          Apna.Replay_filter.check_and_insert f2 ~now:0.0 ("p" ^ string_of_int j)
          = Apna.Replay_filter.Replayed
        then incr fp
      done;
      line "%-12d | %9d KiB | %12.0f %13.2f%%" (1 lsl bits_log2)
        (Apna.Replay_filter.memory_bytes f / 1024)
        check_ns
        (float_of_int !fp /. float_of_int probes *. 100.0))
    [ 18; 20; 22; 24 ];
  line "";
  line "a few hundred ns of constant-time work per packet buys in-network";
  line "replay suppression; sizing the filter for packets-per-rotation";
  line "keeps the false-positive rate negligible — the practicality question";
  line "the paper leaves as future work."

(* ------------------------------------------------------------------ *)
(* E12: whole-network scale simulation *)

let e12 () =
  banner "E12" "NETWORK-SCALE" "end-to-end: all components under load";
  (* A 10-AS topology: 2 transit ASes in a core, 8 edge ASes, 6 hosts per
     edge AS, flows drawn from the calibrated workload model. *)
  let net = Network.create ~seed:"e12" () in
  let core = [ 64500; 64501 ] in
  let edges = List.init 8 (fun i -> 64510 + i) in
  List.iter (fun a -> ignore (Network.add_as net a ())) (core @ edges);
  Network.connect_as net 64500 64501 ();
  List.iteri
    (fun i e -> Network.connect_as net (List.nth core (i mod 2)) e ())
    edges;
  let wrng = Apna_sim.Rng.create 2026L in
  let hosts =
    List.concat_map
      (fun asn ->
        List.init 6 (fun i ->
            let name = Printf.sprintf "h%d-%d" asn i in
            let h = Network.add_host net ~as_number:asn ~name ~credential:name () in
            (match Host.bootstrap h with
            | Ok () -> ()
            | Error e -> failwith (Error.to_string e));
            h))
      edges
  in
  let host_arr = Array.of_list hosts in
  line "topology: %d ASes, %d hosts, %d inter-AS links" (2 + List.length edges)
    (Array.length host_arr)
    (1 + List.length edges);
  (* Every host publishes one data endpoint. *)
  let endpoints = Hashtbl.create 64 in
  Array.iter
    (fun h -> Host.request_ephid h (fun ep -> Hashtbl.replace endpoints (Host.name h) ep))
    host_arr;
  Network.run net;

  let flows = 300 in
  let setup_hist = Apna_sim.Stats.Hist.create ~lo:0.0 ~hi:0.2 () in
  let delivered = ref 0 and established = ref 0 in
  let wall0 = Sys.time () in
  for _ = 1 to flows do
    let src = host_arr.(Apna_sim.Rng.int wrng (Array.length host_arr)) in
    let dst = host_arr.(Apna_sim.Rng.int wrng (Array.length host_arr)) in
    if Host.name src <> Host.name dst then begin
      let (ep : Host.endpoint) = Hashtbl.find endpoints (Host.name dst) in
      let t0 = Network.now_f net in
      let before = List.length (Host.received dst) in
      Host.connect src ~remote:ep.cert ~data0:"payload" (fun _ -> incr established);
      Network.run net;
      if List.length (Host.received dst) > before then begin
        incr delivered;
        Apna_sim.Stats.Hist.add setup_hist (Network.now_f net -. t0)
      end
    end
  done;
  let wall = Sys.time () -. wall0 in
  line "";
  line "flows attempted            : %d" flows;
  line "sessions established       : %d" !established;
  line "first payloads delivered   : %d" !delivered;
  line "time-to-first-byte p50/p99 : %.1f ms / %.1f ms"
    (Apna_sim.Stats.Hist.percentile setup_hist 0.5 *. 1e3)
    (Apna_sim.Stats.Hist.percentile setup_hist 0.99 *. 1e3);
  line "wall time                  : %.2f s (%.0f flows/s simulated)" wall
    (float_of_int flows /. wall);
  (* Aggregate router activity across all ASes. *)
  let fwd = ref 0 and dropped = ref 0 and ok = ref 0 in
  List.iter
    (fun asn ->
      let c = Border_router.counters (As_node.border_router (Network.node_exn net asn)) in
      fwd := !fwd + c.ingress_forwarded;
      dropped := !dropped + c.dropped;
      ok := !ok + c.egress_ok)
    (core @ edges);
  line "router egress accepted     : %d packets" !ok;
  line "router transit forwards    : %d packets" !fwd;
  line "router drops               : %d" !dropped;
  line "";
  line "every flow bootstrapped, acquired EphIDs, established a key and";
  line "delivered encrypted data across a shared 10-AS core with zero drops."

(* ------------------------------------------------------------------ *)
(* E13: control-plane convergence under injected link faults *)

let e13 () =
  banner "E13" "FAULT-SWEEP"
    "loss tolerance of the retransmitting control plane";
  let open Apna_net in
  let losses = [ 0.0; 0.02; 0.05; 0.10; 0.15; 0.20 ] in
  let requests = if !quick then 10 else 40 in
  line "";
  line "%6s %5s %8s %8s %8s %9s %7s %10s" "loss" "conv" "ephid-ok" "ephid-to"
    "retries" "timeouts" "lost" "dup/reord";
  let rows =
    List.map
      (fun loss ->
        let faults =
          Link.make_faults ~loss ~duplicate:(loss /. 2.0) ~reorder:0.1
            ~jitter_ms:1.0 ()
        in
        (* Flight recorder on for the sweep: each row's journeys feed the
           "journeys" JSON section. Cleared per row so counts don't mix. *)
        let ev = Apna_obs.Event.default in
        Apna_obs.Event.clear ev;
        Apna_obs.Event.set_enabled ev true;
        let net =
          Network.create ~seed:(Printf.sprintf "e13-%.2f" loss) ()
        in
        ignore (Network.add_as net 100 ());
        ignore (Network.add_as net 200 ());
        ignore (Network.add_as net 300 ~dns_zone:"example.net" ());
        Network.connect_as net 100 200 ~link:(Link.make ~faults ()) ();
        Network.connect_as net 200 300 ~link:(Link.make ~faults ()) ();
        if loss > 0.0 then
          Network.set_host_faults net (Some (Link.make_faults ~loss ()));
        let alice =
          Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" ()
        in
        let bob =
          Network.add_host net ~as_number:300 ~name:"bob" ~credential:"b" ()
        in
        (match (Host.bootstrap alice, Host.bootstrap bob) with
        | Ok (), Ok () -> ()
        | _ -> failwith "bootstrap");
        Network.run net;
        (* Server publish, client resolve, session establishment — the
           acceptance flow — plus a batch of EphID issuances. *)
        let published = ref false in
        Host.publish bob ~name:"svc.example.net" (fun () -> published := true);
        Network.run net;
        let dns_cert =
          Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 300)))
        in
        let record = ref None in
        Host.dns_lookup alice ~name:"svc.example.net" ~dns:dns_cert (fun r ->
            record := r);
        Network.run net;
        (match !record with
        | Some r ->
            Host.connect alice ~remote:r.Dns_service.Record.cert
              ~data0:"probe" ~expect_accept:true (fun _ -> ())
        | None -> ());
        let ok = ref 0 and timed_out = ref 0 in
        for _ = 1 to requests do
          Host.request_ephid_r alice (fun result ->
              match result with
              | Ok _ -> incr ok
              | Error _ -> incr timed_out)
        done;
        Network.run net;
        let established =
          List.exists Session.established (Host.sessions alice)
        in
        let retries = Host.rpc_retries alice + Host.rpc_retries bob in
        let timeouts = Host.rpc_timeouts alice + Host.rpc_timeouts bob in
        let link_stats a b =
          Option.get (Network.link_fault_stats net a b)
        in
        let sum f =
          f (link_stats 100 200) + f (link_stats 200 300)
          + f (Network.host_fault_stats net)
        in
        let lost = sum (fun s -> s.Link.lost) in
        let duplicated = sum (fun s -> s.Link.duplicated) in
        let reordered = sum (fun s -> s.Link.reordered) in
        let converged =
          !published
          && !record <> None
          && established
          && !ok + !timed_out = requests
          && Host.pending_rpc_count alice = 0
          && Host.pending_rpc_count bob = 0
        in
        line "%5.0f%% %5s %8d %8d %8d %9d %7d %6d/%-3d" (loss *. 100.0)
          (if converged then "yes" else "NO")
          !ok !timed_out retries timeouts lost duplicated reordered;
        Apna_obs.Event.set_enabled ev false;
        let journeys = Apna_obs.Journey.assemble ev in
        let delivered =
          List.length
            (List.filter
               (fun (j : Apna_obs.Journey.t) ->
                 j.outcome = Apna_obs.Journey.Delivered)
               journeys)
        in
        if Apna_obs.Event.evicted ev > 0 then
          line "        (%d flight-recorder events evicted at %.0f%% loss)"
            (Apna_obs.Event.evicted ev) (loss *. 100.0);
        let journeys_json =
          J.Obj
            [
              ("loss", J.Float loss);
              ("total", J.Int (List.length journeys));
              ("delivered", J.Int delivered);
              ("not_delivered", J.Int (List.length journeys - delivered));
              ("events_recorded", J.Int (Apna_obs.Event.recorded ev));
              ("events_evicted", J.Int (Apna_obs.Event.evicted ev));
              ( "outcomes",
                J.Obj
                  (List.map
                     (fun (label, n) -> (label, J.Int n))
                     (Apna_obs.Journey.summary journeys)) );
            ]
        in
        (* Telemetry phase: with the convergence row measured and its
           journeys banked, pace a data flood through the same faulted
           links with the sampler + alert engine attached. Duplicated
           frames hit the session replay windows (replay-flood), lost
           frames feed the link-loss rate rule — the live-detection
           demonstration of ROADMAP item 4. *)
        let telemetry =
          if loss <= 0.0 then None
          else
            match
              List.find_opt Session.established (Host.sessions alice)
            with
            | None -> None
            | Some s ->
                let tel = Telemetry.attach net in
                let eng = Network.engine net in
                let msgs = 2000 and span_s = 3.0 in
                for i = 0 to msgs - 1 do
                  Apna_sim.Engine.schedule_in eng
                    ~delay:(span_s *. float_of_int i /. float_of_int msgs)
                    (fun () ->
                      ignore (Host.send alice s (Printf.sprintf "f%04d" i)))
                done;
                Network.run net;
                Telemetry.stop tel;
                Some
                  ( Apna_obs.Alert.fired_rules (Telemetry.alerts tel),
                    Telemetry.export tel )
        in
        ( loss,
          J.Obj
            [
              ("loss", J.Float loss);
              ("converged", J.Bool converged);
              ("ephids_ok", J.Int !ok);
              ("ephids_timeout", J.Int !timed_out);
              ("rpc_retries", J.Int retries);
              ("rpc_timeouts", J.Int timeouts);
              ("frames_lost", J.Int lost);
              ("frames_duplicated", J.Int duplicated);
              ("frames_reordered", J.Int reordered);
            ],
          journeys_json,
          converged,
          telemetry ))
      losses
  in
  Apna_obs.Event.clear Apna_obs.Event.default;
  let converged_at p =
    List.exists (fun (l, _, _, c, _) -> l = p && c) rows
  in
  line "";
  if converged_at 0.10 then
    line "acceptance: full control plane converges at 10%% loss via retries"
  else line "ACCEPTANCE FAILURE: control plane did not converge at 10%% loss";
  (* Alert gate: the 10% row's flood must trip both attack signatures. *)
  let fired_at p =
    match List.find_opt (fun (l, _, _, _, _) -> l = p) rows with
    | Some (_, _, _, _, Some (fired, _)) -> fired
    | _ -> []
  in
  let fired10 = fired_at 0.10 in
  List.iter
    (fun (l, _, _, _, t) ->
      match t with
      | Some (fired, _) ->
          line "  telemetry at %2.0f%% loss: rules fired: %s" (l *. 100.0)
            (match List.sort String.compare fired with
            | [] -> "(none)"
            | fs -> String.concat ", " fs)
      | None -> ())
    rows;
  if List.mem "replay-flood" fired10 && List.mem "link-loss" fired10 then
    line "  alert gate ok: replay-flood + link-loss fired at 10%% loss"
  else begin
    line "GATE FAIL: replay-flood/link-loss did not fire at 10%% loss";
    gate_failed := true
  end;
  add_telemetry "fault_sweep"
    (J.Obj
       [
         ( "rows",
           J.List
             (List.filter_map
                (fun (l, _, _, _, t) ->
                  Option.map
                    (fun (fired, _) ->
                      J.Obj
                        [
                          ("loss", J.Float l);
                          ("rules_fired", fired_json fired);
                        ])
                    t)
                rows) );
         ( "timeline_10pct_loss",
           match
             List.find_opt (fun (l, _, _, _, t) -> l = 0.10 && t <> None) rows
           with
           | Some (_, _, _, _, Some (_, export)) -> export
           | _ -> J.Null );
       ]);
  add_json "fault_sweep"
    (J.List (List.map (fun (_, j, _, _, _) -> j) rows));
  add_json "journeys"
    (J.List (List.map (fun (_, _, jj, _, _) -> jj) rows))

(* ------------------------------------------------------------------ *)
(* E14: session survivability across EphID lifetime boundaries *)

let e14 () =
  banner "E14" "LIFETIME-SWEEP"
    "goodput of long sessions across Short (60 s) EphID expiries";
  let open Apna_net in
  let rough =
    Link.make_faults ~loss:0.10 ~duplicate:0.05 ~reorder:0.2 ~jitter_ms:2.0 ()
  in
  (* 3x the Short lifetime of traffic in the full run, ~1x in --quick;
     each unique message goes out 4 times, 600 ms apart, against the loss. *)
  let n = if !quick then 30 else 85 in
  let copies = 4 in
  line "";
  line "%8s %8s %10s %10s %10s %9s %8s" "faults" "goodput" "migrations"
    "recoveries" "brownouts" "breaker" "retries";
  let rows =
    List.map
      (fun (label, link_faults) ->
        let net =
          Network.create ~seed:(Printf.sprintf "e14-%s" label) ()
        in
        ignore (Network.add_as net 100 ());
        ignore (Network.add_as net 200 ());
        ignore (Network.add_as net 300 ());
        let link () =
          match link_faults with
          | Some faults -> Link.make ~faults ()
          | None -> Link.make ()
        in
        Network.connect_as net 100 200 ~link:(link ()) ();
        Network.connect_as net 200 300 ~link:(link ()) ();
        let alice =
          Network.add_host net ~as_number:100 ~name:"alice" ~credential:"a" ()
        in
        let bob =
          Network.add_host net ~as_number:300 ~name:"bob" ~credential:"b" ()
        in
        (match (Host.bootstrap alice, Host.bootstrap bob) with
        | Ok (), Ok () -> ()
        | _ -> failwith "bootstrap");
        Host.set_ephid_lifetime alice Lifetime.Short;
        Network.run net;
        let bep = ref None in
        Host.request_ephid bob ~lifetime:Lifetime.Long ~receive_only:true
          (fun e -> bep := Some e);
        Network.run net;
        (* Receive-only remote: the Init retransmits until bob's Accept, so
           establishment itself survives the injected loss. *)
        let session = ref None in
        Host.connect alice ~remote:(Option.get !bep).Host.cert
          ~expect_accept:true (fun s -> session := Some s);
        Network.run net;
        let session = Option.get !session in
        let eng = Network.engine net in
        for i = 0 to n - 1 do
          let data = Printf.sprintf "m%03d" i in
          for c = 0 to copies - 1 do
            Apna_sim.Engine.schedule_in eng
              ~delay:(10.0 +. (2.0 *. float_of_int i) +. (0.6 *. float_of_int c))
              (fun () -> ignore (Host.send alice session data))
          done
        done;
        Network.run net;
        let got = List.map snd (Host.received bob) in
        let delivered = ref 0 in
        for i = 0 to n - 1 do
          if List.mem (Printf.sprintf "m%03d" i) got then incr delivered
        done;
        let goodput = float_of_int !delivered /. float_of_int n in
        let migrations = Host.migrations alice + Host.migrations bob in
        let recoveries = Host.recoveries alice + Host.recoveries bob in
        let brownouts = Host.brownout_sends alice + Host.brownout_sends bob in
        let opens = Breaker.opens (Host.issuance_breaker alice) in
        let retries = Host.rpc_retries alice + Host.rpc_retries bob in
        line "%8s %7.1f%% %10d %10d %10d %9s %8d" label (goodput *. 100.0)
          migrations recoveries brownouts
          (Breaker.state_label (Breaker.state (Host.issuance_breaker alice)))
          retries;
        ( goodput,
          migrations,
          J.Obj
            [
              ("faults", J.Str label);
              ("messages", J.Int n);
              ("copies", J.Int copies);
              ("delivered", J.Int !delivered);
              ("goodput", J.Float goodput);
              ("migrations", J.Int migrations);
              ("recoveries", J.Int recoveries);
              ("brownout_sends", J.Int brownouts);
              ("breaker_opens", J.Int opens);
              ("stale_prefetch_discards",
               J.Int (Host.stale_prefetch_discards alice));
              ("rpc_retries", J.Int retries);
            ] ))
      [ ("none", None); ("rough", Some rough) ]
  in
  line "";
  (match rows with
  | [ (g0, m0, _); (g1, m1, _) ] ->
      if g0 = 1.0 && g1 = 1.0 && m0 >= 2 && m1 >= 2 then
        line
          "acceptance: sessions crossed >=2 expiry boundaries with zero \
           delivery failures"
      else
        line
          "ACCEPTANCE FAILURE: goodput %.2f/%.2f, migrations %d/%d \
           (want 1.0/1.0 and >=2)"
          g0 g1 m0 m1
  | _ -> ());
  add_json "lifetime_sweep" (J.List (List.map (fun (_, _, j) -> j) rows))

(* ------------------------------------------------------------------ *)
(* E15: warrant storm — bulk lawful intercept racing live traffic.

   A retention-enabled ISP faces a flood of brokered linkage requests
   (deanonymize / bindings-of / attribute-packet, from an LE principal and
   a peer AS) while customer traffic keeps flowing. Sweeps budget capacity
   against a fixed request count and reports broker throughput, refusal
   breakdown, journal growth + chain verification, and the data-plane
   cost of carrying an attached-but-idle broker (gated at +10%). *)

let e15 () =
  banner "E15" "WARRANT-STORM" "brokered linkage under bulk lawful intercept";
  let module B = Apna_broker.Broker in
  let module Budget = Apna_broker.Budget in
  let module Journal = Apna_broker.Journal in
  let le_key = "le-storm-key" and peer_key = "peer-storm-key" in

  (* A retention ISP with one local and one remote customer, plus a pile
     of directly-issued EphIDs so the retention log has real depth. *)
  let build_net () =
    let net = Network.create ~seed:"warrant-storm" () in
    let isp = Network.add_as net 100 ~retention:true () in
    let _ = Network.add_as net 300 () in
    Network.connect_as net 100 300 ();
    let alice =
      Network.add_host net ~as_number:100 ~name:"alice"
        ~credential:"alice@isp" ()
    in
    let bob =
      Network.add_host net ~as_number:300 ~name:"bob" ~credential:"bob" ()
    in
    (match (Host.bootstrap alice, Host.bootstrap bob) with
    | Ok (), Ok () -> ()
    | _ -> failwith "bootstrap failed");
    let bep = ref None in
    Host.request_ephid bob (fun e -> bep := Some e);
    Network.run net;
    (* Live session whose packets race the storm. *)
    let session = ref None in
    Host.connect alice ~remote:(Option.get !bep).cert ~data0:"live"
      (fun s -> session := Some s);
    Network.run net;
    (net, isp, alice, Option.get !session)
  in

  let populate isp ~subscribers ~per_subscriber =
    let mgmt = As_node.management isp in
    let now = now0 in
    let issued = ref [] in
    for s = 0 to subscribers - 1 do
      let hid = Apna_net.Addr.hid_of_int (0x0a100000 + s) in
      for _ = 1 to per_subscriber do
        let ek = Keys.make_ephid_keys rng in
        match
          Management.issue_direct mgmt ~now ~hid ~kx_pub:ek.kx_public
            ~sig_pub:(Ed25519.public_key ek.sig_keypair)
            ~lifetime:Lifetime.Long
        with
        | Ok cert -> issued := (hid, cert.Cert.ephid) :: !issued
        | Error e -> failwith (Error.to_string e)
      done
    done;
    let audit = Option.get (As_node.audit isp) in
    (* Egress evidence for half the issued EphIDs. *)
    List.iteri
      (fun i (_, ephid) ->
        if i mod 2 = 0 then
          Audit.record_egress audit ~now ~ephid
            ~digest:(Printf.sprintf "digest-%d" i))
      !issued;
    Array.of_list (List.rev !issued)
  in

  (* One storm at a given budget capacity: [requests] broker calls (80%
     LE, 20% peer AS) interleaved with live data-plane traffic. *)
  let run_storm ~net ~isp ~alice ~session ~issued ~capacity ~requests =
    let broker =
      B.for_node isp
        ~budget:
          (Budget.create ~epoch_s:3600 ~capacity
             ~refill:(max 1 (capacity / 10)) ())
    in
    let now = Network.now_unix net in
    B.register_requester broker ~id:"le" ~role:B.Law_enforcement ~key:le_key
      ~now;
    B.register_requester broker ~id:"peer" ~role:B.Peer_as ~key:peer_key ~now;
    let pick = Apna_sim.Rng.create (Int64.of_int (0x5702 + capacity)) in
    let n_issued = Array.length issued in
    let grants = ref 0 in
    let refusals = Hashtbl.create 8 in
    let live_sent = ref 0 in
    let t0 = Monotonic_clock.now () in
    for i = 0 to requests - 1 do
      let le = Apna_sim.Rng.float pick < 0.8 in
      let id = if le then "le" else "peer" in
      let key = if le then le_key else peer_key in
      let query =
        let r = Apna_sim.Rng.float pick in
        if le && r < 0.5 then
          B.Request.Deanonymize (snd issued.(Apna_sim.Rng.int pick n_issued))
        else if le && r < 0.7 then
          B.Request.Bindings_of (fst issued.(Apna_sim.Rng.int pick n_issued))
        else
          (* Half the attribution probes name digests that were never
             retained — failed queries are charged too. *)
          B.Request.Attribute_packet
            (Printf.sprintf "digest-%d" (Apna_sim.Rng.int pick (2 * n_issued)))
      in
      let req =
        B.Request.sign ~key ~corr:(Int64.of_int i) ~requester:id ~query
      in
      (match B.handle broker ~now:(Network.now_unix net) req with
      | B.Response.Granted _ -> incr grants
      | B.Response.Refused { reason; _ } ->
          let k = Error.kind_label reason in
          Hashtbl.replace refusals k
            (1 + Option.value ~default:0 (Hashtbl.find_opt refusals k)));
      (* Live traffic races the storm: one data frame per 50 requests. *)
      if i mod 50 = 0 then begin
        (match Host.send alice session (Printf.sprintf "live-%d" i) with
        | Ok () -> incr live_sent
        | Error _ -> ());
        Network.run net
      end
    done;
    let elapsed_ns = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) in
    let throughput = float_of_int requests /. (elapsed_ns /. 1e9) in
    let j = B.journal broker in
    let verified = Result.is_ok (B.verify_journal broker) in
    if not verified then begin
      line "GATE FAIL: journal chain broken at capacity %d" capacity;
      gate_failed := true
    end;
    let refusal_total = Hashtbl.fold (fun _ n a -> n + a) refusals 0 in
    ( capacity, requests, !grants, refusal_total,
      Hashtbl.fold (fun k n a -> (k, n) :: a) refusals [],
      throughput, Journal.appended j, Journal.length j, verified, !live_sent )
  in

  let capacities = if !quick then [ 50; 500 ] else [ 50; 500; 5000 ] in
  let requests = if !quick then 600 else 1500 in
  let net, isp, alice, session = build_net () in
  let issued =
    populate isp
      ~subscribers:(if !quick then 100 else 400)
      ~per_subscriber:5
  in
  line "retention log: %d issuance / %d egress entries, storm of %d requests"
    (Audit.issuance_count (Option.get (As_node.audit isp)))
    (Audit.egress_count (Option.get (As_node.audit isp)))
    requests;
  line "";
  line "%8s | %8s %8s %8s | %10s | %16s %8s | %5s" "capacity" "requests"
    "grants" "refused" "req/s" "journal app/kept" "live" "ok";
  line "%s" (String.make 92 '-');
  let rows =
    List.map
      (fun capacity ->
        let ( cap, reqs, grants, refused, breakdown, rps, appended, kept,
              verified, live ) =
          run_storm ~net ~isp ~alice ~session ~issued ~capacity ~requests
        in
        line "%8d | %8d %8d %8d | %10.0f | %8d %7d | %5d %5s" cap reqs grants
          refused rps appended kept live
          (if verified then "ok" else "BROKEN");
        List.iter (fun (k, n) -> line "%25s- %s: %d" "" k n) breakdown;
        (cap, reqs, grants, refused, breakdown, rps, appended, kept, verified)
      )
      capacities
  in

  (* Data-plane gate: an attached-but-idle broker must not tax the ingress
     path. Same packet, same node, measured with the broker installed
     (above) vs a twin network that never attached one. *)
  let ingress_samples net isp =
    let node300 = Network.node_exn net 300 in
    ignore node300;
    let alice_host =
      List.find (fun h -> Host.name h = "alice") (As_node.hosts isp)
    in
    let kha = Option.get (Host.kha alice_host) in
    let ep = List.hd (Host.endpoints alice_host) in
    let header =
      Apna_net.Apna_header.make
        ~src_aid:(Apna_net.Addr.aid_of_int 300)
        ~src_ephid:(Ephid.to_bytes ep.Host.cert.Cert.ephid)
        ~dst_aid:(Apna_net.Addr.aid_of_int 100)
        ~dst_ephid:(Ephid.to_bytes ep.Host.cert.Cert.ephid)
        ()
    in
    let pkt =
      Pkt_auth.seal ~auth_key:kha.auth
        (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data
           ~payload:(String.make 64 'x'))
    in
    let br = As_node.border_router isp in
    let now = Network.now_unix net in
    latency_samples
      ~samples:(if !quick then 100 else 400)
      ~batch:32
      (fun () -> ignore (Border_router.ingress_check br ~now pkt))
  in
  let median samples =
    let s = Array.copy samples in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let p99 samples =
    let s = Array.copy samples in
    Array.sort compare s;
    s.(min (Array.length s - 1) (Array.length s * 99 / 100))
  in
  let with_broker = ingress_samples net isp in
  let net2, isp2, _alice2, _session2 = build_net () in
  ignore net2;
  let without_broker = ingress_samples net2 isp2 in
  let b50 = median without_broker and w50 = median with_broker in
  let b99 = p99 without_broker and w99 = p99 with_broker in
  line "";
  line "data-plane ingress, 64B frames (broker idle vs absent):";
  line "  p50 %.0f ns vs %.0f ns (%+.1f%%), p99 %.0f ns vs %.0f ns" w50 b50
    ((w50 -. b50) /. b50 *. 100.0)
    w99 b99;
  (* 10% gate with a small absolute floor so sub-microsecond timer jitter
     cannot flip CI. *)
  if w50 -. b50 > Float.max (0.10 *. b50) 150.0 then begin
    line "GATE FAIL: idle broker added %.0f ns to the cached ingress path"
      (w50 -. b50);
    gate_failed := true
  end
  else line "  gate ok: idle broker within 10%% of broker-free ingress";

  (* Telemetry phase: one more storm, this time paced on the event engine
     with the sampler + alert engine attached, against a deliberately tiny
     budget — the broker-budget-drain signature must fire as the budget
     empties (ROADMAP item 4 live detection). *)
  let tel = Telemetry.attach net in
  let drain_broker =
    B.for_node isp ~budget:(Budget.create ~capacity:8 ~refill:1 ())
  in
  B.register_requester drain_broker ~id:"le-drain" ~role:B.Law_enforcement
    ~key:le_key ~now:(Network.now_unix net);
  let eng = Network.engine net in
  let n_issued = Array.length issued in
  let drain_requests = 40 and drain_span = 4.0 in
  for i = 0 to drain_requests - 1 do
    Apna_sim.Engine.schedule_in eng
      ~delay:(drain_span *. float_of_int i /. float_of_int drain_requests)
      (fun () ->
        ignore
          (B.handle drain_broker ~now:(Network.now_unix net)
             (B.Request.sign ~key:le_key
                ~corr:(Int64.of_int (100_000 + i))
                ~requester:"le-drain"
                ~query:
                  (B.Request.Deanonymize (snd issued.(i mod n_issued))))))
  done;
  Network.run net;
  Telemetry.stop tel;
  let drain_fired = Apna_obs.Alert.fired_rules (Telemetry.alerts tel) in
  line "";
  line "telemetry drain storm (%d requests over %.0f s, capacity 8): rules fired: %s"
    drain_requests drain_span
    (match List.sort String.compare drain_fired with
    | [] -> "(none)"
    | fs -> String.concat ", " fs);
  if Apna_obs.Alert.has_fired (Telemetry.alerts tel) "broker-budget-drain"
  then line "  alert gate ok: broker-budget-drain fired during the drain"
  else begin
    line "GATE FAIL: broker-budget-drain did not fire during the drain";
    gate_failed := true
  end;
  add_telemetry "warrant_storm"
    (J.Obj
       [
         ("rules_fired", fired_json drain_fired);
         ("timeline", Telemetry.export tel);
       ]);

  add_json "warrant_storm"
    (J.Obj
       [
         ( "storms",
           J.List
             (List.map
                (fun ( cap, reqs, grants, refused, breakdown, rps, appended,
                       kept, verified ) ->
                  J.Obj
                    [
                      ("budget_capacity", J.Int cap);
                      ("requests", J.Int reqs);
                      ("grants", J.Int grants);
                      ("refusals", J.Int refused);
                      ( "refusals_by_reason",
                        J.Obj
                          (List.map (fun (k, n) -> (k, J.Int n)) breakdown) );
                      ("broker_rps", J.Float rps);
                      ("journal_appended", J.Int appended);
                      ("journal_retained", J.Int kept);
                      ("journal_verified", J.Bool verified);
                    ])
                rows) );
         ( "data_plane",
           J.Obj
             [
               ("idle_broker_p50_ns", J.Float w50);
               ("no_broker_p50_ns", J.Float b50);
               ("idle_broker_p99_ns", J.Float w99);
               ("no_broker_p99_ns", J.Float b99);
               ("gate_ok", J.Bool (not !gate_failed));
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* E16: TRACE-SCALE — the §V-A3 claim made measurable (ROADMAP item 1).

   Replays the full 1,266,598-host diurnal trace, time-compressed
   (Trace.compress), through the real stack: every host enters host_info
   via the Registry's bulk-admission path, issuance latency is measured on
   the real encrypted MS wire path (single and batched), and every flow's
   first packet runs the complete border-router egress pipeline at the
   source AS plus the ingress pipeline at the destination AS. A pair of
   full Host.t endpoints (whose prefetcher uses the batch issuance RPC)
   keeps a live session exchanging data frames throughout the replay, and
   periodic checkpoints advance simulated time, revoke a trickle of
   EphIDs and run the Revocation/Audit gcs that PR 7 made O(changes).

   Two deliberate stand-ins keep the replay honest about what it measures:
   the bulk population's data EphIDs are minted directly with the AS keys
   (same wire format, same per-packet pipeline cost; the MS issuance cost
   is measured separately on real sampled requests rather than paid
   1.27 M times), and flows between bulk hosts carry one packet each (the
   per-flow marginal cost; sustained per-packet forwarding is E2's
   measurement).

   Gates: wall-clock flows/s over the peak window must beat the paper's
   3,888 flows/s arrival peak, and p99 per-grant issuance latency plus
   peak live words must stay within 10% of the recorded baseline
   (bench/trace_scale_baseline.json). *)

let g_scale_population =
  M.Gauge.register M.default "apna_scale_population"
    ~help:"Hosts admitted into host_info by the E16 trace replay"

let g_scale_peak_live_words =
  M.Gauge.register M.default "apna_scale_peak_live_words"
    ~help:"Peak live heap words observed during the E16 trace replay"

let g_scale_peak_flows_per_s =
  M.Gauge.register M.default "apna_scale_peak_flows_per_s"
    ~help:"Wall-clock flows/s sustained over the E16 peak window"

let c_scale_flows =
  M.Counter.register M.default "apna_scale_flows_replayed_total"
    ~help:"Flows replayed end-to-end by E16 (egress + ingress checked)"

let trace_scale_baseline_path = "bench/trace_scale_baseline.json"

let e16 () =
  banner "E16" "TRACE-SCALE" "§V-A3: 1,266,598 hosts, 3,888 flows/s peak";
  M.set_enabled M.default true;
  let paper = Apna_workload.Trace.paper_config in
  (* Full tier: the whole paper population, the day compressed 2000x
     (~43 s of simulated time, ~100k flows). Smoke tier: a 40k-host
     slice, the day compressed into 3 s. *)
  let population = if !quick then 40_000 else paper.hosts in
  let factor = if !quick then 28_800.0 else 2_000.0 in
  let cfg =
    Apna_workload.Trace.compress { paper with hosts = population } ~factor
  in
  line "population %d hosts, day compressed %.0fx -> %.1f s window, peak at %.1f s"
    population factor cfg.duration_s cfg.peak_at_s;

  let net = Network.create ~seed:"trace-scale" () in
  let src_as = Network.add_as net 100 ~retention:true ~expected_hosts:population () in
  let dst_as = Network.add_as net 300 () in
  Network.connect_as net 100 300 ();
  let epoch0 = Network.now_unix net in

  (* Phase 1 — bulk admission: the whole population enters the sharded
     registry/host_info through Registry.admit, then gets a data-plane
     EphID minted with the AS keys. Keeping [admissions] and [data_ephids]
     live is what the peak-live-words gauge measures. *)
  let reg = As_node.registry src_as in
  let as_keys = As_node.keys src_as in
  let t0 = Monotonic_clock.now () in
  let admissions =
    Array.init population (fun i ->
        Registry.admit reg ~now:epoch0
          ~credential:(Printf.sprintf "h%d" i)
          ~shared_secret:(Drbg.generate rng 32))
  in
  let admit_s =
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
  in
  let data_expiry = epoch0 + (2 * 86_400) in
  let t0 = Monotonic_clock.now () in
  let data_ephids =
    Array.map
      (fun (a : Registry.admission) ->
        Ephid.to_bytes (Ephid.issue_random as_keys rng ~hid:a.hid ~expiry:data_expiry))
      admissions
  in
  let mint_s =
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
  in
  M.Gauge.set g_scale_population (float_of_int population);
  Gc.full_major ();
  let live_after_admit = (Gc.stat ()).live_words in
  line "admitted %d hosts in %.1f s (%.0f hosts/s), data EphIDs in %.1f s"
    population admit_s (float_of_int population /. admit_s) mint_s;
  line "live heap after admission: %d words (%.1f words/host)"
    live_after_admit
    (float_of_int live_after_admit /. float_of_int population);
  line "registry shards: %d, customer lookup cost: O(1) (last_lookup_cost=%d)"
    (Host_info.shard_count (As_node.host_info src_as))
    (ignore (Registry.credential_of_hid reg admissions.(0).hid);
     Registry.last_lookup_cost reg);

  (* Phase 2 — issuance latency on the real encrypted wire path, single
     vs batched, over a sample of admitted hosts. Client key generation
     (X25519 + Ed25519 keygen) happens ahead of need in real hosts — the
     prefetcher — so it is excluded from the timed request round. *)
  let ms = As_node.management src_as in
  let batch_size = 8 in
  let samples = if !quick then 40 else 400 in
  let time_round f =
    let t0 = Monotonic_clock.now () in
    f ();
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0)
  in
  let single_ns = Array.make samples 0.0 in
  let batch_ns = Array.make samples 0.0 in
  for i = 0 to samples - 1 do
    let a = admissions.(i) in
    let src_ephid = Ephid.to_bytes a.ctrl_ephid in
    let keys1 = Keys.make_ephid_keys rng in
    single_ns.(i) <-
      time_round (fun () ->
          let req =
            Management.Client.make_request ~rng ~corr:(Int64.of_int i)
              ~kha:a.kha ~keys:keys1 ~lifetime:Lifetime.Medium
          in
          match Management.handle_request ms ~now:epoch0 ~src_ephid req with
          | Ok reply -> (
              match Management.Client.read_reply ~kha:a.kha reply with
              | Ok _ -> ()
              | Error e -> failwith (Error.to_string e))
          | Error e -> failwith (Error.to_string e));
    let keys_n = List.init batch_size (fun _ -> Keys.make_ephid_keys rng) in
    batch_ns.(i) <-
      time_round (fun () ->
          let req =
            Management.Client.make_batch_request ~rng ~corr:(Int64.of_int i)
              ~kha:a.kha ~keys:keys_n ~lifetime:Lifetime.Medium
          in
          match Management.handle_request ms ~now:epoch0 ~src_ephid req with
          | Ok reply -> (
              match Management.Client.read_batch_reply ~kha:a.kha reply with
              | Ok certs when List.length certs = batch_size -> ()
              | Ok _ -> failwith "batch reply count mismatch"
              | Error e -> failwith (Error.to_string e))
          | Error e -> failwith (Error.to_string e))
  done;
  let pct arr p =
    let s = Array.copy arr in
    Array.sort compare s;
    s.(min (samples - 1) (samples * p / 100))
  in
  let per_grant arr p = pct arr p /. float_of_int batch_size /. 1e3 in
  let single_p50 = pct single_ns 50 /. 1e3
  and single_p99 = pct single_ns 99 /. 1e3 in
  let grant_p50 = per_grant batch_ns 50 and grant_p99 = per_grant batch_ns 99 in
  line "";
  line "issuance latency over %d sampled requests (encrypted wire path):" samples;
  line "  single grant:              p50 %8.0f us   p99 %8.0f us" single_p50
    single_p99;
  line "  batched, per grant (n=%d): p50 %8.0f us   p99 %8.0f us" batch_size
    grant_p50 grant_p99;
  line "  batch requests served: %d (amortizes envelope + DRBG across %d grants)"
    (Management.batch_request_count ms)
    batch_size;

  (* Live endpoints: a full Host.t pair whose prefetcher refills over the
     batch RPC, with a session that exchanges data frames at every
     checkpoint of the replay. *)
  let alice =
    Network.add_host net ~as_number:100 ~name:"alice" ~credential:"alice@scale" ()
  in
  let bob = Network.add_host net ~as_number:300 ~name:"bob" ~credential:"bob@scale" () in
  (match (Host.bootstrap alice, Host.bootstrap bob) with
  | Ok (), Ok () -> ()
  | _ -> failwith "bootstrap failed");
  let bep = ref None in
  Host.request_ephid bob (fun e -> bep := Some e);
  Network.run net;
  let session = ref None in
  Host.connect alice ~remote:(Option.get !bep).cert ~data0:"scale-live"
    (fun s -> session := Some s);
  Network.run net;
  let session = Option.get !session in
  (* Telemetry rides the replay's checkpoints: each one advances simulated
     time (the sampler ticks through the advance) and re-arms the tick for
     the next stretch. The exported timeline shows the revocation-list
     growth and live-session indicators across the compressed day. *)
  let tel = Telemetry.attach net in

  (* Destination side: a small rack of admitted servers at AS 300 the
     bulk flows address; the ingress pipeline resolves and delivers to
     their HIDs. *)
  let n_servers = 16 in
  let dst_reg = As_node.registry dst_as in
  let dst_keys = As_node.keys dst_as in
  let server_ephids =
    Array.init n_servers (fun i ->
        let a =
          Registry.admit dst_reg ~now:epoch0
            ~credential:(Printf.sprintf "srv%d" i)
            ~shared_secret:(Drbg.generate rng 32)
        in
        Ephid.to_bytes
          (Ephid.issue_random dst_keys rng ~hid:a.hid ~expiry:data_expiry))
  in

  (* Phase 3 — the replay. One packet per flow: header build + host MAC
     seal + egress pipeline at AS 100 + ingress pipeline at AS 300.
     Checkpoints every 1/32 of the window advance simulated time, revoke
     a trickle of data EphIDs, gc the revocation list and the retention
     log, and push a live data frame through the real session. The peak
     window [peak-10%, peak+10%] is timed separately (checkpoints
     deferred while inside it) and gated against the paper's 3,888/s. *)
  let src_br = As_node.border_router src_as in
  let dst_br = As_node.border_router dst_as in
  let audit = Option.get (As_node.audit src_as) in
  let revoked = As_node.revoked src_as in
  let src_aid = Apna_net.Addr.aid_of_int 100 in
  let dst_aid = Apna_net.Addr.aid_of_int 300 in
  let wrng = Apna_sim.Rng.create 1616L in
  let cp_every = cfg.duration_s /. 32.0 in
  let win_lo = cfg.peak_at_s -. (0.10 *. cfg.duration_s)
  and win_hi = cfg.peak_at_s +. (0.10 *. cfg.duration_s) in
  let flows = ref 0
  and drops = ref 0
  and delivered = ref 0
  and live_frames = ref 0
  and revoked_n = ref 0
  and gc_removed = ref 0
  and audit_gc_removed = ref 0 in
  let peak_flows = ref 0 and peak_ns = ref 0.0 and peak_t0 = ref Int64.zero in
  let in_window = ref false in
  let peak_live_words = ref live_after_admit in
  let next_cp = ref cp_every in
  let sim_advanced = ref 0.0 in
  let checkpoint at =
    (* Keep the network clock abreast of trace time for the live pair. *)
    Network.advance_time net (at -. !sim_advanced);
    sim_advanced := at;
    let now = Network.now_unix net in
    (* A trickle of revocations with short expiries: later checkpoints'
       gcs collect them, proving the sweep runs against live load. *)
    for _ = 1 to 2 do
      let v = Apna_sim.Rng.int wrng population in
      Revocation.revoke revoked
        (Result.get_ok (Ephid.of_bytes data_ephids.(v)))
        ~expiry:(now + int_of_float (2.0 *. cp_every) + 1);
      incr revoked_n
    done;
    gc_removed := !gc_removed + Revocation.gc revoked ~now;
    audit_gc_removed := !audit_gc_removed + Audit.gc audit ~now;
    (match Host.send alice session (Printf.sprintf "live-%d" now) with
    | Ok () -> incr live_frames
    | Error _ -> ());
    Telemetry.kick tel;
    Network.run net
  in
  let t_replay = Monotonic_clock.now () in
  Apna_workload.Trace.iter wrng cfg (fun flow ->
      (* Peak-window bracketing (flows arrive in start order). *)
      if (not !in_window) && flow.start >= win_lo && flow.start < win_hi
      then begin
        in_window := true;
        peak_t0 := Monotonic_clock.now ()
      end
      else if !in_window && flow.start >= win_hi then begin
        in_window := false;
        peak_ns :=
          Int64.to_float (Int64.sub (Monotonic_clock.now ()) !peak_t0);
        (* Live-words sample right after the hottest part of the day. *)
        Gc.full_major ();
        peak_live_words := max !peak_live_words (Gc.stat ()).live_words
      end;
      if (not !in_window) && flow.start >= !next_cp then begin
        checkpoint flow.start;
        next_cp := !next_cp +. cp_every
      end;
      let a = admissions.(flow.host) in
      let header =
        Apna_net.Apna_header.make ~src_aid ~src_ephid:data_ephids.(flow.host)
          ~dst_aid
          ~dst_ephid:server_ephids.(flow.host mod n_servers)
          ()
      in
      let pkt =
        Pkt_auth.seal ~auth_key:a.kha.auth
          (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data
             ~payload:"trace-scale flow")
      in
      let now = epoch0 + int_of_float flow.start in
      (match Border_router.egress_check src_br ~now pkt with
      | Ok _ -> (
          match Border_router.ingress_check dst_br ~now pkt with
          | Ok (Border_router.Deliver _) -> incr delivered
          | Ok (Border_router.Forward _) -> failwith "unexpected transit"
          | Error _ -> incr drops)
      | Error _ -> incr drops);
      incr flows;
      if !in_window then incr peak_flows;
      M.Counter.incr c_scale_flows);
  let replay_ns =
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t_replay)
  in
  let replay_s = replay_ns /. 1e9 in
  let overall_fps = float_of_int !flows /. replay_s in
  let peak_fps = float_of_int !peak_flows /. (!peak_ns /. 1e9) in
  Gc.full_major ();
  peak_live_words := max !peak_live_words (Gc.stat ()).live_words;
  M.Gauge.set g_scale_peak_live_words (float_of_int !peak_live_words);
  M.Gauge.set g_scale_peak_flows_per_s peak_fps;
  line "";
  line "replayed %d flows in %.1f s wall (%.0f flows/s overall)" !flows
    replay_s overall_fps;
  line "  delivered %d, dropped %d (%d EphIDs revoked mid-replay)" !delivered
    !drops !revoked_n;
  line "  revocation gc removed %d, audit gc removed %d (cost: last sweep %d/%d probes)"
    !gc_removed !audit_gc_removed
    (Revocation.last_gc_cost revoked)
    (Audit.last_gc_cost audit);
  line "  live session: %d data frames interleaved" !live_frames;
  line "  peak window [%.1f, %.1f): %d flows in %.2f s wall = %.0f flows/s"
    win_lo win_hi !peak_flows (!peak_ns /. 1e9) peak_fps;
  line "  peak live heap: %d words (%.1f words/host)" !peak_live_words
    (float_of_int !peak_live_words /. float_of_int population);
  (* Drain: jump past the §VIII-H retention window and the revocation
     expiries, then gc both — the heap-driven sweeps must reclaim a full
     day of retained state in one pass, at a cost proportional to what
     they remove, and the heap must shrink back. *)
  let drain_now = Network.now_unix net + (8 * 86_400) in
  let t0 = Monotonic_clock.now () in
  let drain_audit = Audit.gc audit ~now:drain_now in
  let drain_revoked = Revocation.gc revoked ~now:drain_now in
  let drain_ms =
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6
  in
  let audit_drain_cost = Audit.last_gc_cost audit in
  Gc.full_major ();
  let live_after_drain = (Gc.stat ()).live_words in
  (* The population and network must stay live across the stat, or the
     collector reclaims them and the number measures nothing. *)
  ignore (Sys.opaque_identity (net, admissions, data_ephids, server_ephids));
  line "  drain (+8 days): audit gc removed %d (%d probes), revocation gc removed %d, %.1f ms"
    drain_audit audit_drain_cost drain_revoked drain_ms;
  line "  live heap after drain: %d words" live_after_drain;
  let paper_peak = paper.peak_rate in
  let peak_ok = peak_fps >= paper_peak in
  if peak_ok then
    line "  gate ok: %.0f flows/s >= paper peak %.0f flows/s (%.1fx headroom)"
      peak_fps paper_peak (peak_fps /. paper_peak)
  else begin
    line "GATE FAIL: peak %.0f flows/s below the paper's %.0f flows/s" peak_fps
      paper_peak;
    gate_failed := true
  end;

  (* Baseline regression gate: p99 per-grant issuance latency and peak
     live words vs the recorded baseline, 10% tolerance. *)
  let tier = if !quick then "quick" else "full" in
  let baseline =
    try
      let ic = open_in_bin trace_scale_baseline_path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match J.parse text with
      | Ok doc -> (
          match J.member tier doc with
          | Some t ->
              let num k =
                Option.bind (J.member k t) J.number
              in
              Some (num "p99_issuance_us_per_grant", num "peak_live_words")
          | None -> None)
      | Error _ -> None
    with Sys_error _ -> None
  in
  let baseline_checked =
    match baseline with
    | None ->
        line "  baseline: %s has no '%s' tier -- regression gate skipped"
          trace_scale_baseline_path tier;
        false
    | Some (p99_base, live_base) ->
        let check name measured base =
          match base with
          | None -> true
          | Some b when measured <= 1.10 *. b ->
              line "  baseline ok: %s %.0f within 10%% of %.0f" name measured b;
              true
          | Some b ->
              line "GATE FAIL: %s regressed to %.0f (baseline %.0f, +%.1f%%)"
                name measured b
                ((measured -. b) /. b *. 100.0);
              gate_failed := true;
              false
        in
        let a = check "p99 issuance us/grant" grant_p99 p99_base in
        let b =
          check "peak live words" (float_of_int !peak_live_words) live_base
        in
        a && b
  in

  let section =
    J.Obj
      [
        ("tier", J.Str tier);
        ("population", J.Int population);
        ("compression_factor", J.Float factor);
        ("window_s", J.Float cfg.duration_s);
        ( "admission",
          J.Obj
            [
              ("seconds", J.Float admit_s);
              ("hosts_per_s", J.Float (float_of_int population /. admit_s));
              ("live_words_after", J.Int live_after_admit);
            ] );
        ( "issuance",
          J.Obj
            [
              ("samples", J.Int samples);
              ("batch_size", J.Int batch_size);
              ("single_p50_us", J.Float single_p50);
              ("single_p99_us", J.Float single_p99);
              ("batch_per_grant_p50_us", J.Float grant_p50);
              ("batch_per_grant_p99_us", J.Float grant_p99);
            ] );
        ( "replay",
          J.Obj
            [
              ("flows", J.Int !flows);
              ("wall_s", J.Float replay_s);
              ("flows_per_s", J.Float overall_fps);
              ("delivered", J.Int !delivered);
              ("dropped", J.Int !drops);
              ("revoked_mid_replay", J.Int !revoked_n);
              ("revocation_gc_removed", J.Int !gc_removed);
              ("audit_gc_removed", J.Int !audit_gc_removed);
              ("live_session_frames", J.Int !live_frames);
              ( "drain",
                J.Obj
                  [
                    ("audit_removed", J.Int drain_audit);
                    ("audit_probes", J.Int audit_drain_cost);
                    ("revocation_removed", J.Int drain_revoked);
                    ("wall_ms", J.Float drain_ms);
                    ("live_words_after", J.Int live_after_drain);
                  ] );
            ] );
        ( "peak",
          J.Obj
            [
              ("window_lo_s", J.Float win_lo);
              ("window_hi_s", J.Float win_hi);
              ("flows", J.Int !peak_flows);
              ("wall_s", J.Float (!peak_ns /. 1e9));
              ("flows_per_s", J.Float peak_fps);
              ("paper_peak_flows_per_s", J.Float paper_peak);
              ("gate_ok", J.Bool peak_ok);
            ] );
        ( "memory",
          J.Obj
            [
              ("peak_live_words", J.Int !peak_live_words);
              ( "words_per_host",
                J.Float
                  (float_of_int !peak_live_words /. float_of_int population) );
            ] );
        ("baseline_gate_checked", J.Bool baseline_checked);
      ]
  in
  Telemetry.tick_now tel;
  Telemetry.stop tel;
  add_telemetry "trace_scale"
    (J.Obj
       [
         ( "rules_fired",
           fired_json (Apna_obs.Alert.fired_rules (Telemetry.alerts tel)) );
         ("timeline", Telemetry.export tel);
       ]);
  add_json "trace_scale" section;
  (* Standalone artifact for CI upload. *)
  let oc = open_out "trace_scale.json" in
  output_string oc (J.to_string ~pretty:true section);
  output_char oc '\n';
  close_out oc;
  line "wrote trace_scale.json";
  M.set_enabled M.default false

(* ------------------------------------------------------------------ *)
(* E17: batched fast path — burst vs packet-at-a-time egress at 64B
   (where per-packet overhead weighs most, the Fig. 8 worst case). The
   cached burst row is the allocation headline: steady state must run at
   ~0 GC minor words per packet. Gated in-run (allocs, burst no slower
   than single) and against bench/burst_baseline.json (10%). *)

let burst_baseline_path = "bench/burst_baseline.json"

let e17 () =
  banner "E17" "BURST-PIPELINE" "batched allocation-free egress (DESIGN.md, Batched fast path)";
  M.set_enabled M.default false;
  Span.set_enabled Span.default false;
  let n = Border_router.max_burst in
  let frame = 64 in
  let cores = 16.0 in
  let samples = if !quick then 100 else 400 in
  let median s =
    let s = Array.copy s in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let build ~cached =
    let fx = make_br_fixture ~ephid_cache:(if cached then 8192 else 0) () in
    let pkts = Array.init n (fun _ -> make_packet fx ~frame) in
    (fx, pkts)
  in
  let cached = build ~cached:true and uncached = build ~cached:false in
  let store = Border_router.Burst.create () in
  let run_single (fx, pkts) () =
    for i = 0 to n - 1 do
      match Border_router.egress_check fx.br ~now:now0 pkts.(i) with
      | Ok _ -> ()
      | Error e -> failwith (Error.to_string e)
    done
  in
  let run_burst (fx, pkts) () =
    Border_router.egress_burst fx.br ~now:now0 pkts ~n store;
    for i = 0 to n - 1 do
      match Border_router.Burst.error store i with
      | None -> ()
      | Some e -> failwith (Error.to_string e)
    done
  in
  (* One f () = n packets; median of monotonic batch samples, like E2's
     cache comparison. *)
  let ns_per_pkt f =
    median (latency_samples ~samples ~batch:4 f) /. float_of_int n
  in
  let allocs_per_pkt f =
    f () (* warm: caches filled, burst store grown *);
    let rounds = if !quick then 50 else 200 in
    let w0 = Gc.minor_words () in
    for _ = 1 to rounds do
      f ()
    done;
    (Gc.minor_words () -. w0) /. float_of_int (rounds * n)
  in
  let rows =
    [
      ("single cached", run_single cached);
      ("burst  cached", run_burst cached);
      ("single uncached", run_single uncached);
      ("burst  uncached", run_burst uncached);
    ]
    |> List.map (fun (name, f) -> (name, ns_per_pkt f, allocs_per_pkt f))
  in
  let mpps ns = cores /. ns *. 1e3 in
  line "";
  line "%dB frames, bursts of %d, p50 of %d batches:" frame n samples;
  line "%-16s | %10s %10s | %10s" "path" "ns/pkt" "Mpps (16c)" "allocs/pkt";
  line "%s" (String.make 56 '-');
  List.iter
    (fun (name, ns, a) ->
      line "%-16s | %10.0f %10.2f | %10.2f" name ns (mpps ns) a)
    rows;
  let get name =
    let _, ns, a = List.find (fun (r, _, _) -> r = name) rows in
    (ns, a)
  in
  let single_cached_ns, _ = get "single cached" in
  let burst_cached_ns, burst_cached_allocs = get "burst  cached" in
  let single_uncached_ns, _ = get "single uncached" in
  line "";
  line "burst speedup: %.2fx vs single cached, %.2fx vs single uncached (the E2 full pipeline)"
    (single_cached_ns /. burst_cached_ns)
    (single_uncached_ns /. burst_cached_ns);
  let overflows = Border_router.arena_overflows (fst cached).br in
  line "arena overflows: %d (scratch stayed in the preallocated slots)" overflows;

  (* The allocs-per-packet gauge, demonstrated live: one instrumented
     burst, then read the series back through the registry. *)
  M.set_enabled M.default true;
  run_burst cached ();
  let gauge =
    M.Gauge.register M.default
      ~labels:
        [ ("aid", string_of_int (Apna_net.Addr.aid_to_int (fst cached).keys.aid)) ]
      "apna_br_allocs_per_packet"
  in
  let gauge_v = M.Gauge.value gauge in
  M.set_enabled M.default false;
  line "gauge apna_br_allocs_per_packet after one instrumented burst: %.1f w/pkt" gauge_v;
  line "  (includes what the enabled instrumentation itself allocates)";

  (* In-run gates: the cached burst steady state is allocation-free, and
     batching never costs throughput. *)
  if burst_cached_allocs > 0.5 then begin
    line "GATE FAIL: cached burst allocates %.2f minor words/pkt (want ~0)"
      burst_cached_allocs;
    gate_failed := true
  end
  else line "gate ok: cached burst allocs/pkt %.2f <= 0.5" burst_cached_allocs;
  if burst_cached_ns > 1.10 *. single_cached_ns then begin
    line "GATE FAIL: burst %.0f ns/pkt slower than single-packet %.0f ns/pkt"
      burst_cached_ns single_cached_ns;
    gate_failed := true
  end
  else
    line "gate ok: burst %.0f ns/pkt <= single-packet %.0f ns/pkt (+10%% margin)"
      burst_cached_ns single_cached_ns;

  (* Regression gate vs the recorded baseline, 10% tolerance on time and
     an absolute margin on the (near-zero) allocation count. *)
  let tier = if !quick then "quick" else "full" in
  let baseline =
    try
      let ic = open_in_bin burst_baseline_path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match J.parse text with
      | Ok doc -> (
          match J.member tier doc with
          | Some t ->
              let num k = Option.bind (J.member k t) J.number in
              Some
                ( num "burst_cached_ns_per_pkt",
                  num "burst_cached_allocs_per_pkt" )
          | None -> None)
      | Error _ -> None
    with Sys_error _ -> None
  in
  let baseline_checked =
    match baseline with
    | None ->
        line "  baseline: %s has no '%s' tier -- regression gate skipped"
          burst_baseline_path tier;
        false
    | Some (ns_base, allocs_base) ->
        (match ns_base with
        | Some b when burst_cached_ns > 1.10 *. b ->
            line "GATE FAIL: cached burst regressed to %.0f ns/pkt (baseline %.0f, +%.1f%%)"
              burst_cached_ns b
              ((burst_cached_ns -. b) /. b *. 100.0);
            gate_failed := true
        | Some b ->
            line "  baseline ok: cached burst %.0f ns/pkt within 10%% of %.0f"
              burst_cached_ns b
        | None -> ());
        (match allocs_base with
        | Some b when burst_cached_allocs > b +. 0.5 ->
            line "GATE FAIL: cached burst allocs/pkt %.2f above baseline %.2f + 0.5"
              burst_cached_allocs b;
            gate_failed := true
        | Some b ->
            line "  baseline ok: cached burst allocs/pkt %.2f within %.2f + 0.5"
              burst_cached_allocs b
        | None -> ());
        true
  in
  let section =
    J.Obj
      [
        ("tier", J.Str tier);
        ("frame_bytes", J.Int frame);
        ("burst_size", J.Int n);
        ( "paths",
          J.Obj
            (List.map
               (fun (name, ns, a) ->
                 ( String.concat "_"
                     (List.filter
                        (fun s -> s <> "")
                        (String.split_on_char ' ' name)),
                   J.Obj
                     [
                       ("ns_per_pkt", J.Float ns);
                       ("mpps_16core", J.Float (mpps ns));
                       ("allocs_per_pkt", J.Float a);
                     ] ))
               rows) );
        ("burst_cached_ns_per_pkt", J.Float burst_cached_ns);
        ("burst_cached_allocs_per_pkt", J.Float burst_cached_allocs);
        ( "speedup_vs_single_cached",
          J.Float (single_cached_ns /. burst_cached_ns) );
        ( "speedup_vs_single_uncached",
          J.Float (single_uncached_ns /. burst_cached_ns) );
        ("allocs_gauge_one_instrumented_burst", J.Float gauge_v);
        ("arena_overflows", J.Int overflows);
        ("baseline_gate_checked", J.Bool baseline_checked);
      ]
  in
  add_json "burst_pipeline" section;
  (* Standalone artifact for CI upload. *)
  let oc = open_out "burst.json" in
  output_string oc (J.to_string ~pretty:true section);
  output_char oc '\n';
  close_out oc;
  line "wrote burst.json"

(* ------------------------------------------------------------------ *)
(* E18: adversarial-scale accountability (§IV-E, §VIII-G2 under attack) *)

(* One tier of the misbehavior-campaign sweep: a {!Apna_workload.Campaign}
   schedule turns [fraction] of the population malicious, and the four
   behaviors hit the live network simultaneously —

     unwanted-traffic   real bot hosts flood victim endpoints, whose
                        on_data auto-shutoff drives the revocation storm
                        (per-packet bot EphIDs make every grant a fresh
                        revocation-list entry);
     replay-flood       frames the victims already accepted, re-submitted
                        at the attacker border router;
     ephid-bruteforce   random 16-byte EphID guesses at the same router;
     shutoff-spam       forged / duplicate-evidence / expired-evidence
                        requests injected straight into the AA's bounded
                        admission queue.

   The accountability agent runs with deliberately tight limits so the
   storm exercises every hardening layer: the token buckets refuse, the
   bounded queue sheds spam before evidence, drains are budgeted, and
   revocations propagate as batches. Telemetry rides the run; the 1%%
   tier is the acceptance tier (ISSUE: ≥99%% legit delivery, bounded
   backlog with shed > 0, propagation p99 reported, every AA request and
   every border-router drop accounted by reason, shutoff-stall +
   revocation-storm alerts fired and resolved). *)

let e18_tier ~fraction ~acceptance =
  let module W = Apna_workload in
  let aid_of = Apna_net.Addr.aid_of_int in
  let population = 9_000 in
  let trace_cfg =
    {
      W.Trace.paper_config with
      W.Trace.hosts = population;
      peak_rate = 100.0;
      duration_s = 10.0;
      peak_at_s = 5.0;
    }
  in
  let cfg =
    {
      (W.Campaign.default ~trace:trace_cfg ~fraction) with
      W.Campaign.events_per_host = 2.0;
      volume_mean = 10.0;
    }
  in
  let events =
    W.Campaign.generate ~seed:(Printf.sprintf "e18-%.4f" fraction) cfg
  in
  let n_bots = W.Campaign.malicious_count cfg in
  line "";
  line "tier %.1f%%: %d/%d hosts malicious, %d campaign events" (fraction *. 100.0)
    n_bots population (List.length events);
  List.iter
    (fun (label, n) -> line "    %-24s %d events" label n)
    (W.Campaign.count_by_behavior events);
  (* AA policy tuned so the storm lands on the bounded queue rather than
     the token buckets: requester buckets are generous enough that victim
     evidence floods the admission queue, and the budgeted drain (budget /
     interval = 40/s) becomes the bottleneck — grants then run at drain
     speed, which sits above the 25/s revocation-storm threshold, while
     the queue pegs past the 8-deep shutoff-stall threshold. *)
  let aa_limits =
    {
      Accountability.default_limits with
      rate_burst = 128;
      rate_per_s = 32.0;
      queue_cap = 16;
      drain_budget = 12;
      drain_interval_s = 0.25;
    }
  in
  let net =
    Network.create ~seed:(Printf.sprintf "e18-%.4f" fraction) ()
  in
  let n500 = Network.add_as net 64500 ~aa_limits () in
  let n501 = Network.add_as net 64501 ~aa_limits () in
  Network.connect_as net 64500 64501 ();
  let boot h =
    match Host.bootstrap h with
    | Ok () -> h
    | Error e -> failwith ("e18 bootstrap: " ^ Error.to_string e)
  in
  (* Legitimate population: clients in the attacker AS (their traffic
     shares the stormed egress pipeline) talking to servers across the
     inter-AS link — the ≥99% delivery gate. *)
  let n_clients = 10 and n_servers = 3 and n_victims = 4 in
  let clients =
    List.init n_clients (fun i ->
        boot
          (Network.add_host net ~as_number:64500
             ~name:(Printf.sprintf "c%d" i)
             ~credential:(Printf.sprintf "c%d" i) ()))
  in
  let servers =
    List.init n_servers (fun i ->
        boot
          (Network.add_host net ~as_number:64501
             ~name:(Printf.sprintf "s%d" i)
             ~credential:(Printf.sprintf "s%d" i) ()))
  in
  let victims =
    List.init n_victims (fun i ->
        boot
          (Network.add_host net ~as_number:64501
             ~name:(Printf.sprintf "v%d" i)
             ~credential:(Printf.sprintf "v%d" i) ()))
  in
  Network.run net;
  let endpoint_of h =
    let ep = ref None in
    Host.request_ephid h ~lifetime:Lifetime.Long (fun e -> ep := Some e);
    Network.run net;
    match !ep with
    | Some e -> e
    | None -> failwith "e18: endpoint issuance failed"
  in
  let server_eps = List.map endpoint_of servers in
  let victim_eps = List.map endpoint_of victims in
  (* Victim defence + replay capture: every decrypted frame becomes
     shutoff evidence, and a copy feeds the attacker's replay pool (the
     replayed frames are ones the victims really accepted, so their
     session replay windows are the last line of defence). *)
  let shutoff_built = ref 0 in
  let replay_pool : Apna_net.Packet.t list ref = ref [] in
  List.iter
    (fun v ->
      Host.on_data v (fun ~session ~data:_ ->
          match Host.last_packet v session with
          | Some evidence -> (
              replay_pool := evidence :: !replay_pool;
              match Host.request_shutoff v ~session ~evidence with
              | Ok () -> incr shutoff_built
              | Error _ -> ())
          | None -> ()))
    victims;
  (* Real bot hosts only for the unwanted-traffic behavior; replay,
     bruteforce and AA spam are injected at the infrastructure seams the
     way a real attacker would (no cooperating host required). *)
  let bot_tbl : (int, Host.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : W.Campaign.event) ->
      if e.behavior = W.Campaign.Unwanted_traffic
         && not (Hashtbl.mem bot_tbl e.host)
      then
        let b =
          boot
            (Network.add_host net ~as_number:64500
               ~name:(Printf.sprintf "bot%d" e.host)
               ~credential:(Printf.sprintf "bot%d" e.host)
               ~granularity:Granularity.Per_packet ())
        in
        Hashtbl.add bot_tbl e.host b)
    events;
  Network.run net;
  (* Synthetic spam material, prepared up front so injection is cheap.
     Forged requests reuse one spammer cert (burning its token bucket is
     what demotes the tail to the shed-first low-priority queue);
     duplicate spam replays one once-valid request; expired spam quotes
     a source EphID whose validity window has passed. *)
  let rng = Network.rng net in
  let now_setup = Network.now_unix net in
  let keys500 = As_node.keys n500 and keys501 = As_node.keys n501 in
  let spam_victim i =
    let keys = Keys.make_ephid_keys rng in
    let ephid =
      Ephid.issue_random keys501 rng
        ~hid:(Apna_net.Addr.hid_of_int (0x0bf0_0000 + i))
        ~expiry:(now_setup + 3_600)
    in
    let cert =
      Cert.issue keys501 ~ephid ~expiry:(now_setup + 3_600)
        ~kx_pub:keys.kx_public
        ~sig_pub:(Ed25519.public_key keys.sig_keypair)
        ~aa_ephid:ephid
    in
    (cert, keys)
  in
  let spam_evidence ~spam_hid ~spam_kha ~(dst_cert : Cert.t) ~expiry ~payload =
    let src = Ephid.issue_random keys500 rng ~hid:spam_hid ~expiry in
    let header =
      Apna_net.Apna_header.make ~src_aid:(aid_of 64500)
        ~src_ephid:(Ephid.to_bytes src)
        ~dst_aid:(aid_of 64501)
        ~dst_ephid:(Ephid.to_bytes dst_cert.ephid)
        ()
    in
    Pkt_auth.seal
      ~auth_key:(spam_kha : Keys.host_as).auth
      (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload)
  in
  let spam_requests =
    (* host index -> per-event request batches, built in schedule order. *)
    let tbl : (int * int, Msgs.t list) Hashtbl.t = Hashtbl.create 32 in
    let seq = ref 0 in
    List.iter
      (fun (e : W.Campaign.event) ->
        match e.behavior with
        | W.Campaign.Shutoff_spam kind ->
            incr seq;
            let i = !seq in
            let spam_hid = Apna_net.Addr.hid_of_int (0x0af0_0000 + i) in
            let spam_kha =
              Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32)
            in
            Host_info.register (As_node.host_info n500) spam_hid spam_kha;
            let dst_cert, dst_keys = spam_victim i in
            let batch =
              match kind with
              | W.Campaign.Forged ->
                  let rogue = Keys.make_ephid_keys rng in
                  List.init e.volume (fun k ->
                      let pkt =
                        spam_evidence ~spam_hid ~spam_kha ~dst_cert
                          ~expiry:(now_setup + 3_600)
                          ~payload:(Printf.sprintf "forged-%d-%d" i k)
                      in
                      let bytes = Apna_net.Packet.to_bytes pkt in
                      Msgs.Shutoff_request
                        {
                          packet = bytes;
                          signature = Ed25519.sign rogue.sig_keypair bytes;
                          cert = Cert.to_bytes dst_cert;
                        })
              | W.Campaign.Duplicate_evidence ->
                  let pkt =
                    spam_evidence ~spam_hid ~spam_kha ~dst_cert
                      ~expiry:(now_setup + 3_600)
                      ~payload:(Printf.sprintf "dup-%d" i)
                  in
                  let req =
                    Shutoff.make_request ~packet:pkt ~dst_cert ~dst_keys
                  in
                  List.init e.volume (fun _ -> req)
              | W.Campaign.Expired_evidence ->
                  List.init e.volume (fun k ->
                      let pkt =
                        spam_evidence ~spam_hid ~spam_kha ~dst_cert
                          ~expiry:(now_setup - 10)
                          ~payload:(Printf.sprintf "stale-%d-%d" i k)
                      in
                      Shutoff.make_request ~packet:pkt ~dst_cert ~dst_keys)
            in
            Hashtbl.replace tbl (e.host, int_of_float (e.at *. 1_000.0)) batch
        | _ -> ())
      events;
    tbl
  in
  (* Baselines before the storm so every reported number is a delta. *)
  let drop_base =
    List.map
      (fun n -> (n, Border_router.drop_reasons (As_node.border_router n)))
      [ n500; n501 ]
  in
  let dropped_base =
    List.map
      (fun n -> (n, (Border_router.counters (As_node.border_router n)).dropped))
      [ n500; n501 ]
  in
  let m_replay_rejected =
    M.Counter.register M.default "apna_host_replay_rejected_total"
  in
  let replay_rejected_base = M.Counter.value m_replay_rejected in
  let cache0 = Border_router.ephid_cache_stats (As_node.border_router n500) in
  let cache_base = (cache0.hits, cache0.misses, cache0.invalidations) in
  (* Flight recorder on for the campaign: drop forensics by reason. *)
  let ev = Apna_obs.Event.default in
  Apna_obs.Event.clear ev;
  Apna_obs.Event.set_enabled ev true;
  let tel = Telemetry.attach net in
  let eng = Network.engine net in
  (* Legit workload paced across the campaign window. *)
  let legit_sent = ref 0 and msgs_per_client = 25 in
  let window = trace_cfg.W.Trace.duration_s in
  List.iteri
    (fun i c ->
      let ep = List.nth server_eps (i mod n_servers) in
      let session = ref None in
      Host.connect c ~remote:(ep : Host.endpoint).cert
        ~data0:(Printf.sprintf "L-%d-0" i) (fun s -> session := Some s);
      incr legit_sent;
      for k = 1 to msgs_per_client - 1 do
        Apna_sim.Engine.schedule_in eng
          ~delay:(window *. float_of_int k /. float_of_int msgs_per_client)
          (fun () ->
            match !session with
            | Some s -> (
                match Host.send c s (Printf.sprintf "L-%d-%d" i k) with
                | Ok () -> incr legit_sent
                | Error _ -> ())
            | None -> ())
      done)
    clients;
  (* The campaign itself. *)
  let unwanted_sent = ref 0
  and replayed = ref 0
  and bruteforce_sent = ref 0
  and spam_injected = ref 0 in
  let replay_cursor = ref 0 in
  let aa500 = As_node.accountability n500 in
  List.iter
    (fun (e : W.Campaign.event) ->
      match e.behavior with
      | W.Campaign.Unwanted_traffic ->
          let bot = Hashtbl.find bot_tbl e.host in
          let vep = List.nth victim_eps (e.host mod n_victims) in
          Apna_sim.Engine.schedule_in eng ~delay:e.at (fun () ->
              let session = ref None in
              Host.connect bot ~remote:(vep : Host.endpoint).cert
                ~data0:(Printf.sprintf "FLOOD-%d-0" e.host) (fun s ->
                  session := Some s);
              incr unwanted_sent;
              for k = 1 to e.volume - 1 do
                Apna_sim.Engine.schedule_in eng
                  ~delay:(0.03 *. float_of_int k)
                  (fun () ->
                    match !session with
                    | Some s -> (
                        match
                          Host.send bot s (Printf.sprintf "FLOOD-%d-%d" e.host k)
                        with
                        | Ok () -> incr unwanted_sent
                        | Error _ -> ())
                    | None -> ())
              done)
      | W.Campaign.Replay_flood ->
          Apna_sim.Engine.schedule_in eng ~delay:e.at (fun () ->
              let pool = Array.of_list !replay_pool in
              if Array.length pool > 0 then
                for _ = 1 to e.volume do
                  let pkt = pool.(!replay_cursor mod Array.length pool) in
                  incr replay_cursor;
                  As_node.submit n500 pkt;
                  incr replayed
                done)
      | W.Campaign.Ephid_bruteforce ->
          Apna_sim.Engine.schedule_in eng ~delay:e.at (fun () ->
              for _ = 1 to e.volume do
                let header =
                  Apna_net.Apna_header.make ~src_aid:(aid_of 64500)
                    ~src_ephid:(Drbg.generate rng 16)
                    ~dst_aid:(aid_of 64501)
                    ~dst_ephid:(Drbg.generate rng 16)
                    ()
                in
                As_node.submit n500
                  (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data
                     ~payload:"guess");
                incr bruteforce_sent
              done)
      | W.Campaign.Shutoff_spam _ ->
          let batch =
            try
              Hashtbl.find spam_requests
                (e.host, int_of_float (e.at *. 1_000.0))
            with Not_found -> []
          in
          List.iteri
            (fun k req ->
              Apna_sim.Engine.schedule_in eng
                ~delay:(e.at +. (0.01 *. float_of_int k))
                (fun () ->
                  incr spam_injected;
                  ignore
                    (Accountability.enqueue aa500 ~now:(Network.now_unix net)
                       ~at:(Network.now_f net) req)))
            batch)
    events;
  Network.run net;
  (* Quiet tail: drain the AA queue to empty and keep the sampler
     ticking so the fired alerts can resolve. *)
  for _ = 1 to 6 do
    let grants =
      Accountability.drain aa500 ~now:(Network.now_unix net)
        ~at:(Network.now_f net)
    in
    ignore grants;
    Telemetry.kick tel;
    Network.advance_time net 1.0
  done;
  Telemetry.tick_now tel;
  Telemetry.stop tel;
  Apna_obs.Event.set_enabled ev false;
  (* ---- Measurements ---------------------------------------------- *)
  let legit_delivered =
    List.concat_map (fun s -> List.map snd (Host.received s)) servers
    |> List.filter (fun d -> String.length d > 0 && d.[0] = 'L')
    |> List.length
  in
  let delivery_ratio =
    if !legit_sent = 0 then 1.0
    else float_of_int legit_delivered /. float_of_int !legit_sent
  in
  let unwanted_delivered =
    List.fold_left (fun acc v -> acc + List.length (Host.received v)) 0 victims
  in
  let drop_delta =
    List.map
      (fun (n, base) ->
        let current = Border_router.drop_reasons (As_node.border_router n) in
        List.filter_map
          (fun (reason, count) ->
            let before =
              Option.value ~default:0 (List.assoc_opt reason base)
            in
            if count - before > 0 then Some (reason, count - before) else None)
          current)
      drop_base
  in
  let drops_by_reason =
    (* Merge the two routers' per-reason deltas. *)
    let tbl = Hashtbl.create 8 in
    List.iter
      (List.iter (fun (reason, n) ->
           Hashtbl.replace tbl reason
             (n + Option.value ~default:0 (Hashtbl.find_opt tbl reason))))
      drop_delta;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  let drops_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 drops_by_reason
  in
  let dropped_counter_delta =
    List.fold_left
      (fun acc (n, base) ->
        acc
        + (Border_router.counters (As_node.border_router n)).dropped
        - base)
      0
      (List.map
         (fun (n, d) -> (n, d))
         dropped_base)
  in
  let replay_rejected =
    M.Counter.value m_replay_rejected - replay_rejected_base
  in
  let granted = Accountability.granted_count aa500
  and refused = Accountability.refused_count aa500
  and shed = Accountability.shed_count aa500
  and queue_end = Accountability.queue_depth aa500
  and queue_peak = Accountability.queue_peak aa500 in
  let aa_requests = !shutoff_built + !spam_injected in
  let aa_accounted = granted + refused + shed + queue_end in
  let samples = List.sort compare (Accountability.propagation_samples aa500) in
  let pctl p =
    match samples with
    | [] -> nan
    | _ ->
        let n = List.length samples in
        List.nth samples
          (min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))
  in
  let cache = Border_router.ephid_cache_stats (As_node.border_router n500) in
  let b_hits, b_misses, b_inval = cache_base in
  let hits = cache.hits - b_hits
  and misses = cache.misses - b_misses
  and invalidations = cache.invalidations - b_inval in
  let hit_ratio =
    if hits + misses = 0 then nan
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let revoked_size = Revocation.size (As_node.revoked n500) in
  let journeys = Apna_obs.Journey.assemble ev in
  let drop_report = Apna_obs.Journey.drop_report journeys in
  let alerts = Telemetry.alerts tel in
  let fired = Apna_obs.Alert.fired_rules alerts in
  let fired_and_resolved name =
    Apna_obs.Alert.has_fired alerts name
    && List.for_all
         (fun i ->
           (Apna_obs.Alert.rule i).Apna_obs.Alert.name <> name
           ||
           match Apna_obs.Alert.state i with
           | Apna_obs.Alert.Firing _ -> false
           | _ -> true)
         (Apna_obs.Alert.instances alerts)
  in
  (* ---- Report ----------------------------------------------------- *)
  line "  legit delivery        %d/%d (%.2f%%)" legit_delivered !legit_sent
    (delivery_ratio *. 100.0);
  line "  malicious injected    %d unwanted, %d replayed, %d bruteforce, %d AA spam"
    !unwanted_sent !replayed !bruteforce_sent !spam_injected;
  line "  evidence delivered    %d frames to victims -> %d shutoff requests built"
    unwanted_delivered !shutoff_built;
  line "  AA ledger             %d requests = %d granted + %d refused + %d shed (queue end %d, peak %d/%d)"
    aa_requests granted refused shed queue_end queue_peak
    aa_limits.Accountability.queue_cap;
  List.iter
    (fun (reason, n) -> line "    refused %-18s %d" reason n)
    (Accountability.refusal_reasons aa500);
  line "  BR drops              %d total" drops_total;
  List.iter
    (fun (reason, n) -> line "    dropped %-18s %d" reason n)
    drops_by_reason;
  line "  replay-window rejects %d" replay_rejected;
  line "  shutoff propagation   p50 %.3f s, p99 %.3f s (%d samples)"
    (pctl 0.50) (pctl 0.99) (List.length samples);
  line "  revocation list       %d entries; EphID cache %.1f%% hit (%d/%d, %d invalidations)"
    revoked_size
    (hit_ratio *. 100.0)
    hits (hits + misses) invalidations;
  line "  alerts fired          %s"
    (match List.sort String.compare fired with
    | [] -> "(none)"
    | fs -> String.concat ", " fs);
  if Apna_obs.Event.evicted ev > 0 then
    line "  (flight recorder evicted %d events; journey forensics cover the newest window)"
      (Apna_obs.Event.evicted ev);
  (match drop_report with
  | [] -> ()
  | report ->
      line "  journey drop forensics (last good hop / reason / journeys):";
      List.iteri
        (fun i ((hop, reason), n) ->
          if i < 6 then line "    %-28s %-16s %d" hop reason n)
        report);
  (* ---- Acceptance gates (1% tier) --------------------------------- *)
  if acceptance then begin
    if delivery_ratio >= 0.99 then
      line "  gate ok: legit cross-AS delivery %.2f%% >= 99%%"
        (delivery_ratio *. 100.0)
    else begin
      line "GATE FAIL: legit delivery %.2f%% under attack (need >= 99%%)"
        (delivery_ratio *. 100.0);
      gate_failed := true
    end;
    if shed > 0 && queue_peak <= aa_limits.Accountability.queue_cap then
      line "  gate ok: bounded AA backlog (peak %d <= cap %d, %d shed)"
        queue_peak aa_limits.Accountability.queue_cap shed
    else begin
      line "GATE FAIL: AA backlog unbounded or never shed (peak %d, cap %d, shed %d)"
        queue_peak aa_limits.Accountability.queue_cap shed;
      gate_failed := true
    end;
    if aa_requests = aa_accounted then
      line "  gate ok: AA ledger balances (%d = granted+refused+shed+queued)"
        aa_requests
    else begin
      line "GATE FAIL: AA ledger leak: %d requests vs %d accounted"
        aa_requests aa_accounted;
      gate_failed := true
    end;
    if drops_total = dropped_counter_delta then
      line "  gate ok: all %d BR drops carry a typed reason" drops_total
    else begin
      line "GATE FAIL: %d BR drops but only %d reason-labeled"
        dropped_counter_delta drops_total;
      gate_failed := true
    end;
    if drops_total + replay_rejected >= !bruteforce_sent + !replayed then
      line "  gate ok: bruteforce+replay contained (%d injected <= %d dropped/rejected)"
        (!bruteforce_sent + !replayed)
        (drops_total + replay_rejected)
    else begin
      line "GATE FAIL: %d bruteforce+replay packets but only %d dropped/rejected"
        (!bruteforce_sent + !replayed)
        (drops_total + replay_rejected);
      gate_failed := true
    end;
    if samples <> [] then
      line "  gate ok: shutoff propagation p99 reported (%.3f s)" (pctl 0.99)
    else begin
      line "GATE FAIL: no shutoff propagation samples";
      gate_failed := true
    end;
    List.iter
      (fun rule ->
        if fired_and_resolved rule then
          line "  alert gate ok: %s fired and resolved" rule
        else begin
          line "GATE FAIL: alert %s did not fire and resolve (fired=%b)" rule
            (Apna_obs.Alert.has_fired alerts rule);
          gate_failed := true
        end)
      [ "shutoff-stall"; "revocation-storm" ]
  end;
  let row =
    J.Obj
      [
        ("fraction", J.Float fraction);
        ("population", J.Int population);
        ("bots", J.Int n_bots);
        ( "events_by_behavior",
          J.Obj
            (List.map
               (fun (l, n) -> (l, J.Int n))
               (W.Campaign.count_by_behavior events)) );
        ( "injected",
          J.Obj
            [
              ("unwanted", J.Int !unwanted_sent);
              ("replayed", J.Int !replayed);
              ("bruteforce", J.Int !bruteforce_sent);
              ("aa_spam", J.Int !spam_injected);
            ] );
        ( "legit",
          J.Obj
            [
              ("sent", J.Int !legit_sent);
              ("delivered", J.Int legit_delivered);
              ("delivery_ratio", J.Float delivery_ratio);
            ] );
        ( "aa",
          J.Obj
            [
              ("requests", J.Int aa_requests);
              ("granted", J.Int granted);
              ("refused", J.Int refused);
              ("shed", J.Int shed);
              ("queue_peak", J.Int queue_peak);
              ("queue_cap", J.Int aa_limits.Accountability.queue_cap);
              ( "refusals_by_reason",
                J.Obj
                  (List.map
                     (fun (r, n) -> (r, J.Int n))
                     (Accountability.refusal_reasons aa500)) );
            ] );
        ( "propagation_s",
          J.Obj
            [
              ("p50", J.Float (pctl 0.50));
              ("p99", J.Float (pctl 0.99));
              ("samples", J.Int (List.length samples));
            ] );
        ( "forensics",
          J.Obj
            [
              ("evidence_delivered", J.Int unwanted_delivered);
              ( "br_drops_by_reason",
                J.Obj
                  (List.map (fun (r, n) -> (r, J.Int n)) drops_by_reason) );
              ("br_drops_total", J.Int drops_total);
              ("replay_window_rejects", J.Int replay_rejected);
              ( "journey_drop_report",
                J.List
                  (List.map
                     (fun ((hop, reason), n) ->
                       J.Obj
                         [
                           ("last_good_hop", J.Str hop);
                           ("reason", J.Str reason);
                           ("journeys", J.Int n);
                         ])
                     drop_report) );
            ] );
        ( "revocation",
          J.Obj
            [
              ("list_size", J.Int revoked_size);
              ("cache_hit_ratio", J.Float hit_ratio);
              ("cache_hits", J.Int hits);
              ("cache_misses", J.Int misses);
              ("cache_invalidations", J.Int invalidations);
            ] );
        ("rules_fired", fired_json fired);
        ( "rules_resolved",
          J.List
            (List.filter_map
               (fun r -> if fired_and_resolved r then Some (J.Str r) else None)
               fired) );
      ]
  in
  Apna_obs.Event.clear ev;
  (row, fired, Telemetry.export tel)

let e18 () =
  banner "E18" "ATTACK-CAMPAIGN"
    "§IV-E shutoff and §VIII-G2 escalation under misbehavior storms";
  let tiers = if !quick then [ 0.01 ] else [ 0.001; 0.01; 0.05 ] in
  let rows =
    List.map
      (fun fraction ->
        let row, fired, export = e18_tier ~fraction ~acceptance:(fraction = 0.01) in
        (fraction, row, fired, export))
      tiers
  in
  let section = J.List (List.map (fun (_, row, _, _) -> row) rows) in
  add_json "attack_campaign" section;
  add_telemetry "attack_campaign"
    (J.Obj
       [
         ( "rows",
           J.List
             (List.map
                (fun (fraction, _, fired, _) ->
                  J.Obj
                    [
                      ("fraction", J.Float fraction);
                      ("rules_fired", fired_json fired);
                    ])
                rows) );
         ( "timeline_1pct",
           match List.find_opt (fun (f, _, _, _) -> f = 0.01) rows with
           | Some (_, _, _, export) -> export
           | None -> J.Null );
       ]);
  (* Standalone artifact for CI upload (schema in docs/OBSERVABILITY.md). *)
  let doc =
    J.Obj
      [
        ("schema", J.Str "apna-attack-campaign/1");
        ("quick", J.Bool !quick);
        ("tiers", section);
      ]
  in
  let oc = open_out "attack_campaign.json" in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  line "";
  line "wrote attack_campaign.json";
  M.set_enabled M.default false

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1);
    ("E2", e2);
    ("E3", e3);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E12", e12);
    ("E13", e13);
    ("E14", e14);
    ("E15", e15);
    ("E16", e16);
    ("E17", e17);
    ("E18", e18);
  ]

let json_path = "BENCH_results.json"

let write_json selected =
  let doc =
    J.Obj
      [
        ("schema", J.Str "apna-bench/1");
        ("quick", J.Bool !quick);
        ("experiments_run", J.List (List.map (fun id -> J.Str id) selected));
        ("experiments", J.Obj (List.rev !json_sections));
        ("metrics", M.to_json M.default);
      ]
  in
  let text = J.to_string ~pretty:true doc in
  let oc = open_out json_path in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  (* Self-check: the file we just wrote must parse back. *)
  let ic = open_in_bin json_path in
  let read_back = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match J.parse read_back with
  | Ok _ -> ()
  | Error e -> failwith (Printf.sprintf "%s does not parse: %s" json_path e));
  line "";
  line "wrote %s (%d bytes, parse-checked)" json_path (String.length read_back)

let telemetry_path = "telemetry.json"

(* Written only when an experiment attached the sampler (E13/E15/E16), so
   runs without telemetry leave any previous export untouched. *)
let write_telemetry () =
  match !telemetry_sections with
  | [] -> ()
  | sections ->
      let doc =
        J.Obj
          [
            ("schema", J.Str "apna-telemetry/1");
            ("quick", J.Bool !quick);
            ("experiments", J.Obj (List.rev sections));
          ]
      in
      let text = J.to_string ~pretty:true doc in
      let oc = open_out telemetry_path in
      output_string oc text;
      output_char oc '\n';
      close_out oc;
      let ic = open_in_bin telemetry_path in
      let read_back = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match J.parse read_back with
      | Ok _ -> ()
      | Error e ->
          failwith (Printf.sprintf "%s does not parse: %s" telemetry_path e));
      line "wrote %s (%d bytes, parse-checked)" telemetry_path
        (String.length read_back)

let () =
  Logs.set_level (Some Logs.Error);
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else if a = "--faults" then begin
          faults_only := true;
          false
        end
        else if a = "--lifetimes" then begin
          lifetimes_only := true;
          false
        end
        else if a = "--storm" then begin
          storm_only := true;
          false
        end
        else if a = "--trace-scale" then begin
          trace_scale_only := true;
          false
        end
        else if a = "--burst" then begin
          burst_only := true;
          false
        end
        else if a = "--campaign" then begin
          campaign_only := true;
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  let selected =
    match args with
    | _ :: _ -> args
    | [] ->
        if !faults_only then [ "E13" ]
        else if !lifetimes_only then [ "E14" ]
        else if !storm_only then [ "E15" ]
        else if !trace_scale_only then [ "E16" ]
        else if !burst_only then [ "E17" ]
        else if !campaign_only then [ "E18" ]
        else if !quick then [ "E2" ]
        else List.map fst experiments
  in
  line "APNA benchmark harness (one section per paper table/figure)";
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None -> line "unknown experiment %s" id)
    selected;
  write_json selected;
  write_telemetry ();
  if !gate_failed then begin
    line "one or more bench gates FAILED";
    exit 1
  end
