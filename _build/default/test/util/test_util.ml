(* Byte reader/writer codecs and the small utility modules. *)

open Apna_util

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rw_tests =
  [
    qtest "u8/u16/u32/u64 roundtrip"
      QCheck2.Gen.(
        let* a = int_range 0 255 in
        let* b = int_range 0 0xffff in
        let* c = int_range 0 0xffffffff in
        let* d = int_range 0 max_int in
        return (a, b, c, d))
      (fun (a, b, c, d) ->
        let w = Rw.Writer.create () in
        Rw.Writer.u8 w a;
        Rw.Writer.u16 w b;
        Rw.Writer.u32_of_int w c;
        Rw.Writer.u64 w (Int64.of_int d);
        let r = Rw.Reader.of_string (Rw.Writer.contents w) in
        let open Rw in
        (let* a' = Reader.u8 r in
         let* b' = Reader.u16 r in
         let* c' = Reader.u32_to_int r in
         let* d' = Reader.u64 r in
         let* () = Reader.expect_end r in
         Ok (a' = a && b' = b && c' = c && d' = Int64.of_int d))
        = Ok true);
    qtest "bytes roundtrip with remaining bookkeeping"
      QCheck2.Gen.(pair (string_size (int_range 0 64)) (string_size (int_range 0 64)))
      (fun (x, y) ->
        let w = Rw.Writer.create () in
        Rw.Writer.u16 w (String.length x);
        Rw.Writer.bytes w x;
        Rw.Writer.bytes w y;
        let r = Rw.Reader.of_string (Rw.Writer.contents w) in
        let open Rw in
        (let* n = Reader.u16 r in
         let* x' = Reader.bytes r n in
         Ok (x' = x && Reader.rest r = y))
        = Ok true);
    Alcotest.test_case "short reads are errors, not exceptions" `Quick (fun () ->
        let r = Rw.Reader.of_string "ab" in
        Alcotest.(check bool) "u32 fails" true (Result.is_error (Rw.Reader.u32 r));
        (* The failed read consumed nothing usable; u16 still works. *)
        Alcotest.(check bool) "u16 ok" true (Rw.Reader.u16 r = Ok 0x6162));
    Alcotest.test_case "expect_end rejects trailing bytes" `Quick (fun () ->
        let r = Rw.Reader.of_string "x" in
        Alcotest.(check bool) "error" true (Result.is_error (Rw.Reader.expect_end r));
        ignore (Rw.Reader.u8 r);
        Alcotest.(check bool) "ok after consuming" true
          (Rw.Reader.expect_end r = Ok ()));
    Alcotest.test_case "big-endian layout on the wire" `Quick (fun () ->
        let w = Rw.Writer.create () in
        Rw.Writer.u16 w 0x0102;
        Rw.Writer.u32_of_int w 0x03040506;
        Alcotest.(check string) "network byte order" "\x01\x02\x03\x04\x05\x06"
          (Rw.Writer.contents w));
    Alcotest.test_case "writer length tracks content" `Quick (fun () ->
        let w = Rw.Writer.create () in
        Rw.Writer.u64 w 1L;
        Rw.Writer.bytes w "abc";
        Alcotest.(check int) "length" 11 (Rw.Writer.length w));
  ]

let misc_tests =
  [
    Alcotest.test_case "ct xor length mismatch rejected" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Ct.xor: length")
          (fun () -> ignore (Ct.xor "ab" "abc")));
    Alcotest.test_case "zeroize wipes the buffer" `Quick (fun () ->
        let b = Bytes.of_string "secret" in
        Ct.zeroize b;
        Alcotest.(check string) "zeroed" (String.make 6 '\000')
          (Bytes.to_string b));
    qtest "hex encode length doubles" QCheck2.Gen.(string_size (int_range 0 64))
      (fun s -> String.length (Hex.encode s) = 2 * String.length s);
    Alcotest.test_case "hex decode accepts uppercase" `Quick (fun () ->
        Alcotest.(check bool) "ok" true (Hex.decode "DEADBEEF" = Ok "\xde\xad\xbe\xef"));
    Alcotest.test_case "hex pp prints lowercase" `Quick (fun () ->
        Alcotest.(check string) "pp" "00ff"
          (Format.asprintf "%a" Hex.pp "\x00\xff"));
  ]

let () =
  Alcotest.run "apna_util" [ ("rw", rw_tests); ("misc", misc_tests) ]
