(* End-to-end protocol flows over the simulated network: the communication
   example of paper §III-C, the client-server handshake of §VII-A, ICMP
   (§VIII-B) and the shutoff protocol (§IV-E). *)

open Apna

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

(* A 3-AS line: AS100 (alice) — AS200 (transit) — AS300 (bob, runs DNS). *)
let make_world ?(seed = "e2e") () =
  let net = Network.create ~seed () in
  let _a = Network.add_as net 100 () in
  let _t = Network.add_as net 200 () in
  let _b = Network.add_as net 300 ~dns_zone:"example.net" () in
  Network.connect_as net 100 200 ();
  Network.connect_as net 200 300 ();
  let alice =
    Network.add_host net ~as_number:100 ~name:"alice" ~credential:"alice-token" ()
  in
  let bob =
    Network.add_host net ~as_number:300 ~name:"bob" ~credential:"bob-token" ()
  in
  ok_or_fail "alice bootstrap" (Host.bootstrap alice);
  ok_or_fail "bob bootstrap" (Host.bootstrap bob);
  (net, alice, bob)

let get_endpoint host =
  (* Synchronously obtain a data-plane EphID by running the sim. *)
  let result = ref None in
  Host.request_ephid host (fun ep -> result := Some ep);
  (match Host.attachment host with Some _ -> () | None -> Alcotest.fail "attach");
  result

let basic_tests =
  [
    Alcotest.test_case "bootstrap populates identity" `Quick (fun () ->
        let net, alice, _bob = make_world () in
        Network.run net;
        Alcotest.(check bool) "bootstrapped" true (Host.is_bootstrapped alice);
        Alcotest.(check bool) "has ctrl ephid" true (Host.ctrl_ephid alice <> None);
        Alcotest.(check bool) "has MS cert" true (Host.ms_cert alice <> None));
    Alcotest.test_case "ephid issuance round trip" `Quick (fun () ->
        let net, alice, _bob = make_world () in
        let ep = get_endpoint alice in
        Network.run net;
        match !ep with
        | None -> Alcotest.fail "no EphID issued"
        | Some endpoint ->
            let node = Network.node_exn net 100 in
            Alcotest.(check bool) "cert verifies" true
              (Result.is_ok
                 (Trust.verify_cert (Network.trust net) ~now:(Network.now_unix net)
                    endpoint.cert));
            (* The AS can link the EphID back to a HID; others cannot. *)
            let parsed = Ephid.parse (As_node.keys node) endpoint.cert.ephid in
            Alcotest.(check bool) "issuing AS parses" true (Result.is_ok parsed);
            let other = Network.node_exn net 300 in
            Alcotest.(check bool) "other AS cannot parse" true
              (Result.is_error (Ephid.parse (As_node.keys other) endpoint.cert.ephid)));
    Alcotest.test_case "encrypted end-to-end data (0-RTT)" `Quick (fun () ->
        let net, alice, bob = make_world () in
        let bob_ep = get_endpoint bob in
        Network.run net;
        let bob_ep = Option.get !bob_ep in
        Host.connect alice ~remote:bob_ep.cert ~data0:"hello bob" (fun _session -> ());
        Network.run net;
        (match Host.received bob with
        | [ (_, "hello bob") ] -> ()
        | other ->
            Alcotest.failf "bob received %d messages" (List.length other)));
    Alcotest.test_case "bidirectional session data" `Quick (fun () ->
        let net, alice, bob = make_world () in
        let bob_ep = get_endpoint bob in
        Network.run net;
        let bob_ep = Option.get !bob_ep in
        (* Bob echoes everything back uppercased. *)
        Host.on_data bob (fun ~session ~data ->
            ignore (Host.send bob session (String.uppercase_ascii data)));
        Host.connect alice ~remote:bob_ep.cert ~data0:"ping" (fun session ->
            ignore session);
        Network.run net;
        (match Host.received alice with
        | [ (_, "PING") ] -> ()
        | other -> Alcotest.failf "alice received %d messages" (List.length other)));
    Alcotest.test_case "multiple messages flow in order" `Quick (fun () ->
        let net, alice, bob = make_world () in
        let bob_ep = get_endpoint bob in
        Network.run net;
        let bob_ep = Option.get !bob_ep in
        Host.connect alice ~remote:bob_ep.cert ~data0:"m0" (fun session ->
            for i = 1 to 5 do
              ignore (Host.send alice session (Printf.sprintf "m%d" i))
            done);
        Network.run net;
        let got = List.map snd (Host.received bob) in
        Alcotest.(check (list string)) "all delivered in order"
          [ "m0"; "m1"; "m2"; "m3"; "m4"; "m5" ] got);
    Alcotest.test_case "ping measures a plausible rtt" `Quick (fun () ->
        let net, alice, bob = make_world () in
        let bob_ep = get_endpoint bob in
        Network.run net;
        let bob_ep = Option.get !bob_ep in
        let rtt = ref nan in
        Host.ping alice ~dst_aid:(Apna_net.Addr.aid_of_int 300)
          ~dst_ephid:bob_ep.cert.ephid (fun r -> rtt := r);
        Network.run net;
        (* 4 inter-AS link crossings at 5 ms propagation each, plus access
           hops: at least 20 ms, well under a second. *)
        Alcotest.(check bool) "rtt sane" true (!rtt >= 0.02 && !rtt < 1.0));
    Alcotest.test_case "icmp unreachable on expired destination" `Quick (fun () ->
        let net, alice, bob = make_world () in
        let bob_ep = get_endpoint bob in
        Network.run net;
        let bob_ep = Option.get !bob_ep in
        (* Let bob's EphID (medium lifetime, 900 s) expire, then connect. *)
        Network.advance_time net 1000.0;
        Host.connect alice ~remote:bob_ep.cert ~data0:"too late" (fun _ -> ());
        Network.run net;
        Alcotest.(check bool) "bob got nothing" true (Host.received bob = []);
        (* Alice's connect was blocked at certificate verification (expired),
           so nothing was even sent; force a raw expired send via ping. *)
        Host.ping alice ~dst_aid:(Apna_net.Addr.aid_of_int 300)
          ~dst_ephid:bob_ep.cert.ephid (fun _ -> ());
        Network.run net;
        (match Host.unreachables alice with
        | Icmp.Ephid_expired :: _ -> ()
        | [] -> Alcotest.fail "no unreachable feedback"
        | r :: _ -> Alcotest.failf "wrong reason: %s" (Icmp.reason_to_string r)));
  ]

let shutoff_tests =
  [
    Alcotest.test_case "victim shuts off attacker" `Quick (fun () ->
        let net, attacker, victim = make_world () in
        let victim_ep = get_endpoint victim in
        Network.run net;
        let victim_ep = Option.get !victim_ep in
        let victim_session = ref None in
        Host.on_data victim (fun ~session ~data:_ -> victim_session := Some session);
        let attacker_session = ref None in
        Host.connect attacker ~remote:victim_ep.cert ~data0:"flood-0" (fun s ->
            attacker_session := Some s);
        Network.run net;
        let att_s = Option.get !attacker_session in
        ignore (Host.send attacker att_s "flood-1");
        Network.run net;
        let vic_s = Option.get !victim_session in
        Alcotest.(check int) "floods arrived" 2 (List.length (Host.received victim));
        (* The victim presents the last unwanted packet as evidence. *)
        let evidence = Option.get (Host.last_packet victim vic_s) in
        ok_or_fail "shutoff" (Host.request_shutoff victim ~session:vic_s ~evidence);
        Network.run net;
        (* The attacker's EphID is now on its own AS's revocation list... *)
        let attacker_as = Network.node_exn net 100 in
        Alcotest.(check int) "revocation recorded" 1
          (Revocation.size (As_node.revoked attacker_as));
        (* ...so further floods die at egress and never reach the victim. *)
        ignore (Host.send attacker att_s "flood-2");
        ignore (Host.send attacker att_s "flood-3");
        Network.run net;
        Alcotest.(check int) "no more floods" 2 (List.length (Host.received victim)));
    Alcotest.test_case "shutoff with forged signature is refused" `Quick (fun () ->
        let net, attacker, victim = make_world () in
        let victim_ep = get_endpoint victim in
        Network.run net;
        let victim_ep = Option.get !victim_ep in
        let victim_session = ref None in
        Host.on_data victim (fun ~session ~data:_ -> victim_session := Some session);
        Host.connect attacker ~remote:victim_ep.cert ~data0:"x" (fun _ -> ());
        Network.run net;
        let vic_s = Option.get !victim_session in
        let evidence = Option.get (Host.last_packet victim vic_s) in
        (* Deliver a shutoff request whose signature comes from the wrong
           key, straight to the attacker's AA. *)
        let attacker_as = Network.node_exn net 100 in
        let rogue_keys =
          Keys.make_ephid_keys (Apna_crypto.Drbg.create ~seed:"rogue")
        in
        let forged =
          Msgs.Shutoff_request
            {
              packet = Apna_net.Packet.to_bytes evidence;
              signature =
                Apna_crypto.Ed25519.sign rogue_keys.sig_keypair
                  (Apna_net.Packet.to_bytes evidence);
              cert = Cert.to_bytes (Session.local_cert vic_s);
            }
        in
        (match
           Accountability.handle_shutoff
             (As_node.accountability attacker_as)
             ~now:(Network.now_unix net) forged
         with
        | Error (Error.Bad_signature _) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "forged shutoff accepted");
        Alcotest.(check int) "nothing revoked" 0
          (Revocation.size (As_node.revoked attacker_as)));
    Alcotest.test_case "bystander cannot shut off someone else's flow" `Quick
      (fun () ->
        (* A third host that merely observed a packet cannot get it shut
           off: it does not own the destination EphID (§VI-C). *)
        let net, attacker, victim = make_world () in
        let victim_ep = get_endpoint victim in
        Network.run net;
        let victim_ep = Option.get !victim_ep in
        let victim_session = ref None in
        Host.on_data victim (fun ~session ~data:_ -> victim_session := Some session);
        Host.connect attacker ~remote:victim_ep.cert ~data0:"x" (fun _ -> ());
        Network.run net;
        let vic_s = Option.get !victim_session in
        let evidence = Option.get (Host.last_packet victim vic_s) in
        (* Bystander has its own valid cert but signs with its own key. *)
        let bystander_ep = get_endpoint attacker in
        Network.run net;
        let bystander_ep = Option.get !bystander_ep in
        let forged =
          Msgs.Shutoff_request
            {
              packet = Apna_net.Packet.to_bytes evidence;
              signature =
                Apna_crypto.Ed25519.sign bystander_ep.keys.sig_keypair
                  (Apna_net.Packet.to_bytes evidence);
              cert = Cert.to_bytes bystander_ep.cert;
            }
        in
        let attacker_as = Network.node_exn net 100 in
        (match
           Accountability.handle_shutoff
             (As_node.accountability attacker_as)
             ~now:(Network.now_unix net) forged
         with
        | Error (Error.Rejected _) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "bystander shutoff accepted");
        Alcotest.(check int) "nothing revoked" 0
          (Revocation.size (As_node.revoked attacker_as)));
  ]

let lifecycle_tests =
  [
    Alcotest.test_case "close tears down both ends and releases the EphID"
      `Quick (fun () ->
        let net, alice, bob = make_world () in
        let bob_ep = get_endpoint bob in
        Network.run net;
        let bob_ep = Option.get !bob_ep in
        let session = ref None in
        Host.connect alice ~remote:bob_ep.cert ~data0:"hi" (fun s -> session := Some s);
        Network.run net;
        Alcotest.(check int) "bob has the session" 1 (List.length (Host.sessions bob));
        let s = Option.get !session in
        ok_or_fail "close" (Host.close alice s);
        Network.run net;
        Alcotest.(check int) "alice forgot it" 0 (List.length (Host.sessions alice));
        Alcotest.(check int) "bob forgot it" 0 (List.length (Host.sessions bob));
        (* The per-flow EphID was preemptively released (§VIII-G2). *)
        let node = Network.node_exn net 100 in
        Alcotest.(check int) "EphID revoked" 1
          (Revocation.size (As_node.revoked node)));
    Alcotest.test_case "spoofed fin does not kill a session" `Quick (fun () ->
        let net, alice, bob = make_world () in
        let bob_ep = get_endpoint bob in
        Network.run net;
        let bob_ep = Option.get !bob_ep in
        let session = ref None in
        Host.connect alice ~remote:bob_ep.cert ~data0:"hi" (fun s -> session := Some s);
        Network.run net;
        let s = Option.get !session in
        (* Mallory forges a Fin with the right conn id but no session key. *)
        let mallory = Network.add_host net ~as_number:100 ~name:"mallory" ~credential:"m" () in
        ok_or_fail "mallory" (Host.bootstrap mallory);
        let mep = get_endpoint mallory in
        Network.run net;
        let mep = Option.get !mep in
        let forged =
          Session.Frame.Fin
            { conn_id = Session.conn_id s; seq = 99L; sealed = String.make 24 'F' }
        in
        let header =
          Apna_net.Apna_header.make
            ~src_aid:(Apna_net.Addr.aid_of_int 100)
            ~src_ephid:(Ephid.to_bytes mep.cert.ephid)
            ~dst_aid:(Apna_net.Addr.aid_of_int 300)
            ~dst_ephid:(Ephid.to_bytes bob_ep.cert.ephid)
            ()
        in
        let pkt =
          Pkt_auth.seal ~auth_key:(Option.get (Host.kha mallory)).auth
            (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data
               ~payload:(Session.Frame.to_bytes forged))
        in
        (match Host.attachment mallory with
        | Some att -> att.submit pkt
        | None -> Alcotest.fail "no attachment");
        Network.run net;
        (* Bob's session survives and still carries data. *)
        Alcotest.(check int) "session alive" 1 (List.length (Host.sessions bob));
        ignore (Host.send alice s "still here");
        Network.run net;
        Alcotest.(check bool) "data still flows" true
          (List.exists (fun (_, d) -> d = "still here") (Host.received bob)));
    Alcotest.test_case "0-RTT refusal policy drops first flight only" `Quick
      (fun () ->
        let net, client, server = make_world () in
        Host.set_zero_rtt_policy server false;
        Host.on_data server (fun ~session ~data ->
            ignore (Host.send server session ("srv:" ^ data)));
        Host.publish server ~name:"svc.example.net" (fun () -> ());
        Network.run net;
        let dns_cert =
          Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 300)))
        in
        let record = ref None in
        Host.dns_lookup client ~name:"svc.example.net" ~dns:dns_cert (fun r ->
            record := r);
        Network.run net;
        let record = Option.get !record in
        Host.connect client ~remote:record.cert ~data0:"early"
          ~expect_accept:true (fun session ->
            (* Queued until Accept: arrives under the serving key. *)
            ignore (Host.send client session "late"));
        Network.run net;
        (* "early" was refused by policy; "late" made it. *)
        Alcotest.(check (list string)) "server view" [ "late" ]
          (List.map snd (Host.received server));
        Alcotest.(check (list string)) "client reply" [ "srv:late" ]
          (List.map snd (Host.received client)));
  ]

let () =
  Logs.set_level (Some Logs.Warning);
  Alcotest.run "apna_e2e"
    [
      ("basic", basic_tests);
      ("shutoff", shutoff_tests);
      ("lifecycle", lifecycle_tests);
    ]
