(* AS-node dispatch, host error paths, and simulator stress: the glue the
   other suites exercise implicitly, pinned down explicitly here. *)

open Apna

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let aid = Apna_net.Addr.aid_of_int

let make_world ?(seed = "asnode") () =
  let net = Network.create ~seed () in
  let _ = Network.add_as net 100 ~dns_zone:"z.test" () in
  let _ = Network.add_as net 300 () in
  Network.connect_as net 100 300 ();
  net

let bootstrapped net ~as_number ~name =
  let host = Network.add_host net ~as_number ~name ~credential:(name ^ "-tok") () in
  ok_or_fail (name ^ " bootstrap") (Host.bootstrap host);
  host

let asnode_tests =
  [
    Alcotest.test_case "duplicate AS number rejected" `Quick (fun () ->
        let net = make_world () in
        Alcotest.check_raises "raises"
          (Invalid_argument "Network.add_as: AS100 already exists") (fun () ->
            ignore (Network.add_as net 100 ())));
    Alcotest.test_case "unknown AS lookup" `Quick (fun () ->
        let net = make_world () in
        Alcotest.(check bool) "none" true (Network.node net (aid 999) = None));
    Alcotest.test_case "garbage control payload to MS is ignored" `Quick
      (fun () ->
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let node = Network.node_exn net 100 in
        let ms_ephid = (Option.get (Host.ms_cert alice)).ephid in
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 100)
            ~src_ephid:(Ephid.to_bytes (Option.get (Host.ctrl_ephid alice)))
            ~dst_aid:(aid 100) ~dst_ephid:(Ephid.to_bytes ms_ephid) ()
        in
        let pkt =
          Pkt_auth.seal ~auth_key:(Option.get (Host.kha alice)).auth
            (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Control
               ~payload:"\xff garbage")
        in
        (match Host.attachment alice with
        | Some att -> att.submit pkt
        | None -> Alcotest.fail "attachment");
        Network.run net;
        (* Nothing crashes, nothing is issued. *)
        Alcotest.(check int) "no issuance" 0
          (Management.issued_count (As_node.management node)));
    Alcotest.test_case "no-route feedback reaches the sender" `Quick (fun () ->
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let ep = ref None in
        Host.request_ephid alice (fun e -> ep := Some e);
        Network.run net;
        let ep = Option.get !ep in
        (* Destination AS 999 does not exist. *)
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 100)
            ~src_ephid:(Ephid.to_bytes ep.cert.ephid) ~dst_aid:(aid 999)
            ~dst_ephid:(String.make 16 'x') ()
        in
        let pkt =
          Pkt_auth.seal ~auth_key:(Option.get (Host.kha alice)).auth
            (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data
               ~payload:"lost")
        in
        (match Host.attachment alice with
        | Some att -> att.submit pkt
        | None -> Alcotest.fail "attachment");
        Network.run net;
        (match Host.unreachables alice with
        | Icmp.No_route :: _ -> ()
        | [] -> Alcotest.fail "no feedback"
        | r :: _ -> Alcotest.failf "wrong reason %s" (Icmp.reason_to_string r)));
    Alcotest.test_case "drop reasons are itemized" `Quick (fun () ->
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let node = Network.node_exn net 100 in
        let ep = ref None in
        Host.request_ephid alice (fun e -> ep := Some e);
        Network.run net;
        let ep = Option.get !ep in
        (* One bad-MAC drop, one expired drop. *)
        let header =
          Apna_net.Apna_header.make ~src_aid:(aid 100)
            ~src_ephid:(Ephid.to_bytes ep.cert.ephid) ~dst_aid:(aid 300)
            ~dst_ephid:(String.make 16 'x') ()
        in
        As_node.submit node
          (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload:"x");
        Network.advance_time net 2000.0 (* medium EphID expires *);
        As_node.submit node
          (Pkt_auth.seal ~auth_key:(Option.get (Host.kha alice)).auth
             (Apna_net.Packet.make ~header ~proto:Apna_net.Packet.Data ~payload:"x"));
        Network.run net;
        let reasons = Border_router.drop_reasons (As_node.border_router node) in
        Alcotest.(check (option int)) "bad-mac" (Some 1)
          (List.assoc_opt "bad-mac" reasons);
        Alcotest.(check (option int)) "expired" (Some 1)
          (List.assoc_opt "expired" reasons));
  ]

let host_error_tests =
  [
    Alcotest.test_case "bootstrap before attach fails" `Quick (fun () ->
        let h = Host.create ~name:"loner" ~rng:(Apna_crypto.Drbg.create ~seed:"l") () in
        (match Host.bootstrap h with
        | Error (Error.Rejected _) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
        | Ok () -> Alcotest.fail "bootstrapped without an AS"));
    Alcotest.test_case "wrong credential fails bootstrap" `Quick (fun () ->
        let net2 = make_world ~seed:"cred" () in
        let node = Network.node_exn net2 100 in
        let att =
          As_node.add_device node ~name:"dev" ~credential:"enrolled"
            ~deliver:(fun _ -> ())
        in
        (* The device bootstraps fine with its enrolled credential. *)
        let _, pub = Apna_crypto.X25519.generate (Apna_crypto.Drbg.create ~seed:"d") in
        Alcotest.(check bool) "enrolled works" true
          (Result.is_ok (att.bootstrap_rpc ~host_dh_pub:pub));
        (* An unenrolled credential is refused at the registry itself. *)
        (match
           Registry.bootstrap (As_node.registry node)
             ~now:(Network.now_unix net2) ~credential:"stranger" ~host_dh_pub:pub
         with
        | Error Error.Auth_failed -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "stranger accepted"));
    Alcotest.test_case "send on an unknown session fails" `Quick (fun () ->
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        let bep = Option.get !bep in
        let session = ref None in
        Host.connect alice ~remote:bep.cert ~data0:"x" (fun s -> session := Some s);
        Network.run net;
        let s = Option.get !session in
        ok_or_fail "close" (Host.close alice s);
        Network.run net;
        (match Host.send alice s "after close" with
        | Error (Error.Rejected _) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
        | Ok () -> Alcotest.fail "sent on a closed session"));
    Alcotest.test_case "connect to an expired certificate is refused locally"
      `Quick (fun () ->
        let net = make_world () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bep = ref None in
        Host.request_ephid bob ~lifetime:Lifetime.Short (fun e -> bep := Some e);
        Network.run net;
        let bep = Option.get !bep in
        Network.advance_time net 120.0;
        let fired = ref false in
        Host.connect alice ~remote:bep.cert ~data0:"late" (fun _ -> fired := true);
        Network.run net;
        Alcotest.(check bool) "continuation never fires" false !fired;
        Alcotest.(check int) "nothing sent for it" 0
          (List.length (Host.received bob)));
  ]

let stress_tests =
  [
    Alcotest.test_case "engine sustains 100k events" `Quick (fun () ->
        let e = Apna_sim.Engine.create () in
        let rng = Apna_sim.Rng.create 5L in
        let fired = ref 0 in
        for _ = 1 to 100_000 do
          Apna_sim.Engine.schedule e
            ~at:(Apna_sim.Rng.float rng *. 1000.0)
            (fun () -> incr fired)
        done;
        Apna_sim.Engine.run e;
        Alcotest.(check int) "all fired" 100_000 !fired);
    Alcotest.test_case "many sessions on one pair stay isolated" `Slow (fun () ->
        let net = make_world ~seed:"many" () in
        let alice = bootstrapped net ~as_number:100 ~name:"alice" in
        let bob = bootstrapped net ~as_number:300 ~name:"bob" in
        let bep = ref None in
        Host.request_ephid bob (fun e -> bep := Some e);
        Network.run net;
        let bep = Option.get !bep in
        let n = 50 in
        for i = 1 to n do
          Host.connect alice ~remote:bep.cert ~data0:(Printf.sprintf "s%d" i)
            (fun _ -> ())
        done;
        Network.run net;
        let got = List.map snd (Host.received bob) |> List.sort compare in
        let want =
          List.init n (fun i -> Printf.sprintf "s%d" (i + 1)) |> List.sort compare
        in
        Alcotest.(check (list string)) "all delivered once" want got;
        Alcotest.(check int) "bob tracks all sessions" n
          (List.length (Host.sessions bob)));
  ]

let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "apna_asnode"
    [
      ("as_node", asnode_tests);
      ("host_errors", host_error_tests);
      ("stress", stress_tests);
    ]
