examples/gateway_interop.ml: Addr Apna Apna_crypto Apna_net As_node Dns_service Error Format Gateway Host Ipv4_header List Logs Network Option Printf String
