examples/surveillance_audit.ml: Apna Apna_crypto Apna_net As_node Ephid Error Format Host Keys List Logs Network Option Printf Registry Result String
