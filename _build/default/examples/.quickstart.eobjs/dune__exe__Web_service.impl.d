examples/web_service.ml: Apna Apna_net As_node Dns_service Ephid Error Host List Logs Network Option Printf Session String
