examples/shutoff_demo.mli:
