examples/quickstart.ml: Apna Apna_util As_node Border_router Ephid Error Host List Logs Network Option Printf String
