examples/nat_ap.ml: Access_point Apna Apna_crypto Apna_util Ephid Error Host List Logs Network Option Printf Session String
