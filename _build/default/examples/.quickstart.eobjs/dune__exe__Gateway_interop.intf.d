examples/gateway_interop.mli:
