examples/surveillance_audit.mli:
