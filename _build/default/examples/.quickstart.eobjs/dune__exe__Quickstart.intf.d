examples/quickstart.mli:
