examples/nat_ap.mli:
