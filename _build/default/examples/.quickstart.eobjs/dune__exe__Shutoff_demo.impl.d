examples/shutoff_demo.ml: Apna Apna_util As_node Ephid Error Host Host_info List Logs Network Option Printf Registry Revocation Session String
