(* Hosts behind a NAT-mode access point (paper §VII-B).

   Two laptops share one subscription through an access point. The AP
   bootstraps them into its own small domain, relays their EphID requests
   to the real AS (so they receive genuine AS-signed certificates bound to
   keys the AS never links to an individual device), rewrites outgoing
   packets with its own per-packet MAC, and — as the accountability agent
   of its domain — can name the device behind any relayed EphID.

   Run with: dune exec examples/nat_ap.exe *)

open Apna

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);

  let net = Network.create ~seed:"nat-ap" () in
  let _home_isp = Network.add_as net 64500 () in
  let _remote_isp = Network.add_as net 64502 () in
  Network.connect_as net 64500 64502 ();

  (* The cafe's access point subscribes to the ISP like a single host. *)
  let ap =
    Access_point.create ~name:"cafe-ap"
      ~rng:(Apna_crypto.Drbg.split (Network.rng net) "ap")
      ~virtual_as:64512
  in
  Access_point.attach ap (Network.node_exn net 64500) ~credential:"cafe@isp";
  (match Access_point.bootstrap ap with
  | Ok () -> print_endline "access point bootstrapped; internal domain is up"
  | Error e -> failwith (Error.to_string e));

  (* Two laptops join the cafe WiFi: completely unmodified Host code. *)
  let laptop name =
    let h =
      Host.create ~name ~rng:(Apna_crypto.Drbg.split (Network.rng net) name) ()
    in
    Access_point.attach_internal ap h ~credential:(name ^ "@cafe");
    match Host.bootstrap h with
    | Ok () -> h
    | Error e -> failwith (Error.to_string e)
  in
  let laptop1 = laptop "laptop1" and laptop2 = laptop "laptop2" in

  (* A server out on the Internet. *)
  let server =
    Network.add_host net ~as_number:64502 ~name:"server" ~credential:"srv@isp" ()
  in
  (match Host.bootstrap server with Ok () -> () | Error e -> failwith (Error.to_string e));
  Host.on_data server (fun ~session ~data ->
      ignore (Host.send server session ("echo: " ^ data)));
  let server_ep = ref None in
  Host.request_ephid server (fun ep -> server_ep := Some ep);
  Network.run net;
  let server_ep = Option.get !server_ep in

  (* Both laptops talk to the server through the AP. *)
  Host.connect laptop1 ~remote:server_ep.cert ~data0:"hi from laptop1" (fun _ -> ());
  Host.connect laptop2 ~remote:server_ep.cert ~data0:"hi from laptop2" (fun _ -> ());
  Network.run net;

  List.iter
    (fun l ->
      List.iter
        (fun (_, d) -> Printf.printf "%s <- %S\n" (Host.name l) d)
        (Host.received l))
    [ laptop1; laptop2 ];

  Printf.printf "AP relayed %d EphID requests; %d live bindings in ephid_info\n"
    (Access_point.relayed_requests ap)
    (Access_point.ephid_count ap);

  (* Accountability inside the shared domain: the AS can only point at the
     AP; the AP pins the EphID to the device. *)
  (match Host.sessions laptop2 with
  | s :: _ ->
      let ephid = (Session.local_cert s).ephid in
      Printf.printf "who is behind EphID %s? AP says: %s\n"
        (Apna_util.Hex.encode (String.sub (Ephid.to_bytes ephid) 0 4))
        (Option.value ~default:"unknown" (Access_point.identify ap ephid))
  | [] -> ());
  print_endline "done."
