(* Shutoff protocol demo (paper §IV-E, Fig. 5, and §VIII-G2).

   A bot floods a victim from several EphIDs. The victim, holding the
   unwanted packets as cryptographic evidence, asks the *source* AS's
   accountability agent to revoke each offending EphID. After enough
   incidents the source AS revokes the bot's HID outright — the escalation
   ladder of §VIII-G2 — cutting off every EphID the bot holds.

   Run with: dune exec examples/shutoff_demo.exe *)

open Apna

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Error);

  let net = Network.create ~seed:"shutoff" () in
  let _bot_as = Network.add_as net 64500 () in
  let _victim_as = Network.add_as net 64502 () in
  Network.connect_as net 64500 64502 ();

  let bot = Network.add_host net ~as_number:64500 ~name:"bot" ~credential:"bot@isp" () in
  let victim =
    Network.add_host net ~as_number:64502 ~name:"victim" ~credential:"victim@isp" ()
  in
  List.iter
    (fun h -> match Host.bootstrap h with Ok () -> () | Error e -> failwith (Error.to_string e))
    [ bot; victim ];

  let victim_ep = ref None in
  Host.request_ephid victim (fun ep -> victim_ep := Some ep);
  Network.run net;
  let victim_ep = Option.get !victim_ep in

  let bot_as = Network.node_exn net 64500 in
  let revocations () = Revocation.size (As_node.revoked bot_as) in

  (* The victim's policy: any session that delivers a "FLOOD" payload gets
     shut off immediately using the packet itself as evidence. *)
  Host.on_data victim (fun ~session ~data ->
      if String.length data >= 5 && String.sub data 0 5 = "FLOOD" then begin
        match Host.last_packet victim session with
        | Some evidence ->
            (match Host.request_shutoff victim ~session ~evidence with
            | Ok () ->
                Printf.printf "victim: shutoff request sent against %s\n"
                  (Apna_util.Hex.encode
                     (String.sub (Ephid.to_bytes (Session.remote_cert session).ephid) 0 4))
            | Error e -> Printf.printf "victim: shutoff failed: %s\n" (Error.to_string e))
        | None -> ()
      end);

  (* The bot opens a new flow (fresh EphID — per-flow granularity) for each
     wave, so each shutoff kills only one EphID... until the quota trips. *)
  for wave = 1 to 7 do
    Host.connect bot ~remote:victim_ep.cert
      ~data0:(Printf.sprintf "FLOOD wave %d" wave)
      (fun _ -> ());
    Network.run net;
    Printf.printf
      "wave %d: victim received %d flood packets; bot AS revocation list: %d entries\n"
      wave
      (List.length (Host.received victim))
      (revocations ())
  done;

  (* After 6 incidents the AS revoked the bot's HID: the 7th wave died at
     egress because the bot's identity itself is now invalid (§VIII-G2). *)
  let bot_hid =
    Option.get
      (Registry.hid_of_credential (As_node.registry bot_as) ~credential:"bot@isp")
  in
  Printf.printf "\nbot HID still valid: %b\n"
    (Host_info.mem_valid (As_node.host_info bot_as) bot_hid);
  Printf.printf "floods delivered in total: %d of 7 attempted\n"
    (List.length (Host.received victim));
  print_endline
    "done: source accountability turned the victim's evidence into enforcement."
