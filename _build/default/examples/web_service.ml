(* Web service over APNA: DNS registration, receive-only EphIDs and the
   client–server connection establishment of paper §VII-A.

   The server publishes a receive-only EphID under "shop.example.net"; a
   shutoff request can never target it, so the published name cannot be
   taken offline. Each client connection is answered from a fresh serving
   EphID.

   Run with: dune exec examples/web_service.exe *)

open Apna

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);

  let net = Network.create ~seed:"web" () in
  let _isp = Network.add_as net 64500 ~dns_zone:"example.net" () in
  let _eyeball = Network.add_as net 64510 () in
  Network.connect_as net 64500 64510 ();

  let server =
    Network.add_host net ~as_number:64500 ~name:"shop-server"
      ~credential:"shop@isp" ()
  in
  let clients =
    List.map
      (fun i ->
        Network.add_host net ~as_number:64510
          ~name:(Printf.sprintf "client-%d" i)
          ~credential:(Printf.sprintf "client-%d@eyeball" i)
          ())
      [ 1; 2; 3 ]
  in
  List.iter
    (fun h -> match Host.bootstrap h with Ok () -> () | Error e -> failwith (Error.to_string e))
    (server :: clients);

  (* The server application: a tiny request/response protocol. *)
  Host.on_data server (fun ~session ~data ->
      let reply =
        match data with
        | "GET /price" -> "200 OK: 42 credits"
        | "GET /stock" -> "200 OK: 17 units"
        | _ -> "404 Not Found"
      in
      ignore (Host.send server session reply));

  print_endline "server: publishing receive-only EphID under shop.example.net";
  Host.publish server ~name:"shop.example.net" (fun () ->
      print_endline "server: DNS registration complete");
  Network.run net;

  (* Clients resolve the name through encrypted DNS and connect. The DNS
     service lives in the server's AS; clients address it by certificate
     (e.g. learned from their resolver configuration). *)
  let dns_cert = Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 64500))) in
  List.iteri
    (fun i client ->
      let request = if i mod 2 = 0 then "GET /price" else "GET /stock" in
      Host.dns_lookup client ~name:"shop.example.net" ~dns:dns_cert (function
        | None -> print_endline "client: NXDOMAIN?!"
        | Some record ->
            Printf.printf "%s: resolved to AS%d, receive-only=%b\n"
              (Host.name client)
              (Apna_net.Addr.aid_to_int record.cert.aid)
              record.receive_only;
            (* 0-RTT request under the receive-only key (§VII-C); the
               server answers from a fresh serving EphID. *)
            Host.connect client ~remote:record.cert ~data0:request
              ~expect_accept:record.receive_only (fun _session -> ())))
    clients;
  Network.run net;

  List.iter
    (fun client ->
      List.iter
        (fun (_, d) -> Printf.printf "%s <- %S\n" (Host.name client) d)
        (Host.received client))
    clients;

  (* Each connection was served from a distinct serving EphID. *)
  let serving_ephids =
    List.concat_map
      (fun c ->
        List.map (fun s -> Ephid.to_bytes (Session.remote_cert s).ephid) (Host.sessions c))
      clients
    |> List.sort_uniq String.compare
  in
  Printf.printf "distinct serving EphIDs observed by clients: %d (one per connection)\n"
    (List.length serving_ephids);
  print_endline "done."
