(** Online statistics for measurements: counters, mean/variance accumulators
    (Welford), and fixed-bucket histograms with percentile estimates. *)

module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

module Hist : sig
  type t

  val create : ?buckets:int -> lo:float -> hi:float -> unit -> t
  (** Linear-bucket histogram over [\[lo, hi\]]; out-of-range samples clamp
      to the edge buckets. *)

  val add : t -> float -> unit
  val count : t -> int

  val percentile : t -> float -> float
  (** [percentile t 0.99] estimates the p99 by linear interpolation within
      the bucket. Returns [nan] when empty. *)
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
end
