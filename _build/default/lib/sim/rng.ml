type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = create (int64 t)

let float t =
  (* 53 uniform bits into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits /. 9007199254740992.0

let int t n =
  if n < 1 then invalid_arg "Rng.int";
  if n = 1 then 0
  else begin
    let limit = max_int - (max_int mod n) in
    let rec draw () =
      let v = Int64.to_int (int64 t) land max_int in
      if v < limit then v mod n else draw ()
    in
    draw ()
  end

let exponential t ~mean =
  let u = float t in
  -.mean *. log (1.0 -. u)

let pareto t ~xm ~alpha =
  let u = float t in
  xm /. ((1.0 -. u) ** (1.0 /. alpha))

let lognormal t ~mu ~sigma =
  (* Box-Muller. *)
  let u1 = max (float t) 1e-12 and u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
