(** SplitMix64 pseudo-random numbers for workload generation.

    Fast and deterministic; used for traffic models (arrival times, flow
    durations, packet sizes). Cryptographic randomness uses
    {!Apna_crypto.Drbg} instead. *)

type t

val create : int64 -> t
val split : t -> t
(** [split t] derives an independent stream and advances [t]. *)

val int64 : t -> int64
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)], [n >= 1]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample (inter-arrival times). *)

val pareto : t -> xm:float -> alpha:float -> float
(** Pareto sample with scale [xm] and shape [alpha] (heavy-tailed flow
    sizes and durations). *)

val lognormal : t -> mu:float -> sigma:float -> float
val shuffle : t -> 'a array -> unit
