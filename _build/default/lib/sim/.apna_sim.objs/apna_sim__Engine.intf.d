lib/sim/engine.mli:
