lib/sim/rng.mli:
