lib/sim/stats.mli:
