type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable count : int }

let new_node () = { value = None; zero = None; one = None }
let create () = { root = new_node (); count = 0 }

let check_prefix prefix len =
  if len < 0 || len > 32 then invalid_arg "Lpm: prefix length";
  if prefix < 0 || prefix > 0xffffffff then invalid_arg "Lpm: prefix"

let bit addr i = (addr lsr (31 - i)) land 1

let add t ~prefix ~len v =
  check_prefix prefix len;
  let node = ref t.root in
  for i = 0 to len - 1 do
    let next =
      if bit prefix i = 0 then begin
        (match !node.zero with
        | None -> !node.zero <- Some (new_node ())
        | Some _ -> ());
        Option.get !node.zero
      end
      else begin
        (match !node.one with
        | None -> !node.one <- Some (new_node ())
        | Some _ -> ());
        Option.get !node.one
      end
    in
    node := next
  done;
  if !node.value = None then t.count <- t.count + 1;
  !node.value <- Some v

let lookup t addr =
  let best = ref t.root.value in
  let rec walk node i =
    match (if bit addr i = 0 then node.zero else node.one) with
    | None -> ()
    | Some next ->
        (match next.value with Some _ as v -> best := v | None -> ());
        if i < 31 then walk next (i + 1)
  in
  walk t.root 0;
  !best

let remove t ~prefix ~len =
  check_prefix prefix len;
  let rec walk node i =
    if i = len then begin
      if node.value <> None then t.count <- t.count - 1;
      node.value <- None
    end
    else
      match (if bit prefix i = 0 then node.zero else node.one) with
      | None -> ()
      | Some next -> walk next (i + 1)
  in
  walk t.root 0

let size t = t.count
