(** Longest-prefix-match routing table (binary trie over IPv4 prefixes) —
    the lookup structure of the baseline IPv4 router the APNA border router
    is benchmarked against. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> prefix:int -> len:int -> 'a -> unit
(** [add t ~prefix ~len v] installs a route for [prefix/len]; [prefix] is
    the network address as a 32-bit integer. [len] in [\[0, 32\]].
    Replaces an existing entry for the same prefix. *)

val lookup : 'a t -> int -> 'a option
(** Longest matching prefix for a 32-bit address. *)

val remove : 'a t -> prefix:int -> len:int -> unit
val size : 'a t -> int
