lib/baseline/lpm.mli:
