lib/baseline/apip_sketch.ml: Apna_crypto Hashtbl String
