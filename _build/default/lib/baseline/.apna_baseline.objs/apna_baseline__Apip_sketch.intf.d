lib/baseline/apip_sketch.mli:
