lib/baseline/ipv4_router.mli:
