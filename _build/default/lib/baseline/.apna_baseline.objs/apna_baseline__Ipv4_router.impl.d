lib/baseline/ipv4_router.ml: Addr Apna_net Int64 Ipv4_header Lpm String
