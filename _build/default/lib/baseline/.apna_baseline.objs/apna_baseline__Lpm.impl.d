lib/baseline/lpm.ml: Option
