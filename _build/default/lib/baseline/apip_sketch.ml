let fingerprint_size = 20

type t = {
  briefs : (string, int) Hashtbl.t;
  whitelisted : (int, unit) Hashtbl.t;
}

let create () = { briefs = Hashtbl.create 1024; whitelisted = Hashtbl.create 16 }

let fingerprint packet = String.sub (Apna_crypto.Sha256.digest packet) 0 fingerprint_size

let brief t ~sender ~packet = Hashtbl.replace t.briefs (fingerprint packet) sender
let verify t ~packet = Hashtbl.mem t.briefs (fingerprint packet)
let whitelist t ~flow = Hashtbl.replace t.whitelisted flow ()
let is_whitelisted t ~flow = Hashtbl.mem t.whitelisted flow
let briefs_stored t = Hashtbl.length t.briefs
let brief_bytes t = fingerprint_size * Hashtbl.length t.briefs
