(** Plain IPv4 forwarding — the baseline pipeline for the Fig. 8
    comparison: parse header, validate checksum, decrement TTL, LPM lookup,
    rewrite checksum. No accountability, no privacy. *)

type t

type verdict =
  | Forwarded of { next_hop : int; packet : string }
  | Dropped of string

val create : unit -> t
val add_route : t -> prefix:int -> len:int -> next_hop:int -> unit
val route_count : t -> int

val forward : t -> string -> verdict
(** [forward t packet] runs the full pipeline on a raw IPv4 packet. *)

val synthetic_table : t -> seed:int64 -> routes:int -> unit
(** Fills the table with pseudo-random /8–/24 routes for benchmarking. *)
