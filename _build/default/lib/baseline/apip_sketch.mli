(** A sketch of APIP (Naylor et al., SIGCOMM'14) — the closest related
    system and the paper's main comparison point (§IX).

    In APIP the source address is an {e accountability delegate}; senders
    {e brief} every packet (send its fingerprint) to their delegate, and
    on-path verifiers ask the delegate to {e vouch} for packets. This
    sketch models the delegate's brief store and the per-packet costs so
    the benchmarks can contrast APIP's briefing overhead against APNA's
    in-packet MAC, and its whitelisting gap (a malicious sender can skip
    briefing once a flow is verified) against APNA's per-packet
    attribution. *)

type t

val create : unit -> t

val brief : t -> sender:int -> packet:string -> unit
(** The sender reports a packet fingerprint to its delegate. *)

val verify : t -> packet:string -> bool
(** An on-path verifier asks the delegate to vouch: was it briefed? *)

val whitelist : t -> flow:int -> unit
(** Mark a flow verified: APIP stops asking (and a malicious sender can
    stop briefing) — the accountability gap APNA closes. *)

val is_whitelisted : t -> flow:int -> bool
val briefs_stored : t -> int
val brief_bytes : t -> int
(** Memory the delegate devotes to briefs — APNA's equivalent is zero. *)
