(** Flow-duration model after Brownlee & Claffy's "dragonflies and
    tortoises" (the paper's §VIII-G1 calibration source): a mixture of
    short-lived dragonflies, a lognormal body, and a Pareto tortoise tail,
    parameterized so that ≈45% of flows last under 2 s and ≈98% under 15
    minutes — the statistic the paper uses to pick the default EphID
    lifetime. *)

type t = {
  dragonfly_fraction : float;  (** flows drawn from the sub-2 s mode *)
  tortoise_fraction : float;  (** flows drawn from the Pareto tail *)
  body_mu : float;
  body_sigma : float;
  tail_xm : float;
  tail_alpha : float;
}

val default : t
(** Calibrated to the 45% / 98% targets above. *)

val sample_duration : t -> Apna_sim.Rng.t -> float
(** A flow duration in seconds. *)

val fraction_below : t -> Apna_sim.Rng.t -> threshold:float -> samples:int -> float
(** Monte-Carlo estimate of P(duration < threshold) — used by the tests to
    pin the calibration. *)
