(** Packet-size workloads for the forwarding benchmarks.

    The paper's Fig. 8 sweeps fixed Ethernet frame sizes from 128 to 1518
    bytes; IMIX is provided as an additional realistic mix. *)

val paper_sizes : int list
(** [128; 256; 512; 1024; 1518] — the §V-B3 sweep. *)

type t =
  | Fixed of int
  | Imix  (** 7:4:1 mix of 64-, 570- and 1518-byte frames (simple IMIX). *)

val sample : t -> Apna_sim.Rng.t -> int
val mean_size : t -> float
val pp : Format.formatter -> t -> unit
