type t = {
  dragonfly_fraction : float;
  tortoise_fraction : float;
  body_mu : float;
  body_sigma : float;
  tail_xm : float;
  tail_alpha : float;
}

(* Calibration targets: P(duration < 2 s) = 0.45 and P(< 15 min) = 0.98.
   The lognormal body (median 15 s, sigma 1.3) itself has ~6% mass below
   2 s and ~99.9% below 900 s, so the dragonfly mode carries 41.6% and the
   Pareto tortoise tail 2%:
     P(<2)   = 0.416 + 0.564 * 0.060            ~= 0.450
     P(<900) = 0.416 + 0.564 * 0.999            ~= 0.980 *)
let default =
  {
    dragonfly_fraction = 0.416;
    tortoise_fraction = 0.02;
    body_mu = log 15.0;
    body_sigma = 1.3;
    tail_xm = 900.0;
    tail_alpha = 1.2;
  }

let sample_duration t rng =
  let u = Apna_sim.Rng.float rng in
  if u < t.dragonfly_fraction then 0.01 +. (1.99 *. Apna_sim.Rng.float rng)
  else if u < t.dragonfly_fraction +. t.tortoise_fraction then
    Apna_sim.Rng.pareto rng ~xm:t.tail_xm ~alpha:t.tail_alpha
  else Apna_sim.Rng.lognormal rng ~mu:t.body_mu ~sigma:t.body_sigma

let fraction_below t rng ~threshold ~samples =
  let below = ref 0 in
  for _ = 1 to samples do
    if sample_duration t rng < threshold then incr below
  done;
  float_of_int !below /. float_of_int samples
