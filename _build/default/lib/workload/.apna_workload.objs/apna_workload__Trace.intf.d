lib/workload/trace.mli: Apna_sim Flow_model
