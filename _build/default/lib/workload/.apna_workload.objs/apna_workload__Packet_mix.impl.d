lib/workload/packet_mix.ml: Apna_sim Format List
