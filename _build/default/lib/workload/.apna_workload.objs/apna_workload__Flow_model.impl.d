lib/workload/flow_model.ml: Apna_sim
