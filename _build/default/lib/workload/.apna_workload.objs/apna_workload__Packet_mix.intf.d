lib/workload/packet_mix.mli: Apna_sim Format
