lib/workload/flow_model.mli: Apna_sim
