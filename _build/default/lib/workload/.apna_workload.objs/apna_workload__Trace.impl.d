lib/workload/trace.ml: Apna_sim Float Flow_model Hashtbl Option
