let paper_sizes = [ 128; 256; 512; 1024; 1518 ]

type t = Fixed of int | Imix

let imix = [ (7, 64); (4, 570); (1, 1518) ]
let imix_total_weight = List.fold_left (fun acc (w, _) -> acc + w) 0 imix

let sample t rng =
  match t with
  | Fixed n -> n
  | Imix ->
      let r = Apna_sim.Rng.int rng imix_total_weight in
      let rec pick acc = function
        | [] -> 1518
        | (w, size) :: rest -> if r < acc + w then size else pick (acc + w) rest
      in
      pick 0 imix

let mean_size = function
  | Fixed n -> float_of_int n
  | Imix ->
      let weighted = List.fold_left (fun acc (w, s) -> acc + (w * s)) 0 imix in
      float_of_int weighted /. float_of_int imix_total_weight

let pp ppf = function
  | Fixed n -> Format.fprintf ppf "%dB" n
  | Imix -> Format.pp_print_string ppf "IMIX"
