type t = int Ephid.Tbl.t

let create () = Ephid.Tbl.create 64
let revoke t ephid ~expiry = Ephid.Tbl.replace t ephid expiry
let is_revoked t ephid = Ephid.Tbl.mem t ephid
let size t = Ephid.Tbl.length t

let gc t ~now =
  let stale =
    Ephid.Tbl.fold (fun e expiry acc -> if expiry < now then e :: acc else acc) t []
  in
  List.iter (Ephid.Tbl.remove t) stale;
  List.length stale
