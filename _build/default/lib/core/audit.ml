type issuance = { at : int; ephid : Ephid.t; hid : Apna_net.Addr.hid }
type egress = { at : int; ephid : Ephid.t }

type t = {
  retain_s : int;
  (* Newest first; GC trims from the tail. *)
  mutable issuances : issuance list;
  egress_by_digest : (string, egress) Hashtbl.t;
}

let create ?(retain_s = 7 * 86_400) () =
  { retain_s; issuances = []; egress_by_digest = Hashtbl.create 256 }

let record_issuance t ~now ~ephid ~hid =
  t.issuances <- { at = now; ephid; hid } :: t.issuances

let record_egress t ~now ~ephid ~digest =
  Hashtbl.replace t.egress_by_digest digest { at = now; ephid }

let bindings_of t hid =
  List.filter_map
    (fun i ->
      if Apna_net.Addr.hid_equal i.hid hid then Some (i.at, i.ephid) else None)
    t.issuances
  |> List.rev

let find_sender t ~digest =
  Option.map
    (fun (e : egress) -> (e.at, e.ephid))
    (Hashtbl.find_opt t.egress_by_digest digest)

let gc t ~now =
  let horizon = now - t.retain_s in
  let before = List.length t.issuances + Hashtbl.length t.egress_by_digest in
  t.issuances <- List.filter (fun (i : issuance) -> i.at >= horizon) t.issuances;
  let stale =
    Hashtbl.fold
      (fun digest (e : egress) acc -> if e.at < horizon then digest :: acc else acc)
      t.egress_by_digest []
  in
  List.iter (Hashtbl.remove t.egress_by_digest) stale;
  before - (List.length t.issuances + Hashtbl.length t.egress_by_digest)

let issuance_count t = List.length t.issuances
let egress_count t = Hashtbl.length t.egress_by_digest
