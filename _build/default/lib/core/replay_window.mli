(** Anti-replay sliding window (paper §VIII-D).

    Tracks sequence numbers per session direction: a replayed packet —
    which a malicious entity could use to provoke shutoff incidents against
    the source — is detected and discarded by the destination. The window
    accepts out-of-order delivery up to [size] sequence numbers behind the
    highest seen, IPsec-style. *)

type t

val create : ?size:int -> unit -> t
(** [size] defaults to 64 and must be in [\[1, 1024\]]. *)

val check_and_update : t -> int64 -> bool
(** [check_and_update t seq] is [true] exactly when [seq] is fresh: neither
    seen before nor older than the window. Marks it seen. *)

val highest : t -> int64
(** Highest accepted sequence number, [-1L] initially. *)
