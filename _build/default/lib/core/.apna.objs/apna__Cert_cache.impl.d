lib/core/cert_cache.ml: Cert Ephid
