lib/core/session.mli: Cert Error Keys
