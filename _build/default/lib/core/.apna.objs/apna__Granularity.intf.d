lib/core/granularity.mli: Format
