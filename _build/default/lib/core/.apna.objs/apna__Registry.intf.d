lib/core/registry.mli: Apna_crypto Apna_net Cert Ephid Error Host_info Keys
