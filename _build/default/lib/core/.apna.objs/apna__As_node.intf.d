lib/core/as_node.mli: Accountability Apna_crypto Apna_net Audit Border_router Cert_cache Dns_service Ephid Host Host_info Icmp Keys Lifetime Management Registry Revocation Trust
