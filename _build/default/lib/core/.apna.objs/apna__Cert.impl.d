lib/core/cert.ml: Apna_crypto Apna_net Apna_util Ed25519 Ephid Error Format Keys Reader Result String
