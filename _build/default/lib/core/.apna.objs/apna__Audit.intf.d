lib/core/audit.mli: Apna_net Ephid
