lib/core/cert_cache.mli: Cert Ephid
