lib/core/trust.ml: Apna_net Cert Error Format Hashtbl
