lib/core/replay_window.ml: Array Int64
