lib/core/gateway.ml: Addr Apna_net Dns_service Error Gre Hashtbl Host Int64 Ipv4_header List Logs Printf Queue Session String
