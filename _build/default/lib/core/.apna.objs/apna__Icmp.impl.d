lib/core/icmp.ml: Apna_util Ecies Error Format Printf Reader Result
