lib/core/network.ml: Addr Apna_crypto Apna_net Apna_sim Apna_util As_node Float Gre Hashtbl Host Icmp Ipv4_header Link Logs Packet Printf String Topology Trust
