lib/core/granularity.ml: Format
