lib/core/network.mli: Apna_crypto Apna_net Apna_sim As_node Granularity Host Trust
