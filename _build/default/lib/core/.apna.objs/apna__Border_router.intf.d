lib/core/border_router.mli: Apna_net Audit Error Host_info Keys Revocation
