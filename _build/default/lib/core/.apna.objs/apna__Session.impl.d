lib/core/session.ml: Aead Apna_crypto Apna_util Bytes Cert Ephid Error Hkdf Int64 Keys Printf Reader Replay_window Result String X25519
