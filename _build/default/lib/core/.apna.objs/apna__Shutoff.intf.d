lib/core/shutoff.mli: Apna_net Cert Error Keys Msgs
