lib/core/shutoff.ml: Apna_crypto Apna_net Cert Ed25519 Error Keys Msgs
