lib/core/management.mli: Apna_crypto Apna_net Audit Cert Ephid Error Host_info Keys Lifetime Msgs Revocation
