lib/core/lifetime.mli: Format
