lib/core/accountability.mli: Apna_net Ephid Error Host_info Keys Msgs Revocation Trust
