lib/core/management.ml: Aead Apna_crypto Apna_net Audit Cert Drbg Ed25519 Ephid Error Host_info Keys Lifetime Msgs Option Revocation String
