lib/core/gateway.mli: Apna_crypto Apna_net Cert Dns_service Host
