lib/core/replay_window.mli:
