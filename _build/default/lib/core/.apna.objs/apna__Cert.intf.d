lib/core/cert.mli: Apna_net Ephid Error Format Keys
