lib/core/dns_service.mli: Apna_crypto Apna_net Cert Error Keys Msgs Trust
