lib/core/ecies.ml: Aead Apna_crypto Apna_util Drbg Error Hkdf Reader Result X25519
