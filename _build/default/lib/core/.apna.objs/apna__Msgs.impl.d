lib/core/msgs.ml: Apna_util Error Lifetime Printf Reader Result String Writer
