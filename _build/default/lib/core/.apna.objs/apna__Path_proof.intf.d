lib/core/path_proof.mli: Apna_net Error Keys
