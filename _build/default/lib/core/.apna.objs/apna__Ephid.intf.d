lib/core/ephid.mli: Apna_crypto Apna_net Error Format Hashtbl Keys
