lib/core/ephid.ml: Aes Apna_crypto Apna_net Apna_util Char Drbg Error Format Hashtbl Keys Printf String
