lib/core/pkt_auth.mli: Apna_net
