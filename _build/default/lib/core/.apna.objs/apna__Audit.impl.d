lib/core/audit.ml: Apna_net Ephid Hashtbl List Option
