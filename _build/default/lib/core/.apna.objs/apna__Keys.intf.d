lib/core/keys.mli: Aead Aes Apna_crypto Apna_net Drbg Ed25519
