lib/core/path_proof.ml: Apna_crypto Apna_net Apna_util Error Hkdf Hmac Keys List Reader Result String X25519
