lib/core/dns_service.ml: Aead Apna_crypto Apna_net Apna_util Cert Drbg Ed25519 Ephid Error Hashtbl Hkdf Keys Msgs Option Reader Result String Trust X25519
