lib/core/replay_filter.mli:
