lib/core/host_info.ml: Apna_net Error Keys Result
