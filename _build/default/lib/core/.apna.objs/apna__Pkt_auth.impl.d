lib/core/pkt_auth.ml: Apna_crypto Apna_header Apna_net Apna_util Packet String
