lib/core/keys.ml: Aead Aes Apna_crypto Apna_net Drbg Ed25519 Hkdf String X25519
