lib/core/registry.ml: Apna_crypto Apna_net Apna_util Cert Drbg Ed25519 Ephid Error Hashtbl Host_info Keys Option X25519
