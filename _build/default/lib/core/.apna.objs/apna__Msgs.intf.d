lib/core/msgs.mli: Error Lifetime
