lib/core/replay_filter.ml: Array Bytes Char Int64 String
