lib/core/trust.mli: Apna_net Cert Error
