lib/core/icmp.mli: Ecies Error Format
