lib/core/revocation.mli: Ephid
