lib/core/revocation.ml: Ephid List
