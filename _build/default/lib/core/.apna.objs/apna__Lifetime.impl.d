lib/core/lifetime.ml: Format Printf
