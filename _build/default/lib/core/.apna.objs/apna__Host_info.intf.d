lib/core/host_info.mli: Apna_net Error Keys
