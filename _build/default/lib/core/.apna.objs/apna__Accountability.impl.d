lib/core/accountability.ml: Apna_crypto Apna_net Char Ed25519 Ephid Error Hmac Host_info Keys Option Pkt_auth Revocation Shutoff String Trust
