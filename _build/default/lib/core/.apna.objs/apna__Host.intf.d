lib/core/host.mli: Apna_crypto Apna_net Cert Dns_service Ephid Error Granularity Icmp Keys Lifetime Registry Session Trust
