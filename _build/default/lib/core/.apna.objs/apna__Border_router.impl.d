lib/core/border_router.ml: Addr Apna_net Audit Ephid Error Hashtbl Host_info Keys List Option Packet Pkt_auth Revocation Topology
