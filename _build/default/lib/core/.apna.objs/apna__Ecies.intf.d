lib/core/ecies.mli: Apna_crypto Error
