lib/core/access_point.mli: Apna_crypto As_node Ephid Error Host
