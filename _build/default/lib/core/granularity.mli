(** EphID usage granularity (paper §VIII-A).

    APNA deliberately does not fix how hosts spread traffic over EphIDs;
    the four policies below trade privacy (sender-flow unlinkability) and
    shutoff blast-radius against issuance and management cost. *)

type t =
  | Per_flow  (** a fresh EphID for every connection (the typical case) *)
  | Per_host  (** one EphID for everything: cheap, fully linkable *)
  | Per_application of string
      (** one EphID per application label — lets host and AS pinpoint a
          misbehaving application together *)
  | Per_packet
      (** a fresh source EphID on every packet: strongest unlinkability;
          demultiplexing relies on the connection identifier carried in
          the session frame (cf. the one-time-address protocol the paper
          cites) *)

val pool_key : t -> string option
(** The reuse-pool key: [None] means never reuse ([Per_flow], [Per_packet]). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
