type entry = { kha : Keys.host_as; mutable revoked : bool }
type t = entry Apna_net.Addr.Hid_tbl.t

let create () = Apna_net.Addr.Hid_tbl.create 64

let register t hid kha =
  Apna_net.Addr.Hid_tbl.replace t hid { kha; revoked = false }

let find t hid =
  match Apna_net.Addr.Hid_tbl.find_opt t hid with
  | None -> Error Error.Unknown_host
  | Some entry when entry.revoked -> Error (Error.Revoked "HID")
  | Some entry -> Ok entry

let mem_valid t hid = Result.is_ok (find t hid)

let revoke_hid t hid =
  match Apna_net.Addr.Hid_tbl.find_opt t hid with
  | Some entry -> entry.revoked <- true
  | None -> ()

let count = Apna_net.Addr.Hid_tbl.length
