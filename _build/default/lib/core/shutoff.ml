open Apna_crypto

let make_request ~packet ~(dst_cert : Cert.t) ~(dst_keys : Keys.ephid_keys) =
  if dst_cert.sig_pub <> Ed25519.public_key dst_keys.sig_keypair then
    invalid_arg "Shutoff.make_request: certificate/key mismatch";
  let packet_bytes = Apna_net.Packet.to_bytes packet in
  Msgs.Shutoff_request
    {
      packet = packet_bytes;
      signature = Ed25519.sign dst_keys.sig_keypair packet_bytes;
      cert = Cert.to_bytes dst_cert;
    }

type parsed = {
  packet : Apna_net.Packet.t;
  signature : string;
  cert : Cert.t;
}

let parse_request = function
  | Msgs.Shutoff_request { packet; signature; cert } -> begin
      match Apna_net.Packet.of_bytes packet with
      | Error e -> Error (Error.Malformed ("shutoff packet: " ^ e))
      | Ok pkt -> begin
          match Cert.of_bytes cert with
          | Error e -> Error e
          | Ok cert -> Ok { packet = pkt; signature; cert }
        end
    end
  | _ -> Error (Error.Malformed "expected a shutoff request")
