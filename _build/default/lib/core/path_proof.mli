(** Strengthened shutoff via path attestations (paper §VIII-C).

    §IV-E authorizes only the destination to request a shutoff, because
    only the destination provably received the packet. The paper notes
    that combining APNA with path-validation proposals (Passport, ICING,
    OPT) extends authorization to on-path ASes. This module implements
    that combination in the OPT style:

    - any two ASes share a pairwise symmetric key derived from their
      (RPKI-registered) X25519 keys — the DRKey idea, no per-pair setup;
    - the source AS's border router stamps outgoing packets with one
      attestation per on-path AS: MAC(k_{S,i}, packet-MAC ‖ AID_i);
    - an on-path AS keeps the attestation of a packet it carried and can
      later present it to the source's accountability agent, which
      re-derives k_{S,i} and verifies — proof the claimant really carried
      the packet, so its shutoff request is accepted
      ({!Accountability.handle_shutoff} remains the destination path;
      {!verify_claim} is the on-path extension). *)

type attestation = { aid : Apna_net.Addr.aid; mac : string }
(** One on-path AS's proof; [mac] is 16 bytes. *)

val pairwise_key : Keys.as_keys -> peer_dh_pub:string -> (string, Error.t) result
(** [pairwise_key keys ~peer_dh_pub] is the symmetric key this AS shares
    with the AS owning [peer_dh_pub] — both sides derive the same value. *)

val attest :
  src_keys:Keys.as_keys ->
  path:(Apna_net.Addr.aid * string) list ->
  Apna_net.Packet.t ->
  (attestation list, Error.t) result
(** [attest ~src_keys ~path pkt] builds one attestation per [(aid,
    dh_pub)] on the path — run by the source border router at egress.
    Derives each pairwise key; production routers cache them, see
    {!attest_cached}. *)

val attest_cached :
  keys:(Apna_net.Addr.aid * string) list ->
  Apna_net.Packet.t ->
  attestation list
(** [attest_cached ~keys pkt] stamps with precomputed pairwise keys
    ([(aid, pairwise_key)] pairs) — the steady-state per-packet path. *)

val verify_claim :
  src_keys:Keys.as_keys ->
  claimant:Apna_net.Addr.aid ->
  claimant_dh_pub:string ->
  attestation:attestation ->
  Apna_net.Packet.t ->
  (unit, Error.t) result
(** Source-AS side: check that [claimant] holds a genuine attestation for
    this packet, i.e. was on its forwarding path. *)

val to_bytes : attestation list -> string
val of_bytes : string -> (attestation list, Error.t) result
