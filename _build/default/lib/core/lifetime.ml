type t = Short | Medium | Long

type policy = { short_s : int; medium_s : int; long_s : int }

let default_policy = { short_s = 60; medium_s = 900; long_s = 86_400 }

let seconds p = function
  | Short -> p.short_s
  | Medium -> p.medium_s
  | Long -> p.long_s

let to_int = function Short -> 0 | Medium -> 1 | Long -> 2

let of_int = function
  | 0 -> Ok Short
  | 1 -> Ok Medium
  | 2 -> Ok Long
  | n -> Error (Printf.sprintf "lifetime: unknown class %d" n)

let pp ppf t =
  Format.pp_print_string ppf
    (match t with Short -> "short" | Medium -> "medium" | Long -> "long")
