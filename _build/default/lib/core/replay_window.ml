type t = { size : int; seen : bool array; mutable highest : int64 }

let create ?(size = 64) () =
  if size < 1 || size > 1024 then invalid_arg "Replay_window.create: size";
  { size; seen = Array.make size false; highest = -1L }

let slot t seq = Int64.to_int (Int64.rem seq (Int64.of_int t.size))

let check_and_update t seq =
  if Int64.compare seq 0L < 0 then false
  else if Int64.compare seq t.highest > 0 then begin
    (* Advance: clear every slot between the old and new highest. *)
    let gap = Int64.sub seq t.highest in
    let to_clear =
      if Int64.compare gap (Int64.of_int t.size) >= 0 then t.size
      else Int64.to_int gap
    in
    for i = 1 to to_clear do
      t.seen.(slot t (Int64.add t.highest (Int64.of_int i))) <- false
    done;
    t.highest <- seq;
    t.seen.(slot t seq) <- true;
    true
  end
  else if Int64.compare (Int64.sub t.highest seq) (Int64.of_int t.size) >= 0 then
    false (* too old: outside the window *)
  else if t.seen.(slot t seq) then false
  else begin
    t.seen.(slot t seq) <- true;
    true
  end

let highest t = t.highest
