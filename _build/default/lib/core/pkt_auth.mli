(** Per-packet authentication (paper §IV-D2).

    Every packet a host sends carries an 8-byte MAC computed with the
    kHA authentication key shared between host and AS. This is the link
    between a packet and its sender: border routers verify it on egress,
    and the accountability agent re-verifies it when judging shutoff
    evidence. *)

val mac : auth_key:string -> Apna_net.Packet.t -> string
(** The 8-byte tag over the packet with its MAC field zeroed. *)

val seal : auth_key:string -> Apna_net.Packet.t -> Apna_net.Packet.t
(** Returns the packet with its header MAC filled in. *)

val verify : auth_key:string -> Apna_net.Packet.t -> bool
