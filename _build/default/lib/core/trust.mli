(** AS public-key store — the stand-in for RPKI (paper §IV-A assumption:
    "participating parties can retrieve and verify the public keys of
    ASes"). Maps AIDs to Ed25519 verification keys, plus named zone keys
    for DNSSEC-style record signing (§VII-A). *)

type t

val create : unit -> t
val register_as : t -> Apna_net.Addr.aid -> pub:string -> unit
val as_pub : t -> Apna_net.Addr.aid -> (string, Error.t) result
val register_zone : t -> string -> pub:string -> unit
val zone_pub : t -> string -> (string, Error.t) result

val verify_cert : t -> now:int -> Cert.t -> (unit, Error.t) result
(** Resolves the issuing AS's key and checks signature and expiry. *)
