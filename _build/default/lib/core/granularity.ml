type t = Per_flow | Per_host | Per_application of string | Per_packet

let pool_key = function
  | Per_host -> Some "host"
  | Per_application app -> Some ("app:" ^ app)
  | Per_flow | Per_packet -> None

let pp ppf = function
  | Per_flow -> Format.pp_print_string ppf "per-flow"
  | Per_host -> Format.pp_print_string ppf "per-host"
  | Per_application app -> Format.fprintf ppf "per-application(%s)" app
  | Per_packet -> Format.pp_print_string ppf "per-packet"

let equal (a : t) (b : t) = a = b
