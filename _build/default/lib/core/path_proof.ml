open Apna_crypto

let mac_size = 16

type attestation = { aid : Apna_net.Addr.aid; mac : string }

let pairwise_key (keys : Keys.as_keys) ~peer_dh_pub =
  match X25519.shared_secret ~secret:keys.dh_secret ~peer:peer_dh_pub with
  | Error e -> Error (Error.Crypto e)
  | Ok shared -> Ok (Hkdf.derive ~info:"apna:pathproof:v1" ~len:32 shared)

(* The attestation binds the packet through its host MAC (unique per packet
   thanks to the kHA keying) and names the attested AS. *)
let attestation_mac ~key ~aid (pkt : Apna_net.Packet.t) =
  String.sub
    (Hmac.Sha256.mac_list ~key
       [ pkt.header.mac; Apna_net.Addr.aid_to_bytes aid; Apna_net.Packet.bytes_for_mac pkt ])
    0 mac_size

let attest ~src_keys ~path pkt =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | (aid, dh_pub) :: rest -> begin
        match pairwise_key src_keys ~peer_dh_pub:dh_pub with
        | Error e -> Error e
        | Ok key -> build ({ aid; mac = attestation_mac ~key ~aid pkt } :: acc) rest
      end
  in
  build [] path

let attest_cached ~keys pkt =
  List.map (fun (aid, key) -> { aid; mac = attestation_mac ~key ~aid pkt }) keys

let verify_claim ~src_keys ~claimant ~claimant_dh_pub ~attestation pkt =
  if not (Apna_net.Addr.aid_equal attestation.aid claimant) then
    Error (Error.Rejected "attestation names a different AS")
  else begin
    match pairwise_key src_keys ~peer_dh_pub:claimant_dh_pub with
    | Error e -> Error e
    | Ok key ->
        if Apna_util.Ct.equal attestation.mac (attestation_mac ~key ~aid:claimant pkt)
        then Ok ()
        else Error (Error.Bad_signature "path attestation")
  end

let to_bytes attestations =
  let w = Apna_util.Rw.Writer.create () in
  Apna_util.Rw.Writer.u8 w (List.length attestations);
  List.iter
    (fun a ->
      Apna_util.Rw.Writer.bytes w (Apna_net.Addr.aid_to_bytes a.aid);
      Apna_util.Rw.Writer.bytes w a.mac)
    attestations;
  Apna_util.Rw.Writer.contents w

let of_bytes s =
  let open Apna_util.Rw in
  let r = Reader.of_string s in
  let parse =
    let* n = Reader.u8 r in
    let rec loop acc i =
      if i = 0 then Ok (List.rev acc)
      else
        let* aid_bytes = Reader.bytes r 4 in
        let* aid = Apna_net.Addr.aid_of_bytes aid_bytes in
        let* mac = Reader.bytes r mac_size in
        loop ({ aid; mac } :: acc) (i - 1)
    in
    let* attestations = loop [] n in
    let* () = Reader.expect_end r in
    Ok attestations
  in
  Result.map_error (fun e -> Error.Malformed ("path proof: " ^ e)) parse
