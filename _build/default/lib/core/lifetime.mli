(** EphID lifetime classes (paper §VIII-G1): rather than a single fixed
    expiration, an AS offers short/medium/long-term EphIDs so hosts can
    match token lifetime to flow duration. The 15-minute medium default
    follows the paper's observation that 98% of Internet flows last less
    than 15 minutes. *)

type t = Short | Medium | Long

type policy = { short_s : int; medium_s : int; long_s : int }

val default_policy : policy
(** Short = 60 s, Medium = 900 s (15 min), Long = 86400 s. *)

val seconds : policy -> t -> int
val to_int : t -> int
val of_int : int -> (t, string) result
val pp : Format.formatter -> t -> unit
