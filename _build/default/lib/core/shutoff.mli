(** Shutoff protocol messages — the victim's side (paper §IV-E, Fig. 5).

    A destination host that received an unwanted packet asks the {e source}
    AS's accountability agent to block the offending EphID. The request
    carries:
    - the unwanted packet itself (evidence the source really sent traffic
      to this destination — it bears the source AS's per-packet MAC),
    - an Ed25519 signature over the packet by the key bound to the
      destination EphID (proof the requester owns the destination), and
    - the destination EphID's certificate. *)

val make_request :
  packet:Apna_net.Packet.t -> dst_cert:Cert.t -> dst_keys:Keys.ephid_keys ->
  Msgs.t
(** Builds the signed [Shutoff_request].
    @raise Invalid_argument if [dst_cert] does not match [dst_keys]. *)

type parsed = {
  packet : Apna_net.Packet.t;
  signature : string;
  cert : Cert.t;
}

val parse_request : Msgs.t -> (parsed, Error.t) result
