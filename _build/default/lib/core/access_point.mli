(** NAT-mode connection-sharing access point (paper §VII-B).

    The AP is a single host from its AS's point of view, but runs a small
    APNA domain of its own for the devices behind it, playing all four
    roles:

    - {b RS}: authenticates internal hosts, establishes per-host keys and
      internal control EphIDs (issued under the AP's own domain keys and a
      private "virtual" AID);
    - {b MS}: relays EphID requests to the real AS's MS using the host's
      ephemeral public keys, so the certificates internal hosts receive are
      genuine AS-signed certificates — while the AS sees only the AP;
    - {b router}: verifies internal hosts' per-packet MACs, then rewrites
      the source AID and replaces the MAC with its own kHA before
      forwarding to the AS (Fig. 4 with the two §VII-B differences);
    - {b AA}: tracks which internal host is behind each relayed EphID
      ([ephid_info]) so complaints can be pinned to a device.

    Unchanged {!Host} code runs behind an AP: internal hosts bootstrap,
    request EphIDs, connect and serve exactly as when directly attached. *)

type t

val create :
  name:string -> rng:Apna_crypto.Drbg.t -> virtual_as:int -> t
(** [virtual_as] is the private AS number of the AP's internal domain
    (e.g. 64512+); its key is registered in the trust store at bootstrap
    so internal hosts can verify their bootstrap bundle. *)

val name : t -> string

val attach : t -> As_node.t -> credential:string -> unit
(** Attaches the AP to its AS as a device. *)

val bootstrap : t -> (unit, Error.t) result
(** Bootstraps the AP's host side (Fig. 2) and brings up the internal
    domain services. *)

val attach_internal : t -> Host.t -> credential:string -> unit
(** Enrolls and attaches a host behind the AP. *)

val identify : t -> Ephid.t -> string option
(** [identify t ephid] names the internal host using [ephid] — the AP's
    accountability function when the AS holds it responsible. *)

val ephid_count : t -> int
(** Number of relayed (live) EphID bindings. *)

val relayed_requests : t -> int
