(** One-shot public-key sealing (ECIES over X25519 + the AEAD): encrypt to
    the holder of an EphID's key-agreement key, given only its certificate.
    Used for encrypted ICMP payloads (§VIII-B future work); the DNS channel
    uses the bidirectional variant in {!Dns_service}. *)

type sealed = { eph_pub : string; nonce : string; body : string }

val seal : rng:Apna_crypto.Drbg.t -> peer_pub:string -> string -> (sealed, Error.t) result
(** [seal ~rng ~peer_pub plaintext] encrypts under a fresh ephemeral
    X25519 key; only the holder of the secret matching [peer_pub] opens it. *)

val open_ : secret:string -> sealed -> (string, Error.t) result

val to_bytes : sealed -> string
val of_bytes : string -> (sealed, Error.t) result
