(** Data-retention audit log (paper §VIII-H and conclusion: "ISPs can
    comply with data retention laws by storing customer to EphID bindings
    as well as the packets").

    An AS that enables retention records two append-only streams:
    - issuance: (time, EphID → HID) — the binding only it can produce;
    - egress: (time, EphID, packet digest) — evidence a specific packet
      left its network.

    Both support the lawful, targeted queries of §VIII-H — and nothing
    more: payloads are end-to-end encrypted, so retention never includes
    plaintext, and PFS means even full retention plus later key compromise
    does not decrypt past sessions. Entries expire after the configured
    retention window. *)

type t

val create : ?retain_s:int -> unit -> t
(** [retain_s] defaults to 7 days. *)

val record_issuance : t -> now:int -> ephid:Ephid.t -> hid:Apna_net.Addr.hid -> unit
val record_egress : t -> now:int -> ephid:Ephid.t -> digest:string -> unit

val bindings_of : t -> Apna_net.Addr.hid -> (int * Ephid.t) list
(** All EphIDs issued to a subscriber in the window, oldest first —
    answering "what identifiers did customer X hold?". *)

val find_sender : t -> digest:string -> (int * Ephid.t) option
(** Attribution of a retained packet digest: when it left and under which
    EphID — answering "did this packet leave your network, and who sent
    it?" (combined with {!bindings_of}/EphID decryption, the subscriber). *)

val gc : t -> now:int -> int
(** Drops entries older than the retention window; returns the count. *)

val issuance_count : t -> int
val egress_count : t -> int
