(* LRU over an intrusive doubly-linked list plus a hash table: O(1)
   observe/find/evict. *)

type node = {
  key : Ephid.t;
  mutable cert : Cert.t;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : node Ephid.Tbl.t;
  mutable head : node option; (* most recent *)
  mutable tail : node option; (* least recent *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cert_cache.create: capacity";
  { capacity; table = Ephid.Tbl.create capacity; head = None; tail = None; evicted = 0 }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  unlink t node;
  push_front t node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Ephid.Tbl.remove t.table node.key;
      t.evicted <- t.evicted + 1

let observe t (cert : Cert.t) =
  match Ephid.Tbl.find_opt t.table cert.ephid with
  | Some node ->
      node.cert <- cert;
      touch t node
  | None ->
      if Ephid.Tbl.length t.table >= t.capacity then evict_lru t;
      let node = { key = cert.ephid; cert; prev = None; next = None } in
      Ephid.Tbl.replace t.table cert.ephid node;
      push_front t node

let find t ephid =
  match Ephid.Tbl.find_opt t.table ephid with
  | Some node ->
      touch t node;
      Some node.cert
  | None -> None

let size t = Ephid.Tbl.length t.table
let evictions t = t.evicted
let memory_bytes t = Cert.size * size t
