type t = {
  as_keys : string Apna_net.Addr.Aid_tbl.t;
  zones : (string, string) Hashtbl.t;
}

let create () =
  { as_keys = Apna_net.Addr.Aid_tbl.create 16; zones = Hashtbl.create 4 }

let register_as t aid ~pub = Apna_net.Addr.Aid_tbl.replace t.as_keys aid pub

let as_pub t aid =
  match Apna_net.Addr.Aid_tbl.find_opt t.as_keys aid with
  | Some pub -> Ok pub
  | None ->
      Error
        (Error.Bad_signature
           (Format.asprintf "no trusted key for %a" Apna_net.Addr.pp_aid aid))

let register_zone t name ~pub = Hashtbl.replace t.zones name pub

let zone_pub t name =
  match Hashtbl.find_opt t.zones name with
  | Some pub -> Ok pub
  | None -> Error (Error.Bad_signature ("no trusted key for zone " ^ name))

let verify_cert t ~now (cert : Cert.t) =
  match as_pub t cert.aid with
  | Error err -> Error err
  | Ok pub -> Cert.verify ~as_pub:pub ~now cert
