(** APNA gateway: legacy IPv4 hosts on APNA without touching their network
    stack (paper §VII-D).

    A gateway is an APNA host plus a packet translator. Legacy IPv4
    packets entering on the LAN side are tunnelled — GRE-encapsulated, as
    in the paper's deployment story (Fig. 9) — through encrypted APNA
    sessions; each IPv4 flow gets its own source EphID.

    Client side: the gateway resolves the server's name through DNS (the
    record carries both the AID:EphID certificate and the server's public
    IPv4 address) and maps the destination address of outgoing IPv4
    packets to the APNA destination.

    Server side: {!expose} publishes a receive-only EphID; inbound
    sessions are assigned {e virtual endpoints} — private addresses drawn
    from 10.200.0.0/16 — so distinct remote flows stay distinguishable to
    the legacy server, exactly the paper's virtual-endpoint construction. *)

type t

val create : name:string -> rng:Apna_crypto.Drbg.t -> t

val host : t -> Host.t
(** The underlying APNA host: attach it with {!As_node.add_host} and
    bootstrap it like any other host. *)

val on_ipv4_output : t -> (string -> unit) -> unit
(** Installs the LAN-side output: raw IPv4 packets the gateway emits
    toward its legacy hosts. *)

val ipv4_output_log : t -> string list
(** All LAN-side output, oldest first (kept regardless of the handler). *)

val learn_destination : t -> ipv4:Apna_net.Addr.hid -> Dns_service.Record.t -> unit
(** Static mapping: packets to [ipv4] tunnel to the record's AID:EphID. *)

val resolve : t -> name:string -> ?dns:Cert.t -> (unit -> unit) -> unit
(** DNS lookup of [name]; on success the record's IPv4 → AID:EphID mapping
    is installed (the paper's "gateway inspects the DNS reply"). *)

val ipv4_input : t -> string -> unit
(** A raw IPv4 packet from a legacy host on the LAN side. Unroutable
    packets (no mapping) are dropped with a log message. *)

val expose :
  t -> name:string -> server_ip:Apna_net.Addr.hid -> ?dns:Cert.t ->
  (unit -> unit) -> unit
(** Server side: publish a receive-only EphID under [name] with the
    server's public [server_ip] in the record, and start translating
    inbound sessions to the legacy server. *)

val active_flows : t -> int
val virtual_endpoints : t -> int
