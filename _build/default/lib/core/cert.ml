open Apna_crypto

type t = {
  ephid : Ephid.t;
  expiry : int;
  kx_pub : string;
  sig_pub : string;
  aid : Apna_net.Addr.aid;
  aa_ephid : Ephid.t;
  signature : string;
}

let size = 16 + 4 + 32 + 32 + 4 + 16 + 64

let write_body w t =
  let open Apna_util.Rw.Writer in
  bytes w (Ephid.to_bytes t.ephid);
  u32_of_int w t.expiry;
  bytes w t.kx_pub;
  bytes w t.sig_pub;
  bytes w (Apna_net.Addr.aid_to_bytes t.aid);
  bytes w (Ephid.to_bytes t.aa_ephid)

let signed_bytes t =
  let w = Apna_util.Rw.Writer.create ~capacity:(size - 64) () in
  write_body w t;
  Apna_util.Rw.Writer.contents w

let issue (keys : Keys.as_keys) ~ephid ~expiry ~kx_pub ~sig_pub ~aa_ephid =
  if String.length kx_pub <> 32 || String.length sig_pub <> 32 then
    invalid_arg "Cert.issue: public key size";
  let unsigned =
    { ephid; expiry; kx_pub; sig_pub; aid = keys.aid; aa_ephid; signature = "" }
  in
  { unsigned with signature = Ed25519.sign keys.signing (signed_bytes unsigned) }

let verify ~as_pub ~now t =
  if t.expiry < now then Error (Error.Expired "certificate")
  else if
    Ed25519.verify ~pub:as_pub ~msg:(signed_bytes t) ~signature:t.signature
  then Ok ()
  else Error (Error.Bad_signature "certificate")

let to_bytes t =
  let w = Apna_util.Rw.Writer.create ~capacity:size () in
  write_body w t;
  Apna_util.Rw.Writer.bytes w t.signature;
  Apna_util.Rw.Writer.contents w

let of_bytes s =
  let open Apna_util.Rw in
  let r = Reader.of_string s in
  let parse =
    let* ephid_bytes = Reader.bytes r 16 in
    let* ephid = Ephid.of_bytes ephid_bytes in
    let* expiry = Reader.u32_to_int r in
    let* kx_pub = Reader.bytes r 32 in
    let* sig_pub = Reader.bytes r 32 in
    let* aid_bytes = Reader.bytes r 4 in
    let* aid = Apna_net.Addr.aid_of_bytes aid_bytes in
    let* aa_bytes = Reader.bytes r 16 in
    let* aa_ephid = Ephid.of_bytes aa_bytes in
    let* signature = Reader.bytes r 64 in
    let* () = Reader.expect_end r in
    Ok { ephid; expiry; kx_pub; sig_pub; aid; aa_ephid; signature }
  in
  Result.map_error (fun e -> Error.Malformed ("cert: " ^ e)) parse

let equal a b = to_bytes a = to_bytes b

let pp ppf t =
  Format.fprintf ppf "cert{%a by %a exp=%d}" Ephid.pp t.ephid
    Apna_net.Addr.pp_aid t.aid t.expiry
