open Apna_crypto

type services = { ms_cert : Cert.t; dns_cert : Cert.t option; aa_ephid : Ephid.t }

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  rng : Drbg.t;
  ctrl_lifetime_s : int;
  credentials : (string, Apna_net.Addr.hid option) Hashtbl.t;
  mutable next_hid : int;
  mutable services : services option;
}

let create ~keys ~host_info ~rng ?(ctrl_lifetime_s = 86_400) ?(first_hid = 0x0a000001)
    () =
  {
    keys;
    host_info;
    rng;
    ctrl_lifetime_s;
    credentials = Hashtbl.create 64;
    next_hid = first_hid;
    services = None;
  }

let set_service_certs t ~ms_cert ~dns_cert ~aa_ephid =
  t.services <- Some { ms_cert; dns_cert; aa_ephid }

let enroll t ~credential =
  if not (Hashtbl.mem t.credentials credential) then
    Hashtbl.replace t.credentials credential None

type reply = {
  ctrl_ephid : Ephid.t;
  ctrl_expiry : int;
  as_dh_pub : string;
  ms_cert : Cert.t;
  dns_cert : Cert.t option;
  aa_ephid : Ephid.t;
  id_info_signature : string;
}

let id_info_bytes ~ctrl_ephid ~ctrl_expiry =
  let w = Apna_util.Rw.Writer.create ~capacity:20 () in
  Apna_util.Rw.Writer.bytes w (Ephid.to_bytes ctrl_ephid);
  Apna_util.Rw.Writer.u32_of_int w ctrl_expiry;
  Apna_util.Rw.Writer.contents w

let bootstrap t ~now ~credential ~host_dh_pub =
  match Hashtbl.find_opt t.credentials credential with
  | None -> Error Error.Auth_failed
  | Some previous_hid -> begin
      match t.services with
      | None -> Error (Error.Rejected "AS services not initialized")
      | Some services -> begin
          match X25519.shared_secret ~secret:t.keys.dh_secret ~peer:host_dh_pub with
          | Error e -> Error (Error.Crypto e)
          | Ok shared_secret ->
              (* One live identity per subscriber: a fresh bootstrap revokes
                 the old HID and every EphID bound to it (§VI-A). *)
              Option.iter (Host_info.revoke_hid t.host_info) previous_hid;
              let hid = Apna_net.Addr.hid_of_int t.next_hid in
              t.next_hid <- t.next_hid + 1;
              Hashtbl.replace t.credentials credential (Some hid);
              let kha = Keys.derive_host_as ~shared_secret in
              Host_info.register t.host_info hid kha;
              let ctrl_expiry = now + t.ctrl_lifetime_s in
              let ctrl_ephid =
                Ephid.issue_random t.keys t.rng ~hid ~expiry:ctrl_expiry
              in
              let id_info_signature =
                Ed25519.sign t.keys.signing (id_info_bytes ~ctrl_ephid ~ctrl_expiry)
              in
              Ok
                ( {
                    ctrl_ephid;
                    ctrl_expiry;
                    as_dh_pub = t.keys.dh_public;
                    ms_cert = services.ms_cert;
                    dns_cert = services.dns_cert;
                    aa_ephid = services.aa_ephid;
                    id_info_signature;
                  },
                  hid )
        end
    end

let hid_of_credential t ~credential =
  Option.join (Hashtbl.find_opt t.credentials credential)

let credential_of_hid t hid =
  Hashtbl.fold
    (fun credential bound acc ->
      match bound with
      | Some h when Apna_net.Addr.hid_equal h hid -> Some credential
      | _ -> acc)
    t.credentials None

let customer_count t = Hashtbl.length t.credentials
