open Apna_crypto

type sealed = { eph_pub : string; nonce : string; body : string }

let derive ~shared ~eph_pub =
  Aead.of_secret (Hkdf.derive ~info:("apna:ecies:v1" ^ eph_pub) ~len:32 shared)

let seal ~rng ~peer_pub plaintext =
  let eph_sk, eph_pub = X25519.generate rng in
  match X25519.shared_secret ~secret:eph_sk ~peer:peer_pub with
  | Error e -> Error (Error.Crypto e)
  | Ok shared ->
      let nonce = Drbg.generate rng Aead.nonce_size in
      let body = Aead.seal ~key:(derive ~shared ~eph_pub) ~nonce plaintext in
      Ok { eph_pub; nonce; body }

let open_ ~secret t =
  match X25519.shared_secret ~secret ~peer:t.eph_pub with
  | Error e -> Error (Error.Crypto e)
  | Ok shared -> begin
      match
        Aead.open_ ~key:(derive ~shared ~eph_pub:t.eph_pub) ~nonce:t.nonce t.body
      with
      | Ok plaintext -> Ok plaintext
      | Error e -> Error (Error.Crypto e)
    end

let to_bytes t =
  let w = Apna_util.Rw.Writer.create () in
  Apna_util.Rw.Writer.bytes w t.eph_pub;
  Apna_util.Rw.Writer.bytes w t.nonce;
  Apna_util.Rw.Writer.bytes w t.body;
  Apna_util.Rw.Writer.contents w

let of_bytes s =
  let open Apna_util.Rw in
  let r = Reader.of_string s in
  let parse =
    let* eph_pub = Reader.bytes r 32 in
    let* nonce = Reader.bytes r 16 in
    Ok { eph_pub; nonce; body = Reader.rest r }
  in
  Result.map_error (fun e -> Error.Malformed ("ecies: " ^ e)) parse
