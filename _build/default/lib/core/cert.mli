(** Short-lived EphID certificates (paper §IV-C, Fig. 3).

    C_EphID = {EphID, ExpTime, K+_EphID, AID_AS, EphID_aa} signed with the
    AS's private key. A peer learns from it: the public keys bound to the
    EphID, its expiry, the AS it belongs to, and the accountability agent's
    EphID to contact for shutoff requests.

    Where the paper binds one Curve25519 key, we bind the X25519 (key
    agreement) and Ed25519 (shutoff authorization) public keys — see
    {!Keys.ephid_keys}. *)

type t = {
  ephid : Ephid.t;
  expiry : int;  (** Unix seconds; same lifetime as the EphID itself. *)
  kx_pub : string;  (** 32-byte X25519 public key. *)
  sig_pub : string;  (** 32-byte Ed25519 public key. *)
  aid : Apna_net.Addr.aid;  (** Issuing AS. *)
  aa_ephid : Ephid.t;  (** Where to send shutoff requests (§IV-E). *)
  signature : string;  (** 64-byte Ed25519 signature by the AS. *)
}

val size : int
(** Fixed wire size: 168 bytes. *)

val issue :
  Keys.as_keys -> ephid:Ephid.t -> expiry:int -> kx_pub:string ->
  sig_pub:string -> aa_ephid:Ephid.t -> t
(** Builds and signs a certificate with the AS's signing key. *)

val verify : as_pub:string -> now:int -> t -> (unit, Error.t) result
(** Signature and expiry check against the issuing AS's public key
    (obtained from {!Trust}). *)

val to_bytes : t -> string
val of_bytes : string -> (t, Error.t) result
val signed_bytes : t -> string
(** The byte string the signature covers. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
