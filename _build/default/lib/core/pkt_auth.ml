open Apna_net

let mac ~auth_key pkt =
  String.sub
    (Apna_crypto.Hmac.Sha256.mac ~key:auth_key (Packet.bytes_for_mac pkt))
    0 Apna_header.mac_size

let seal ~auth_key (pkt : Packet.t) =
  { pkt with header = Apna_header.with_mac pkt.header (mac ~auth_key pkt) }

let verify ~auth_key (pkt : Packet.t) =
  Apna_util.Ct.equal pkt.header.mac (mac ~auth_key pkt)
