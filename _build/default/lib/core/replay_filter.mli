(** In-network replay detection (paper §VIII-D, flagged there as future
    work: "ideally replayed packets should be filtered near the replay
    location, but this requires routers to perform replay detection ...
    without affecting forwarding performance").

    A border router cannot keep per-flow windows; instead this filter uses
    two alternating Bloom-filter generations keyed by the packet's unique
    host MAC. A packet is a replay if its key is present in either
    generation; insertions go to the current generation, and generations
    rotate every [rotate_every_s] seconds, bounding both memory and the
    detection horizon (one to two rotation periods).

    False positives (fresh packets flagged as replays) occur at the usual
    Bloom rate ~ (1 - e^{-kn/m})^k; the benchmarks measure it. False
    negatives are impossible within the horizon. *)

type t

val create :
  ?bits_log2:int -> ?hashes:int -> ?rotate_every_s:float -> unit -> t
(** Defaults: 2^20 bits (128 KiB) per generation, 4 hash functions,
    rotate every 10 s. *)

type verdict = Fresh | Replayed

val check_and_insert : t -> now:float -> string -> verdict
(** [check_and_insert t ~now key] — [key] is the packet's 8-byte MAC
    (unique per authenticated packet). Rotates generations as needed. *)

val inserted_current : t -> int
(** Insertions into the current generation (sizing diagnostics). *)

val memory_bytes : t -> int
