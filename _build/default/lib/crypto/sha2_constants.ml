(* SHA-2 round constants, derived rather than transcribed.

   FIPS 180-4 defines the initial hash values as the first 32 (resp. 64) bits
   of the fractional parts of the square roots of the first 8 primes, and the
   round constants as the same for the cube roots of the first 64 (resp. 80)
   primes. We compute them exactly with integer k-th roots over [Bigint]:
   frac(p^(1/k)) * 2^w = floor((p * 2^(k*w))^(1/k)) mod 2^w. *)

let first_primes n =
  let rec is_prime i d =
    if d * d > i then true else if i mod d = 0 then false else is_prime i (d + 1)
  in
  let rec collect acc i =
    if List.length acc = n then List.rev acc
    else collect (if is_prime i 2 then i :: acc else acc) (i + 1)
  in
  Array.of_list (collect [] 2)

(* floor(n^(1/k)) by binary search. *)
let iroot k n =
  let rec pow b e = if e = 0 then Bigint.one else Bigint.mul b (pow b (e - 1)) in
  let hi_bits = (Bigint.num_bits n / k) + 1 in
  let rec search lo hi =
    (* Invariant: lo^k <= n < hi^k. *)
    if Bigint.compare (Bigint.add lo Bigint.one) hi >= 0 then lo
    else begin
      let mid = Bigint.shift_right (Bigint.add lo hi) 1 in
      if Bigint.compare (pow mid k) n <= 0 then search mid hi else search lo mid
    end
  in
  search Bigint.zero (Bigint.shift_left Bigint.one hi_bits)

let frac_root ~k ~word_bits p =
  let n = Bigint.shift_left (Bigint.of_int p) (k * word_bits) in
  let root = iroot k n in
  Bigint.rem root (Bigint.shift_left Bigint.one word_bits)

let to_int b = Option.get (Bigint.to_int_opt b)

let to_int64 b =
  (* 64-bit constants can exceed OCaml's 62 value bits; reassemble halves. *)
  let lo = Bigint.rem b (Bigint.shift_left Bigint.one 32) in
  let hi = Bigint.shift_right b 32 in
  Int64.logor
    (Int64.shift_left (Int64.of_int (to_int hi)) 32)
    (Int64.of_int (to_int lo))

let primes80 = first_primes 80

let sha256_h =
  Array.init 8 (fun i -> to_int (frac_root ~k:2 ~word_bits:32 primes80.(i)))

let sha256_k =
  Array.init 64 (fun i -> to_int (frac_root ~k:3 ~word_bits:32 primes80.(i)))

let sha512_h =
  Array.init 8 (fun i -> to_int64 (frac_root ~k:2 ~word_bits:64 primes80.(i)))

let sha512_k =
  Array.init 80 (fun i -> to_int64 (frac_root ~k:3 ~word_bits:64 primes80.(i)))
