let key_size = 32

let clamp scalar =
  let b = Bytes.of_string scalar in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land 248));
  Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 127 lor 64));
  Bytes.unsafe_to_string b

(* RFC 7748 Montgomery ladder on the u-coordinate. Branching on scalar bits
   is acceptable here: see the side-channel note in {!Fe25519}. *)
let scalar_mult ~scalar ~point =
  if String.length scalar <> 32 || String.length point <> 32 then
    invalid_arg "X25519.scalar_mult: key size";
  let k = clamp scalar in
  let x1 = Fe25519.of_bytes point in
  let x2 = ref (Fe25519.one ()) and z2 = ref (Fe25519.zero ()) in
  let x3 = ref (Fe25519.copy x1) and z3 = ref (Fe25519.one ()) in
  let swap = ref 0 in
  for t = 254 downto 0 do
    let kt = (Char.code k.[t / 8] lsr (t mod 8)) land 1 in
    if !swap lxor kt = 1 then begin
      let tx = !x2 and tz = !z2 in
      x2 := !x3;
      z2 := !z3;
      x3 := tx;
      z3 := tz
    end;
    swap := kt;
    let a = Fe25519.add !x2 !z2 in
    let aa = Fe25519.sq a in
    let b = Fe25519.sub !x2 !z2 in
    let bb = Fe25519.sq b in
    let e = Fe25519.sub aa bb in
    let c = Fe25519.add !x3 !z3 in
    let d = Fe25519.sub !x3 !z3 in
    let da = Fe25519.mul d a in
    let cb = Fe25519.mul c b in
    let sum = Fe25519.add da cb in
    let diff = Fe25519.sub da cb in
    x3 := Fe25519.sq sum;
    z3 := Fe25519.mul x1 (Fe25519.sq diff);
    x2 := Fe25519.mul aa bb;
    z2 := Fe25519.mul e (Fe25519.add aa (Fe25519.mul_small e 121665))
  done;
  if !swap = 1 then begin
    x2 := !x3;
    z2 := !z3
  end;
  Fe25519.to_bytes (Fe25519.mul !x2 (Fe25519.invert !z2))

let base_point = String.init 32 (fun i -> if i = 0 then '\009' else '\000')
let public_of_secret sk = scalar_mult ~scalar:sk ~point:base_point

let shared_secret ~secret ~peer =
  let out = scalar_mult ~scalar:secret ~point:peer in
  if String.for_all (fun c -> c = '\000') out then
    Error "x25519: low-order peer point"
  else Ok out

let generate rng =
  let sk = Drbg.generate rng 32 in
  (sk, public_of_secret sk)
