(** SHA-2 initial hash values and round constants (FIPS 180-4), computed
    exactly from the square and cube roots of the first primes. *)

val sha256_h : int array
val sha256_k : int array
val sha512_h : int64 array
val sha512_k : int64 array
