(** HMAC (RFC 2104) over SHA-256 and SHA-512. *)

module type HASH = sig
  val digest_size : int
  val block_size : int
  val digest : string -> string
  val digest_list : string list -> string
end

module Make (H : HASH) : sig
  val mac : key:string -> string -> string
  (** [mac ~key msg] is the full-length HMAC tag. *)

  val mac_list : key:string -> string list -> string
  (** Tag over the concatenation of the parts, without concatenating. *)

  val verify : key:string -> tag:string -> string -> bool
  (** Constant-time tag check; accepts truncated tags of >= 8 bytes. *)
end

module Sha256 : sig
  val mac : key:string -> string -> string
  val mac_list : key:string -> string list -> string
  val verify : key:string -> tag:string -> string -> bool
end

module Sha512 : sig
  val mac : key:string -> string -> string
  val mac_list : key:string -> string list -> string
  val verify : key:string -> tag:string -> string -> bool
end
