(* Little-endian arrays of digits in radix 2^26. The representation is kept
   normalized: no leading (most-significant) zero digits, and zero is the
   empty array. 26-bit digits ensure every intermediate product of two digits
   plus carries fits comfortably within OCaml's 63-bit native integers. *)

let bits_per_digit = 26
let base = 1 lsl bits_per_digit
let digit_mask = base - 1

type t = int array

let zero : t = [||]
let is_zero n = Array.length n = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bigint.of_int: negative";
  let rec digits acc n = if n = 0 then acc else digits ((n land digit_mask) :: acc) (n lsr bits_per_digit) in
  Array.of_list (List.rev (digits [] n))

let one = of_int 1

let to_int_opt n =
  (* An OCaml int holds at most 62 value bits: accept up to 3 digits if the
     reassembled value does not overflow. *)
  if Array.length n > 3 then None
  else begin
    let v = ref 0 in
    let ok = ref true in
    for i = Array.length n - 1 downto 0 do
      if !v > max_int lsr bits_per_digit then ok := false
      else v := (!v lsl bits_per_digit) lor n.(i)
    done;
    if !ok then Some !v else None
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land digit_mask;
    carry := s lsr bits_per_digit
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bigint.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = Array.unsafe_get a i in
      for j = 0 to lb - 1 do
        let t =
          Array.unsafe_get r (i + j) + (ai * Array.unsafe_get b j) + !carry
        in
        Array.unsafe_set r (i + j) (t land digit_mask);
        carry := t lsr bits_per_digit
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize r
  end

let shift_left a k =
  if k < 0 then invalid_arg "Bigint.shift_left";
  if is_zero a || k = 0 then a
  else begin
    let dshift = k / bits_per_digit and bshift = k mod bits_per_digit in
    let la = Array.length a in
    let r = Array.make (la + dshift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bshift in
      r.(i + dshift) <- r.(i + dshift) lor (v land digit_mask);
      r.(i + dshift + 1) <- r.(i + dshift + 1) lor (v lsr bits_per_digit)
    done;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Bigint.shift_right";
  if is_zero a || k = 0 then a
  else begin
    let dshift = k / bits_per_digit and bshift = k mod bits_per_digit in
    let la = Array.length a in
    if dshift >= la then zero
    else begin
      let lr = la - dshift in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + dshift) lsr bshift in
        let hi =
          if bshift = 0 || i + dshift + 1 >= la then 0
          else (a.(i + dshift + 1) lsl (bits_per_digit - bshift)) land digit_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let bit a i =
  let d = i / bits_per_digit in
  if d >= Array.length a then false
  else a.(d) land (1 lsl (i mod bits_per_digit)) <> 0

let num_bits a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((la - 1) * bits_per_digit) + width top 0
  end

(* Division. Single-digit divisors use short division; the general case is
   Knuth's Algorithm D with normalization so the top divisor digit has its
   high bit set, which bounds the quotient-digit estimate error by 2. *)

let divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl bits_per_digit) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_small a b.(0)
  else begin
    (* Normalize so that the divisor's top digit >= base/2. *)
    let top = b.(Array.length b - 1) in
    let rec lead n acc = if n >= base / 2 then acc else lead (n lsl 1) (acc + 1) in
    let shift = lead top 0 in
    let u0 = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let lu = Array.length u0 in
    let m = lu - n in
    let u = Array.make (lu + 1) 0 in
    Array.blit u0 0 u 0 lu;
    let q = Array.make (m + 1) 0 in
    let v1 = v.(n - 1) and v2 = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl bits_per_digit) lor u.(j + n - 1) in
      let qhat = ref (num / v1) and rhat = ref (num mod v1) in
      let adjust () =
        if !qhat >= base || !qhat * v2 > (!rhat lsl bits_per_digit) lor u.(j + n - 2)
        then begin
          decr qhat;
          rhat := !rhat + v1;
          !rhat < base
        end
        else false
      in
      while adjust () do () done;
      (* Multiply-and-subtract qhat * v from u[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr bits_per_digit;
        let s = u.(i + j) - (p land digit_mask) - !borrow in
        if s < 0 then begin
          u.(i + j) <- s + base;
          borrow := 1
        end
        else begin
          u.(i + j) <- s;
          borrow := 0
        end
      done;
      let s = u.(j + n) - !carry - !borrow in
      if s < 0 then begin
        (* qhat was one too large: add the divisor back. *)
        u.(j + n) <- s + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let t = u.(i + j) + v.(i) + !c in
          u.(i + j) <- t land digit_mask;
          c := t lsr bits_per_digit
        done;
        u.(j + n) <- (u.(j + n) + !c) land digit_mask
      end
      else u.(j + n) <- s;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let rem a b = snd (divmod a b)
let mod_add a b m = rem (add a b) m
let mod_mul a b m = rem (mul a b) m

let of_decimal s =
  let ten = of_int 10 in
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Bigint.of_decimal: non-digit")
    s;
  !acc

let of_bytes_le s =
  let acc = ref zero in
  for i = String.length s - 1 downto 0 do
    acc := add (shift_left !acc 8) (of_int (Char.code s.[i]))
  done;
  !acc

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let byte_at n i =
  (* The i-th little-endian byte of n. *)
  let bitpos = i * 8 in
  let d = bitpos / bits_per_digit and off = bitpos mod bits_per_digit in
  let la = Array.length n in
  if d >= la then 0
  else begin
    let lo = n.(d) lsr off in
    let hi = if d + 1 < la then n.(d + 1) lsl (bits_per_digit - off) else 0 in
    (lo lor hi) land 0xff
  end

let to_bytes_le n width =
  if num_bits n > width * 8 then invalid_arg "Bigint.to_bytes_le: overflow";
  String.init width (fun i -> Char.chr (byte_at n i))

let to_bytes_be n width =
  if num_bits n > width * 8 then invalid_arg "Bigint.to_bytes_be: overflow";
  String.init width (fun i -> Char.chr (byte_at n (width - 1 - i)))

let pp ppf n =
  if is_zero n then Format.pp_print_string ppf "0"
  else begin
    let width = (num_bits n + 7) / 8 in
    Format.fprintf ppf "0x%s" (Apna_util.Hex.encode (to_bytes_be n width))
  end
