(** SHA-512 (FIPS 180-4). Required by Ed25519. *)

val digest_size : int
(** 64 bytes. *)

val block_size : int
(** 128 bytes. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val finalize : ctx -> string
val digest : string -> string
val digest_list : string list -> string
