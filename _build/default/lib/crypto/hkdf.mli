(** HKDF (RFC 5869) over HMAC-SHA256 — the key-derivation function used to
    turn Diffie-Hellman shared secrets into the symmetric keys of the
    protocol (kHA pairs, session keys, and the AS's kA' / kA'' subkeys). *)

val extract : ?salt:string -> ikm:string -> unit -> string
(** [extract ~salt ~ikm ()] is the 32-byte pseudo-random key. *)

val expand : prk:string -> info:string -> len:int -> string
(** [expand ~prk ~info ~len] derives [len] bytes ([len <= 8160]). *)

val derive : ?salt:string -> info:string -> len:int -> string -> string
(** [derive ~info ~len ikm] is extract-then-expand of [ikm]. *)
