(** AES-GCM authenticated encryption (NIST SP 800-38D) — the concrete
    CCA-secure scheme the paper cites for data encryption (§IV-A cites
    McGrew & Viega's GCM alongside OCB).

    96-bit IVs only (the standard fast path); the tag is the full 16
    bytes. Provided both standalone and as an alternative {!Aead} scheme;
    the Encrypt-then-MAC composition remains the default. *)

val iv_size : int
(** 12 bytes. *)

val tag_size : int
(** 16 bytes. *)

val encrypt :
  key:Aes.key -> iv:string -> ?aad:string -> string -> string * string
(** [encrypt ~key ~iv ~aad plaintext] is [(ciphertext, tag)]. The IV must
    be unique per key. *)

val decrypt :
  key:Aes.key -> iv:string -> ?aad:string -> tag:string -> string ->
  (string, string) result
(** Authenticated decryption; any modification of ciphertext, IV, AAD or
    tag fails. *)

val ghash : h:string -> string -> string
(** The GHASH universal hash over a 16-byte-aligned input — exposed for
    the known-answer tests. *)
