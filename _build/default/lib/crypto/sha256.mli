(** SHA-256 (FIPS 180-4). *)

val digest_size : int
(** 32 bytes. *)

val block_size : int
(** 64 bytes — relevant for HMAC key padding. *)

type ctx
(** Incremental hashing context (mutable). *)

val init : unit -> ctx
val feed : ctx -> string -> unit

val finalize : ctx -> string
(** [finalize c] pads, returns the 32-byte digest, and invalidates [c]. *)

val digest : string -> string
val digest_list : string list -> string
(** [digest_list parts] hashes the concatenation of [parts] without building
    the concatenated string. *)
