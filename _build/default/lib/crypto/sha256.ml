(* SHA-256 over native ints masked to 32 bits: on a 64-bit platform every
   intermediate sum of 32-bit quantities fits without overflow, and masking
   only at assignment keeps the compression loop branch-free. *)

let digest_size = 32
let block_size = 64
let mask = 0xffffffff

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int; (* total bytes fed *)
  mutable finalized : bool;
  sched : int array; (* 64-entry message schedule, owned by this context *)
}

let init () =
  {
    h = Array.copy Sha2_constants.sha256_h;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    finalized = false;
    sched = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress w h block off =
  for t = 0 to 15 do
    w.(t) <-
      (Char.code (Bytes.get block (off + (4 * t))) lsl 24)
      lor (Char.code (Bytes.get block (off + (4 * t) + 1)) lsl 16)
      lor (Char.code (Bytes.get block (off + (4 * t) + 2)) lsl 8)
      lor Char.code (Bytes.get block (off + (4 * t) + 3))
  done;
  for t = 16 to 63 do
    let s0 =
      let x = w.(t - 15) in
      rotr x 7 lxor rotr x 18 lxor (x lsr 3)
    in
    let s1 =
      let x = w.(t - 2) in
      rotr x 17 lxor rotr x 19 lxor (x lsr 10)
    in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + Sha2_constants.sha256_k.(t) + w.(t)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let feed ctx s =
  if ctx.finalized then invalid_arg "Sha256.feed: finalized context";
  ctx.total <- ctx.total + String.length s;
  let pos = ref 0 and len = String.length s in
  (* Top up a partial block first. *)
  if ctx.buf_len > 0 then begin
    let need = min (block_size - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len need;
    ctx.buf_len <- ctx.buf_len + need;
    pos := need;
    if ctx.buf_len = block_size then begin
      compress ctx.sched ctx.h ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= block_size do
    Bytes.blit_string s !pos ctx.buf 0 block_size;
    compress ctx.sched ctx.h ctx.buf 0;
    pos := !pos + block_size
  done;
  if len - !pos > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: finalized context";
  ctx.finalized <- true;
  let bit_len = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod block_size in
    if rem = 0 then 1 + 8 else 1 + 8 + (block_size - rem)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len - 1 - i) (Char.chr ((bit_len lsr (8 * i)) land 0xff))
  done;
  ctx.finalized <- false;
  feed ctx (Bytes.unsafe_to_string pad);
  ctx.finalized <- true;
  assert (ctx.buf_len = 0);
  String.init digest_size (fun i ->
      Char.chr ((ctx.h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xff))

let digest s =
  let c = init () in
  feed c s;
  finalize c

let digest_list parts =
  let c = init () in
  List.iter (feed c) parts;
  finalize c
