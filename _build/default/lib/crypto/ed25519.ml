(* Twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 over GF(2^255 - 19),
   points in extended homogeneous coordinates (X : Y : Z : T), XY = ZT.
   The unified addition formulas below are complete for this curve, so
   doubling reuses addition — slower than dedicated doubling but removes an
   entire class of formula-transcription bugs. *)

module Fe = Fe25519

let public_key_size = 32
let signature_size = 64

let d_const =
  (* d = -121665 / 121666 mod p *)
  Fe.mul (Fe.neg (Fe.of_int 121665)) (Fe.invert (Fe.of_int 121666))

let d2_const = Fe.add d_const d_const

type point = { x : Fe.t; y : Fe.t; z : Fe.t; t : Fe.t }

let identity () = { x = Fe.zero (); y = Fe.one (); z = Fe.one (); t = Fe.zero () }

let add p q =
  let a = Fe.mul (Fe.sub p.y p.x) (Fe.sub q.y q.x) in
  let b = Fe.mul (Fe.add p.y p.x) (Fe.add q.y q.x) in
  let c = Fe.mul (Fe.mul p.t d2_const) q.t in
  let d = Fe.mul_small (Fe.mul p.z q.z) 2 in
  let e = Fe.sub b a in
  let f = Fe.sub d c in
  let g = Fe.add d c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; z = Fe.mul f g; t = Fe.mul e h }

(* Dedicated doubling (dbl-2008-hwcd, a = -1): cheaper than the unified
   addition and used on every rung of the double-and-add ladders. *)
let double p =
  let a = Fe.sq p.x in
  let b = Fe.sq p.y in
  let c = Fe.mul_small (Fe.sq p.z) 2 in
  let d = Fe.neg a in
  let xy2 = Fe.sq (Fe.add p.x p.y) in
  let e = Fe.sub (Fe.sub xy2 a) b in
  let g = Fe.add d b in
  let f = Fe.sub g c in
  let h = Fe.sub d b in
  { x = Fe.mul e f; y = Fe.mul g h; z = Fe.mul f g; t = Fe.mul e h }

let compress p =
  let zinv = Fe.invert p.z in
  let x = Fe.mul p.x zinv and y = Fe.mul p.y zinv in
  let b = Bytes.of_string (Fe.to_bytes y) in
  if Fe.is_negative x then
    Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
  Bytes.unsafe_to_string b

let decompress s =
  if String.length s <> 32 then None
  else begin
    let sign = Char.code s.[31] lsr 7 in
    let y = Fe.of_bytes s in
    (* x^2 = (y^2 - 1) / (d y^2 + 1) *)
    let y2 = Fe.sq y in
    let u = Fe.sub y2 (Fe.one ()) in
    let v = Fe.add (Fe.mul d_const y2) (Fe.one ()) in
    match Fe.sqrt (Fe.mul u (Fe.invert v)) with
    | None -> None
    | Some x ->
        if Fe.is_zero x && sign = 1 then None
        else begin
          let x = if Fe.is_negative x <> (sign = 1) then Fe.neg x else x in
          Some { x; y; z = Fe.one (); t = Fe.mul x y }
        end
  end

let point_equal p q =
  (* (X1/Z1 = X2/Z2) and (Y1/Z1 = Y2/Z2), cross-multiplied. *)
  Fe.equal (Fe.mul p.x q.z) (Fe.mul q.x p.z)
  && Fe.equal (Fe.mul p.y q.z) (Fe.mul q.y p.z)

let scalar_mul scalar p =
  (* Little-endian double-and-add over a 32-byte scalar. *)
  let acc = ref (identity ()) and base = ref p in
  for i = 0 to 255 do
    if Char.code scalar.[i / 8] land (1 lsl (i mod 8)) <> 0 then
      acc := add !acc !base;
    base := double !base
  done;
  !acc

let base_point =
  (* B = (x, 4/5) with x even. *)
  let y = Fe.mul (Fe.of_int 4) (Fe.invert (Fe.of_int 5)) in
  let b = Bytes.of_string (Fe.to_bytes y) in
  match decompress (Bytes.unsafe_to_string b) with
  | Some p -> p
  | None -> assert false

(* 4-bit fixed-window table for the base point, precomputed once:
   window.(i).(d-1) = d * 2^(4i) * B, so a base multiplication costs at
   most 64 additions and no doublings. *)
let base_window =
  lazy
    (let windows = 64 and digits = 15 in
     let tbl = Array.make_matrix windows digits base_point in
     let unit = ref base_point in
     for i = 0 to windows - 1 do
       tbl.(i).(0) <- !unit;
       for d = 1 to digits - 1 do
         tbl.(i).(d) <- add tbl.(i).(d - 1) !unit
       done;
       for _ = 1 to 4 do
         unit := double !unit
       done
     done;
     tbl)

let scalar_mul_base scalar =
  let tbl = Lazy.force base_window in
  let acc = ref (identity ()) in
  for i = 0 to 63 do
    let byte = Char.code scalar.[i / 2] in
    let digit = if i land 1 = 0 then byte land 0xf else byte lsr 4 in
    if digit > 0 then acc := add !acc tbl.(i).(digit - 1)
  done;
  !acc

(* Scalar arithmetic modulo the group order
   L = 2^252 + 27742317777372353535851937790883648493. *)
let l_order =
  Bigint.add
    (Bigint.shift_left Bigint.one 252)
    (Bigint.of_decimal "27742317777372353535851937790883648493")

let reduce_mod_l bytes = Bigint.rem (Bigint.of_bytes_le bytes) l_order
let scalar_bytes n = Bigint.to_bytes_le n 32

type keypair = { seed : string; secret_scalar : string; prefix : string; pub : string }

let clamp_scalar h =
  let b = Bytes.of_string (String.sub h 0 32) in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land 248));
  Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 63 lor 64));
  Bytes.unsafe_to_string b

let keypair_of_seed seed =
  if String.length seed <> 32 then invalid_arg "Ed25519.keypair_of_seed";
  let h = Sha512.digest seed in
  let secret_scalar = clamp_scalar h in
  let prefix = String.sub h 32 32 in
  let pub = compress (scalar_mul_base secret_scalar) in
  { seed; secret_scalar; prefix; pub }

let generate rng = keypair_of_seed (Drbg.generate rng 32)
let public_key kp = kp.pub
let seed kp = kp.seed

let sign kp msg =
  let r = reduce_mod_l (Sha512.digest_list [ kp.prefix; msg ]) in
  let r_bytes = scalar_bytes r in
  let r_point = compress (scalar_mul_base r_bytes) in
  let k = reduce_mod_l (Sha512.digest_list [ r_point; kp.pub; msg ]) in
  let a = Bigint.of_bytes_le kp.secret_scalar in
  let s = Bigint.rem (Bigint.add r (Bigint.mul k a)) l_order in
  r_point ^ scalar_bytes s

let verify ~pub ~msg ~signature =
  if String.length signature <> 64 || String.length pub <> 32 then false
  else begin
    let r_bytes = String.sub signature 0 32 in
    let s_bytes = String.sub signature 32 32 in
    let s = Bigint.of_bytes_le s_bytes in
    if Bigint.compare s l_order >= 0 then false
    else
      match (decompress pub, decompress r_bytes) with
      | Some a, Some r ->
          let k = scalar_bytes (reduce_mod_l (Sha512.digest_list [ r_bytes; pub; msg ])) in
          (* s B = R + k A *)
          let lhs = scalar_mul_base (scalar_bytes s) in
          let rhs = add r (scalar_mul k a) in
          point_equal lhs rhs
      | _ -> false
  end
