(** Field arithmetic modulo p = 2^255 - 19, shared by X25519 and Ed25519.

    Elements are mutable arrays of 17 limbs of 15 bits (17 * 15 = 255), a
    deliberately unsaturated representation: every schoolbook product of two
    limbs plus accumulated carries fits in OCaml's 63-bit native int with a
    wide margin, so the reduction logic needs no delicate carry analysis.

    This code runs inside a network simulator; it is not hardened against
    timing side channels (conditional swaps use plain branches). *)

type t

val zero : unit -> t
val one : unit -> t
val of_int : int -> t
val copy : t -> t

val of_bytes : string -> t
(** [of_bytes s] decodes 32 little-endian bytes; the top bit is ignored
    (field elements occupy 255 bits). *)

val to_bytes : t -> string
(** Canonical 32-byte little-endian encoding of the fully reduced value. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val sq : t -> t
val mul_small : t -> int -> t

val pow_bytes : t -> string -> t
(** [pow_bytes a e] is [a^e] where [e] is a little-endian exponent. *)

val invert : t -> t
(** Addition-chain inversion (a^(p-2)). *)

val generic_invert : t -> t
(** Square-and-multiply inversion — the oracle {!invert} is tested
    against. *)

val is_zero : t -> bool
val equal : t -> t -> bool

val is_negative : t -> bool
(** Least significant bit of the canonical encoding (RFC 8032 sign). *)

val sqrt : t -> t option
(** [sqrt a] is a square root of [a] mod p when one exists. *)
