let hash_len = Sha256.digest_size

let extract ?(salt = "") ~ikm () = Hmac.Sha256.mac ~key:salt ikm

let expand ~prk ~info ~len =
  if len > 255 * hash_len then invalid_arg "Hkdf.expand: length too large";
  let out = Buffer.create len in
  let rec blocks prev i =
    if Buffer.length out >= len then ()
    else begin
      let t =
        Hmac.Sha256.mac_list ~key:prk [ prev; info; String.make 1 (Char.chr i) ]
      in
      Buffer.add_string out t;
      blocks t (i + 1)
    end
  in
  blocks "" 1;
  Buffer.sub out 0 len

let derive ?salt ~info ~len ikm = expand ~prk:(extract ?salt ~ikm ()) ~info ~len
