(* GF(2^128) arithmetic for GHASH, elements as big-endian (hi, lo) Int64
   pairs. Multiplication is the bitwise shift-and-reduce from the GCM
   specification; ~128 iterations per block keeps the code obviously
   correct (the T-table AES below it dominates the cost anyway). *)

let iv_size = 12
let tag_size = 16

let reduction = 0xe100000000000000L (* x^128 = x^7 + x^2 + x + 1 *)

let gf_mul (xh, xl) (yh, yl) =
  let zh = ref 0L and zl = ref 0L in
  let vh = ref yh and vl = ref yl in
  for i = 0 to 127 do
    let bit =
      if i < 64 then Int64.to_int (Int64.shift_right_logical xh (63 - i)) land 1
      else Int64.to_int (Int64.shift_right_logical xl (127 - i)) land 1
    in
    if bit = 1 then begin
      zh := Int64.logxor !zh !vh;
      zl := Int64.logxor !zl !vl
    end;
    let lsb = Int64.to_int !vl land 1 in
    vl :=
      Int64.logor
        (Int64.shift_right_logical !vl 1)
        (Int64.shift_left !vh 63);
    vh := Int64.shift_right_logical !vh 1;
    if lsb = 1 then vh := Int64.logxor !vh reduction
  done;
  (!zh, !zl)

let block_of_string s off = (String.get_int64_be s off, String.get_int64_be s (off + 8))

let string_of_block (hi, lo) =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 hi;
  Bytes.set_int64_be b 8 lo;
  Bytes.unsafe_to_string b

let pad16 s =
  let r = String.length s mod 16 in
  if r = 0 then s else s ^ String.make (16 - r) '\000'

(* GHASH over a 16-byte-aligned byte string. *)
let ghash_blocks h data =
  let n = String.length data / 16 in
  let y = ref (0L, 0L) in
  for i = 0 to n - 1 do
    let bh, bl = block_of_string data (16 * i) in
    let yh, yl = !y in
    y := gf_mul (Int64.logxor yh bh, Int64.logxor yl bl) h
  done;
  !y

let ghash ~h data =
  if String.length h <> 16 then invalid_arg "Gcm.ghash: subkey size";
  if String.length data mod 16 <> 0 then invalid_arg "Gcm.ghash: alignment";
  string_of_block (ghash_blocks (block_of_string h 0) data)

let lengths_block ~aad ~ct =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 (Int64.of_int (8 * String.length aad));
  Bytes.set_int64_be b 8 (Int64.of_int (8 * String.length ct));
  Bytes.unsafe_to_string b

let j0 iv = iv ^ "\x00\x00\x00\x01"

let inc32 block =
  let b = Bytes.of_string block in
  let c = Int32.add (Bytes.get_int32_be b 12) 1l in
  Bytes.set_int32_be b 12 c;
  Bytes.unsafe_to_string b

let tag_for ~key ~h ~iv ~aad ~ct =
  let s =
    ghash_blocks h (pad16 aad ^ pad16 ct ^ lengths_block ~aad ~ct)
  in
  Apna_util.Ct.xor (Aes.encrypt_block key (j0 iv)) (string_of_block s)

let check_iv iv = if String.length iv <> iv_size then invalid_arg "Gcm: IV size"

let encrypt ~key ~iv ?(aad = "") plaintext =
  check_iv iv;
  let h = block_of_string (Aes.encrypt_block key (String.make 16 '\000')) 0 in
  let ct = Aes.Ctr.crypt ~key ~nonce:(inc32 (j0 iv)) plaintext in
  (ct, tag_for ~key ~h ~iv ~aad ~ct)

let decrypt ~key ~iv ?(aad = "") ~tag ct =
  check_iv iv;
  if String.length tag <> tag_size then Error "gcm: tag size"
  else begin
    let h = block_of_string (Aes.encrypt_block key (String.make 16 '\000')) 0 in
    if not (Apna_util.Ct.equal tag (tag_for ~key ~h ~iv ~aad ~ct)) then
      Error "gcm: authentication failure"
    else Ok (Aes.Ctr.crypt ~key ~nonce:(inc32 (j0 iv)) ct)
  end
