(** HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 instantiation).

    All randomness in the repository flows through explicit [Drbg.t] handles
    so that every protocol run, test, and benchmark is deterministic and
    reproducible from a seed. *)

type t

val create : seed:string -> t
(** [create ~seed] instantiates the generator from entropy [seed]. *)

val generate : t -> int -> string
(** [generate t n] produces [n] pseudo-random bytes and advances the state. *)

val reseed : t -> string -> unit

val uniform : t -> int -> int
(** [uniform t n] is an unbiased integer in [\[0, n)], [n >= 1]. *)

val split : t -> string -> t
(** [split t label] derives an independent generator, e.g. one per host. *)
