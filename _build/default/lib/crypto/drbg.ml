type t = { mutable k : string; mutable v : string }

let update t provided =
  t.k <- Hmac.Sha256.mac_list ~key:t.k [ t.v; "\x00"; provided ];
  t.v <- Hmac.Sha256.mac ~key:t.k t.v;
  if provided <> "" then begin
    t.k <- Hmac.Sha256.mac_list ~key:t.k [ t.v; "\x01"; provided ];
    t.v <- Hmac.Sha256.mac ~key:t.k t.v
  end

let create ~seed =
  let t = { k = String.make 32 '\000'; v = String.make 32 '\001' } in
  update t seed;
  t

let reseed t entropy = update t entropy

let generate t n =
  let out = Buffer.create n in
  while Buffer.length out < n do
    t.v <- Hmac.Sha256.mac ~key:t.k t.v;
    Buffer.add_string out t.v
  done;
  update t "";
  Buffer.sub out 0 n

let uniform t n =
  if n < 1 then invalid_arg "Drbg.uniform";
  if n = 1 then 0
  else begin
    (* Rejection sampling over 8 random bytes (62 usable bits). *)
    let limit = max_int - (max_int mod n) in
    let rec draw () =
      let b = generate t 8 in
      let v = Int64.to_int (String.get_int64_le b 0) land max_int in
      if v < limit then v mod n else draw ()
    in
    draw ()
  end

let split t label =
  let seed = generate t 32 in
  create ~seed:(seed ^ label)
