(** Arbitrary-precision natural numbers.

    A small, dependency-free bignum sufficient for the cryptographic needs of
    this repository: Ed25519 scalar arithmetic modulo the group order, and
    derivation of the SHA-2 round constants from prime roots. Values are
    immutable and always non-negative; subtraction of a larger value from a
    smaller one is a programming error and raises [Invalid_argument]. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] converts a non-negative [int]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in an OCaml [int]. *)

val of_decimal : string -> t
(** [of_decimal s] parses a decimal literal (digits only).
    @raise Invalid_argument on a non-digit. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. @raise Division_by_zero. *)

val rem : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val bit : t -> int -> bool
val num_bits : t -> int

val mod_add : t -> t -> t -> t
val mod_mul : t -> t -> t -> t
(** [mod_mul a b m] is [(a * b) mod m]. *)

val of_bytes_le : string -> t
val of_bytes_be : string -> t

val to_bytes_le : t -> int -> string
(** [to_bytes_le n width] is the [width]-byte little-endian encoding.
    @raise Invalid_argument if [n] does not fit. *)

val to_bytes_be : t -> int -> string
val pp : Format.formatter -> t -> unit
