module type HASH = sig
  val digest_size : int
  val block_size : int
  val digest : string -> string
  val digest_list : string list -> string
end

module Make (H : HASH) = struct
  let pad_key key =
    let key = if String.length key > H.block_size then H.digest key else key in
    let padded = Bytes.make H.block_size '\000' in
    Bytes.blit_string key 0 padded 0 (String.length key);
    Bytes.unsafe_to_string padded

  let with_byte b key = String.map (fun c -> Char.chr (Char.code c lxor b)) key

  let mac_list ~key parts =
    let k = pad_key key in
    let inner = H.digest_list (with_byte 0x36 k :: parts) in
    H.digest_list [ with_byte 0x5c k; inner ]

  let mac ~key msg = mac_list ~key [ msg ]

  let verify ~key ~tag msg =
    let n = String.length tag in
    if n < 8 || n > H.digest_size then false
    else Apna_util.Ct.equal tag (String.sub (mac ~key msg) 0 n)
end

module Sha256 = Make (struct
  let digest_size = Sha256.digest_size
  let block_size = Sha256.block_size
  let digest = Sha256.digest
  let digest_list = Sha256.digest_list
end)

module Sha512 = Make (struct
  let digest_size = Sha512.digest_size
  let block_size = Sha512.block_size
  let digest = Sha512.digest
  let digest_list = Sha512.digest_list
end)
