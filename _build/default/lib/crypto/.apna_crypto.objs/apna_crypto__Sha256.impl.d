lib/crypto/sha256.ml: Array Bytes Char List Sha2_constants String
