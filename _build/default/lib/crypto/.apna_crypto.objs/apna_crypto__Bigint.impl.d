lib/crypto/bigint.ml: Apna_util Array Char Format List Stdlib String
