lib/crypto/hmac.mli:
