lib/crypto/aead.ml: Aes Apna_util Bytes Gcm Hkdf Hmac Int64 String
