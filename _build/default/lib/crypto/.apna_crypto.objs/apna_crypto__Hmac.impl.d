lib/crypto/hmac.ml: Apna_util Bytes Char Sha256 Sha512 String
