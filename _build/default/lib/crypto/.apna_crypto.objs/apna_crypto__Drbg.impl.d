lib/crypto/drbg.ml: Buffer Hmac Int64 String
