lib/crypto/aead.mli:
