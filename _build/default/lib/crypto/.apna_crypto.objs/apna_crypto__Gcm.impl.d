lib/crypto/gcm.ml: Aes Apna_util Bytes Int32 Int64 String
