lib/crypto/x25519.ml: Bytes Char Drbg Fe25519 String
