lib/crypto/sha2_constants.ml: Array Bigint Int64 List Option
