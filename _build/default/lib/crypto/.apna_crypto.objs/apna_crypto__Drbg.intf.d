lib/crypto/drbg.mli:
