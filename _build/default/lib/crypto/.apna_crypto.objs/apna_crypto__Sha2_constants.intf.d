lib/crypto/sha2_constants.mli:
