lib/crypto/aes.mli:
