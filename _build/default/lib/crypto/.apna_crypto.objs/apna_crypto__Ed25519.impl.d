lib/crypto/ed25519.ml: Array Bigint Bytes Char Drbg Fe25519 Lazy Sha512 String
