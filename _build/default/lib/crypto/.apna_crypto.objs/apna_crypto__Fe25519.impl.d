lib/crypto/fe25519.ml: Array Bigint Char String
