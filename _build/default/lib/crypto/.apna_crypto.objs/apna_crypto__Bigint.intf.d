lib/crypto/bigint.mli: Format
