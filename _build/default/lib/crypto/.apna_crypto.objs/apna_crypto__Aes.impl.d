lib/crypto/aes.ml: Apna_util Array Buffer Bytes Char Printf String
