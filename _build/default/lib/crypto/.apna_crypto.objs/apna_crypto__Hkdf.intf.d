lib/crypto/hkdf.mli:
