(** Ed25519 signatures (RFC 8032) — the scheme the paper uses for AS-signed
    EphID certificates (SUPERCOP ref10 in the prototype).

    Keys and signatures use the standard wire format: 32-byte public keys,
    32-byte seeds, 64-byte signatures. *)

val public_key_size : int
val signature_size : int

type keypair

val keypair_of_seed : string -> keypair
(** [keypair_of_seed seed] derives a keypair from a 32-byte seed. *)

val generate : Drbg.t -> keypair
val public_key : keypair -> string
val seed : keypair -> string

val sign : keypair -> string -> string
(** [sign kp msg] is the 64-byte detached signature. *)

val verify : pub:string -> msg:string -> signature:string -> bool
(** [verify ~pub ~msg ~signature] checks a detached signature; returns
    [false] (never raises) on malformed keys, points or scalars. *)
