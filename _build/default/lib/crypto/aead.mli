(** CCA-secure authenticated encryption by the Encrypt-then-MAC generic
    composition (Bellare–Namprempre), the construction the paper prescribes
    for data-plane payload encryption (§IV-A, §IV-D2).

    AES-256-CTR for secrecy, HMAC-SHA256 truncated to 16 bytes for
    integrity, with independent subkeys derived from the session key via
    HKDF. Nonces must be unique per key; the protocol layer uses a packet
    counter. *)

type key

type scheme =
  | Encrypt_then_mac  (** AES-256-CTR + HMAC-SHA256 (default). *)
  | Gcm  (** AES-256-GCM — the mode the paper cites (§IV-A). *)

val key_size : int
(** Input keying material size: 32 bytes. *)

val nonce_size : int
(** 16 bytes. *)

val tag_size : int
(** 16 bytes. *)

val of_secret : ?scheme:scheme -> string -> key
(** [of_secret ikm] derives the scheme's subkeys from a 32-byte secret
    (e.g. an X25519 shared secret). Both peers must pick the same scheme;
    this repository's protocols use the default. *)

val seal : key:key -> nonce:string -> ?aad:string -> string -> string
(** [seal ~key ~nonce ~aad plaintext] is [ciphertext ^ tag]; the tag also
    covers [nonce] and [aad]. *)

val open_ : key:key -> nonce:string -> ?aad:string -> string -> (string, string) result
(** [open_ ~key ~nonce ~aad sealed] authenticates and decrypts. Any
    modification of ciphertext, nonce or aad yields [Error _]. *)
