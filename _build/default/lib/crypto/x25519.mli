(** X25519 Diffie-Hellman (RFC 7748) — the key agreement used to derive
    host–AS keys (kHA) and session keys (kEaEb) in the paper's protocols. *)

val key_size : int
(** 32 bytes for scalars, public values and shared secrets. *)

val scalar_mult : scalar:string -> point:string -> string
(** [scalar_mult ~scalar ~point] is the raw X25519 function: the scalar is
    clamped per RFC 7748, the point is a u-coordinate. *)

val public_of_secret : string -> string
(** [public_of_secret sk] is [scalar_mult ~scalar:sk ~point:base]. *)

val shared_secret : secret:string -> peer:string -> (string, string) result
(** [shared_secret ~secret ~peer] is the DH output, or [Error _] when the
    result is the all-zero point (peer on a small-order subgroup). *)

val generate : Drbg.t -> string * string
(** [generate rng] is a fresh [(secret, public)] pair. *)
