let digest_size = 64
let block_size = 128

type ctx = {
  h : int64 array;
  buf : Bytes.t;
  mutable buf_len : int;
  mutable total : int;
  mutable finalized : bool;
  sched : int64 array; (* 80-entry message schedule, owned by this context *)
}

let init () =
  {
    h = Array.copy Sha2_constants.sha512_h;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    finalized = false;
    sched = Array.make 80 0L;
  }

let rotr x n = Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))
let ( +% ) = Int64.add
let ( ^% ) = Int64.logxor
let ( &% ) = Int64.logand

let compress w h block off =
  for t = 0 to 15 do
    w.(t) <- Bytes.get_int64_be block (off + (8 * t))
  done;
  for t = 16 to 79 do
    let s0 =
      let x = w.(t - 15) in
      rotr x 1 ^% rotr x 8 ^% Int64.shift_right_logical x 7
    in
    let s1 =
      let x = w.(t - 2) in
      rotr x 19 ^% rotr x 61 ^% Int64.shift_right_logical x 6
    in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 79 do
    let s1 = rotr !e 14 ^% rotr !e 18 ^% rotr !e 41 in
    let ch = (!e &% !f) ^% (Int64.lognot !e &% !g) in
    let t1 = !hh +% s1 +% ch +% Sha2_constants.sha512_k.(t) +% w.(t) in
    let s0 = rotr !a 28 ^% rotr !a 34 ^% rotr !a 39 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let t2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b;
    b := !a;
    a := t1 +% t2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let feed ctx s =
  if ctx.finalized then invalid_arg "Sha512.feed: finalized context";
  ctx.total <- ctx.total + String.length s;
  let pos = ref 0 and len = String.length s in
  if ctx.buf_len > 0 then begin
    let need = min (block_size - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len need;
    ctx.buf_len <- ctx.buf_len + need;
    pos := need;
    if ctx.buf_len = block_size then begin
      compress ctx.sched ctx.h ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= block_size do
    Bytes.blit_string s !pos ctx.buf 0 block_size;
    compress ctx.sched ctx.h ctx.buf 0;
    pos := !pos + block_size
  done;
  if len - !pos > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha512.finalize: finalized context";
  let bit_len = ctx.total * 8 in
  (* The length field is 16 bytes; an OCaml int cannot overflow it here. *)
  let pad_len =
    let rem = (ctx.total + 1 + 16) mod block_size in
    if rem = 0 then 1 + 16 else 1 + 16 + (block_size - rem)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len - 1 - i) (Char.chr ((bit_len lsr (8 * i)) land 0xff))
  done;
  feed ctx (Bytes.unsafe_to_string pad);
  ctx.finalized <- true;
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    Bytes.set_int64_be out (8 * i) ctx.h.(i)
  done;
  Bytes.unsafe_to_string out

let digest s =
  let c = init () in
  feed c s;
  finalize c

let digest_list parts =
  let c = init () in
  List.iter (feed c) parts;
  finalize c
