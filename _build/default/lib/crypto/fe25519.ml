let limbs = 17
let limb_bits = 15
let limb_mask = (1 lsl limb_bits) - 1

type t = int array

let zero () = Array.make limbs 0

let one () =
  let a = zero () in
  a.(0) <- 1;
  a

let of_int n =
  if n < 0 || n > 1 lsl 45 then invalid_arg "Fe25519.of_int";
  let a = zero () in
  a.(0) <- n land limb_mask;
  a.(1) <- (n lsr limb_bits) land limb_mask;
  a.(2) <- n lsr (2 * limb_bits);
  a

let copy = Array.copy

(* Carry propagation with modular folding: overflow out of limb 16 carries
   bits >= 2^255, and 2^255 = 19 (mod p), so it folds back into limb 0
   multiplied by 19. Limbs may be large (up to ~2^40 after mul) but never
   negative. Two passes leave every limb strictly below 2^15. *)
let carry a =
  for _pass = 1 to 2 do
    let c = ref 0 in
    for i = 0 to limbs - 1 do
      let v = a.(i) + !c in
      a.(i) <- v land limb_mask;
      c := v asr limb_bits
    done;
    a.(0) <- a.(0) + (19 * !c)
  done;
  a

let add a b =
  let r = Array.make limbs 0 in
  for i = 0 to limbs - 1 do
    Array.unsafe_set r i (Array.unsafe_get a i + Array.unsafe_get b i)
  done;
  carry r

(* p in base 2^15: limb 0 = 2^15 - 19, limbs 1..16 = 2^15 - 1. Adding 2p
   keeps every limb difference positive when b is weakly reduced. *)
let twop_limb i = if i = 0 then 2 * (limb_mask + 1 - 19) else 2 * limb_mask

let sub a b =
  let r = Array.make limbs 0 in
  for i = 0 to limbs - 1 do
    Array.unsafe_set r i
      (Array.unsafe_get a i + twop_limb i - Array.unsafe_get b i)
  done;
  carry r
let neg a = sub (zero ()) a

let fold t =
  (* t has 2*limbs digits; digits >= limbs carry a factor 2^255 = 19. *)
  let r = Array.make limbs 0 in
  for i = 0 to limbs - 1 do
    Array.unsafe_set r i
      (Array.unsafe_get t i + (19 * Array.unsafe_get t (i + limbs)))
  done;
  carry r

let mul a b =
  let t = Array.make (2 * limbs) 0 in
  for i = 0 to limbs - 1 do
    let ai = Array.unsafe_get a i in
    if ai <> 0 then
      for j = 0 to limbs - 1 do
        let k = i + j in
        Array.unsafe_set t k (Array.unsafe_get t k + (ai * Array.unsafe_get b j))
      done
  done;
  fold t

(* Squaring exploits symmetry: the off-diagonal products appear twice. *)
let sq a =
  let t = Array.make (2 * limbs) 0 in
  for i = 0 to limbs - 1 do
    let ai = Array.unsafe_get a i in
    Array.unsafe_set t (2 * i) (Array.unsafe_get t (2 * i) + (ai * ai));
    let ai2 = 2 * ai in
    for j = i + 1 to limbs - 1 do
      let k = i + j in
      Array.unsafe_set t k (Array.unsafe_get t k + (ai2 * Array.unsafe_get a j))
    done
  done;
  fold t

let mul_small a n =
  if n < 0 || n > 1 lsl 20 then invalid_arg "Fe25519.mul_small";
  carry (Array.map (fun x -> x * n) a)

let of_bytes s =
  if String.length s <> 32 then invalid_arg "Fe25519.of_bytes";
  let a = zero () in
  for i = 0 to limbs - 1 do
    (* Limb i covers bits [15i, 15i+15). *)
    let bitpos = i * limb_bits in
    let byte = bitpos / 8 and off = bitpos mod 8 in
    let b k = if byte + k < 32 then Char.code s.[byte + k] else 0 in
    let v = (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16)) lsr off in
    a.(i) <- v land limb_mask
  done;
  (* Bit 255 of the input is bit 15 of the final limb's raw window and is
     dropped by the [land limb_mask] above. *)
  a

(* Full canonical reduction: after [carry], the value is < 2^255; adding 19
   overflows bit 255 exactly when the value was >= p. *)
let canonical a =
  let a = carry (copy a) in
  let t = copy a in
  t.(0) <- t.(0) + 19;
  let c = ref 0 in
  for i = 0 to limbs - 1 do
    let v = t.(i) + !c in
    t.(i) <- v land limb_mask;
    c := v asr limb_bits
  done;
  if !c = 1 then t else a

let to_bytes a =
  let a = canonical a in
  let byte i =
    (* Byte i covers bits [8i, 8i+8). *)
    let bitpos = i * 8 in
    let limb = bitpos / limb_bits and off = bitpos mod limb_bits in
    let l k = if limb + k < limbs then a.(limb + k) else 0 in
    ((l 0 lor (l 1 lsl limb_bits)) lsr off) land 0xff
  in
  String.init 32 (fun i -> Char.chr (byte i))

let is_zero a =
  let a = canonical a in
  Array.for_all (fun x -> x = 0) a

let equal a b = is_zero (sub a b)
let is_negative a = Char.code (to_bytes a).[0] land 1 = 1

let pow_bytes base e =
  let result = ref (one ()) and acc = ref (copy base) in
  for i = 0 to (String.length e * 8) - 1 do
    let byte = Char.code e.[i / 8] in
    if byte land (1 lsl (i mod 8)) <> 0 then result := mul !result !acc;
    acc := sq !acc
  done;
  !result

(* Exponents derived once from p via Bigint, encoded little-endian. *)
let p_big =
  Bigint.sub (Bigint.shift_left Bigint.one 255) (Bigint.of_int 19)

let exp_p_minus_2 = Bigint.to_bytes_le (Bigint.sub p_big (Bigint.of_int 2)) 32

let exp_sqrt =
  (* (p + 3) / 8 — used by the candidate-root method below. *)
  Bigint.to_bytes_le
    (fst (Bigint.divmod (Bigint.add p_big (Bigint.of_int 3)) (Bigint.of_int 8)))
    32

let exp_sqrt_m1 =
  Bigint.to_bytes_le
    (fst (Bigint.divmod (Bigint.sub p_big Bigint.one) (Bigint.of_int 4)))
    32

(* Inversion by the standard curve25519 addition chain for p - 2 =
   2^255 - 21: 254 squarings and 11 multiplications, ~2x cheaper than
   generic square-and-multiply on this dense exponent. Validated against
   [pow_bytes _ exp_p_minus_2] by the test suite. *)
let invert z =
  let sq_n x n =
    let r = ref x in
    for _ = 1 to n do
      r := sq !r
    done;
    !r
  in
  let z2 = sq z in
  let z9 = mul z (sq_n z2 2) in
  let z11 = mul z2 z9 in
  let z_5_0 = mul z9 (sq z11) in
  let z_10_0 = mul (sq_n z_5_0 5) z_5_0 in
  let z_20_0 = mul (sq_n z_10_0 10) z_10_0 in
  let z_40_0 = mul (sq_n z_20_0 20) z_20_0 in
  let z_50_0 = mul (sq_n z_40_0 10) z_10_0 in
  let z_100_0 = mul (sq_n z_50_0 50) z_50_0 in
  let z_200_0 = mul (sq_n z_100_0 100) z_100_0 in
  let z_250_0 = mul (sq_n z_200_0 50) z_50_0 in
  mul (sq_n z_250_0 5) z11

let generic_invert a = pow_bytes a exp_p_minus_2

let sqrt_m1 = pow_bytes (of_int 2) exp_sqrt_m1

let sqrt a =
  (* Candidate r = a^((p+3)/8); then r^2 = a, or r^2 = -a and r * sqrt(-1)
     is the root, or a is not a square. *)
  let r = pow_bytes a exp_sqrt in
  let r2 = sq r in
  if equal r2 a then Some r
  else if equal r2 (neg a) then Some (mul r sqrt_m1)
  else None
