(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s]. *)

val decode : string -> (string, string) result
(** [decode h] parses a hexadecimal string (case-insensitive, even length)
    back into raw bytes. Returns [Error _] on odd length or non-hex input. *)

val decode_exn : string -> string
(** [decode_exn h] is [decode h], raising [Invalid_argument] on error.
    Intended for literals in tests and examples. *)

val pp : Format.formatter -> string -> unit
(** [pp ppf s] prints [s] as hex on [ppf]. *)
