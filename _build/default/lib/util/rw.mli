(** Byte readers and writers for fixed-layout wire formats.

    All multi-byte integers are big-endian (network byte order) unless the
    function name says otherwise. Readers return [result] rather than raising
    so that malformed packets from the network are ordinary values. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u32_of_int : t -> int -> unit
  val u64 : t -> int64 -> unit
  val bytes : t -> string -> unit

  val contents : t -> string
  (** [contents w] is everything written so far; [w] remains usable. *)
end

module Reader : sig
  type t

  val of_string : string -> t
  val remaining : t -> int
  val u8 : t -> (int, string) result
  val u16 : t -> (int, string) result
  val u32 : t -> (int32, string) result
  val u32_to_int : t -> (int, string) result
  val u64 : t -> (int64, string) result
  val bytes : t -> int -> (string, string) result

  val rest : t -> string
  (** [rest r] consumes and returns all remaining bytes. *)

  val expect_end : t -> (unit, string) result
  (** [expect_end r] is [Ok ()] iff no bytes remain. *)
end

val ( let* ) :
  ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
(** Result bind, re-exported for decoding pipelines. *)
