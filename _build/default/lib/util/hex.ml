let hex_digit n = "0123456789abcdef".[n]

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) (hex_digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (hex_digit (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then Error "hex: odd length"
  else
    let out = Bytes.create (n / 2) in
    let rec loop i =
      if i >= n / 2 then Ok (Bytes.unsafe_to_string out)
      else
        match (nibble h.[2 * i], nibble h.[(2 * i) + 1]) with
        | Some hi, Some lo ->
            Bytes.set out i (Char.chr ((hi lsl 4) lor lo));
            loop (i + 1)
        | _ -> Error (Printf.sprintf "hex: invalid digit at %d" (2 * i))
    in
    loop 0

let decode_exn h =
  match decode h with Ok s -> s | Error e -> invalid_arg e

let pp ppf s = Format.pp_print_string ppf (encode s)
