lib/util/ct.mli:
