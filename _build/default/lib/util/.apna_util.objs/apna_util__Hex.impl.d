lib/util/hex.ml: Bytes Char Format Printf String
