lib/util/rw.ml: Buffer Bytes Char Int32 Result String
