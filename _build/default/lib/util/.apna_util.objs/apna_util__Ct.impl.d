lib/util/ct.ml: Bytes Char String
