lib/util/rw.mli:
