let ( let* ) = Result.bind

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v = Buffer.add_string t (Bytes.unsafe_to_string
      (let b = Bytes.create 4 in Bytes.set_int32_be b 0 v; b))

  let u32_of_int t v = u32 t (Int32.of_int v)

  let u64 t v = Buffer.add_string t (Bytes.unsafe_to_string
      (let b = Bytes.create 8 in Bytes.set_int64_be b 0 v; b))

  let bytes = Buffer.add_string
  let contents = Buffer.contents
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }
  let remaining t = String.length t.src - t.pos

  let take t n =
    if remaining t < n then Error "short read"
    else begin
      let s = String.sub t.src t.pos n in
      t.pos <- t.pos + n;
      Ok s
    end

  let u8 t =
    let* s = take t 1 in
    Ok (Char.code s.[0])

  let u16 t =
    let* s = take t 2 in
    Ok ((Char.code s.[0] lsl 8) lor Char.code s.[1])

  let u32 t =
    let* s = take t 4 in
    Ok (String.get_int32_be s 0)

  let u32_to_int t =
    let* v = u32 t in
    Ok (Int32.to_int v land 0xffffffff)

  let u64 t =
    let* s = take t 8 in
    Ok (String.get_int64_be s 0)

  let bytes = take

  let rest t =
    let s = String.sub t.src t.pos (remaining t) in
    t.pos <- String.length t.src;
    s

  let expect_end t = if remaining t = 0 then Ok () else Error "trailing bytes"
end
