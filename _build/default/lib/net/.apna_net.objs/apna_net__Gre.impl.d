lib/net/gre.ml: Apna_util Reader String
