lib/net/apna_header.ml: Addr Apna_util Format Printf Reader String
