lib/net/topology.ml: Addr Hashtbl Link List Option Queue
