lib/net/packet.ml: Apna_header Apna_util Format Printf Reader String
