lib/net/apna_header.mli: Addr Format
