lib/net/ipv4_header.ml: Addr Apna_util Char Reader String
