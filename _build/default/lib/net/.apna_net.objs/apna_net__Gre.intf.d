lib/net/gre.mli:
