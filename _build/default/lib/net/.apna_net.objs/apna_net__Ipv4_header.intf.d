lib/net/ipv4_header.mli: Addr
