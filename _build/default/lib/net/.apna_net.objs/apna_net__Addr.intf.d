lib/net/addr.mli: Format Hashtbl Map
