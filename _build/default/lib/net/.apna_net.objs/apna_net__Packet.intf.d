lib/net/packet.mli: Apna_header Format
