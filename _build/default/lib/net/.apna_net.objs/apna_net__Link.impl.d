lib/net/link.ml:
