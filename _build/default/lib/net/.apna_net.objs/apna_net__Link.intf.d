lib/net/link.mli:
