lib/net/addr.ml: Char Format Hashtbl Int Map String
