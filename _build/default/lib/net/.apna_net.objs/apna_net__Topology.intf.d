lib/net/topology.mli: Addr Link
