(** AS-level topology and inter-domain routing.

    Transit ASes in APNA only forward on the destination AID (§IV-D3);
    routing is modelled as shortest-path (hop count) over an undirected AS
    graph, recomputed lazily after mutations. *)

type t

val create : unit -> t
val add_as : t -> Addr.aid -> unit

val connect : t -> Addr.aid -> Addr.aid -> Link.t -> unit
(** Adds both ASes if needed; replaces any existing link between them. *)

val link : t -> Addr.aid -> Addr.aid -> Link.t option
val neighbors : t -> Addr.aid -> Addr.aid list

val next_hop : t -> src:Addr.aid -> dst:Addr.aid -> Addr.aid option
(** [next_hop t ~src ~dst] is the neighbor to forward to, [None] when
    unreachable or already at the destination. *)

val path : t -> src:Addr.aid -> dst:Addr.aid -> Addr.aid list option
(** Full path including both endpoints. *)

val path_delay : t -> src:Addr.aid -> dst:Addr.aid -> bytes:int -> float option
(** End-to-end transit delay along the path for one frame. *)

val as_count : t -> int
