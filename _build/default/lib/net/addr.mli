(** Network identifiers.

    An {e AID} names an AS (4 bytes, like an AS number); a {e HID} names a
    host within one AS (4 bytes, like an IPv4 address — paper §III-B,
    §VII-D). A host is fully addressed by an [AID:EphID] tuple; HIDs never
    appear on the wire outside the issuing AS. *)

type aid
type hid

val aid_of_int : int -> aid
(** @raise Invalid_argument unless [0 <= n < 2^32]. *)

val aid_to_int : aid -> int
val aid_equal : aid -> aid -> bool
val aid_compare : aid -> aid -> int
val pp_aid : Format.formatter -> aid -> unit

val hid_of_int : int -> hid
val hid_to_int : hid -> int
val hid_equal : hid -> hid -> bool
val hid_compare : hid -> hid -> int
val pp_hid : Format.formatter -> hid -> unit

val aid_to_bytes : aid -> string
(** 4 bytes, big-endian. *)

val aid_of_bytes : string -> (aid, string) result
val hid_to_bytes : hid -> string
val hid_of_bytes : string -> (hid, string) result

module Aid_map : Map.S with type key = aid
module Hid_tbl : Hashtbl.S with type key = hid
module Aid_tbl : Hashtbl.S with type key = aid
