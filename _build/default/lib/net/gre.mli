(** GRE encapsulation (RFC 2784), the vehicle for deploying APNA over
    today's IPv4 Internet (paper §VII-D, Fig. 9): an APNA packet travels as
    IPv4 / GRE / APNA header / payload between APNA entities. *)

val size : int
(** 4 bytes (base header, no optional fields). *)

val protocol_apna : int
(** The EtherType-style protocol number we use for APNA payloads. The paper
    notes a real deployment would request one from IANA; we use 0x0A9A. *)

val encapsulate : protocol:int -> string -> string
val decapsulate : string -> (int * string, string) result
(** [decapsulate s] is [(protocol, payload)]; rejects reserved flag bits
    and non-zero versions. *)
