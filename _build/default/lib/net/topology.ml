module Aid_pair = struct
  type t = int * int

  let canon (a, b) = if a <= b then (a, b) else (b, a)
end

type t = {
  nodes : unit Addr.Aid_tbl.t;
  links : (Aid_pair.t, Link.t) Hashtbl.t;
  adjacency : Addr.aid list Addr.Aid_tbl.t;
  (* next.(src) : dst -> neighbor, rebuilt lazily on mutation. *)
  mutable routes : Addr.aid Addr.Aid_tbl.t Addr.Aid_tbl.t option;
}

let create () =
  {
    nodes = Addr.Aid_tbl.create 16;
    links = Hashtbl.create 16;
    adjacency = Addr.Aid_tbl.create 16;
    routes = None;
  }

let add_as t aid =
  if not (Addr.Aid_tbl.mem t.nodes aid) then begin
    Addr.Aid_tbl.replace t.nodes aid ();
    Addr.Aid_tbl.replace t.adjacency aid [];
    t.routes <- None
  end

let neighbors t aid =
  Option.value ~default:[] (Addr.Aid_tbl.find_opt t.adjacency aid)

let connect t a b link =
  if Addr.aid_equal a b then invalid_arg "Topology.connect: self-link";
  add_as t a;
  add_as t b;
  let key = Aid_pair.canon (Addr.aid_to_int a, Addr.aid_to_int b) in
  if not (Hashtbl.mem t.links key) then begin
    Addr.Aid_tbl.replace t.adjacency a (b :: neighbors t a);
    Addr.Aid_tbl.replace t.adjacency b (a :: neighbors t b)
  end;
  Hashtbl.replace t.links key link;
  t.routes <- None

let link t a b =
  Hashtbl.find_opt t.links (Aid_pair.canon (Addr.aid_to_int a, Addr.aid_to_int b))

(* All-pairs next-hop via one BFS per node: topologies here are AS-level
   graphs of at most a few hundred nodes. *)
let build_routes t =
  let all = Addr.Aid_tbl.fold (fun aid () acc -> aid :: acc) t.nodes [] in
  let table = Addr.Aid_tbl.create (List.length all) in
  let bfs src =
    let first_hop = Addr.Aid_tbl.create 16 in
    let visited = Addr.Aid_tbl.create 16 in
    Addr.Aid_tbl.replace visited src ();
    let q = Queue.create () in
    List.iter
      (fun n ->
        if not (Addr.Aid_tbl.mem visited n) then begin
          Addr.Aid_tbl.replace visited n ();
          Addr.Aid_tbl.replace first_hop n n;
          Queue.add n q
        end)
      (neighbors t src);
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let via = Addr.Aid_tbl.find first_hop u in
      List.iter
        (fun n ->
          if not (Addr.Aid_tbl.mem visited n) then begin
            Addr.Aid_tbl.replace visited n ();
            Addr.Aid_tbl.replace first_hop n via;
            Queue.add n q
          end)
        (neighbors t u)
    done;
    first_hop
  in
  List.iter (fun src -> Addr.Aid_tbl.replace table src (bfs src)) all;
  t.routes <- Some table;
  table

let routes t = match t.routes with Some r -> r | None -> build_routes t

let next_hop t ~src ~dst =
  if Addr.aid_equal src dst then None
  else
    Option.bind (Addr.Aid_tbl.find_opt (routes t) src) (fun hops ->
        Addr.Aid_tbl.find_opt hops dst)

let path t ~src ~dst =
  if Addr.aid_equal src dst then Some [ src ]
  else begin
    let rec walk acc cur fuel =
      if fuel = 0 then None
      else if Addr.aid_equal cur dst then Some (List.rev (dst :: acc))
      else
        match next_hop t ~src:cur ~dst with
        | None -> None
        | Some hop -> walk (cur :: acc) hop (fuel - 1)
    in
    walk [] src (1 + Addr.Aid_tbl.length t.nodes)
  end

let path_delay t ~src ~dst ~bytes =
  match path t ~src ~dst with
  | None -> None
  | Some hops ->
      let rec total acc = function
        | a :: (b :: _ as rest) -> begin
            match link t a b with
            | None -> None
            | Some l -> total (acc +. Link.transit_delay l ~bytes) rest
          end
        | [ _ ] | [] -> Some acc
      in
      total 0.0 hops

let as_count t = Addr.Aid_tbl.length t.nodes
