type aid = int
type hid = int

let check_u32 label n =
  if n < 0 || n > 0xffffffff then invalid_arg (label ^ ": not a u32");
  n

let aid_of_int n = check_u32 "Addr.aid_of_int" n
let aid_to_int n = n
let aid_equal = Int.equal
let aid_compare = Int.compare
let pp_aid ppf a = Format.fprintf ppf "AS%d" a
let hid_of_int n = check_u32 "Addr.hid_of_int" n
let hid_to_int n = n
let hid_equal = Int.equal
let hid_compare = Int.compare

let pp_hid ppf h =
  (* Render like a dotted quad, matching the IPv4-as-HID deployment. *)
  Format.fprintf ppf "%d.%d.%d.%d" ((h lsr 24) land 0xff) ((h lsr 16) land 0xff)
    ((h lsr 8) land 0xff) (h land 0xff)

let u32_to_bytes n =
  String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

let u32_of_bytes label s =
  if String.length s <> 4 then Error (label ^ ": need 4 bytes")
  else
    Ok
      ((Char.code s.[0] lsl 24) lor (Char.code s.[1] lsl 16)
      lor (Char.code s.[2] lsl 8) lor Char.code s.[3])

let aid_to_bytes = u32_to_bytes
let aid_of_bytes = u32_of_bytes "aid"
let hid_to_bytes = u32_to_bytes
let hid_of_bytes = u32_of_bytes "hid"

module Aid_map = Map.Make (Int)

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

module Hid_tbl = Int_tbl
module Aid_tbl = Int_tbl
