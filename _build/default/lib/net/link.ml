type t = { capacity_bps : float; propagation_s : float; mtu : int }

let make ?(capacity_gbps = 10.0) ?(propagation_ms = 5.0) ?(mtu = 1500) () =
  if capacity_gbps <= 0.0 || propagation_ms < 0.0 || mtu < 128 then
    invalid_arg "Link.make";
  {
    capacity_bps = capacity_gbps *. 1e9;
    propagation_s = propagation_ms /. 1e3;
    mtu;
  }

let transit_delay t ~bytes =
  t.propagation_s +. (float_of_int (8 * bytes) /. t.capacity_bps)
