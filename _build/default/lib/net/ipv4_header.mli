(** Minimal IPv4 header (RFC 791, no options) for the GRE-encapsulated
    deployment of APNA over today's Internet (paper §VII-D, Fig. 9). *)

type t = {
  ttl : int;
  protocol : int;
  src : Addr.hid;  (** IPv4 addresses double as HIDs in this deployment. *)
  dst : Addr.hid;
  payload_len : int;
}

val size : int
(** 20 bytes. *)

val protocol_gre : int
(** 47. *)

val make : ?ttl:int -> protocol:int -> src:Addr.hid -> dst:Addr.hid ->
  payload_len:int -> unit -> t

val to_bytes : t -> string
(** Serializes with a correct header checksum. *)

val of_bytes : string -> (t, string) result
(** Rejects short input, bad version/IHL and checksum mismatches. *)

val checksum : string -> int
(** The Internet checksum (RFC 1071) over a byte string. *)
