let size = 4
let protocol_apna = 0x0A9A

let encapsulate ~protocol payload =
  if protocol < 0 || protocol > 0xffff then invalid_arg "Gre.encapsulate";
  let w = Apna_util.Rw.Writer.create ~capacity:(size + String.length payload) () in
  Apna_util.Rw.Writer.u16 w 0 (* no checksum, reserved0 = 0, version 0 *);
  Apna_util.Rw.Writer.u16 w protocol;
  Apna_util.Rw.Writer.bytes w payload;
  Apna_util.Rw.Writer.contents w

let decapsulate s =
  let open Apna_util.Rw in
  let r = Reader.of_string s in
  let* flags = Reader.u16 r in
  if flags <> 0 then Error "gre: unsupported flags or version"
  else begin
    let* protocol = Reader.u16 r in
    Ok (protocol, Reader.rest r)
  end
