(** Point-to-point link model: capacity and propagation delay. *)

type t = { capacity_bps : float; propagation_s : float; mtu : int }

val make : ?capacity_gbps:float -> ?propagation_ms:float -> ?mtu:int -> unit -> t
(** Defaults: 10 Gbps, 5 ms, 1500-byte MTU. *)

val transit_delay : t -> bytes:int -> float
(** Serialization plus propagation delay for a frame of [bytes] bytes. *)
