# Convenience targets; dune does the real work.

.PHONY: all build test bench check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# CI gate: full build, every test suite, the chaos smoke (control-plane
# convergence under injected loss, E13), and a smoke run of the benchmark
# harness that must produce a parseable BENCH_results.json (the harness
# re-parses the file itself and fails loudly if it is invalid). The chaos
# smoke runs first so the final BENCH_results.json is the regular one.
check:
	dune build @all
	dune runtest
	rm -f BENCH_results.json
	dune exec bench/main.exe -- --faults --quick
	test -s BENCH_results.json
	rm -f BENCH_results.json
	dune exec bench/main.exe -- --quick
	test -s BENCH_results.json
	@echo "check: OK (chaos smoke passed, BENCH_results.json written and validated)"

clean:
	dune clean
	rm -f BENCH_results.json
