# Convenience targets; dune does the real work.

.PHONY: all build test bench check linkage-gate clean

# Linkage exclusivity: the privacy broker is the only sanctioned path from
# an EphID back to a host identity. Any direct Audit.bindings_of /
# Audit.find_sender caller outside lib/broker/ (and audit's own
# definition) bypasses budgets and the decision journal — fail the build.
linkage-gate:
	@violations=$$(grep -rn "Audit\.bindings_of\|Audit\.find_sender" \
	  lib bin bench examples test \
	  --include='*.ml' --include='*.mli' \
	  | grep -v "^lib/broker/" | grep -v "^lib/core/audit\." || true); \
	if [ -n "$$violations" ]; then \
	  echo "linkage-gate: direct audit linkage outside the broker:"; \
	  echo "$$violations"; \
	  exit 1; \
	fi; \
	echo "linkage-gate: OK (all EphID->HID linkage goes through lib/broker)"

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# CI gate: full build, every test suite, a flight-recorder smoke (apnad
# trace must export a Chrome trace that trace_check validates: a JSON
# array whose every element carries name/ph/ts), the chaos smoke
# (control-plane convergence under injected loss, E13), the
# short-lifetime survivability smoke (sessions migrating across Short
# EphID expiries under the fault mix, E14), the burst-pipeline smoke
# (E17: batched egress with its allocation and regression gates, writing
# burst.json), and a smoke run of the
# benchmark harness that must produce a parseable BENCH_results.json
# (the harness re-parses the file itself and fails loudly if it is
# invalid; the --faults smoke must also produce a telemetry.json whose
# fault-sweep rows fired the replay-flood alert), plus the
# warrant-storm smoke (E15: brokered linkage under
# budget pressure against live traffic, with the data-plane regression
# gate), the trace-scale smoke (E16: reduced-population million-host
# replay with its peak-rate and baseline gates, writing
# trace_scale.json), the attack-campaign smoke (E18: the 1% misbehavior
# tier against the hardened accountability agent, writing
# attack_campaign.json; its output must show the shutoff-stall and
# revocation-storm alerts firing AND resolving) and the linkage grep
# gate. The chaos, lifetime, storm, scale, burst and campaign smokes run
# first so the final BENCH_results.json is the regular one.
check: linkage-gate
	dune build @all
	dune runtest
	dune exec bin/apnad.exe -- trace --loss 0.05 --drops --chrome /tmp/apna_chrome_trace.json > /dev/null
	dune exec bin/trace_check.exe /tmp/apna_chrome_trace.json
	rm -f BENCH_results.json telemetry.json
	dune exec bench/main.exe -- --faults --quick
	test -s BENCH_results.json
	test -s telemetry.json
	grep -q '"replay-flood"' telemetry.json
	rm -f BENCH_results.json
	dune exec bench/main.exe -- --lifetimes --quick
	test -s BENCH_results.json
	rm -f BENCH_results.json
	dune exec bench/main.exe -- --storm --quick
	test -s BENCH_results.json
	rm -f BENCH_results.json trace_scale.json
	dune exec bench/main.exe -- --trace-scale --quick
	test -s BENCH_results.json
	test -s trace_scale.json
	rm -f BENCH_results.json burst.json
	dune exec bench/main.exe -- --burst --quick
	test -s BENCH_results.json
	test -s burst.json
	rm -f BENCH_results.json attack_campaign.json
	dune exec bench/main.exe -- --campaign --quick > /tmp/apna_campaign_smoke.txt
	cat /tmp/apna_campaign_smoke.txt
	test -s BENCH_results.json
	test -s attack_campaign.json
	grep -q 'alert gate ok: shutoff-stall fired and resolved' /tmp/apna_campaign_smoke.txt
	grep -q 'alert gate ok: revocation-storm fired and resolved' /tmp/apna_campaign_smoke.txt
	rm -f BENCH_results.json
	dune exec bench/main.exe -- --quick
	test -s BENCH_results.json
	dune exec bin/apnad.exe -- broker --dump /tmp/apna_broker_journal.txt > /dev/null
	test -s /tmp/apna_broker_journal.txt
	@echo "check: OK (trace + chaos + lifetime + warrant-storm + attack-campaign smokes passed, linkage gate clean, BENCH_results.json written and validated)"

clean:
	dune clean
	rm -f BENCH_results.json
