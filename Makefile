# Convenience targets; dune does the real work.

.PHONY: all build test bench check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# CI gate: full build, every test suite, a flight-recorder smoke (apnad
# trace must export a Chrome trace that trace_check validates: a JSON
# array whose every element carries name/ph/ts), the chaos smoke
# (control-plane convergence under injected loss, E13), the
# short-lifetime survivability smoke (sessions migrating across Short
# EphID expiries under the fault mix, E14), and a smoke run of the
# benchmark harness that must produce a parseable BENCH_results.json
# (the harness re-parses the file itself and fails loudly if it is
# invalid). The chaos and lifetime smokes run first so the final
# BENCH_results.json is the regular one.
check:
	dune build @all
	dune runtest
	dune exec bin/apnad.exe -- trace --loss 0.05 --drops --chrome /tmp/apna_chrome_trace.json > /dev/null
	dune exec bin/trace_check.exe /tmp/apna_chrome_trace.json
	rm -f BENCH_results.json
	dune exec bench/main.exe -- --faults --quick
	test -s BENCH_results.json
	rm -f BENCH_results.json
	dune exec bench/main.exe -- --lifetimes --quick
	test -s BENCH_results.json
	rm -f BENCH_results.json
	dune exec bench/main.exe -- --quick
	test -s BENCH_results.json
	@echo "check: OK (trace + chaos + lifetime smokes passed, BENCH_results.json written and validated)"

clean:
	dune clean
	rm -f BENCH_results.json
