(** Constant-time byte-string operations.

    Cryptographic comparisons must not leak the position of the first
    mismatching byte through timing; these helpers accumulate differences
    without early exit. *)

val equal : string -> string -> bool
(** [equal a b] is [true] iff [a] and [b] have the same length and contents,
    evaluated without data-dependent branching on the contents. *)

val equal_bytes : string -> Bytes.t -> off:int -> bool
(** [equal_bytes a b ~off] compares all of [a] against the bytes of [b]
    at [off], constant-time in the contents and without allocating —
    the burst fast path's tag check against a reusable digest buffer.
    [false] when the range does not fit. *)

val xor : string -> string -> string
(** [xor a b] is the byte-wise xor of two equal-length strings.
    @raise Invalid_argument if lengths differ. *)

val zeroize : bytes -> unit
(** [zeroize b] overwrites [b] with zero bytes (best-effort key hygiene). *)
