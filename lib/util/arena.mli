(** Fixed-slot [Bytes] pool for burst processing (DESIGN.md, "Batched
    fast path").

    All slots are preallocated; a burst loop calls {!reset} once per
    burst and {!checkout} once per packet, so the steady-state cycle
    allocates nothing. Slot contents are NOT cleared between bursts —
    callers own a slot only until the next {!reset} and must treat its
    initial contents as garbage. *)

type t

val create : slots:int -> slot_bytes:int -> t
(** [create ~slots ~slot_bytes] preallocates [slots] buffers of
    [slot_bytes] each. @raise Invalid_argument if either is [< 1]. *)

val checkout : t -> Bytes.t
(** The next free slot. Valid until the next {!reset}. When the pool is
    exhausted a fresh buffer is allocated instead (counted in
    {!overflows}) so a caller processing an oversized burst stays
    correct, merely slower. *)

val reset : t -> unit
(** Return every slot to the pool. Previously checked-out buffers must
    no longer be used (the next burst will overwrite them). *)

val slots : t -> int
val slot_bytes : t -> int

val in_use : t -> int
(** Slots checked out since the last {!reset} (capped at [slots]). *)

val overflows : t -> int
(** Checkouts that missed the pool and allocated, since [create] — the
    gauge of a mis-sized arena. *)
