(** Binary min-heap keyed on integer priorities.

    The gc paths (audit retention, revocation lists) keep one of these as
    an expiry index so a sweep touches only the entries that can actually
    be stale — O(changes · log n) — instead of folding over every live
    entry. [dummy] is stored in vacated slots so popped elements do not
    keep their values alive. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> prio:int -> 'a -> unit
val peek_min : 'a t -> (int * 'a) option
val pop_min : 'a t -> (int * 'a) option
