(* Intrusive circular doubly-linked list + hash table. The node both
   carries the value and is the list link, so one table lookup reaches
   everything an operation needs. Links are direct node references (a
   detached node points to itself), not options: touching an
   already-most-recent entry is pure pointer reads, and any other touch
   is pointer swaps — the burst fast path stays allocation-free. *)

module type S = sig
  type key

  type 'a t

  val create : capacity:int -> 'a t
  val set : 'a t -> key -> 'a -> unit
  val find : 'a t -> key -> 'a option
  val find_exn : 'a t -> key -> 'a
  val peek : 'a t -> key -> 'a option
  val remove : 'a t -> key -> unit
  val clear : 'a t -> unit
  val size : 'a t -> int
  val capacity : 'a t -> int
  val evictions : 'a t -> int
  val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
end

module Make (Key : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (Key)

  type key = Key.t

  type 'a node = {
    key : key;
    mutable value : 'a;
    mutable prev : 'a node;
    mutable next : 'a node;
  }

  type 'a t = {
    cap : int;
    table : 'a node Tbl.t;
    (* Most recent; the nodes form a circle, so tail = head.prev. *)
    mutable head : 'a node option;
    mutable evicted : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Lru.create: capacity";
    { cap = capacity; table = Tbl.create capacity; head = None; evicted = 0 }

  let make_node key value =
    let rec n = { key; value; prev = n; next = n } in
    n

  let unlink t node =
    if node.next == node then t.head <- None
    else begin
      let next = node.next in
      node.prev.next <- next;
      next.prev <- node.prev;
      (match t.head with
      | Some h when h == node -> t.head <- Some next
      | _ -> ());
      node.prev <- node;
      node.next <- node
    end

  (* [node] must be detached (self-linked). *)
  let push_front t node =
    (match t.head with
    | None -> ()
    | Some h ->
        let tail = h.prev in
        node.next <- h;
        node.prev <- tail;
        tail.next <- node;
        h.prev <- node);
    t.head <- Some node

  let touch t node =
    match t.head with
    | Some h when h == node -> () (* already most recent: no writes at all *)
    | _ ->
        unlink t node;
        push_front t node

  let evict_lru t =
    match t.head with
    | None -> ()
    | Some h ->
        let tail = h.prev in
        unlink t tail;
        Tbl.remove t.table tail.key;
        t.evicted <- t.evicted + 1

  let set t key value =
    match Tbl.find_opt t.table key with
    | Some node ->
        node.value <- value;
        touch t node
    | None ->
        if Tbl.length t.table >= t.cap then evict_lru t;
        let node = make_node key value in
        Tbl.replace t.table key node;
        push_front t node

  let find t key =
    match Tbl.find_opt t.table key with
    | Some node ->
        touch t node;
        Some node.value
    | None -> None

  (* Allocation-free probe for the burst fast path: [Not_found] is a
     preallocated constant, unlike the [Some] box [find] returns, and a
     repeat hit leaves the recency order (and the heap) untouched. *)
  let find_exn t key =
    let node = Tbl.find t.table key in
    touch t node;
    node.value

  let peek t key =
    match Tbl.find_opt t.table key with
    | Some node -> Some node.value
    | None -> None

  let remove t key =
    match Tbl.find_opt t.table key with
    | Some node ->
        unlink t node;
        Tbl.remove t.table key
    | None -> ()

  let clear t =
    Tbl.reset t.table;
    t.head <- None

  let size t = Tbl.length t.table
  let capacity t = t.cap
  let evictions t = t.evicted

  let fold f t acc =
    match t.head with
    | None -> acc
    | Some h ->
        let rec go acc node =
          let acc = f node.key node.value acc in
          if node.next == h then acc else go acc node.next
        in
        go acc h
end
