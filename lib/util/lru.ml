(* Intrusive doubly-linked list + hash table. The node both carries the
   value and is the list link, so one table lookup reaches everything an
   operation needs. *)

module type S = sig
  type key

  type 'a t

  val create : capacity:int -> 'a t
  val set : 'a t -> key -> 'a -> unit
  val find : 'a t -> key -> 'a option
  val peek : 'a t -> key -> 'a option
  val remove : 'a t -> key -> unit
  val clear : 'a t -> unit
  val size : 'a t -> int
  val capacity : 'a t -> int
  val evictions : 'a t -> int
  val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
end

module Make (Key : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (Key)

  type key = Key.t

  type 'a node = {
    key : key;
    mutable value : 'a;
    mutable prev : 'a node option;
    mutable next : 'a node option;
  }

  type 'a t = {
    cap : int;
    table : 'a node Tbl.t;
    mutable head : 'a node option; (* most recent *)
    mutable tail : 'a node option; (* least recent *)
    mutable evicted : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Lru.create: capacity";
    { cap = capacity; table = Tbl.create capacity; head = None; tail = None; evicted = 0 }

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.head;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let touch t node =
    unlink t node;
    push_front t node

  let evict_lru t =
    match t.tail with
    | None -> ()
    | Some node ->
        unlink t node;
        Tbl.remove t.table node.key;
        t.evicted <- t.evicted + 1

  let set t key value =
    match Tbl.find_opt t.table key with
    | Some node ->
        node.value <- value;
        touch t node
    | None ->
        if Tbl.length t.table >= t.cap then evict_lru t;
        let node = { key; value; prev = None; next = None } in
        Tbl.replace t.table key node;
        push_front t node

  let find t key =
    match Tbl.find_opt t.table key with
    | Some node ->
        touch t node;
        Some node.value
    | None -> None

  let peek t key =
    match Tbl.find_opt t.table key with
    | Some node -> Some node.value
    | None -> None

  let remove t key =
    match Tbl.find_opt t.table key with
    | Some node ->
        unlink t node;
        Tbl.remove t.table key
    | None -> ()

  let clear t =
    Tbl.reset t.table;
    t.head <- None;
    t.tail <- None

  let size t = Tbl.length t.table
  let capacity t = t.cap
  let evictions t = t.evicted

  let fold f t acc =
    let rec go acc = function
      | None -> acc
      | Some node -> go (f node.key node.value acc) node.next
    in
    go acc t.head
end
