(* Binary min-heap on integer priorities, backed by a growable array.
   Used by the gc paths (audit retention, revocation lists) to find the
   next-expiring entry in O(log n) instead of scanning whole tables. *)

type 'a t = {
  mutable prios : int array;
  mutable elts : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy () =
  { prios = Array.make 16 0; elts = Array.make 16 dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.prios in
  let prios = Array.make (2 * cap) 0 and elts = Array.make (2 * cap) t.dummy in
  Array.blit t.prios 0 prios 0 t.len;
  Array.blit t.elts 0 elts 0 t.len;
  t.prios <- prios;
  t.elts <- elts

let swap t i j =
  let p = t.prios.(i) and e = t.elts.(i) in
  t.prios.(i) <- t.prios.(j);
  t.elts.(i) <- t.elts.(j);
  t.prios.(j) <- p;
  t.elts.(j) <- e

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prios.(i) < t.prios.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.prios.(l) < t.prios.(!smallest) then smallest := l;
  if r < t.len && t.prios.(r) < t.prios.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~prio v =
  if t.len = Array.length t.prios then grow t;
  t.prios.(t.len) <- prio;
  t.elts.(t.len) <- v;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek_min t = if t.len = 0 then None else Some (t.prios.(0), t.elts.(0))

let pop_min t =
  if t.len = 0 then None
  else begin
    let prio = t.prios.(0) and v = t.elts.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.prios.(0) <- t.prios.(t.len);
      t.elts.(0) <- t.elts.(t.len);
      sift_down t 0
    end;
    t.elts.(t.len) <- t.dummy;
    Some (prio, v)
  end
