(* Fixed-slot byte-buffer pool for burst processing. All slots are
   allocated once at creation; the steady-state checkout/reset cycle
   allocates nothing. A checkout beyond the slot count falls back to a
   fresh allocation (counted in [overflows]) so correctness never depends
   on the caller sizing the pool exactly. *)

type t = {
  slots : Bytes.t array;
  slot_bytes : int;
  mutable next : int; (* first free slot *)
  mutable overflows : int;
}

let create ~slots ~slot_bytes =
  if slots < 1 then invalid_arg "Arena.create: slots";
  if slot_bytes < 1 then invalid_arg "Arena.create: slot_bytes";
  {
    slots = Array.init slots (fun _ -> Bytes.create slot_bytes);
    slot_bytes;
    next = 0;
    overflows = 0;
  }

let slots t = Array.length t.slots
let slot_bytes t = t.slot_bytes
let in_use t = min t.next (Array.length t.slots)
let overflows t = t.overflows

let checkout t =
  if t.next < Array.length t.slots then begin
    let b = t.slots.(t.next) in
    t.next <- t.next + 1;
    b
  end
  else begin
    t.overflows <- t.overflows + 1;
    Bytes.create t.slot_bytes
  end

let reset t = t.next <- 0
