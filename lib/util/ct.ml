let equal a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let equal_bytes a b ~off =
  if off < 0 || off + String.length a > Bytes.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code (Bytes.get b (off + i)))
    done;
    !acc = 0
  end

let xor a b =
  if String.length a <> String.length b then invalid_arg "Ct.xor: length";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let zeroize b = Bytes.fill b 0 (Bytes.length b) '\000'
