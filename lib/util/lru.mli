(** Bounded LRU map over an intrusive doubly-linked list plus a hash
    table: O(1) find/set/remove/evict with no per-operation allocation
    beyond the inserted node.

    Extracted from the certificate cache so every bounded hot-path cache
    (certificates, validated EphIDs) shares one audited implementation.
    Recency is explicit: {!find} promotes the entry to most-recent;
    {!peek} does not. *)

module type S = sig
  type key

  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument if [capacity < 1]. *)

  val set : 'a t -> key -> 'a -> unit
  (** Insert or refresh the value under [key] and mark it most-recently
      used, evicting the least-recently-used entry at capacity. *)

  val find : 'a t -> key -> 'a option
  (** Lookup; refreshes recency on hit. *)

  val find_exn : 'a t -> key -> 'a
  (** Like {!find} but allocation-free: hits return the value directly
      and misses raise the constant [Not_found] — the probe the
      border router's burst path uses to keep the steady state off the
      GC entirely.
      @raise Not_found on a miss. *)

  val peek : 'a t -> key -> 'a option
  (** Lookup without touching recency. *)

  val remove : 'a t -> key -> unit
  (** Drop the entry if present; not counted as an eviction. *)

  val clear : 'a t -> unit
  (** Drop every entry; not counted as evictions. *)

  val size : 'a t -> int
  val capacity : 'a t -> int

  val evictions : 'a t -> int
  (** Entries displaced by capacity pressure since {!create}. *)

  val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  (** Most-recent first. *)
end

module Make (Key : Hashtbl.HashedType) : S with type key = Key.t
