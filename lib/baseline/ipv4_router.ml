open Apna_net

type t = { table : int Lpm.t }

type verdict = Forwarded of { next_hop : int; packet : string } | Dropped of string

let create () = { table = Lpm.create () }
let add_route t ~prefix ~len ~next_hop = Lpm.add t.table ~prefix ~len next_hop
let route_count t = Lpm.size t.table

let forward t packet =
  match Ipv4_header.of_bytes packet with
  | Error e -> Dropped e
  | Ok header ->
      if header.ttl <= 1 then Dropped "ttl exceeded"
      else begin
        match Lpm.lookup t.table (Addr.hid_to_int header.dst) with
        | None -> Dropped "no route"
        | Some next_hop ->
            (* One copy of the frame, then the per-hop rewrite happens in
               place with the RFC 1624 incremental checksum — no header
               re-encode, no payload concat. *)
            let b = Bytes.of_string packet in
            Ipv4_header.decrement_ttl b;
            Forwarded { next_hop; packet = Bytes.unsafe_to_string b }
      end

let synthetic_table t ~seed ~routes =
  let rng = ref seed in
  let next () =
    (* xorshift64* *)
    let x = !rng in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    rng := x;
    Int64.to_int x land max_int
  in
  for _ = 1 to routes do
    let len = 8 + (next () mod 17) in
    let prefix = next () land 0xffffffff land lnot ((1 lsl (32 - len)) - 1) in
    add_route t ~prefix ~len ~next_hop:(next () mod 64)
  done
