open Apna_crypto
module M = Apna_obs.Metrics

type entry = { seq : int; at : int; mutable payload : string; hash : string }

type t = {
  cap : int;
  entries : entry Queue.t;  (* oldest at the front *)
  mutable appended : int;
  mutable anchor : string;  (* hash preceding the oldest retained entry *)
  mutable head : string;  (* hash of the newest entry; anchor when empty *)
  g_entries : M.Gauge.m;
}

let genesis = Sha256.digest "apna-broker-journal-genesis"

let create ?(cap = 65536) ?(owner = "default") () =
  if cap <= 0 then invalid_arg "Journal.create: cap must be > 0";
  {
    cap;
    entries = Queue.create ();
    appended = 0;
    anchor = genesis;
    head = genesis;
    g_entries =
      M.Gauge.register M.default
        ~labels:[ ("owner", owner) ]
        ~help:"Decision entries retained in the broker journal"
        "apna_broker_journal_entries";
  }

let entry_hash ~prev ~seq ~at ~payload =
  let w = Apna_util.Rw.Writer.create () in
  Apna_util.Rw.Writer.bytes w prev;
  Apna_util.Rw.Writer.u64 w (Int64.of_int seq);
  Apna_util.Rw.Writer.u64 w (Int64.of_int at);
  Apna_util.Rw.Writer.bytes w payload;
  Sha256.digest (Apna_util.Rw.Writer.contents w)

let head t = t.head

let append t ~now payload =
  let seq = t.appended in
  let e =
    { seq; at = now; payload;
      hash = entry_hash ~prev:t.head ~seq ~at:now ~payload }
  in
  Queue.push e t.entries;
  t.appended <- t.appended + 1;
  t.head <- e.hash;
  (* Trim past capacity; the trimmed entry's hash becomes the anchor so
     the retained suffix still verifies. *)
  while Queue.length t.entries > t.cap do
    let dropped = Queue.pop t.entries in
    t.anchor <- dropped.hash
  done;
  M.Gauge.set t.g_entries (float_of_int (Queue.length t.entries));
  e

let length t = Queue.length t.entries
let appended t = t.appended
let trimmed t = t.appended - Queue.length t.entries

let to_list t = List.rev (Queue.fold (fun acc e -> e :: acc) [] t.entries)

let verify t =
  let check prev e =
    match prev with
    | Error _ as err -> err
    | Ok prev_hash ->
        let expect = entry_hash ~prev:prev_hash ~seq:e.seq ~at:e.at ~payload:e.payload in
        if String.equal expect e.hash then Ok e.hash
        else Error (Printf.sprintf "journal entry %d: hash mismatch" e.seq)
  in
  match Queue.fold check (Ok t.anchor) t.entries with
  | Ok last ->
      if String.equal last t.head then Ok ()
      else Error "journal head does not match the last entry"
  | Error _ as err -> err

let tamper_for_test t ~seq ~payload =
  let hit = ref false in
  Queue.iter
    (fun e ->
      if e.seq = seq then begin
        e.payload <- payload;
        hit := true
      end)
    t.entries;
  !hit
