(** Append-only, hash-chained decision journal — the accountability half
    of the broker.

    Every broker decision (grant or refusal) is one entry; each entry's
    hash covers the previous entry's hash, so removing, reordering or
    editing any record breaks the chain and {!verify} reports where. The
    journal is bounded: past [cap] entries the oldest are trimmed, but
    their final hash is kept as the anchor, so the retained window still
    verifies end-to-end and the head hash still commits to the full
    history. *)

type entry = {
  seq : int;  (** position in the full (untrimmed) history, from 0 *)
  at : int;  (** decision time, Unix seconds *)
  mutable payload : string;
      (** one-line decision record; mutable only so tests can tamper *)
  hash : string;  (** SHA-256 over (previous hash ‖ seq ‖ at ‖ payload) *)
}

type t

val create : ?cap:int -> ?owner:string -> unit -> t
(** [cap] (default 65536) bounds retained entries. [owner] labels the
    [apna_broker_journal_entries] gauge. *)

val append : t -> now:int -> string -> entry

val head : t -> string
(** Hash of the newest entry (the chain head); the genesis anchor when
    empty. Publishing this commits the broker to its whole history. *)

val length : t -> int
(** Retained entries (≤ cap). *)

val appended : t -> int
(** Entries ever appended (may exceed [length] after trimming). *)

val trimmed : t -> int

val to_list : t -> entry list
(** Retained entries, oldest first. *)

val verify : t -> (unit, string) result
(** Recomputes the chain over the retained window from the anchor;
    [Error _] names the first entry whose hash does not match. *)

val tamper_for_test : t -> seq:int -> payload:string -> bool
(** Overwrites the payload of the retained entry [seq] {e without}
    re-hashing — exists so tests can prove {!verify} catches it. Returns
    false when [seq] is not retained. *)
