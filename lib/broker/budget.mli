(** Per-requester privacy budgets — the metering half of the broker.

    Deanonymization is not free: every requester (the AA, a law-enforcement
    principal, a peer AS) holds a token-bucket account whose balance is
    spent by queries and refilled once per epoch. A requester that drains
    its account is refused — loudly, with a typed error and a journal
    entry — until the next refill. The design follows differential-privacy
    accounting practice (PySyft-style data-scientist budgets): visibility
    into identities is a consumable, not a capability. *)

type t

type outcome =
  | Charged of { cost : int; remaining : int }
  | Exhausted of { cost : int; remaining : int; retry_after_s : int }
      (** The charge was refused; [remaining] is the unchanged balance.
          [retry_after_s] is the seconds until refills cover [cost], or
          [-1] when no refill ever will (refill rate 0, or cost above
          capacity). *)

val create : ?epoch_s:int -> ?capacity:int -> ?refill:int -> unit -> t
(** A budget ledger. [epoch_s] (default 3600) is the refill period;
    [capacity] (default 100) and [refill] (default 25) are the defaults
    new accounts inherit unless {!register} overrides them. *)

val register : ?capacity:int -> ?refill:int -> t -> id:string -> now:int -> unit
(** Opens (or resets) the account for [id] with a full balance. *)

val known : t -> string -> bool

val remaining : t -> id:string -> now:int -> int
(** Current balance after lazy refill; 0 for unknown accounts. *)

val capacity_of : t -> id:string -> int
(** Account capacity; 0 for unknown accounts. *)

val charge : t -> id:string -> now:int -> cost:int -> outcome
(** Refills lazily (min(capacity, balance + refill × elapsed epochs)),
    then debits [cost] if covered. Unknown accounts are always
    [Exhausted] with [retry_after_s = -1]. *)

val accounts : t -> now:int -> (string * int * int) list
(** [(id, remaining, capacity)] for every account, sorted by id. *)
