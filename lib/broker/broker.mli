(** The privacy broker — the {e only} sanctioned path from an EphID back
    to a host identity.

    APNA's bargain (paper §III, §VIII-H) is accountability {e through the
    AS}: the AS alone can link EphID → HID → subscriber, and that linkage
    is supposed to happen only for lawful, targeted requests. This module
    makes the bargain operational. Direct calls to [Audit.bindings_of] /
    [Audit.find_sender] are forbidden outside this module ([make check]
    greps for violators); every linkage instead arrives here as a typed,
    MAC-authenticated request from a registered requester, is charged
    against that requester's {!Budget}, and lands — grant or refusal — in
    the hash-chained {!Journal}.

    Authorization matrix: the AA may deanonymize EphIDs and attribute
    packets (its shutoff duties); law enforcement may additionally pull a
    subscriber's full binding history; a peer AS may only attribute
    packets it can already exhibit ("did this leave your network?"). *)

type role = Accountability_agent | Law_enforcement | Peer_as

val role_label : role -> string

(** Typed linkage queries, with a stable wire encoding so requests can
    travel the data plane to the broker's service EphID (reserved HID 5). *)
module Request : sig
  type query =
    | Deanonymize of Apna.Ephid.t
        (** EphID → (HID, expiry, subscriber credential). *)
    | Bindings_of of Apna_net.Addr.hid
        (** Every (time, EphID) the retention log holds for a subscriber. *)
    | Attribute_packet of string
        (** Packet digest → (time, EphID, HID, credential) from the
            egress retention stream. *)

  type t = {
    corr : int64;
    requester : string;
    query : query;
    mac : string;  (** HMAC-SHA256 under the requester's shared key *)
  }

  val query_label : query -> string
  (** ["deanonymize"] / ["bindings-of"] / ["attribute-packet"] — used in
      metrics labels and journal lines. *)

  val sign : key:string -> corr:int64 -> requester:string -> query:query -> t
  val verify : key:string -> t -> bool
  val to_bytes : t -> string

  val of_bytes : string -> (t, Apna.Error.t) result
  (** Total: malformed bytes are [Error (Malformed _)], never an
      exception. *)
end

module Response : sig
  type grant =
    | Identity of {
        hid : Apna_net.Addr.hid;
        expiry : int;
        credential : string option;
      }
    | Bindings of (int * Apna.Ephid.t) list
    | Attribution of {
        at : int;
        ephid : Apna.Ephid.t;
        hid : Apna_net.Addr.hid;
        credential : string option;
      }

  type t =
    | Granted of { corr : int64; cost : int; remaining : int; grant : grant }
    | Refused of { corr : int64; reason : Apna.Error.t; remaining : int }

  val to_bytes : t -> string
  val of_bytes : string -> (t, Apna.Error.t) result
end

val cost_of : Request.query -> int
(** The budget price of a query: attribution of one packet is cheapest
    (5), deanonymizing one EphID costs 10, a full binding history — the
    broadest disclosure — costs 25. *)

val allowed : role -> Request.query -> bool

type t

val create :
  keys:Apna.Keys.as_keys ->
  ?audit:Apna.Audit.t ->
  ?credential_of:(Apna_net.Addr.hid -> string option) ->
  ?budget:Budget.t ->
  ?journal_cap:int ->
  unit ->
  t
(** A broker for the AS holding [keys]. Without [audit] (retention
    disabled) only [Deanonymize] can be served — the stateless EphID
    decryption needs no log. [credential_of] resolves HID → subscriber
    credential for grant payloads (defaults to none). *)

val register_requester :
  ?capacity:int -> ?refill:int -> t -> id:string -> role:role -> key:string ->
  now:int -> unit
(** Registers a requester principal: its role, its request-MAC key and
    its budget account (full at registration). *)

val handle : t -> now:int -> Request.t -> Response.t
(** The full pipeline: authenticate (known requester, valid MAC) →
    authorize (role admits the query) → charge the budget → execute.
    Failed queries are still charged — probing is not free — and every
    decision is journaled and counted before the response returns. *)

val handle_bytes : t -> now:int -> string -> string option
(** Wire front end ([Request.of_bytes] → {!handle} → [Response.to_bytes]);
    this is what {!attach} installs as the AS node's broker handler.
    Undecodable requests yield a journaled [Refused] with [corr = 0]. *)

val journal : t -> Journal.t
val budget : t -> Budget.t

val verify_journal : t -> (unit, string) result

val grants : t -> int
val refusals : t -> int

val attach : t -> Apna.As_node.t -> unit
(** Wires the broker into a live AS: installs {!handle_bytes} as the
    node's broker-HID dispatch handler and hooks the AA's decision sink so
    shutoff grants/refusals share this journal. *)

val for_node :
  ?budget:Budget.t -> ?journal_cap:int -> Apna.As_node.t -> t
(** Convenience: builds a broker from the node's own keys, retention log
    and registry (credential lookup), then {!attach}es it. *)
