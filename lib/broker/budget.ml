type account = {
  capacity : int;
  refill : int;
  mutable balance : int;
  mutable epoch : int;
}

type t = {
  epoch_s : int;
  default_capacity : int;
  default_refill : int;
  tbl : (string, account) Hashtbl.t;
}

type outcome =
  | Charged of { cost : int; remaining : int }
  | Exhausted of { cost : int; remaining : int; retry_after_s : int }

let create ?(epoch_s = 3600) ?(capacity = 100) ?(refill = 25) () =
  if epoch_s <= 0 then invalid_arg "Budget.create: epoch_s must be > 0";
  { epoch_s; default_capacity = capacity; default_refill = refill;
    tbl = Hashtbl.create 16 }

let register ?capacity ?refill t ~id ~now =
  let capacity = Option.value ~default:t.default_capacity capacity in
  let refill = Option.value ~default:t.default_refill refill in
  Hashtbl.replace t.tbl id
    { capacity; refill; balance = capacity; epoch = now / t.epoch_s }

let known t id = Hashtbl.mem t.tbl id

(* Lazy refill: accounts are only touched when queried, so idle requesters
   cost nothing and the ledger needs no timer. *)
let refresh t a ~now =
  let epoch = now / t.epoch_s in
  if epoch > a.epoch then begin
    a.balance <- min a.capacity (a.balance + (a.refill * (epoch - a.epoch)));
    a.epoch <- epoch
  end

let remaining t ~id ~now =
  match Hashtbl.find_opt t.tbl id with
  | None -> 0
  | Some a ->
      refresh t a ~now;
      a.balance

let capacity_of t ~id =
  match Hashtbl.find_opt t.tbl id with None -> 0 | Some a -> a.capacity

let charge t ~id ~now ~cost =
  match Hashtbl.find_opt t.tbl id with
  | None -> Exhausted { cost; remaining = 0; retry_after_s = -1 }
  | Some a ->
      refresh t a ~now;
      if a.balance >= cost then begin
        a.balance <- a.balance - cost;
        Charged { cost; remaining = a.balance }
      end
      else
        let retry_after_s =
          if cost > a.capacity || a.refill <= 0 then -1
          else
            (* Epochs until refills cover the shortfall, then seconds
               until that epoch boundary. *)
            let needed = cost - a.balance in
            let epochs = (needed + a.refill - 1) / a.refill in
            ((a.epoch + epochs) * t.epoch_s) - now
        in
        Exhausted { cost; remaining = a.balance; retry_after_s }

let accounts t ~now =
  Hashtbl.fold
    (fun id a acc ->
      refresh t a ~now;
      (id, a.balance, a.capacity) :: acc)
    t.tbl []
  |> List.sort compare
