open Apna
open Apna_crypto
open Apna_util.Rw
module M = Apna_obs.Metrics
module Span = Apna_obs.Span
module Event = Apna_obs.Event

type role = Accountability_agent | Law_enforcement | Peer_as

let role_label = function
  | Accountability_agent -> "accountability-agent"
  | Law_enforcement -> "law-enforcement"
  | Peer_as -> "peer-as"

let write_var w s =
  Writer.u16 w (String.length s);
  Writer.bytes w s

let read_var r =
  let* len = Reader.u16 r in
  Reader.bytes r len

let malformed what = Result.map_error (fun e -> Error.Malformed (what ^ ": " ^ e))

module Request = struct
  type query =
    | Deanonymize of Ephid.t
    | Bindings_of of Apna_net.Addr.hid
    | Attribute_packet of string

  type t = { corr : int64; requester : string; query : query; mac : string }

  let query_label = function
    | Deanonymize _ -> "deanonymize"
    | Bindings_of _ -> "bindings-of"
    | Attribute_packet _ -> "attribute-packet"

  let write_query w = function
    | Deanonymize e ->
        Writer.u8 w 0;
        Writer.bytes w (Ephid.to_bytes e)
    | Bindings_of hid ->
        Writer.u8 w 1;
        Writer.u32_of_int w (Apna_net.Addr.hid_to_int hid)
    | Attribute_packet digest ->
        Writer.u8 w 2;
        write_var w digest

  let read_query r =
    let* tag = Reader.u8 r in
    match tag with
    | 0 ->
        let* b = Reader.bytes r Ephid.size in
        Result.map (fun e -> Deanonymize e) (Ephid.of_bytes b)
    | 1 ->
        let* hid = Reader.u32_to_int r in
        Ok (Bindings_of (Apna_net.Addr.hid_of_int hid))
    | 2 ->
        let* digest = read_var r in
        Ok (Attribute_packet digest)
    | n -> Error (Printf.sprintf "unknown query tag %d" n)

  (* The MAC covers a domain-separated encoding of everything but itself,
     so a request can be neither forged nor replayed as a different
     requester's. *)
  let mac_input ~corr ~requester ~query =
    let w = Writer.create () in
    Writer.bytes w "apna-broker-request:";
    Writer.u64 w corr;
    write_var w requester;
    write_query w query;
    Writer.contents w

  let sign ~key ~corr ~requester ~query =
    { corr; requester; query;
      mac = Hmac.Sha256.mac ~key (mac_input ~corr ~requester ~query) }

  let verify ~key t =
    Hmac.Sha256.verify ~key ~tag:t.mac
      (mac_input ~corr:t.corr ~requester:t.requester ~query:t.query)

  let to_bytes t =
    let w = Writer.create () in
    Writer.u64 w t.corr;
    write_var w t.requester;
    write_query w t.query;
    write_var w t.mac;
    Writer.contents w

  let of_bytes s =
    malformed "broker request"
      (let r = Reader.of_string s in
       let* corr = Reader.u64 r in
       let* requester = read_var r in
       let* query = read_query r in
       let* mac = read_var r in
       let* () = Reader.expect_end r in
       Ok { corr; requester; query; mac })
end

module Response = struct
  type grant =
    | Identity of {
        hid : Apna_net.Addr.hid;
        expiry : int;
        credential : string option;
      }
    | Bindings of (int * Ephid.t) list
    | Attribution of {
        at : int;
        ephid : Ephid.t;
        hid : Apna_net.Addr.hid;
        credential : string option;
      }

  type t =
    | Granted of { corr : int64; cost : int; remaining : int; grant : grant }
    | Refused of { corr : int64; reason : Error.t; remaining : int }

  let write_credential w = function
    | None -> Writer.u8 w 0
    | Some c ->
        Writer.u8 w 1;
        write_var w c

  let read_credential r =
    let* present = Reader.u8 r in
    match present with
    | 0 -> Ok None
    | 1 -> Result.map Option.some (read_var r)
    | n -> Error (Printf.sprintf "bad credential flag %d" n)

  let write_grant w = function
    | Identity { hid; expiry; credential } ->
        Writer.u8 w 0;
        Writer.u32_of_int w (Apna_net.Addr.hid_to_int hid);
        Writer.u64 w (Int64.of_int expiry);
        write_credential w credential
    | Bindings bindings ->
        Writer.u8 w 1;
        Writer.u16 w (List.length bindings);
        List.iter
          (fun (at, e) ->
            Writer.u64 w (Int64.of_int at);
            Writer.bytes w (Ephid.to_bytes e))
          bindings
    | Attribution { at; ephid; hid; credential } ->
        Writer.u8 w 2;
        Writer.u64 w (Int64.of_int at);
        Writer.bytes w (Ephid.to_bytes ephid);
        Writer.u32_of_int w (Apna_net.Addr.hid_to_int hid);
        write_credential w credential

  let read_ephid r =
    let* b = Reader.bytes r Ephid.size in
    Ephid.of_bytes b

  let read_grant r =
    let* tag = Reader.u8 r in
    match tag with
    | 0 ->
        let* hid = Reader.u32_to_int r in
        let* expiry = Reader.u64 r in
        let* credential = read_credential r in
        Ok
          (Identity
             { hid = Apna_net.Addr.hid_of_int hid;
               expiry = Int64.to_int expiry; credential })
    | 1 ->
        let* count = Reader.u16 r in
        let rec loop n acc =
          if n = 0 then Ok (List.rev acc)
          else
            let* at = Reader.u64 r in
            let* e = read_ephid r in
            loop (n - 1) ((Int64.to_int at, e) :: acc)
        in
        Result.map (fun bs -> Bindings bs) (loop count [])
    | 2 ->
        let* at = Reader.u64 r in
        let* ephid = read_ephid r in
        let* hid = Reader.u32_to_int r in
        let* credential = read_credential r in
        Ok
          (Attribution
             { at = Int64.to_int at; ephid;
               hid = Apna_net.Addr.hid_of_int hid; credential })
    | n -> Error (Printf.sprintf "unknown grant tag %d" n)

  let to_bytes t =
    let w = Writer.create () in
    (match t with
    | Granted { corr; cost; remaining; grant } ->
        Writer.u8 w 0;
        Writer.u64 w corr;
        Writer.u32_of_int w cost;
        Writer.u32_of_int w remaining;
        write_grant w grant
    | Refused { corr; reason; remaining } ->
        Writer.u8 w 1;
        Writer.u64 w corr;
        let tag, payload = Error.to_wire reason in
        Writer.u8 w tag;
        write_var w payload;
        Writer.u32_of_int w remaining);
    Writer.contents w

  let of_bytes s =
    malformed "broker response"
      (let r = Reader.of_string s in
       let* tag = Reader.u8 r in
       match tag with
       | 0 ->
           let* corr = Reader.u64 r in
           let* cost = Reader.u32_to_int r in
           let* remaining = Reader.u32_to_int r in
           let* grant = read_grant r in
           let* () = Reader.expect_end r in
           Ok (Granted { corr; cost; remaining; grant })
       | 1 ->
           let* corr = Reader.u64 r in
           let* err_tag = Reader.u8 r in
           let* payload = read_var r in
           let* remaining = Reader.u32_to_int r in
           let* () = Reader.expect_end r in
           let* reason = Error.of_wire err_tag payload in
           Ok (Refused { corr; reason; remaining })
       | n -> Error (Printf.sprintf "unknown response tag %d" n))
end

let cost_of = function
  | Request.Deanonymize _ -> 10
  | Request.Bindings_of _ -> 25
  | Request.Attribute_packet _ -> 5

(* §VIII-H: disclosure breadth tracks legal standing. The AA links for its
   own shutoff machinery; LE can compel the full history; a peer AS may
   only ask about packets it can already exhibit. *)
let allowed role (query : Request.query) =
  match (role, query) with
  | Law_enforcement, _ -> true
  | Accountability_agent, (Deanonymize _ | Attribute_packet _) -> true
  | Accountability_agent, Bindings_of _ -> false
  | Peer_as, Attribute_packet _ -> true
  | Peer_as, (Deanonymize _ | Bindings_of _) -> false

type requester = { role : role; key : string }

type t = {
  keys : Keys.as_keys;
  audit : Audit.t option;
  credential_of : Apna_net.Addr.hid -> string option;
  budget : Budget.t;
  journal : Journal.t;
  requesters : (string, requester) Hashtbl.t;
  labels : (string * string) list;
  mutable grants : int;
  mutable refusals : int;
}

let create ~keys ?audit ?credential_of ?budget ?journal_cap () =
  let owner = string_of_int (Apna_net.Addr.aid_to_int keys.Keys.aid) in
  {
    keys;
    audit;
    credential_of = Option.value ~default:(fun _ -> None) credential_of;
    budget = (match budget with Some b -> b | None -> Budget.create ());
    journal = Journal.create ?cap:journal_cap ~owner ();
    requesters = Hashtbl.create 8;
    labels = [ ("aid", owner) ];
    grants = 0;
    refusals = 0;
  }

let register_requester ?capacity ?refill t ~id ~role ~key ~now =
  Hashtbl.replace t.requesters id { role; key };
  Budget.register ?capacity ?refill t.budget ~id ~now

let journal t = t.journal
let budget t = t.budget
let verify_journal t = Journal.verify t.journal
let grants t = t.grants
let refusals t = t.refusals

let m_grants t ~query =
  M.Counter.register M.default
    ~labels:(t.labels @ [ ("query", query) ])
    ~help:"Broker linkage requests granted" "apna_broker_grants_total"

let m_refusals t ~reason =
  M.Counter.register M.default
    ~labels:(t.labels @ [ ("reason", reason) ])
    ~help:"Broker linkage requests refused" "apna_broker_refusals_total"

let g_budget t ~requester =
  M.Gauge.register M.default
    ~labels:(t.labels @ [ ("requester", requester) ])
    ~help:"Remaining privacy budget per requester"
    "apna_broker_budget_remaining"

let aid_int t = Apna_net.Addr.aid_to_int t.keys.Keys.aid

let record_event t ~corr ~granted ~query =
  if Event.enabled Event.default then
    Event.(
      record default
        ~key:(key_of_string (Printf.sprintf "broker:%Ld" corr))
        (Broker_decision { aid = aid_int t; granted; query }))

(* Execute an authorized, already-charged query against the AS's secrets
   and retention log. *)
let execute t (query : Request.query) =
  match query with
  | Deanonymize e -> begin
      match Ephid.parse t.keys e with
      | Error err -> Error err
      | Ok (info : Ephid.info) ->
          Ok
            (Response.Identity
               { hid = info.hid; expiry = info.expiry;
                 credential = t.credential_of info.hid })
    end
  | Bindings_of hid -> begin
      match t.audit with
      | None -> Error (Error.Rejected "retention disabled")
      | Some audit -> Ok (Response.Bindings (Audit.bindings_of audit hid))
    end
  | Attribute_packet digest -> begin
      match t.audit with
      | None -> Error (Error.Rejected "retention disabled")
      | Some audit -> begin
          match Audit.find_sender audit ~digest with
          | None -> Error (Error.Rejected "no egress record")
          | Some (at, ephid) -> begin
              match Ephid.parse t.keys ephid with
              | Error err -> Error err
              | Ok info ->
                  Ok
                    (Response.Attribution
                       { at; ephid; hid = info.hid;
                         credential = t.credential_of info.hid })
            end
        end
    end

let refuse t ~now ~corr ~requester ~query_label ~reason ~remaining =
  t.refusals <- t.refusals + 1;
  M.Counter.incr (m_refusals t ~reason:(Error.kind_label reason));
  record_event t ~corr ~granted:false ~query:query_label;
  ignore
    (Journal.append t.journal ~now
       (Printf.sprintf "refusal requester=%s query=%s reason=%s balance=%d"
          requester query_label (Error.kind_label reason) remaining));
  Response.Refused { corr; reason; remaining }

let handle t ~now (req : Request.t) =
  let sp =
    Span.start_for Span.default
      ~id:(Printf.sprintf "broker:%Ld" req.corr)
      ~stage:"broker.handle"
  in
  let label = Request.query_label req.query in
  let remaining () = Budget.remaining t.budget ~id:req.requester ~now in
  let resp =
    match Hashtbl.find_opt t.requesters req.requester with
    | None ->
        refuse t ~now ~corr:req.corr ~requester:req.requester
          ~query_label:label ~reason:Error.Auth_failed ~remaining:0
    | Some { role; key } ->
        if not (Request.verify ~key req) then
          refuse t ~now ~corr:req.corr ~requester:req.requester
            ~query_label:label ~reason:Error.Auth_failed
            ~remaining:(remaining ())
        else if not (allowed role req.query) then
          refuse t ~now ~corr:req.corr ~requester:req.requester
            ~query_label:label
            ~reason:
              (Error.Rejected
                 (Printf.sprintf "role %s may not %s" (role_label role) label))
            ~remaining:(remaining ())
        else begin
          let cost = cost_of req.query in
          match Budget.charge t.budget ~id:req.requester ~now ~cost with
          | Budget.Exhausted { remaining; retry_after_s; _ } ->
              let what =
                if retry_after_s < 0 then
                  Printf.sprintf "%s costs %d, balance %d" label cost remaining
                else
                  Printf.sprintf "%s costs %d, balance %d, retry in %ds" label
                    cost remaining retry_after_s
              in
              M.Gauge.set
                (g_budget t ~requester:req.requester)
                (float_of_int remaining);
              refuse t ~now ~corr:req.corr ~requester:req.requester
                ~query_label:label ~reason:(Error.Budget_exhausted what)
                ~remaining
          | Budget.Charged { remaining; _ } ->
              M.Gauge.set
                (g_budget t ~requester:req.requester)
                (float_of_int remaining);
              (* The budget is spent either way: a failed query still
                 probed the logs, and free probing would let a requester
                 binary-search identities at no cost. *)
              (match execute t req.query with
              | Error reason ->
                  refuse t ~now ~corr:req.corr ~requester:req.requester
                    ~query_label:label ~reason ~remaining
              | Ok grant ->
                  t.grants <- t.grants + 1;
                  M.Counter.incr (m_grants t ~query:label);
                  record_event t ~corr:req.corr ~granted:true ~query:label;
                  ignore
                    (Journal.append t.journal ~now
                       (Printf.sprintf
                          "grant requester=%s query=%s cost=%d balance=%d"
                          req.requester label cost remaining));
                  Response.Granted { corr = req.corr; cost; remaining; grant })
        end
  in
  Span.finish Span.default sp;
  resp

let handle_bytes t ~now payload =
  match Request.of_bytes payload with
  | Ok req -> Some (Response.to_bytes (handle t ~now req))
  | Error reason ->
      Some
        (Response.to_bytes
           (refuse t ~now ~corr:0L ~requester:"?" ~query_label:"malformed"
              ~reason ~remaining:0))

let attach t node =
  As_node.set_broker_handler node (fun ~now payload ->
      handle_bytes t ~now payload);
  Accountability.set_decision_sink (As_node.accountability node)
    (fun ~now line -> ignore (Journal.append t.journal ~now ("aa " ^ line)))

let for_node ?budget ?journal_cap node =
  let t =
    create ~keys:(As_node.keys node)
      ?audit:(As_node.audit node)
      ~credential_of:(fun hid ->
        Registry.credential_of_hid (As_node.registry node) hid)
      ?budget ?journal_cap ()
  in
  attach t node;
  t
