(** One APNA-deploying AS, assembled from its four logical entities
    (paper §III-C): Registry Service, Management Service, Border Router and
    Accountability Agent — plus an optional DNS service — all sharing the
    AS keys, the [host_info] database and the revocation list.

    Reserved HIDs: 1 = MS, 2 = DNS, 3 = AA, 4 = border router (ICMP
    source), 5 = privacy broker; customer HIDs start above. *)

type t

val create :
  rng:Apna_crypto.Drbg.t ->
  aid:Apna_net.Addr.aid ->
  trust:Trust.t ->
  topology:Apna_net.Topology.t ->
  now:(unit -> int) ->
  now_f:(unit -> float) ->
  ?schedule:(delay:float -> (unit -> unit) -> unit) ->
  ?dns_zone:string ->
  ?lifetime_policy:Lifetime.policy ->
  ?retention:bool ->
  ?icmp_encryption:bool ->
  ?expected_hosts:int ->
  ?aa_limits:Accountability.limits ->
  unit ->
  t
(** Creates the AS, generates its keys, registers its signing key in
    [trust] (the RPKI stand-in), brings up the services and issues their
    EphIDs/certificates. [dns_zone] additionally runs a DNS service whose
    zone key is registered in [trust]. [expected_hosts] pre-sizes the
    sharded host_info database for a known population (the scale
    harness). [aa_limits] overrides the accountability agent's
    admission-control policy ({!Accountability.default_limits}).

    When a [schedule] hook is wired, shutoff requests delivered to the AA
    go through the bounded admission queue and a budgeted drain loop
    ({!Accountability.enqueue}/{!Accountability.drain}); without one they
    are handled synchronously. *)

val aid : t -> Apna_net.Addr.aid
val keys : t -> Keys.as_keys
val host_info : t -> Host_info.t
val revoked : t -> Revocation.t
val registry : t -> Registry.t
val management : t -> Management.t
val border_router : t -> Border_router.t
val accountability : t -> Accountability.t
val dns : t -> Dns_service.t option

val cert_cache : t -> Cert_cache.t option
(** The observed-certificate cache, when [icmp_encryption] was enabled
    (§VIII-B future work); [None] otherwise. *)

val audit : t -> Audit.t option
(** The data-retention log, when [retention] was enabled at creation
    (§VIII-H); [None] otherwise. *)

val aa_ephid : t -> Ephid.t

val broker_ephid : t -> Ephid.t
(** Service EphID of the privacy broker (reserved HID 5) — the address
    requesters send {!Apna_broker.Broker} wire requests to. *)

val set_broker_handler : t -> (now:int -> string -> string option) -> unit
(** Installs the privacy broker's wire handler: packets delivered to the
    broker HID have their payload passed to it; a [Some reply] is routed
    back to the requester as a Control packet from {!broker_ephid}.
    Installed by [Apna_broker.Broker.attach] — the broker library depends
    on this one, so the hook keeps the dependency acyclic. *)

val set_emit : t -> (next:Apna_net.Addr.aid -> Apna_net.Packet.t -> unit) -> unit
(** Wires the inter-domain output; installed by {!Network}. *)

val add_host :
  t -> Host.t -> ?deliver:(Apna_net.Packet.t -> unit) -> credential:string ->
  unit -> unit
(** Enrolls the subscriber at the RS and attaches the host: after this the
    host can [bootstrap]. [deliver] overrides the delivery path to the host
    (default [Host.deliver]) — the network layer uses it to inject
    access-link faults. *)

val add_device : t ->
  name:string -> credential:string -> deliver:(Apna_net.Packet.t -> unit) ->
  Host.attachment
(** Like {!add_host} for non-host devices — NAT-mode access points (§VII-B)
    and IPv4 gateways (§VII-D) — that implement their own delivery. Returns
    the attachment the device uses to bootstrap and submit packets. *)

val submit : t -> Apna_net.Packet.t -> unit
(** A packet handed over by a local host: runs the egress pipeline and
    routes (locally or toward the next AS). Silently drops on failure —
    exactly what Fig. 4 prescribes. *)

val receive : t -> Apna_net.Packet.t -> unit
(** A packet arriving from a neighbor AS (or looped locally): ingress
    pipeline, then delivery to a host/service or forwarding. Sends ICMP
    destination-unreachable feedback to the source when delivery fails
    (§VIII-B). *)

val submit_burst : t -> Apna_net.Packet.t array -> n:int -> unit
(** Batched {!submit}: one {!Border_router.egress_burst} over
    [pkts.(0..n-1)], then per-packet routing in order — same observable
    behavior as [n] calls of {!submit}, without the per-packet pipeline
    allocations. Not reentrant: a host must not submit another burst
    synchronously from its delivery callback. *)

val receive_burst : t -> Apna_net.Packet.t array -> n:int -> unit
(** Batched {!receive}; same contract as {!submit_burst}. *)

val hosts : t -> Host.t list

val feedback_to_source :
  t -> Apna_net.Packet.t -> Icmp.t -> unit
(** Sends ICMP feedback about [pkt] back to its source EphID (§VIII-B) —
    used by the network layer for packet-too-big notifications. ICMP
    errors about ICMP errors are suppressed. *)
