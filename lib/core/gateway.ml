open Apna_net
module M = Apna_obs.Metrics
module E = Apna_obs.Event

(* Gateway flight-recorder events are keyed on the IPv4 bytes carried in
   the tunnel, so the encap at one gateway and the decap at its peer land
   in the same journey. *)
let gw_event gw_name bytes kind_of_gw =
  if E.enabled E.default then
    E.record E.default ~key:(E.key_of_string bytes) (kind_of_gw gw_name)

let ethertype_ipv4 = 0x0800
let virtual_pool_base = 0x0ac80001 (* 10.200.0.1 *)

type flow = {
  mutable session : Session.t option;
  (* IPv4 packets that arrived before the session existed. *)
  backlog : string Queue.t;
}

module I64_tbl = Hashtbl.Make (struct
  type t = int64

  let equal = Int64.equal
  let hash = Hashtbl.hash
end)

(* Per-gateway series in the default registry, labeled by gateway name. *)
type obs = {
  m_flows : M.Counter.m;
  m_tunnel_rx : M.Counter.m;
  m_tunnel_tx : M.Counter.m;
}

type t = {
  gw_name : string;
  obs : obs;
  host : Host.t;
  (* Client side: server IPv4 -> APNA destination. *)
  dst_map : Dns_service.Record.t Addr.Hid_tbl.t;
  (* (client_ip, server_ip) -> outbound flow. *)
  flows : ((int * int), flow) Hashtbl.t;
  (* Server side. *)
  mutable server_ip : Addr.hid option;
  vip_of_conn : Addr.hid I64_tbl.t;
  conn_of_vip : Session.t Addr.Hid_tbl.t;
  (* Original (client_ip, server_ip) per inbound conn for return rewrite. *)
  orig_of_conn : (int * int) I64_tbl.t;
  mutable next_vip : int;
  mutable ipv4_out : string -> unit;
  mutable out_log_rev : string list;
}

let rec create ~name ~rng =
  let labels = [ ("gateway", name) ] in
  let t =
    {
      gw_name = name;
      obs =
        {
          m_flows =
            M.Counter.register M.default ~labels
              ~help:"Legacy IPv4 flows mapped onto APNA sessions"
              "apna_gw_flows_opened_total";
          m_tunnel_rx =
            M.Counter.register M.default ~labels
              ~help:"GRE frames decapsulated from the APNA tunnel"
              "apna_gw_tunnel_frames_rx_total";
          m_tunnel_tx =
            M.Counter.register M.default ~labels
              ~help:"GRE frames encapsulated into the APNA tunnel"
              "apna_gw_tunnel_frames_tx_total";
        };
      host = Host.create ~name ~rng ();
      dst_map = Addr.Hid_tbl.create 8;
      flows = Hashtbl.create 8;
      server_ip = None;
      vip_of_conn = I64_tbl.create 8;
      conn_of_vip = Addr.Hid_tbl.create 8;
      orig_of_conn = I64_tbl.create 8;
      next_vip = virtual_pool_base;
      ipv4_out = ignore;
      out_log_rev = [];
    }
  in
  Host.on_data t.host (fun ~session ~data -> handle_tunnel_data t session data);
  t

and emit_ipv4 t bytes =
  t.out_log_rev <- bytes :: t.out_log_rev;
  t.ipv4_out bytes

(* Tunnel framing: GRE with an IPv4 ethertype around the original packet,
   matching the deployment encapsulation of Fig. 9. *)
and encode_tunnel ipv4_packet = Gre.encapsulate ~protocol:ethertype_ipv4 ipv4_packet

and decode_tunnel data =
  match Gre.decapsulate data with
  | Ok (proto, inner) when proto = ethertype_ipv4 -> Ok inner
  | Ok (proto, _) -> Error (Printf.sprintf "gateway: unexpected GRE protocol %#x" proto)
  | Error e -> Error e

and rewrite_addrs bytes ~src ~dst =
  match Ipv4_header.of_bytes bytes with
  | Error e -> Error e
  | Ok header ->
      (* Honour the header's length field: bytes past total_len are link
         padding and must not be re-framed as payload. The NAT rewrite is
         done in place on one copy, checksum patched incrementally
         (RFC 1624) instead of recomputed over a rebuilt header. *)
      let b = Bytes.of_string (String.sub bytes 0 (Ipv4_header.size + header.payload_len)) in
      Ipv4_header.rewrite_addrs_inplace b ~src ~dst;
      Ok (Bytes.unsafe_to_string b)

and handle_tunnel_data t session data =
  match decode_tunnel data with
  | Error e -> Logs.debug (fun m -> m "%s: %s" t.gw_name e)
  | Ok inner -> begin
      M.Counter.incr t.obs.m_tunnel_rx;
      gw_event t.gw_name inner (fun gateway -> E.Gw_decap { gateway });
      match Ipv4_header.of_bytes inner with
      | Error e -> Logs.debug (fun m -> m "%s: inner ipv4: %s" t.gw_name e)
      | Ok header -> begin
          match t.server_ip with
          | Some server_ip ->
              (* Server side: map the remote flow onto a virtual endpoint
                 so the legacy server can tell remote clients apart. *)
              let conn = Session.conn_id session in
              let vip =
                match I64_tbl.find_opt t.vip_of_conn conn with
                | Some vip -> vip
                | None ->
                    let vip = Addr.hid_of_int t.next_vip in
                    t.next_vip <- t.next_vip + 1;
                    I64_tbl.replace t.vip_of_conn conn vip;
                    Addr.Hid_tbl.replace t.conn_of_vip vip session;
                    I64_tbl.replace t.orig_of_conn conn
                      (Addr.hid_to_int header.src, Addr.hid_to_int header.dst);
                    vip
              in
              (match rewrite_addrs inner ~src:vip ~dst:server_ip with
              | Ok rewritten -> emit_ipv4 t rewritten
              | Error e -> Logs.debug (fun m -> m "%s: rewrite: %s" t.gw_name e))
          | None ->
              (* Client side: the tunnel already carries the original
                 addresses; hand the packet to the LAN. *)
              emit_ipv4 t inner
        end
    end

let host t = t.host

let on_ipv4_output t f = t.ipv4_out <- f
let ipv4_output_log t = List.rev t.out_log_rev
let active_flows t = Hashtbl.length t.flows
let virtual_endpoints t = Addr.Hid_tbl.length t.conn_of_vip

let learn_destination t ~ipv4 record = Addr.Hid_tbl.replace t.dst_map ipv4 record

let resolve t ~name ?dns k =
  Host.dns_lookup t.host ~name ?dns (fun record ->
      match record with
      | Some r -> begin
          match r.ipv4 with
          | Some ip ->
              learn_destination t ~ipv4:ip r;
              k ()
          | None ->
              Logs.warn (fun m -> m "%s: record for %s has no IPv4" t.gw_name name)
        end
      | None -> Logs.warn (fun m -> m "%s: NXDOMAIN for %s" t.gw_name name))

let flow_send t flow tunnel =
  match flow.session with
  | Some session -> begin
      match Host.send t.host session tunnel with
      | Ok () -> ()
      | Error e -> Logs.debug (fun m -> m "%s: send: %a" t.gw_name Error.pp e)
    end
  | None -> Queue.add tunnel flow.backlog

let rec ipv4_input t bytes =
  match Ipv4_header.of_bytes bytes with
  | Error e -> Logs.debug (fun m -> m "%s: lan input: %s" t.gw_name e)
  | Ok header -> begin
      match t.server_ip with
      | Some _ -> server_side_input t bytes header
      | None -> client_side_input t bytes header
    end

and server_side_input t bytes (header : Ipv4_header.t) =
  match Addr.Hid_tbl.find_opt t.conn_of_vip header.dst with
  | None ->
      Logs.debug (fun m ->
          m "%s: no session for virtual endpoint %a" t.gw_name Addr.pp_hid header.dst)
  | Some session -> begin
      (* Restore the original addresses the remote side expects. *)
      match I64_tbl.find_opt t.orig_of_conn (Session.conn_id session) with
      | None -> ()
      | Some (client_ip, server_ip) -> begin
          match
            rewrite_addrs bytes ~src:(Addr.hid_of_int server_ip)
              ~dst:(Addr.hid_of_int client_ip)
          with
          | Error e -> Logs.debug (fun m -> m "%s: rewrite: %s" t.gw_name e)
          | Ok rewritten -> begin
              M.Counter.incr t.obs.m_tunnel_tx;
              gw_event t.gw_name rewritten (fun gateway -> E.Gw_encap { gateway });
              match Host.send t.host session (encode_tunnel rewritten) with
              | Ok () -> ()
              | Error e -> Logs.debug (fun m -> m "%s: send: %a" t.gw_name Error.pp e)
            end
        end
    end

and client_side_input t bytes (header : Ipv4_header.t) =
  let key = (Addr.hid_to_int header.src, Addr.hid_to_int header.dst) in
  let tunnel = encode_tunnel bytes in
  M.Counter.incr t.obs.m_tunnel_tx;
  gw_event t.gw_name bytes (fun gateway -> E.Gw_encap { gateway });
  match Hashtbl.find_opt t.flows key with
  | Some flow -> flow_send t flow tunnel
  | None -> begin
      match Addr.Hid_tbl.find_opt t.dst_map header.dst with
      | None ->
          Logs.debug (fun m ->
              m "%s: no APNA mapping for %a" t.gw_name Addr.pp_hid header.dst)
      | Some record ->
          (* New flow: fresh source EphID (per-flow granularity is the
             Host default) and 0-RTT carry of the first packet. *)
          let flow = { session = None; backlog = Queue.create () } in
          Hashtbl.replace t.flows key flow;
          M.Counter.incr t.obs.m_flows;
          Host.connect t.host ~remote:record.cert ~data0:tunnel
            ~expect_accept:record.receive_only (fun session ->
              flow.session <- Some session;
              Queue.iter (fun tun -> flow_send t flow tun) flow.backlog;
              Queue.clear flow.backlog)
    end

let expose t ~name ~server_ip ?dns k =
  t.server_ip <- Some server_ip;
  Host.publish t.host ~name ?dns ~ipv4:server_ip k
