open Apna_crypto

type services = { ms_cert : Cert.t; dns_cert : Cert.t option; aa_ephid : Ephid.t }

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  rng : Drbg.t;
  ctrl_lifetime_s : int;
  credentials : (string, Apna_net.Addr.hid option) Hashtbl.t;
  (* Reverse index for credential_of_hid: the lawful-request path (§VIII-H)
     used to fold over every subscriber — O(customers) per broker query. *)
  credential_by_hid : string Apna_net.Addr.Hid_tbl.t;
  mutable next_hid : int;
  mutable services : services option;
  mutable last_lookup_cost : int;
}

let create ~keys ~host_info ~rng ?(ctrl_lifetime_s = 86_400) ?(first_hid = 0x0a000001)
    () =
  {
    keys;
    host_info;
    rng;
    ctrl_lifetime_s;
    credentials = Hashtbl.create 64;
    credential_by_hid = Apna_net.Addr.Hid_tbl.create 64;
    next_hid = first_hid;
    services = None;
    last_lookup_cost = 0;
  }

let set_service_certs t ~ms_cert ~dns_cert ~aa_ephid =
  t.services <- Some { ms_cert; dns_cert; aa_ephid }

let enroll t ~credential =
  if not (Hashtbl.mem t.credentials credential) then
    Hashtbl.replace t.credentials credential None

type reply = {
  ctrl_ephid : Ephid.t;
  ctrl_expiry : int;
  as_dh_pub : string;
  ms_cert : Cert.t;
  dns_cert : Cert.t option;
  aa_ephid : Ephid.t;
  id_info_signature : string;
}

let id_info_bytes ~ctrl_ephid ~ctrl_expiry =
  let w = Apna_util.Rw.Writer.create ~capacity:20 () in
  Apna_util.Rw.Writer.bytes w (Ephid.to_bytes ctrl_ephid);
  Apna_util.Rw.Writer.u32_of_int w ctrl_expiry;
  Apna_util.Rw.Writer.contents w

(* Shared core of bootstrap and admit: retire any previous identity, mint
   the HID, derive + register kHA, and issue the control EphID. *)
let assign_identity t ~now ~credential ~previous_hid ~shared_secret =
  (* One live identity per subscriber: a fresh bootstrap revokes the old
     HID and every EphID bound to it (§VI-A). *)
  Option.iter
    (fun old ->
      Host_info.revoke_hid t.host_info old;
      Apna_net.Addr.Hid_tbl.remove t.credential_by_hid old)
    previous_hid;
  let hid = Apna_net.Addr.hid_of_int t.next_hid in
  t.next_hid <- t.next_hid + 1;
  Hashtbl.replace t.credentials credential (Some hid);
  Apna_net.Addr.Hid_tbl.replace t.credential_by_hid hid credential;
  let kha = Keys.derive_host_as ~shared_secret in
  Host_info.register t.host_info hid kha;
  let ctrl_expiry = now + t.ctrl_lifetime_s in
  let ctrl_ephid = Ephid.issue_random t.keys t.rng ~hid ~expiry:ctrl_expiry in
  (hid, kha, ctrl_ephid, ctrl_expiry)

let bootstrap t ~now ~credential ~host_dh_pub =
  match Hashtbl.find_opt t.credentials credential with
  | None -> Error Error.Auth_failed
  | Some previous_hid -> begin
      match t.services with
      | None -> Error (Error.Rejected "AS services not initialized")
      | Some services -> begin
          match X25519.shared_secret ~secret:t.keys.dh_secret ~peer:host_dh_pub with
          | Error e -> Error (Error.Crypto e)
          | Ok shared_secret ->
              let hid, _kha, ctrl_ephid, ctrl_expiry =
                assign_identity t ~now ~credential ~previous_hid ~shared_secret
              in
              let id_info_signature =
                Ed25519.sign t.keys.signing (id_info_bytes ~ctrl_ephid ~ctrl_expiry)
              in
              Ok
                ( {
                    ctrl_ephid;
                    ctrl_expiry;
                    as_dh_pub = t.keys.dh_public;
                    ms_cert = services.ms_cert;
                    dns_cert = services.dns_cert;
                    aa_ephid = services.aa_ephid;
                    id_info_signature;
                  },
                  hid )
        end
    end

type admission = {
  hid : Apna_net.Addr.hid;
  kha : Keys.host_as;
  ctrl_ephid : Ephid.t;
  ctrl_expiry : int;
}

let admit t ~now ~credential ~shared_secret =
  let previous_hid = Option.join (Hashtbl.find_opt t.credentials credential) in
  let hid, kha, ctrl_ephid, ctrl_expiry =
    assign_identity t ~now ~credential ~previous_hid ~shared_secret
  in
  { hid; kha; ctrl_ephid; ctrl_expiry }

let hid_of_credential t ~credential =
  Option.join (Hashtbl.find_opt t.credentials credential)

let credential_of_hid t hid =
  t.last_lookup_cost <- 1;
  Apna_net.Addr.Hid_tbl.find_opt t.credential_by_hid hid

let last_lookup_cost t = t.last_lookup_cost
let customer_count t = Hashtbl.length t.credentials
