(** Bounded LRU cache of EphID certificates observed in passing traffic.

    The paper's §VIII-B sketches encrypting ICMP payloads by "storing
    short-lived certificates of all flows that the sender sees" and worries
    about the storage overhead. This cache bounds that overhead: an entity
    (border router, host) remembers the certificates it saw in Init/Accept
    frames, evicting least-recently-used entries at capacity. The E13
    benchmark quantifies the memory/hit-rate trade-off.

    Built on the shared {!Apna_util.Lru} functor (also behind the border
    router's validated-EphID cache). *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val observe : t -> Cert.t -> unit
(** Insert or refresh the certificate, keyed by its EphID. *)

val find : t -> Ephid.t -> Cert.t option
(** Lookup; refreshes recency on hit. *)

val size : t -> int
val evictions : t -> int

val memory_bytes : t -> int
(** Wire bytes of the cached certificates (168 B each). *)
