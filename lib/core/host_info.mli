(** The per-AS [host_info] database (paper Fig. 2/4): what every
    infrastructure entity of an AS (routers, MS, AA) knows about each
    bootstrapped host — its HID and the shared kHA keys — so it can
    authenticate the host's packets. *)

type entry = {
  kha : Keys.host_as;
  mutable revoked : bool;  (** HID revoked (identity-minting defence, §VI-A). *)
}

type t

val create : ?shards:int -> ?expected_hosts:int -> unit -> t
(** The database is sharded by HID hash into a fixed number of buckets
    ([shards], rounded up to a power of two, default 256) so a
    paper-scale population (§V-A3: 1.27 M hosts) never pays a single
    monolithic Hashtbl resize; [expected_hosts] pre-sizes each shard. *)

val shard_count : t -> int

val register : t -> Apna_net.Addr.hid -> Keys.host_as -> unit

val find : t -> Apna_net.Addr.hid -> (entry, Error.t) result
(** [Error Unknown_host] when absent, [Error (Revoked _)] when revoked. *)

val mem_valid : t -> Apna_net.Addr.hid -> bool
val revoke_hid : t -> Apna_net.Addr.hid -> unit
val count : t -> int

val generation : t -> int
(** Monotone counter bumped whenever an existing binding changes:
    {!revoke_hid} on a known HID, or {!register} replacing one (re-key).
    First-time registrations don't bump — an unknown HID can never have
    produced a cached validation. See {!Revocation.generation}. *)
