type t = { table : int Ephid.Tbl.t; mutable generation : int }

let create () = { table = Ephid.Tbl.create 64; generation = 0 }

let revoke t ephid ~expiry =
  Ephid.Tbl.replace t.table ephid expiry;
  (* Any cached "this EphID is valid" conclusion may now be wrong. *)
  t.generation <- t.generation + 1

let is_revoked t ephid = Ephid.Tbl.mem t.table ephid
let size t = Ephid.Tbl.length t.table
let generation t = t.generation

let gc t ~now =
  let stale =
    Ephid.Tbl.fold
      (fun e expiry acc -> if expiry < now then e :: acc else acc)
      t.table []
  in
  List.iter (Ephid.Tbl.remove t.table) stale;
  (* Removal changes is_revoked answers; only bump when something moved so
     an idle GC sweep does not flush downstream caches. *)
  if stale <> [] then t.generation <- t.generation + 1;
  List.length stale
