let dummy_ephid =
  match Ephid.of_bytes (String.make Ephid.size '\000') with
  | Ok e -> e
  | Error _ -> assert false

type t = {
  table : int Ephid.Tbl.t;
  (* Expiry index: every table-changing revoke pushes an (expiry, ephid)
     candidate so gc
     pops exactly the entries that can be stale instead of folding the
     whole table — the million-host revocation path must stay O(changes).
     Re-revoking with a different expiry leaves the older candidate in the
     heap; pops revalidate against the table's current expiry and discard
     candidates that no longer match. *)
  expiries : Ephid.t Apna_util.Heap.t;
  mutable generation : int;
  mutable last_gc_cost : int;
}

let create () =
  {
    table = Ephid.Tbl.create 64;
    expiries = Apna_util.Heap.create ~dummy:dummy_ephid ();
    generation = 0;
    last_gc_cost = 0;
  }

(* Returns true when the table actually changed. A re-revocation with the
   same expiry is a pure no-op: no heap push (the candidate is already
   queued), no generation bump (no cached verdict became wrong), so a storm
   of duplicate revocations cannot bloat the expiry heap or flush the
   border routers' validated-EphID caches. *)
let revoke_entry t ephid ~expiry =
  match Ephid.Tbl.find_opt t.table ephid with
  | Some current when current = expiry -> false
  | _ ->
      Ephid.Tbl.replace t.table ephid expiry;
      Apna_util.Heap.push t.expiries ~prio:expiry ephid;
      true

let revoke t ephid ~expiry =
  if revoke_entry t ephid ~expiry then
    (* Any cached "this EphID is valid" conclusion may now be wrong. *)
    t.generation <- t.generation + 1

let revoke_many t entries =
  let changed =
    List.fold_left
      (fun acc (ephid, expiry) ->
        if revoke_entry t ephid ~expiry then acc + 1 else acc)
      0 entries
  in
  (* One bump per batch: downstream caches revalidate once per announcement
     instead of once per revoked EphID. *)
  if changed > 0 then t.generation <- t.generation + 1;
  changed

let is_revoked t ephid = Ephid.Tbl.mem t.table ephid
let size t = Ephid.Tbl.length t.table
let generation t = t.generation

let gc t ~now =
  let removed = ref 0 and examined = ref 0 in
  let rec drain () =
    match Apna_util.Heap.peek_min t.expiries with
    | Some (expiry, _) when expiry < now ->
        let _, ephid = Option.get (Apna_util.Heap.pop_min t.expiries) in
        incr examined;
        (match Ephid.Tbl.find_opt t.table ephid with
        | Some current when current < now ->
            Ephid.Tbl.remove t.table ephid;
            incr removed
        | Some _ | None ->
            (* Re-revoked with a later expiry (a fresher candidate is still
               queued) or already collected — stale candidate, drop it. *)
            ());
        drain ()
    | Some _ | None -> ()
  in
  drain ();
  t.last_gc_cost <- !examined;
  (* Removal changes is_revoked answers; only bump when something moved so
     an idle GC sweep does not flush downstream caches. *)
  if !removed > 0 then t.generation <- t.generation + 1;
  !removed

let last_gc_cost t = t.last_gc_cost
