open Apna_crypto
open Apna_net

let internal_ms_hid = Addr.hid_of_int 1
let internal_aa_hid = Addr.hid_of_int 3
let first_internal_hid = 0xc0a80002 (* 192.168.0.2 *)
let internal_ctrl_lifetime_s = 86_400
let internal_service_lifetime_s = 30 * 86_400

type ap_identity = {
  kha : Keys.host_as;
  ctrl_ephid : Ephid.t;
  ms_cert : Cert.t;
}

type internal_domain = {
  keys : Keys.as_keys;  (** the AP's own domain keys, under the virtual AID *)
  host_info : Host_info.t;
  ms_cert : Cert.t;
  aa_ephid : Ephid.t;
  id_signing_rng : Drbg.t;
}

module I64_tbl = Hashtbl.Make (struct
  type t = int64

  let equal = Int64.equal
  let hash = Hashtbl.hash
end)

(* One relayed MS request: who it is for and which correlation id the host
   used, so the re-wrapped reply can echo it. *)
type relay = { host_name : string; host_kha : Keys.host_as; host_corr : int64 }

type t = {
  ap_name : string;
  rng : Drbg.t;
  virtual_aid : Addr.aid;
  mutable att : Host.attachment option;
  mutable identity : ap_identity option;
  mutable domain : internal_domain option;
  credentials : (string, unit) Hashtbl.t;
  mutable next_hid : int;
  internal_hosts : (string, Host.t) Hashtbl.t;
  hid_to_host : string Addr.Hid_tbl.t;
  (* Real-AS EphIDs relayed to internal hosts: the AP's ephid_info list. *)
  ephid_info : string Ephid.Tbl.t;
  (* In-flight relayed MS requests awaiting the AS's reply, keyed by the
     AP's own upstream correlation id. *)
  pending_relays : relay I64_tbl.t;
  mutable next_corr : int64;
  mutable relayed : int;
}

let create ~name ~rng ~virtual_as =
  {
    ap_name = name;
    rng;
    virtual_aid = Addr.aid_of_int virtual_as;
    att = None;
    identity = None;
    domain = None;
    credentials = Hashtbl.create 8;
    next_hid = first_internal_hid;
    internal_hosts = Hashtbl.create 8;
    hid_to_host = Addr.Hid_tbl.create 8;
    ephid_info = Ephid.Tbl.create 16;
    pending_relays = I64_tbl.create 8;
    next_corr = 0L;
    relayed = 0;
  }

let name t = t.ap_name
let identify t ephid = Ephid.Tbl.find_opt t.ephid_info ephid
let ephid_count t = Ephid.Tbl.length t.ephid_info
let relayed_requests t = t.relayed

let require name = function
  | Some v -> Ok v
  | None -> Error (Error.Rejected ("access point: no " ^ name))

(* ------------------------------------------------------------------ *)
(* AP packet output toward the real AS *)

let submit_as_ap t ~src_ephid ~dst_aid ~dst_ephid ~proto ~payload =
  match (require "attachment" t.att, require "identity" t.identity) with
  | Error e, _ | _, Error e -> Error e
  | Ok att, Ok id ->
      let header =
        Apna_header.make ~src_aid:att.aid ~src_ephid ~dst_aid ~dst_ephid ()
      in
      let pkt = Packet.make ~header ~proto ~payload in
      att.submit (Pkt_auth.seal ~auth_key:id.kha.auth pkt);
      Ok ()

(* ------------------------------------------------------------------ *)
(* Internal MS: relay EphID requests to the real AS (§VII-B) *)

let handle_internal_ms t (pkt : Packet.t) =
  let open_request () =
    match
      (require "domain" t.domain, require "identity" t.identity, Msgs.of_bytes pkt.payload)
    with
    | Error e, _, _ | _, Error e, _ -> Error e
    | _, _, Error e -> Error e
    | Ok domain, Ok id, Ok (Msgs.Ephid_request { corr; nonce; sealed }) -> begin
        match Ephid.parse_bytes domain.keys pkt.header.src_ephid with
        | Error e -> Error e
        | Ok (_, info) -> begin
            match Host_info.find domain.host_info info.hid with
            | Error e -> Error e
            | Ok entry -> begin
                match Aead.open_ ~key:(Keys.ctrl entry.kha) ~nonce sealed with
                | Error e -> Error (Error.Crypto e)
                | Ok body_bytes -> begin
                    match Msgs.Request_body.of_bytes body_bytes with
                    | Error e -> Error e
                    | Ok body -> Ok (id, info.hid, entry.kha, corr, body)
                  end
              end
          end
      end
    | _, _, Ok _ -> Error (Error.Malformed "AP MS: not an EphID request")
  in
  match open_request () with
  | Error e -> Logs.debug (fun m -> m "%s MS: %a" t.ap_name Error.pp e)
  | Ok (id, hid, host_kha, host_corr, body) -> begin
      (* Relay with the AP's own credentials but the host's public keys:
         the AS certifies keys it cannot link to the internal host. *)
      match Addr.Hid_tbl.find_opt t.hid_to_host hid with
      | None -> Logs.debug (fun m -> m "%s MS: unknown internal host" t.ap_name)
      | Some host_name ->
          (* The AP uses its own correlation id upstream (the host's ids
             are not unique across internal hosts) and echoes the host's
             downstream. *)
          t.next_corr <- Int64.add t.next_corr 1L;
          let ap_corr = t.next_corr in
          let relay_msg =
            Management.Client.make_request_raw ~rng:t.rng ~corr:ap_corr
              ~kha:id.kha ~kx_pub:body.kx_pub ~sig_pub:body.sig_pub
              ~lifetime:body.lifetime
          in
          I64_tbl.replace t.pending_relays ap_corr
            { host_name; host_kha; host_corr };
          t.relayed <- t.relayed + 1;
          (match
             submit_as_ap t
               ~src_ephid:(Ephid.to_bytes id.ctrl_ephid)
               ~dst_aid:id.ms_cert.aid
               ~dst_ephid:(Ephid.to_bytes id.ms_cert.ephid)
               ~proto:Packet.Control ~payload:(Msgs.to_bytes relay_msg)
           with
          | Ok () -> ()
          | Error e -> Logs.warn (fun m -> m "%s relay: %a" t.ap_name Error.pp e))
    end

let handle_relayed_reply t msg =
  let pending =
    match Msgs.corr msg with
    | None -> None
    | Some ap_corr ->
        let r = I64_tbl.find_opt t.pending_relays ap_corr in
        if Option.is_some r then I64_tbl.remove t.pending_relays ap_corr;
        r
  in
  match (pending, require "identity" t.identity, require "domain" t.domain) with
  | None, _, _ ->
      Logs.debug (fun m ->
          m "%s: MS reply with no pending relay (duplicate?)" t.ap_name)
  | _, Error e, _ | _, _, Error e ->
      Logs.warn (fun m -> m "%s: %a" t.ap_name Error.pp e)
  | Some relay, Ok id, Ok domain -> begin
      match Management.Client.read_reply ~kha:id.kha msg with
      | Error e -> Logs.warn (fun m -> m "%s: relay reply: %a" t.ap_name Error.pp e)
      | Ok cert -> begin
          (* Record who is behind this EphID — the AP's accountability
             duty — and pass the certificate on, re-encrypted for the
             host with the host's own correlation id. *)
          Ephid.Tbl.replace t.ephid_info cert.ephid relay.host_name;
          let nonce = Drbg.generate t.rng Aead.nonce_size in
          let reply =
            Msgs.Ephid_reply
              {
                corr = relay.host_corr;
                nonce;
                sealed =
                  Aead.seal ~key:(Keys.ctrl relay.host_kha) ~nonce (Cert.to_bytes cert);
              }
          in
          match Hashtbl.find_opt t.internal_hosts relay.host_name with
          | None -> ()
          | Some host ->
              let header =
                Apna_header.make ~src_aid:t.virtual_aid
                  ~src_ephid:(Ephid.to_bytes domain.ms_cert.ephid)
                  ~dst_aid:t.virtual_aid
                  ~dst_ephid:
                    (match Host.ctrl_ephid host with
                    | Some e -> Ephid.to_bytes e
                    | None -> String.make 16 '\000')
                  ()
              in
              Host.deliver host
                (Packet.make ~header ~proto:Packet.Control
                   ~payload:(Msgs.to_bytes reply))
        end
    end

(* ------------------------------------------------------------------ *)
(* Router role: internal host -> AS *)

let internal_kha t host_name =
  match t.domain with
  | None -> None
  | Some domain ->
      Addr.Hid_tbl.fold
        (fun hid name acc ->
          if String.equal name host_name then
            match Host_info.find domain.host_info hid with
            | Ok entry -> Some entry.kha
            | Error _ -> acc
          else acc)
        t.hid_to_host None

let router_submit t (pkt : Packet.t) =
  match (require "domain" t.domain, require "identity" t.identity, require "attachment" t.att) with
  | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      Logs.debug (fun m -> m "%s router: %a" t.ap_name Error.pp e)
  | Ok domain, Ok id, Ok att ->
      if
        Addr.aid_equal pkt.header.dst_aid t.virtual_aid
        && String.equal pkt.header.dst_ephid (Ephid.to_bytes domain.ms_cert.ephid)
      then handle_internal_ms t pkt
      else begin
        (* Identify the internal sender from the EphID (via ephid_info, not
           decryption — the EphID hides the AP's HID, not the host's) and
           verify the host's MAC before taking responsibility for the
           packet. *)
        match Ephid.of_bytes pkt.header.src_ephid with
        | Error e -> Logs.debug (fun m -> m "%s router: %s" t.ap_name e)
        | Ok src_ephid -> begin
            match Ephid.Tbl.find_opt t.ephid_info src_ephid with
            | None ->
                Logs.debug (fun m -> m "%s router: unknown source EphID" t.ap_name)
            | Some host_name -> begin
                match internal_kha t host_name with
                | None -> ()
                | Some host_kha ->
                    if not (Pkt_auth.verify ~auth_key:host_kha.auth pkt) then
                      Logs.debug (fun m -> m "%s router: bad host MAC" t.ap_name)
                    else begin
                      (* Rewrite: real source AID, AP's own MAC (§VII-B). *)
                      let header = { pkt.header with src_aid = att.aid } in
                      let pkt = { pkt with header } in
                      att.submit (Pkt_auth.seal ~auth_key:id.kha.auth pkt)
                    end
              end
          end
      end

(* ------------------------------------------------------------------ *)
(* Delivery from the AS side *)

let deliver t (pkt : Packet.t) =
  match Ephid.of_bytes pkt.header.dst_ephid with
  | Error e -> Logs.debug (fun m -> m "%s deliver: %s" t.ap_name e)
  | Ok dst -> begin
      match Ephid.Tbl.find_opt t.ephid_info dst with
      | Some host_name -> begin
          match Hashtbl.find_opt t.internal_hosts host_name with
          | Some host -> Host.deliver host pkt
          | None -> ()
        end
      | None -> begin
          (* Not an internal host's EphID: control traffic for the AP
             itself (MS relay replies). *)
          match (t.identity, pkt.proto) with
          | Some id, Packet.Control
            when String.equal pkt.header.dst_ephid (Ephid.to_bytes id.ctrl_ephid)
            -> begin
              match Msgs.of_bytes pkt.payload with
              | Ok (Msgs.Ephid_reply _ as msg) -> handle_relayed_reply t msg
              | Ok _ | Error _ ->
                  Logs.debug (fun m -> m "%s: unexpected control" t.ap_name)
            end
          | _ -> Logs.debug (fun m -> m "%s: undeliverable packet" t.ap_name)
        end
    end

(* ------------------------------------------------------------------ *)
(* Attachment and bootstrap *)

let attach t node ~credential =
  let att =
    As_node.add_device node ~name:t.ap_name ~credential ~deliver:(fun pkt ->
        deliver t pkt)
  in
  t.att <- Some att

let bootstrap t =
  match require "attachment" t.att with
  | Error e -> Error e
  | Ok att -> begin
      let dh_secret, dh_public = X25519.generate t.rng in
      match att.bootstrap_rpc ~host_dh_pub:dh_public with
      | Error e -> Error e
      | Ok reply -> begin
          match X25519.shared_secret ~secret:dh_secret ~peer:reply.as_dh_pub with
          | Error e -> Error (Error.Crypto e)
          | Ok shared_secret ->
              t.identity <-
                Some
                  {
                    kha = Keys.derive_host_as ~shared_secret;
                    ctrl_ephid = reply.ctrl_ephid;
                    ms_cert = reply.ms_cert;
                  };
              (* Bring up the internal domain under the virtual AID and
                 make its key verifiable by internal hosts. *)
              let keys = Keys.make_as t.rng ~aid:t.virtual_aid in
              Trust.register_as att.trust t.virtual_aid
                ~pub:(Ed25519.public_key keys.signing);
              let host_info = Host_info.create () in
              let expiry = att.now () + internal_service_lifetime_s in
              List.iter
                (fun hid -> Host_info.register host_info hid (Keys.derive_host_as ~shared_secret:(Drbg.generate t.rng 32)))
                [ internal_ms_hid; internal_aa_hid ];
              let aa_ephid =
                Ephid.issue_random keys t.rng ~hid:internal_aa_hid ~expiry
              in
              let ms_keys = Keys.make_ephid_keys t.rng in
              let ms_ephid =
                Ephid.issue_random keys t.rng ~hid:internal_ms_hid ~expiry
              in
              let ms_cert =
                Cert.issue keys ~ephid:ms_ephid ~expiry ~kx_pub:ms_keys.kx_public
                  ~sig_pub:(Ed25519.public_key ms_keys.sig_keypair) ~aa_ephid
              in
              t.domain <-
                Some
                  {
                    keys;
                    host_info;
                    ms_cert;
                    aa_ephid;
                    id_signing_rng = Drbg.split t.rng "id-signing";
                  };
              Ok ()
        end
    end

let attach_internal t host ~credential =
  Hashtbl.replace t.credentials credential ();
  Hashtbl.replace t.internal_hosts (Host.name host) host;
  let bootstrap_rpc ~host_dh_pub =
    match (require "domain" t.domain, require "attachment" t.att) with
    | Error e, _ | _, Error e -> Error e
    | Ok domain, Ok att ->
        if not (Hashtbl.mem t.credentials credential) then Error Error.Auth_failed
        else begin
          match
            X25519.shared_secret ~secret:domain.keys.dh_secret ~peer:host_dh_pub
          with
          | Error e -> Error (Error.Crypto e)
          | Ok shared_secret ->
              let hid = Addr.hid_of_int t.next_hid in
              t.next_hid <- t.next_hid + 1;
              let kha = Keys.derive_host_as ~shared_secret in
              Host_info.register domain.host_info hid kha;
              Addr.Hid_tbl.replace t.hid_to_host hid (Host.name host);
              let ctrl_expiry = att.now () + internal_ctrl_lifetime_s in
              let ctrl_ephid =
                Ephid.issue_random domain.keys t.rng ~hid ~expiry:ctrl_expiry
              in
              let id_info_signature =
                Ed25519.sign domain.keys.signing
                  (Registry.id_info_bytes ~ctrl_ephid ~ctrl_expiry)
              in
              Ok
                Registry.
                  {
                    ctrl_ephid;
                    ctrl_expiry;
                    as_dh_pub = domain.keys.dh_public;
                    ms_cert = domain.ms_cert;
                    dns_cert = None;
                    aa_ephid = domain.aa_ephid;
                    id_info_signature;
                  }
        end
  in
  match t.att with
  | None -> Logs.err (fun m -> m "%s: attach_internal before attach" t.ap_name)
  | Some att ->
      Host.attach host
        {
          aid = t.virtual_aid;
          now = att.now;
          now_f = att.now_f;
          submit = (fun pkt -> router_submit t pkt);
          schedule = att.schedule;
          bootstrap_rpc;
          trust = att.trust;
        }
