(* Engine-driven telemetry: a recurring simulated-time tick that refreshes
   per-AS gauges, snapshots the metrics registry into ring-buffered time
   series, computes derived indicators, and evaluates the alert rules. *)

module M = Apna_obs.Metrics
module T = Apna_obs.Timeseries
module Derive = Apna_obs.Derive
module Alert = Apna_obs.Alert
module Health = Apna_obs.Health
module Json = Apna_obs.Json
module Engine = Apna_sim.Engine
module Addr = Apna_net.Addr

type t = {
  net : Network.t;
  ts : T.t;
  alerts : Alert.t;
  interval : float;
  (* Lazily-registered per-AS gauges refreshed at tick time. *)
  revocation_gauges : (int, M.Gauge.m) Hashtbl.t;
  mutable armed : bool;
  mutable stopped : bool;
}

let timeseries t = t.ts
let alerts t = t.alerts
let interval t = t.interval

let revocation_gauge t as_number =
  match Hashtbl.find_opt t.revocation_gauges as_number with
  | Some g -> g
  | None ->
      let g =
        M.Gauge.register M.default
          ~labels:[ ("aid", string_of_int as_number) ]
          ~help:"Live revocation-list entries" "apna_revocation_list_size"
      in
      Hashtbl.replace t.revocation_gauges as_number g;
      g

(* Pull-model gauges: state that nothing pushes on change (list sizes)
   is read off the network right before each snapshot. *)
let refresh_gauges t =
  List.iter
    (fun node ->
      let as_number = Addr.aid_to_int (As_node.aid node) in
      M.Gauge.set
        (revocation_gauge t as_number)
        (float_of_int (Revocation.size (As_node.revoked node))))
    (Network.ases t.net)

let tick_now t =
  let now = Network.now_f t.net in
  refresh_gauges t;
  T.tick t.ts ~now;
  Derive.compute t.ts ~now;
  Alert.eval t.alerts ~now

(* The tick keeps rescheduling itself only while the engine has other
   work queued: when the network quiesces the sampler takes one last
   snapshot and disarms, so [Network.run]'s run-to-quiescence loop still
   terminates. [kick] re-arms it before the next traffic phase. *)
let rec arm t =
  t.armed <- true;
  Engine.schedule_in (Network.engine t.net) ~delay:t.interval (fun () ->
      if not t.stopped then begin
        tick_now t;
        if Engine.pending (Network.engine t.net) > 0 then arm t
        else t.armed <- false
      end
      else t.armed <- false)

let kick t = if (not t.armed) && not t.stopped then arm t

let stop t =
  t.stopped <- true;
  t.armed <- false

let attach ?(interval = 0.25) ?capacity ?rules ?(events = Apna_obs.Event.default)
    net =
  M.set_enabled M.default true;
  let ts = T.create ?capacity ~interval M.default in
  T.set_enabled ts true;
  let rules =
    match rules with Some r -> r | None -> Alert.default_rules ~interval ()
  in
  let alerts = Alert.create ~rules ~events ts in
  let t =
    {
      net;
      ts;
      alerts;
      interval;
      revocation_gauges = Hashtbl.create 8;
      armed = false;
      stopped = false;
    }
  in
  arm t;
  t

let health t = Health.rollup t.alerts t.ts

let export t =
  Json.Obj
    [
      ("timeseries", T.to_json t.ts);
      ("alerts", Alert.to_json t.alerts);
      ("health", Health.to_json (health t));
    ]

(* ---- text dashboard (apnad top / health) ---- *)

let spark values =
  (* Unicode block sparkline over the last points of a series. *)
  let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                  "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                  "\xe2\x96\x87"; "\xe2\x96\x88" |] in
  let finite = List.filter (fun v -> not (Float.is_nan v)) values in
  match finite with
  | [] -> ""
  | _ ->
      let hi = List.fold_left Float.max neg_infinity finite in
      let lo = List.fold_left Float.min infinity finite in
      let span = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
      String.concat ""
        (List.map
           (fun v ->
             if Float.is_nan v then " "
             else
               let i =
                 int_of_float ((v -. lo) /. span *. 8.0) |> min 8 |> max 0
               in
               blocks.(i))
           values)

let tail_values s n =
  let pts = T.points s in
  let len = List.length pts in
  List.filteri (fun i _ -> i >= len - n) pts |> List.map snd

let dashboard ?(width = 24) t =
  let b = Buffer.create 1024 in
  let now = Network.now_f t.net in
  Buffer.add_string b
    (Printf.sprintf "apna telemetry  t=%.2fs  ticks=%d  interval=%.2fs\n\n"
       now (T.ticks t.ts) t.interval);
  Buffer.add_string b "HEALTH\n";
  Buffer.add_string b (Health.render (health t));
  let firing = Alert.firing t.alerts in
  Buffer.add_string b
    (Printf.sprintf "\nALERTS (%d firing)\n" (List.length firing));
  List.iter
    (fun i ->
      let r = Alert.rule i in
      Buffer.add_string b
        (Printf.sprintf "  %-4s %-20s %-9s %s\n"
           (Alert.severity_label r.Alert.severity)
           r.Alert.name
           (Alert.state_label (Alert.state i))
           (Alert.series i)))
    (List.filter
       (fun i -> Alert.state i <> Alert.Inactive)
       (Alert.instances t.alerts));
  Buffer.add_string b "\nINDICATORS\n";
  T.fold t.ts
    (fun () s ->
      if T.kind s = T.Kderived then begin
        let v = T.last_value s in
        Buffer.add_string b
          (Printf.sprintf "  %-52s %10s  %s\n" (T.series_id s)
             (if Float.is_nan v then "-" else Printf.sprintf "%.3f" v)
             (spark (tail_values s width)))
      end)
    ();
  Buffer.contents b
