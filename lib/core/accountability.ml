open Apna_crypto
module M = Apna_obs.Metrics

(* Shutoff propagation: evidence arrival at the AA to the border routers
   dropping the EphID (the revocation-batch flush). Sub-second by design —
   the drain loop runs every few tens of milliseconds. *)
let m_propagation =
  M.Histogram.register M.default ~lo:0.0 ~hi:2.0
    ~help:
      "Seconds from shutoff-evidence arrival to the EphID entering the \
       revocation list"
    "apna_aa_shutoff_propagation_seconds"

(* Admission-control policy for the shutoff path. The shutoff protocol is
   an amplification surface (one cheap request triggers signature checks
   and a revocation broadcast), so every knob here bounds attacker-paid
   work: token buckets bound per-requester throughput, the dedup table
   bounds replay of one piece of evidence into N revocations, the work
   queue bounds memory and lets spam be shed before legitimate evidence. *)
type limits = {
  rate_burst : int;  (** token-bucket capacity per requester EphID *)
  rate_per_s : float;  (** token refill rate *)
  dedup_cap : int;  (** evidence digests remembered (FIFO eviction) *)
  queue_cap : int;  (** bounded work queue: hi + lo entries *)
  drain_budget : int;  (** requests verified per drain pass *)
  batch_max : int;  (** revocations per batched announce command *)
  max_expiry_horizon_s : int;
      (** evidence whose quoted source EphID claims an expiry further in
          the future than any issuable lifetime is forged *)
  drain_interval_s : float;  (** drain-loop period when scheduled *)
}

let default_limits =
  {
    rate_burst = 8;
    rate_per_s = 1.0;
    dedup_cap = 8192;
    queue_cap = 64;
    drain_budget = 16;
    batch_max = 32;
    (* Just above the 30-day service-EphID lifetime, the longest the
       management plane ever issues. *)
    max_expiry_horizon_s = 31 * 86_400;
    drain_interval_s = 0.02;
  }

type bucket = { mutable tokens : float; mutable last : int }

(* A queued, admission-passed shutoff request. The source EphID was already
   parsed (cheap AES + CBC-MAC) for the freshness check; the expensive
   Ed25519 verification waits for the drain pass. *)
type job = {
  parsed : Shutoff.parsed;
  digest : string;  (** evidence packet MAC — the dedup key *)
  src_ephid : Ephid.t;
  src_info : Ephid.info;
  arrival : float;  (** sim seconds; start of the propagation clock *)
}

type refusal_stat = { mutable count : int; metric : M.Counter.m Lazy.t }

type obs = {
  aid_label : M.labels;
  m_requests : M.Counter.m;
  m_granted : M.Counter.m;
  m_shed : M.Counter.m;
  m_batches : M.Counter.m;
  m_batched : M.Counter.m;
  g_queue : M.Gauge.m;
}

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  trust : Trust.t;
  max_revocations_per_host : int;
  limits : limits;
  revocation_counts : int Apna_net.Addr.Hid_tbl.t;
  (* Admission state: per-requester buckets and the evidence-digest dedup
     set, both FIFO-bounded so a spammer cannot grow them without bound. *)
  buckets : (string, bucket) Hashtbl.t;
  bucket_fifo : string Queue.t;
  dedup : (string, unit) Hashtbl.t;
  dedup_fifo : string Queue.t;
  (* Two-priority bounded work queue: requesters still holding most of
     their token budget are presumed legitimate; depleted requesters are
     the first shed under pressure. *)
  q_hi : job Queue.t;
  q_lo : job Queue.t;
  mutable queue_peak : int;
  mutable shed : int;
  mutable granted : int;
  refusals : (string, refusal_stat) Hashtbl.t;
  mutable prop_samples : float list;
  obs : obs;
  (* Legal-plane accountability: every shutoff decision (grant or refusal)
     is reported here; the privacy broker installs its hash-chained journal
     so the AA's disclosures share the broker's tamper-evident record. *)
  mutable decision_sink : (now:int -> string -> unit) option;
}

let create ~keys ~host_info ~revoked ~trust ?(max_revocations_per_host = 6)
    ?(limits = default_limits) () =
  let aid_label =
    [ ("aid", string_of_int (Apna_net.Addr.aid_to_int keys.Keys.aid)) ]
  in
  {
    keys;
    host_info;
    revoked;
    trust;
    max_revocations_per_host;
    limits;
    revocation_counts = Apna_net.Addr.Hid_tbl.create 16;
    buckets = Hashtbl.create 64;
    bucket_fifo = Queue.create ();
    dedup = Hashtbl.create 256;
    dedup_fifo = Queue.create ();
    q_hi = Queue.create ();
    q_lo = Queue.create ();
    queue_peak = 0;
    shed = 0;
    granted = 0;
    refusals = Hashtbl.create 8;
    prop_samples = [];
    obs =
      {
        aid_label;
        m_requests =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Shutoff requests reaching the accountability agent"
            "apna_aa_requests_total";
        m_granted =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Shutoff requests granted (EphID revoked)"
            "apna_aa_granted_total";
        m_shed =
          M.Counter.register M.default ~labels:aid_label
            ~help:
              "Shutoff requests dropped unprocessed by work-queue \
               load-shedding"
            "apna_aa_shed_total";
        m_batches =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Batched revocation announcements sent to border routers"
            "apna_aa_revocation_batches_total";
        m_batched =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Revocations carried inside batched announcements"
            "apna_aa_batched_revocations_total";
        g_queue =
          M.Gauge.register M.default ~labels:aid_label
            ~help:"Shutoff requests queued awaiting verification"
            "apna_aa_queue_depth";
      };
    decision_sink = None;
  }

let set_decision_sink t sink = t.decision_sink <- Some sink
let limits t = t.limits

let revocations_of t hid =
  Option.value ~default:0 (Apna_net.Addr.Hid_tbl.find_opt t.revocation_counts hid)

let queue_depth t = Queue.length t.q_hi + Queue.length t.q_lo
let queue_peak t = t.queue_peak
let shed_count t = t.shed
let granted_count t = t.granted
let propagation_samples t = t.prop_samples

let refusal_reasons t =
  Hashtbl.fold (fun k (v : refusal_stat) acc -> (k, v.count) :: acc) t.refusals []
  |> List.sort compare

let refused_count t =
  Hashtbl.fold (fun _ (v : refusal_stat) acc -> acc + v.count) t.refusals 0

(* ------------------------------------------------------------------ *)
(* Accounting helpers *)

let count_refusal t e =
  let label = Error.kind_label e in
  let stat =
    match Hashtbl.find_opt t.refusals label with
    | Some s -> s
    | None ->
        let s =
          {
            count = 0;
            metric =
              lazy
                (M.Counter.register M.default
                   ~labels:(("reason", label) :: t.obs.aid_label)
                   ~help:"Shutoff requests refused, by reason"
                   "apna_aa_refusals_total");
          }
        in
        Hashtbl.add t.refusals label s;
        s
  in
  stat.count <- stat.count + 1;
  if M.enabled M.default then M.Counter.incr (Lazy.force stat.metric)

let update_queue_gauge t =
  let d = queue_depth t in
  if d > t.queue_peak then t.queue_peak <- d;
  M.Gauge.set t.obs.g_queue (float_of_int d)

(* Legal plane: report the decision (either way) to the installed journal
   sink; flight recorder: a granted shutoff is the final event of the
   offending packet's journey — keyed on the evidence packet's MAC. *)
let report t ~now ~(packet : Apna_net.Packet.t option) result =
  (match t.decision_sink with
  | None -> ()
  | Some sink -> (
      match result with
      | Ok (hid, ephid) ->
          sink ~now
            (Printf.sprintf "shutoff grant hid=%d ephid=%s"
               (Apna_net.Addr.hid_to_int hid)
               (Apna_util.Hex.encode (Ephid.to_bytes ephid)))
      | Error e ->
          sink ~now
            (Printf.sprintf "shutoff refusal reason=%s" (Error.kind_label e))));
  match (result, packet) with
  | Ok _, Some packet when Apna_obs.Event.enabled Apna_obs.Event.default ->
      Apna_obs.Event.(
        record default
          ~key:(key_of_string packet.header.mac)
          (Shutoff { aid = Apna_net.Addr.aid_to_int t.keys.aid }))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Admission control: everything here is cheap (hash lookups plus one
   symmetric EphID parse) and runs before any Ed25519 verification, so
   spam is refused at a fraction of the work it tries to trigger. *)

let dedup_mem t digest = Hashtbl.mem t.dedup digest

let dedup_add t digest =
  if not (Hashtbl.mem t.dedup digest) then begin
    if Queue.length t.dedup_fifo >= t.limits.dedup_cap then begin
      let oldest = Queue.pop t.dedup_fifo in
      Hashtbl.remove t.dedup oldest
    end;
    Hashtbl.replace t.dedup digest ();
    Queue.push digest t.dedup_fifo
  end

(* Returns [Ok high_priority] when the requester still has a token.
   Priority degrades once a requester has burned through half its burst:
   a victim reporting a handful of flows stays high-priority; a spammer
   hammering the AA rides the low queue and is first to be shed. *)
let take_token t ~now requester =
  let b =
    match Hashtbl.find_opt t.buckets requester with
    | Some b -> b
    | None ->
        if Queue.length t.bucket_fifo >= t.limits.dedup_cap then begin
          let oldest = Queue.pop t.bucket_fifo in
          Hashtbl.remove t.buckets oldest
        end;
        let b = { tokens = float_of_int t.limits.rate_burst; last = now } in
        Hashtbl.replace t.buckets requester b;
        Queue.push requester t.bucket_fifo;
        b
  in
  if now > b.last then begin
    b.tokens <-
      Float.min
        (float_of_int t.limits.rate_burst)
        (b.tokens +. (t.limits.rate_per_s *. float_of_int (now - b.last)));
    b.last <- now
  end;
  if b.tokens < 1.0 then Error (Error.Rejected "shutoff rate limit")
  else begin
    b.tokens <- b.tokens -. 1.0;
    Ok (b.tokens >= float_of_int t.limits.rate_burst /. 2.0)
  end

(* Satellite fix: evidence is only as fresh as the quoted source EphID's
   validity window. An expired EphID means the revocation would be a no-op
   the border router already enforces — refuse instead of burning
   signature checks; an expiry beyond any issuable lifetime is forged. *)
let check_freshness t ~now (parsed : Shutoff.parsed) =
  match Ephid.parse_bytes t.keys parsed.packet.header.src_ephid with
  | Error e -> Error e
  | Ok (src_ephid, info) ->
      if Ephid.expired info ~now then Error (Error.Expired "evidence")
      else if info.expiry - now > t.limits.max_expiry_horizon_s then
        Error (Error.Rejected "evidence EphID beyond validity horizon")
      else Ok (src_ephid, info)

let admit t ~now ~arrival msg =
  M.Counter.incr t.obs.m_requests;
  let r =
    match Shutoff.parse_request msg with
    | Error e -> Error e
    | Ok parsed -> begin
        match take_token t ~now (Ephid.to_bytes parsed.cert.ephid) with
        | Error e -> Error e
        | Ok high ->
            let digest = parsed.packet.header.mac in
            if dedup_mem t digest then
              Error (Error.Rejected "duplicate evidence")
            else begin
              match check_freshness t ~now parsed with
              | Error e -> Error e
              | Ok (src_ephid, src_info) ->
                  Ok ({ parsed; digest; src_ephid; src_info; arrival }, high)
            end
      end
  in
  (match r with Error e -> count_refusal t e | Ok _ -> ());
  r

(* ------------------------------------------------------------------ *)
(* Revoke commands (Fig. 5), single and batched *)

module Command = struct
  type t = { ephid : Ephid.t; expiry : int; mac : string }

  let expiry_bytes expiry =
    String.init 4 (fun i -> Char.chr ((expiry lsr (8 * (3 - i))) land 0xff))

  let bytes_for_mac ~ephid ~expiry =
    "revoke:" ^ Ephid.to_bytes ephid ^ expiry_bytes expiry

  let make ~(keys : Keys.as_keys) ~ephid ~expiry =
    let mac = Hmac.Sha256.mac ~key:keys.infra_mac (bytes_for_mac ~ephid ~expiry) in
    { ephid; expiry; mac }

  let verify ~(keys : Keys.as_keys) t =
    Hmac.Sha256.verify ~key:keys.infra_mac ~tag:t.mac
      (bytes_for_mac ~ephid:t.ephid ~expiry:t.expiry)

  (* A storm's worth of revocations rides one kAS-authenticated control
     message: O(batches) announcements, one MAC over the whole entry list,
     one cache-generation bump at the routers. *)
  type batch = { entries : (Ephid.t * int) list; bmac : string }

  let bytes_for_batch entries =
    let buf = Buffer.create (16 + (List.length entries * (Ephid.size + 4))) in
    Buffer.add_string buf "revoke-batch:";
    List.iter
      (fun (ephid, expiry) ->
        Buffer.add_string buf (Ephid.to_bytes ephid);
        Buffer.add_string buf (expiry_bytes expiry))
      entries;
    Buffer.contents buf

  let make_batch ~(keys : Keys.as_keys) ~entries =
    let bmac = Hmac.Sha256.mac ~key:keys.infra_mac (bytes_for_batch entries) in
    { entries; bmac }

  let verify_batch ~(keys : Keys.as_keys) t =
    Hmac.Sha256.verify ~key:keys.infra_mac ~tag:t.bmac
      (bytes_for_batch t.entries)
end

(* ------------------------------------------------------------------ *)
(* Verification and execution *)

(* §VIII-G2: repeated shutoffs are a sign of a malicious host; revoke the
   identity itself past the threshold. Counting is immediate even when the
   router announcement is batched. *)
let record_grant t ~hid =
  t.granted <- t.granted + 1;
  M.Counter.incr t.obs.m_granted;
  let count = revocations_of t hid + 1 in
  Apna_net.Addr.Hid_tbl.replace t.revocation_counts hid count;
  if count >= t.max_revocations_per_host then
    Host_info.revoke_hid t.host_info hid

let execute_revocation t ~hid ~ephid ~expiry =
  (* Fig. 5: the AA instructs the border routers with a kAS-authenticated
     command; routers verify before inserting into revoked_ids. *)
  let cmd = Command.make ~keys:t.keys ~ephid ~expiry in
  if not (Command.verify ~keys:t.keys cmd) then
    Error (Error.Bad_signature "revoke command")
  else begin
    Revocation.revoke t.revoked cmd.ephid ~expiry:cmd.expiry;
    record_grant t ~hid;
    Ok (hid, ephid)
  end

(* The expensive half of Fig. 5's validation: the requester's certificate
   chains to its AS, the signature proves ownership of the packet's
   destination EphID, and the per-packet MAC proves the accused source
   really sent the evidence. *)
let verify_request t ~now (job : job) =
  let { parsed = { packet; signature; cert }; src_ephid; src_info; _ } = job in
  let header = packet.header in
  match Trust.verify_cert t.trust ~now cert with
  | Error e -> Error e
  | Ok () ->
      if not (String.equal (Ephid.to_bytes cert.ephid) header.dst_ephid) then
        Error (Error.Rejected "requester is not the packet's destination")
      else if
        not
          (Ed25519.verify ~pub:cert.sig_pub
             ~msg:(Apna_net.Packet.to_bytes packet)
             ~signature)
      then Error (Error.Bad_signature "shutoff request")
      else if Ephid.expired src_info ~now then
        (* The EphID may have aged out while the request sat in the queue. *)
        Error (Error.Expired "source EphID")
      else begin
        match Host_info.find t.host_info src_info.hid with
        | Error e -> Error e
        | Ok entry ->
            if not (Pkt_auth.verify ~auth_key:entry.kha.auth packet) then
              Error Error.Bad_mac
            else Ok (src_info.hid, src_ephid, src_info.expiry)
      end

(* ------------------------------------------------------------------ *)
(* Synchronous path: admission then immediate verification + revocation.
   Used by direct callers (tests, the NAT-mode access point) and as the
   fallback when no scheduler is wired. *)

let handle_shutoff t ~now msg =
  match admit t ~now ~arrival:(float_of_int now) msg with
  | Error e ->
      report t ~now ~packet:None (Error e);
      Error e
  | Ok (job, _high) ->
      let result =
        match verify_request t ~now job with
        | Error e ->
            count_refusal t e;
            Error e
        | Ok (hid, ephid, expiry) ->
            dedup_add t job.digest;
            execute_revocation t ~hid ~ephid ~expiry
      in
      report t ~now ~packet:(Some job.parsed.packet) result;
      result

(* ------------------------------------------------------------------ *)
(* Queued path: bounded admission queue + budgeted drain *)

type verdict = Queued | Refused of Error.t | Shed

let shed_one t ~now =
  t.shed <- t.shed + 1;
  M.Counter.incr t.obs.m_shed;
  match t.decision_sink with
  | None -> ()
  | Some sink -> sink ~now "shutoff shed under load"

let enqueue t ~now ~at msg =
  match admit t ~now ~arrival:at msg with
  | Error e ->
      report t ~now ~packet:None (Error e);
      Refused e
  | Ok (job, high) ->
      let verdict =
        if queue_depth t < t.limits.queue_cap then begin
          Queue.push job (if high then t.q_hi else t.q_lo);
          Queued
        end
        else if high && Queue.length t.q_lo > 0 then begin
          (* Full queue, legitimate-looking arrival: shed the oldest
             low-priority entry to make room — spam dies before evidence. *)
          ignore (Queue.pop t.q_lo);
          shed_one t ~now;
          Queue.push job t.q_hi;
          Queued
        end
        else begin
          shed_one t ~now;
          Shed
        end
      in
      update_queue_gauge t;
      verdict

let flush_batch t entries =
  match entries with
  | [] -> ()
  | entries ->
      let cmd = Command.make_batch ~keys:t.keys ~entries in
      if Command.verify_batch ~keys:t.keys cmd then begin
        let changed = Revocation.revoke_many t.revoked cmd.Command.entries in
        ignore changed;
        M.Counter.incr t.obs.m_batches;
        M.Counter.incr t.obs.m_batched ~by:(List.length entries)
      end

let drain t ~now ~at =
  let grants = ref [] and batch = ref [] and batch_len = ref 0 in
  let flush () =
    flush_batch t (List.rev !batch);
    batch := [];
    batch_len := 0
  in
  let process (job : job) =
    let result =
      (* Re-check the dedup set: a duplicate admitted before its twin was
         granted must not double-count the host's revocation quota. *)
      if dedup_mem t job.digest then begin
        let e = Error.Rejected "duplicate evidence" in
        count_refusal t e;
        Error e
      end
      else
        match verify_request t ~now job with
        | Error e ->
            count_refusal t e;
            Error e
        | Ok (hid, ephid, expiry) ->
            dedup_add t job.digest;
            record_grant t ~hid;
            batch := (ephid, expiry) :: !batch;
            incr batch_len;
            if !batch_len >= t.limits.batch_max then flush ();
            let dt = Float.max 0.0 (at -. job.arrival) in
            t.prop_samples <- dt :: t.prop_samples;
            M.Histogram.observe m_propagation dt;
            grants := (hid, ephid) :: !grants;
            Ok (hid, ephid)
    in
    report t ~now ~packet:(Some job.parsed.packet) result
  in
  let budget = ref t.limits.drain_budget in
  while
    !budget > 0 && (Queue.length t.q_hi > 0 || Queue.length t.q_lo > 0)
  do
    let job =
      if Queue.length t.q_hi > 0 then Queue.pop t.q_hi else Queue.pop t.q_lo
    in
    process job;
    decr budget
  done;
  flush ();
  update_queue_gauge t;
  List.rev !grants
