open Apna_crypto

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  trust : Trust.t;
  max_revocations_per_host : int;
  revocation_counts : int Apna_net.Addr.Hid_tbl.t;
  (* Legal-plane accountability: every shutoff decision (grant or refusal)
     is reported here; the privacy broker installs its hash-chained journal
     so the AA's disclosures share the broker's tamper-evident record. *)
  mutable decision_sink : (now:int -> string -> unit) option;
}

let create ~keys ~host_info ~revoked ~trust ?(max_revocations_per_host = 6) () =
  {
    keys;
    host_info;
    revoked;
    trust;
    max_revocations_per_host;
    revocation_counts = Apna_net.Addr.Hid_tbl.create 16;
    decision_sink = None;
  }

let set_decision_sink t sink = t.decision_sink <- Some sink

let revocations_of t hid =
  Option.value ~default:0 (Apna_net.Addr.Hid_tbl.find_opt t.revocation_counts hid)

module Command = struct
  type t = { ephid : Ephid.t; expiry : int; mac : string }

  let bytes_for_mac ~ephid ~expiry =
    "revoke:" ^ Ephid.to_bytes ephid
    ^ String.init 4 (fun i -> Char.chr ((expiry lsr (8 * (3 - i))) land 0xff))

  let make ~(keys : Keys.as_keys) ~ephid ~expiry =
    let mac = Hmac.Sha256.mac ~key:keys.infra_mac (bytes_for_mac ~ephid ~expiry) in
    { ephid; expiry; mac }

  let verify ~(keys : Keys.as_keys) t =
    Hmac.Sha256.verify ~key:keys.infra_mac ~tag:t.mac
      (bytes_for_mac ~ephid:t.ephid ~expiry:t.expiry)
end

let execute_revocation t ~hid ~ephid ~expiry =
  (* Fig. 5: the AA instructs the border routers with a kAS-authenticated
     command; routers verify before inserting into revoked_ids. *)
  let cmd = Command.make ~keys:t.keys ~ephid ~expiry in
  if not (Command.verify ~keys:t.keys cmd) then
    Error (Error.Bad_signature "revoke command")
  else begin
    Revocation.revoke t.revoked cmd.ephid ~expiry:cmd.expiry;
    let count = revocations_of t hid + 1 in
    Apna_net.Addr.Hid_tbl.replace t.revocation_counts hid count;
    (* §VIII-G2: repeated shutoffs are a sign of a malicious host; revoke
       the identity itself past the threshold. *)
    if count >= t.max_revocations_per_host then Host_info.revoke_hid t.host_info hid;
    Ok (hid, ephid)
  end

let handle_shutoff t ~now msg =
  match Shutoff.parse_request msg with
  | Error e -> Error e
  | Ok { packet; signature; cert } ->
      let header = packet.header in
      (* 1. The requester's certificate is genuine and current. *)
      let check_cert = Trust.verify_cert t.trust ~now cert in
      let continue_after_cert () =
        (* 2. The requester owns the packet's destination EphID: the cert
           names that EphID and the signature verifies under its key. *)
        if not (String.equal (Ephid.to_bytes cert.ephid) header.dst_ephid) then
          Error (Error.Rejected "requester is not the packet's destination")
        else if
          not
            (Ed25519.verify ~pub:cert.sig_pub
               ~msg:(Apna_net.Packet.to_bytes packet)
               ~signature)
        then Error (Error.Bad_signature "shutoff request")
        else begin
          (* 3. The accused source is one of ours and really sent this
             packet: decrypt the EphID and re-verify the per-packet MAC. *)
          match Ephid.parse_bytes t.keys header.src_ephid with
          | Error e -> Error e
          | Ok (src_ephid, info) ->
              if Ephid.expired info ~now then Error (Error.Expired "source EphID")
              else begin
                match Host_info.find t.host_info info.hid with
                | Error e -> Error e
                | Ok entry ->
                    if not (Pkt_auth.verify ~auth_key:entry.kha.auth packet)
                    then Error Error.Bad_mac
                    else
                      execute_revocation t ~hid:info.hid ~ephid:src_ephid
                        ~expiry:info.expiry
              end
        end
      in
      let result =
        match check_cert with Error e -> Error e | Ok () -> continue_after_cert ()
      in
      (* Legal plane: report the decision (either way) to the installed
         journal sink before returning. *)
      (match t.decision_sink with
      | None -> ()
      | Some sink -> (
          match result with
          | Ok (hid, ephid) ->
              sink ~now
                (Printf.sprintf "shutoff grant hid=%d ephid=%s"
                   (Apna_net.Addr.hid_to_int hid)
                   (Apna_util.Hex.encode (Ephid.to_bytes ephid)))
          | Error e ->
              sink ~now
                (Printf.sprintf "shutoff refusal reason=%s" (Error.kind_label e))));
      (* Flight recorder: a granted shutoff is the final event of the
         offending packet's journey — keyed on the evidence packet's MAC. *)
      (match result with
      | Ok _ when Apna_obs.Event.enabled Apna_obs.Event.default ->
          Apna_obs.Event.(
            record default
              ~key:(key_of_string packet.header.mac)
              (Shutoff { aid = Apna_net.Addr.aid_to_int t.keys.aid }))
      | _ -> ());
      result
