(** Key material for ASes and hosts.

    Following the paper's Table I and §IV-B/§V-A1: an AS holds a master
    secret kA from which the EphID encryption key (kA') and EphID MAC key
    (kA'') are derived, an infrastructure key kAS shared among its routers
    and services, an Ed25519 signing key (K-AS, registered in RPKI — our
    {!Trust} store), and an X25519 key used in the bootstrap DH exchange.

    The host–AS shared secret kHA is, as in the paper, a pair of derived
    keys: one encrypts EphID request/reply messages, the other authenticates
    every packet the host sends. *)

open Apna_crypto

type as_keys = {
  aid : Apna_net.Addr.aid;
  master : string;  (** kA — 32 bytes, never leaves the AS. *)
  ephid_enc : Aes.key;  (** kA' — AES-128 key for EphID encryption. *)
  ephid_mac : Aes.key;  (** kA'' — AES-128 key for the EphID CBC-MAC. *)
  infra_mac : string;  (** kAS — authenticates AA-to-router control messages. *)
  signing : Ed25519.keypair;  (** K+AS / K-AS — certificate signatures. *)
  dh_secret : string;  (** X25519 secret for host bootstrap. *)
  dh_public : string;  (** The matching public value (known via RPKI). *)
}

val make_as : Drbg.t -> aid:Apna_net.Addr.aid -> as_keys

type host_as =
  { ctrl : Aead.key Lazy.t;
        (** encrypts EphID request/reply messages (§IV-C); lazily expanded
            — see {!ctrl} *)
    ctrl_raw : string;
    auth : string  (** keys the per-packet MAC (§IV-D2) *) }
(** kHA — the two keys shared between a host and its AS. *)

val derive_host_as : shared_secret:string -> host_as
(** [derive_host_as ~shared_secret] derives both kHA keys from the result
    of the host–RS Diffie-Hellman exchange (Fig. 2). The control AEAD key
    schedule (~1 KB) is expanded on first use, not at derivation: a
    paper-scale registry (1.27 M subscribers) must not hold a gigabyte of
    round keys for hosts that never send a control message. *)

val ctrl : host_as -> Aead.key
(** Forces (and memoizes) the control-channel AEAD key. *)

type ephid_keys = {
  kx_secret : string;  (** X25519 secret — session-key agreement. *)
  kx_public : string;
  sig_keypair : Ed25519.keypair;  (** Authorizes shutoff requests. *)
}
(** The host-generated keypair material bound to one EphID.

    The paper binds a single Curve25519 keypair per EphID and uses it for
    both DH and signatures; we bind an (X25519, Ed25519) pair instead —
    same curve, separated roles — and certify both public keys. *)

val make_ephid_keys : Drbg.t -> ephid_keys
