(** Ephemeral Identifiers — the heart of APNA (paper §III-B, §IV-C, §V-A1).

    An EphID is a 16-byte CCA-secure token encrypting (HID, ExpTime) under
    the issuing AS's secret keys, Encrypt-then-MAC (Fig. 6):

    {v
      ciphertext = AES-CTR(kA', counter = IV ‖ 0^12)(HID ‖ ExpTime)   8 bytes
      tag        = CBC-MAC(kA'', ciphertext ‖ IV ‖ 0^4)[0..3]          4 bytes
      EphID      = IV ‖ ciphertext ‖ tag                              16 bytes
    v}

    Only the issuing AS can recover the HID (statelessly — no mapping
    table); to everyone else the token is opaque, which is exactly the
    host-privacy property. The fresh IV per issuance makes many EphIDs per
    HID unlinkable. *)

type t
(** An EphID as an opaque 16-byte token. *)

val size : int
(** 16. *)

val iv_size : int
(** 4. *)

type info = { hid : Apna_net.Addr.hid; expiry : int }
(** The confidential content: host identifier and Unix expiry time. *)

val issue : Keys.as_keys -> hid:Apna_net.Addr.hid -> expiry:int -> iv:string -> t
(** [issue keys ~hid ~expiry ~iv] constructs the token. [iv] must be 4
    bytes and unique per issuance (the MS uses a counter or DRBG).
    @raise Invalid_argument on bad sizes or a negative expiry. *)

val issue_random : Keys.as_keys -> Apna_crypto.Drbg.t -> hid:Apna_net.Addr.hid -> expiry:int -> t

val parse : Keys.as_keys -> t -> (info, Error.t) result
(** [parse keys e] verifies the tag and decrypts — the issuing-AS-only
    operation border routers run on every packet (Fig. 4). Returns
    [Error (Malformed _)] when the tag does not verify, i.e. the token was
    not produced by this AS. Expiry is {e not} checked here. Total: never
    raises, whatever the input length. *)

type scratch
(** Reusable working buffers for {!parse_fast} (three 16-byte blocks).
    Not safe to share across concurrent parses. *)

val scratch : unit -> scratch

val parse_fast : Keys.as_keys -> scratch -> string -> (info, Error.t) result
(** [parse_fast keys sc s] is [parse] on the raw 16-byte token [s] with
    all intermediate buffers drawn from [sc] — the border router's
    cache-miss path runs this once per unseen EphID. Total like
    [parse]; only the result cell itself is allocated. *)

val parse_bytes : Keys.as_keys -> string -> (t * info, Error.t) result
(** [parse_bytes keys s] is [of_bytes] followed by [parse] — the pattern
    every wire-facing caller (MS, AA, AP, border router) runs on untrusted
    bytes. Total; a truncated or oversized field is
    [Error (Malformed _)], never an exception. *)

val expired : info -> now:int -> bool

val to_bytes : t -> string
val of_bytes : string -> (t, string) result
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
