open Apna_crypto

type t = string

let size = 16
let iv_size = 4
let ct_size = 8
let tag_size = 4

type info = { hid : Apna_net.Addr.hid; expiry : int }

let counter_block iv = iv ^ String.make 12 '\000'
let mac_input ~ciphertext ~iv = ciphertext ^ iv ^ String.make 4 '\000'

let issue (keys : Keys.as_keys) ~hid ~expiry ~iv =
  if String.length iv <> iv_size then invalid_arg "Ephid.issue: IV size";
  if expiry < 0 || expiry > 0xffffffff then invalid_arg "Ephid.issue: expiry";
  let plaintext =
    Apna_net.Addr.hid_to_bytes hid
    ^ String.init 4 (fun i -> Char.chr ((expiry lsr (8 * (3 - i))) land 0xff))
  in
  let ciphertext =
    Aes.Ctr.crypt ~key:keys.ephid_enc ~nonce:(counter_block iv) plaintext
  in
  let tag =
    String.sub (Aes.Cbc_mac.mac ~key:keys.ephid_mac (mac_input ~ciphertext ~iv)) 0 tag_size
  in
  iv ^ ciphertext ^ tag

let issue_random keys rng ~hid ~expiry =
  issue keys ~hid ~expiry ~iv:(Drbg.generate rng iv_size)

let parse_checked (keys : Keys.as_keys) e =
  let iv = String.sub e 0 iv_size in
  let ciphertext = String.sub e iv_size ct_size in
  let tag = String.sub e (iv_size + ct_size) tag_size in
  let expected =
    String.sub (Aes.Cbc_mac.mac ~key:keys.ephid_mac (mac_input ~ciphertext ~iv)) 0 tag_size
  in
  if not (Apna_util.Ct.equal tag expected) then
    Error (Error.Malformed "ephid: tag verification failed")
  else begin
    let plaintext =
      Aes.Ctr.crypt ~key:keys.ephid_enc ~nonce:(counter_block iv) ciphertext
    in
    match Apna_net.Addr.hid_of_bytes (String.sub plaintext 0 4) with
    | Error e -> Error (Error.Malformed e)
    | Ok hid ->
        let expiry =
          (Char.code plaintext.[4] lsl 24)
          lor (Char.code plaintext.[5] lsl 16)
          lor (Char.code plaintext.[6] lsl 8)
          lor Char.code plaintext.[7]
        in
        Ok { hid; expiry }
  end

(* Reusable buffers for the non-allocating parse below: MAC input,
   CBC-MAC accumulator and counter/keystream block, 16 bytes each. *)
type scratch = { mi : Bytes.t; tag : Bytes.t; blk : Bytes.t }

let scratch () =
  { mi = Bytes.create size; tag = Bytes.create size; blk = Bytes.create size }

let be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let be32_s s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let err_tag = Error (Error.Malformed "ephid: tag verification failed")
let err_size = Error (Error.Malformed "ephid: wrong size")

(* Same computation as [parse_checked] without the intermediate strings:
   the burst pipeline's cache-miss path. Only the [Ok info] result cell
   allocates. *)
let parse_fast (keys : Keys.as_keys) sc e =
  if String.length e <> size then err_size
  else begin
    (* mac_input = ciphertext ‖ IV ‖ 0^4 *)
    Bytes.blit_string e iv_size sc.mi 0 ct_size;
    Bytes.blit_string e 0 sc.mi ct_size iv_size;
    Bytes.fill sc.mi (ct_size + iv_size) (size - ct_size - iv_size) '\000';
    Aes.Cbc_mac.mac_into ~key:keys.ephid_mac ~src:sc.mi ~off:0 ~len:size
      ~out:sc.tag ~out_off:0;
    (* Constant-time tag comparison, first [tag_size] bytes. *)
    let acc = ref 0 in
    for i = 0 to tag_size - 1 do
      acc :=
        !acc
        lor (Char.code (Bytes.get sc.tag i)
            lxor Char.code e.[iv_size + ct_size + i])
    done;
    if !acc <> 0 then err_tag
    else begin
      (* Keystream block = AES(counter = IV ‖ 0^12); xor-extract fields. *)
      Bytes.blit_string e 0 sc.blk 0 iv_size;
      Bytes.fill sc.blk iv_size (size - iv_size) '\000';
      Aes.encrypt_block_into keys.ephid_enc ~src:sc.blk ~src_off:0 ~dst:sc.blk
        ~dst_off:0;
      let hid = be32 sc.blk 0 lxor be32_s e iv_size in
      let expiry = be32 sc.blk 4 lxor be32_s e (iv_size + 4) in
      Ok { hid = Apna_net.Addr.hid_of_int hid; expiry }
    end
  end

let parse (keys : Keys.as_keys) e =
  (* Total on any byte string: wire-derived input must never raise, even
     though well-typed callers go through [of_bytes] first. *)
  if String.length e <> size then
    Error
      (Error.Malformed
         (Printf.sprintf "ephid: need %d bytes, got %d" size (String.length e)))
  else parse_checked keys e

let expired info ~now = info.expiry < now

let to_bytes e = e

let of_bytes s =
  if String.length s = size then Ok s
  else Error (Printf.sprintf "ephid: need %d bytes, got %d" size (String.length s))

let parse_bytes keys s =
  match of_bytes s with
  | Error e -> Error (Error.Malformed e)
  | Ok ephid -> (
      match parse keys ephid with
      | Error e -> Error e
      | Ok info -> Ok (ephid, info))

let equal = String.equal
let compare = String.compare
let pp ppf e = Format.fprintf ppf "E[%s]" (Apna_util.Hex.encode (String.sub e 0 4))

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = String.equal
  let hash = Hashtbl.hash
end)
