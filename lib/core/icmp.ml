type unreachable_reason = No_route | Ephid_expired | Ephid_revoked | Host_unknown

type t =
  | Echo_request of { ident : int; data : string }
  | Echo_reply of { ident : int; data : string }
  | Unreachable of { reason : unreachable_reason; quoted : string }
  | Frag_needed of { mtu : int; quoted : string }
  | Encrypted of { sealed : Ecies.sealed }

let reason_to_int = function
  | No_route -> 0
  | Ephid_expired -> 1
  | Ephid_revoked -> 2
  | Host_unknown -> 3

let reason_of_int = function
  | 0 -> Ok No_route
  | 1 -> Ok Ephid_expired
  | 2 -> Ok Ephid_revoked
  | 3 -> Ok Host_unknown
  | n -> Error (Printf.sprintf "icmp: unknown unreachable reason %d" n)

let reason_to_string = function
  | No_route -> "no route to AS"
  | Ephid_expired -> "destination EphID expired"
  | Ephid_revoked -> "destination EphID revoked"
  | Host_unknown -> "destination host unknown"

let reason_label = function
  | No_route -> "no-route"
  | Ephid_expired -> "ephid-expired"
  | Ephid_revoked -> "ephid-revoked"
  | Host_unknown -> "host-unknown"

let to_bytes t =
  let w = Apna_util.Rw.Writer.create () in
  let open Apna_util.Rw.Writer in
  (match t with
  | Echo_request { ident; data } ->
      u8 w 0;
      u16 w ident;
      bytes w data
  | Echo_reply { ident; data } ->
      u8 w 1;
      u16 w ident;
      bytes w data
  | Unreachable { reason; quoted } ->
      u8 w 2;
      u8 w (reason_to_int reason);
      bytes w quoted
  | Frag_needed { mtu; quoted } ->
      u8 w 3;
      u16 w mtu;
      bytes w quoted
  | Encrypted { sealed } ->
      u8 w 4;
      bytes w (Ecies.to_bytes sealed));
  contents w

let of_bytes s =
  let open Apna_util.Rw in
  let r = Reader.of_string s in
  let parse =
    let* kind = Reader.u8 r in
    match kind with
    | 0 | 1 ->
        let* ident = Reader.u16 r in
        let data = Reader.rest r in
        Ok (if kind = 0 then Echo_request { ident; data } else Echo_reply { ident; data })
    | 2 ->
        let* reason_int = Reader.u8 r in
        let* reason = reason_of_int reason_int in
        Ok (Unreachable { reason; quoted = Reader.rest r })
    | 3 ->
        let* mtu = Reader.u16 r in
        Ok (Frag_needed { mtu; quoted = Reader.rest r })
    | 4 -> begin
        match Ecies.of_bytes (Reader.rest r) with
        | Ok sealed -> Ok (Encrypted { sealed })
        | Error e -> Error (Error.to_string e)
      end
    | n -> Error (Printf.sprintf "icmp: unknown type %d" n)
  in
  Result.map_error (fun e -> Error.Malformed e) parse

let pp ppf = function
  | Echo_request { ident; _ } -> Format.fprintf ppf "echo-request(%d)" ident
  | Echo_reply { ident; _ } -> Format.fprintf ppf "echo-reply(%d)" ident
  | Unreachable { reason; _ } ->
      Format.fprintf ppf "unreachable(%s)" (reason_to_string reason)
  | Frag_needed { mtu; _ } -> Format.fprintf ppf "frag-needed(mtu=%d)" mtu
  | Encrypted _ -> Format.pp_print_string ppf "encrypted"
