(** DNS over APNA (paper §VII-A).

    Servers publish (name → EphID certificate) records; clients resolve
    names to AID:EphID destinations. Records are signed by a zone key
    (DNSSEC stand-in) and queries/replies are encrypted end-to-end under a
    key derived from the client's EphID key and the DNS service's EphID key
    — only the DNS server and the querying host see the queried name.

    Published EphIDs are expected to be {e receive-only} so shutoff
    requests cannot take a published service name offline. *)

module Record : sig
  type t = {
    name : string;
    cert : Cert.t;  (** The service's (receive-only) EphID certificate. *)
    ipv4 : Apna_net.Addr.hid option;
        (** Optional legacy address for gateway interop (§VII-D). *)
    receive_only : bool;
    zone : string;
    signature : string;  (** Zone (DNSSEC) signature. *)
  }

  val to_bytes : t -> string
  val of_bytes : string -> (t, Error.t) result
  val verify : zone_pub:string -> now:int -> t -> (unit, Error.t) result
end

type t

val create :
  rng:Apna_crypto.Drbg.t -> trust:Trust.t -> zone:string ->
  zone_key:Apna_crypto.Ed25519.keypair -> cert:Cert.t ->
  keys:Keys.ephid_keys -> unit -> t
(** [cert]/[keys] are the DNS service's own EphID credentials (issued by
    its AS); the zone public key should be registered in [trust]. *)

val zone : t -> string
val cert : t -> Cert.t

val register : t -> now:int -> name:string -> cert:Cert.t ->
  ?ipv4:Apna_net.Addr.hid -> receive_only:bool -> unit -> (unit, Error.t) result
(** Direct (operator-side) registration; validates the published cert. *)

val lookup : t -> string -> Record.t option

val handle : t -> now:int -> Msgs.t -> (Msgs.t, Error.t) result
(** Processes a [Dns_query] or [Dns_register] message. *)

val record_count : t -> int

(** Host-side query/registration helpers. *)
module Client : sig
  val make_query :
    rng:Apna_crypto.Drbg.t -> corr:int64 -> client_cert:Cert.t ->
    client_keys:Keys.ephid_keys -> dns_cert:Cert.t -> name:string ->
    (Msgs.t, Error.t) result
  (** [corr] is the requester-chosen correlation id, echoed in the reply. *)

  val read_reply :
    client_keys:Keys.ephid_keys -> client_cert:Cert.t -> dns_cert:Cert.t ->
    Msgs.t -> (Record.t option, Error.t) result
  (** [Ok None] is NXDOMAIN. Zone-signature verification is the caller's
      job ({!Record.verify}) since it needs the trust store. *)

  val make_register :
    rng:Apna_crypto.Drbg.t -> corr:int64 -> client_cert:Cert.t ->
    client_keys:Keys.ephid_keys -> dns_cert:Cert.t -> name:string ->
    publish:Cert.t -> ?ipv4:Apna_net.Addr.hid -> receive_only:bool -> unit ->
    (Msgs.t, Error.t) result
end
