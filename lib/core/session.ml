open Apna_crypto

type t = {
  conn_id : int64;
  initiator : bool;
  mutable local_cert : Cert.t;
  mutable local_keys : Keys.ephid_keys;
  mutable remote_cert : Cert.t;
  mutable key : Aead.key;
  mutable send_seq : int64;
  mutable replay : Replay_window.t;
  window : int;
  mutable established : bool;
  (* One-deep grace window: frames sealed under the key that preceded the
     last rekey still open while both ends converge on the new key. *)
  mutable prev : (Aead.key * Replay_window.t) option;
}

let conn_id t = t.conn_id
let remote_cert t = t.remote_cert
let local_cert t = t.local_cert
let established t = t.established

(* kEaEb: ECDH over the EphID-bound X25519 keys, expanded with an
   order-independent transcript of the two EphIDs so both ends derive the
   same key. *)
let derive_key ~(local_keys : Keys.ephid_keys) ~(local_cert : Cert.t)
    ~(remote_cert : Cert.t) =
  match
    X25519.shared_secret ~secret:local_keys.kx_secret ~peer:remote_cert.kx_pub
  with
  | Error e -> Error (Error.Crypto e)
  | Ok shared ->
      let a = Ephid.to_bytes local_cert.ephid
      and b = Ephid.to_bytes remote_cert.ephid in
      let lo, hi = if String.compare a b <= 0 then (a, b) else (b, a) in
      let info = "apna:session:v1" ^ lo ^ hi in
      Ok (Aead.of_secret (Hkdf.derive ~info ~len:32 shared))

let create ~conn_id ~initiator ~local_cert ~local_keys ~remote_cert
    ?(window = 64) ?(await_accept = false) () =
  match derive_key ~local_keys ~local_cert ~remote_cert with
  | Error e -> Error e
  | Ok key ->
      Ok
        {
          conn_id;
          initiator;
          local_cert;
          local_keys;
          remote_cert;
          key;
          send_seq = 0L;
          replay = Replay_window.create ~size:window ();
          window;
          established = not await_accept;
          prev = None;
        }

let rekey t ~remote_cert =
  match derive_key ~local_keys:t.local_keys ~local_cert:t.local_cert ~remote_cert with
  | Error e -> Error e
  | Ok key ->
      t.prev <- Some (t.key, t.replay);
      t.remote_cert <- remote_cert;
      t.key <- key;
      t.send_seq <- 0L;
      t.replay <- Replay_window.create ~size:t.window ();
      t.established <- true;
      Ok ()

let rekey_local t ~local_cert ~local_keys =
  match derive_key ~local_keys ~local_cert ~remote_cert:t.remote_cert with
  | Error e -> Error e
  | Ok key ->
      t.prev <- Some (t.key, t.replay);
      t.local_cert <- local_cert;
      t.local_keys <- local_keys;
      t.key <- key;
      t.send_seq <- 0L;
      t.replay <- Replay_window.create ~size:t.window ();
      Ok ()

let nonce ~conn_id ~dir seq =
  (* conn id (8 B) ‖ direction bit in the top byte ‖ low 56 bits of seq:
     unique per (key, direction, sequence number). *)
  let b = Bytes.make Aead.nonce_size '\000' in
  Bytes.set_int64_be b 0 conn_id;
  Bytes.set_int64_be b 8
    (Int64.logor (Int64.shift_left (if dir then 1L else 0L) 56) seq);
  Bytes.unsafe_to_string b

let seal t data =
  let seq = t.send_seq in
  t.send_seq <- Int64.add seq 1L;
  let n = nonce ~conn_id:t.conn_id ~dir:t.initiator seq in
  (seq, Aead.seal ~key:t.key ~nonce:n data)

let open_sealed t ~seq ~sealed =
  let n = nonce ~conn_id:t.conn_id ~dir:(not t.initiator) seq in
  let checked replay data =
    (* Authenticate first, then replay-check: only genuine packets may
       advance the window (§VIII-D). *)
    if Replay_window.check_and_update replay seq then Ok data
    else Error (Error.Rejected "replayed or stale sequence number")
  in
  match Aead.open_ ~key:t.key ~nonce:n sealed with
  | Ok data -> checked t.replay data
  | Error e -> (
      (* Grace window: a frame sealed just before a rekey may still be in
         flight — try the previous key with its own replay window. *)
      match t.prev with
      | None -> Error (Error.Crypto e)
      | Some (key, replay) -> (
          match Aead.open_ ~key ~nonce:n sealed with
          | Ok data -> checked replay data
          | Error _ -> Error (Error.Crypto e)))

module Frame = struct
  type f =
    | Init of { conn_id : int64; cert : Cert.t; seq : int64; sealed : string }
    | Accept of { conn_id : int64; cert : Cert.t; seq : int64; sealed : string }
    | Data of { conn_id : int64; seq : int64; sealed : string }
    | Fin of { conn_id : int64; seq : int64; sealed : string }
    | Rekey of { conn_id : int64; cert : Cert.t; seq : int64; sealed : string }
    | Rekey_ack of { conn_id : int64; seq : int64; sealed : string }

  let to_bytes f =
    let w = Apna_util.Rw.Writer.create ~capacity:64 () in
    let open Apna_util.Rw.Writer in
    (match f with
    | Init { conn_id; cert; seq; sealed } ->
        u8 w 0;
        u64 w conn_id;
        bytes w (Cert.to_bytes cert);
        u64 w seq;
        bytes w sealed
    | Accept { conn_id; cert; seq; sealed } ->
        u8 w 1;
        u64 w conn_id;
        bytes w (Cert.to_bytes cert);
        u64 w seq;
        bytes w sealed
    | Data { conn_id; seq; sealed } ->
        u8 w 2;
        u64 w conn_id;
        u64 w seq;
        bytes w sealed
    | Fin { conn_id; seq; sealed } ->
        u8 w 3;
        u64 w conn_id;
        u64 w seq;
        bytes w sealed
    | Rekey { conn_id; cert; seq; sealed } ->
        u8 w 4;
        u64 w conn_id;
        bytes w (Cert.to_bytes cert);
        u64 w seq;
        bytes w sealed
    | Rekey_ack { conn_id; seq; sealed } ->
        u8 w 5;
        u64 w conn_id;
        u64 w seq;
        bytes w sealed);
    contents w

  let of_bytes s =
    let open Apna_util.Rw in
    let r = Reader.of_string s in
    let with_cert k =
      let* conn_id = Reader.u64 r in
      let* cert_bytes = Reader.bytes r Cert.size in
      let* cert =
        Result.map_error Error.to_string (Cert.of_bytes cert_bytes)
      in
      let* seq = Reader.u64 r in
      Ok (k ~conn_id ~cert ~seq ~sealed:(Reader.rest r))
    in
    let parse =
      let* kind = Reader.u8 r in
      match kind with
      | 0 -> with_cert (fun ~conn_id ~cert ~seq ~sealed -> Init { conn_id; cert; seq; sealed })
      | 1 -> with_cert (fun ~conn_id ~cert ~seq ~sealed -> Accept { conn_id; cert; seq; sealed })
      | 2 ->
          let* conn_id = Reader.u64 r in
          let* seq = Reader.u64 r in
          Ok (Data { conn_id; seq; sealed = Reader.rest r })
      | 3 ->
          let* conn_id = Reader.u64 r in
          let* seq = Reader.u64 r in
          Ok (Fin { conn_id; seq; sealed = Reader.rest r })
      | 4 -> with_cert (fun ~conn_id ~cert ~seq ~sealed -> Rekey { conn_id; cert; seq; sealed })
      | 5 ->
          let* conn_id = Reader.u64 r in
          let* seq = Reader.u64 r in
          Ok (Rekey_ack { conn_id; seq; sealed = Reader.rest r })
      | n -> Error (Printf.sprintf "unknown frame type %d" n)
    in
    Result.map_error (fun e -> Error.Malformed ("frame: " ^ e)) parse
end
