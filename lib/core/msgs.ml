open Apna_util.Rw

type t =
  | Ephid_request of { corr : int64; nonce : string; sealed : string }
  | Ephid_reply of { corr : int64; nonce : string; sealed : string }
  | Shutoff_request of { packet : string; signature : string; cert : string }
  | Dns_query of { corr : int64; client_cert : string; nonce : string; sealed : string }
  | Dns_reply of { corr : int64; nonce : string; sealed : string }
  | Dns_register of {
      corr : int64;
      client_cert : string;
      nonce : string;
      sealed : string;
    }
  | Revocation_notice of { ephid : string }
  | Ephid_release of { nonce : string; sealed : string }
  (* Batched issuance (one request, N grants): same envelope as the single
     forms — the sealed body carries the batch. *)
  | Ephid_batch_request of { corr : int64; nonce : string; sealed : string }
  | Ephid_batch_reply of { corr : int64; nonce : string; sealed : string }

let nonce_size = 16

let tag = function
  | Ephid_request _ -> 0
  | Ephid_reply _ -> 1
  | Shutoff_request _ -> 2
  | Dns_query _ -> 3
  | Dns_reply _ -> 4
  | Dns_register _ -> 5
  | Revocation_notice _ -> 6
  | Ephid_release _ -> 7
  | Ephid_batch_request _ -> 8
  | Ephid_batch_reply _ -> 9

let corr = function
  | Ephid_request { corr; _ }
  | Ephid_reply { corr; _ }
  | Dns_query { corr; _ }
  | Dns_reply { corr; _ }
  | Dns_register { corr; _ }
  | Ephid_batch_request { corr; _ }
  | Ephid_batch_reply { corr; _ } ->
      Some corr
  | Shutoff_request _ | Revocation_notice _ | Ephid_release _ -> None

let write_var w s =
  Writer.u16 w (String.length s);
  Writer.bytes w s

let read_var r =
  let* len = Reader.u16 r in
  Reader.bytes r len

let to_bytes t =
  let w = Writer.create () in
  Writer.u8 w (tag t);
  (match t with
  | Ephid_request { corr; nonce; sealed }
  | Ephid_reply { corr; nonce; sealed }
  | Dns_reply { corr; nonce; sealed }
  | Ephid_batch_request { corr; nonce; sealed }
  | Ephid_batch_reply { corr; nonce; sealed } ->
      Writer.u64 w corr;
      Writer.bytes w nonce;
      write_var w sealed
  | Ephid_release { nonce; sealed } ->
      Writer.bytes w nonce;
      write_var w sealed
  | Shutoff_request { packet; signature; cert } ->
      write_var w packet;
      write_var w signature;
      write_var w cert
  | Dns_query { corr; client_cert; nonce; sealed }
  | Dns_register { corr; client_cert; nonce; sealed } ->
      Writer.u64 w corr;
      write_var w client_cert;
      Writer.bytes w nonce;
      write_var w sealed
  | Revocation_notice { ephid } -> Writer.bytes w ephid);
  Writer.contents w

let of_bytes s =
  let r = Reader.of_string s in
  let parse =
    let* kind = Reader.u8 r in
    let* msg =
      match kind with
      | 0 | 1 | 4 | 8 | 9 ->
          let* corr = Reader.u64 r in
          let* nonce = Reader.bytes r nonce_size in
          let* sealed = read_var r in
          Ok
            (match kind with
            | 0 -> Ephid_request { corr; nonce; sealed }
            | 1 -> Ephid_reply { corr; nonce; sealed }
            | 4 -> Dns_reply { corr; nonce; sealed }
            | 8 -> Ephid_batch_request { corr; nonce; sealed }
            | _ -> Ephid_batch_reply { corr; nonce; sealed })
      | 7 ->
          let* nonce = Reader.bytes r nonce_size in
          let* sealed = read_var r in
          Ok (Ephid_release { nonce; sealed })
      | 2 ->
          let* packet = read_var r in
          let* signature = read_var r in
          let* cert = read_var r in
          Ok (Shutoff_request { packet; signature; cert })
      | 3 | 5 ->
          let* corr = Reader.u64 r in
          let* client_cert = read_var r in
          let* nonce = Reader.bytes r nonce_size in
          let* sealed = read_var r in
          Ok
            (if kind = 3 then Dns_query { corr; client_cert; nonce; sealed }
             else Dns_register { corr; client_cert; nonce; sealed })
      | 6 ->
          let* ephid = Reader.bytes r 16 in
          Ok (Revocation_notice { ephid })
      | n -> Error (Printf.sprintf "unknown control message tag %d" n)
    in
    let* () = Reader.expect_end r in
    Ok msg
  in
  Result.map_error (fun e -> Error.Malformed ("control: " ^ e)) parse

module Request_body = struct
  type t = { kx_pub : string; sig_pub : string; lifetime : Lifetime.t }

  let to_bytes t =
    if String.length t.kx_pub <> 32 || String.length t.sig_pub <> 32 then
      invalid_arg "Request_body: key size";
    let w = Writer.create ~capacity:65 () in
    Writer.bytes w t.kx_pub;
    Writer.bytes w t.sig_pub;
    Writer.u8 w (Lifetime.to_int t.lifetime);
    Writer.contents w

  let of_bytes s =
    let r = Reader.of_string s in
    let parse =
      let* kx_pub = Reader.bytes r 32 in
      let* sig_pub = Reader.bytes r 32 in
      let* lifetime_int = Reader.u8 r in
      let* lifetime = Lifetime.of_int lifetime_int in
      let* () = Reader.expect_end r in
      Ok { kx_pub; sig_pub; lifetime }
    in
    Result.map_error (fun e -> Error.Malformed ("ephid request: " ^ e)) parse
end

(* Sealed body of an [Ephid_batch_request]: one lifetime class and up to
   [max_batch] per-EphID key pairs. One round trip and one kHA seal/open
   then cover N grants — the amortization the prefetcher relies on. *)
module Batch_request_body = struct
  type item = { kx_pub : string; sig_pub : string }
  type t = { items : item list; lifetime : Lifetime.t }

  let max_batch = 64

  let to_bytes t =
    let n = List.length t.items in
    if n = 0 || n > max_batch then invalid_arg "Batch_request_body: count";
    List.iter
      (fun i ->
        if String.length i.kx_pub <> 32 || String.length i.sig_pub <> 32 then
          invalid_arg "Batch_request_body: key size")
      t.items;
    let w = Writer.create ~capacity:(2 + (64 * n)) () in
    Writer.u8 w n;
    Writer.u8 w (Lifetime.to_int t.lifetime);
    List.iter
      (fun i ->
        Writer.bytes w i.kx_pub;
        Writer.bytes w i.sig_pub)
      t.items;
    Writer.contents w

  let of_bytes s =
    let r = Reader.of_string s in
    let parse =
      let* n = Reader.u8 r in
      let* () =
        if n = 0 || n > max_batch then Error "batch count out of range" else Ok ()
      in
      let* lifetime_int = Reader.u8 r in
      let* lifetime = Lifetime.of_int lifetime_int in
      let rec items acc = function
        | 0 -> Ok (List.rev acc)
        | k ->
            let* kx_pub = Reader.bytes r 32 in
            let* sig_pub = Reader.bytes r 32 in
            items ({ kx_pub; sig_pub } :: acc) (k - 1)
      in
      let* items = items [] n in
      let* () = Reader.expect_end r in
      Ok { items; lifetime }
    in
    Result.map_error (fun e -> Error.Malformed ("ephid batch request: " ^ e)) parse
end

(* Sealed body of an [Ephid_batch_reply]: the certificates, in request
   order, as opaque length-prefixed byte strings (the client runs
   [Cert.of_bytes] on each). *)
module Batch_reply_body = struct
  type t = string list

  let to_bytes certs =
    let n = List.length certs in
    if n = 0 || n > Batch_request_body.max_batch then
      invalid_arg "Batch_reply_body: count";
    let w = Writer.create () in
    Writer.u8 w n;
    List.iter (fun c -> write_var w c) certs;
    Writer.contents w

  let of_bytes s =
    let r = Reader.of_string s in
    let parse =
      let* n = Reader.u8 r in
      let* () =
        if n = 0 || n > Batch_request_body.max_batch then
          Error "batch count out of range"
        else Ok ()
      in
      let rec certs acc = function
        | 0 -> Ok (List.rev acc)
        | k ->
            let* c = read_var r in
            certs (c :: acc) (k - 1)
      in
      let* certs = certs [] n in
      let* () = Reader.expect_end r in
      Ok certs
    in
    Result.map_error (fun e -> Error.Malformed ("ephid batch reply: " ^ e)) parse
end
