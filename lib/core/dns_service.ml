open Apna_crypto

module Record = struct
  type t = {
    name : string;
    cert : Cert.t;
    ipv4 : Apna_net.Addr.hid option;
    receive_only : bool;
    zone : string;
    signature : string;
  }

  let write_var w s =
    Apna_util.Rw.Writer.u16 w (String.length s);
    Apna_util.Rw.Writer.bytes w s

  let body_bytes t =
    let w = Apna_util.Rw.Writer.create () in
    write_var w t.name;
    Apna_util.Rw.Writer.bytes w (Cert.to_bytes t.cert);
    (match t.ipv4 with
    | None -> Apna_util.Rw.Writer.u8 w 0
    | Some hid ->
        Apna_util.Rw.Writer.u8 w 1;
        Apna_util.Rw.Writer.bytes w (Apna_net.Addr.hid_to_bytes hid));
    Apna_util.Rw.Writer.u8 w (if t.receive_only then 1 else 0);
    write_var w t.zone;
    Apna_util.Rw.Writer.contents w

  let to_bytes t =
    let w = Apna_util.Rw.Writer.create () in
    Apna_util.Rw.Writer.bytes w (body_bytes t);
    Apna_util.Rw.Writer.bytes w t.signature;
    Apna_util.Rw.Writer.contents w

  let of_bytes s =
    let open Apna_util.Rw in
    let r = Reader.of_string s in
    let read_var r =
      let* len = Reader.u16 r in
      Reader.bytes r len
    in
    let parse =
      let* name = read_var r in
      let* cert_bytes = Reader.bytes r Cert.size in
      let* cert = Result.map_error Error.to_string (Cert.of_bytes cert_bytes) in
      let* has_ipv4 = Reader.u8 r in
      let* ipv4 =
        if has_ipv4 = 1 then
          let* b = Reader.bytes r 4 in
          let* hid = Apna_net.Addr.hid_of_bytes b in
          Ok (Some hid)
        else Ok None
      in
      let* ro = Reader.u8 r in
      let* zone = read_var r in
      let* signature = Reader.bytes r 64 in
      let* () = Reader.expect_end r in
      Ok { name; cert; ipv4; receive_only = ro = 1; zone; signature }
    in
    Result.map_error (fun e -> Error.Malformed ("dns record: " ^ e)) parse

  let verify ~zone_pub ~now t =
    if t.cert.expiry < now then Error (Error.Expired "DNS record certificate")
    else if Ed25519.verify ~pub:zone_pub ~msg:(body_bytes t) ~signature:t.signature
    then Ok ()
    else Error (Error.Bad_signature "DNS record")
end

type t = {
  rng : Drbg.t;
  trust : Trust.t;
  zone : string;
  zone_key : Ed25519.keypair;
  cert : Cert.t;
  keys : Keys.ephid_keys;
  table : (string, Record.t) Hashtbl.t;
}

let create ~rng ~trust ~zone ~zone_key ~cert ~keys () =
  { rng; trust; zone; zone_key; cert; keys; table = Hashtbl.create 16 }

let zone t = t.zone
let cert t = t.cert
let record_count t = Hashtbl.length t.table
let lookup t name = Hashtbl.find_opt t.table name

let register t ~now ~name ~cert ?ipv4 ~receive_only () =
  match Trust.verify_cert t.trust ~now cert with
  | Error e -> Error e
  | Ok () ->
      let unsigned =
        Record.{ name; cert; ipv4; receive_only; zone = t.zone; signature = "" }
      in
      let signature = Ed25519.sign t.zone_key (Record.body_bytes unsigned) in
      Hashtbl.replace t.table name { unsigned with signature };
      Ok ()

(* Query confidentiality: a one-shot key from ECDH between the client's
   EphID key and the DNS service's EphID key, bound to both EphIDs. *)
let exchange_key ~secret ~peer_pub ~client_ephid ~dns_ephid =
  match X25519.shared_secret ~secret ~peer:peer_pub with
  | Error e -> Error (Error.Crypto e)
  | Ok shared ->
      let info =
        "apna:dns:v1" ^ Ephid.to_bytes client_ephid ^ Ephid.to_bytes dns_ephid
      in
      Ok (Aead.of_secret (Hkdf.derive ~info ~len:32 shared))

let service_key t ~(client_cert : Cert.t) =
  exchange_key ~secret:t.keys.kx_secret ~peer_pub:client_cert.kx_pub
    ~client_ephid:client_cert.ephid ~dns_ephid:t.cert.ephid

let handle t ~now msg =
  let open_sealed ~client_cert ~nonce ~sealed =
    match Cert.of_bytes client_cert with
    | Error e -> Error e
    | Ok client_cert -> begin
        match Trust.verify_cert t.trust ~now client_cert with
        | Error e -> Error e
        | Ok () -> begin
            match service_key t ~client_cert with
            | Error e -> Error e
            | Ok key -> begin
                match Aead.open_ ~key ~nonce sealed with
                | Error e -> Error (Error.Crypto e)
                | Ok plain -> Ok (client_cert, key, plain)
              end
          end
      end
  in
  (* The requester's correlation id is echoed so the host can pair the
     reply even after loss or reordering. *)
  let reply ~corr key payload =
    let nonce = Drbg.generate t.rng Aead.nonce_size in
    Msgs.Dns_reply { corr; nonce; sealed = Aead.seal ~key ~nonce payload }
  in
  match msg with
  | Msgs.Dns_query { corr; client_cert; nonce; sealed } -> begin
      match open_sealed ~client_cert ~nonce ~sealed with
      | Error e -> Error e
      | Ok (_cert, key, name) ->
          let payload =
            match lookup t name with
            | Some record -> Record.to_bytes record
            | None -> ""
          in
          Ok (reply ~corr key payload)
    end
  | Msgs.Dns_register { corr; client_cert; nonce; sealed } -> begin
      match open_sealed ~client_cert ~nonce ~sealed with
      | Error e -> Error e
      | Ok (_cert, key, body) -> begin
          let open Apna_util.Rw in
          let r = Reader.of_string body in
          let parse =
            let* name_len = Reader.u16 r in
            let* name = Reader.bytes r name_len in
            let* publish_bytes = Reader.bytes r Cert.size in
            let* has_ipv4 = Reader.u8 r in
            let* ipv4 =
              if has_ipv4 = 1 then
                let* b = Reader.bytes r 4 in
                let* hid = Apna_net.Addr.hid_of_bytes b in
                Ok (Some hid)
              else Ok None
            in
            let* ro = Reader.u8 r in
            Ok (name, publish_bytes, ipv4, ro = 1)
          in
          match parse with
          | Error e -> Error (Error.Malformed ("dns register: " ^ e))
          | Ok (name, publish_bytes, ipv4, receive_only) -> begin
              match Cert.of_bytes publish_bytes with
              | Error e -> Error e
              | Ok publish -> begin
                  match register t ~now ~name ~cert:publish ?ipv4 ~receive_only () with
                  | Error e -> Error e
                  | Ok () -> Ok (reply ~corr key "ok")
                end
            end
        end
    end
  | _ -> Error (Error.Malformed "DNS: unexpected message")

module Client = struct
  let client_key ~(client_keys : Keys.ephid_keys) ~(client_cert : Cert.t)
      ~(dns_cert : Cert.t) =
    exchange_key ~secret:client_keys.kx_secret ~peer_pub:dns_cert.kx_pub
      ~client_ephid:client_cert.ephid ~dns_ephid:dns_cert.ephid

  let make_query ~rng ~corr ~client_cert ~client_keys ~dns_cert ~name =
    match client_key ~client_keys ~client_cert ~dns_cert with
    | Error e -> Error e
    | Ok key ->
        let nonce = Drbg.generate rng Aead.nonce_size in
        Ok
          (Msgs.Dns_query
             {
               corr;
               client_cert = Cert.to_bytes client_cert;
               nonce;
               sealed = Aead.seal ~key ~nonce name;
             })

  let read_reply ~client_keys ~client_cert ~dns_cert msg =
    match msg with
    | Msgs.Dns_reply { nonce; sealed; _ } -> begin
        match client_key ~client_keys ~client_cert ~dns_cert with
        | Error e -> Error e
        | Ok key -> begin
            match Aead.open_ ~key ~nonce sealed with
            | Error e -> Error (Error.Crypto e)
            | Ok "" -> Ok None
            | Ok bytes -> Result.map Option.some (Record.of_bytes bytes)
          end
      end
    | _ -> Error (Error.Malformed "expected a DNS reply")

  let make_register ~rng ~corr ~client_cert ~client_keys ~dns_cert ~name
      ~publish ?ipv4 ~receive_only () =
    match client_key ~client_keys ~client_cert ~dns_cert with
    | Error e -> Error e
    | Ok key ->
        let w = Apna_util.Rw.Writer.create () in
        Apna_util.Rw.Writer.u16 w (String.length name);
        Apna_util.Rw.Writer.bytes w name;
        Apna_util.Rw.Writer.bytes w (Cert.to_bytes publish);
        (match ipv4 with
        | None -> Apna_util.Rw.Writer.u8 w 0
        | Some hid ->
            Apna_util.Rw.Writer.u8 w 1;
            Apna_util.Rw.Writer.bytes w (Apna_net.Addr.hid_to_bytes hid));
        Apna_util.Rw.Writer.u8 w (if receive_only then 1 else 0);
        let nonce = Drbg.generate rng Aead.nonce_size in
        Ok
          (Msgs.Dns_register
             {
               corr;
               client_cert = Cert.to_bytes client_cert;
               nonce;
               sealed = Aead.seal ~key ~nonce (Apna_util.Rw.Writer.contents w);
             })
end
