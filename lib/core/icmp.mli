(** ICMP over APNA (paper §VIII-B).

    Because the source EphID in every packet is a working return address,
    network feedback keeps working under host privacy: any entity can send
    an ICMP message to a source it observed, the sender of the ICMP message
    stays anonymous to everyone but its own AS, and the message is
    attributable through the usual per-packet MAC. Payloads of ICMP
    messages are {e not} encrypted (the paper leaves that to future work). *)

type unreachable_reason =
  | No_route
  | Ephid_expired
  | Ephid_revoked
  | Host_unknown

type t =
  | Echo_request of { ident : int; data : string }
  | Echo_reply of { ident : int; data : string }
  | Unreachable of { reason : unreachable_reason; quoted : string }
      (** [quoted] echoes the offending packet's first bytes, like
          classical ICMP quoting. *)
  | Frag_needed of { mtu : int; quoted : string }
      (** Packet-too-big feedback for path-MTU discovery (§II-C); [mtu] is
          the largest APNA packet the offending link carries. *)
  | Encrypted of { sealed : Ecies.sealed }
      (** An ICMP error sealed to the offending packet's source EphID —
          the §VIII-B future work: the sender found the source's
          certificate in its {!Cert_cache} and encrypted the payload, so
          not even network feedback leaks what went wrong. *)

val to_bytes : t -> string
val of_bytes : string -> (t, Error.t) result
val reason_to_string : unreachable_reason -> string

val reason_label : unreachable_reason -> string
(** Kebab-case form for metric labels,
    [apna_host_icmp_unreachable_total{reason=...}]. *)

val pp : Format.formatter -> t -> unit
