open Apna_crypto
module M = Apna_obs.Metrics

let m_built =
  M.Counter.register M.default "apna_shutoff_requests_built_total"
    ~help:"Shutoff requests constructed by victims"

let m_parsed =
  M.Counter.register M.default "apna_shutoff_requests_parsed_total"
    ~help:"Shutoff requests successfully parsed by an accountability agent"

let m_rejected =
  M.Counter.register M.default "apna_shutoff_parse_errors_total"
    ~help:"Malformed shutoff requests rejected at parse time"

let make_request ~packet ~(dst_cert : Cert.t) ~(dst_keys : Keys.ephid_keys) =
  if dst_cert.sig_pub <> Ed25519.public_key dst_keys.sig_keypair then
    invalid_arg "Shutoff.make_request: certificate/key mismatch";
  M.Counter.incr m_built;
  let packet_bytes = Apna_net.Packet.to_bytes packet in
  Msgs.Shutoff_request
    {
      packet = packet_bytes;
      signature = Ed25519.sign dst_keys.sig_keypair packet_bytes;
      cert = Cert.to_bytes dst_cert;
    }

type parsed = {
  packet : Apna_net.Packet.t;
  signature : string;
  cert : Cert.t;
}

let parse_request msg =
  let r =
    match msg with
    | Msgs.Shutoff_request { packet; signature; cert } -> begin
        match Apna_net.Packet.of_bytes packet with
        | Error e -> Error (Error.Malformed ("shutoff packet: " ^ e))
        | Ok pkt -> begin
            match Cert.of_bytes cert with
            | Error e -> Error e
            | Ok cert -> Ok { packet = pkt; signature; cert }
          end
      end
    | _ -> Error (Error.Malformed "expected a shutoff request")
  in
  (match r with
  | Ok _ -> M.Counter.incr m_parsed
  | Error _ -> M.Counter.incr m_rejected);
  r
