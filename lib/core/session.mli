(** End-to-end encrypted sessions (paper §IV-D1/2, §VII-A, §VII-C).

    Two hosts derive a session key from the X25519 keys bound to their
    EphIDs and encrypt every data packet with the CCA-secure AEAD. Each
    session has its own key, giving perfect forward secrecy: compromising
    long-term keys (AS signing keys, host keys) reveals nothing about
    recorded traffic, and compromising one EphID's key opens exactly the
    sessions keyed by that EphID.

    Wire framing (packet payload for proto [Data]):
    {v
      Init      : 0x00 ‖ conn_id(8) ‖ cert(168) ‖ seq(8) ‖ sealed   — may carry 0-RTT data
      Accept    : 0x01 ‖ conn_id(8) ‖ cert(168) ‖ seq(8) ‖ sealed   — server's serving cert (§VII-A)
      Data      : 0x02 ‖ conn_id(8) ‖ seq(8) ‖ sealed
      Fin       : 0x03 ‖ conn_id(8) ‖ seq(8) ‖ sealed   — authenticated close
      Rekey     : 0x04 ‖ conn_id(8) ‖ cert(168) ‖ seq(8) ‖ sealed   — mid-session EphID migration
      Rekey_ack : 0x05 ‖ conn_id(8) ‖ seq(8) ‖ sealed   — sealed under the post-migration key
    v}

    The connection id demultiplexes sessions independently of the source
    EphID, which is what makes the per-packet EphID granularity workable —
    and what lets an established session survive the expiry of the EphID
    that started it: a [Rekey] frame carries the sender's fresh certificate,
    authenticated under the current session key, and both ends re-derive. *)

type t

val conn_id : t -> int64
val remote_cert : t -> Cert.t
val local_cert : t -> Cert.t
val established : t -> bool
(** False only for a client still waiting for an [Accept] from a
    receive-only server EphID. *)

val create :
  conn_id:int64 -> initiator:bool -> local_cert:Cert.t ->
  local_keys:Keys.ephid_keys -> remote_cert:Cert.t -> ?window:int ->
  ?await_accept:bool -> unit -> (t, Error.t) result
(** Derives the session key from ECDH(local EphID key, remote EphID key).
    [initiator] fixes the nonce direction bit so the two directions of one
    session never reuse a nonce. [await_accept] marks a client session
    towards a receive-only EphID (§VII-A). *)

val rekey : t -> remote_cert:Cert.t -> (unit, Error.t) result
(** Switch to a new certificate from the peer — the server's serving
    certificate (§VII-A) or a mid-session [Rekey] — and re-derive the key;
    marks the session established and resets sequence state. The key being
    replaced is retained as a one-deep grace window so frames sealed under
    it and still in flight continue to open. *)

val rekey_local : t -> local_cert:Cert.t -> local_keys:Keys.ephid_keys ->
  (unit, Error.t) result
(** Local side of mid-session EphID migration: rebind the session to a
    fresh local certificate/key pair and re-derive the session key against
    the unchanged remote certificate. Resets sequence state and retains the
    replaced key as the grace window, exactly like {!rekey}. *)

val seal : t -> string -> int64 * string
(** [seal t data] is [(seq, sealed)] for the next outgoing frame. *)

val open_sealed : t -> seq:int64 -> sealed:string -> (string, Error.t) result
(** AEAD-opens an incoming frame and enforces the anti-replay window. *)

(** Frame codec. *)
module Frame : sig
  type f =
    | Init of { conn_id : int64; cert : Cert.t; seq : int64; sealed : string }
    | Accept of { conn_id : int64; cert : Cert.t; seq : int64; sealed : string }
    | Data of { conn_id : int64; seq : int64; sealed : string }
    | Fin of { conn_id : int64; seq : int64; sealed : string }
    | Rekey of { conn_id : int64; cert : Cert.t; seq : int64; sealed : string }
    | Rekey_ack of { conn_id : int64; seq : int64; sealed : string }

  val to_bytes : f -> string
  val of_bytes : string -> (f, Error.t) result
end
