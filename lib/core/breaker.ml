type state = Closed | Open | Half_open

type t = {
  threshold : int;
  cooldown_s : float;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_inflight : bool;
  mutable opens : int;
  mutable on_transition : state -> unit;
}

let create ?(threshold = 3) ?(cooldown_s = 10.0) () =
  {
    threshold = max 1 threshold;
    cooldown_s;
    state = Closed;
    consecutive_failures = 0;
    opened_at = neg_infinity;
    probe_inflight = false;
    opens = 0;
    on_transition = ignore;
  }

let state t = t.state
let opens t = t.opens
let consecutive_failures t = t.consecutive_failures
let on_transition t f = t.on_transition <- f

let state_label = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let state_to_float = function Closed -> 0.0 | Half_open -> 1.0 | Open -> 2.0

let transition t state =
  if t.state <> state then begin
    t.state <- state;
    if state = Open then t.opens <- t.opens + 1;
    t.on_transition state
  end

let acquire t ~now =
  match t.state with
  | Closed -> true
  | Open ->
      if now -. t.opened_at >= t.cooldown_s then begin
        (* Cooldown elapsed: let exactly one probe through. *)
        transition t Half_open;
        t.probe_inflight <- true;
        true
      end
      else false
  | Half_open ->
      if t.probe_inflight then false
      else begin
        t.probe_inflight <- true;
        true
      end

let success t =
  t.probe_inflight <- false;
  t.consecutive_failures <- 0;
  transition t Closed

let failure t ~now =
  t.consecutive_failures <- t.consecutive_failures + 1;
  t.probe_inflight <- false;
  match t.state with
  | Half_open ->
      t.opened_at <- now;
      transition t Open
  | Closed when t.consecutive_failures >= t.threshold ->
      t.opened_at <- now;
      transition t Open
  | Closed | Open -> ()
