(** Per-packet authentication (paper §IV-D2).

    Every packet a host sends carries an 8-byte MAC computed with the
    kHA authentication key shared between host and AS. This is the link
    between a packet and its sender: border routers verify it on egress,
    and the accountability agent re-verifies it when judging shutoff
    evidence. *)

val mac : auth_key:string -> Apna_net.Packet.t -> string
(** The 8-byte tag over the packet with its MAC field zeroed. *)

val seal : auth_key:string -> Apna_net.Packet.t -> Apna_net.Packet.t
(** Returns the packet with its header MAC filled in. *)

val verify : auth_key:string -> Apna_net.Packet.t -> bool

type verifier
(** An auth key prepared for repeated verification: the HMAC pads are
    expanded once and the digest buffer is reused, so each {!verify_in}
    is allocation-free. A verifier holds mutable state — one MAC in
    flight per value. *)

val make_verifier : auth_key:string -> verifier

val verify_in : scratch:Bytes.t -> verifier -> Apna_net.Packet.t -> bool
(** [verify_in ~scratch v pkt] is {!verify} with the MAC input assembled
    in [scratch] — the border router passes an arena slot. Falls back to
    the allocating path when [scratch] is smaller than the packet's wire
    size. *)
