(** Protocol-level failures.

    Every expected failure — packets from the network, stale credentials,
    forged tokens — is an ordinary value; exceptions are reserved for
    programming errors. *)

type t =
  | Auth_failed  (** host authentication at the RS failed *)
  | Expired of string  (** an EphID or certificate has expired *)
  | Revoked of string  (** EphID or HID present in a revocation list *)
  | Unknown_host  (** HID not in [host_info] *)
  | Bad_mac  (** per-packet MAC verification failed *)
  | Bad_signature of string  (** certificate or shutoff signature invalid *)
  | Malformed of string  (** wire-format parse failure *)
  | No_route  (** no inter-domain path to the destination AID *)
  | Crypto of string  (** AEAD open failure and similar *)
  | Rejected of string  (** policy refusal (quota, unauthorized requester) *)
  | Timeout of string
      (** a round-trip request exhausted its retransmission budget *)
  | Budget_exhausted of string
      (** a privacy-broker request exceeded the requester's budget *)

val to_string : t -> string

val kind_label : t -> string
(** Short stable label of the error kind, for counters and metrics. *)

val to_wire : t -> int * string
(** Stable (tag, payload) pair for wire encodings (broker refusals). *)

val of_wire : int -> string -> (t, string) result
(** Inverse of {!to_wire}; total — an unknown tag is [Error _]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
