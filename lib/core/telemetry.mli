(** Engine-driven telemetry: wires the {!Apna_obs.Timeseries} sampler,
    {!Apna_obs.Derive} indicators and the {!Apna_obs.Alert} engine onto a
    running {!Network}.

    {!attach} enables the default metrics registry, builds a fresh
    sampler + alert engine, and arms a recurring engine-scheduled tick.
    Each tick (simulated time, fully deterministic):

    + refreshes pull-model per-AS gauges ([apna_revocation_list_size]),
    + snapshots every registry series into the ring buffers,
    + computes the [derived:*] indicators,
    + evaluates the alert rules.

    The tick self-reschedules only while the engine has other events
    queued, then takes a final snapshot and disarms — so
    [Network.run]'s run-to-quiescence loop still terminates. Drive
    multi-phase workloads with {!kick} before each phase.

    Nothing here runs unless [attach] was called: with observability
    disabled the hot paths keep their single load-and-branch cost. *)

type t

val attach :
  ?interval:float ->
  ?capacity:int ->
  ?rules:Apna_obs.Alert.rule list ->
  ?events:Apna_obs.Event.sink ->
  Network.t ->
  t
(** [interval] is the tick period in simulated seconds (default 0.25);
    [capacity] the per-series ring size; [rules] defaults to
    [Alert.default_rules ~interval ()]; [events] is the flight-recorder
    sink alert transitions are written to when it is enabled. *)

val tick_now : t -> unit
(** One immediate tick at the network's current time — for callers that
    pace sampling themselves (the trace-scale bench's checkpoints). *)

val kick : t -> unit
(** Re-arm the periodic tick if it disarmed at quiescence. *)

val stop : t -> unit
(** Permanently disarm. *)

val timeseries : t -> Apna_obs.Timeseries.t
val alerts : t -> Apna_obs.Alert.t
val interval : t -> float

val health : t -> Apna_obs.Health.report list

val export : t -> Apna_obs.Json.t
(** The [telemetry.json] document:
    [{"timeseries": {...}, "alerts": {...}, "health": [...]}]. *)

val dashboard : ?width:int -> t -> string
(** The [apnad top] frame: health table, non-inactive alerts, derived
    indicators with [width]-point sparklines. *)
