open Apna_crypto
open Apna_net
module M = Apna_obs.Metrics
module Span = Apna_obs.Span
module E = Apna_obs.Event

let m_rpc_retries =
  M.Counter.register M.default "apna_host_rpc_retries_total"
    ~help:"Control-plane request retransmissions"

let m_rpc_timeouts =
  M.Counter.register M.default "apna_host_rpc_timeouts_total"
    ~help:"Control-plane requests abandoned after exhausting retransmissions"

let m_rpc_orphans =
  M.Counter.register M.default "apna_host_rpc_orphan_replies_total"
    ~help:"Replies with no pending request (duplicates or late arrivals)"

let m_migrations =
  M.Counter.register M.default "apna_host_session_migrations_total"
    ~help:"Live sessions rebound onto a fresh source EphID (Rekey sent)"

let m_recoveries =
  M.Counter.register M.default "apna_host_session_recoveries_total"
    ~help:"ICMP-driven recoveries of a session whose EphID died mid-flight"

let m_brownout =
  M.Counter.register M.default "apna_host_brownout_sends_total"
    ~help:"Sends that fell back to a degraded EphID during an issuance brownout"

let m_stale_discards =
  M.Counter.register M.default "apna_host_stale_prefetch_discarded_total"
    ~help:"Prefetched EphIDs discarded at dequeue for staleness"

let m_breaker_opens =
  M.Counter.register M.default "apna_host_issuance_breaker_opens_total"
    ~help:"Issuance circuit breaker transitions to open"

let m_unreachable reason =
  M.Counter.register M.default "apna_host_icmp_unreachable_total"
    ~labels:[ ("reason", Icmp.reason_label reason) ]
    ~help:"ICMP unreachable notices received, by reason"

let m_replay_rejected =
  M.Counter.register M.default "apna_host_replay_rejected_total"
    ~help:"Sealed frames rejected by a session replay window (replayed or stale sequence number)"

(* Every sealed-frame open goes through here so replay-window rejections
   are counted — the raw signal behind the replay-flood alert rule. *)
let open_sealed_counted session ~seq ~sealed =
  match Session.open_sealed session ~seq ~sealed with
  | Error (Error.Rejected _) as e ->
      if M.enabled M.default then M.Counter.incr m_replay_rejected;
      e
  | r -> r

type attachment = {
  aid : Addr.aid;
  now : unit -> int;
  now_f : unit -> float;
  submit : Packet.t -> unit;
  schedule : (delay:float -> (unit -> unit) -> unit) option;
      (** Timer facility for retransmission/timeout; [None] (e.g. a bare
          test harness) disables timers and requests wait indefinitely. *)
  bootstrap_rpc : host_dh_pub:string -> (Registry.reply, Error.t) result;
  trust : Trust.t;
}

type endpoint = { cert : Cert.t; keys : Keys.ephid_keys; receive_only : bool }

type identity = {
  kha : Keys.host_as;
  ctrl_ephid : Ephid.t;
  ctrl_expiry : int;
  ms_cert : Cert.t;
  dns_cert : Cert.t option;
  aa_ephid : Ephid.t;
}

module I64_tbl = Hashtbl.Make (struct
  type t = int64

  let equal = Int64.equal
  let hash = Hashtbl.hash
end)

(* One in-flight round-trip request. Replies are matched by correlation id,
   never by arrival order, so loss/duplication/reordering cannot mis-pair a
   reply with another request's continuation. *)
type rpc = {
  what : string;
  resend : unit -> unit;
  on_reply : Msgs.t -> unit;
  on_timeout : unit -> unit;
  mutable attempts : int;
}

type t = {
  host_name : string;
  rng : Drbg.t;
  mutable gran : Granularity.t;
  mutable att : attachment option;
  mutable identity : identity option;
  (* Every live endpoint, keyed by raw EphID bytes: delivery looks the
     local endpoint up per packet and removal must not rebuild a list —
     both were O(#endpoints) when this was a list, quadratic over a
     host's lifetime. *)
  endpoints_by_ephid : (string, endpoint) Hashtbl.t;
  (* Entries examined by the last endpoint add/remove — the count-based
     sentinel the quadratic-cost regression tests read. *)
  mutable last_endpoint_op_cost : int;
  (* Reuse pools, keyed by Granularity.pool_key, with waiters queued while
     the pool's first issuance round trip is in flight. *)
  pools : (string, endpoint) Hashtbl.t;
  pool_waiters : (string, ((endpoint, Error.t) result -> unit) Queue.t) Hashtbl.t;
  (* Prefetched one-shot EphIDs for per-packet sources. *)
  prefetched : endpoint Queue.t;
  mutable prefetch_inflight : int;
  (* In-flight control-plane round trips (EphID issuance, DNS), keyed by
     correlation id. *)
  rpcs : rpc I64_tbl.t;
  mutable next_corr : int64;
  (* Initiator sessions awaiting the server's Accept, keyed by connection
     id (which doubles as the Init/Accept correlation id). *)
  accept_waits : rpc I64_tbl.t;
  (* Ping retransmission state, keyed by the echo ident. *)
  ping_rpcs : rpc I64_tbl.t;
  mutable rpc_retries : int;
  mutable rpc_timeouts : int;
  (* Receiver-side Init idempotency: serving-EphID issuance in flight for a
     connection, and the cached Accept to re-send verbatim on a
     retransmitted Init. *)
  init_in_progress : unit I64_tbl.t;
  accept_resend : (unit -> unit) I64_tbl.t;
  sessions_by_conn : Session.t I64_tbl.t;
  (* Local endpoint backing each connection, for shutoff signatures and
     queued 0.5-RTT data. *)
  local_by_conn : endpoint I64_tbl.t;
  queued_data : string Queue.t I64_tbl.t;
  (* Most recent raw data packet per connection: the evidence a victim
     presents in a shutoff request (Fig. 5). *)
  last_packet_by_conn : Packet.t I64_tbl.t;
  mutable data_handler : session:Session.t -> data:string -> unit;
  mutable received_rev : (int64 * string) list;
  (* Ring of the last [unreachable_cap] ICMP unreachable reasons, oldest
     first; forensics beyond the ring live in the labeled metric. *)
  unreachables_q : Icmp.unreachable_reason Queue.t;
  mutable mtu_hints_rev : int list;
  (* Shutoff notices from the AS: revoked EphID and, when the granularity
     policy allows it, the application behind it (§VIII-A). *)
  mutable revocation_notices_rev : (Ephid.t * string option) list;
  pending_pings : (int, float * (float -> unit)) Hashtbl.t;
  mutable next_ping_ident : int;
  mutable ephid_requests : int;
  mutable pkts_sent : int;
  (* Server policy: accept 0-RTT data arriving under a receive-only EphID's
     key? Refusing trades the first flight for protection of first packets
     should the receive-only key later be compromised (§VII-C). *)
  mutable accept_zero_rtt : bool;
  (* --- session survivability --- *)
  (* Lifetime class requested for session/pool/prefetch EphIDs, and how
     close to expiry (seconds) an endpoint counts as due for renewal. *)
  mutable ephid_lifetime : Lifetime.t;
  mutable renewal_margin : int;
  breaker : Breaker.t;
  (* Connections with a migration in flight (issuance or unacked Rekey);
     doubles as the per-conn guard against re-triggering. *)
  migrating : unit I64_tbl.t;
  (* Rekey retransmission until the peer's Rekey_ack, keyed by conn id. *)
  rekey_rpcs : rpc I64_tbl.t;
  (* Receiver-side Rekey idempotency: cached ack re-sent verbatim when a
     duplicate Rekey arrives. *)
  rekey_ack_resend : (unit -> unit) I64_tbl.t;
  (* One-slot stash of a frame that died on the peer's expired/revoked
     EphID, retransmitted once when the peer's Rekey lands. *)
  pending_retx : string I64_tbl.t;
  (* Last reactive recovery per connection (simulated time), bounding how
     often ambiguous ICMP feedback may trigger a migration. *)
  recovery_last : float I64_tbl.t;
  (* Raw EphID bytes named in a shutoff Revocation_notice: sessions bound
     to them must never auto-recover (the shutoff would be defeated). *)
  shutoff_inhibited : (string, unit) Hashtbl.t;
  mutable migrations : int;
  mutable recoveries : int;
  mutable brownout_sends : int;
  mutable stale_discards : int;
  mutable unreachable_total : int;
}

let unreachable_cap = 256

let create ~name ~rng ?(granularity = Granularity.Per_flow) () =
  let breaker = Breaker.create () in
  let breaker_gauge =
    M.Gauge.register M.default "apna_host_issuance_breaker_state"
      ~labels:[ ("host", name) ]
      ~help:"Issuance circuit breaker: 0 closed, 1 half-open, 2 open"
  in
  Breaker.on_transition breaker (fun state ->
      M.Gauge.set breaker_gauge (Breaker.state_to_float state);
      if state = Breaker.Open then M.Counter.incr m_breaker_opens;
      Logs.info (fun m ->
          m "%s: issuance breaker %s" name (Breaker.state_label state)));
  {
      host_name = name;
      rng;
      gran = granularity;
      att = None;
      identity = None;
      endpoints_by_ephid = Hashtbl.create 16;
      last_endpoint_op_cost = 0;
      pools = Hashtbl.create 4;
      pool_waiters = Hashtbl.create 4;
      prefetched = Queue.create ();
      prefetch_inflight = 0;
      rpcs = I64_tbl.create 8;
      next_corr = 0L;
      accept_waits = I64_tbl.create 8;
      ping_rpcs = I64_tbl.create 4;
      rpc_retries = 0;
      rpc_timeouts = 0;
      init_in_progress = I64_tbl.create 4;
      accept_resend = I64_tbl.create 4;
      sessions_by_conn = I64_tbl.create 8;
      local_by_conn = I64_tbl.create 8;
      queued_data = I64_tbl.create 8;
      last_packet_by_conn = I64_tbl.create 8;
      data_handler = (fun ~session:_ ~data:_ -> ());
      received_rev = [];
      unreachables_q = Queue.create ();
      mtu_hints_rev = [];
      revocation_notices_rev = [];
      pending_pings = Hashtbl.create 4;
      next_ping_ident = 1;
      ephid_requests = 0;
      pkts_sent = 0;
      accept_zero_rtt = true;
      ephid_lifetime = Lifetime.Medium;
      renewal_margin = 30;
      breaker;
      migrating = I64_tbl.create 4;
      rekey_rpcs = I64_tbl.create 4;
      rekey_ack_resend = I64_tbl.create 4;
      pending_retx = I64_tbl.create 4;
      recovery_last = I64_tbl.create 4;
      shutoff_inhibited = Hashtbl.create 4;
      migrations = 0;
      recoveries = 0;
      brownout_sends = 0;
      stale_discards = 0;
      unreachable_total = 0;
  }

(* Every successfully decrypted application payload is recorded, then the
   user handler (if any) runs. *)
let deliver_data t session data =
  t.received_rev <- (Session.conn_id session, data) :: t.received_rev;
  t.data_handler ~session ~data

let name t = t.host_name
let granularity t = t.gran
let set_granularity t g = t.gran <- g
let attach t att = t.att <- Some att
let attachment t = t.att
let is_bootstrapped t = Option.is_some t.identity
let ctrl_ephid t = Option.map (fun i -> i.ctrl_ephid) t.identity
let aa_ephid t = Option.map (fun i -> i.aa_ephid) t.identity
let ms_cert t = Option.map (fun i -> i.ms_cert) t.identity
let dns_cert t = Option.bind t.identity (fun i -> i.dns_cert)
let kha t = Option.map (fun i -> i.kha) t.identity
let endpoints t =
  Hashtbl.fold (fun _ ep acc -> ep :: acc) t.endpoints_by_ephid []

let last_endpoint_op_cost t = t.last_endpoint_op_cost

let add_endpoint t (ep : endpoint) =
  t.last_endpoint_op_cost <- 1;
  Hashtbl.replace t.endpoints_by_ephid (Ephid.to_bytes ep.cert.Cert.ephid) ep

let remove_endpoint t (ep : endpoint) =
  t.last_endpoint_op_cost <- 1;
  Hashtbl.remove t.endpoints_by_ephid (Ephid.to_bytes ep.cert.Cert.ephid)
let received t = List.rev t.received_rev
let unreachables t = List.of_seq (Queue.to_seq t.unreachables_q)
let unreachable_total t = t.unreachable_total
let mtu_hints t = List.rev t.mtu_hints_rev
let revocation_notices t = List.rev t.revocation_notices_rev
let on_data t f = t.data_handler <- f
let sessions t = I64_tbl.fold (fun _ s acc -> s :: acc) t.sessions_by_conn []
let last_packet t session = I64_tbl.find_opt t.last_packet_by_conn (Session.conn_id session)
let set_zero_rtt_policy t accept = t.accept_zero_rtt <- accept
let ephid_requests_sent t = t.ephid_requests
let packets_sent t = t.pkts_sent
let rpc_retries t = t.rpc_retries
let rpc_timeouts t = t.rpc_timeouts
let ephid_lifetime t = t.ephid_lifetime
let set_ephid_lifetime t lt = t.ephid_lifetime <- lt
let renewal_margin t = t.renewal_margin
let set_renewal_margin t s = t.renewal_margin <- max 0 s
let issuance_breaker t = t.breaker
let migrations t = t.migrations
let recoveries t = t.recoveries
let brownout_sends t = t.brownout_sends
let stale_prefetch_discards t = t.stale_discards

let note_brownout t =
  t.brownout_sends <- t.brownout_sends + 1;
  M.Counter.incr m_brownout

let pending_rpc_count t =
  I64_tbl.length t.rpcs + I64_tbl.length t.accept_waits
  + I64_tbl.length t.ping_rpcs + I64_tbl.length t.rekey_rpcs

let require_att t =
  match t.att with
  | Some att -> Ok att
  | None -> Error (Error.Rejected "host is not attached to an AS")

let require_identity t =
  match t.identity with
  | Some id -> Ok id
  | None -> Error (Error.Rejected "host is not bootstrapped")

let warn t what = function
  | Ok _ -> ()
  | Error e -> Logs.warn (fun m -> m "%s: %s: %a" t.host_name what Error.pp e)

(* ------------------------------------------------------------------ *)
(* Request/reply engine: per-request timeout, bounded retransmission with
   exponential backoff, Error.Timeout on exhaustion. *)

let rpc_timeout_s = 0.25
let rpc_max_attempts = 5
let rpc_backoff = 2.0
let fresh_corr t = t.next_corr <- Int64.add t.next_corr 1L; t.next_corr

let rpc_schedule t =
  match t.att with Some { schedule = Some f; _ } -> Some f | _ -> None

(* A settled rpc leaves its last timer armed; it finds no table entry and
   does nothing (the engine has no cancellation). *)
let rec arm_rpc t tbl key (rpc : rpc) =
  match rpc_schedule t with
  | None -> ()
  | Some sched ->
      let delay =
        rpc_timeout_s *. (rpc_backoff ** float_of_int (rpc.attempts - 1))
      in
      sched ~delay (fun () -> rpc_timer_fired t tbl key)

and rpc_timer_fired t tbl key =
  match I64_tbl.find_opt tbl key with
  | None -> ()
  | Some rpc ->
      if rpc.attempts >= rpc_max_attempts then begin
        I64_tbl.remove tbl key;
        t.rpc_timeouts <- t.rpc_timeouts + 1;
        M.Counter.incr m_rpc_timeouts;
        Logs.warn (fun m ->
            m "%s: %s: no reply after %d attempts" t.host_name rpc.what
              rpc.attempts);
        rpc.on_timeout ()
      end
      else begin
        rpc.attempts <- rpc.attempts + 1;
        t.rpc_retries <- t.rpc_retries + 1;
        M.Counter.incr m_rpc_retries;
        let span =
          Span.start_for Span.default
            ~id:(Printf.sprintf "rpc:%Ld" key)
            ~stage:"host.rpc.retransmit"
        in
        rpc.resend ();
        Span.finish Span.default span;
        arm_rpc t tbl key rpc
      end

let start_rpc t tbl key ~what ?(on_reply = fun (_ : Msgs.t) -> ()) ~resend
    ~on_timeout () =
  let rpc = { what; resend; on_reply; on_timeout; attempts = 1 } in
  I64_tbl.replace tbl key rpc;
  resend ();
  arm_rpc t tbl key rpc

(* Remove a pending rpc (reply arrived through another path); later
   duplicates become orphans. *)
let settle_rpc tbl key = I64_tbl.remove tbl key

let dispatch_reply t ~what corr msg =
  match I64_tbl.find_opt t.rpcs corr with
  | Some rpc ->
      I64_tbl.remove t.rpcs corr;
      rpc.on_reply msg
  | None ->
      M.Counter.incr m_rpc_orphans;
      Logs.debug (fun m ->
          m "%s: %s reply with no pending request (corr %Ld)" t.host_name what
            corr)

(* ------------------------------------------------------------------ *)
(* Bootstrap (Fig. 2, host side) *)

let bootstrap t =
  match require_att t with
  | Error e -> Error e
  | Ok att -> begin
      let dh_secret, dh_public = X25519.generate t.rng in
      match att.bootstrap_rpc ~host_dh_pub:dh_public with
      | Error e -> Error e
      | Ok reply -> begin
          (* Verify everything the RS sent — bootstrap messages must be
             authenticated (§IV-B): the signed id_info and the service
             certificates, all against the AS key in the trust store. *)
          match Trust.as_pub att.trust att.aid with
          | Error e -> Error e
          | Ok as_pub ->
              let id_info =
                Registry.id_info_bytes ~ctrl_ephid:reply.ctrl_ephid
                  ~ctrl_expiry:reply.ctrl_expiry
              in
              if
                not
                  (Ed25519.verify ~pub:as_pub ~msg:id_info
                     ~signature:reply.id_info_signature)
              then Error (Error.Bad_signature "id_info")
              else begin
                let now = att.now () in
                let cert_ok c = Result.is_ok (Trust.verify_cert att.trust ~now c) in
                if not (cert_ok reply.ms_cert) then
                  Error (Error.Bad_signature "MS certificate")
                else if not (Option.fold ~none:true ~some:cert_ok reply.dns_cert)
                then Error (Error.Bad_signature "DNS certificate")
                else begin
                  match
                    X25519.shared_secret ~secret:dh_secret ~peer:reply.as_dh_pub
                  with
                  | Error e -> Error (Error.Crypto e)
                  | Ok shared_secret ->
                      t.identity <-
                        Some
                          {
                            kha = Keys.derive_host_as ~shared_secret;
                            ctrl_ephid = reply.ctrl_ephid;
                            ctrl_expiry = reply.ctrl_expiry;
                            ms_cert = reply.ms_cert;
                            dns_cert = reply.dns_cert;
                            aa_ephid = reply.aa_ephid;
                          };
                      Ok ()
                end
              end
        end
    end

(* ------------------------------------------------------------------ *)
(* Packet construction *)

let send_packet t ~src_ephid ~dst_aid ~dst_ephid ~proto ~payload =
  match (require_att t, require_identity t) with
  | Error e, _ | _, Error e -> Error e
  | Ok att, Ok id ->
      let header =
        Apna_header.make ~src_aid:att.aid ~src_ephid ~dst_aid ~dst_ephid ()
      in
      let pkt = Packet.make ~header ~proto ~payload in
      let pkt = Pkt_auth.seal ~auth_key:id.kha.auth pkt in
      t.pkts_sent <- t.pkts_sent + 1;
      if E.enabled E.default then
        E.record E.default
          ~key:(E.key_of_string pkt.header.mac)
          (E.Host_send { aid = Addr.aid_to_int att.aid; host = t.host_name });
      att.submit pkt;
      Ok ()

(* ------------------------------------------------------------------ *)
(* EphID acquisition (Fig. 3, host side) *)

let request_ephid_r t ?lifetime ?(receive_only = false) k =
  let lifetime = Option.value lifetime ~default:t.ephid_lifetime in
  match (require_att t, require_identity t) with
  | Error e, _ | _, Error e -> k (Error e)
  | Ok att, Ok id when not (Breaker.acquire t.breaker ~now:(att.now_f ())) ->
      ignore id;
      (* Fail fast while the breaker is open: callers apply their brownout
         fallback instead of burning a full timeout ladder per request. *)
      k (Error (Error.Rejected "EphID issuance circuit breaker open"))
  | Ok att, Ok id ->
      let keys = Keys.make_ephid_keys t.rng in
      let corr = fresh_corr t in
      let msg =
        Management.Client.make_request ~rng:t.rng ~corr ~kha:id.kha ~keys
          ~lifetime
      in
      (* Retransmits reuse the serialized request: same key/nonce/plaintext
         seals to the same bytes, and the MS treats each copy as a fresh
         (idempotent-enough) issuance — the host keeps only the one it
         pairs by correlation id. *)
      let payload = Msgs.to_bytes msg in
      t.ephid_requests <- t.ephid_requests + 1;
      let resend () =
        warn t "request_ephid send"
          (send_packet t ~src_ephid:(Ephid.to_bytes id.ctrl_ephid)
             ~dst_aid:id.ms_cert.aid
             ~dst_ephid:(Ephid.to_bytes id.ms_cert.ephid)
             ~proto:Packet.Control ~payload)
      in
      start_rpc t t.rpcs corr ~what:"EphID request" ~resend
        ~on_reply:(fun msg ->
          Breaker.success t.breaker;
          match Management.Client.read_reply ~kha:id.kha msg with
          | Error e -> k (Error e)
          | Ok cert ->
              let endpoint = { cert; keys; receive_only } in
              add_endpoint t endpoint;
              k (Ok endpoint))
        ~on_timeout:(fun () ->
          Breaker.failure t.breaker ~now:(att.now_f ());
          k (Error (Error.Timeout "EphID issuance")))
        ()

let request_ephid t ?lifetime ?receive_only k =
  request_ephid_r t ?lifetime ?receive_only (function
    | Ok endpoint -> k endpoint
    | Error e -> warn t "request_ephid" (Error e))

(* Batched acquisition: one sealed round trip and one MS validation for
   [count] grants. The prefetcher uses this to refill its whole stock per
   round trip instead of [count] independent request/reply exchanges. *)
let request_ephid_batch_r t ~count ?lifetime k =
  let lifetime = Option.value lifetime ~default:t.ephid_lifetime in
  match (require_att t, require_identity t) with
  | Error e, _ | _, Error e -> k (Error e)
  | Ok att, Ok id when not (Breaker.acquire t.breaker ~now:(att.now_f ())) ->
      ignore id;
      k (Error (Error.Rejected "EphID issuance circuit breaker open"))
  | Ok att, Ok id ->
      let keys = List.init count (fun _ -> Keys.make_ephid_keys t.rng) in
      let corr = fresh_corr t in
      let msg =
        Management.Client.make_batch_request ~rng:t.rng ~corr ~kha:id.kha
          ~keys ~lifetime
      in
      let payload = Msgs.to_bytes msg in
      t.ephid_requests <- t.ephid_requests + 1;
      let resend () =
        warn t "batch request send"
          (send_packet t ~src_ephid:(Ephid.to_bytes id.ctrl_ephid)
             ~dst_aid:id.ms_cert.aid
             ~dst_ephid:(Ephid.to_bytes id.ms_cert.ephid)
             ~proto:Packet.Control ~payload)
      in
      start_rpc t t.rpcs corr ~what:"EphID batch request" ~resend
        ~on_reply:(fun msg ->
          Breaker.success t.breaker;
          match Management.Client.read_batch_reply ~kha:id.kha msg with
          | Error e -> k (Error e)
          | Ok certs when List.length certs <> count ->
              k (Error (Error.Malformed "batch reply count mismatch"))
          | Ok certs ->
              (* Certificates arrive in request order: pair them back with
                 the key material they certify. *)
              let endpoints =
                List.map2
                  (fun cert keys -> { cert; keys; receive_only = false })
                  certs keys
              in
              List.iter (add_endpoint t) endpoints;
              k (Ok endpoints))
        ~on_timeout:(fun () ->
          Breaker.failure t.breaker ~now:(att.now_f ());
          k (Error (Error.Timeout "EphID batch issuance")))
        ()

let release_endpoint t (endpoint : endpoint) =
  match require_identity t with
  | Error e -> Error e
  | Ok id ->
      let msg =
        Management.Client.make_release ~rng:t.rng ~kha:id.kha
          ~ephid:endpoint.cert.Cert.ephid
      in
      remove_endpoint t endpoint;
      Hashtbl.iter
        (fun key (e : endpoint) ->
          if Cert.equal e.cert endpoint.cert then Hashtbl.remove t.pools key)
        (Hashtbl.copy t.pools);
      (* A deliberate release means sessions bound to this EphID must die
         with it: inhibit ICMP-driven recovery, exactly as for a shutoff. *)
      Hashtbl.replace t.shutoff_inhibited
        (Ephid.to_bytes endpoint.cert.Cert.ephid) ();
      send_packet t ~src_ephid:(Ephid.to_bytes id.ctrl_ephid)
        ~dst_aid:id.ms_cert.aid
        ~dst_ephid:(Ephid.to_bytes id.ms_cert.ephid)
        ~proto:Packet.Control ~payload:(Msgs.to_bytes msg)

(* ------------------------------------------------------------------ *)
(* Granularity-driven source selection *)

(* Within the renewal margin an endpoint is due for replacement; past its
   expiry it is unusable even as a brownout fallback. *)
let fresh_enough t (ep : endpoint) =
  match t.att with
  | Some att -> ep.cert.Cert.expiry > att.now () + t.renewal_margin
  | None -> true

let still_valid t (ep : endpoint) =
  match t.att with
  | Some att -> ep.cert.Cert.expiry > att.now ()
  | None -> true

(* Continuations below receive an [(endpoint, Error.t) result]: an issuance
   timeout must reach every waiter, or a wedged pool would swallow all later
   requests for the same key. *)
let with_pooled_endpoint t key k =
  let current = Hashtbl.find_opt t.pools key in
  match current with
  | Some endpoint when fresh_enough t endpoint -> k (Ok endpoint)
  | _ -> begin
      match Hashtbl.find_opt t.pool_waiters key with
      | Some waiters ->
          (* An issuance for this pool is already in flight: share it. *)
          Queue.add k waiters
      | None ->
          let waiters = Queue.create () in
          Hashtbl.replace t.pool_waiters key waiters;
          request_ephid_r t (fun result ->
              let result =
                match result with
                | Ok endpoint ->
                    Hashtbl.replace t.pools key endpoint;
                    result
                | Error _ -> begin
                    (* Brownout: issuance is down, but the pooled endpoint
                       inside its renewal margin still validates at the
                       border — degrade rather than blackhole. *)
                    match current with
                    | Some stale when still_valid t stale ->
                        note_brownout t;
                        Ok stale
                    | _ -> result
                  end
              in
              Hashtbl.remove t.pool_waiters key;
              k result;
              Queue.iter (fun waiter -> waiter result) waiters)
    end

let with_source_endpoint t ?app k =
  let effective =
    match (t.gran, app) with
    | Granularity.Per_application _, Some app -> Granularity.Per_application app
    | g, _ -> g
  in
  match Granularity.pool_key effective with
  | Some key -> with_pooled_endpoint t key k
  | None -> request_ephid_r t k

(* Keep a small stock of unused EphIDs for per-packet sources. *)
let prefetch_target = 8

let rec refill_prefetch t =
  let stock = Queue.length t.prefetched + t.prefetch_inflight in
  if stock < prefetch_target && is_bootstrapped t then begin
    let want = prefetch_target - stock in
    if want = 1 then begin
      t.prefetch_inflight <- t.prefetch_inflight + 1;
      request_ephid_r t (function
        | Error e ->
            t.prefetch_inflight <- t.prefetch_inflight - 1;
            warn t "prefetch" (Error e)
        | Ok endpoint ->
            t.prefetch_inflight <- t.prefetch_inflight - 1;
            Queue.add endpoint t.prefetched;
            refill_prefetch t)
    end
    else begin
      (* Refill the whole deficit with one batched round trip: the MS
         validates the control EphID once and amortizes its DRBG pool
         across the grants. *)
      t.prefetch_inflight <- t.prefetch_inflight + want;
      request_ephid_batch_r t ~count:want (function
        | Error e ->
            t.prefetch_inflight <- t.prefetch_inflight - want;
            warn t "prefetch" (Error e)
        | Ok endpoints ->
            t.prefetch_inflight <- t.prefetch_inflight - want;
            List.iter (fun ep -> Queue.add ep t.prefetched) endpoints;
            refill_prefetch t)
    end
  end

(* Discard-at-dequeue: stock prefetched long ago may have aged past the
   renewal margin (or expired outright) while queued. Under an issuance
   brownout, within-margin stock is pressed back into service instead. *)
let rec pop_usable_prefetched t =
  if Queue.is_empty t.prefetched then None
  else begin
    let ep = Queue.pop t.prefetched in
    if fresh_enough t ep then Some ep
    else if Breaker.state t.breaker <> Breaker.Closed && still_valid t ep
    then begin
      note_brownout t;
      Some ep
    end
    else begin
      t.stale_discards <- t.stale_discards + 1;
      M.Counter.incr m_stale_discards;
      remove_endpoint t ep;
      pop_usable_prefetched t
    end
  end

let take_fresh_source t k =
  match pop_usable_prefetched t with
  | Some endpoint ->
      refill_prefetch t;
      k (Ok endpoint)
  | None ->
      request_ephid_r t (function
        | Error e -> k (Error e)
        | Ok endpoint ->
            refill_prefetch t;
            k (Ok endpoint))

(* ------------------------------------------------------------------ *)
(* Sessions *)

let fresh_conn_id t = String.get_int64_be (Drbg.generate t.rng 8) 0

let send_frame t ~(endpoint : endpoint) ~remote:(remote_cert : Cert.t) frame =
  send_packet t
    ~src_ephid:(Ephid.to_bytes endpoint.cert.Cert.ephid)
    ~dst_aid:remote_cert.aid
    ~dst_ephid:(Ephid.to_bytes remote_cert.ephid)
    ~proto:Packet.Data
    ~payload:(Session.Frame.to_bytes frame)

let forget_session t conn_id =
  let endpoint = I64_tbl.find_opt t.local_by_conn conn_id in
  I64_tbl.remove t.sessions_by_conn conn_id;
  I64_tbl.remove t.local_by_conn conn_id;
  I64_tbl.remove t.last_packet_by_conn conn_id;
  I64_tbl.remove t.queued_data conn_id;
  settle_rpc t.accept_waits conn_id;
  I64_tbl.remove t.accept_resend conn_id;
  I64_tbl.remove t.init_in_progress conn_id;
  settle_rpc t.rekey_rpcs conn_id;
  I64_tbl.remove t.migrating conn_id;
  I64_tbl.remove t.rekey_ack_resend conn_id;
  I64_tbl.remove t.pending_retx conn_id;
  I64_tbl.remove t.recovery_last conn_id;
  (* Per-flow EphIDs die with their flow: preemptively release the backing
     EphID unless it is pooled (per-host/per-application) or receive-only
     (§VIII-G2: hosts manage their EphID pool). *)
  match endpoint with
  | None -> ()
  | Some endpoint ->
      let pooled =
        Hashtbl.fold
          (fun _ (e : endpoint) acc -> acc || Cert.equal e.cert endpoint.cert)
          t.pools false
      in
      if (not pooled) && not endpoint.receive_only then
        warn t "close: release" (release_endpoint t endpoint)

(* ------------------------------------------------------------------ *)
(* Mid-session EphID migration: a live session outlives the EphID that
   started it. The migrating side acquires a fresh EphID, seals an empty
   frame under the PRE-migration key (the authenticator: only the session
   owner can move it), rebinds the session locally, and retransmits the
   Rekey until the peer's Rekey_ack — the same exactly-once discipline as
   every other host round trip. *)

let ephid_raw (ep : endpoint) = Ephid.to_bytes ep.cert.Cert.ephid

let inhibited t (ep : endpoint) = Hashtbl.mem t.shutoff_inhibited (ephid_raw ep)

let migrate_session t session ~reason ?(and_then = fun (_ : endpoint) -> ())
    () =
  let conn_id = Session.conn_id session in
  if I64_tbl.mem t.migrating conn_id then ()
  else begin
    I64_tbl.replace t.migrating conn_id ();
    let span =
      Span.start_for Span.default
        ~id:(Printf.sprintf "conn:%Ld" conn_id)
        ~stage:"host.session.migrate"
    in
    request_ephid_r t (fun result ->
        Span.finish Span.default span;
        match result with
        | Error e ->
            (* Brownout: keep riding the current endpoint until its hard
               expiry; the next send or ICMP retriggers the migration. *)
            I64_tbl.remove t.migrating conn_id;
            note_brownout t;
            warn t "migrate: issuance" (Error e)
        | Ok fresh ->
            if not (I64_tbl.mem t.sessions_by_conn conn_id) then
              (* Session closed while the issuance was in flight. *)
              I64_tbl.remove t.migrating conn_id
            else begin
              let seq, sealed = Session.seal session "" in
              let frame =
                Session.Frame.Rekey { conn_id; cert = fresh.cert; seq; sealed }
              in
              match
                Session.rekey_local session ~local_cert:fresh.cert
                  ~local_keys:fresh.keys
              with
              | Error e ->
                  I64_tbl.remove t.migrating conn_id;
                  warn t "migrate: rekey" (Error e)
              | Ok () ->
                  I64_tbl.replace t.local_by_conn conn_id fresh;
                  t.migrations <- t.migrations + 1;
                  M.Counter.incr m_migrations;
                  Logs.info (fun m ->
                      m "%s: conn %Ld migrated to fresh EphID (%s)" t.host_name
                        conn_id reason);
                  (match t.att with
                  | Some att when E.enabled E.default ->
                      E.record E.default
                        ~key:(E.key_of_string (Printf.sprintf "conn:%Ld" conn_id))
                        (E.Migrate
                           {
                             aid = Addr.aid_to_int att.aid;
                             host = t.host_name;
                             reason;
                           })
                  | _ -> ());
                  let resend () =
                    (* The frame bytes are fixed (re-sealing would advance
                       the sequence); the destination is re-read so a peer
                       that migrates concurrently still gets our Rekey. *)
                    warn t "migrate: rekey frame"
                      (send_frame t ~endpoint:fresh
                         ~remote:(Session.remote_cert session) frame)
                  in
                  start_rpc t t.rekey_rpcs conn_id ~what:"session rekey"
                    ~resend
                    ~on_timeout:(fun () -> I64_tbl.remove t.migrating conn_id)
                    ();
                  and_then fresh
            end)
  end

(* Proactive renewal: checked on the traffic path (send/receive) rather
   than on long-armed timers, so a simulation driven to quiescence is not
   dragged forward to every session's renewal horizon. *)
let maybe_migrate t session =
  match t.att with
  | None -> ()
  | Some att ->
      let conn_id = Session.conn_id session in
      if
        Session.established session
        && (not (I64_tbl.mem t.migrating conn_id))
        && I64_tbl.mem t.sessions_by_conn conn_id
      then
        match I64_tbl.find_opt t.local_by_conn conn_id with
        | Some ep
          when ep.cert.Cert.expiry <= att.now () + t.renewal_margin
               && (not ep.receive_only)
               && not (inhibited t ep) ->
            migrate_session t session ~reason:"renewal-margin" ()
        | _ -> ()

let maintain_sessions t =
  I64_tbl.iter (fun _ session -> maybe_migrate t session) t.sessions_by_conn

let connect t ~remote ?(data0 = "") ?app ?(expect_accept = false) k =
  match require_att t with
  | Error e -> warn t "connect" (Error e)
  | Ok att ->
      let now = att.now () in
      (match Trust.verify_cert att.trust ~now remote with
      | Error e -> warn t "connect: peer certificate" (Error e)
      | Ok () ->
          with_source_endpoint t ?app (function
            | Error e -> warn t "connect: source EphID" (Error e)
            | Ok endpoint -> begin
              let conn_id = fresh_conn_id t in
              (* [expect_accept] marks a connection to a receive-only EphID
                 (the DNS record says so): the session stays unestablished
                 — later sends queue for 0.5-RTT — until the server's
                 Accept rekeys it onto the serving EphID (§VII-A/C). The
                 0-RTT [data0] still goes out under the receive-only key. *)
              match
                Session.create ~conn_id ~initiator:true
                  ~local_cert:endpoint.cert ~local_keys:endpoint.keys
                  ~remote_cert:remote ~await_accept:expect_accept ()
              with
              | Error e -> warn t "connect: session" (Error e)
              | Ok session ->
                  I64_tbl.replace t.sessions_by_conn conn_id session;
                  I64_tbl.replace t.local_by_conn conn_id endpoint;
                  let seq, sealed = Session.seal session data0 in
                  (* Retransmits must reuse the sealed frame — sealing again
                     would advance the send sequence. The connection id is
                     the Init/Accept correlation id. *)
                  let frame =
                    Session.Frame.Init
                      { conn_id; cert = endpoint.cert; seq; sealed }
                  in
                  let send_init () =
                    warn t "connect: init" (send_frame t ~endpoint ~remote frame)
                  in
                  if expect_accept then
                    start_rpc t t.accept_waits conn_id ~what:"session accept"
                      ~resend:send_init
                      ~on_timeout:(fun () ->
                        warn t "connect"
                          (Error (Error.Timeout "session accept"));
                        forget_session t conn_id)
                      ()
                  else send_init ();
                  k session
            end))

let send t session data =
  if not (Session.established session) then begin
    (* §VII-C: before the server's Accept, either send 0-RTT under the
       receive-only key (connect's data0) or queue for 0.5-RTT. *)
    let conn_id = Session.conn_id session in
    let q =
      match I64_tbl.find_opt t.queued_data conn_id with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          I64_tbl.replace t.queued_data conn_id q;
          q
    in
    Queue.add data q;
    Ok ()
  end
  else begin
    let conn_id = Session.conn_id session in
    match I64_tbl.find_opt t.local_by_conn conn_id with
    | None -> Error (Error.Rejected "unknown session")
    | Some endpoint ->
        let remote = Session.remote_cert session in
        let seq, sealed = Session.seal session data in
        let frame = Session.Frame.Data { conn_id; seq; sealed } in
        let result =
          if Granularity.equal t.gran Granularity.Per_packet then begin
            (* Fresh source EphID for every packet (§VIII-A): strongest
               unlinkability; the connection id does the demultiplexing. *)
            take_fresh_source t (function
                | Error e ->
                    (* Brownout: no fresh EphID to be had — stretch the
                       effective granularity to per-flow (reuse the bound
                       endpoint) rather than blackhole the send. *)
                    if still_valid t endpoint && not (inhibited t endpoint)
                    then begin
                      note_brownout t;
                      warn t "send(per-packet brownout)"
                        (send_frame t ~endpoint ~remote frame)
                    end
                    else warn t "send(per-packet)" (Error e)
                | Ok fresh ->
                    warn t "send(per-packet)"
                      (send_frame t ~endpoint:fresh ~remote frame));
            Ok ()
          end
          else send_frame t ~endpoint ~remote frame
        in
        (* After the frame is out (sealed under the pre-migration key),
           check whether this session's source EphID is due for renewal. *)
        maybe_migrate t session;
        result
  end

let flush_queued t session =
  let conn_id = Session.conn_id session in
  match I64_tbl.find_opt t.queued_data conn_id with
  | None -> ()
  | Some q ->
      I64_tbl.remove t.queued_data conn_id;
      Queue.iter (fun data -> warn t "flush" (send t session data)) q

(* ------------------------------------------------------------------ *)
(* Session teardown *)

let close t session =
  let conn_id = Session.conn_id session in
  match I64_tbl.find_opt t.local_by_conn conn_id with
  | None -> Error (Error.Rejected "unknown session")
  | Some endpoint ->
      let seq, sealed = Session.seal session "" in
      let result =
        send_frame t ~endpoint ~remote:(Session.remote_cert session)
          (Session.Frame.Fin { conn_id; seq; sealed })
      in
      forget_session t conn_id;
      result

let handle_fin t ~conn_id ~seq ~sealed =
  match I64_tbl.find_opt t.sessions_by_conn conn_id with
  | None -> ()
  | Some session -> begin
      (* Only an authenticated close tears the session down: a spoofed Fin
         must not be able to kill someone's connection. *)
      match open_sealed_counted session ~seq ~sealed with
      | Ok _ -> forget_session t conn_id
      | Error e -> warn t "fin" (Error e)
    end

(* ------------------------------------------------------------------ *)
(* Server role (§VII-A) *)

let dns_request t ~what ~dns ~(client : endpoint) ~corr msg k =
  let payload = Msgs.to_bytes msg in
  let resend () =
    warn t (what ^ " send")
      (send_packet t
         ~src_ephid:(Ephid.to_bytes client.cert.Cert.ephid)
         ~dst_aid:(dns : Cert.t).Cert.aid
         ~dst_ephid:(Ephid.to_bytes dns.Cert.ephid)
         ~proto:Packet.Control ~payload)
  in
  start_rpc t t.rpcs corr ~what ~resend
    ~on_reply:(fun reply -> k (Ok reply))
    ~on_timeout:(fun () -> k (Error (Error.Timeout what)))
    ()

(* DNS exchanges are fronted by a dedicated client endpoint (requested on
   demand and cached): its key material seals the query, and using it as
   the source keeps DNS traffic routable even from behind an access point,
   where the control EphID is local to the AP's domain. *)
let with_dns_endpoint t k = with_pooled_endpoint t "dns-client" k

let resolve_dns_cert t dns =
  match dns with
  | Some cert -> Ok cert
  | None -> begin
      match dns_cert t with
      | Some cert -> Ok cert
      | None -> Error (Error.Rejected "no DNS service known")
    end

let publish t ~name ?dns ?ipv4 k =
  match resolve_dns_cert t dns with
  | Error e -> warn t "publish" (Error e)
  | Ok dns_cert ->
      (* Receive-only EphIDs are immune to shutoff (§VII-A), so the
         published name cannot be taken down by revoking its EphID. *)
      request_ephid_r t ~lifetime:Lifetime.Long ~receive_only:true (function
        | Error e -> warn t "publish: receive-only EphID" (Error e)
        | Ok ro_endpoint ->
            with_dns_endpoint t (function
              | Error e -> warn t "publish: dns client" (Error e)
              | Ok client -> begin
                  let corr = fresh_corr t in
                  match
                    Dns_service.Client.make_register ~rng:t.rng ~corr
                      ~client_cert:client.cert ~client_keys:client.keys
                      ~dns_cert ~name ~publish:ro_endpoint.cert ?ipv4
                      ~receive_only:true ()
                  with
                  | Error e -> warn t "publish: register" (Error e)
                  | Ok msg ->
                      dns_request t ~what:"publish" ~dns:dns_cert ~client ~corr
                        msg (function
                        | Error e -> warn t "publish" (Error e)
                        | Ok _reply -> k ())
                end))

let dns_lookup t ~name ?dns k =
  match (resolve_dns_cert t dns, require_att t) with
  | Error e, _ | _, Error e -> warn t "dns_lookup" (Error e)
  | Ok dns_cert, Ok att ->
      with_dns_endpoint t (function
        | Error e ->
            warn t "dns_lookup: client EphID" (Error e);
            k None
        | Ok client -> begin
          let corr = fresh_corr t in
          match
            Dns_service.Client.make_query ~rng:t.rng ~corr
              ~client_cert:client.cert ~client_keys:client.keys ~dns_cert ~name
          with
          | Error e -> warn t "dns_lookup: query" (Error e)
          | Ok msg ->
              dns_request t ~what:"dns_lookup" ~dns:dns_cert ~client ~corr msg
                (function
                  | Error e ->
                      warn t "dns_lookup" (Error e);
                      k None
                  | Ok reply ->
                  match
                    Dns_service.Client.read_reply ~client_keys:client.keys
                      ~client_cert:client.cert ~dns_cert reply
                  with
                  | Error e ->
                      warn t "dns_lookup: reply" (Error e);
                      k None
                  | Ok None -> k None
                  | Ok (Some record) -> begin
                      (* DNSSEC stand-in: drop records whose zone signature
                         does not verify. *)
                      match Trust.zone_pub att.trust record.zone with
                      | Error e ->
                          warn t "dns_lookup: zone" (Error e);
                          k None
                      | Ok zone_pub ->
                          if
                            Result.is_ok
                              (Dns_service.Record.verify ~zone_pub
                                 ~now:(att.now ()) record)
                          then k (Some record)
                          else begin
                            warn t "dns_lookup: record"
                              (Error (Error.Bad_signature "zone"));
                            k None
                          end
                    end)
        end)

(* ------------------------------------------------------------------ *)
(* ICMP (§VIII-B) *)

let ping t ~dst_aid ~dst_ephid k =
  match require_att t with
  | Error e -> warn t "ping" (Error e)
  | Ok att ->
      with_source_endpoint t (function
        | Error e -> warn t "ping: source EphID" (Error e)
        | Ok endpoint ->
          let ident = t.next_ping_ident in
          t.next_ping_ident <- t.next_ping_ident + 1;
          (* The RTT clock starts at the first transmission; a reply to a
             retransmitted echo reports the total elapsed time. *)
          Hashtbl.replace t.pending_pings ident (att.now_f (), k);
          let payload =
            Icmp.to_bytes (Icmp.Echo_request { ident; data = "apna-ping" })
          in
          let resend () =
            warn t "ping send"
              (send_packet t
                 ~src_ephid:(Ephid.to_bytes endpoint.cert.Cert.ephid)
                 ~dst_aid ~dst_ephid:(Ephid.to_bytes dst_ephid)
                 ~proto:Packet.Icmp ~payload)
          in
          start_rpc t t.ping_rpcs (Int64.of_int ident) ~what:"ping" ~resend
            ~on_timeout:(fun () -> Hashtbl.remove t.pending_pings ident)
            ())

(* ------------------------------------------------------------------ *)
(* Shutoff (victim side, Fig. 5) *)

let request_shutoff t ~session ~evidence =
  let conn_id = Session.conn_id session in
  match I64_tbl.find_opt t.local_by_conn conn_id with
  | None -> Error (Error.Rejected "unknown session")
  | Some endpoint ->
      let peer = Session.remote_cert session in
      let msg =
        Shutoff.make_request ~packet:evidence ~dst_cert:endpoint.cert
          ~dst_keys:endpoint.keys
      in
      send_packet t
        ~src_ephid:(Ephid.to_bytes endpoint.cert.Cert.ephid)
        ~dst_aid:peer.aid
        ~dst_ephid:(Ephid.to_bytes peer.aa_ephid)
        ~proto:Packet.Control ~payload:(Msgs.to_bytes msg)

(* ------------------------------------------------------------------ *)
(* Delivery *)

(* O(1) on the delivery path: every inbound packet resolves its local
   endpoint here. *)
let local_endpoint_for t raw_ephid =
  Hashtbl.find_opt t.endpoints_by_ephid raw_ephid

let handle_init t (pkt : Packet.t) ~conn_id ~(cert : Cert.t) ~seq ~sealed =
  match require_att t with
  | Error e -> warn t "init" (Error e)
  | Ok att ->
      if I64_tbl.mem t.init_in_progress conn_id then
        (* Retransmitted Init while the serving EphID is still being
           issued: the Accept will go out when it arrives. *)
        ()
      else if I64_tbl.mem t.sessions_by_conn conn_id then begin
        (* Retransmitted Init for a live connection: re-send the cached
           Accept verbatim (its seal must not be recomputed) and never
           re-deliver the 0-RTT data. *)
        match I64_tbl.find_opt t.accept_resend conn_id with
        | Some resend -> resend ()
        | None -> ()
      end
      else begin
      match Trust.verify_cert att.trust ~now:(att.now ()) cert with
      | Error e -> warn t "init: client certificate" (Error e)
      | Ok () -> begin
          match local_endpoint_for t pkt.header.dst_ephid with
          | None -> Logs.warn (fun m -> m "%s: init for unknown EphID" t.host_name)
          | Some local -> begin
              match
                Session.create ~conn_id ~initiator:false ~local_cert:local.cert
                  ~local_keys:local.keys ~remote_cert:cert ()
              with
              | Error e -> warn t "init: session" (Error e)
              | Ok session ->
                  (* 0-RTT data, sealed under the key for the EphID the
                     client targeted (the receive-only one for servers). *)
                  let data0 =
                    match open_sealed_counted session ~seq ~sealed with
                    | Ok data -> Some data
                    | Error e ->
                        warn t "init: 0-rtt" (Error e);
                        None
                  in
                  if local.receive_only then begin
                    (* §VII-A: never source traffic from a receive-only
                       EphID — answer from a fresh serving EphID and move
                       the session onto it. *)
                    I64_tbl.replace t.init_in_progress conn_id ();
                    request_ephid_r t (fun result ->
                        I64_tbl.remove t.init_in_progress conn_id;
                        match result with
                        | Error e -> warn t "init: serving EphID" (Error e)
                        | Ok serving -> begin
                        match
                          Session.create ~conn_id ~initiator:false
                            ~local_cert:serving.cert ~local_keys:serving.keys
                            ~remote_cert:cert ()
                        with
                        | Error e -> warn t "init: serving session" (Error e)
                        | Ok session' ->
                            I64_tbl.replace t.sessions_by_conn conn_id session';
                            I64_tbl.replace t.local_by_conn conn_id serving;
                            let seq, sealed = Session.seal session' "" in
                            let accept_frame =
                              Session.Frame.Accept
                                { conn_id; cert = serving.cert; seq; sealed }
                            in
                            let resend () =
                              warn t "init: accept"
                                (send_frame t ~endpoint:serving ~remote:cert
                                   accept_frame)
                            in
                            (* A lost Accept is recovered by the client's
                               Init retransmission hitting the cache. *)
                            I64_tbl.replace t.accept_resend conn_id resend;
                            resend ();
                            if t.accept_zero_rtt then
                              Option.iter
                                (fun d -> if d <> "" then deliver_data t session' d)
                                data0
                            else
                              Logs.debug (fun m ->
                                  m "%s: 0-RTT data refused by policy" t.host_name)
                        end)
                  end
                  else begin
                    I64_tbl.replace t.sessions_by_conn conn_id session;
                    I64_tbl.replace t.local_by_conn conn_id local;
                    Option.iter (fun d -> if d <> "" then deliver_data t session d) data0
                  end
            end
        end
      end

let handle_accept t ~conn_id ~(cert : Cert.t) ~seq:_ ~sealed:_ =
  match (I64_tbl.find_opt t.sessions_by_conn conn_id, require_att t) with
  | None, _ -> Logs.warn (fun m -> m "%s: accept for unknown conn" t.host_name)
  | _, Error e -> warn t "accept" (Error e)
  | Some session, Ok att ->
      if Session.established session then begin
        (* Duplicate (retransmitted) Accept: the first one already rekeyed
           this session; rekeying again would reset the replay window and
           send sequence mid-connection. *)
        if not (Cert.equal (Session.remote_cert session) cert) then
          Logs.warn (fun m ->
              m "%s: conflicting accept for established conn ignored"
                t.host_name)
      end
      else begin
        match Trust.verify_cert att.trust ~now:(att.now ()) cert with
        | Error e -> warn t "accept: serving certificate" (Error e)
        | Ok () -> begin
            match Session.rekey session ~remote_cert:cert with
            | Error e -> warn t "accept: rekey" (Error e)
            | Ok () ->
                (* Cancel the Init retransmission loop. *)
                settle_rpc t.accept_waits conn_id;
                flush_queued t session
          end
      end

(* Peer side of a migration. Idempotency mirrors Init/Accept: a duplicate
   Rekey (the peer retransmitting because our ack was lost) is recognised
   by its certificate already being the session's remote and answered by
   re-sending the cached ack verbatim. *)
let handle_rekey t ~conn_id ~(cert : Cert.t) ~seq ~sealed =
  match (I64_tbl.find_opt t.sessions_by_conn conn_id, require_att t) with
  | None, _ -> Logs.warn (fun m -> m "%s: rekey for unknown conn" t.host_name)
  | _, Error e -> warn t "rekey" (Error e)
  | Some session, Ok att ->
      if Cert.equal (Session.remote_cert session) cert then begin
        match I64_tbl.find_opt t.rekey_ack_resend conn_id with
        | Some resend -> resend ()
        | None -> ()
      end
      else begin
        match Trust.verify_cert att.trust ~now:(att.now ()) cert with
        | Error e -> warn t "rekey: certificate" (Error e)
        | Ok () -> begin
            (* Authenticate under the current (or grace-window) key before
               applying: only the session's owner can migrate it. *)
            match open_sealed_counted session ~seq ~sealed with
            | Error e -> warn t "rekey: auth" (Error e)
            | Ok _ -> begin
                match Session.rekey session ~remote_cert:cert with
                | Error e -> warn t "rekey: apply" (Error e)
                | Ok () -> begin
                    match I64_tbl.find_opt t.local_by_conn conn_id with
                    | None -> ()
                    | Some local ->
                        let aseq, asealed = Session.seal session "" in
                        let ack =
                          Session.Frame.Rekey_ack
                            { conn_id; seq = aseq; sealed = asealed }
                        in
                        let resend () =
                          warn t "rekey: ack"
                            (send_frame t ~endpoint:local ~remote:cert ack)
                        in
                        I64_tbl.replace t.rekey_ack_resend conn_id resend;
                        resend ();
                        (* A frame of ours died on the peer's old EphID:
                           one bounded retransmission at its new address. *)
                        (match I64_tbl.find_opt t.pending_retx conn_id with
                        | Some payload ->
                            I64_tbl.remove t.pending_retx conn_id;
                            warn t "rekey: retransmit"
                              (send_packet t ~src_ephid:(ephid_raw local)
                                 ~dst_aid:cert.aid
                                 ~dst_ephid:(Ephid.to_bytes cert.ephid)
                                 ~proto:Packet.Data ~payload)
                        | None -> ());
                        (* The peer renewing is a hint our own side may be
                           near the same horizon. *)
                        maybe_migrate t session
                  end
              end
          end
      end

let handle_rekey_ack t ~conn_id ~seq ~sealed =
  match I64_tbl.find_opt t.sessions_by_conn conn_id with
  | None -> ()
  | Some session -> begin
      (* Sealed under the post-migration key: proof the peer applied it. *)
      match open_sealed_counted session ~seq ~sealed with
      | Error e -> warn t "rekey ack" (Error e)
      | Ok _ ->
          settle_rpc t.rekey_rpcs conn_id;
          I64_tbl.remove t.migrating conn_id
    end

let handle_data_frame t ~conn_id ~seq ~sealed =
  match I64_tbl.find_opt t.sessions_by_conn conn_id with
  | None -> Logs.warn (fun m -> m "%s: data for unknown conn" t.host_name)
  | Some session -> begin
      match open_sealed_counted session ~seq ~sealed with
      | Error e -> warn t "data" (Error e)
      | Ok data ->
          deliver_data t session data;
          (* Receive-path renewal check keeps a mostly-listening endpoint
             (a server) migrating on the client's traffic. *)
          maybe_migrate t session
    end

(* ---- reactive recovery (ICMP-driven) ---- *)

let record_unreachable t reason =
  t.unreachable_total <- t.unreachable_total + 1;
  Queue.add reason t.unreachables_q;
  while Queue.length t.unreachables_q > unreachable_cap do
    ignore (Queue.pop t.unreachables_q)
  done;
  if M.enabled M.default then M.Counter.incr (m_unreachable reason)

(* Scrub a dead EphID out of every reuse path: granularity pools, the
   per-packet prefetch stock, and the endpoint list. Session bindings are
   replaced by the migration itself. *)
let invalidate_endpoint t raw =
  (* Cost is 1 index removal + the (granularity-bounded) pools + the
     (target-bounded) prefetch stock — never the endpoint population. *)
  let cost = ref 1 in
  Hashtbl.remove t.endpoints_by_ephid raw;
  Hashtbl.iter
    (fun key (e : endpoint) ->
      incr cost;
      if String.equal (ephid_raw e) raw then Hashtbl.remove t.pools key)
    (Hashtbl.copy t.pools);
  let keep = Queue.create () in
  Queue.iter
    (fun e ->
      incr cost;
      if not (String.equal (ephid_raw e) raw) then Queue.add e keep)
    t.prefetched;
  Queue.clear t.prefetched;
  Queue.transfer keep t.prefetched;
  t.last_endpoint_op_cost <- !cost

(* All session frames lead with tag(1) ‖ conn_id(8). *)
let conn_of_quoted quoted =
  if String.length quoted >= 9 && Char.code quoted.[0] <= 5 then
    Some (String.get_int64_be quoted 1)
  else None

let recovery_cooldown_s = 5.0

(* An ICMP Ephid_expired/Ephid_revoked whose quoted bytes match a live
   session. The ICMP is addressed to the EphID that sourced the dropped
   packet; its source AID says where the drop happened: our own AS means
   our source EphID failed the egress check (migrate and retransmit the
   quoted frame once), a remote AS means the peer's EphID failed ingress
   (stash the frame; one retransmission when the peer's Rekey lands). *)
let try_recover t (pkt : Packet.t) ~reason ~quoted =
  match (conn_of_quoted quoted, t.att) with
  | None, _ | _, None -> ()
  | Some conn_id, Some att -> begin
      match I64_tbl.find_opt t.sessions_by_conn conn_id with
      | None -> ()
      | Some session ->
          let dead_raw = pkt.header.dst_ephid in
          if Hashtbl.mem t.shutoff_inhibited dead_raw then
            (* Shut off: recovering would defeat the revocation (Fig. 5). *)
            ()
          else if Addr.aid_equal pkt.header.src_aid att.aid then begin
            invalidate_endpoint t dead_raw;
            let recently =
              match I64_tbl.find_opt t.recovery_last conn_id with
              | Some ts -> att.now_f () -. ts < recovery_cooldown_s
              | None -> false
            in
            if not recently then begin
              I64_tbl.replace t.recovery_last conn_id (att.now_f ());
              t.recoveries <- t.recoveries + 1;
              M.Counter.incr m_recoveries;
              let retransmit (ep : endpoint) =
                let remote = Session.remote_cert session in
                warn t "recover: retransmit"
                  (send_packet t ~src_ephid:(ephid_raw ep)
                     ~dst_aid:remote.Cert.aid
                     ~dst_ephid:(Ephid.to_bytes remote.Cert.ephid)
                     ~proto:Packet.Data ~payload:quoted)
              in
              let bound = I64_tbl.find_opt t.local_by_conn conn_id in
              match bound with
              | Some ep when String.equal (ephid_raw ep) dead_raw ->
                  (* The session's own binding died: migrate, then send the
                     quoted frame once from the fresh EphID. The peer opens
                     it through the grace window. *)
                  migrate_session t session
                    ~reason:(Icmp.reason_label reason) ~and_then:retransmit ()
              | Some ep when still_valid t ep ->
                  (* A per-packet source died but the binding is alive:
                     retransmit from it (momentary per-flow degradation). *)
                  retransmit ep
              | _ -> ()
            end
          end
          else if not (I64_tbl.mem t.pending_retx conn_id) then
            I64_tbl.replace t.pending_retx conn_id quoted
    end

let rec handle_icmp t (pkt : Packet.t) =
  match Icmp.of_bytes pkt.payload with
  | Error e -> warn t "icmp" (Error e)
  | Ok (Icmp.Encrypted { sealed }) -> begin
      (* §VIII-B: sealed to the key of the EphID the packet targets. *)
      match local_endpoint_for t pkt.header.dst_ephid with
      | None -> ()
      | Some local -> begin
          match Ecies.open_ ~secret:local.keys.kx_secret sealed with
          | Error e -> warn t "icmp: sealed" (Error e)
          | Ok inner -> begin
              match Icmp.of_bytes inner with
              | Ok (Icmp.Encrypted _) ->
                  warn t "icmp" (Error (Error.Malformed "nested encryption"))
              | _ -> handle_icmp t { pkt with payload = inner }
            end
        end
    end
  | Ok (Icmp.Echo_request { ident; data }) -> begin
      (* Reply from one of our endpoints, keeping the sender anonymous to
         everyone but our AS. *)
      match local_endpoint_for t pkt.header.dst_ephid with
      | None -> ()
      | Some local ->
          warn t "icmp reply"
            (send_packet t
               ~src_ephid:(Ephid.to_bytes local.cert.Cert.ephid)
               ~dst_aid:pkt.header.src_aid ~dst_ephid:pkt.header.src_ephid
               ~proto:Packet.Icmp
               ~payload:(Icmp.to_bytes (Icmp.Echo_reply { ident; data })))
    end
  | Ok (Icmp.Echo_reply { ident; _ }) -> begin
      match (Hashtbl.find_opt t.pending_pings ident, require_att t) with
      | Some (t0, k), Ok att ->
          Hashtbl.remove t.pending_pings ident;
          settle_rpc t.ping_rpcs (Int64.of_int ident);
          k (att.now_f () -. t0)
      | _ -> ()
    end
  | Ok (Icmp.Unreachable { reason; quoted }) -> begin
      record_unreachable t reason;
      match reason with
      | Icmp.Ephid_expired | Icmp.Ephid_revoked ->
          try_recover t pkt ~reason ~quoted
      | Icmp.No_route | Icmp.Host_unknown -> ()
    end
  | Ok (Icmp.Frag_needed { mtu; _ }) -> t.mtu_hints_rev <- mtu :: t.mtu_hints_rev

let deliver t (pkt : Packet.t) =
  match pkt.proto with
  | Packet.Control -> begin
      match Msgs.of_bytes pkt.payload with
      | Error e -> warn t "control" (Error e)
      | Ok (Msgs.Ephid_reply { corr; _ } as msg) ->
          dispatch_reply t ~what:"EphID" corr msg
      | Ok (Msgs.Ephid_batch_reply { corr; _ } as msg) ->
          dispatch_reply t ~what:"EphID batch" corr msg
      | Ok (Msgs.Dns_reply { corr; _ } as msg) ->
          dispatch_reply t ~what:"DNS" corr msg
      | Ok (Msgs.Revocation_notice { ephid }) -> begin
          match Ephid.of_bytes ephid with
          | Error e -> warn t "revocation notice" (Error (Error.Malformed e))
          | Ok ephid ->
              (* Identify the application behind the revoked EphID from the
                 granularity pools (§VIII-A). *)
              let app =
                Hashtbl.fold
                  (fun key (ep : endpoint) acc ->
                    if Ephid.equal ep.cert.Cert.ephid ephid then
                      match String.index_opt key ':' with
                      | Some i ->
                          Some (String.sub key (i + 1) (String.length key - i - 1))
                      | None -> acc
                    else acc)
                  t.pools None
              in
              t.revocation_notices_rev <- (ephid, app) :: t.revocation_notices_rev;
              (* The AS shut this EphID off: purge it from every reuse path
                 and pin it so ICMP-driven recovery never resurrects the
                 flows it backed. *)
              let raw = Ephid.to_bytes ephid in
              Hashtbl.replace t.shutoff_inhibited raw ();
              invalidate_endpoint t raw
        end
      | Ok _ -> Logs.warn (fun m -> m "%s: unexpected control message" t.host_name)
    end
  | Packet.Data -> begin
      match Session.Frame.of_bytes pkt.payload with
      | Error e -> warn t "frame" (Error e)
      | Ok (Session.Frame.Init { conn_id; cert; seq; sealed }) ->
          I64_tbl.replace t.last_packet_by_conn conn_id pkt;
          handle_init t pkt ~conn_id ~cert ~seq ~sealed
      | Ok (Session.Frame.Accept { conn_id; cert; seq; sealed }) ->
          handle_accept t ~conn_id ~cert ~seq ~sealed
      | Ok (Session.Frame.Data { conn_id; seq; sealed }) ->
          I64_tbl.replace t.last_packet_by_conn conn_id pkt;
          handle_data_frame t ~conn_id ~seq ~sealed
      | Ok (Session.Frame.Fin { conn_id; seq; sealed }) ->
          handle_fin t ~conn_id ~seq ~sealed
      | Ok (Session.Frame.Rekey { conn_id; cert; seq; sealed }) ->
          handle_rekey t ~conn_id ~cert ~seq ~sealed
      | Ok (Session.Frame.Rekey_ack { conn_id; seq; sealed }) ->
          handle_rekey_ack t ~conn_id ~seq ~sealed
    end
  | Packet.Icmp -> handle_icmp t pkt
