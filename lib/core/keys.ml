open Apna_crypto

type as_keys = {
  aid : Apna_net.Addr.aid;
  master : string;
  ephid_enc : Aes.key;
  ephid_mac : Aes.key;
  infra_mac : string;
  signing : Ed25519.keypair;
  dh_secret : string;
  dh_public : string;
}

let make_as rng ~aid =
  let master = Drbg.generate rng 32 in
  let okm = Hkdf.derive ~info:"apna:as-keys:v1" ~len:64 master in
  let signing = Ed25519.generate rng in
  let dh_secret, dh_public = X25519.generate rng in
  {
    aid;
    master;
    ephid_enc = Aes.expand (String.sub okm 0 16);
    ephid_mac = Aes.expand (String.sub okm 16 16);
    infra_mac = String.sub okm 32 32;
    signing;
    dh_secret;
    dh_public;
  }

type host_as = { ctrl : Aead.key Lazy.t; ctrl_raw : string; auth : string }

(* The expanded AEAD key (AES round-key schedule) costs ~1 KB per host;
   at the paper's 1.27 M-host population (§V-A3) eager expansion is >1 GB
   of registry state for hosts that may never send a control message.
   Deriving lazily keeps a dormant host at two 32-byte strings. *)
let derive_host_as ~shared_secret =
  let okm = Hkdf.derive ~info:"apna:kha:v1" ~len:64 shared_secret in
  let ctrl_raw = String.sub okm 0 32 in
  { ctrl = lazy (Aead.of_secret ctrl_raw); ctrl_raw; auth = String.sub okm 32 32 }

let ctrl (k : host_as) = Lazy.force k.ctrl

type ephid_keys = {
  kx_secret : string;
  kx_public : string;
  sig_keypair : Ed25519.keypair;
}

let make_ephid_keys rng =
  let kx_secret, kx_public = X25519.generate rng in
  { kx_secret; kx_public; sig_keypair = Ed25519.generate rng }
