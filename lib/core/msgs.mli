(** Wire formats for control-plane messages (packet proto {!Apna_net.Packet.Control}).

    EphID request/reply bodies are AEAD-sealed under the host–AS control
    key so that an on-path observer cannot link the ephemeral public keys
    in requests to later connection-establishment packets (§IV-C).

    Round-trip messages carry a [corr]elation id chosen by the requester
    and echoed verbatim in the reply; hosts match replies to pending
    continuations by this id, so lost, duplicated or reordered replies can
    never mis-pair (and retransmitted requests are cheap to deduplicate). *)

type t =
  | Ephid_request of { corr : int64; nonce : string; sealed : string }
      (** host → MS, sealed under kHA-ctrl: {!request_body}. *)
  | Ephid_reply of { corr : int64; nonce : string; sealed : string }
      (** MS → host, sealed under kHA-ctrl: certificate bytes. *)
  | Shutoff_request of { packet : string; signature : string; cert : string }
      (** victim → AA of the source (Fig. 5): the unwanted packet, an
          Ed25519 signature over it by the victim's EphID key, and the
          victim's certificate. *)
  | Dns_query of { corr : int64; client_cert : string; nonce : string; sealed : string }
      (** sealed under ECDH(client EphID key, DNS service key): the name. *)
  | Dns_reply of { corr : int64; nonce : string; sealed : string }
      (** sealed likewise: a {!Dns_record} or an empty string for NXDOMAIN. *)
  | Dns_register of {
      corr : int64;
      client_cert : string;
      nonce : string;
      sealed : string;
    }  (** sealed likewise: name length-prefixed, then the record. *)
  | Revocation_notice of { ephid : string }
      (** AA → source host after a shutoff: which EphID was revoked, so the
          host can identify the application behind it (§VIII-A). *)
  | Ephid_release of { nonce : string; sealed : string }
      (** host → MS, sealed under kHA-ctrl: an EphID the host no longer
          needs, revoked preemptively (§VIII-G2). The seal proves the
          request comes from the key-holder, and the MS additionally checks
          the EphID belongs to the requesting HID. *)
  | Ephid_batch_request of { corr : int64; nonce : string; sealed : string }
      (** host → MS, sealed under kHA-ctrl: {!Batch_request_body} — N
          grants for one validation + round trip (the prefetcher's
          amortized path). *)
  | Ephid_batch_reply of { corr : int64; nonce : string; sealed : string }
      (** MS → host, sealed under kHA-ctrl: {!Batch_reply_body}. *)

val to_bytes : t -> string
val of_bytes : string -> (t, Error.t) result

val corr : t -> int64 option
(** The correlation id of a round-trip message; [None] for one-way
    messages (shutoff, revocation notice, release). *)

(** EphID request body (the confidential part). *)
module Request_body : sig
  type t = { kx_pub : string; sig_pub : string; lifetime : Lifetime.t }

  val to_bytes : t -> string
  val of_bytes : string -> (t, Error.t) result
end

(** Batched EphID request body: one lifetime class, up to {!max_batch}
    per-EphID key pairs. [to_bytes] raises [Invalid_argument] on an empty
    or oversized batch or mis-sized keys; [of_bytes] is total. *)
module Batch_request_body : sig
  type item = { kx_pub : string; sig_pub : string }
  type t = { items : item list; lifetime : Lifetime.t }

  val max_batch : int
  (** 64. *)

  val to_bytes : t -> string
  val of_bytes : string -> (t, Error.t) result
end

(** Batched reply body: certificates in request order, as opaque bytes. *)
module Batch_reply_body : sig
  type t = string list

  val to_bytes : t -> string
  val of_bytes : string -> (t, Error.t) result
end
