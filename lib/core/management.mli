(** The EphID Management Service (MS) — issuance (paper §IV-C, Fig. 3,
    §V-A).

    The MS receives an encrypted request carrying the host-generated
    ephemeral public keys, validates the control EphID (tag, expiry, HID
    validity), and answers with an encrypted short-lived certificate for a
    freshly issued EphID. Issuance is stateless with respect to EphIDs:
    decrypting the token is the only lookup the AS ever needs. *)

type t

val create :
  keys:Keys.as_keys ->
  host_info:Host_info.t ->
  ?revoked:Revocation.t ->
  rng:Apna_crypto.Drbg.t ->
  ?policy:Lifetime.policy ->
  aa_ephid:Ephid.t ->
  ?audit:Audit.t ->
  unit ->
  t
(** [revoked] is the border routers' revocation list, which preemptive
    releases feed into (§VIII-G2); defaults to a private list. [audit]
    enables data retention of issuance bindings (§VIII-H). *)

val handle_request :
  t -> now:int -> src_ephid:string -> Msgs.t -> (Msgs.t, Error.t) result
(** [handle_request t ~now ~src_ephid msg] performs the Fig. 3 checks —
    control EphID authenticity and expiry, HID validity, request
    decryption — and returns the encrypted [Ephid_reply]. [src_ephid] is
    the raw source identifier from the packet header. *)

val issue_direct :
  t -> now:int -> hid:Apna_net.Addr.hid -> kx_pub:string -> sig_pub:string ->
  lifetime:Lifetime.t -> (Cert.t, Error.t) result
(** Issuance without the message wrapper: used for AS services' own
    EphIDs, NAT-mode access points (§VII-B) and gateways (§VII-D). *)

val issue_batch :
  t -> now:int -> hid:Apna_net.Addr.hid ->
  items:Msgs.Batch_request_body.item list -> lifetime:Lifetime.t ->
  (Cert.t list, Error.t) result
(** N grants for one validation: certificates in item order. Both paths
    draw IVs from one shared DRBG pool, so [issue_batch n] grants exactly
    the EphIDs/certs n sequential {!issue_direct} calls would have under
    the same DRBG state (property-tested). Whole batch fails atomically.
    [Error (Malformed _)] when the count is 0 or exceeds
    {!Msgs.Batch_request_body.max_batch}. *)

val issued_count : t -> int
(** Total EphIDs issued — the statistic of the §V-A3 evaluation. *)

val batch_request_count : t -> int
(** Batched issuance requests served (also exported as the
    [apna_ms_issuance_batch_requests_total] counter). *)

val handle_release :
  t -> now:int -> src_ephid:string -> Msgs.t -> (unit, Error.t) result
(** Preemptive revocation by the owner (§VIII-G2): validates that the
    release comes from the EphID's own HID, then revokes it. *)

val released_count : t -> int

(** Host-side helpers for the request/reply exchange. *)
module Client : sig
  val make_request :
    rng:Apna_crypto.Drbg.t -> corr:int64 -> kha:Keys.host_as ->
    keys:Keys.ephid_keys -> lifetime:Lifetime.t -> Msgs.t
  (** [corr] is the requester-chosen correlation id, echoed in the reply. *)

  val make_request_raw :
    rng:Apna_crypto.Drbg.t -> corr:int64 -> kha:Keys.host_as ->
    kx_pub:string -> sig_pub:string -> lifetime:Lifetime.t -> Msgs.t
  (** Request with externally supplied public keys — what a NAT-mode access
      point sends on behalf of a client (§VII-B). *)

  val read_reply : kha:Keys.host_as -> Msgs.t -> (Cert.t, Error.t) result

  val make_batch_request :
    rng:Apna_crypto.Drbg.t -> corr:int64 -> kha:Keys.host_as ->
    keys:Keys.ephid_keys list -> lifetime:Lifetime.t -> Msgs.t
  (** One request for one EphID per element of [keys] — the prefetcher
      refills its whole stock in a single round trip. *)

  val read_batch_reply :
    kha:Keys.host_as -> Msgs.t -> (Cert.t list, Error.t) result
  (** Certificates in the same order as the request's [keys]. *)

  val make_release :
    rng:Apna_crypto.Drbg.t -> kha:Keys.host_as -> ephid:Ephid.t -> Msgs.t
end
