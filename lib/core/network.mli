(** The simulated inter-domain network: ASes on a topology, a shared trust
    store (RPKI stand-in), a discrete-event engine, and a simulated wall
    clock for EphID expiry.

    This is the test bench on which all examples, tests and benchmarks run
    end-to-end protocol flows. Everything is deterministic given the
    seed. *)

type t

type transport =
  | Native  (** APNA packets travel as-is between border routers. *)
  | Gre_ipv4
      (** The §VII-D deployment (Fig. 9): every inter-AS transmission is
          serialized as IPv4 / GRE / APNA and re-parsed at the next router,
          with router IPv4 addresses standing in for AIDs on the wire. *)

val create : ?seed:string -> ?epoch:int -> ?transport:transport -> unit -> t
(** [epoch] is the Unix time at simulation start (default 1,750,000,000).
    Fault injection draws from an independent DRBG derived from
    [seed ^ "/faults"], so identical seeds inject identical faults and
    fault-free runs are byte-identical to runs built without the fault
    model at all. *)

val engine : t -> Apna_sim.Engine.t
val topology : t -> Apna_net.Topology.t
val trust : t -> Trust.t
val now_unix : t -> int
val now_f : t -> float
val rng : t -> Apna_crypto.Drbg.t

val add_as :
  t -> int -> ?dns_zone:string -> ?retention:bool -> ?icmp_encryption:bool ->
  ?lifetime_policy:Lifetime.policy -> ?expected_hosts:int ->
  ?aa_limits:Accountability.limits -> unit -> As_node.t
(** [add_as t 64500 ()] creates and registers an AS with that number.
    [retention] turns on the §VIII-H audit log; [icmp_encryption] turns on
    §VIII-B sealed ICMP feedback (with its certificate cache);
    [lifetime_policy] overrides the §VIII-G1 short/medium/long EphID
    lifetimes this AS's management service issues; [expected_hosts]
    pre-sizes the sharded host_info database for a known population;
    [aa_limits] overrides the accountability agent's admission-control
    policy (rate limits, queue bound, revocation batching). *)

val node : t -> Apna_net.Addr.aid -> As_node.t option
val node_exn : t -> int -> As_node.t

val ases : t -> As_node.t list
(** Every registered AS, sorted by AS number — deterministic iteration
    for the telemetry tick's per-AS gauge refresh. *)

val connect_as : t -> int -> int -> ?link:Apna_net.Link.t -> unit -> unit
(** Inter-AS link; default 10 Gbps, 5 ms. Pass a link built with
    [Link.make ~faults ...] to inject loss, duplication, reorder jitter or
    a bounded sender queue on every transmission it carries. *)

val link_fault_stats :
  t -> int -> int -> Apna_net.Link.fault_stats option
(** Injected-fault counters of the (undirected) link between two AS
    numbers; [None] when they are not connected. *)

val set_host_faults : t -> Apna_net.Link.faults option -> unit
(** Applies a fault model to every host<->border-router access-link
    crossing (both directions, all hosts added by {!add_host}). [None]
    (the default) restores the exact fault-free delivery path. *)

val host_fault_stats : t -> Apna_net.Link.fault_stats
(** Counters for faults injected on access links by {!set_host_faults}. *)

val add_host :
  t -> as_number:int -> name:string -> credential:string ->
  ?granularity:Granularity.t -> unit -> Host.t
(** Creates a host with its own derived RNG, attaches it to the AS and
    enrolls the credential. The host still has to {!Host.bootstrap}. *)

val run : ?until:float -> t -> unit
(** Drives the event engine until quiescence (or simulated time [until]). *)

val set_tap :
  t -> (from:Apna_net.Addr.aid -> to_:Apna_net.Addr.aid -> Apna_net.Packet.t -> unit) -> unit
(** Installs a passive observer on every inter-AS transmission — the
    adversary's vantage point for the privacy experiments and tests. *)

val advance_time : t -> float -> unit
(** [advance_time t dt] fast-forwards the clock by [dt] seconds, processing
    any events in between — for expiry and garbage-collection tests. *)
