(** The revoked-EphID list kept by border routers (paper Fig. 4/5 and
    §VIII-G2).

    Entries carry the EphID's own expiry time so that the periodic garbage
    collection the paper describes — "expired EphIDs can be removed from
    revoked_EphIDs" — is possible. *)

type t

val create : unit -> t

val revoke : t -> Ephid.t -> expiry:int -> unit
(** [expiry] is the EphID's expiration time, after which the entry is
    garbage-collectable (packets are dropped by the expiry check anyway).
    Re-revoking an EphID whose recorded expiry is unchanged is a no-op: no
    heap insert and no generation bump, so duplicate revocations cannot
    inflate gc cost or invalidate downstream caches. *)

val revoke_many : t -> (Ephid.t * int) list -> int
(** Batched {!revoke}: applies every [(ephid, expiry)] entry but bumps the
    generation counter at most once, so a revocation storm propagates to
    cache consumers as O(batches) invalidations instead of
    O(revocations). Returns how many entries actually changed the table. *)

val is_revoked : t -> Ephid.t -> bool
val size : t -> int

val gc : t -> now:int -> int
(** [gc t ~now] drops entries whose EphID has expired; returns how many
    were removed. Driven by an expiry min-heap, so a sweep costs
    O(stale · log n) — it never folds over the live table. *)

val last_gc_cost : t -> int
(** Heap candidates examined by the most recent {!gc} — a count-based
    probe the perf regression tests use to prove gc cost scales with the
    stale entries, not the table size. *)

val generation : t -> int
(** Monotone counter bumped by every table-changing {!revoke} (or once per
    changing {!revoke_many} batch) and by any {!gc} that removed an entry. Consumers caching "not revoked" verdicts (the border
    router's validated-EphID cache) record the generation at insert time
    and fall back to the full check when it has moved. *)
