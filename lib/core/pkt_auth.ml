open Apna_net

let mac ~auth_key pkt =
  String.sub
    (Apna_crypto.Hmac.Sha256.mac ~key:auth_key (Packet.bytes_for_mac pkt))
    0 Apna_header.mac_size

let seal ~auth_key (pkt : Packet.t) =
  { pkt with header = Apna_header.with_mac pkt.header (mac ~auth_key pkt) }

let verify ~auth_key (pkt : Packet.t) =
  Apna_util.Ct.equal pkt.header.mac (mac ~auth_key pkt)

(* A key prepared for repeated verification: HMAC pads expanded once,
   digest buffer reused. One in-flight MAC per value (the prepared HMAC
   context is mutable), which the border router's single-domain burst
   loop respects. *)
type verifier = {
  prepared : Apna_crypto.Hmac.Sha256.prepared;
  digest : Bytes.t;
  key : string;  (** kept for the rare scratch-overflow fallback *)
}

let make_verifier ~auth_key =
  {
    prepared = Apna_crypto.Hmac.Sha256.prepare ~key:auth_key;
    digest = Bytes.create 32;
    key = auth_key;
  }

let verify_in ~scratch v (pkt : Packet.t) =
  if Bytes.length scratch < Packet.wire_size pkt then
    (* Packet larger than the arena slot: take the allocating path
       rather than constrain the MTU here. *)
    verify ~auth_key:v.key pkt
  else begin
    let len = Packet.write_for_mac pkt scratch in
    Apna_crypto.Hmac.Sha256.mac_into v.prepared ~src:scratch ~off:0 ~len
      ~out:v.digest ~out_off:0;
    Apna_util.Ct.equal_bytes pkt.header.mac v.digest ~off:0
  end
