type t =
  | Auth_failed
  | Expired of string
  | Revoked of string
  | Unknown_host
  | Bad_mac
  | Bad_signature of string
  | Malformed of string
  | No_route
  | Crypto of string
  | Rejected of string
  | Timeout of string
  | Budget_exhausted of string

let to_string = function
  | Auth_failed -> "authentication failed"
  | Expired what -> "expired: " ^ what
  | Revoked what -> "revoked: " ^ what
  | Unknown_host -> "unknown host"
  | Bad_mac -> "packet MAC verification failed"
  | Bad_signature what -> "bad signature: " ^ what
  | Malformed what -> "malformed: " ^ what
  | No_route -> "no route to destination AS"
  | Crypto what -> "crypto failure: " ^ what
  | Rejected why -> "rejected: " ^ why
  | Timeout what -> "timed out: " ^ what
  | Budget_exhausted what -> "privacy budget exhausted: " ^ what

let pp ppf e = Format.pp_print_string ppf (to_string e)
let equal (a : t) (b : t) = a = b

let kind_label = function
  | Auth_failed -> "auth-failed"
  | Expired _ -> "expired"
  | Revoked _ -> "revoked"
  | Unknown_host -> "unknown-host"
  | Bad_mac -> "bad-mac"
  | Bad_signature _ -> "bad-signature"
  | Malformed _ -> "malformed"
  | No_route -> "no-route"
  | Crypto _ -> "crypto"
  | Rejected _ -> "rejected"
  | Timeout _ -> "timeout"
  | Budget_exhausted _ -> "budget-exhausted"

(* Stable wire codec, used by the broker's refusal responses. The payload
   string of payload-less variants is ignored on decode. *)
let to_wire = function
  | Auth_failed -> (0, "")
  | Expired s -> (1, s)
  | Revoked s -> (2, s)
  | Unknown_host -> (3, "")
  | Bad_mac -> (4, "")
  | Bad_signature s -> (5, s)
  | Malformed s -> (6, s)
  | No_route -> (7, "")
  | Crypto s -> (8, s)
  | Rejected s -> (9, s)
  | Timeout s -> (10, s)
  | Budget_exhausted s -> (11, s)

let of_wire tag payload =
  match tag with
  | 0 -> Ok Auth_failed
  | 1 -> Ok (Expired payload)
  | 2 -> Ok (Revoked payload)
  | 3 -> Ok Unknown_host
  | 4 -> Ok Bad_mac
  | 5 -> Ok (Bad_signature payload)
  | 6 -> Ok (Malformed payload)
  | 7 -> Ok No_route
  | 8 -> Ok (Crypto payload)
  | 9 -> Ok (Rejected payload)
  | 10 -> Ok (Timeout payload)
  | 11 -> Ok (Budget_exhausted payload)
  | n -> Error (Printf.sprintf "unknown error tag %d" n)
