type t =
  | Auth_failed
  | Expired of string
  | Revoked of string
  | Unknown_host
  | Bad_mac
  | Bad_signature of string
  | Malformed of string
  | No_route
  | Crypto of string
  | Rejected of string
  | Timeout of string

let to_string = function
  | Auth_failed -> "authentication failed"
  | Expired what -> "expired: " ^ what
  | Revoked what -> "revoked: " ^ what
  | Unknown_host -> "unknown host"
  | Bad_mac -> "packet MAC verification failed"
  | Bad_signature what -> "bad signature: " ^ what
  | Malformed what -> "malformed: " ^ what
  | No_route -> "no route to destination AS"
  | Crypto what -> "crypto failure: " ^ what
  | Rejected why -> "rejected: " ^ why
  | Timeout what -> "timed out: " ^ what

let pp ppf e = Format.pp_print_string ppf (to_string e)
let equal (a : t) (b : t) = a = b

let kind_label = function
  | Auth_failed -> "auth-failed"
  | Expired _ -> "expired"
  | Revoked _ -> "revoked"
  | Unknown_host -> "unknown-host"
  | Bad_mac -> "bad-mac"
  | Bad_signature _ -> "bad-signature"
  | Malformed _ -> "malformed"
  | No_route -> "no-route"
  | Crypto _ -> "crypto"
  | Rejected _ -> "rejected"
  | Timeout _ -> "timeout"
