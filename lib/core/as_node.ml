open Apna_crypto
open Apna_net
module M = Apna_obs.Metrics
module Span = Apna_obs.Span

let ms_hid = Addr.hid_of_int 1
let dns_hid = Addr.hid_of_int 2
let aa_hid = Addr.hid_of_int 3
let br_hid = Addr.hid_of_int 4
let broker_hid = Addr.hid_of_int 5
let first_customer_hid = 0x0a000001
let service_lifetime_s = 30 * 86_400

(* Per-AS service counters in the default registry, labeled by AID. *)
type obs = {
  m_ms : M.Counter.m;
  m_dns : M.Counter.m;
  m_shutoff : M.Counter.m;
  m_icmp : M.Counter.m;
  m_broker : M.Counter.m;
}

type t = {
  aid : Addr.aid;
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  trust : Trust.t;
  topology : Topology.t;
  registry : Registry.t;
  management : Management.t;
  border_router : Border_router.t;
  accountability : Accountability.t;
  dns : Dns_service.t option;
  audit : Audit.t option;
  (* §VIII-B future work: certificates gleaned from passing Init/Accept
     frames, so ICMP feedback can be sealed to the offending source. *)
  cert_cache : Cert_cache.t option;
  aa_ephid : Ephid.t;
  ms_cert : Cert.t;
  br_ephid : Ephid.t;
  broker_ephid : Ephid.t;
  (* The privacy broker lives in its own library (apna_broker, which
     depends on this one); it installs its wire handler here so the AS can
     dispatch broker-addressed packets without a dependency cycle. *)
  mutable broker_handler : (now:int -> string -> string option) option;
  now : unit -> int;
  now_f : unit -> float;
  schedule : (delay:float -> (unit -> unit) -> unit) option;
  rng : Drbg.t;
  deliver_by_hid : (Packet.t -> unit) Addr.Hid_tbl.t;
  hid_of_device : (string, Addr.hid) Hashtbl.t;
  mutable attached_hosts : Host.t list;
  mutable emit : next:Addr.aid -> Packet.t -> unit;
  (* One pending drain timer for the AA's bounded shutoff queue. *)
  mutable aa_drain_armed : bool;
  (* Verdict store backing submit_burst/receive_burst — per-AS, so bursts
     on different ASes never share state. *)
  burst : Border_router.Burst.t;
  obs : obs;
}

let service_kha rng = Keys.derive_host_as ~shared_secret:(Drbg.generate rng 32)

let create ~rng ~aid ~trust ~topology ~now ~now_f ?schedule ?dns_zone
    ?(lifetime_policy = Lifetime.default_policy) ?(retention = false)
    ?(icmp_encryption = false) ?expected_hosts ?aa_limits () =
  let keys = Keys.make_as rng ~aid in
  Trust.register_as trust aid ~pub:(Ed25519.public_key keys.signing);
  let host_info = Host_info.create ?expected_hosts () in
  let revoked = Revocation.create () in
  let expiry = now () + service_lifetime_s in
  (* Service identities: EphIDs bound to the reserved HIDs, registered in
     host_info so the ingress pipeline of Fig. 4 validates them like any
     destination. *)
  List.iter
    (fun hid -> Host_info.register host_info hid (service_kha rng))
    [ ms_hid; dns_hid; aa_hid; br_hid; broker_hid ];
  let aa_ephid = Ephid.issue_random keys rng ~hid:aa_hid ~expiry in
  let br_ephid = Ephid.issue_random keys rng ~hid:br_hid ~expiry in
  let broker_ephid = Ephid.issue_random keys rng ~hid:broker_hid ~expiry in
  let audit =
    if retention then
      Some (Audit.create ~owner:(string_of_int (Addr.aid_to_int aid)) ())
    else None
  in
  let cert_cache =
    if icmp_encryption then Some (Cert_cache.create ~capacity:4096) else None
  in
  let management =
    Management.create ~keys ~host_info ~revoked ~rng ~policy:lifetime_policy
      ~aa_ephid ?audit ()
  in
  let service_cert hid =
    let service_keys = Keys.make_ephid_keys rng in
    let ephid = Ephid.issue_random keys rng ~hid ~expiry in
    let cert =
      Cert.issue keys ~ephid ~expiry ~kx_pub:service_keys.kx_public
        ~sig_pub:(Ed25519.public_key service_keys.sig_keypair) ~aa_ephid
    in
    (cert, service_keys)
  in
  let ms_cert, _ms_keys = service_cert ms_hid in
  let dns =
    Option.map
      (fun zone ->
        let cert, dns_keys = service_cert dns_hid in
        let zone_key = Ed25519.generate rng in
        Trust.register_zone trust zone ~pub:(Ed25519.public_key zone_key);
        Dns_service.create ~rng:(Drbg.split rng "dns") ~trust ~zone ~zone_key
          ~cert ~keys:dns_keys ())
      dns_zone
  in
  let registry =
    Registry.create ~keys ~host_info ~rng ~first_hid:first_customer_hid ()
  in
  Registry.set_service_certs registry ~ms_cert
    ~dns_cert:(Option.map Dns_service.cert dns)
    ~aa_ephid;
  let border_router =
    Border_router.create ~keys ~host_info ~revoked ~topology ?audit ()
  in
  let accountability =
    Accountability.create ~keys ~host_info ~revoked ~trust ?limits:aa_limits ()
  in
  {
    aid;
    keys;
    host_info;
    revoked;
    trust;
    topology;
    registry;
    management;
    border_router;
    accountability;
    dns;
    audit;
    cert_cache;
    aa_ephid;
    ms_cert;
    br_ephid;
    broker_ephid;
    broker_handler = None;
    now;
    now_f;
    schedule;
    rng;
    deliver_by_hid = Addr.Hid_tbl.create 32;
    hid_of_device = Hashtbl.create 32;
    attached_hosts = [];
    aa_drain_armed = false;
    burst = Border_router.Burst.create ();
    emit =
      (fun ~next:_ _ ->
        Logs.err (fun m -> m "AS %a: emit not wired" Addr.pp_aid aid));
    obs =
      (let labels = [ ("aid", string_of_int (Addr.aid_to_int aid)) ] in
       {
         m_ms =
           M.Counter.register M.default ~labels
             ~help:"Requests dispatched to the management service"
             "apna_as_ms_requests_total";
         m_dns =
           M.Counter.register M.default ~labels
             ~help:"Queries dispatched to the DNS service"
             "apna_as_dns_queries_total";
         m_shutoff =
           M.Counter.register M.default ~labels
             ~help:"Shutoff requests handled by the accountability agent"
             "apna_as_shutoff_requests_total";
         m_icmp =
           M.Counter.register M.default ~labels
             ~help:"ICMP feedback packets sent to sources"
             "apna_as_icmp_sent_total";
         m_broker =
           M.Counter.register M.default ~labels
             ~help:"Requests dispatched to the privacy broker"
             "apna_as_broker_requests_total";
       });
  }

let aid t = t.aid
let keys t = t.keys
let host_info t = t.host_info
let revoked t = t.revoked
let registry t = t.registry
let management t = t.management
let border_router t = t.border_router
let accountability t = t.accountability
let dns t = t.dns
let audit t = t.audit
let cert_cache t = t.cert_cache
let aa_ephid t = t.aa_ephid
let broker_ephid t = t.broker_ephid
let set_broker_handler t handler = t.broker_handler <- Some handler
let set_emit t emit = t.emit <- emit
let hosts t = t.attached_hosts

(* ------------------------------------------------------------------ *)
(* Data plane: egress, routing, ingress, service dispatch.

   Infrastructure replies (MS, DNS, ICMP feedback) enter through [route]
   directly: the egress pipeline authenticates customer packets, not the
   AS's own. *)

let service_packet t ~src_ephid ~dst_aid ~dst_ephid ~proto ~payload =
  let header =
    Apna_header.make ~src_aid:t.aid ~src_ephid:(Ephid.to_bytes src_ephid)
      ~dst_aid ~dst_ephid ()
  in
  Packet.make ~header ~proto ~payload

(* Never generate an ICMP error about an ICMP error. *)
let offending_is_icmp_error (pkt : Packet.t) =
  pkt.proto = Packet.Icmp
  &&
  match Icmp.of_bytes pkt.payload with
  | Ok (Icmp.Unreachable _ | Icmp.Frag_needed _ | Icmp.Encrypted _) -> true
  | Ok (Icmp.Echo_request _ | Icmp.Echo_reply _) | Error _ -> false

let rec submit t pkt =
  match Border_router.egress_check t.border_router ~now:(t.now ()) pkt with
  | Ok _hid -> route t pkt
  | Error ((Error.Expired _ | Error.Revoked _) as e) ->
      Logs.debug (fun m -> m "AS %a egress drop: %a" Addr.pp_aid t.aid Error.pp e);
      egress_dead_feedback t pkt e
  | Error e ->
      Logs.debug (fun m -> m "AS %a egress drop: %a" Addr.pp_aid t.aid Error.pp e)

(* The source EphID failed its own AS's egress check because it expired or
   was revoked. The packet never left the AS, so the feedback loops straight
   back to the owner: the EphID still authenticates (only its validity
   failed), so parse it for the hid and deliver directly — the dead EphID
   would not pass an ingress check either. The full payload is quoted so
   the host can retransmit the exact frame after recovering (§VIII-B). *)
and egress_dead_feedback t (pkt : Packet.t) err =
  if not (offending_is_icmp_error pkt) then begin
    match Ephid.parse_bytes t.keys pkt.header.src_ephid with
    | Error _ -> ()
    | Ok (_, info) ->
        let reason =
          match err with
          | Error.Revoked _ -> Icmp.Ephid_revoked
          | _ -> Icmp.Ephid_expired
        in
        M.Counter.incr t.obs.m_icmp;
        deliver_local t info.hid
          (service_packet t ~src_ephid:t.br_ephid ~dst_aid:t.aid
             ~dst_ephid:pkt.header.src_ephid ~proto:Packet.Icmp
             ~payload:
               (Icmp.to_bytes
                  (Icmp.Unreachable { reason; quoted = pkt.payload })))
  end

and route t (pkt : Packet.t) =
  if Addr.aid_equal pkt.header.dst_aid t.aid then receive t pkt
  else begin
    match Topology.next_hop t.topology ~src:t.aid ~dst:pkt.header.dst_aid with
    | Some next -> t.emit ~next pkt
    | None -> unreachable_feedback t pkt Icmp.No_route
  end

and receive t pkt =
  match Border_router.ingress_check t.border_router ~now:(t.now ()) pkt with
  | Ok (Border_router.Forward next) -> t.emit ~next pkt
  | Ok (Border_router.Deliver hid) -> deliver_local t hid pkt
  | Error (Error.Expired _) -> unreachable_feedback t pkt Icmp.Ephid_expired
  | Error (Error.Revoked _) -> unreachable_feedback t pkt Icmp.Ephid_revoked
  | Error Error.Unknown_host -> unreachable_feedback t pkt Icmp.Host_unknown
  | Error Error.No_route -> unreachable_feedback t pkt Icmp.No_route
  | Error e ->
      Logs.debug (fun m -> m "AS %a ingress drop: %a" Addr.pp_aid t.aid Error.pp e)

and observe_certs t (pkt : Packet.t) =
  match t.cert_cache with
  | None -> ()
  | Some cache ->
      if pkt.proto = Packet.Data then begin
        match Session.Frame.of_bytes pkt.payload with
        | Ok (Session.Frame.Init { cert; _ })
        | Ok (Session.Frame.Accept { cert; _ })
        | Ok (Session.Frame.Rekey { cert; _ }) ->
            Cert_cache.observe cache cert
        | Ok
            ( Session.Frame.Data _ | Session.Frame.Fin _
            | Session.Frame.Rekey_ack _ )
        | Error _ ->
            ()
      end

and deliver_local t hid (pkt : Packet.t) =
  let sp = Span.start_for Span.default ~id:pkt.header.mac ~stage:"as.deliver" in
  if Apna_obs.Event.enabled Apna_obs.Event.default then
    Apna_obs.Event.(
      record default
        ~key:(key_of_string pkt.header.mac)
        (Deliver { aid = Addr.aid_to_int t.aid; hid = Addr.hid_to_int hid }));
  observe_certs t pkt;
  (if Addr.hid_equal hid ms_hid then dispatch_ms t pkt
   else if Addr.hid_equal hid dns_hid then dispatch_dns t pkt
   else if Addr.hid_equal hid aa_hid then dispatch_aa t pkt
   else if Addr.hid_equal hid broker_hid then dispatch_broker t pkt
   else if Addr.hid_equal hid br_hid then ()
   else begin
     match Addr.Hid_tbl.find_opt t.deliver_by_hid hid with
     | Some deliver -> deliver pkt
     | None ->
         Logs.debug (fun m ->
             m "AS %a: no attached host for %a" Addr.pp_aid t.aid Addr.pp_hid hid)
   end);
  Span.finish Span.default sp

and dispatch_ms t (pkt : Packet.t) =
  M.Counter.incr t.obs.m_ms;
  match Msgs.of_bytes pkt.payload with
  | Error e -> Logs.debug (fun m -> m "MS: %a" Error.pp e)
  | Ok (Msgs.Ephid_release _ as msg) -> begin
      match
        Management.handle_release t.management ~now:(t.now ())
          ~src_ephid:pkt.header.src_ephid msg
      with
      | Ok () -> ()
      | Error e -> Logs.debug (fun m -> m "MS release: %a" Error.pp e)
    end
  | Ok msg -> begin
      match
        Management.handle_request t.management ~now:(t.now ())
          ~src_ephid:pkt.header.src_ephid msg
      with
      | Error e -> Logs.debug (fun m -> m "MS: %a" Error.pp e)
      | Ok reply ->
          route t
            (service_packet t ~src_ephid:t.ms_cert.ephid
               ~dst_aid:pkt.header.src_aid ~dst_ephid:pkt.header.src_ephid
               ~proto:Packet.Control ~payload:(Msgs.to_bytes reply))
    end

and dispatch_dns t (pkt : Packet.t) =
  M.Counter.incr t.obs.m_dns;
  match t.dns with
  | None -> Logs.debug (fun m -> m "AS %a: no DNS service" Addr.pp_aid t.aid)
  | Some dns -> begin
      match Msgs.of_bytes pkt.payload with
      | Error e -> Logs.debug (fun m -> m "DNS: %a" Error.pp e)
      | Ok msg -> begin
          match Dns_service.handle dns ~now:(t.now ()) msg with
          | Error e -> Logs.debug (fun m -> m "DNS: %a" Error.pp e)
          | Ok reply ->
              route t
                (service_packet t
                   ~src_ephid:(Dns_service.cert dns).ephid
                   ~dst_aid:pkt.header.src_aid ~dst_ephid:pkt.header.src_ephid
                   ~proto:Packet.Control ~payload:(Msgs.to_bytes reply))
        end
    end

(* §VIII-A: tell the host which EphID was shut off so it can identify
   (and act on) the application behind it. Delivered directly: the
   revoked EphID would no longer pass ingress. *)
and revocation_notice t (hid, ephid) =
  let notice =
    service_packet t ~src_ephid:t.aa_ephid ~dst_aid:t.aid
      ~dst_ephid:(Ephid.to_bytes ephid) ~proto:Packet.Control
      ~payload:(Msgs.to_bytes (Msgs.Revocation_notice { ephid = Ephid.to_bytes ephid }))
  in
  deliver_local t hid notice

(* The drain loop for the AA's bounded shutoff queue: one timer pending at
   a time, re-armed while work remains. Each pass verifies a budgeted slice
   and flushes granted revocations to the routers as one batch. *)
and arm_aa_drain t =
  match t.schedule with
  | None -> ()
  | Some schedule ->
      if not t.aa_drain_armed then begin
        t.aa_drain_armed <- true;
        let delay = (Accountability.limits t.accountability).drain_interval_s in
        schedule ~delay (fun () ->
            t.aa_drain_armed <- false;
            let grants =
              Accountability.drain t.accountability ~now:(t.now ())
                ~at:(t.now_f ())
            in
            List.iter (fun g -> revocation_notice t g) grants;
            if grants <> [] then
              Logs.info (fun m ->
                  m "AS %a: %d shutoff(s) executed" Addr.pp_aid t.aid
                    (List.length grants));
            if Accountability.queue_depth t.accountability > 0 then
              arm_aa_drain t)
      end

and dispatch_aa t (pkt : Packet.t) =
  M.Counter.incr t.obs.m_shutoff;
  match Msgs.of_bytes pkt.payload with
  | Error e -> Logs.debug (fun m -> m "AA: %a" Error.pp e)
  | Ok msg -> begin
      match t.schedule with
      | Some _ -> begin
          (* Scheduled deployment: admission control at arrival, expensive
             verification deferred to the budgeted drain loop. *)
          match
            Accountability.enqueue t.accountability ~now:(t.now ())
              ~at:(t.now_f ()) msg
          with
          | Accountability.Queued -> arm_aa_drain t
          | Accountability.Refused e ->
              Logs.info (fun m ->
                  m "AS %a: shutoff refused: %a" Addr.pp_aid t.aid Error.pp e)
          | Accountability.Shed ->
              Logs.info (fun m ->
                  m "AS %a: shutoff shed under load" Addr.pp_aid t.aid)
        end
      | None -> begin
          match
            Accountability.handle_shutoff t.accountability ~now:(t.now ()) msg
          with
          | Ok grant ->
              Logs.info (fun m -> m "AS %a: shutoff executed" Addr.pp_aid t.aid);
              revocation_notice t grant
          | Error e ->
              Logs.info (fun m ->
                  m "AS %a: shutoff refused: %a" Addr.pp_aid t.aid Error.pp e)
        end
    end

and dispatch_broker t (pkt : Packet.t) =
  M.Counter.incr t.obs.m_broker;
  match t.broker_handler with
  | None ->
      Logs.debug (fun m -> m "AS %a: no privacy broker attached" Addr.pp_aid t.aid)
  | Some handler -> begin
      match handler ~now:(t.now ()) pkt.payload with
      | None -> ()
      | Some reply ->
          route t
            (service_packet t ~src_ephid:t.broker_ephid
               ~dst_aid:pkt.header.src_aid ~dst_ephid:pkt.header.src_ephid
               ~proto:Packet.Control ~payload:reply)
    end

and unreachable_feedback t (pkt : Packet.t) reason =
  (* §VIII-B: the source EphID is a working return address, so the network
     can tell the sender why delivery failed — without learning who the
     sender is. The whole offending payload is quoted (like deep-quoting
     RFC 1812 routers) so a recovering sender can retransmit it verbatim. *)
  icmp_to_source t pkt (Icmp.Unreachable { reason; quoted = pkt.payload })

and icmp_to_source t (pkt : Packet.t) msg =
  if not (offending_is_icmp_error pkt) then begin
    (* Seal the feedback when the source's certificate is at hand
       (§VIII-B): the error then reveals nothing even to on-path
       observers. Fall back to plaintext ICMP otherwise. *)
    let payload =
      match
        Option.bind t.cert_cache (fun cache ->
            match Ephid.of_bytes pkt.header.src_ephid with
            | Ok e -> Cert_cache.find cache e
            | Error _ -> None)
      with
      | Some (cert : Cert.t) -> begin
          match Ecies.seal ~rng:t.rng ~peer_pub:cert.kx_pub (Icmp.to_bytes msg) with
          | Ok sealed -> Icmp.to_bytes (Icmp.Encrypted { sealed })
          | Error _ -> Icmp.to_bytes msg
        end
      | None -> Icmp.to_bytes msg
    in
    M.Counter.incr t.obs.m_icmp;
    route t
      (service_packet t ~src_ephid:t.br_ephid ~dst_aid:pkt.header.src_aid
         ~dst_ephid:pkt.header.src_ephid ~proto:Packet.Icmp ~payload)
  end

(* Burst drivers: one batched border-router pass, then per-packet dispatch
   identical to [submit]/[receive]. Not reentrant — a host that submits a
   burst synchronously from its delivery callback would clobber the
   verdict store mid-loop (single-packet [submit] from a callback is
   fine: it uses the router's own one-slot store). *)

let submit_burst t pkts ~n =
  Border_router.egress_burst t.border_router ~now:(t.now ()) pkts ~n t.burst;
  for i = 0 to n - 1 do
    match Border_router.Burst.error t.burst i with
    | None -> route t pkts.(i)
    | Some ((Error.Expired _ | Error.Revoked _) as e) ->
        Logs.debug (fun m -> m "AS %a egress drop: %a" Addr.pp_aid t.aid Error.pp e);
        egress_dead_feedback t pkts.(i) e
    | Some e ->
        Logs.debug (fun m -> m "AS %a egress drop: %a" Addr.pp_aid t.aid Error.pp e)
  done

let receive_burst t pkts ~n =
  Border_router.ingress_burst t.border_router ~now:(t.now ()) pkts ~n t.burst;
  for i = 0 to n - 1 do
    let pkt = pkts.(i) in
    match Border_router.Burst.error t.burst i with
    | None ->
        let next = Border_router.Burst.forward_aid t.burst i in
        if next >= 0 then t.emit ~next:(Addr.aid_of_int next) pkt
        else
          deliver_local t
            (Addr.hid_of_int (Border_router.Burst.hid t.burst i))
            pkt
    | Some (Error.Expired _) -> unreachable_feedback t pkt Icmp.Ephid_expired
    | Some (Error.Revoked _) -> unreachable_feedback t pkt Icmp.Ephid_revoked
    | Some Error.Unknown_host -> unreachable_feedback t pkt Icmp.Host_unknown
    | Some Error.No_route -> unreachable_feedback t pkt Icmp.No_route
    | Some e ->
        Logs.debug (fun m -> m "AS %a ingress drop: %a" Addr.pp_aid t.aid Error.pp e)
  done

(* ------------------------------------------------------------------ *)
(* Host and device attachment *)

let add_device t ~name ~credential ~deliver =
  Registry.enroll t.registry ~credential;
  let bootstrap_rpc ~host_dh_pub =
    match
      Registry.bootstrap t.registry ~now:(t.now ()) ~credential ~host_dh_pub
    with
    | Error e -> Error e
    | Ok (reply, hid) ->
        (* Index the device under its (new) HID for intra-domain delivery;
           a re-bootstrap drops the previous binding. *)
        (match Hashtbl.find_opt t.hid_of_device name with
        | Some old -> Addr.Hid_tbl.remove t.deliver_by_hid old
        | None -> ());
        Hashtbl.replace t.hid_of_device name hid;
        Addr.Hid_tbl.replace t.deliver_by_hid hid deliver;
        Ok reply
  in
  ({
     aid = t.aid;
     now = t.now;
     now_f = t.now_f;
     submit = (fun pkt -> submit t pkt);
     schedule = t.schedule;
     bootstrap_rpc;
     trust = t.trust;
   }
    : Host.attachment)

let add_host t host ?deliver ~credential () =
  let deliver =
    match deliver with
    | Some f -> f
    | None -> fun pkt -> Host.deliver host pkt
  in
  let attachment =
    add_device t ~name:(Host.name host) ~credential ~deliver
  in
  t.attached_hosts <- host :: t.attached_hosts;
  Host.attach host attachment

let feedback_to_source t pkt msg = icmp_to_source t pkt msg
