(** The Registry Service (RS) — host bootstrapping (paper §IV-B, Fig. 2).

    The RS authenticates a subscriber, runs a Diffie-Hellman exchange to
    establish the kHA key pair, assigns a HID, issues the control EphID,
    pushes (HID, kHA) into the AS-wide [host_info] database, and returns the
    bootstrap bundle: signed id_info plus the certificates of the MS and
    DNS services.

    Customer authentication itself is pluggable (the paper defers to
    RADIUS/Diameter); here subscribers enroll with an opaque credential. *)

type t

val create :
  keys:Keys.as_keys ->
  host_info:Host_info.t ->
  rng:Apna_crypto.Drbg.t ->
  ?ctrl_lifetime_s:int ->
  ?first_hid:int ->
  unit ->
  t
(** [ctrl_lifetime_s] defaults to 86400 (a DHCP-lease-scale lifetime,
    §IV-B). HIDs are assigned sequentially from [first_hid]. *)

val set_service_certs : t -> ms_cert:Cert.t -> dns_cert:Cert.t option -> aa_ephid:Ephid.t -> unit
(** Wires in the service certificates handed to hosts at bootstrap; called
    once by {!As_node} after the services are brought up. *)

val enroll : t -> credential:string -> unit
(** Registers a subscriber (out-of-band contract with the ISP). *)

type reply = {
  ctrl_ephid : Ephid.t;
  ctrl_expiry : int;
  as_dh_pub : string;  (** From which the host derives kHA on its side. *)
  ms_cert : Cert.t;
  dns_cert : Cert.t option;
  aa_ephid : Ephid.t;
  id_info_signature : string;  (** {ctrl_ephid, expiry} signed by the AS. *)
}

val id_info_bytes : ctrl_ephid:Ephid.t -> ctrl_expiry:int -> string
(** The byte string [id_info_signature] covers (hosts verify it against
    the AS key from {!Trust}). *)

val bootstrap :
  t -> now:int -> credential:string -> host_dh_pub:string ->
  (reply * Apna_net.Addr.hid, Error.t) result
(** Authenticates and bootstraps a host. Re-bootstrapping with the same
    credential revokes the previous HID first — a host holds exactly one
    live identity at any time (§VI-A, identity minting). The HID is
    returned for the caller ({!As_node}) to index the host; the host itself
    never needs it. *)

type admission = {
  hid : Apna_net.Addr.hid;
  kha : Keys.host_as;  (** Both sides of the shared secret derivation. *)
  ctrl_ephid : Ephid.t;
  ctrl_expiry : int;
}

val admit :
  t -> now:int -> credential:string -> shared_secret:string -> admission
(** Trusted bulk admission: the same state transitions as {!bootstrap} —
    previous identity revoked, HID minted, kHA derived and registered,
    control EphID issued — but with the DH exchange replaced by a
    caller-supplied shared secret and no id_info signature. This is the
    path for migrating a subscriber database in bulk and for the
    paper-scale trace replay (bench E16), where a 1.27 M-host population
    must enter host_info without 1.27 M signature + DH operations.
    Enrolls the credential if it is new. *)

val hid_of_credential : t -> credential:string -> Apna_net.Addr.hid option

val credential_of_hid : t -> Apna_net.Addr.hid -> string option
(** The subscriber behind a HID — the mapping an AS reveals under a lawful,
    targeted request (§VIII-H). Served by a reverse index: O(1), never a
    fold over the subscriber table. *)

val last_lookup_cost : t -> int
(** Entries examined by the most recent {!credential_of_hid} — the
    count-based probe proving the broker-facing lookup costs the answer,
    not the customer population. *)

val customer_count : t -> int
