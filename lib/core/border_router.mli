(** Border router data-plane pipelines (paper §IV-D3, Fig. 4, §V-B).

    Egress (host → Internet): decrypt the source EphID, check expiry,
    revocation and HID validity, verify the per-packet MAC — only
    authenticated packets of authorized EphIDs leave the AS.

    Ingress (Internet → host): if the packet has reached its destination
    AS, decrypt the destination EphID and run the same validity checks,
    then hand the packet to intra-domain delivery by HID; otherwise forward
    toward the destination AID.

    Only symmetric cryptography runs here — one AES-CTR decryption, one
    CBC-MAC over a single block, two table lookups and one HMAC
    verification per packet — which is the design point the Fig. 8
    forwarding benchmark measures.

    Since EphIDs are per-flow tokens, consecutive packets of a flow repeat
    identical decrypt + CBC-MAC work; a bounded LRU of validated EphIDs
    (raw 16-byte token -> HID, expiry, kHA entry) amortizes it. A hit
    still checks expiry against [~now] and the {!Revocation.generation} /
    {!Host_info.generation} counters recorded at insert time, so revoking
    an EphID or HID, GC'ing the revocation list, or re-keying a host
    forces the full pipeline again (see DESIGN.md, "EphID cache"). *)

type t

type counters = {
  mutable egress_ok : int;
  mutable ingress_delivered : int;
  mutable ingress_forwarded : int;
  mutable dropped : int;
}

type cache_stats = {
  mutable hits : int;  (** fast path taken: decrypt + CBC-MAC skipped *)
  mutable misses : int;  (** token not cached: full pipeline *)
  mutable invalidations : int;
      (** cached entry rejected: expired, or a generation counter moved *)
}

val create :
  keys:Keys.as_keys -> host_info:Host_info.t -> revoked:Revocation.t ->
  topology:Apna_net.Topology.t -> ?audit:Audit.t -> ?ephid_cache:int ->
  unit -> t
(** [audit] enables data retention of egress packet digests (§VIII-H).
    [ephid_cache] is the validated-EphID cache capacity in entries
    (default 8192); [0] disables the cache entirely (every packet runs the
    full Fig. 4 pipeline — the configuration the uncached benchmark rows
    measure). *)

val counters : t -> counters

val ephid_cache_stats : t -> cache_stats
(** All-zero when the cache is disabled. *)

val ephid_cache_size : t -> int
(** Entries currently cached (0 when disabled). *)

val drop_reasons : t -> (string * int) list
(** Drops broken down by {!Error.kind_label}, sorted by label — the
    operator's view of what the pipeline is rejecting. *)

val egress_check :
  t -> now:int -> Apna_net.Packet.t -> (Apna_net.Addr.hid, Error.t) result
(** Full outbound pipeline; [Ok hid] identifies the (internal) sender. *)

type ingress_decision =
  | Deliver of Apna_net.Addr.hid  (** at destination AS: intra-domain hop *)
  | Forward of Apna_net.Addr.aid  (** transit: next AS toward the AID *)

val ingress_check :
  t -> now:int -> Apna_net.Packet.t -> (ingress_decision, Error.t) result

val revoked : t -> Revocation.t
