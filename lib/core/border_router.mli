(** Border router data-plane pipelines (paper §IV-D3, Fig. 4, §V-B).

    Egress (host → Internet): decrypt the source EphID, check expiry,
    revocation and HID validity, verify the per-packet MAC — only
    authenticated packets of authorized EphIDs leave the AS.

    Ingress (Internet → host): if the packet has reached its destination
    AS, decrypt the destination EphID and run the same validity checks,
    then hand the packet to intra-domain delivery by HID; otherwise forward
    toward the destination AID.

    Only symmetric cryptography runs here — one AES-CTR decryption, one
    CBC-MAC over a single block, two table lookups and one HMAC
    verification per packet — which is the design point the Fig. 8
    forwarding benchmark measures.

    Since EphIDs are per-flow tokens, consecutive packets of a flow repeat
    identical decrypt + CBC-MAC work; a bounded LRU of validated EphIDs
    (raw 16-byte token -> HID, expiry, kHA entry, prepared packet-MAC key)
    amortizes it. A hit still checks expiry against [~now] and the
    {!Revocation.generation} / {!Host_info.generation} counters recorded
    at insert time, so revoking an EphID or HID, GC'ing the revocation
    list, or re-keying a host forces the full pipeline again (see
    DESIGN.md, "EphID cache").

    The packet-at-a-time API ({!egress_check}/{!ingress_check}) is a burst
    of one over the batched engine ({!egress_burst}/{!ingress_burst}):
    DPDK-style bursts of up to {!max_burst} packets whose working memory —
    MAC-input scratch, EphID parse buffers, verdict slots — is preallocated
    at {!create}, so the cached steady state allocates nothing per packet
    (see DESIGN.md, "Batched fast path"). *)

type t

type counters = {
  mutable egress_ok : int;
  mutable ingress_delivered : int;
  mutable ingress_forwarded : int;
  mutable dropped : int;
}

type cache_stats = {
  mutable hits : int;  (** fast path taken: decrypt + CBC-MAC skipped *)
  mutable misses : int;  (** token not cached: full pipeline *)
  mutable invalidations : int;
      (** cached entry rejected: expired, or a generation counter moved *)
}

val create :
  keys:Keys.as_keys -> host_info:Host_info.t -> revoked:Revocation.t ->
  topology:Apna_net.Topology.t -> ?audit:Audit.t -> ?ephid_cache:int ->
  unit -> t
(** [audit] enables data retention of egress packet digests (§VIII-H).
    [ephid_cache] is the validated-EphID cache capacity in entries
    (default 8192); [0] disables the cache entirely (every packet runs the
    full Fig. 4 pipeline — the configuration the uncached benchmark rows
    measure). *)

val counters : t -> counters

val ephid_cache_stats : t -> cache_stats
(** All-zero when the cache is disabled. *)

val ephid_cache_size : t -> int
(** Entries currently cached (0 when disabled). *)

val drop_reasons : t -> (string * int) list
(** Drops broken down by {!Error.kind_label}, sorted by label — the
    operator's view of what the pipeline is rejecting. *)

val drop_registrations : t -> int
(** How many reason-labeled drop counters this router has registered in
    the metrics registry — at most one per distinct reason, however many
    packets dropped (the cost sentinel the scale tests watch). *)

type ingress_decision =
  | Deliver of Apna_net.Addr.hid  (** at destination AS: intra-domain hop *)
  | Forward of Apna_net.Addr.aid  (** transit: next AS toward the AID *)

(** Caller-owned verdict store for the burst API: parallel slots the
    pipelines write in place, so the steady-state accept path never
    builds result values. A burst value may be reused across bursts and
    routers; it grows on demand and is not thread-safe. *)
module Burst : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] defaults to {!max_burst}. *)

  val capacity : t -> int

  val error : t -> int -> Error.t option
  (** [None] = packet [i] was accepted; reading allocates nothing. *)

  val hid : t -> int -> int
  (** Egress: the authenticated sender's HID as an int. Ingress: the
      local delivery HID. Only meaningful when [error] is [None] (and,
      for ingress, when [forward_aid] is negative); [-1] otherwise. *)

  val forward_aid : t -> int -> int
  (** Ingress transit verdict: next-hop AID as an int, [-1] if packet
      [i] was delivered locally or dropped. *)

  val egress_result : t -> int -> (Apna_net.Addr.hid, Error.t) result
  (** Allocating convenience reader (tests, slow paths). *)

  val ingress_result : t -> int -> (ingress_decision, Error.t) result
end

val max_burst : int
(** 32 — the burst size the preallocated arena covers. Larger [n] still
    works; packets beyond the arena fall back to allocating scratch
    (counted by {!arena_overflows}). *)

val egress_burst :
  t -> now:int -> Apna_net.Packet.t array -> n:int -> Burst.t -> unit
(** [egress_burst t ~now pkts ~n b] runs the full outbound pipeline on
    [pkts.(0..n-1)], writing one verdict per packet into [b] (grown as
    needed). Equivalent to [n] calls of {!egress_check} in order — same
    verdicts, same counters, same spans and events — but the cached
    steady state allocates nothing per packet. Not reentrant: one burst
    at a time per router. @raise Invalid_argument if [n] exceeds
    [Array.length pkts]. *)

val ingress_burst :
  t -> now:int -> Apna_net.Packet.t array -> n:int -> Burst.t -> unit
(** Batched {!ingress_check}; same contract as {!egress_burst}. *)

val egress_check :
  t -> now:int -> Apna_net.Packet.t -> (Apna_net.Addr.hid, Error.t) result
(** Full outbound pipeline; [Ok hid] identifies the (internal) sender.
    A burst of one over the router's private verdict slot. *)

val ingress_check :
  t -> now:int -> Apna_net.Packet.t -> (ingress_decision, Error.t) result

val arena_overflows : t -> int
(** Scratch checkouts that outran the preallocated arena and fell back
    to fresh allocation (0 in steady state). *)

val revoked : t -> Revocation.t
