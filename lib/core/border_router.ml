open Apna_net
module M = Apna_obs.Metrics
module Span = Apna_obs.Span

type counters = {
  mutable egress_ok : int;
  mutable ingress_delivered : int;
  mutable ingress_forwarded : int;
  mutable dropped : int;
}

(* Per-router series in the default registry, labeled by AID. *)
type obs = {
  aid_label : (string * string) list;
  m_egress_ok : M.Counter.m;
  m_delivered : M.Counter.m;
  m_forwarded : M.Counter.m;
}

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  topology : Topology.t;
  stats : counters;
  drops_by_reason : (string, int) Hashtbl.t;
  audit : Audit.t option;
  obs : obs;
}

let create ~(keys : Keys.as_keys) ~host_info ~revoked ~topology ?audit () =
  let aid_label = [ ("aid", string_of_int (Addr.aid_to_int keys.aid)) ] in
  {
    keys;
    host_info;
    revoked;
    topology;
    stats = { egress_ok = 0; ingress_delivered = 0; ingress_forwarded = 0; dropped = 0 };
    drops_by_reason = Hashtbl.create 8;
    audit;
    obs =
      {
        aid_label;
        m_egress_ok =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Egress packets that passed the Fig. 4 pipeline"
            "apna_br_egress_ok_total";
        m_delivered =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Ingress packets delivered to a local host"
            "apna_br_ingress_delivered_total";
        m_forwarded =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Transit packets forwarded to the next AS"
            "apna_br_ingress_forwarded_total";
      };
  }

let counters t = t.stats
let revoked t = t.revoked

let drop t e =
  t.stats.dropped <- t.stats.dropped + 1;
  let label = Error.kind_label e in
  Hashtbl.replace t.drops_by_reason label
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.drops_by_reason label));
  (* Reason-labeled series registered on demand; the registry lookup is
     skipped entirely while observability is off. *)
  if M.enabled M.default then
    M.Counter.incr
      (M.Counter.register M.default
         ~labels:(("reason", label) :: t.obs.aid_label)
         ~help:"Packets dropped by the border router, by reason"
         "apna_br_drops_total");
  Error e

let drop_reasons t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.drops_by_reason []
  |> List.sort compare

(* The common EphID validity pipeline of Fig. 4: authenticity (tag), expiry,
   revocation list, HID registration. *)
let check_ephid t ~now raw =
  match Ephid.of_bytes raw with
  | Error e -> Error (Error.Malformed e)
  | Ok ephid -> begin
      match Ephid.parse t.keys ephid with
      | Error e -> Error e
      | Ok info ->
          if Ephid.expired info ~now then Error (Error.Expired "EphID")
          else if Revocation.is_revoked t.revoked ephid then
            Error (Error.Revoked "EphID")
          else begin
            match Host_info.find t.host_info info.hid with
            | Error e -> Error e
            | Ok entry -> Ok (info, entry)
          end
    end

let egress_pipeline t ~now (pkt : Packet.t) =
  if not (Addr.aid_equal pkt.header.src_aid t.keys.aid) then
    drop t (Error.Malformed "egress: foreign source AID")
  else begin
    match check_ephid t ~now pkt.header.src_ephid with
    | Error e -> drop t e
    | Ok (info, entry) ->
        if Pkt_auth.verify ~auth_key:entry.kha.auth pkt then begin
          t.stats.egress_ok <- t.stats.egress_ok + 1;
          M.Counter.incr t.obs.m_egress_ok;
          (* Data retention (§VIII-H): the packet's MAC doubles as its
             digest — unique per authenticated packet. *)
          Option.iter
            (fun a ->
              match Ephid.of_bytes pkt.header.src_ephid with
              | Ok ephid ->
                  Audit.record_egress a ~now ~ephid ~digest:pkt.header.mac
              | Error _ -> ())
            t.audit;
          Ok info.hid
        end
        else drop t Error.Bad_mac
  end

let egress_check t ~now (pkt : Packet.t) =
  let sp = Span.start_for Span.default ~id:pkt.header.mac ~stage:"br.egress" in
  let r = egress_pipeline t ~now pkt in
  Span.finish Span.default sp;
  r

type ingress_decision = Deliver of Addr.hid | Forward of Addr.aid

let ingress_pipeline t ~now (pkt : Packet.t) =
  if Addr.aid_equal pkt.header.dst_aid t.keys.aid then begin
    match check_ephid t ~now pkt.header.dst_ephid with
    | Error e -> drop t e
    | Ok (info, _entry) ->
        t.stats.ingress_delivered <- t.stats.ingress_delivered + 1;
        M.Counter.incr t.obs.m_delivered;
        Ok (Deliver info.hid)
  end
  else begin
    match
      Topology.next_hop t.topology ~src:t.keys.aid ~dst:pkt.header.dst_aid
    with
    | Some hop ->
        t.stats.ingress_forwarded <- t.stats.ingress_forwarded + 1;
        M.Counter.incr t.obs.m_forwarded;
        Ok (Forward hop)
    | None -> drop t Error.No_route
  end

let ingress_check t ~now (pkt : Packet.t) =
  let sp = Span.start_for Span.default ~id:pkt.header.mac ~stage:"br.ingress" in
  let r = ingress_pipeline t ~now pkt in
  Span.finish Span.default sp;
  r
